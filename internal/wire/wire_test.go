package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func roundtrip(t *testing.T, send func(*Writer) error) (uint8, []byte) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := send(w); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	r := NewReader(&buf)
	typ, payload, err := r.Next()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	return typ, payload
}

func TestReadReqRoundtrip(t *testing.T) {
	in := ReadReq{ID: 42, Key: "user00042"}
	typ, payload := roundtrip(t, func(w *Writer) error { return w.WriteRead(MsgRead, in) })
	if typ != MsgRead {
		t.Fatalf("type = %d", typ)
	}
	out, err := ParseReadReq(payload)
	if err != nil || out != in {
		t.Fatalf("out = %+v err=%v", out, err)
	}
}

func TestInternalReadTypePreserved(t *testing.T) {
	typ, _ := roundtrip(t, func(w *Writer) error {
		return w.WriteRead(MsgReadInternal, ReadReq{ID: 1, Key: "k"})
	})
	if typ != MsgReadInternal {
		t.Fatalf("type = %d, want MsgReadInternal", typ)
	}
}

func TestReadRespRoundtrip(t *testing.T) {
	in := ReadResp{
		ID:    7,
		Found: true,
		Value: []byte("hello world"),
		FB:    Feedback{QueueSize: 3.5, ServiceNs: 1234567},
	}
	typ, payload := roundtrip(t, func(w *Writer) error { return w.WriteReadResp(in) })
	if typ != MsgReadResp {
		t.Fatalf("type = %d", typ)
	}
	out, err := ParseReadResp(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Found != in.Found || !bytes.Equal(out.Value, in.Value) ||
		out.FB != in.FB {
		t.Fatalf("out = %+v", out)
	}
}

func TestReadRespNotFound(t *testing.T) {
	in := ReadResp{ID: 9, Found: false, FB: Feedback{QueueSize: 0, ServiceNs: 10}}
	_, payload := roundtrip(t, func(w *Writer) error { return w.WriteReadResp(in) })
	out, err := ParseReadResp(payload)
	if err != nil || out.Found || len(out.Value) != 0 {
		t.Fatalf("out = %+v err=%v", out, err)
	}
}

func TestWriteReqRoundtrip(t *testing.T) {
	in := WriteReq{ID: 11, Key: "k", Value: bytes.Repeat([]byte{0xAB}, 1024)}
	typ, payload := roundtrip(t, func(w *Writer) error { return w.WriteWrite(MsgWriteInternal, in) })
	if typ != MsgWriteInternal {
		t.Fatalf("type = %d", typ)
	}
	out, err := ParseWriteReq(payload)
	if err != nil || out.ID != 11 || out.Key != "k" || !bytes.Equal(out.Value, in.Value) {
		t.Fatalf("out = %+v err=%v", out, err)
	}
}

func TestWriteRespRoundtrip(t *testing.T) {
	for _, in := range []WriteResp{
		{ID: 13, OK: true, FB: Feedback{QueueSize: 1, ServiceNs: 999}},
		{ID: 14, OK: false, FB: Feedback{QueueSize: 2, ServiceNs: 5}}, // failure report
	} {
		_, payload := roundtrip(t, func(w *Writer) error { return w.WriteWriteResp(in) })
		out, err := ParseWriteResp(payload)
		if err != nil || out != in {
			t.Fatalf("out = %+v err=%v", out, err)
		}
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := uint64(0); i < 10; i++ {
		if err := w.WriteRead(MsgRead, ReadReq{ID: i, Key: "k"}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Buffered() == 0 {
		t.Fatal("frames flushed eagerly; want coalescing until Flush")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i := uint64(0); i < 10; i++ {
		typ, payload, err := r.Next()
		if err != nil || typ != MsgRead {
			t.Fatalf("frame %d: typ=%d err=%v", i, typ, err)
		}
		m, err := ParseReadReq(payload)
		if err != nil || m.ID != i {
			t.Fatalf("frame %d: id=%d err=%v", i, m.ID, err)
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestTruncatedFrameDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteReadResp(ReadResp{ID: 1, Found: true, Value: []byte("xyz")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop mid-payload.
	r := NewReader(bytes.NewReader(full[:len(full)-2]))
	if _, _, err := r.Next(); err == nil {
		t.Fatal("truncated frame not detected")
	}
}

func TestCorruptPayloadRejected(t *testing.T) {
	// A ReadResp payload too short for its declared value length.
	if _, err := ParseReadResp([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParseReadReq(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := ParseWriteReq([]byte{0}); err == nil {
		t.Fatal("short write req accepted")
	}
}

func TestOversizeKeyRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	err := w.WriteRead(MsgRead, ReadReq{Key: strings.Repeat("k", MaxKeyLen+1)})
	if err == nil {
		t.Fatal("oversized key accepted")
	}
}

func TestOversizeFrameLengthRejected(t *testing.T) {
	raw := []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(MsgRead)}
	r := NewReader(bytes.NewReader(raw))
	if _, _, err := r.Next(); err != ErrFrameTooLarge {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// Property: any (id, key, value, feedback) read response survives a
// roundtrip bit-exactly.
func TestReadRespRoundtripProperty(t *testing.T) {
	f := func(id uint64, key string, val []byte, q float64, svc int64, found bool) bool {
		if len(key) > MaxKeyLen || len(val) > 4096 {
			return true
		}
		in := ReadResp{ID: id, Found: found, Value: val,
			FB: Feedback{QueueSize: q, ServiceNs: svc}}
		if found {
			in.Version = id | 1
		} else {
			in.Value = nil // absent responses carry no value bytes
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteReadResp(in); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewReader(&buf)
		_, payload, err := r.Next()
		if err != nil {
			return false
		}
		out, err := ParseReadResp(payload)
		if err != nil {
			return false
		}
		// NaN != NaN; compare bit patterns via stringized check.
		if out.ID != in.ID || out.Found != in.Found || !bytes.Equal(out.Value, in.Value) {
			return false
		}
		if out.Version != in.Version {
			return false
		}
		if out.FB.ServiceNs != in.FB.ServiceNs {
			return false
		}
		return out.FB.QueueSize == in.FB.QueueSize ||
			(out.FB.QueueSize != out.FB.QueueSize && in.FB.QueueSize != in.FB.QueueSize)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReadRespRoundtrip(b *testing.B) {
	val := make([]byte, 1024)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	r := NewReader(&buf)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := w.WriteReadResp(ReadResp{ID: uint64(i), Found: true, Value: val}); err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		typ, payload, err := r.Next()
		if err != nil || typ != MsgReadResp {
			b.Fatal(err)
		}
		if _, err := ParseReadResp(payload); err != nil {
			b.Fatal(err)
		}
	}
}
