package analysis

import (
	"go/ast"
)

// This file is a small intraprocedural control-flow graph over statements —
// the shared substrate of the flow-sensitive analyzers (accountpair,
// poolsafe, lockscope). One Node per statement; compound statements (if,
// for, switch, select) contribute a header node whose Parts hold only the
// header expressions, so scanning a node never leaks into its body.
//
// Approximations, chosen to keep false positives predictable:
//   - goto edges go to Exit (the repository has none; a goto-heavy function
//     should be rewritten before it needs these analyzers).
//   - Every switch/select case is considered reachable, and a switch
//     without a default also falls through to the next statement.
//   - Statements for which terminates() is true (panic, os.Exit, t.Fatal)
//     get no successors: paths ending there never reach Exit.

// A Node is one statement in a CFG.
type Node struct {
	// Stmt is the underlying statement; nil for the synthetic Exit node.
	Stmt ast.Stmt
	// Parts are the sub-nodes that execute AT this node — for simple
	// statements the statement itself, for compound statements only the
	// header (init/cond/tag) — so analyzers can scan a node without
	// descending into controlled bodies.
	Parts []ast.Node
	// Succs are the possible next nodes.
	Succs []*Node
}

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is the first node executed, nil for an empty body.
	Entry *Node
	// Exit is the synthetic function-exit node: every return, every fall
	// off the end, and every goto (conservatively) leads here.
	Exit *Node

	nodes map[ast.Stmt]*Node
}

// NodeFor returns the CFG node of a statement, or nil if the statement is
// not part of this graph (e.g. it lives in a nested function literal).
func (g *CFG) NodeFor(s ast.Stmt) *Node { return g.nodes[s] }

// ReachesExitAvoiding reports whether some path from the statement AFTER
// `from` to function exit avoids every node for which avoid returns true.
// It answers the pairing question "can control leave the function without
// passing a settle/release?" — from's own node is not consulted.
func (g *CFG) ReachesExitAvoiding(from ast.Stmt, avoid func(*Node) bool) bool {
	start := g.nodes[from]
	if start == nil {
		return false
	}
	seen := make(map[*Node]bool)
	var dfs func(n *Node) bool
	dfs = func(n *Node) bool {
		if seen[n] {
			return false
		}
		seen[n] = true
		if avoid(n) {
			return false
		}
		if n == g.Exit {
			return true
		}
		for _, s := range n.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	for _, s := range start.Succs {
		if dfs(s) {
			return true
		}
	}
	return false
}

// AllPathsPass reports whether every path from Entry to Exit passes at
// least one node for which hit returns true. Paths that never reach Exit
// (infinite loops, panics) do not count against it.
func (g *CFG) AllPathsPass(hit func(*Node) bool) bool {
	seen := make(map[*Node]bool)
	var avoids func(n *Node) bool // true: Exit reachable without a hit node
	avoids = func(n *Node) bool {
		if seen[n] {
			return false
		}
		seen[n] = true
		if hit(n) {
			return false
		}
		if n == g.Exit {
			return true
		}
		for _, s := range n.Succs {
			if avoids(s) {
				return true
			}
		}
		return false
	}
	return !avoids(g.Entry)
}

// WalkFrom visits every node reachable from the statement AFTER `from`,
// calling f once per node. When f returns true the walk does not continue
// past that node (its successors are not explored through it).
func (g *CFG) WalkFrom(from ast.Stmt, f func(*Node) (stop bool)) {
	start := g.nodes[from]
	if start == nil {
		return
	}
	seen := make(map[*Node]bool)
	var dfs func(n *Node)
	dfs = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		if f(n) {
			return
		}
		for _, s := range n.Succs {
			dfs(s)
		}
	}
	for _, s := range start.Succs {
		dfs(s)
	}
}

// cfgBuilder threads break/continue targets and the label table through the
// recursive construction.
type cfgBuilder struct {
	g          *CFG
	terminates func(ast.Stmt) bool
	breaks     []*Node            // innermost-last unlabeled break targets
	continues  []*Node            // innermost-last unlabeled continue targets
	labelBreak map[string]*Node   // label -> break target
	labelCont  map[string]*Node   // label -> continue target
	pendLabels []string           // labels attached to the next loop/switch
}

// BuildCFG constructs the CFG of a function body. terminates reports
// statements that never return control (panic and friends); it may be nil.
func BuildCFG(body *ast.BlockStmt, terminates func(ast.Stmt) bool) *CFG {
	if terminates == nil {
		terminates = func(ast.Stmt) bool { return false }
	}
	g := &CFG{Exit: &Node{}, nodes: make(map[ast.Stmt]*Node)}
	b := &cfgBuilder{
		g:          g,
		terminates: terminates,
		labelBreak: make(map[string]*Node),
		labelCont:  make(map[string]*Node),
	}
	g.Entry = b.block(body.List, g.Exit)
	if g.Entry == nil {
		g.Entry = g.Exit
	}
	return g
}

func (b *cfgBuilder) newNode(s ast.Stmt, parts ...ast.Node) *Node {
	n := &Node{Stmt: s}
	for _, p := range parts {
		if p != nil {
			n.Parts = append(n.Parts, p)
		}
	}
	b.g.nodes[s] = n
	return n
}

// block wires a statement list so it flows into next, returning its entry.
func (b *cfgBuilder) block(list []ast.Stmt, next *Node) *Node {
	entry := next
	for i := len(list) - 1; i >= 0; i-- {
		entry = b.stmt(list[i], entry)
	}
	if len(list) == 0 {
		return next
	}
	return entry
}

// stmt builds the node(s) for one statement flowing into next, returning
// the statement's entry node.
func (b *cfgBuilder) stmt(s ast.Stmt, next *Node) *Node {
	switch s := s.(type) {
	case *ast.BlockStmt:
		n := b.newNode(s) // empty header node keeps NodeFor total
		n.Succs = []*Node{b.block(s.List, next)}
		return n

	case *ast.IfStmt:
		n := b.newNode(s, s.Init, s.Cond)
		thenEntry := b.block(s.Body.List, next)
		elseEntry := next
		if s.Else != nil {
			elseEntry = b.stmt(s.Else, next)
		}
		n.Succs = []*Node{thenEntry, elseEntry}
		return n

	case *ast.ForStmt:
		head := b.newNode(s, s.Init, s.Cond, s.Post)
		b.pushLoop(head, next)
		bodyEntry := b.block(s.Body.List, head)
		b.popLoop()
		head.Succs = []*Node{bodyEntry}
		if s.Cond != nil {
			head.Succs = append(head.Succs, next)
		}
		return head

	case *ast.RangeStmt:
		head := b.newNode(s, s.Key, s.Value, s.X)
		b.pushLoop(head, next)
		bodyEntry := b.block(s.Body.List, head)
		b.popLoop()
		head.Succs = []*Node{bodyEntry, next}
		return head

	case *ast.SwitchStmt:
		return b.switchLike(s, next, s.Init, s.Tag, s.Body.List)

	case *ast.TypeSwitchStmt:
		return b.switchLike(s, next, s.Init, s.Assign, s.Body.List)

	case *ast.SelectStmt:
		head := b.newNode(s)
		b.pushBreakable(next)
		hasDefault := false
		for _, cc := range s.Body.List {
			cc := cc.(*ast.CommClause)
			clause := b.newNode(cc, cc.Comm)
			clause.Succs = []*Node{b.block(cc.Body, next)}
			head.Succs = append(head.Succs, clause)
			if cc.Comm == nil {
				hasDefault = true
			}
		}
		b.popBreakable()
		_ = hasDefault // a default-less select blocks; flow-wise all clauses are covered
		if len(head.Succs) == 0 {
			head.Succs = []*Node{next}
		}
		return head

	case *ast.ReturnStmt:
		n := b.newNode(s, s)
		n.Succs = []*Node{b.g.Exit}
		return n

	case *ast.BranchStmt:
		n := b.newNode(s, s)
		switch s.Tok.String() {
		case "break":
			if s.Label != nil {
				if t := b.labelBreak[s.Label.Name]; t != nil {
					n.Succs = []*Node{t}
					return n
				}
			} else if len(b.breaks) > 0 {
				n.Succs = []*Node{b.breaks[len(b.breaks)-1]}
				return n
			}
		case "continue":
			if s.Label != nil {
				if t := b.labelCont[s.Label.Name]; t != nil {
					n.Succs = []*Node{t}
					return n
				}
			} else if len(b.continues) > 0 {
				n.Succs = []*Node{b.continues[len(b.continues)-1]}
				return n
			}
		case "fallthrough":
			// Handled structurally by switchLike; a stray fallthrough
			// behaves like reaching the end of the clause.
			n.Succs = []*Node{next}
			return n
		}
		// Unresolvable target (goto, or a label we did not see): exit,
		// conservatively.
		n.Succs = []*Node{b.g.Exit}
		return n

	case *ast.LabeledStmt:
		// Register the label before building the labeled statement so
		// `continue L` / `break L` inside it resolve. The label targets are
		// filled by pushLoop via pendLabels.
		b.pendLabels = append(b.pendLabels, s.Label.Name)
		inner := b.stmt(s.Stmt, next)
		b.pendLabels = b.pendLabels[:0]
		// A labeled non-loop statement: label break jumps past it.
		if _, isLoop := s.Stmt.(*ast.ForStmt); !isLoop {
			if _, isRange := s.Stmt.(*ast.RangeStmt); !isRange {
				b.labelBreak[s.Label.Name] = next
			}
		}
		n := b.newNode(s)
		n.Succs = []*Node{inner}
		return n

	default:
		// Simple statement: decl, assignment, expression, send, defer, go,
		// inc/dec, empty.
		n := b.newNode(s, s)
		if b.terminates(s) {
			return n // no successors: this path never reaches Exit
		}
		n.Succs = []*Node{next}
		return n
	}
}

// switchLike builds expression and type switches: header -> every clause
// (plus next when no default), clause bodies -> next, fallthrough -> the
// next clause's body.
func (b *cfgBuilder) switchLike(s ast.Stmt, next *Node, init ast.Stmt, tag ast.Node, clauses []ast.Stmt) *Node {
	head := b.newNode(s, init, tag)
	b.pushBreakable(next)
	hasDefault := false
	// Build clause bodies last-to-first so fallthrough can target the
	// following clause's body entry.
	type built struct {
		clause *Node
	}
	entries := make([]built, len(clauses))
	followingBody := next
	for i := len(clauses) - 1; i >= 0; i-- {
		cc := clauses[i].(*ast.CaseClause)
		clause := b.newNode(cc, exprsToNodes(cc.List)...)
		bodyEntry := b.blockWithFallthrough(cc.Body, next, followingBody)
		clause.Succs = []*Node{bodyEntry}
		entries[i] = built{clause: clause}
		followingBody = bodyEntry
		if len(cc.List) == 0 {
			hasDefault = true
		}
	}
	b.popBreakable()
	for _, e := range entries {
		head.Succs = append(head.Succs, e.clause)
	}
	if !hasDefault || len(entries) == 0 {
		head.Succs = append(head.Succs, next)
	}
	return head
}

// blockWithFallthrough builds a case body whose trailing fallthrough flows
// into ftTarget instead of next.
func (b *cfgBuilder) blockWithFallthrough(list []ast.Stmt, next, ftTarget *Node) *Node {
	if n := len(list); n > 0 {
		if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
			ft := b.newNode(br, br)
			ft.Succs = []*Node{ftTarget}
			return b.block(list[:n-1], ft)
		}
	}
	return b.block(list, next)
}

func (b *cfgBuilder) pushLoop(head, after *Node) {
	b.breaks = append(b.breaks, after)
	b.continues = append(b.continues, head)
	for _, l := range b.pendLabels {
		b.labelBreak[l] = after
		b.labelCont[l] = head
	}
	b.pendLabels = b.pendLabels[:0]
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *cfgBuilder) pushBreakable(after *Node) {
	b.breaks = append(b.breaks, after)
	for _, l := range b.pendLabels {
		b.labelBreak[l] = after
	}
	b.pendLabels = b.pendLabels[:0]
}

func (b *cfgBuilder) popBreakable() {
	b.breaks = b.breaks[:len(b.breaks)-1]
}

func exprsToNodes(exprs []ast.Expr) []ast.Node {
	out := make([]ast.Node, len(exprs))
	for i, e := range exprs {
		out[i] = e
	}
	return out
}
