package ratelimit

import (
	"math"
	"testing"
	"testing/quick"
)

const ms = int64(1e6)

func TestDefaults(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Interval != 20*ms || cfg.Beta != 0.2 || cfg.SMax != 10 {
		t.Fatalf("defaults mismatch paper §4: %+v", cfg)
	}
	if cfg.Hysteresis != 2*cfg.Interval {
		t.Fatalf("hysteresis = %d, want 2δ", cfg.Hysteresis)
	}
}

func TestGammaForSaddle(t *testing.T) {
	// With γ from GammaForSaddle, the curve must return exactly to R0
	// after the requested saddle time.
	const saddle = 100 * ms
	g := GammaForSaddle(0.2, 10, saddle)
	cfg := Config{Gamma: g, Beta: 0.2}
	at := CurveAt(cfg, 10, saddle)
	if math.Abs(at-10) > 1e-9 {
		t.Fatalf("curve at saddle end = %v, want 10", at)
	}
	// Before the saddle end the curve is below R0, after it above.
	if CurveAt(cfg, 10, saddle/2) >= 10 {
		t.Fatal("curve should be below R0 mid-saddle")
	}
	if CurveAt(cfg, 10, saddle*2) <= 10 {
		t.Fatal("curve should be above R0 after the saddle")
	}
}

func TestGammaForSaddlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GammaForSaddle(0.2, 0, 100*ms)
}

func TestTokenBucketBasics(t *testing.T) {
	c := New(Config{InitialRate: 3})
	now := int64(0)
	// Burst capacity = max(srate,1) = 3.
	for i := 0; i < 3; i++ {
		if !c.TryAcquire(now) {
			t.Fatalf("acquire %d failed", i)
		}
	}
	if c.TryAcquire(now) {
		t.Fatal("4th acquire in one window should fail")
	}
	// Next window refills srate tokens.
	now += c.Interval()
	for i := 0; i < 3; i++ {
		if !c.TryAcquire(now) {
			t.Fatalf("acquire %d after refill failed", i)
		}
	}
	if c.TryAcquire(now) {
		t.Fatal("over-rate acquire should fail")
	}
}

func TestTokensCapAtBurst(t *testing.T) {
	c := New(Config{InitialRate: 5})
	now := int64(0)
	c.TryAcquire(now) // start the window clock
	// Skip 100 windows: tokens must cap at one window's worth, not 500.
	now += 100 * c.Interval()
	n := 0
	for c.TryAcquire(now) {
		n++
	}
	if n != 5 {
		t.Fatalf("acquired %d after long idle, want burst cap 5", n)
	}
}

func TestNextAvailable(t *testing.T) {
	c := New(Config{InitialRate: 2})
	now := int64(0)
	if got := c.NextAvailable(now); got != now {
		t.Fatalf("NextAvailable with tokens = %d, want now", got)
	}
	c.TryAcquire(now)
	c.TryAcquire(now)
	next := c.NextAvailable(now)
	if next != c.Interval() {
		t.Fatalf("NextAvailable = %d, want %d (next window)", next, c.Interval())
	}
	if !c.TryAcquire(next) {
		t.Fatal("acquire at NextAvailable time failed")
	}
}

// saturate runs `windows` consecutive windows in which the client sends
// `sends` requests per window and receives none, then delivers one response
// (which is when adaptation runs). Returns the time after the response.
func saturate(c *Cubic, start int64, windows, sends int) int64 {
	iv := c.Interval()
	for w := int64(0); w < int64(windows); w++ {
		for i := int64(0); i < int64(sends); i++ {
			c.TryAcquire(start + w*iv + i)
		}
	}
	now := start + int64(windows)*iv + 1
	c.OnResponse(now)
	return now
}

func TestMultiplicativeDecrease(t *testing.T) {
	c := New(Config{InitialRate: 10, Beta: 0.2})
	now := saturate(c, 0, 4, 5)
	if got := c.Rate(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("rate after decrease = %v, want 10·0.2 = 2", got)
	}
	if c.SaturationRate() != 10 {
		t.Fatalf("R0 = %v, want 10", c.SaturationRate())
	}
	if c.Decreases() != 1 {
		t.Fatalf("decreases = %d, want 1", c.Decreases())
	}
	_ = now
}

func TestNoDecreaseWithoutActualSends(t *testing.T) {
	// A sparse flow (allowance unused) must not be interpreted as server
	// saturation: srate > rrate alone is not evidence.
	c := New(Config{InitialRate: 10})
	for w := int64(0); w <= 20; w++ {
		c.OnResponse(w * 3 * c.Interval())
	}
	if c.Decreases() != 0 {
		t.Fatalf("decreases = %d on an idle flow, want 0", c.Decreases())
	}
	if c.Rate() != 10 {
		t.Fatalf("rate = %v, want untouched 10", c.Rate())
	}
}

func TestNoDecreaseWhenResponsesKeepUp(t *testing.T) {
	// A healthy saturated flow: every window sends 5 and receives 5.
	c := New(Config{InitialRate: 5})
	iv := c.Interval()
	for w := int64(0); w < 50; w++ {
		for i := int64(0); i < 5; i++ {
			c.TryAcquire(w*iv + i)
			c.OnResponse(w*iv + i + 1000)
		}
	}
	if c.Decreases() != 0 {
		t.Fatalf("decreases = %d on a healthy flow, want 0", c.Decreases())
	}
}

func TestDecreaseSpacingHysteresis(t *testing.T) {
	// Two decreases cannot happen within one hysteresis period even under
	// sustained saturation.
	c := New(Config{InitialRate: 100})
	now := saturate(c, 0, 4, 20)
	if c.Decreases() != 1 {
		t.Fatalf("decreases = %d, want 1", c.Decreases())
	}
	// More saturation evidence, response within hysteresis (2δ = 40ms).
	c.TryAcquire(now + 1)
	c.OnResponse(now + 2)
	if c.Decreases() != 1 {
		t.Fatalf("second decrease inside hysteresis: %d", c.Decreases())
	}
}

func TestCubicIncreaseTowardCurve(t *testing.T) {
	cfg := Config{InitialRate: 100, SMax: 10}
	c := New(cfg)
	// Decrease first: R0=100, srate=20.
	now := saturate(c, 0, 4, 20)
	if math.Abs(c.Rate()-20) > 1e-9 {
		t.Fatalf("rate = %v, want 20", c.Rate())
	}
	// Then deliver responses faster than srate: recvSm climbs above
	// srate and increases fire, each step capped at smax.
	prev := c.Rate()
	iv := c.Interval()
	for w := int64(0); w < 60; w++ {
		base := now + w*iv
		for i := int64(0); i < 40; i++ {
			c.OnResponse(base + i*1000)
			r := c.Rate()
			if r-prev > cfg.SMax+1e-9 {
				t.Fatalf("step %v -> %v exceeds smax", prev, r)
			}
			prev = r
		}
	}
	if c.Rate() <= 20 {
		t.Fatal("rate never recovered despite high receive rate")
	}
	if c.Increases() == 0 {
		t.Fatal("no increases recorded")
	}
}

func TestRateNeverExceedsMaxRate(t *testing.T) {
	cfg := Config{InitialRate: 50, MaxRate: 60}
	c := New(cfg)
	iv := c.Interval()
	for w := int64(0); w < 200; w++ {
		base := w * iv
		for i := int64(0); i < 100; i++ {
			c.OnResponse(base + i*1000)
		}
		if c.Rate() > cfg.MaxRate+1e-9 {
			t.Fatalf("rate %v exceeded MaxRate %v", c.Rate(), cfg.MaxRate)
		}
	}
}

func TestRateNeverBelowMinRate(t *testing.T) {
	cfg := Config{InitialRate: 10, MinRate: 1}
	c := New(cfg)
	now := int64(0)
	for i := 0; i < 20; i++ {
		now = saturate(c, now, 4, 3)
		if c.Rate() < cfg.MinRate {
			t.Fatalf("rate %v below MinRate", c.Rate())
		}
	}
	if c.Rate() != cfg.MinRate {
		t.Fatalf("sustained saturation should pin the floor; rate = %v", c.Rate())
	}
}

func TestNextAvailableFractionalRate(t *testing.T) {
	cfg := Config{InitialRate: 4, MinRate: 0.25}
	c := New(cfg)
	now := saturate(c, 0, 4, 2)
	if got := c.Rate(); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("rate = %v, want fractional 0.8", got)
	}
	// Drain any accrued tokens so the bucket is empty.
	for c.TryAcquire(now) {
	}
	next := c.NextAvailable(now)
	if next <= now {
		t.Fatal("NextAvailable should be in the future when bucket is empty")
	}
	if !c.TryAcquire(next) {
		t.Fatalf("token not available at NextAvailable=%d (now=%d, rate=%v)", next, now, c.Rate())
	}
}

func TestRecoveryAfterDecrease(t *testing.T) {
	// End-to-end controller behaviour: saturate (decrease), then serve
	// healthily with demand above the crushed rate — the controller must
	// climb back toward the demand level.
	c := New(Config{InitialRate: 20})
	now := saturate(c, 0, 4, 10)
	low := c.Rate() // 4
	iv := c.Interval()
	// Healthy phase: demand 10/window, server echoes everything.
	for w := int64(0); w < 100; w++ {
		base := now + w*iv
		sent := 0
		for i := int64(0); i < 10; i++ {
			if c.TryAcquire(base + i) {
				sent++
			}
		}
		for i := 0; i < sent; i++ {
			c.OnResponse(base + int64(i) + 5*ms)
		}
	}
	if c.Rate() <= low {
		t.Fatalf("rate %v did not recover above the post-decrease %v", c.Rate(), low)
	}
}

func TestMetersSmoothed(t *testing.T) {
	c := New(Config{InitialRate: 10})
	iv := c.Interval()
	for w := int64(0); w < 10; w++ {
		for i := int64(0); i < 4; i++ {
			c.TryAcquire(w*iv + i)
			c.OnResponse(w*iv + i + 1000)
		}
	}
	now := 10 * iv
	if got := c.SendRateMeasured(now); math.Abs(got-4) > 1 {
		t.Fatalf("smoothed send rate = %v, want ≈4", got)
	}
	if got := c.ReceiveRate(now); math.Abs(got-4) > 1 {
		t.Fatalf("smoothed receive rate = %v, want ≈4", got)
	}
}

func TestLongIdleDecaysMeters(t *testing.T) {
	c := New(Config{InitialRate: 10})
	iv := c.Interval()
	for w := int64(0); w < 5; w++ {
		for i := int64(0); i < 8; i++ {
			c.TryAcquire(w*iv + i)
			c.OnResponse(w*iv + i + 1000)
		}
	}
	// 100 idle windows later, the meters must have decayed to ~0.
	now := 105 * iv
	if got := c.ReceiveRate(now); got > 0.01 {
		t.Fatalf("receive meter = %v after long idle, want ~0", got)
	}
	if got := c.SendRateMeasured(now); got > 0.01 {
		t.Fatalf("send meter = %v after long idle, want ~0", got)
	}
}

// Property: under any interleaving of acquires and responses, the rate stays
// within [MinRate, MaxRate] and tokens stay within [0, max(srate,1)].
func TestInvariantsProperty(t *testing.T) {
	cfg := Config{InitialRate: 8, MinRate: 0.5, MaxRate: 200}
	f := func(ops []uint8, gaps []uint16) bool {
		c := New(cfg)
		now := int64(0)
		for i, op := range ops {
			if i < len(gaps) {
				now += int64(gaps[i]) * 1000
			}
			if op%2 == 0 {
				c.TryAcquire(now)
			} else {
				c.OnResponse(now)
			}
			if c.Rate() < cfg.MinRate-1e-9 || c.Rate() > cfg.MaxRate+1e-9 {
				return false
			}
			if c.tokens < -1e-9 || c.tokens > math.Max(c.srate, 1)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: admissions per window never exceed burst capacity.
func TestAdmissionBoundProperty(t *testing.T) {
	f := func(seed uint8) bool {
		c := New(Config{InitialRate: float64(seed%7) + 1})
		burst := math.Max(c.Rate(), 1)
		for w := int64(0); w < 50; w++ {
			admitted := 0.0
			base := w * c.Interval()
			for i := 0; i < 100; i++ {
				if c.TryAcquire(base + int64(i)) {
					admitted++
				}
			}
			if admitted > burst+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCurveRegions(t *testing.T) {
	cfg := DefaultConfig()
	r0 := 10.0
	// Low-rate region: steep growth right after decrease.
	early := CurveAt(cfg, r0, 1*ms) - CurveAt(cfg, r0, 0)
	// Saddle: flat around K.
	k := int64(math.Cbrt(cfg.Beta*r0/cfg.Gamma) * 1e9)
	mid := CurveAt(cfg, r0, k+1*ms) - CurveAt(cfg, r0, k-1*ms)
	if early <= mid {
		t.Fatalf("growth near origin (%v) should exceed growth at saddle (%v)", early, mid)
	}
	// Probing region: growth resumes past the saddle.
	late := CurveAt(cfg, r0, 2*k+50*ms) - CurveAt(cfg, r0, 2*k+49*ms)
	if late <= mid {
		t.Fatalf("probing growth (%v) should exceed saddle growth (%v)", late, mid)
	}
}

func BenchmarkTryAcquire(b *testing.B) {
	c := New(Config{})
	for i := 0; i < b.N; i++ {
		c.TryAcquire(int64(i) * 1000)
	}
}

func BenchmarkOnResponse(b *testing.B) {
	c := New(Config{})
	for i := 0; i < b.N; i++ {
		c.OnResponse(int64(i) * 1000)
	}
}

func TestLiteralDecreaseCollapsesSparseFlow(t *testing.T) {
	// The paper's literal Algorithm 2 condition: srate > rrate decreases
	// even when the client barely sends — the Fig. 13 "pinned near the
	// floor" behaviour on thinned flows.
	c := New(Config{InitialRate: 10, MinRate: 1, LiteralDecrease: true})
	iv := c.Interval()
	now := int64(0)
	for w := int64(0); w < 30; w++ {
		now = w * 3 * iv
		c.TryAcquire(now)
		c.OnResponse(now + ms)
	}
	if c.Rate() != 1 {
		t.Fatalf("literal mode should pin the floor on a sparse flow; rate = %v", c.Rate())
	}
	if c.Decreases() == 0 {
		t.Fatal("no decreases recorded in literal mode")
	}
}
