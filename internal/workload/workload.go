// Package workload reimplements the YCSB workload-generation machinery the
// paper drives its §5 evaluation with: Zipfian and scrambled-Zipfian key
// choosers (ρ = 0.99), the standard operation mixes (read-heavy 95/5,
// update-heavy 50/50, read-only), and record sizing including the skewed
// (Zipfian-distributed) field lengths of the variable-record experiment.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Op is an operation type drawn from a Mix.
type Op int

// Operation kinds.
const (
	OpRead Op = iota
	OpUpdate
	// OpMultiGet is a multi-key read: the front-end fetches a batch of keys
	// in one operation (a photo page's tags, a feed's items). The batch size
	// is drawn separately from a BatchSizer.
	OpMultiGet
)

// String renders the op name.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpMultiGet:
		return "MULTIGET"
	}
	return "UPDATE"
}

// Mix is an operation mix: the fraction of reads, with the remainder updates.
// MultiFrac optionally turns a fraction of the reads into multi-key reads.
type Mix struct {
	Name     string
	ReadFrac float64
	// MultiFrac is the fraction of reads issued as OpMultiGet (0 keeps the
	// mix single-key and draws no extra randomness, preserving the op
	// sequences of existing seeds).
	MultiFrac float64
}

// The paper's three YCSB workload mixes (§5): photo tagging, user-profile
// and session-store application patterns.
var (
	ReadHeavy   = Mix{Name: "Read-Heavy", ReadFrac: 0.95}
	ReadOnly    = Mix{Name: "Read-Only", ReadFrac: 1.00}
	UpdateHeavy = Mix{Name: "Update-Heavy", ReadFrac: 0.50}
)

// Choose draws an operation from the mix.
func (m Mix) Choose(r *rand.Rand) Op {
	if r.Float64() < m.ReadFrac {
		if m.MultiFrac > 0 && r.Float64() < m.MultiFrac {
			return OpMultiGet
		}
		return OpRead
	}
	return OpUpdate
}

// WithMultiGets returns the mix with frac of its reads issued as multi-key
// reads.
func (m Mix) WithMultiGets(frac float64) Mix {
	m.MultiFrac = frac
	return m
}

// Zipfian generates keys in [0, N) following a Zipfian distribution with
// parameter theta, using the Gray et al. algorithm YCSB uses. Item 0 is the
// hottest.
type Zipfian struct {
	n              uint64
	theta          float64
	alpha, zetan   float64
	eta, zeta2     float64
	countForZeta   uint64
	allowItemCount bool
}

// NewZipfian returns a generator over n items with the given theta
// (YCSB's default, used in the paper, is 0.99). It panics for n == 0 or
// theta outside (0, 1).
func NewZipfian(n uint64, theta float64) *Zipfian {
	if n == 0 {
		panic("workload: zipfian over zero items")
	}
	if theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("workload: zipfian theta %v outside (0,1)", theta))
	}
	z := &Zipfian{n: n, theta: theta}
	z.zetan = zetaStatic(n, theta)
	z.zeta2 = zetaStatic(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// zetaStatic computes the Riemann zeta partial sum Σ 1/i^theta for i ≤ n.
func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next item (0 is most popular).
func (z *Zipfian) Next(r *rand.Rand) uint64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// N reports the item count.
func (z *Zipfian) N() uint64 { return z.n }

// Scrambled wraps a Zipfian so the popular items are spread uniformly over
// the key space (YCSB's ScrambledZipfianGenerator), which is what prevents
// all hot keys from landing on one token range.
type Scrambled struct {
	z *Zipfian
}

// NewScrambled returns a scrambled Zipfian over n items.
func NewScrambled(n uint64, theta float64) *Scrambled {
	return &Scrambled{z: NewZipfian(n, theta)}
}

// Next draws the next item, hashed into [0, N).
func (s *Scrambled) Next(r *rand.Rand) uint64 {
	return fnv64(s.z.Next(r)) % s.z.n
}

// N reports the item count.
func (s *Scrambled) N() uint64 { return s.z.n }

// fnv64 is the FNV-1a finalizer YCSB uses for key scrambling.
func fnv64(v uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// Uniform draws keys uniformly from [0, N).
type Uniform struct {
	n uint64
}

// NewUniform returns a uniform chooser over n items; it panics for n == 0.
func NewUniform(n uint64) *Uniform {
	if n == 0 {
		panic("workload: uniform over zero items")
	}
	return &Uniform{n: n}
}

// Next draws the next item.
func (u *Uniform) Next(r *rand.Rand) uint64 { return r.Uint64N(u.n) }

// N reports the item count.
func (u *Uniform) N() uint64 { return u.n }

// KeyChooser is any key-popularity distribution.
type KeyChooser interface {
	Next(r *rand.Rand) uint64
	N() uint64
}

// BatchSizer draws the key count of a multi-key operation.
type BatchSizer interface {
	// Keys reports how many keys the next batch carries (always ≥ 1).
	Keys(r *rand.Rand) int
}

// FixedBatch always draws the same batch size — the controlled setting of
// the batch benchmark's sweep (4, 16, 64 keys).
type FixedBatch int

// Keys implements BatchSizer.
func (f FixedBatch) Keys(*rand.Rand) int {
	if f < 1 {
		return 1
	}
	return int(f)
}

// GeometricBatch draws batch sizes from a geometric distribution with the
// given mean — the long-tailed page sizes of real multi-key front-ends (most
// pages small, a few large). Sizes are capped at Max when it is positive.
type GeometricBatch struct {
	Mean float64
	Max  int
}

// Keys implements BatchSizer: the number of Bernoulli(1/Mean) trials until
// the first success — mean Mean, minimum 1.
func (g GeometricBatch) Keys(r *rand.Rand) int {
	if g.Mean <= 1 {
		return 1
	}
	p := 1 / g.Mean
	n := 1
	for r.Float64() >= p {
		n++
		if g.Max > 0 && n >= g.Max {
			return g.Max
		}
	}
	return n
}

// Sizer draws record sizes in bytes.
type Sizer interface {
	// Size reports the total record size for a key draw.
	Size(r *rand.Rand) int
}

// FixedSize always returns the same record size (the paper's main datasets
// use 1 KB records of 10 fields).
type FixedSize int

// Size implements Sizer.
func (f FixedSize) Size(*rand.Rand) int { return int(f) }

// ZipfianFields models the paper's skewed-record-size experiment: each record
// has Fields fields whose lengths follow a Zipfian distribution favouring
// shorter values, with the total record capped at MaxBytes.
type ZipfianFields struct {
	Fields   int
	MaxBytes int
	z        *Zipfian
}

// NewZipfianFields returns a sizer with nf fields and a cap of maxBytes.
func NewZipfianFields(nf, maxBytes int) *ZipfianFields {
	if nf <= 0 || maxBytes <= 0 {
		panic("workload: invalid field sizing")
	}
	perField := maxBytes / nf
	if perField < 1 {
		perField = 1
	}
	return &ZipfianFields{
		Fields:   nf,
		MaxBytes: maxBytes,
		z:        NewZipfian(uint64(perField), 0.99),
	}
}

// Size implements Sizer: the sum of nf Zipfian field lengths (hot = short).
func (zf *ZipfianFields) Size(r *rand.Rand) int {
	total := 0
	for i := 0; i < zf.Fields; i++ {
		total += int(zf.z.Next(r)) + 1
	}
	if total > zf.MaxBytes {
		total = zf.MaxBytes
	}
	return total
}

// Key renders item v as a YCSB-style key string ("user" + zero-padded id).
func Key(v uint64) string {
	return fmt.Sprintf("user%019d", v)
}
