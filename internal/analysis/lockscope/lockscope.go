// Package lockscope enforces the latency discipline around the repository's
// short critical sections: no blocking operation — network dial or I/O,
// file fsync, time.Sleep, or a send on a channel known to be unbuffered —
// while holding a mutex. The WAL's group-commit mutex and the coordinator's
// topology RWMutex sit on every request path; one fsync or dial under them
// turns a lock designed for nanoseconds into a convoy, which is exactly the
// queueing behavior the C3 feedback loop exists to avoid.
//
// The check is intraprocedural: a region starts at an explicit Lock/RLock
// statement and extends along every CFG path until the matching
// Unlock/RUnlock on the same rendered receiver ("w.mu", "n.peersMu"). A
// deferred unlock leaves the region open to function exit, matching its
// runtime behavior. Calls inside nested function literals do not count —
// a spawned goroutine does not hold the caller's lock. Designs that hold a
// dedicated I/O mutex across I/O on purpose (the WAL's ioMu) suppress with
// a reason.
package lockscope

import (
	"bytes"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"c3/internal/analysis"
)

// The shard-per-core runtime adds a second discipline: shards are
// independent by construction, so code holding one shard's mutex (a lock
// whose receiver is indexed, "n.st[i].mu") must never acquire a sibling
// shard's ("n.st[j].mu"). There is no legitimate cross-shard critical
// section — batch paths partition first and visit one shard at a time — and
// two goroutines locking shards in opposite orders would deadlock.
var Analyzer = &analysis.Analyzer{
	Name: "lockscope",
	Doc: "no blocking call (net I/O, fsync, time.Sleep, unbuffered channel " +
		"send) while holding a mutex; no cross-shard lock acquisition while " +
		"holding a shard mutex",
	Run: run,
}

func run(pass *analysis.Pass) error {
	terminates := analysis.Terminator(pass.TypesInfo)
	for _, b := range analysis.Bodies(pass.Files) {
		unbuffered := unbufferedChans(pass.TypesInfo, b.Body)
		var g *analysis.CFG
		analysis.InspectShallow(b.Body, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			key, kind := mutexOp(pass.TypesInfo, stmt.X)
			if kind != opLock {
				return true
			}
			if g == nil {
				g = analysis.BuildCFG(b.Body, terminates)
			}
			if g.NodeFor(stmt) == nil {
				return true
			}
			g.WalkFrom(stmt, func(node *analysis.Node) bool {
				if es, ok := node.Stmt.(*ast.ExprStmt); ok {
					if k, op := mutexOp(pass.TypesInfo, es.X); k == key && op == opUnlock {
						return true // region ends here
					}
				}
				reportCrossShard(pass, node, key)
				reportBlocking(pass, node, key, unbuffered)
				return false
			})
			return true
		})
	}
	return nil
}

type op int

const (
	opNone op = iota
	opLock
	opUnlock
)

// mutexOp recognizes X.Lock()/X.RLock()/X.Unlock()/X.RUnlock() on a
// sync.Mutex or sync.RWMutex and returns the rendered receiver expression
// as the region key.
func mutexOp(info *types.Info, e ast.Expr) (string, op) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", opNone
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	recv := analysis.ReceiverType(info, call)
	if recv == nil ||
		(!analysis.IsNamedType(recv, "sync", "Mutex") && !analysis.IsNamedType(recv, "sync", "RWMutex")) {
		return "", opNone
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return render(sel.X), opLock
	case "Unlock", "RUnlock":
		return render(sel.X), opUnlock
	}
	return "", opNone
}

// reportCrossShard flags Lock acquisitions of a sibling shard's mutex while
// a shard mutex is held: same indexed base and field path, different index
// expression. Same-key re-lock is left to the runtime's deadlock detector —
// this rule is about lock-order cycles between shards.
func reportCrossShard(pass *analysis.Pass, node *analysis.Node, lockKey string) {
	heldBase, heldIdx, heldRest, ok := splitIndexed(lockKey)
	if !ok {
		return
	}
	for _, part := range node.Parts {
		if _, isDefer := part.(*ast.DeferStmt); isDefer {
			continue
		}
		analysis.InspectShallow(part, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			k, op := mutexOp(pass.TypesInfo, call)
			if op != opLock {
				return true
			}
			base, idx, rest, indexed := splitIndexed(k)
			if indexed && base == heldBase && rest == heldRest && idx != heldIdx {
				pass.Reportf(call.Pos(),
					"acquiring %s while holding shard lock %s (cross-shard lock order)", k, lockKey)
			}
			return true
		})
	}
}

// splitIndexed decomposes a rendered lock key of the form "base[idx]rest"
// (e.g. "n.st[sh].mu" -> "n.st", "sh", ".mu"). ok is false for keys with no
// index expression.
func splitIndexed(key string) (base, idx, rest string, ok bool) {
	i := strings.IndexByte(key, '[')
	if i < 0 {
		return "", "", "", false
	}
	j := strings.IndexByte(key[i:], ']')
	if j < 0 {
		return "", "", "", false
	}
	return key[:i], key[i+1 : i+j], key[i+j+1:], true
}

// reportBlocking flags the blocking operations executed at node (shallow:
// literals run on other goroutines or after unlock).
func reportBlocking(pass *analysis.Pass, node *analysis.Node, lockKey string, unbuffered map[*types.Var]bool) {
	for _, part := range node.Parts {
		if _, isDefer := part.(*ast.DeferStmt); isDefer {
			continue // runs at exit, after any deferred unlock ordering choice
		}
		analysis.InspectShallow(part, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				if id, ok := ast.Unparen(n.Chan).(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && unbuffered[v] {
						pass.Reportf(n.Arrow,
							"send on unbuffered channel %s while holding %s", v.Name(), lockKey)
					}
				}
			case *ast.CallExpr:
				if what := blockingCall(pass.TypesInfo, n); what != "" {
					pass.Reportf(n.Pos(), "%s while holding %s", what, lockKey)
				}
			}
			return true
		})
	}
}

// blockingCall names the blocking operation a call performs, "" for none.
// The denylist is deliberately tight — only operations that are
// unconditionally slow — so every finding is actionable.
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	pkg, name, isMethod := analysis.CalleeName(info, call)
	if !isMethod {
		if pkg == "time" && name == "Sleep" {
			return "time.Sleep"
		}
		if pkg == "net" {
			switch name {
			case "Dial", "DialTimeout", "DialTCP", "DialUDP", "Listen", "ListenTCP", "ListenPacket":
				return "net." + name
			}
		}
		return ""
	}
	recv := analysis.ReceiverType(info, call)
	if recv == nil {
		return ""
	}
	if name == "Sync" && analysis.IsNamedType(recv, "os", "File") {
		return "File.Sync (fsync)"
	}
	if (name == "Read" || name == "Write") && isNetConn(info, call) {
		return "net.Conn." + name
	}
	return ""
}

// isNetConn reports whether the call's receiver is the net.Conn interface or
// a concrete net connection type.
func isNetConn(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	return analysis.IsNamedType(t, "net", "Conn") ||
		analysis.IsNamedType(t, "net", "TCPConn") ||
		analysis.IsNamedType(t, "net", "UDPConn")
}

// unbufferedChans finds channels the body provably makes unbuffered:
// v := make(chan T) or make(chan T, 0).
func unbufferedChans(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Lhs) != 1 || len(a.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "make" {
			return true
		}
		if _, isChan := info.TypeOf(call).Underlying().(*types.Chan); !isChan {
			return true
		}
		size := int64(0)
		if len(call.Args) == 2 {
			tv, ok := info.Types[call.Args[1]]
			if !ok || tv.Value == nil {
				return true // dynamic size: unknown, stay quiet
			}
			var exact bool
			size, exact = constInt(tv)
			if !exact {
				return true
			}
		}
		if size != 0 {
			return true
		}
		if id, ok := ast.Unparen(a.Lhs[0]).(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok {
				out[v] = true
			} else if v, ok := info.Uses[id].(*types.Var); ok {
				out[v] = true
			}
		}
		return true
	})
	return out
}

func constInt(tv types.TypeAndValue) (int64, bool) {
	if tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// render prints an expression compactly for use as a region key.
func render(e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
