package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"c3/internal/kvstore"
	"c3/internal/sim"
	"c3/internal/stats"
	"c3/internal/workload"
)

// Tail scenarios: the failure modes a production replica-selection
// deployment lives with, injected into the live TCP store.
const (
	// tailSlow degrades one replica's storage to slowFactor× the healthy
	// mean — the paper's Fig. 13 tc-style degradation.
	tailSlow = "slow"
	// tailCrash kills one node a third of the way into the run.
	tailCrash = "crash"
	// tailFlap oscillates one replica between degraded and healthy every
	// flapPeriod.
	tailFlap = "flap"
)

// TailRow is one (scenario, strategy, hedging) cell of the tail benchmark.
type TailRow struct {
	Scenario      string  `json:"scenario"`
	Strategy      string  `json:"strategy"`
	Hedged        bool    `json:"hedged"`
	Ops           int     `json:"ops"`
	Errors        int     `json:"errors"`
	Seconds       float64 `json:"seconds"`
	ThroughputOps float64 `json:"throughput_ops_per_sec"`
	ReadP50Us     float64 `json:"read_p50_us"`
	ReadP99Us     float64 `json:"read_p99_us"`
	ReadP999Us    float64 `json:"read_p999_us"`
	// Hedges / HedgeWins aggregate the coordinators' speculative duplicates
	// and the reads they answered; DuplicatePct is the extra replica load
	// hedging cost (hedges per hundred reads).
	Hedges       uint64  `json:"hedges"`
	HedgeWins    uint64  `json:"hedge_wins"`
	DuplicatePct float64 `json:"duplicate_load_pct"`
	// WriteFailures counts coordinated writes no replica acknowledged
	// (must be zero in every scenario here: a replica always survives).
	WriteFailures uint64 `json:"write_failures"`
	// OutstandingResidual is the cluster-wide selector accounting left
	// after the run quiesced — any non-zero value is a leak.
	OutstandingResidual float64 `json:"outstanding_residual"`
}

// TailResult is the machine-readable record of the tail benchmark
// (BENCH_tail.json): hedging on/off across strategies under injected
// failures.
type TailResult struct {
	Config          Meta      `json:"config"`
	Nodes           int       `json:"nodes"`
	Workers         int       `json:"workers"`
	Keys            int       `json:"keys"`
	ValueBytes      int       `json:"value_bytes"`
	ReadFraction    float64   `json:"read_fraction"`
	ReadDelayMeanUs float64   `json:"read_delay_mean_us"`
	SlowFactor      float64   `json:"slow_factor"`
	Rows            []TailRow `json:"rows"`
}

// tailOps reports the per-run operation budget for the scale.
func (o Options) tailOps() int {
	switch o.Scale {
	case Full:
		return 60_000
	case Medium:
		return 15_000
	default:
		return 2_000
	}
}

// tailStrategies reports the strategies compared at the scale. Quick runs
// (CI, unit smoke) cover C3 only; medium and full add the baselines.
func (o Options) tailStrategies() []string {
	if o.Scale == Quick {
		return []string{kvstore.StratC3}
	}
	return []string{kvstore.StratC3, kvstore.StratLOR, kvstore.StratRR}
}

const (
	tailNodes        = 5
	tailWorkers      = 6
	tailKeys         = 256
	tailValueBytes   = 128
	tailReadFraction = 0.9
	tailReadDelay    = 1 * time.Millisecond
	tailSlowFactor   = 5 // degraded replica's mean read delay vs healthy
	tailFlapPeriod   = 150 * time.Millisecond
)

// tailSlowdown is the extra constant delay that makes one replica's mean
// read delay slowFactor× the healthy mean.
func tailSlowdown() time.Duration {
	return time.Duration(tailSlowFactor-1) * tailReadDelay
}

// runTailRow boots a cluster, injects one failure scenario, drives the
// workload, and measures the row.
func runTailRow(o Options, scenario, strategy string, hedged bool, seed uint64) (TailRow, error) {
	row := TailRow{Scenario: scenario, Strategy: strategy, Hedged: hedged}
	cfg := kvstore.Config{
		Strategy:      strategy,
		Seed:          seed,
		ReadDelayMean: tailReadDelay,
	}
	cfg.Hedge.Disabled = !hedged
	cluster, err := kvstore.StartCluster(tailNodes, cfg)
	if err != nil {
		return row, err
	}
	defer cluster.Close()
	cl, err := kvstore.Dial(cluster.Addrs())
	if err != nil {
		return row, err
	}
	defer cl.Close()

	keys := make([]string, tailKeys)
	val := make([]byte, tailValueBytes)
	for i := range val {
		val[i] = byte(i)
	}
	for i := range keys {
		keys[i] = fmt.Sprintf("tail-%05d", i)
		if err := cl.Put(keys[i], val); err != nil {
			return row, err
		}
	}
	for i := range keys { // CL=ONE: wait until readable from any coordinator
		for attempt := 0; ; attempt++ {
			if _, ok, err := cl.Get(keys[i]); err == nil && ok {
				break
			} else if attempt > 200 {
				return row, fmt.Errorf("bench: key %q never became readable: %v", keys[i], err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// The injected victim: never node 0, so the external client always has
	// a healthy first coordinator to fall back to.
	victim := cluster.Nodes[tailNodes-1]
	ops := o.tailOps()
	perWorker := ops / tailWorkers
	var done atomic.Int64
	stopFlap := make(chan struct{})
	var injectorWG sync.WaitGroup
	var crashOnce sync.Once
	switch scenario {
	case tailSlow:
		victim.SetSlowdown(tailSlowdown())
	case tailFlap:
		injectorWG.Add(1)
		go func() {
			defer injectorWG.Done()
			tick := time.NewTicker(tailFlapPeriod)
			defer tick.Stop()
			up := false
			for {
				select {
				case <-stopFlap:
					victim.SetSlowdown(0)
					return
				case <-tick.C:
					if up {
						victim.SetSlowdown(0)
					} else {
						victim.SetSlowdown(2 * tailSlowdown())
					}
					up = !up
				}
			}
		}()
	}

	zipf := workload.NewScrambled(tailKeys, 0.99)
	lat := make([][]float64, tailWorkers)
	errCounts := make([]int, tailWorkers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < tailWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := sim.RNG(seed, uint64(w)+13)
			samples := make([]float64, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				if scenario == tailCrash && done.Add(1) == int64(ops/3) {
					crashOnce.Do(victim.Close)
				}
				k := keys[int(zipf.Next(r))%tailKeys]
				if r.Float64() < tailReadFraction {
					t0 := time.Now()
					_, ok, err := cl.Get(k)
					d := time.Since(t0)
					if err != nil || !ok {
						errCounts[w]++
						continue
					}
					samples = append(samples, float64(d.Nanoseconds())/1e3)
				} else if err := cl.Put(k, val); err != nil {
					errCounts[w]++
				}
			}
			lat[w] = samples
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopFlap)
	injectorWG.Wait()
	if scenario == tailCrash {
		crashOnce.Do(victim.Close) // tiny runs may never reach the trigger
	}

	// Quiesce, then read the accounting residual: the invariant is that
	// every failure path released its outstanding counts.
	residual := func() float64 {
		total := 0.0
		for i, n := range cluster.Nodes {
			if scenario == tailCrash && i == tailNodes-1 {
				continue
			}
			for p := 0; p < tailNodes; p++ {
				total += n.OutstandingToward(p)
			}
		}
		return total
	}
	deadline := time.Now().Add(2 * time.Second)
	for residual() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	reads := stats.NewSample(ops)
	measured := 0
	for _, s := range lat {
		measured += len(s)
		for _, x := range s {
			reads.Add(x)
		}
	}
	for i, n := range cluster.Nodes {
		if scenario == tailCrash && i == tailNodes-1 {
			continue
		}
		row.Hedges += n.HedgesIssued()
		row.HedgeWins += n.HedgeWins()
		row.WriteFailures += n.WriteFailures()
	}
	for _, c := range errCounts {
		row.Errors += c
	}
	row.Ops = perWorker * tailWorkers
	row.Seconds = elapsed.Seconds()
	row.ThroughputOps = float64(row.Ops) / elapsed.Seconds()
	row.ReadP50Us = reads.Percentile(50)
	row.ReadP99Us = reads.Percentile(99)
	row.ReadP999Us = reads.Percentile(99.9)
	if measured > 0 {
		row.DuplicatePct = 100 * float64(row.Hedges) / float64(measured)
	}
	row.OutstandingResidual = residual()
	return row, nil
}

// RunTail executes the full scenario × strategy × hedging grid.
func RunTail(o Options) (TailResult, error) {
	res := TailResult{
		Config:          o.meta(runtime.GOMAXPROCS(0), SyncInMemory),
		Nodes:           tailNodes,
		Workers:         tailWorkers,
		Keys:            tailKeys,
		ValueBytes:      tailValueBytes,
		ReadFraction:    tailReadFraction,
		ReadDelayMeanUs: float64(tailReadDelay) / 1e3,
		SlowFactor:      tailSlowFactor,
	}
	seed := uint64(1)
	for _, scenario := range []string{tailSlow, tailCrash, tailFlap} {
		for _, strategy := range o.tailStrategies() {
			for _, hedged := range []bool{true, false} {
				row, err := runTailRow(o, scenario, strategy, hedged, seed)
				if err != nil {
					return res, fmt.Errorf("tail %s/%s hedged=%v: %w", scenario, strategy, hedged, err)
				}
				res.Rows = append(res.Rows, row)
				seed += 101
			}
		}
	}
	return res, nil
}

// findTailRow locates a cell of the grid.
func findTailRow(res TailResult, scenario, strategy string, hedged bool) (TailRow, bool) {
	for _, row := range res.Rows {
		if row.Scenario == scenario && row.Strategy == strategy && row.Hedged == hedged {
			return row, true
		}
	}
	return TailRow{}, false
}

// writeTailJSON writes the machine-readable record to path.
func writeTailJSON(res TailResult, path string) error {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}

// Tail is the runner for the tail-tolerance benchmark: failure scenarios
// injected into the live store, hedging on/off across strategies. With
// Options.TailJSONPath set it also writes BENCH_tail.json.
func Tail(o Options) *Report {
	r := newReport("tail", "tail tolerance under injected failures (hedged vs unhedged)")
	res, err := RunTail(o)
	if err != nil {
		r.fail(err)
		return r
	}
	r.printf("%d nodes, %d workers, %.0f%% reads, %d ops/run, storage delay %.1fms (slow replica ×%.0f)",
		res.Nodes, res.Workers, res.ReadFraction*100, o.tailOps(),
		res.ReadDelayMeanUs/1e3, res.SlowFactor)
	for _, row := range res.Rows {
		mode := "unhedged"
		if row.Hedged {
			mode = "hedged"
		}
		r.printf("  %-5s %-3s %-8s p50=%7.0fµs p99=%8.0fµs p99.9=%8.0fµs thr=%6.0f/s dup=%4.1f%% wins=%d errs=%d resid=%.0f",
			row.Scenario, row.Strategy, mode,
			row.ReadP50Us, row.ReadP99Us, row.ReadP999Us, row.ThroughputOps,
			row.DuplicatePct, row.HedgeWins, row.Errors, row.OutstandingResidual)
	}
	if hedged, ok := findTailRow(res, tailSlow, kvstore.StratC3, true); ok {
		if unhedged, ok := findTailRow(res, tailSlow, kvstore.StratC3, false); ok {
			r.printf("  slow-replica C3 p99: hedged %.0fµs vs unhedged %.0fµs (%.2fx), duplicate load %.1f%%",
				hedged.ReadP99Us, unhedged.ReadP99Us,
				unhedged.ReadP99Us/hedged.ReadP99Us, hedged.DuplicatePct)
			r.Metric("tail_slow_C3_hedged_p99_us", hedged.ReadP99Us)
			r.Metric("tail_slow_C3_unhedged_p99_us", unhedged.ReadP99Us)
			r.Metric("tail_slow_C3_p99_speedup", unhedged.ReadP99Us/hedged.ReadP99Us)
			r.Metric("tail_slow_C3_duplicate_pct", hedged.DuplicatePct)
		}
	}
	resid := 0.0
	for _, row := range res.Rows {
		resid += row.OutstandingResidual
	}
	r.Metric("tail_outstanding_residual_total", resid)
	if o.TailJSONPath != "" {
		if err := writeTailJSON(res, o.TailJSONPath); err != nil {
			r.printf("write %s: %v", o.TailJSONPath, err)
		} else {
			r.printf("wrote %s", o.TailJSONPath)
		}
	}
	return r
}
