// Package wire is the binary protocol of the TCP key-value store: length-
// prefixed frames carrying read/write requests and responses. Every response
// piggybacks the C3 feedback fields — the server's pending-read count and its
// smoothed service time — exactly as §4 describes for the Cassandra
// implementation ("this information is piggybacked to the coordinator and
// serves as the feedback for the replica ranking").
//
// Frame layout (little endian):
//
//	uint32  payload length (excluding these 4 bytes)
//	uint8   message type
//	uint64  request id
//	...     type-specific payload
//
// Read responses carry the value bytes *before* the feedback fields so a
// server can stream the value straight out of its storage engine and only
// then sample its queue-size/service-time feedback — the feedback describes
// the state after the read completed, as in §3.1.
//
// # Hot-path contract
//
// The package is built for an allocation-free steady state:
//
//   - Encoding is exposed as pure append functions (AppendReadReq, …) that
//     extend a caller-owned buffer, so connection writers can pool frame
//     buffers and coalesce many frames per flush.
//   - Writer no longer flushes per frame: frames accumulate in its buffer
//     until an explicit Flush, amortizing write syscalls under load.
//   - Decoding is zero-copy: parsed Value slices alias the input payload and
//     parsed Key strings alias it via unsafe.String. Both are valid only
//     until the frame buffer is reused (for Reader payloads: until the next
//     call to Next). Callers that retain or escape them must copy
//     (strings.Clone / append) first.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"unsafe"
)

// Message types.
const (
	// MsgRead is a client→coordinator read.
	MsgRead uint8 = iota + 1
	// MsgReadInternal is a coordinator→replica read (served locally by
	// the replica rather than re-coordinated).
	MsgReadInternal
	MsgReadResp
	// MsgWrite is a client→coordinator write.
	MsgWrite
	// MsgWriteInternal is a coordinator→replica write.
	MsgWriteInternal
	MsgWriteResp
)

// MaxFrame bounds a frame payload; anything larger is a protocol error.
const MaxFrame = 16 << 20

// Limits within a frame. MaxKeyLen must fit the uint16 length prefix — a
// 1<<16 key would silently wrap the prefix to 0 and corrupt the frame.
const (
	MaxKeyLen   = 1<<16 - 1
	MaxValueLen = 8 << 20
)

// MaxRetainedBuffer caps the frame buffer a Reader keeps across frames. A
// single MaxFrame-sized frame would otherwise pin megabytes for the
// connection's lifetime; after serving an oversized frame the Reader shrinks
// back to this cap.
const MaxRetainedBuffer = 64 << 10

// ErrFrameTooLarge reports an oversized frame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")

// Feedback is the per-response server feedback (§3.1's q_s and 1/µ_s).
type Feedback struct {
	QueueSize float64
	ServiceNs int64
}

// ReadReq asks for a key. Internal requests are replica-local reads.
type ReadReq struct {
	ID  uint64
	Key string
}

// ReadResp answers a read.
type ReadResp struct {
	ID    uint64
	Found bool
	Value []byte
	FB    Feedback
}

// WriteReq stores a value.
type WriteReq struct {
	ID    uint64
	Key   string
	Value []byte
}

// WriteResp acknowledges a write. OK distinguishes a genuine ack from a
// failure report: a replica sets it after applying the write locally, and a
// coordinator sets it only when at least one replica applied the write — an
// all-replicas-down write comes back with OK false and must surface as an
// error, never as an ack.
type WriteResp struct {
	ID uint64
	OK bool
	FB Feedback
}

// --- encoding -------------------------------------------------------------

// beginFrame appends the 5-byte frame header with a length placeholder,
// returning the extended buffer and the header's offset for endFrame.
func beginFrame(dst []byte, typ uint8) ([]byte, int) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, typ)
	return dst, start
}

// endFrame patches the length prefix of the frame begun at start.
func endFrame(dst []byte, start int) ([]byte, error) {
	n := len(dst) - start - 4 // payload length, including the type byte
	if n-1 > MaxFrame {
		return dst[:start], ErrFrameTooLarge
	}
	binary.LittleEndian.PutUint32(dst[start:start+4], uint32(n))
	return dst, nil
}

func appendU64(dst []byte, v uint64) []byte  { return binary.LittleEndian.AppendUint64(dst, v) }
func appendI64(dst []byte, v int64) []byte   { return appendU64(dst, uint64(v)) }
func appendF64(dst []byte, v float64) []byte { return appendU64(dst, math.Float64bits(v)) }

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendStr(dst []byte, s string) ([]byte, error) {
	if len(s) > MaxKeyLen {
		return dst, fmt.Errorf("wire: key length %d exceeds limit", len(s))
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...), nil
}

func appendBytes(dst []byte, b []byte) ([]byte, error) {
	if len(b) > MaxValueLen {
		return dst, fmt.Errorf("wire: value length %d exceeds limit", len(b))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...), nil
}

func appendFeedback(dst []byte, fb Feedback) []byte {
	dst = appendF64(dst, fb.QueueSize)
	return appendI64(dst, fb.ServiceNs)
}

// AppendReadReq appends a complete framed read request of the given type
// (MsgRead or MsgReadInternal) to dst. On error dst is returned unchanged.
func AppendReadReq(dst []byte, typ uint8, m ReadReq) ([]byte, error) {
	dst, start := beginFrame(dst, typ)
	dst, err := appendStr(appendU64(dst, m.ID), m.Key)
	if err != nil {
		return dst[:start], err
	}
	return endFrame(dst, start)
}

// AppendReadResp appends a complete framed read response to dst.
func AppendReadResp(dst []byte, m ReadResp) ([]byte, error) {
	dst, start := beginFrame(dst, MsgReadResp)
	dst = appendBool(appendU64(dst, m.ID), m.Found)
	dst, err := appendBytes(dst, m.Value)
	if err != nil {
		return dst[:start], err
	}
	return endFrame(appendFeedback(dst, m.FB), start)
}

// ReadRespMark tracks an in-progress streamed read response between
// BeginReadResp and FinishReadResp.
type ReadRespMark struct{ start, foundAt, lenAt int }

// BeginReadResp starts a read-response frame whose value bytes the caller
// appends directly — the zero-copy server path: the storage engine writes
// the value straight into the outgoing frame buffer. Append only, then call
// FinishReadResp with the same mark.
func BeginReadResp(dst []byte, id uint64) ([]byte, ReadRespMark) {
	dst, start := beginFrame(dst, MsgReadResp)
	dst = appendU64(dst, id)
	m := ReadRespMark{start: start, foundAt: len(dst)}
	dst = append(dst, 0)
	m.lenAt = len(dst)
	dst = append(dst, 0, 0, 0, 0)
	return dst, m
}

// FinishReadResp completes a frame begun with BeginReadResp: it patches the
// found flag and value length, then appends the feedback — sampled after the
// value was produced, so it reflects the post-read server state. On error
// dst is returned with the partial frame removed.
func FinishReadResp(dst []byte, m ReadRespMark, found bool, fb Feedback) ([]byte, error) {
	vlen := len(dst) - m.lenAt - 4
	if vlen < 0 {
		return dst[:m.start], errors.New("wire: value bytes truncated the buffer")
	}
	if vlen > MaxValueLen {
		return dst[:m.start], fmt.Errorf("wire: value length %d exceeds limit", vlen)
	}
	if found {
		dst[m.foundAt] = 1
	}
	binary.LittleEndian.PutUint32(dst[m.lenAt:m.lenAt+4], uint32(vlen))
	return endFrame(appendFeedback(dst, fb), m.start)
}

// AppendWriteReq appends a complete framed write request of the given type
// (MsgWrite or MsgWriteInternal) to dst.
func AppendWriteReq(dst []byte, typ uint8, m WriteReq) ([]byte, error) {
	dst, start := beginFrame(dst, typ)
	dst, err := appendStr(appendU64(dst, m.ID), m.Key)
	if err != nil {
		return dst[:start], err
	}
	if dst, err = appendBytes(dst, m.Value); err != nil {
		return dst[:start], err
	}
	return endFrame(dst, start)
}

// AppendWriteResp appends a complete framed write acknowledgement to dst.
func AppendWriteResp(dst []byte, m WriteResp) ([]byte, error) {
	dst, start := beginFrame(dst, MsgWriteResp)
	return endFrame(appendFeedback(appendBool(appendU64(dst, m.ID), m.OK), m.FB), start)
}

// Writer frames outgoing messages into a buffer. Frames accumulate until an
// explicit Flush — a per-connection writer goroutine coalesces many frames
// per flush to amortize write syscalls. Not safe for concurrent use; callers
// serialize.
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Flush pushes every buffered frame to the underlying writer in one write.
func (w *Writer) Flush() error { return w.w.Flush() }

// Buffered reports how many framed bytes await a Flush.
func (w *Writer) Buffered() int { return w.w.Buffered() }

// WriteRaw buffers one already-encoded frame (built by the Append*
// functions). The frame bytes are copied; the caller may recycle them.
func (w *Writer) WriteRaw(frame []byte) error {
	_, err := w.w.Write(frame)
	return err
}

// buffer stashes an encoded frame, retaining the (possibly grown) scratch
// buffer for the next message — unless it grew past MaxRetainedBuffer, so
// one oversized message does not pin its memory for the Writer's lifetime.
func (w *Writer) buffer(b []byte, err error) error {
	if err != nil {
		return err
	}
	if cap(b) <= MaxRetainedBuffer {
		w.buf = b[:0]
	} else {
		w.buf = nil
	}
	_, err = w.w.Write(b)
	return err
}

// WriteRead buffers a read request frame of the given type (MsgRead or
// MsgReadInternal).
func (w *Writer) WriteRead(typ uint8, m ReadReq) error {
	return w.buffer(AppendReadReq(w.buf[:0], typ, m))
}

// WriteReadResp buffers a read response.
func (w *Writer) WriteReadResp(m ReadResp) error {
	return w.buffer(AppendReadResp(w.buf[:0], m))
}

// WriteWrite buffers a write request frame of the given type (MsgWrite or
// MsgWriteInternal).
func (w *Writer) WriteWrite(typ uint8, m WriteReq) error {
	return w.buffer(AppendWriteReq(w.buf[:0], typ, m))
}

// WriteWriteResp buffers a write acknowledgement.
func (w *Writer) WriteWriteResp(m WriteResp) error {
	return w.buffer(AppendWriteResp(w.buf[:0], m))
}

// Reader parses incoming frames. Not safe for concurrent use.
type Reader struct {
	r   *bufio.Reader
	buf []byte
	hdr [5]byte // header scratch; a field so it does not escape per call
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Reset redirects the Reader to a new source, retaining its buffers — this
// is what makes a steady-state decode loop allocation-free (see the
// AllocsPerRun round-trip test) and supports future connection reuse.
func (r *Reader) Reset(src io.Reader) { r.r.Reset(src) }

// Next reads one frame, returning its type and payload. The payload aliases
// the Reader's internal buffer and is valid only until the next call to
// Next; anything parsed out of it that must outlive the frame (Key strings,
// Value slices — see the package contract) has to be copied. Frames larger
// than MaxRetainedBuffer are served from a temporary buffer that is shrunk
// back afterwards, so one oversized frame does not pin its memory for the
// connection's lifetime.
func (r *Reader) Next() (uint8, []byte, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(r.hdr[:4])
	if n < 1 || n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	typ := r.hdr[4]
	body := int(n) - 1
	switch {
	case cap(r.buf) < body:
		r.buf = make([]byte, body)
	case body <= MaxRetainedBuffer && cap(r.buf) > MaxRetainedBuffer:
		// A past oversized frame grew the buffer; shrink back to the cap.
		r.buf = make([]byte, body, MaxRetainedBuffer)
	default:
		r.buf = r.buf[:body]
	}
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return 0, nil, err
	}
	return typ, r.buf, nil
}

// decoder walks a payload with bounds checks.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) need(n int) bool {
	if d.err != nil || len(d.b) < n {
		d.err = errors.New("wire: truncated frame")
		return false
	}
	return true
}
func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}
func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *decoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// str returns a string aliasing the payload (zero-copy). The string is valid
// only as long as the payload's backing buffer; retainers must
// strings.Clone.
func (d *decoder) str() string {
	if !d.need(2) {
		return ""
	}
	n := int(binary.LittleEndian.Uint16(d.b))
	d.b = d.b[2:]
	if n == 0 {
		return ""
	}
	if !d.need(n) {
		return ""
	}
	s := unsafe.String(&d.b[0], n)
	d.b = d.b[n:]
	return s
}

// bytes returns a slice aliasing the payload (zero-copy, capacity clamped so
// appends cannot scribble on the rest of the frame). Valid only as long as
// the payload's backing buffer; retainers must copy.
func (d *decoder) bytes() []byte {
	if !d.need(4) {
		return nil
	}
	n := int(binary.LittleEndian.Uint32(d.b))
	d.b = d.b[4:]
	if n > MaxValueLen || !d.need(n) {
		d.err = errors.New("wire: bad value length")
		return nil
	}
	out := d.b[:n:n]
	d.b = d.b[n:]
	return out
}

// ParseReadReq decodes a MsgRead/MsgReadInternal payload. The returned Key
// aliases b (see the package contract).
func ParseReadReq(b []byte) (ReadReq, error) {
	d := decoder{b: b}
	m := ReadReq{ID: d.u64(), Key: d.str()}
	return m, d.err
}

// ParseReadResp decodes a MsgReadResp payload. The returned Value aliases b
// (see the package contract).
func ParseReadResp(b []byte) (ReadResp, error) {
	d := decoder{b: b}
	m := ReadResp{ID: d.u64()}
	m.Found = d.u8() == 1
	m.Value = d.bytes()
	m.FB.QueueSize = d.f64()
	m.FB.ServiceNs = d.i64()
	return m, d.err
}

// ParseWriteReq decodes a MsgWrite/MsgWriteInternal payload. The returned
// Key and Value alias b (see the package contract).
func ParseWriteReq(b []byte) (WriteReq, error) {
	d := decoder{b: b}
	m := WriteReq{ID: d.u64(), Key: d.str()}
	m.Value = d.bytes()
	return m, d.err
}

// ParseWriteResp decodes a MsgWriteResp payload.
func ParseWriteResp(b []byte) (WriteResp, error) {
	d := decoder{b: b}
	m := WriteResp{ID: d.u64()}
	m.OK = d.u8() == 1
	m.FB.QueueSize = d.f64()
	m.FB.ServiceNs = d.i64()
	return m, d.err
}
