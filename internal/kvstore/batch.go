package kvstore

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"c3/internal/core"
	"c3/internal/lsm"
	"c3/internal/ring"
	"c3/internal/wire"
)

// This file is the coordinator half of the batch path (MultiGet/MultiPut):
// scatter-gather over replica-group sub-batches.
//
// A client batch of K keys is partitioned by the ring into at most
// min(K, groups) sub-batches. Each sub-batch is ranked and admitted through
// the shared selector as ONE rate-limited RPC carrying n keys — the limiter
// paces frames, the ranker's outstanding accounting moves by n (PickBatch) —
// and coalesced into one MsgBatchReadInternal/MsgBatchWriteInternal frame to
// the chosen replica: one pooled call record, one enqueue, one flush
// opportunity. Sub-batches scatter concurrently; the gather assembles per-key
// results in client order.
//
// Stragglers reuse the PR 3 escalation ladder per sub-batch: an adaptive
// hedge to the next-ranked untried replica after srtt+3.5·rttvar, immediate
// ranked failover on RPC failure, and the configured ReadBudget backstopping
// the whole sub-batch. Accounting preserves the zero-residual invariant with
// batch weights: every PickBatch/PickHedgeN/PickNextN of n keys is balanced
// by exactly one OnResponseN (real feedback or the failure penalty, weight n)
// or OnAbandonN (own shutdown).

// subBatch is one replica group's slice of a client batch: the keys bound for
// that group, their positions in the client batch, and — once the scatter
// resolves — the per-key results. Reads fill found/offs/vbuf; writes fill
// oks.
type subBatch struct {
	group []core.ServerID
	keys  []string
	pos   []int

	// sel is the shard selector the sub-batch dispatches and accounts
	// through — the shard of the sub-batch's first key. Sub-batches
	// partition by replica group, not by shard, so this is an attribution
	// choice, the same one beginBatchRead makes for replica-side queue
	// accounting.
	sel *core.Client

	// Read results: key j's value is (*vbuf)[offs[j]:offs[j+1]] when
	// found[j], stored at version vers[j] — the payload split from its
	// version prefix, re-joined at the gather. A nil found means the
	// sub-batch failed wholesale (every replica down or budget exhausted):
	// every key reports not-found.
	found []bool
	offs  []int
	vers  []uint64
	vbuf  *[]byte

	// Write-only state: the sub-batch's values (aliasing the batch's value
	// arena) and the per-key acks (≥1 replica applied the key).
	wvals [][]byte
	oks   []bool
}

// subRef locates one client-batch key inside the partition.
type subRef struct {
	sb *subBatch
	j  int
}

// partitionBatch splits keys by replica group of the topology's read ring,
// preserving client order within each sub-batch, and returns the per-key
// back-references for the gather.
func (n *Node) partitionBatch(t *topology, keys []string) ([]*subBatch, []subRef) {
	r := t.readRing()
	where := make([]subRef, len(keys))
	byGroup := make([]*subBatch, r.Nodes())
	subs := make([]*subBatch, 0, 4)
	for i, k := range keys {
		tok := ring.Token([]byte(k))
		gi := r.GroupIndexFor(tok)
		sb := byGroup[gi]
		if sb == nil {
			sb = &subBatch{group: r.ReplicasForToken(tok, nil), sel: n.selFor(k)}
			byGroup[gi] = sb
			subs = append(subs, sb)
		}
		sb.keys = append(sb.keys, k)
		sb.pos = append(sb.pos, i)
		where[i] = subRef{sb, len(sb.keys) - 1}
	}
	return subs, where
}

// batchOutcome is one replica's resolution within a sub-batch's race.
type batchOutcome struct {
	from  core.ServerID
	found []bool
	offs  []int
	vers  []uint64
	buf   *[]byte // pooled buffer backing the values; the consumer recycles it
	rtt   time.Duration
	err   error
}

// localBatchReadInto serves a sub-batch against the local store, packing
// value payloads into buf with offsets and their versions alongside — the
// coordinator-side result layout shared with remote sub-batch responses
// (which arrive already split). Queue accounting and feedback weight are the
// batch size (beginBatchRead/finishBatchRead).
func (n *Node) localBatchReadInto(buf []byte, keys []string) ([]bool, []int, []uint64, []byte, wire.Feedback) {
	sh := n.shardOf(keys[0])
	start := n.beginBatchRead(sh, len(keys))
	found := make([]bool, len(keys))
	vers := make([]uint64, len(keys))
	offs := make([]int, len(keys)+1)
	for i, k := range keys {
		buf, vers[i], found[i] = n.store.GetVersioned(buf, k)
		offs[i+1] = len(buf)
	}
	return found, offs, vers, buf, n.finishBatchRead(sh, start, len(keys))
}

// accountBatchReadSuccess feeds a sub-batch's piggybacked feedback to the
// selector with weight nk — the single sample describes the post-batch server
// state, and the replica just shed nk outstanding reads.
func (n *Node) accountBatchReadSuccess(sel *core.Client, s core.ServerID, nk int, fb wire.Feedback, rtt time.Duration, now time.Time) {
	sel.OnResponseN(s, nk, core.Feedback{
		QueueSize:   fb.QueueSize,
		ServiceTime: time.Duration(fb.ServiceNs),
	}, rtt, now.UnixNano())
}

// accountBatchReadFailure records a failed sub-batch with the selector: our
// own shutdown abandons the nk keys, as does a failure toward a server the
// topology has retired (see accountReadFailure), while a real failure of a
// live member feeds the punishing penalty with batch weight.
func (n *Node) accountBatchReadFailure(sel *core.Client, s core.ServerID, nk int, now time.Time) {
	if n.isClosed() || !n.topo.Load().serves(s) {
		sel.OnAbandonN(s, nk, now.UnixNano())
	} else {
		sel.OnResponseN(s, nk, core.Feedback{QueueSize: failPenaltyQueue,
			ServiceTime: failPenaltyRTT}, failPenaltyRTT, now.UnixNano())
	}
}

// raceBatchRead fires one sub-batch read toward s — local or remote — as an
// independent racer reporting into ch. Like raceRead, the racer performs its
// own selector accounting as it resolves, so the OnSendN recorded at dispatch
// is balanced no matter whether the sub-batch ladder is still listening.
// ch must be buffered for the whole race so a late loser never blocks.
func (n *Node) raceBatchRead(sel *core.Client, s core.ServerID, keys []string, ch chan<- batchOutcome) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		nk := len(keys)
		rb := getBuf()
		sent := time.Now()
		if s == n.id {
			found, offs, vers, buf, fb := n.localBatchReadInto((*rb)[:0], keys)
			*rb = buf
			now := time.Now()
			rtt := now.Sub(sent)
			n.accountBatchReadSuccess(sel, s, nk, fb, rtt, now)
			ch <- batchOutcome{from: s, found: found, offs: offs, vers: vers, buf: rb, rtt: rtt}
			return
		}
		var ca *call
		p, err := n.peer(s)
		if err == nil {
			ca, err = p.batchRead(wire.MsgBatchReadInternal, wire.LevelOne, keys, (*rb)[:0])
		}
		if err == nil && len(ca.bfound) != nk {
			putCall(ca)
			ca = nil // released: a later touch must fault, not race the pool
			err = errMismatchedResp
		}
		now := time.Now()
		if err != nil {
			putBuf(rb)
			n.accountBatchReadFailure(sel, s, nk, now)
			ch <- batchOutcome{from: s, err: err}
			return
		}
		*rb = ca.bbuf
		found := append(make([]bool, 0, nk), ca.bfound...)
		offs := append(make([]int, 0, nk+1), ca.boffs...)
		vers := append(make([]uint64, 0, nk), ca.bvers...)
		fb := ca.bfb
		putCall(ca)
		rtt := now.Sub(sent)
		n.accountBatchReadSuccess(sel, s, nk, fb, rtt, now)
		ch <- batchOutcome{from: s, found: found, offs: offs, vers: vers, buf: rb, rtt: rtt}
	}()
}

// reapBatch drains the remaining racers of a resolved sub-batch in the
// background, recycling their value buffers (their selector accounting
// happens inside raceBatchRead).
func (n *Node) reapBatch(ch <-chan batchOutcome, pending int) {
	if pending <= 0 {
		return
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for i := 0; i < pending; i++ {
			putBuf((<-ch).buf)
		}
	}()
}

// maybeBatchReadRepair is the batch counterpart of maybeReadRepair: with the
// configured probability, the sub-batch is also read at every unselected
// replica of its group, keeping the coordinator's feedback for replicas it
// has stopped selecting fresh even under batch-only workloads. Probe
// accounting carries batch weights and pairs every OnSendN with exactly one
// OnResponseN (success) or OnAbandonN (failure — a probe is best-effort and
// must not poison the estimators or leak outstanding counts).
func (n *Node) maybeBatchReadRepair(sel *core.Client, keys []string, group []core.ServerID, target core.ServerID) {
	if n.cfg.ReadRepair <= 0 {
		return
	}
	n.rngMu.Lock()
	repair := n.rng.Float64() < n.cfg.ReadRepair
	n.rngMu.Unlock()
	if !repair {
		return
	}
	nk := len(keys)
	for _, s := range group {
		if s == target || s == n.id {
			continue
		}
		s := s
		sel.OnSendN(s, nk, time.Now().UnixNano())
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			rb := getBuf()
			sent := time.Now()
			var ca *call
			p, err := n.peer(s)
			if err == nil {
				ca, err = p.batchRead(wire.MsgBatchReadInternal, wire.LevelOne, keys, (*rb)[:0])
			}
			if err == nil {
				*rb = ca.bbuf
				fb := ca.bfb
				putCall(ca)
				n.accountBatchReadSuccess(sel, s, nk, fb, time.Since(sent), time.Now())
			} else {
				sel.OnAbandonN(s, nk, time.Now().UnixNano())
			}
			putBuf(rb)
		}()
	}
}

// runSubBatch executes one sub-batch's read ladder: backpressure-admitted
// ranked dispatch, adaptive hedge, ranked failover, read budget. On success
// the results land in sb; on wholesale failure sb.found stays nil and every
// key reports not-found.
func (n *Node) runSubBatch(sb *subBatch) {
	nk := len(sb.keys)
	deadline := time.Now().Add(n.cfg.BackpressureTimeout)
	var target core.ServerID
	waited := false
	for {
		now := time.Now().UnixNano()
		s, ok, retryAt := sb.sel.PickBatch(sb.group, nk, now)
		if ok {
			target = s
			break
		}
		waited = true
		if time.Now().After(deadline) {
			// Fail open like the point path: ranked best, no token.
			target, _ = sb.sel.PickBestN(sb.group, nk, now)
			break
		}
		time.Sleep(time.Duration(retryAt-now) + 100*time.Microsecond)
	}
	if waited {
		n.waited.Add(1)
	}
	n.maybeBatchReadRepair(sb.sel, sb.keys, sb.group, target)

	// Inline local fast path: an in-memory sub-batch with no configured delay
	// has nothing a hedge could rescue; serve it on this goroutine.
	if target == n.id && n.inlineLocalReads() {
		rb := getBuf()
		sent := time.Now()
		found, offs, vers, buf, fb := n.localBatchReadInto((*rb)[:0], sb.keys)
		*rb = buf
		now := time.Now()
		n.accountBatchReadSuccess(sb.sel, target, nk, fb, now.Sub(sent), now)
		sb.found, sb.offs, sb.vers, sb.vbuf = found, offs, vers, rb
		return
	}

	var triedBuf [8]core.ServerID
	tried := append(triedBuf[:0], target)
	ch := make(chan batchOutcome, len(sb.group))
	n.raceBatchRead(sb.sel, target, sb.keys, ch)
	pending := 1
	hedged := core.ServerID(-1)

	budget := getTimer(n.cfg.ReadBudget)
	defer putTimer(budget)
	var hedgeC <-chan time.Time
	if !n.cfg.Hedge.Disabled && len(sb.group) > 1 {
		ht := getTimer(n.hedgeDelay())
		defer putTimer(ht)
		hedgeC = ht.C
	}
	for {
		select {
		case out := <-ch:
			pending--
			if out.err == nil {
				if out.from == hedged {
					n.hedgeWins.Add(1)
				}
				n.observeReadRTT(out.rtt)
				sb.found, sb.offs, sb.vers, sb.vbuf = out.found, out.offs, out.vers, out.buf
				n.reapBatch(ch, pending)
				return
			}
			// Ranked failover: replace the dead sub-batch dispatch with the
			// next-best untried replica (no hedge count — it duplicates
			// nothing).
			if s, ok := sb.sel.PickNextN(sb.group, tried, nk, time.Now().UnixNano()); ok {
				tried = append(tried, s)
				n.raceBatchRead(sb.sel, s, sb.keys, ch)
				pending++
			} else if pending == 0 {
				return // every replica failed
			}
		case <-hedgeC:
			hedgeC = nil
			if s, ok := sb.sel.PickHedgeN(sb.group, tried, nk, time.Now().UnixNano()); ok {
				hedged = s
				tried = append(tried, s)
				n.raceBatchRead(sb.sel, s, sb.keys, ch)
				pending++
			}
		case <-budget.C:
			// Budget exhausted: the sub-batch reports not-found. In-flight
			// racers account for themselves and are reaped in the background.
			n.reapBatch(ch, pending)
			return
		}
	}
}

// runSubBatchQuorum is the quorum ladder for one read sub-batch: dispatch to
// every replica of the group — the ranked best first, through the same
// backpressure gate as a ONE sub-batch — collect the level's R responses,
// merge per key by highest version, and synchronously repair responders that
// answered older before returning. Dispatching to all N subsumes hedging;
// the read budget backstops the collection, and a sub-batch that cannot
// gather R responses fails wholesale (sb.found nil: every key not-found),
// mirroring the ONE path's budget-exhaustion degradation.
func (n *Node) runSubBatchQuorum(sb *subBatch, need int) {
	nk := len(sb.keys)
	deadline := time.Now().Add(n.cfg.BackpressureTimeout)
	var target core.ServerID
	waited := false
	for {
		now := time.Now().UnixNano()
		s, ok, retryAt := sb.sel.PickBatch(sb.group, nk, now)
		if ok {
			target = s
			break
		}
		waited = true
		if time.Now().After(deadline) {
			target, _ = sb.sel.PickBestN(sb.group, nk, now)
			break
		}
		time.Sleep(time.Duration(retryAt-now) + 100*time.Microsecond)
	}
	if waited {
		n.waited.Add(1)
	}

	ch := make(chan batchOutcome, len(sb.group))
	now := time.Now().UnixNano()
	for _, s := range sb.group {
		if s != target {
			sb.sel.OnSendN(s, nk, now)
		}
	}
	n.raceBatchRead(sb.sel, target, sb.keys, ch)
	for _, s := range sb.group {
		if s != target {
			n.raceBatchRead(sb.sel, s, sb.keys, ch)
		}
	}

	votes := make([]batchOutcome, 0, len(sb.group))
	pending := len(sb.group)
	fails := 0
	budget := getTimer(n.cfg.ReadBudget)
	defer putTimer(budget)
collect:
	for len(votes) < need {
		select {
		case out := <-ch:
			pending--
			if out.err != nil {
				if fails++; fails > len(sb.group)-need {
					break collect
				}
				continue
			}
			n.observeReadRTT(out.rtt)
			votes = append(votes, out)
		case <-budget.C:
			break collect
		}
	}
	n.reapBatch(ch, pending)
	if len(votes) < need {
		n.quorumFails.Add(1)
		for _, v := range votes {
			putBuf(v.buf)
		}
		return // wholesale failure: sb.found stays nil
	}

	// Per-key merge: the highest version among responders that found the key
	// wins; then repair every responder that answered older or absent —
	// blocking, so the client never observes a quorum still divergent after
	// its read, and version-guarded, so a concurrent newer write survives.
	rb := getBuf()
	merged := (*rb)[:0]
	sb.found = make([]bool, nk)
	sb.vers = make([]uint64, nk)
	sb.offs = make([]int, nk+1)
	for j := 0; j < nk; j++ {
		win := -1
		for i := range votes {
			if !votes[i].found[j] {
				continue
			}
			if win < 0 || votes[i].vers[j] > votes[win].vers[j] {
				win = i
			}
		}
		if win >= 0 {
			w := &votes[win]
			val := (*w.buf)[w.offs[j]:w.offs[j+1]]
			sb.found[j] = true
			sb.vers[j] = w.vers[j]
			merged = append(merged, val...)
			for i := range votes {
				v := &votes[i]
				if v.from == w.from || (v.found[j] && v.vers[j] >= w.vers[j]) {
					continue
				}
				n.repairReplica(v.from, sb.keys[j], w.vers[j], val)
			}
		}
		sb.offs[j+1] = len(merged)
	}
	*rb = merged
	sb.vbuf = rb
	for _, v := range votes {
		putBuf(v.buf)
	}
}

// coordinateBatchRead is the scatter half of a client batch read: partition
// by replica group, run every sub-batch's ladder — ONE's escalation ladder or
// the level's quorum collection — concurrently, and return the partition for
// the gather. Each key of the batch counts as one coordinated read.
func (n *Node) coordinateBatchRead(cl uint8, keys []string) ([]*subBatch, []subRef) {
	n.coord.Add(uint64(len(keys)))
	subs, where := n.partitionBatch(n.topo.Load(), keys)
	run := n.runSubBatch
	if cl != wire.LevelOne {
		run = func(sb *subBatch) {
			n.runSubBatchQuorum(sb, Level(cl).required(len(sb.group)))
		}
	}
	if len(subs) == 1 {
		run(subs[0])
		return subs, where
	}
	var wg sync.WaitGroup
	for _, sb := range subs {
		sb := sb
		wg.Add(1)
		n.wg.Add(1)
		go func() {
			defer wg.Done()
			defer n.wg.Done()
			run(sb)
		}()
	}
	wg.Wait()
	return subs, where
}

// respondCoordBatchRead coordinates a client batch read and enqueues the
// response: scatter at the requested level, gather, then stream every found
// value — version prefix rejoined to its payload — from the sub-batch result
// buffers into the response frame in client key order.
func (n *Node) respondCoordBatchRead(cw *connWriter, id uint64, cl uint8, keys []string) {
	subs, where := n.coordinateBatchRead(cl, keys)
	fb := getBuf()
	b, mark := wire.BeginBatchReadResp((*fb)[:0], id)
	var err error
	for i := range keys {
		ref := where[i]
		b = wire.BeginBatchReadItem(b, &mark)
		ok := false
		if sb := ref.sb; sb.found != nil && sb.found[ref.j] {
			ok = true
			b = lsm.AppendVersioned(b, sb.vers[ref.j], (*sb.vbuf)[sb.offs[ref.j]:sb.offs[ref.j+1]])
		}
		if b, err = wire.FinishBatchReadItem(b, &mark, ok); err != nil {
			break
		}
	}
	if err == nil {
		b, err = wire.FinishBatchReadResp(b, mark, n.feedback())
	}
	for _, sb := range subs {
		putBuf(sb.vbuf)
	}
	if err != nil {
		// The gathered response cannot be framed (total values overflow
		// MaxFrame — reachable, unlike the point path, because MaxBatchKeys
		// × MaxValueLen exceeds it): sever so the client's call fails fast
		// instead of waiting forever on a silently dropped response.
		putBuf(fb)
		cw.sever(err)
		return
	}
	*fb = b
	cw.enqueue(fb)
}

// runWriteSub fans one write sub-batch — stamped with the batch's shared
// version — to every replica of its group and accumulates per-key ack counts:
// key i of the sub-batch succeeds once `need` replicas applied it. The loop
// returns as soon as every key has its quorum (stragglers drain via the
// buffered channel); an unreachable replica's share of the sub-batch is
// banked as hints. release is the value-arena refcount, called once per
// replica attempt after its encode/apply no longer needs the values.
func (n *Node) runWriteSub(sb *subBatch, need int, ver uint64, release func()) {
	nk := len(sb.keys)
	acks := make(chan []bool, len(sb.group))
	for _, s := range sb.group {
		s := s
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer release()
			if s == n.id {
				if n.dropWrites.Load() || n.store.PutAllVersioned(sb.keys, sb.wvals, ver) != nil {
					acks <- nil
					return
				}
				acks <- allOK[:nk]
				return
			}
			p, err := n.peer(s)
			if err != nil {
				// The replica is unreachable: bank the whole sub-batch (the
				// copies happen before release()).
				n.hintValues(s, ver, sb.keys, sb.wvals)
				acks <- nil
				return
			}
			oks, _, _, err := p.batchWrite(wire.MsgBatchWriteInternal, 0, ver, sb.keys, sb.wvals, nil)
			if err != nil || len(oks) != nk {
				if err != nil {
					n.hintValues(s, ver, sb.keys, sb.wvals)
				}
				acks <- nil
				return
			}
			acks <- oks
		}()
	}
	counts := make([]int, nk)
	sb.oks = make([]bool, nk)
	for resolved := 0; resolved < len(sb.group); resolved++ {
		oks := <-acks
		if oks == nil {
			continue
		}
		all := true
		for i, ok := range oks {
			if !ok {
				all = false
				continue
			}
			if counts[i]++; counts[i] >= need {
				sb.oks[i] = true
			} else {
				all = false
			}
		}
		if all {
			return // every key at its level; stragglers drain in the background
		}
	}
}

// respondCoordBatchWrite coordinates a client batch write at the requested
// level and enqueues the per-key acks. See coordinateBatchWrite for the
// coordination and ownership contract.
func (n *Node) respondCoordBatchWrite(cw *connWriter, id uint64, cl uint8, keys []string, vals [][]byte, arena *[]byte) {
	oks, status := n.coordinateBatchWrite(cl, keys, vals, arena)
	if oks == nil {
		oks = allFail[:len(keys)]
	}
	fb := getBuf()
	b, err := wire.AppendBatchWriteResp((*fb)[:0], wire.BatchWriteResp{
		ID: id, Status: status, OK: oks, FB: n.feedback()})
	if err != nil {
		putBuf(fb)
		cw.sever(err)
		return
	}
	*fb = b
	cw.enqueue(fb)
}

// coordinateBatchWrite coordinates a batch write at the requested level: one
// coordinator stamp covers the whole batch, each sub-batch fans to its
// replica group, and key i acks (oks[i]) only when the level's W replicas
// applied it. A nil oks with a non-OK status is a wholesale refusal (every
// key failed). arena is the pooled buffer backing vals, recycled once every
// replica attempt of every sub-batch is done with the values — ownership
// transfers on entry, including on refusal. The RESP gateway's MSET calls
// this directly; the wire path wraps it in respondCoordBatchWrite.
func (n *Node) coordinateBatchWrite(cl uint8, keys []string, vals [][]byte, arena *[]byte) ([]bool, uint8) {
	t := n.topo.Load()
	subs, where := n.partitionBatch(t, keys)
	// W is computed per sub-batch over the steady-state owner group — before
	// any dual-route extension widens the fan — so R+W>N holds against quorum
	// reads of the same ring (see coordinateWrite).
	needs := make([]int, len(subs))
	for i, sb := range subs {
		needs[i] = 1
		if cl != wire.LevelOne {
			needs[i] = Level(cl).required(len(sb.group))
		}
	}
	if t.prev != nil {
		// Dual-route window: extend each sub-batch's write fan to the union
		// of old and new owners of its keys, mirroring coordinateWrite.
		for _, sb := range subs {
			for _, k := range sb.keys {
				for _, s := range t.v.Ring().ReplicasFor([]byte(k), nil) {
					if !slices.Contains(sb.group, s) {
						sb.group = append(sb.group, s)
					}
				}
			}
		}
	}
	if cl != wire.LevelOne {
		// Bounded handoff debt, batch flavor: refuse deterministically when a
		// covered replica is down and its hint queue is already full.
		for _, sb := range subs {
			for _, s := range sb.group {
				if s == n.id || !n.hintFull(s) {
					continue
				}
				if _, up := n.peerReady(s); !up {
					n.quorumFails.Add(1)
					putBuf(arena)
					return nil, wire.StatusQuorumUnavailable
				}
			}
		}
	}
	ver := n.stampVersion()
	total := 0
	for _, sb := range subs {
		sb.wvals = make([][]byte, len(sb.keys))
		for j, p := range sb.pos {
			sb.wvals[j] = vals[p]
		}
		total += len(sb.group)
	}
	remaining := new(atomic.Int32)
	remaining.Store(int32(total))
	release := func() {
		if remaining.Add(-1) == 0 {
			putBuf(arena)
		}
	}
	if len(subs) == 1 {
		n.runWriteSub(subs[0], needs[0], ver, release)
	} else {
		var wg sync.WaitGroup
		for i, sb := range subs {
			i, sb := i, sb
			wg.Add(1)
			n.wg.Add(1)
			go func() {
				defer wg.Done()
				defer n.wg.Done()
				n.runWriteSub(sb, needs[i], ver, release)
			}()
		}
		wg.Wait()
	}
	status := wire.StatusOK
	oks := make([]bool, len(keys))
	for i := range keys {
		ref := where[i]
		oks[i] = ref.sb.oks[ref.j]
		if !oks[i] {
			n.writeFails.Add(1)
			if cl != wire.LevelOne {
				status = wire.StatusQuorumUnavailable
			}
		}
	}
	if status != wire.StatusOK {
		n.quorumFails.Add(1)
	}
	return oks, status
}
