package kvstore

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"c3/internal/core"
	"c3/internal/wire"
)

// Tunable consistency. Every write is stamped by its coordinator with a
// 64-bit HLC-style version (stampVersion) and applied on replicas under the
// storage engine's last-write-wins guard, so replicas converge to the highest
// version no matter the arrival order. On top of that, reads and writes carry
// a per-operation consistency level:
//
//   - ONE (the default) keeps the original fast path: ack on the first
//     replica response, C3-ranked single dispatch with the hedge/failover
//     ladder behind it.
//   - QUORUM dispatches to the whole replica group, ranked so the
//     C3-selected best replica is dispatched first, and acks once ⌊N/2⌋+1
//     responses (or acks) arrive. Quorum reads reconcile divergent versions
//     and synchronously write the newest value back to stale responders
//     before returning, so R+W>N yields read-your-writes.
//   - ALL waits for every replica.
//
// Writes toward down replicas turn into durable hints replayed with backoff
// when the peer recovers (see hints.go).

// Level is a per-operation consistency level.
type Level uint8

// Consistency levels. The zero value is One, matching the wire encoding.
const (
	One    Level = Level(wire.LevelOne)
	Quorum Level = Level(wire.LevelQuorum)
	All    Level = Level(wire.LevelAll)
)

// String names the level the way the CLI flags spell it.
func (l Level) String() string {
	switch l {
	case One:
		return "one"
	case Quorum:
		return "quorum"
	case All:
		return "all"
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// ParseLevel parses a level name (case-insensitive: one|quorum|all).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "one", "1":
		return One, nil
	case "quorum":
		return Quorum, nil
	case "all":
		return All, nil
	}
	return One, fmt.Errorf("kvstore: unknown consistency level %q", s)
}

// required is the number of replica responses the level demands out of a
// group of n.
func (l Level) required(n int) int {
	switch l {
	case Quorum:
		return n/2 + 1
	case All:
		return n
	}
	return 1
}

// Typed error taxonomy. Callers distinguish failure classes with errors.Is:
// a quorum write that could not reach enough live replicas matches both
// ErrQuorumUnavailable and ErrWriteFailed, while a read that exhausted its
// budget matches ErrTimeout.
var (
	// ErrQuorumUnavailable reports fewer reachable replicas than the
	// requested level needs — including a write refused because a down
	// replica's hint log is full (bounded handoff debt).
	ErrQuorumUnavailable = errors.New("kvstore: not enough live replicas for consistency level")
	// ErrTimeout reports an operation whose budget expired before the level
	// was satisfied.
	ErrTimeout = errors.New("kvstore: operation budget exceeded")
)

// statusError is a concrete error that belongs to several taxonomy kinds at
// once (e.g. a failed quorum write is both ErrQuorumUnavailable and
// ErrWriteFailed).
type statusError struct {
	msg   string
	kinds []error
}

func (e *statusError) Error() string { return e.msg }

func (e *statusError) Is(target error) bool {
	for _, k := range e.kinds {
		if k == target {
			return true
		}
	}
	return false
}

var (
	errReadUnavailable = &statusError{
		msg:   "kvstore: quorum read unavailable: too few live replicas",
		kinds: []error{ErrQuorumUnavailable},
	}
	errReadTimeout = &statusError{
		msg:   "kvstore: quorum read timed out before enough replicas answered",
		kinds: []error{ErrTimeout},
	}
	errWriteUnavailable = &statusError{
		msg:   "kvstore: write failed: consistency level unavailable",
		kinds: []error{ErrQuorumUnavailable, ErrWriteFailed},
	}
	errWriteTimeout = &statusError{
		msg:   "kvstore: write timed out before the consistency level was met",
		kinds: []error{ErrTimeout, ErrWriteFailed},
	}
)

// readStatusErr maps a read-response status to the taxonomy (nil for OK).
func readStatusErr(status uint8) error {
	switch status {
	case wire.StatusQuorumUnavailable:
		return errReadUnavailable
	case wire.StatusTimeout:
		return errReadTimeout
	}
	return nil
}

// writeStatusErr maps a write-response status to the taxonomy (nil for OK).
func writeStatusErr(status uint8) error {
	switch status {
	case wire.StatusWriteFailed:
		return ErrWriteFailed
	case wire.StatusQuorumUnavailable:
		return errWriteUnavailable
	case wire.StatusTimeout:
		return errWriteTimeout
	}
	return nil
}

// versionNodeBits is the width of the node-id suffix inside a version stamp:
// version = microseconds-since-epoch << versionNodeBits | nodeID. The suffix
// makes stamps from different coordinators unique, so last-write-wins never
// ties; the physical prefix keeps cross-coordinator sequences from the same
// client wall-clock-ordered.
const versionNodeBits = 10

// stampVersion draws the next HLC-style version: the physical clock when it
// advanced, otherwise last+1 — strictly monotonic per coordinator even when
// the clock stalls or steps back.
func (n *Node) stampVersion() uint64 {
	node := uint64(n.id) & (1<<versionNodeBits - 1)
	for {
		last := n.hlc.Load()
		next := uint64(time.Now().UnixMicro()) << versionNodeBits
		if next <= last {
			next = (last>>versionNodeBits + 1) << versionNodeBits
		}
		next |= node
		if n.hlc.CompareAndSwap(last, next) {
			return next
		}
	}
}

// ReadRepairs reports version-guarded repair write-backs this coordinator has
// issued (quorum reconciliation plus background repair probes).
func (n *Node) ReadRepairs() uint64 { return n.repairs.Load() }

// QuorumFailures reports coordinated operations that failed their requested
// consistency level (unavailable or timed out) despite any partial acks.
func (n *Node) QuorumFailures() uint64 { return n.quorumFails.Load() }

// SetDropWrites makes the node's storage reject replica-local writes without
// applying them — a fault-injection hook for consistency tests and the
// staleness benchmark: an acked CL=ONE write then visibly misses this
// replica until repair or handoff heals it.
func (n *Node) SetDropWrites(drop bool) { n.dropWrites.Store(drop) }

// quorumVote is one replica's successful answer within a quorum read.
type quorumVote struct {
	from  core.ServerID
	found bool
	ver   uint64
	val   []byte  // payload (version split off); aliases buf
	buf   *[]byte // pooled; released by the collector
}

// coordinateQuorumRead dispatches a read to the whole replica group — ranked,
// so the C3-chosen best replica still receives the first dispatch and the
// rate limiter admits the fan-out as one decision — and resolves once the
// level's R responses arrived. Divergent responders are repaired before
// returning: the newest version is written back under the replica-side
// last-write-wins guard, so the repair can never clobber a concurrent newer
// write. Dispatching to all N subsumes the ONE path's hedging (there is no
// untried replica left to hedge to); the read budget still backstops the
// whole operation, and stragglers beyond R are reaped in the background with
// their accounting intact.
func (n *Node) coordinateQuorumRead(m wire.ReadReq) (wire.ReadResp, *[]byte) {
	n.coord.Add(1)
	sel := n.selFor(m.Key)
	var gbuf [8]core.ServerID
	group := n.topo.Load().readRing().ReplicasFor(keyBytes(m.Key), gbuf[:0])
	need := Level(m.CL).required(len(group))

	// Backpressure: one rate token admits the fan-out, paid at the ranked
	// best replica exactly like a ONE read (Pick records its send); the
	// remaining replicas' sends are recorded explicitly so every racer's
	// resolution balances one send.
	deadline := time.Now().Add(n.cfg.BackpressureTimeout)
	var target core.ServerID
	waited := false
	for {
		now := time.Now().UnixNano()
		s, ok, retryAt := sel.Pick(group, now)
		if ok {
			target = s
			break
		}
		waited = true
		if time.Now().After(deadline) {
			target, _ = sel.PickBest(group, now)
			break
		}
		time.Sleep(time.Duration(retryAt-now) + 100*time.Microsecond)
	}
	if waited {
		n.waited.Add(1)
	}

	ch := make(chan raceOutcome, len(group))
	now := time.Now().UnixNano()
	for _, s := range group {
		if s != target {
			sel.OnSend(s, now)
		}
	}
	n.raceRead(sel, target, m, ch)
	for _, s := range group {
		if s != target {
			n.raceRead(sel, s, m, ch)
		}
	}

	votes := make([]quorumVote, 0, len(group))
	pending := len(group)
	fails := 0
	status := wire.StatusOK
	budget := getTimer(n.cfg.ReadBudget)
	defer putTimer(budget)
collect:
	for len(votes) < need {
		select {
		case out := <-ch:
			pending--
			if out.err != nil {
				fails++
				if fails > len(group)-need {
					status = wire.StatusQuorumUnavailable
					break collect
				}
				continue
			}
			n.observeReadRTT(out.rtt)
			votes = append(votes, quorumVote{
				from:  out.from,
				found: out.resp.Found,
				ver:   out.resp.Version,
				val:   out.resp.Value,
				buf:   out.buf,
			})
		case <-budget.C:
			status = wire.StatusTimeout
			break collect
		}
	}
	n.reap(ch, pending)
	if status != wire.StatusOK {
		n.quorumFails.Add(1)
		for _, v := range votes {
			putBuf(v.buf)
		}
		return wire.ReadResp{ID: m.ID, Status: status, FB: n.feedback()}, nil
	}

	// Reconcile: the highest-version found value wins; absent only if no
	// responder has the key.
	win := -1
	for i, v := range votes {
		if !v.found {
			continue
		}
		if win < 0 || v.ver > votes[win].ver {
			win = i
		}
	}
	if win < 0 {
		for _, v := range votes {
			putBuf(v.buf)
		}
		return wire.ReadResp{ID: m.ID, FB: n.feedback()}, nil
	}
	winner := votes[win]

	// Blocking read repair: push the winning (version, value) to every
	// responder that answered older or absent, and wait — the client must
	// not observe a quorum that is still divergent after its read returns.
	// The replica-side guard makes the write-back safe against any newer
	// concurrent write.
	var wg sync.WaitGroup
	for _, v := range votes {
		if v.from == winner.from || (v.found && v.ver >= winner.ver) {
			continue
		}
		s := v.from
		wg.Add(1)
		n.wg.Add(1)
		go func() {
			defer wg.Done()
			defer n.wg.Done()
			n.repairReplica(s, m.Key, winner.ver, winner.val)
		}()
	}
	wg.Wait()
	for _, v := range votes {
		if v.buf != winner.buf {
			putBuf(v.buf)
		}
	}
	return wire.ReadResp{
		ID:      m.ID,
		Found:   true,
		Version: winner.ver,
		Value:   winner.val,
		FB:      n.feedback(),
	}, winner.buf
}

// repairReplica writes (ver, val) for key to one replica under the
// last-write-wins guard — the write-back half of read repair. Failures are
// ignored: the replica is either down (its next read or a hint will heal it)
// or already newer (the guard skipped us, which is success).
func (n *Node) repairReplica(s core.ServerID, key string, ver uint64, val []byte) {
	n.repairs.Add(1)
	if s == n.id {
		n.store.PutVersioned(key, ver, val)
		return
	}
	if p, err := n.peer(s); err == nil {
		p.write(key, val, ver, false)
	}
}
