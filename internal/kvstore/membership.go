package kvstore

// Dynamic membership: the live store's topology is a versioned ring
// (ring.Versioned) announced through MsgRingUpdate frames and adopted
// monotonically by epoch. A membership change runs as a two-epoch protocol:
//
//   - epoch e+1 (transition): the full ring including the subject, tagged
//     PhaseJoin or PhaseLeave. During this dual-route window every
//     coordinator serves reads from the PREVIOUS ring (whose members all
//     hold their data) while fanning writes to the UNION of the old and new
//     owner sets, so no acked write is stranded on the losing side of the
//     move.
//   - epoch e+2 (stable): announced by the subject once key-range streaming
//     has caught the new owners up; reads cut over to the new ring.
//
// A joining node pulls its owed ranges from current owners page by page
// (MsgStreamReq/MsgStreamChunk, cursor-paginated so the server stays
// stateless); a decommissioning node pushes its arcs to the gainers through
// the coalesced batch-write path. Both sides apply streamed values only for
// absent keys, so a page carrying a pre-move value can never clobber a
// dual-routed write that arrived first.
//
// Announcements are pushed best-effort with acks: a member that misses one
// (crashed, partitioned) keeps serving on its older topology — reads stay
// correct because the old owners retain their data until the NEXT membership
// change — and re-converges on the next announcement it does receive, since
// adoption is by epoch comparison, not by delta. Membership operations
// themselves must be serialized by the operator (one join or decommission at
// a time); a member mid-transition refuses to admit another.

import (
	"errors"
	"fmt"
	"net"
	"slices"
	"sort"
	"sync"
	"time"

	"c3/internal/core"
	"c3/internal/ring"
	"c3/internal/wire"
)

// Membership errors.
var (
	// ErrWrongEpoch reports a streaming RPC rejected because the peer's
	// topology epoch differs from the requester's; the requester re-reads
	// its topology and retries against the newer ring.
	ErrWrongEpoch = errors.New("kvstore: topology epoch mismatch")
	// errMembershipBusy refuses to start a membership change while another
	// transition window is open.
	errMembershipBusy = errors.New("kvstore: membership change already in progress")
	// errUnknownPeer reports an RPC toward a server the current topology
	// has no address for (departed, or an announcement not yet received).
	errUnknownPeer = errors.New("kvstore: no address for peer in current topology")
)

// Streaming knobs: page size in keys and bytes for the pull path, chunk size
// for the push path, and the per-range catch-up budget.
const (
	streamPageKeys   = 512
	streamPageBytes  = 1 << 20
	streamPushKeys   = 512
	streamBudget     = 30 * time.Second
	ringPushTimeout  = 2 * time.Second
	joinReqTimeout   = 10 * time.Second
	streamRetryPause = 20 * time.Millisecond
)

// topology is one immutable adopted epoch: the target ring, the predecessor
// ring while a dual-route window is open, and the member address book. The
// hot path reads it through one atomic pointer load; successors are
// installed under Node.memberMu.
type topology struct {
	v       *ring.Versioned // target ring of this epoch
	prev    *ring.Versioned // pre-transition ring; nil once stable
	phase   uint8           // wire.PhaseStable / PhaseJoin / PhaseLeave
	subject core.ServerID   // joining/leaving node; -1 when stable
	addrs   []string        // listen addresses indexed by ServerID; "" unknown
	update  wire.RingUpdate // canonical announcement (ID zero) for re-encoding
}

func (t *topology) epoch() uint64 { return t.v.Epoch() }

// readRing is the ring reads route through: during a transition window the
// previous ring, whose members all still hold their ranges; the target ring
// once stable.
func (t *topology) readRing() *ring.Ring {
	if t.prev != nil {
		return t.prev.Ring()
	}
	return t.v.Ring()
}

// writeGroup appends the write fan-out for key to dst: the target ring's
// owners, unioned with the previous ring's during a transition window.
func (t *topology) writeGroup(key []byte, dst []core.ServerID) []core.ServerID {
	dst = t.v.Ring().ReplicasFor(key, dst)
	if t.prev != nil {
		for _, s := range t.prev.Ring().ReplicasFor(key, nil) {
			if !slices.Contains(dst, s) {
				dst = append(dst, s)
			}
		}
	}
	return dst
}

// serves reports whether s is a member of either side of the topology.
func (t *topology) serves(s core.ServerID) bool {
	return t.v.Contains(s) || (t.prev != nil && t.prev.Contains(s))
}

// addrOf reports the listen address of id, or "" when unknown.
func (t *topology) addrOf(id core.ServerID) string {
	if int(id) >= 0 && int(id) < len(t.addrs) {
		return t.addrs[id]
	}
	return ""
}

// buildUpdate assembles the canonical announcement for an epoch: the
// SUPERSET ring (the side that includes the subject) plus phase and subject,
// from which a receiver derives both sides of the window.
func buildUpdate(epoch uint64, phase uint8, subject core.ServerID, superset *ring.Versioned, addrs []string) wire.RingUpdate {
	ids, tokens := superset.Members(), superset.Tokens()
	u := wire.RingUpdate{
		Epoch:   epoch,
		RF:      uint8(superset.RF()),
		Phase:   phase,
		Subject: int32(subject),
		Nodes:   make([]wire.RingNode, len(ids)),
	}
	for i := range ids {
		addr := ""
		if int(ids[i]) < len(addrs) {
			addr = addrs[ids[i]]
		}
		u.Nodes[i] = wire.RingNode{ID: int32(ids[i]), Token: tokens[i], Addr: addr}
	}
	return u
}

// topologyFromUpdate reconstructs an adoptable topology from an
// announcement. The update's node list always includes the subject; the
// phase says which side of the window it describes.
func topologyFromUpdate(u *wire.RingUpdate) (*topology, error) {
	ids := make([]core.ServerID, len(u.Nodes))
	tokens := make([]int64, len(u.Nodes))
	maxID := core.ServerID(0)
	for i, nd := range u.Nodes {
		ids[i] = core.ServerID(nd.ID)
		tokens[i] = nd.Token
		if ids[i] < 0 {
			return nil, fmt.Errorf("kvstore: negative node id %d in ring update", nd.ID)
		}
		if ids[i] > maxID {
			maxID = ids[i]
		}
	}
	addrs := make([]string, maxID+1)
	for _, nd := range u.Nodes {
		addrs[nd.ID] = nd.Addr
	}
	t := &topology{phase: u.Phase, subject: core.ServerID(u.Subject), addrs: addrs}
	t.update = *u
	t.update.ID = 0
	full, err := ring.FromNodes(u.Epoch, ids, tokens, int(u.RF))
	if err != nil {
		return nil, err
	}
	if u.Phase == wire.PhaseStable {
		t.v = full
		t.subject = -1
		return t, nil
	}
	if !full.Contains(core.ServerID(u.Subject)) {
		return nil, fmt.Errorf("kvstore: transition subject %d not in announced ring", u.Subject)
	}
	subIds := make([]core.ServerID, 0, len(ids)-1)
	subTokens := make([]int64, 0, len(ids)-1)
	for i := range ids {
		if ids[i] == core.ServerID(u.Subject) {
			continue
		}
		subIds = append(subIds, ids[i])
		subTokens = append(subTokens, tokens[i])
	}
	switch u.Phase {
	case wire.PhaseJoin:
		// Target includes the joiner; the previous ring is the list minus it.
		t.v = full
		t.prev, err = ring.FromNodes(u.Epoch-1, subIds, subTokens, int(u.RF))
	case wire.PhaseLeave:
		// Target excludes the leaver; the previous ring is the full list.
		t.v, err = ring.FromNodes(u.Epoch, subIds, subTokens, int(u.RF))
		if err == nil {
			t.prev, err = ring.FromNodes(u.Epoch-1, ids, tokens, int(u.RF))
		}
	}
	if err != nil {
		return nil, err
	}
	return t, nil
}

// activationUpdate derives the stable announcement that closes this
// topology's window: the target ring, one epoch later.
func (t *topology) activationUpdate() wire.RingUpdate {
	return buildUpdate(t.epoch()+1, wire.PhaseStable, -1, t.v, t.addrs)
}

// bootTopology is epoch 0: a fixed fleet with equal token spacing and ids
// 0..n-1 — exactly the layout StartCluster always wired, now versioned.
func bootTopology(addrs []string, rf int) (*topology, error) {
	if len(addrs) == 0 {
		return nil, errors.New("kvstore: no addresses")
	}
	if rf < 1 || rf > len(addrs) {
		return nil, fmt.Errorf("kvstore: replication factor %d outside [1, %d]", rf, len(addrs))
	}
	v := ring.NewVersioned(len(addrs), rf)
	t := &topology{
		v:       v,
		phase:   wire.PhaseStable,
		subject: -1,
		addrs:   append([]string(nil), addrs...),
	}
	t.update = buildUpdate(0, wire.PhaseStable, -1, v, t.addrs)
	return t, nil
}

// Epoch reports the node's current topology epoch.
func (n *Node) Epoch() uint64 { return n.topo.Load().epoch() }

// Members lists the current target ring's member ids.
func (n *Node) Members() []core.ServerID {
	return append([]core.ServerID(nil), n.topo.Load().v.Members()...)
}

// InTransition reports whether a dual-route window is open at this node.
func (n *Node) InTransition() bool { return n.topo.Load().prev != nil }

// readRing exposes the ring reads currently route through (tests and
// diagnostics).
func (n *Node) readRing() *ring.Ring { return n.topo.Load().readRing() }

// installTopology interns new members, grows the peer table, and publishes
// nt. Callers hold n.memberMu.
func (n *Node) installTopology(nt *topology) {
	n.reg.InternAll(nt.v.Members()...)
	if nt.prev != nil {
		n.reg.InternAll(nt.prev.Members()...)
	}
	n.peersMu.Lock()
	for len(n.peers) < len(nt.addrs) {
		n.peers = append(n.peers, nil)
	}
	n.peersMu.Unlock()
	n.topo.Store(nt)
}

// adoptUpdate applies an announcement if it is newer than the current
// topology, reporting the node's resulting epoch either way.
func (n *Node) adoptUpdate(u *wire.RingUpdate) uint64 {
	n.memberMu.Lock()
	defer n.memberMu.Unlock()
	cur := n.topo.Load()
	if u.Epoch <= cur.epoch() {
		return cur.epoch()
	}
	nt, err := topologyFromUpdate(u)
	if err != nil {
		return cur.epoch() // malformed announcement: keep serving on ours
	}
	n.installTopology(nt)
	return nt.epoch()
}

// respondRingUpdate handles a pushed announcement: adopt-if-newer, then ack
// with the resulting epoch (an ack above the push's epoch tells the sender
// it raced a newer topology).
func (n *Node) respondRingUpdate(cw *connWriter, u wire.RingUpdate) {
	epoch := n.adoptUpdate(&u)
	fb := getBuf()
	b, err := wire.AppendRingAck((*fb)[:0], wire.RingAck{ID: u.ID, Epoch: epoch})
	if err != nil {
		putBuf(fb)
		return
	}
	*fb = b
	cw.enqueue(fb)
}

// broadcastUpdate pushes an announcement to every target (skipping self),
// waiting for acks with a per-peer timeout. Delivery is best-effort: a
// crashed member stays on its older epoch and re-converges from the next
// announcement it receives.
func (n *Node) broadcastUpdate(u wire.RingUpdate, targets []core.ServerID) {
	done := make(chan struct{}, len(targets))
	count := 0
	for _, s := range targets {
		if s == n.id {
			continue
		}
		count++
		s := s
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer func() { done <- struct{}{} }()
			if p, err := n.peer(s); err == nil {
				p.pushRing(u, ringPushTimeout)
			}
		}()
	}
	for i := 0; i < count; i++ {
		<-done
	}
}

// respondJoin admits a new member: assign the next id, bisect the widest
// arc, announce the PhaseJoin transition to the current fleet, and hand the
// transition topology back to the joiner. A join refused mid-transition (or
// past ring capacity) severs the connection, failing the joiner's RPC fast.
func (n *Node) respondJoin(cw *connWriter, id uint64, addr string) {
	u, err := n.admitJoiner(addr)
	if err != nil {
		cw.sever(err)
		return
	}
	u.ID = id
	fb := getBuf()
	b, err := wire.AppendRingUpdate((*fb)[:0], u)
	if err != nil {
		putBuf(fb)
		cw.sever(err)
		return
	}
	*fb = b
	cw.enqueue(fb)
}

// admitJoiner computes and installs the join transition, then broadcasts it
// to the pre-join fleet. The returned announcement (ID zero) is what the
// joiner adopts.
func (n *Node) admitJoiner(addr string) (wire.RingUpdate, error) {
	n.memberMu.Lock()
	cur := n.topo.Load()
	if cur.phase != wire.PhaseStable {
		n.memberMu.Unlock()
		return wire.RingUpdate{}, errMembershipBusy
	}
	newID := cur.v.MaxID() + 1
	nv, err := cur.v.AddNode(newID)
	if err != nil {
		n.memberMu.Unlock()
		return wire.RingUpdate{}, err
	}
	addrs := make([]string, newID+1)
	copy(addrs, cur.addrs)
	addrs[newID] = addr
	u := buildUpdate(nv.Epoch(), wire.PhaseJoin, newID, nv, addrs)
	nt, err := topologyFromUpdate(&u)
	if err != nil {
		n.memberMu.Unlock()
		return wire.RingUpdate{}, err
	}
	n.installTopology(nt)
	targets := append([]core.ServerID(nil), cur.v.Members()...)
	n.memberMu.Unlock()
	n.broadcastUpdate(u, targets)
	return u, nil
}

// JoinCluster starts a fresh node on listenAddr and admits it into the live
// cluster reachable at seedAddr: it receives the transition topology (and
// its assigned id) from the seed, serves dual-routed writes immediately,
// pulls its owed key ranges from the current owners, and only then
// broadcasts the stable epoch that cuts reads over to the new ring. It
// returns once the node is a fully caught-up read-serving member.
func JoinCluster(seedAddr, listenAddr string, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialTimeout("tcp", seedAddr, peerDialTimeout)
	if err != nil {
		ln.Close()
		return nil, err
	}
	seed := newRPCConn(conn)
	u, err := seed.joinReq(ln.Addr().String(), joinReqTimeout)
	seed.close()
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("kvstore: join via %s: %w", seedAddr, err)
	}
	nt, err := topologyFromUpdate(u)
	if err != nil || nt.phase != wire.PhaseJoin {
		ln.Close()
		return nil, fmt.Errorf("kvstore: join response unusable: %v", err)
	}
	n, err := newNode(core.ServerID(u.Subject), nt, ln, cfg)
	if err != nil {
		return nil, err
	}
	if err := n.catchUp(); err != nil {
		// Roll the fleet back to the pre-join membership at a fresh stable
		// epoch — without this the transition window (and the dual-route
		// write fan toward this dead joiner) would stay open forever. A
		// joiner that CRASHES here instead of erroring still wedges the
		// window; un-wedging that needs a failure detector with leases,
		// which this layer does not have yet (operators can bounce the
		// fleet, whose boot topology is stable).
		n.abortJoin()
		n.Close()
		return nil, err
	}
	n.activate()
	return n, nil
}

// abortJoin closes a failed join's transition window by announcing the
// PRE-join ring as a fresh stable epoch: membership reverts, writes stop
// fanning to this node, and the next Join/Decommission is admissible again.
func (n *Node) abortJoin() {
	n.memberMu.Lock()
	cur := n.topo.Load()
	if cur.phase != wire.PhaseJoin || cur.subject != n.id || cur.prev == nil {
		n.memberMu.Unlock()
		return
	}
	u := buildUpdate(cur.epoch()+1, wire.PhaseStable, -1, cur.prev, cur.addrs)
	nt, err := topologyFromUpdate(&u)
	if err != nil {
		n.memberMu.Unlock()
		return
	}
	n.installTopology(nt)
	targets := append([]core.ServerID(nil), cur.prev.Members()...)
	n.memberMu.Unlock()
	n.broadcastUpdate(u, targets)
}

// catchUp streams every range the join moved onto this node from its current
// owners, page by page. Streamed values fill only absent keys — a page
// carrying a pre-move value must never clobber a dual-routed write that
// landed first.
func (n *Node) catchUp() error {
	t := n.topo.Load()
	if t.prev == nil {
		return nil
	}
	for _, c := range t.prev.Diff(t.v) {
		if !slices.Contains(c.New, n.id) || slices.Contains(c.Old, n.id) {
			continue
		}
		if err := n.pullRange(c, t.epoch()); err != nil {
			return err
		}
	}
	return nil
}

// pullRange pages one owed arc in from its owners. All pages of the arc
// come from ONE owner (pagination cursors only compose against a single
// replica's key set); the puller rotates to the next owner — restarting the
// arc from the beginning — only when the current one fails, and retries
// wrong-epoch rejections (an owner that has not yet adopted the transition)
// until the budget expires.
func (n *Node) pullRange(c ring.Change, epoch uint64) error {
	deadline := time.Now().Add(streamBudget)
	cursor := ""
	var lastErr error
	for src := 0; ; {
		owner := c.Old[src%len(c.Old)]
		page, err := n.streamPullFrom(owner, epoch, c.Start, c.End, cursor)
		if err != nil {
			lastErr = err
			if time.Now().After(deadline) {
				return fmt.Errorf("kvstore: streaming range (%d, %d]: %w", c.Start, c.End, lastErr)
			}
			src++       // a different owner's key set: cursors don't carry over
			cursor = "" // re-pull the arc from its start (the version guard dedups)
			time.Sleep(streamRetryPause)
			continue
		}
		// Only older-or-absent keys land: the version check and write are
		// atomic in the store, so a dual-routed write racing this page
		// always wins.
		for i, k := range page.keys {
			if _, err := n.store.PutRawIfNewer(k, page.vals[i]); err != nil {
				return fmt.Errorf("kvstore: applying streamed page: %w", err)
			}
		}
		if len(page.keys) > 0 {
			cursor = page.keys[len(page.keys)-1]
		}
		if page.done {
			return nil
		}
	}
}

// streamPullFrom requests one page from owner, mapping a wrong-epoch
// rejection to ErrWrongEpoch.
func (n *Node) streamPullFrom(owner core.ServerID, epoch uint64, start, end int64, cursor string) (*streamPage, error) {
	p, err := n.peer(owner)
	if err != nil {
		return nil, err
	}
	page, err := p.streamPull(wire.StreamReq{Epoch: epoch, Start: start, End: end, Cursor: cursor})
	if err != nil {
		return nil, err
	}
	if page.status != wire.StreamOK {
		return nil, fmt.Errorf("%w (ours %d, theirs %d)", ErrWrongEpoch, epoch, page.epoch)
	}
	return page, nil
}

// activate closes this node's transition window: install the stable
// successor epoch locally, then announce it to the fleet. Reads cut over to
// the target ring as each member adopts.
func (n *Node) activate() {
	n.memberMu.Lock()
	cur := n.topo.Load()
	if cur.prev == nil {
		n.memberMu.Unlock()
		return
	}
	u := cur.activationUpdate()
	nt, err := topologyFromUpdate(&u)
	if err != nil {
		n.memberMu.Unlock()
		return
	}
	n.installTopology(nt)
	// Announce to both sides of the window: a leaver is not in the target
	// ring but must still learn its own departure epoch.
	targets := append([]core.ServerID(nil), cur.v.Members()...)
	for _, s := range cur.prev.Members() {
		if !slices.Contains(targets, s) {
			targets = append(targets, s)
		}
	}
	n.memberMu.Unlock()
	n.broadcastUpdate(u, targets)
}

// Decommission removes this node from the cluster while it keeps serving:
// announce the PhaseLeave transition (reads stay on the old ring, writes
// dual-route), push every arc this node owns to its gainers through the
// batch-write path, then announce the stable successor epoch. The node stays
// up for straggling internal reads until the caller Closes it.
func (n *Node) Decommission() error {
	n.memberMu.Lock()
	cur := n.topo.Load()
	if cur.phase != wire.PhaseStable {
		n.memberMu.Unlock()
		return errMembershipBusy
	}
	nv, err := cur.v.RemoveNode(n.id)
	if err != nil {
		n.memberMu.Unlock()
		return err
	}
	u := buildUpdate(nv.Epoch(), wire.PhaseLeave, n.id, cur.v, cur.addrs)
	nt, err := topologyFromUpdate(&u)
	if err != nil {
		n.memberMu.Unlock()
		return err
	}
	n.installTopology(nt)
	targets := append([]core.ServerID(nil), cur.v.Members()...)
	n.memberMu.Unlock()
	n.broadcastUpdate(u, targets)
	n.streamOut()
	n.activate()
	return nil
}

// streamOut pushes every arc the leave re-homes to its gainers as coalesced
// MsgStreamPush pages — the batch-write frame layout and encoders, but
// applied only-if-absent by the receiver so a pre-move value can never
// clobber a newer dual-routed write already on the gainer. Push failures are
// tolerated: the remaining replicas of each arc still hold the data, and
// read repair re-propagates it.
func (n *Node) streamOut() {
	t := n.topo.Load()
	if t.prev == nil {
		return
	}
	live := n.store.AppendLiveKeys(nil)
	var keys []string
	var vals [][]byte
	for _, c := range t.prev.Diff(t.v) {
		if !slices.Contains(c.Old, n.id) {
			continue
		}
		var gainers []core.ServerID
		for _, s := range c.New {
			if !slices.Contains(c.Old, s) {
				gainers = append(gainers, s)
			}
		}
		if len(gainers) == 0 {
			continue
		}
		keys = keys[:0]
		for _, k := range live {
			if c.Contains(ring.Token([]byte(k))) {
				keys = append(keys, k)
			}
		}
		for start := 0; start < len(keys); start += streamPushKeys {
			end := min(start+streamPushKeys, len(keys))
			chunk := keys[start:end]
			vals = vals[:0]
			for _, k := range chunk {
				v, _ := n.store.Get(k)
				vals = append(vals, v)
			}
			for _, g := range gainers {
				if p, err := n.peer(g); err == nil {
					p.batchWrite(wire.MsgStreamPush, 0, 0, chunk, vals, nil)
				}
			}
		}
	}
}

// streamScan caches the sorted live keys of the arc currently being pulled
// from this node, keyed by (epoch, arc). One snapshot serves every page of
// the pull instead of rebuilding and re-sorting the whole key set per page
// (which would make a K-key join O(K²·log K) on the serving replica). Keys
// written after the snapshot are covered by dual-routed writes reaching the
// puller directly, so their absence from the stream loses nothing.
type streamScan struct {
	mu         sync.Mutex
	epoch      uint64
	start, end int64
	keys       []string
}

// arcKeys returns the sorted live keys inside the arc at the given epoch,
// building the snapshot once per (epoch, arc). The returned slice is
// immutable by convention.
func (n *Node) arcKeys(epoch uint64, arc ring.Range) []string {
	sc := &n.scan
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.keys != nil && sc.epoch == epoch && sc.start == arc.Start && sc.end == arc.End {
		return sc.keys
	}
	keys := make([]string, 0, 1024)
	for _, k := range n.store.AppendLiveKeys(nil) {
		if arc.Contains(ring.Token([]byte(k))) {
			keys = append(keys, k)
		}
	}
	sc.epoch, sc.start, sc.end, sc.keys = epoch, arc.Start, arc.End, keys
	return keys
}

// respondStream serves one page of a key-range pull: the live keys inside
// the requested arc, strictly after the cursor, in ascending order — values
// streamed straight from the storage engine into the chunk frame. A request
// whose epoch does not match the node's current topology is rejected with
// StreamWrongEpoch and the node's epoch.
func (n *Node) respondStream(cw *connWriter, m wire.StreamReq) {
	t := n.topo.Load()
	fb := getBuf()
	if m.Epoch != t.epoch() {
		b, err := wire.AppendStreamChunk((*fb)[:0], wire.StreamChunk{
			ID: m.ID, Status: wire.StreamWrongEpoch, Epoch: t.epoch(), Done: true})
		if err != nil {
			putBuf(fb)
			return
		}
		*fb = b
		cw.enqueue(fb)
		return
	}
	arc := ring.Range{Start: m.Start, End: m.End}
	keys := n.arcKeys(t.epoch(), arc)
	// First key strictly after the cursor (the snapshot is sorted).
	from := sort.SearchStrings(keys, m.Cursor)
	for from < len(keys) && keys[from] <= m.Cursor {
		from++
	}
	b, mark := wire.BeginStreamChunk((*fb)[:0], m.ID, t.epoch())
	count, done := 0, true
	var err error
	for _, k := range keys[from:] {
		if count >= streamPageKeys || len(b) >= streamPageBytes {
			done = false // at least one more matching key remains
			break
		}
		pre := len(b)
		if b, err = wire.BeginStreamItem(b, &mark, k); err != nil {
			break
		}
		var found bool
		if b, found = n.store.GetAppend(b, k); !found {
			// The key died between the snapshot and the read (a racing
			// delete); drop the opened item.
			b = b[:pre]
			mark.CancelItem()
			continue
		}
		if b, err = wire.FinishStreamItem(b, &mark); err != nil {
			break
		}
		count++
	}
	if err == nil {
		b, err = wire.FinishStreamChunk(b, mark, done)
	}
	if err != nil {
		putBuf(fb)
		cw.sever(err)
		return
	}
	*fb = b
	cw.enqueue(fb)
}

// Join starts a fresh node on a loopback port and admits it into this
// cluster through node 0 — the test and demo harness for live growth. The
// node is appended to c.Nodes.
func (c *Cluster) Join(cfg Config) (*Node, error) {
	seed := ""
	for _, n := range c.Nodes {
		if n != nil {
			seed = n.Addr()
			break
		}
	}
	if seed == "" {
		return nil, errors.New("kvstore: no live seed node")
	}
	n, err := JoinCluster(seed, "127.0.0.1:0", cfg)
	if err != nil {
		return nil, err
	}
	c.Nodes = append(c.Nodes, n)
	return n, nil
}

// RebuildFromPeers re-populates this node's storage from its co-replicas —
// the recovery path for a node that lost its disk and restarted empty over
// the same id and address. It walks every ring arc whose replica set
// includes this node and pulls it, page by page, from the other owners
// through the same streaming machinery membership transitions use. Streamed
// values land only for absent keys, so writes arriving concurrently (the
// node is already serving) always win over the older streamed copies. The
// cluster must be membership-stable; mid-transition rebuilds return
// errMembershipBusy, and peers still on a different epoch reject pulls until
// the topology reconverges.
func (n *Node) RebuildFromPeers() error {
	t := n.topo.Load()
	if t.prev != nil {
		return errMembershipBusy
	}
	tokens := t.v.Tokens()
	r := t.v.Ring()
	for i, end := range tokens {
		owners := r.ReplicasForToken(end, nil)
		if !slices.Contains(owners, n.id) {
			continue
		}
		others := make([]core.ServerID, 0, len(owners)-1)
		for _, o := range owners {
			if o != n.id {
				others = append(others, o)
			}
		}
		if len(others) == 0 {
			continue // RF=1: no surviving copy of this arc exists
		}
		start := tokens[(i+len(tokens)-1)%len(tokens)]
		c := ring.Change{Range: ring.Range{Start: start, End: end}, Old: others}
		if err := n.pullRange(c, t.epoch()); err != nil {
			return err
		}
	}
	return nil
}
