package c3_test

import (
	"testing"
	"time"

	"c3"
)

// TestPublicAPIEndToEnd exercises the documented quick-start flow: a C3
// client selecting among three servers whose feedback identifies one as
// overloaded.
func TestPublicAPIEndToEnd(t *testing.T) {
	ranker := c3.NewRanker(c3.RankerConfig{ConcurrencyWeight: 10, Seed: 1})
	client := c3.New(ranker, c3.ClientConfig{RateControl: true})
	group := []c3.ServerID{1, 2, 3}

	now := int64(0)
	respond := func(s c3.ServerID, q float64, svc time.Duration) {
		client.OnResponse(s, c3.Feedback{QueueSize: q, ServiceTime: svc}, svc+time.Millisecond, now)
	}
	// Warm every server once, then make server 2 look terrible.
	for range group {
		s, ok, _ := client.Pick(group, now)
		if !ok {
			t.Fatal("pick failed during warmup")
		}
		q := 1.0
		if s == 2 {
			q = 500
		}
		respond(s, q, 4*time.Millisecond)
		now += int64(time.Millisecond)
	}
	counts := map[c3.ServerID]int{}
	for i := 0; i < 200; i++ {
		now += int64(time.Millisecond)
		s, ok, retryAt := client.Pick(group, now)
		if !ok {
			now = retryAt
			continue
		}
		counts[s]++
		q := 1.0
		if s == 2 {
			q = 500
		}
		respond(s, q, 4*time.Millisecond)
	}
	if counts[2] > counts[1]/4 || counts[2] > counts[3]/4 {
		t.Fatalf("overloaded server not avoided: %v", counts)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	group := []c3.ServerID{1, 2, 3}
	rankers := []c3.Ranker{
		c3.NewLOR(1),
		c3.NewRoundRobin(),
		c3.NewRandom(1),
		c3.NewTwoChoice(1),
		c3.NewLeastResponseTime(0.9, 1),
		c3.NewWeightedRandom(0.9, 1),
		c3.NewOracle(func(c3.ServerID) (float64, float64) { return 0, 0.001 }, 1),
		c3.NewDynamicSnitch(c3.SnitchConfig{Seed: 1}),
	}
	for _, r := range rankers {
		cl := c3.New(r, c3.ClientConfig{})
		if s, ok, _ := cl.Pick(group, 0); !ok || s < 1 || s > 3 {
			t.Fatalf("%s: bad pick", r.Name())
		}
	}
}

func TestPublicScheduler(t *testing.T) {
	client := c3.New(c3.NewRoundRobin(), c3.ClientConfig{
		RateControl: true,
		Rate:        c3.RateConfig{InitialRate: 1},
	})
	sched := c3.NewScheduler[string](client, []c3.ServerID{1, 2})
	var got []string
	emit := func(s c3.ServerID, item string) { got = append(got, item) }
	for _, it := range []string{"a", "b", "c", "d"} {
		sched.Submit(it, 0, emit)
	}
	if len(got) != 2 || sched.Backlog() != 2 {
		t.Fatalf("dispatched %v backlog %d, want 2 dispatched 2 queued", got, sched.Backlog())
	}
	at, ok := sched.NextRetry(0)
	if !ok {
		t.Fatal("no retry time")
	}
	sched.Drain(at, emit)
	if len(got) != 4 {
		t.Fatalf("after drain: %v", got)
	}
}

func TestCubicScoreExported(t *testing.T) {
	if got := c3.CubicScore(0.01, 0.004, 1, 3); got != 0.01 {
		t.Fatalf("CubicScore at q̂=1 = %v, want R̄", got)
	}
}

func TestDefaultRateConfig(t *testing.T) {
	cfg := c3.DefaultRateConfig()
	if cfg.Interval != int64(20*time.Millisecond) || cfg.Beta != 0.2 || cfg.SMax != 10 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}
