// Command c3bench regenerates the paper's evaluation: every table and figure
// (Figures 1–15 plus the §5 text experiments and the ablations), rendered as
// text reports.
//
// Usage:
//
//	c3bench                      # run everything at medium scale
//	c3bench -fig fig14           # one experiment
//	c3bench -scale full -seeds 5 # paper-scale (long)
//	c3bench -list                # enumerate experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"c3/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "experiment id (see -list) or 'all'")
	scale := flag.String("scale", "medium", "quick | medium | full")
	seeds := flag.Int("seeds", 0, "repetitions per configuration (0 = scale default)")
	kvjson := flag.String("kvjson", "BENCH_kv.json",
		"path for the machine-readable live-store benchmark record (written when the kv experiment runs; empty disables)")
	tailjson := flag.String("tailjson", "BENCH_tail.json",
		"path for the machine-readable tail-tolerance benchmark record (written when the tail experiment runs; empty disables)")
	batchjson := flag.String("batchjson", "BENCH_batch.json",
		"path for the machine-readable batch scatter-gather benchmark record (written when the batch experiment runs; empty disables)")
	elasticjson := flag.String("elasticjson", "BENCH_elastic.json",
		"path for the machine-readable membership-churn benchmark record (written when the elastic experiment runs; empty disables)")
	durablejson := flag.String("durablejson", "BENCH_durable.json",
		"path for the machine-readable durability benchmark record (written when the durable experiment runs; empty disables)")
	consistencyjson := flag.String("consistencyjson", "BENCH_consistency.json",
		"path for the machine-readable tunable-consistency benchmark record (written when the consistency experiment runs; empty disables)")
	shards := flag.Int("shards", 0,
		"per-node shard count for live-cluster experiments (0 = GOMAXPROCS; 1 reproduces the pre-sharding layout)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, r := range bench.All() {
			fmt.Printf("  %-12s %s\n", r.ID, r.Name)
		}
		return
	}
	sc, err := bench.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	o := bench.Options{Scale: sc, Seeds: *seeds, KVJSONPath: *kvjson,
		TailJSONPath: *tailjson, BatchJSONPath: *batchjson,
		ElasticJSONPath: *elasticjson, DurableJSONPath: *durablejson,
		ConsistencyJSONPath: *consistencyjson, Shards: *shards}

	runners := bench.All()
	if *fig != "all" {
		r, ok := bench.ByID(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *fig)
			os.Exit(2)
		}
		runners = []bench.Runner{r}
	}
	failed := false
	for _, r := range runners {
		start := time.Now()
		rep := r.Run(o)
		fmt.Print(rep.String())
		fmt.Printf("   [%s in %v]\n\n", r.ID, time.Since(start).Round(time.Millisecond))
		failed = failed || rep.Failed
	}
	if failed {
		os.Exit(1)
	}
}
