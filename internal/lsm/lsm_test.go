package lsm

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"c3/internal/sim"
)

func TestPutGetRoundtrip(t *testing.T) {
	s := mustOpen(t, Options{})
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	if v, ok := s.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q,%v", v, ok)
	}
	if v, ok := s.Get("b"); !ok || string(v) != "2" {
		t.Fatalf("Get(b) = %q,%v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) found something")
	}
}

func TestOverwriteNewestWins(t *testing.T) {
	s := mustOpen(t, Options{})
	s.Put("k", []byte("old"))
	s.Flush()
	s.Put("k", []byte("new"))
	if v, _ := s.Get("k"); string(v) != "new" {
		t.Fatalf("memtable should shadow run: %q", v)
	}
	s.Flush()
	if v, _ := s.Get("k"); string(v) != "new" {
		t.Fatalf("newer run should shadow older: %q", v)
	}
}

func TestDeleteTombstoneAcrossFlush(t *testing.T) {
	s := mustOpen(t, Options{})
	s.Put("k", []byte("v"))
	s.Flush()
	s.Delete("k")
	if _, ok := s.Get("k"); ok {
		t.Fatal("deleted key visible via memtable tombstone")
	}
	s.Flush()
	if _, ok := s.Get("k"); ok {
		t.Fatal("deleted key visible via run tombstone")
	}
	s.Compact()
	if _, ok := s.Get("k"); ok {
		t.Fatal("deleted key resurrected by compaction")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

func TestAutoFlushOnThreshold(t *testing.T) {
	s := mustOpen(t, Options{FlushBytes: 64})
	for i := 0; i < 20; i++ {
		s.Put(fmt.Sprintf("key-%02d", i), []byte("0123456789"))
	}
	if s.Stats().Flushes == 0 {
		t.Fatal("no automatic flush despite exceeding threshold")
	}
	if s.Runs() == 0 {
		t.Fatal("no runs after flush")
	}
	// All data still readable.
	for i := 0; i < 20; i++ {
		if _, ok := s.Get(fmt.Sprintf("key-%02d", i)); !ok {
			t.Fatalf("key-%02d lost after flush", i)
		}
	}
}

func TestAutoCompactionBoundsRuns(t *testing.T) {
	s := mustOpen(t, Options{FlushBytes: 1 << 30, MaxRuns: 3})
	for f := 0; f < 10; f++ {
		s.Put(fmt.Sprintf("k%d", f), []byte("v"))
		s.Flush()
	}
	if got := s.Runs(); got > 3+1 {
		t.Fatalf("runs = %d, want bounded by MaxRuns", got)
	}
	if s.Stats().Compactions == 0 {
		t.Fatal("no compactions despite run pressure")
	}
	for f := 0; f < 10; f++ {
		if v, ok := s.Get(fmt.Sprintf("k%d", f)); !ok || string(v) != "v" {
			t.Fatalf("k%d lost after compaction", f)
		}
	}
}

func TestCompactionPreservesNewestVersion(t *testing.T) {
	s := mustOpen(t, Options{})
	s.Put("k", []byte("v1"))
	s.Flush()
	s.Put("k", []byte("v2"))
	s.Flush()
	s.Put("k", []byte("v3"))
	s.Flush()
	s.Compact()
	if s.Runs() != 1 {
		t.Fatalf("runs after compact = %d", s.Runs())
	}
	if v, _ := s.Get("k"); string(v) != "v3" {
		t.Fatalf("compaction kept %q, want v3", v)
	}
}

func TestBloomSkipsCounted(t *testing.T) {
	s := mustOpen(t, Options{})
	for i := 0; i < 1000; i++ {
		s.Put(fmt.Sprintf("present-%d", i), []byte("v"))
	}
	s.Flush()
	for i := 0; i < 1000; i++ {
		s.Get(fmt.Sprintf("absent-%d", i))
	}
	st := s.Stats()
	// ≈99% of absent lookups should be bloom-skipped.
	if st.BloomSkips < 900 {
		t.Fatalf("bloom skips = %d/1000, filter ineffective", st.BloomSkips)
	}
}

func TestReadAmplificationGrowsWithRuns(t *testing.T) {
	// The cassim storage model assumes more runs → more work per read;
	// verify the real engine exhibits it.
	s := mustOpen(t, Options{FlushBytes: 1 << 30, MaxRuns: 100})
	for f := 0; f < 8; f++ {
		for i := 0; i < 100; i++ {
			s.Put(fmt.Sprintf("f%d-k%d", f, i), []byte("v"))
		}
		s.Flush()
	}
	before := s.Stats().RunsConsulted
	// Keys in the oldest run require walking past newer runs (bloom
	// filters prune most, but hits on the right run still count).
	for i := 0; i < 100; i++ {
		s.Get(fmt.Sprintf("f0-k%d", i))
	}
	consulted := s.Stats().RunsConsulted - before
	if consulted < 100 {
		t.Fatalf("consulted %d runs for 100 oldest-run reads", consulted)
	}
}

func TestValueIsolation(t *testing.T) {
	s := mustOpen(t, Options{})
	buf := []byte("mutable")
	s.Put("k", buf)
	buf[0] = 'X'
	v, _ := s.Get("k")
	if string(v) != "mutable" {
		t.Fatalf("store aliased caller buffer: %q", v)
	}
	v[0] = 'Y'
	v2, _ := s.Get("k")
	if string(v2) != "mutable" {
		t.Fatalf("returned buffer aliased store: %q", v2)
	}
}

func TestEmptyFlushNoop(t *testing.T) {
	s := mustOpen(t, Options{})
	s.Flush()
	if s.Runs() != 0 || s.Stats().Flushes != 0 {
		t.Fatal("empty flush created a run")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := mustOpen(t, Options{FlushBytes: 4096})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("g%d-k%d", g, i%50)
				s.Put(k, []byte(fmt.Sprintf("v%d", i)))
				s.Get(k)
				if i%100 == 0 {
					s.Delete(k)
				}
			}
		}(g)
	}
	wg.Wait() // run with -race
}

// Property: the store agrees with a plain map reference model under any
// sequence of put/delete/flush/compact operations.
func TestModelEquivalenceProperty(t *testing.T) {
	r := sim.RNG(1, 1)
	f := func(ops []uint16) bool {
		s := mustOpen(t, Options{FlushBytes: 1 << 30, MaxRuns: 4})
		model := map[string]string{}
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op%17)
			switch op % 5 {
			case 0, 1, 2:
				val := fmt.Sprintf("v%d", r.IntN(1000))
				s.Put(key, []byte(val))
				model[key] = val
			case 3:
				s.Delete(key)
				delete(model, key)
			case 4:
				s.Flush()
			}
		}
		for k, want := range model {
			got, ok := s.Get(k)
			if !ok || string(got) != want {
				return false
			}
		}
		for i := 0; i < 17; i++ {
			k := fmt.Sprintf("k%d", i)
			if _, inModel := model[k]; !inModel {
				if _, ok := s.Get(k); ok {
					return false
				}
			}
		}
		return s.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBloomNoFalseNegativesProperty(t *testing.T) {
	f := func(keys []string) bool {
		b := NewBloom(len(keys))
		for _, k := range keys {
			b.Add(k)
		}
		for _, k := range keys {
			if !b.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	b := NewBloom(10000)
	for i := 0; i < 10000; i++ {
		b.Add(fmt.Sprintf("in-%d", i))
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if b.MayContain(fmt.Sprintf("out-%d", i)) {
			fp++
		}
	}
	if rate := float64(fp) / 10000; rate > 0.03 {
		t.Fatalf("false positive rate = %v, want < 3%%", rate)
	}
}

func BenchmarkPut(b *testing.B) {
	s := mustOpen(b, Options{})
	val := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		s.Put(fmt.Sprintf("key-%d", i%100000), val)
	}
}

func BenchmarkGetHot(b *testing.B) {
	s := mustOpen(b, Options{})
	val := make([]byte, 1024)
	for i := 0; i < 10000; i++ {
		s.Put(fmt.Sprintf("key-%d", i), val)
	}
	s.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(fmt.Sprintf("key-%d", i%10000))
	}
}

func TestGetAppend(t *testing.T) {
	s := mustOpen(t, Options{})
	s.Put("k", []byte("value"))
	s.Put("empty", nil)
	s.Delete("dead")

	dst := []byte("prefix-")
	out, ok := s.GetAppend(dst, "k")
	if !ok || string(out) != "prefix-value" {
		t.Fatalf("GetAppend = %q, %v", out, ok)
	}
	// Missing and tombstoned keys leave dst untouched.
	if out, ok := s.GetAppend(dst, "nope"); ok || string(out) != "prefix-" {
		t.Fatalf("missing: %q, %v", out, ok)
	}
	if out, ok := s.GetAppend(dst, "dead"); ok || string(out) != "prefix-" {
		t.Fatalf("tombstone: %q, %v", out, ok)
	}

	// Values served from immutable runs append identically, and appending
	// to the returned slice must never corrupt the stored value.
	s.Flush()
	out, ok = s.GetAppend(nil, "k")
	if !ok || string(out) != "value" {
		t.Fatalf("after flush: %q, %v", out, ok)
	}
	_ = append(out, "-scribble"...)
	if v, ok := s.Get("k"); !ok || string(v) != "value" {
		t.Fatalf("stored value corrupted: %q, %v", v, ok)
	}
}

func TestPutIfAbsent(t *testing.T) {
	s := mustOpen(t, Options{})
	pia := func(k, v string) bool {
		t.Helper()
		ok, err := s.PutIfAbsent(k, []byte(v))
		if err != nil {
			t.Fatalf("PutIfAbsent(%s): %v", k, err)
		}
		return ok
	}
	if !pia("k", "v1") {
		t.Fatal("first PutIfAbsent must store")
	}
	if pia("k", "v2") {
		t.Fatal("PutIfAbsent over a live key must not store")
	}
	if v, _ := s.Get("k"); string(v) != "v1" {
		t.Fatalf("value clobbered: %q", v)
	}
	// A flushed (run-resident) value still blocks the write.
	s.Flush()
	if pia("k", "v3") {
		t.Fatal("PutIfAbsent over a flushed key must not store")
	}
	// A tombstone counts as absent, in the memtable and in runs.
	s.Delete("k")
	if !pia("k", "v4") {
		t.Fatal("PutIfAbsent over a memtable tombstone must store")
	}
	s.Delete("k")
	s.Flush()
	if !pia("k", "v5") {
		t.Fatal("PutIfAbsent over a flushed tombstone must store")
	}
	if v, ok := s.Get("k"); !ok || string(v) != "v5" {
		t.Fatalf("got %q ok=%v, want v5", v, ok)
	}
}
