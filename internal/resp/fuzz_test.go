package resp

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzRESPDecode pins the decoder's contract on adversarial input: Next never
// panics, every error is either ErrProtocol or an io error, and every
// successfully decoded array-form command re-encodes bit-exactly via
// AppendCommand — the strict-canonical-parse invariant that lets corpus
// entries double as round-trip proofs.
func FuzzRESPDecode(f *testing.F) {
	seeds := [][]byte{
		[]byte("*1\r\n$4\r\nPING\r\n"),
		[]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n"),
		[]byte("*2\r\n$3\r\nGET\r\n$0\r\n\r\n"),
		[]byte("*2\r\n$4\r\nMGET\r\n$5\r\na\r\n\x00b\r\n"),
		[]byte("PING\r\n"),
		[]byte("GET key extra\r\n"),
		[]byte("*0\r\n"),
		[]byte("*-1\r\n"),
		[]byte("$4\r\nPING\r\n"),
		[]byte("*1\r\n$04\r\nPING\r\n"),
		[]byte("*01\r\n$4\r\nPING\r\n"),
		[]byte("*2\r\n$3\r\nDEL\r\n$1\r\nk"),
		[]byte("*1\r\n:1\r\n"),
		[]byte("\r\n"),
		[]byte("*99999999999\r\n"),
		bytes.Repeat([]byte("a"), 4096),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var reenc []byte
		for {
			args, err := r.Next()
			if err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF || errors.Is(err, ErrProtocol) {
					return
				}
				t.Fatalf("unexpected error class: %v", err)
			}
			if len(args) == 0 {
				t.Fatal("Next returned no args without error")
			}
			if r.Inline() {
				continue // inline form is not canonical; no round-trip contract
			}
			// Round-trip: re-encoding then re-decoding must reproduce the args.
			reenc = AppendCommand(reenc[:0], args)
			r2 := NewReader(bytes.NewReader(reenc))
			args2, err := r2.Next()
			if err != nil {
				t.Fatalf("re-decode of %q failed: %v", reenc, err)
			}
			if len(args2) != len(args) {
				t.Fatalf("re-decode arg count %d != %d", len(args2), len(args))
			}
			for i := range args {
				if !bytes.Equal(args[i], args2[i]) {
					t.Fatalf("arg %d: %q != %q", i, args[i], args2[i])
				}
			}
		}
	})
}
