// Package queuesim implements the paper's §6 discrete-event simulation model
// (the Go counterpart of the authors' "absim" simulator):
//
//   - N servers, each a FIFO queue feeding k parallel service slots;
//   - exponential service times whose mean fluctuates bimodally: every
//     "fluctuation interval" T each server independently sets its service
//     rate to µ or D·µ with equal probability;
//   - an open-loop Poisson workload whose rate is a chosen fraction of the
//     system's average capacity;
//   - clients running a pluggable replica-selection policy over replica
//     groups of RF consecutive servers, with a 10% read-repair broadcast and
//     a fixed one-way network latency.
//
// Figures 14 and 15 are direct sweeps over this model.
package queuesim

import (
	"fmt"
	"math/rand/v2"
	"time"

	"c3/internal/core"
	"c3/internal/ewma"
	"c3/internal/ratelimit"
	"c3/internal/sim"
	"c3/internal/stats"
)

// Policy names accepted by Config.Policy.
const (
	PolicyC3         = "C3"   // cubic ranking + rate control (the paper's system)
	PolicyC3RankOnly = "C3-R" // cubic ranking without rate control (ablation)
	PolicyLOR        = "LOR"  // least outstanding requests
	PolicyRR         = "RR"   // round robin + rate control (paper baseline)
	PolicyOracle     = "ORA"  // instantaneous q/µ oracle
	PolicyRandom     = "RND"
	PolicyLRT        = "LRT"
	PolicyWRand      = "WRND"
	PolicyTwoChoice  = "2C"
)

// Config parameterizes one simulation run. Zero fields take the paper's §6
// values (DefaultConfig).
type Config struct {
	Policy string

	Servers     int           // number of servers (50)
	Slots       int           // parallel service slots per server (4)
	MeanService time.Duration // 1/µ, base mean service time (4 ms)
	D           float64       // bimodal range parameter (3)
	Fluctuation time.Duration // T, service-rate change interval (e.g. 500 ms)

	Utilization float64 // arrival rate as a fraction of average capacity
	Clients     int     // number of client nodes (150 or 300)
	Replication int     // replica group size (3)
	ReadRepair  float64 // probability a request is broadcast to all replicas (0.1)
	NetOneWay   time.Duration

	Requests int    // total requests to generate (600,000)
	Seed     uint64 // RNG seed; every stream derives from it

	// SkewFraction, when > 0, routes SkewDemand of all requests through
	// SkewFraction of the clients (Fig. 15 uses 0.2/0.5 with 0.8 demand).
	SkewFraction float64
	SkewDemand   float64

	// Exponent overrides the C3 scoring exponent b (ablation; default 3).
	Exponent float64
	// Alpha overrides the EWMA smoothing factor for feedback signals.
	Alpha float64
	// NoConcurrencyComp disables the os·w term in q̂ (ablation).
	NoConcurrencyComp bool
	// RateConfig overrides the cubic rate controller parameters.
	RateConfig ratelimit.Config
}

// DefaultConfig returns the §6 experimental setup at the high-utilization
// operating point.
func DefaultConfig() Config {
	return Config{
		Policy:      PolicyC3,
		Servers:     50,
		Slots:       4,
		MeanService: 4 * time.Millisecond,
		D:           3,
		Fluctuation: 500 * time.Millisecond,
		Utilization: 0.70,
		Clients:     150,
		Replication: 3,
		ReadRepair:  0.1,
		NetOneWay:   250 * time.Microsecond,
		Requests:    600_000,
		SkewDemand:  0.8,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Policy == "" {
		c.Policy = d.Policy
	}
	if c.Servers <= 0 {
		c.Servers = d.Servers
	}
	if c.Slots <= 0 {
		c.Slots = d.Slots
	}
	if c.MeanService <= 0 {
		c.MeanService = d.MeanService
	}
	if c.D <= 0 {
		c.D = d.D
	}
	if c.Fluctuation <= 0 {
		c.Fluctuation = d.Fluctuation
	}
	if c.Utilization <= 0 {
		c.Utilization = d.Utilization
	}
	if c.Clients <= 0 {
		c.Clients = d.Clients
	}
	if c.Replication <= 0 {
		c.Replication = d.Replication
	}
	if c.ReadRepair < 0 {
		c.ReadRepair = 0
	}
	if c.NetOneWay <= 0 {
		c.NetOneWay = d.NetOneWay
	}
	if c.Requests <= 0 {
		c.Requests = d.Requests
	}
	if c.SkewDemand <= 0 {
		c.SkewDemand = d.SkewDemand
	}
	if c.Replication > c.Servers {
		c.Replication = c.Servers
	}
	return c
}

// Result carries the measurements of one run.
type Result struct {
	Policy     string
	Latency    stats.Summary // end-to-end request latency, milliseconds
	Sample     *stats.Sample // raw latency sample (ms)
	Throughput float64       // completed requests per simulated second

	// Backpressured counts requests that waited in a backlog queue;
	// MaxBacklog is the largest backlog observed across replica groups.
	Backpressured uint64
	MaxBacklog    int

	// PerServer counts primary requests served by each server, a fairness
	// / load-conditioning signal.
	PerServer []int

	SimDuration time.Duration
}

// request is one client request moving through the model.
type request struct {
	client  *client
	group   int
	tArrive int64
	repair  bool
}

// flight is one copy of a request in transit to a server.
type flight struct {
	req     *request
	server  core.ServerID
	tSent   int64
	svc     int64 // filled at service completion, ns
	qlen    int   // queue feedback at completion
	primary bool
}

type server struct {
	id    core.ServerID
	slots int
	busy  int
	queue []*flight
	head  int
	mean  float64 // current mean service time, ns
	rng   *rand.Rand

	// svcEst is the server's own smoothed service-time estimate across
	// all requests it completes; this is the "1/µs" each response carries
	// (the paper's servers report their service rate, which aggregates
	// every client's requests and therefore tracks rate changes within a
	// few completions).
	svcEst ewma.EWMA
}

func (sv *server) qlen() int { return len(sv.queue) - sv.head + sv.busy }

type client struct {
	id     int
	core   *core.Client
	scheds []*core.GroupScheduler[*request]
	waking []bool
}

// engine owns one simulation run.
type engine struct {
	cfg     Config
	s       *sim.Sim
	servers []*server
	clients []*client
	groups  [][]core.ServerID
	reg     *core.Registry // cluster-wide server index, shared by all clients

	baseMean  float64 // ns
	arrived   int
	done      int
	tLastDone int64

	res     *Result
	arrRand *rand.Rand // arrival process and routing decisions
	fluct   *rand.Rand
}

// Run executes one simulation and returns its measurements.
func Run(cfg Config) *Result {
	cfg = cfg.withDefaults()
	e := &engine{
		cfg:      cfg,
		s:        sim.New(),
		baseMean: float64(cfg.MeanService),
		arrRand:  sim.RNG(cfg.Seed, 1),
		fluct:    sim.RNG(cfg.Seed, 2),
	}
	e.res = &Result{
		Policy:    cfg.Policy,
		Sample:    stats.NewSample(cfg.Requests),
		PerServer: make([]int, cfg.Servers),
	}
	e.build()
	e.scheduleFluctuation()
	e.scheduleArrival()
	e.s.Run()

	e.res.Latency = e.res.Sample.Summarize()
	// The run ends when the last response lands; trailing fluctuation
	// ticks must not dilute the throughput figure.
	e.res.SimDuration = time.Duration(e.tLastDone)
	if e.tLastDone > 0 {
		e.res.Throughput = float64(e.done) / (float64(e.tLastDone) / 1e9)
	}
	for _, c := range e.clients {
		for _, g := range c.scheds {
			if g.HighWater() > e.res.MaxBacklog {
				e.res.MaxBacklog = g.HighWater()
			}
		}
	}
	return e.res
}

// build constructs servers, replica groups and clients.
func (e *engine) build() {
	cfg := e.cfg
	e.servers = make([]*server, cfg.Servers)
	for i := range e.servers {
		e.servers[i] = &server{
			id:     core.ServerID(i),
			slots:  cfg.Slots,
			mean:   e.baseMean,
			rng:    sim.RNG(cfg.Seed, 100+uint64(i)),
			svcEst: ewma.New(0.2),
		}
	}
	ids := make([]core.ServerID, cfg.Servers)
	for i := range ids {
		ids[i] = core.ServerID(i)
	}
	e.reg = core.NewRegistry(ids...)
	// Replica groups: RF consecutive servers on a ring, one group per
	// server (the consistent-hashing layout without modelling keys, as
	// the paper prescribes).
	e.groups = make([][]core.ServerID, cfg.Servers)
	for i := range e.groups {
		g := make([]core.ServerID, cfg.Replication)
		for j := 0; j < cfg.Replication; j++ {
			g[j] = core.ServerID((i + j) % cfg.Servers)
		}
		e.groups[i] = g
	}
	e.clients = make([]*client, cfg.Clients)
	for i := range e.clients {
		e.clients[i] = e.newClient(i)
	}
}

// newClient wires a client with the configured policy.
func (e *engine) newClient(id int) *client {
	cfg := e.cfg
	seed := cfg.Seed ^ (0x5eed<<32 + uint64(id))
	w := float64(cfg.Clients)
	if cfg.NoConcurrencyComp {
		w = -1 // RankerConfig: negative disables the term
	}
	rcfg := core.RankerConfig{
		Alpha:             cfg.Alpha,
		ConcurrencyWeight: w,
		Exponent:          cfg.Exponent,
		Seed:              seed,
		Registry:          e.reg,
	}
	var ranker core.Ranker
	rateControl := false
	switch cfg.Policy {
	case PolicyC3:
		ranker = core.NewCubicRanker(rcfg)
		rateControl = true
	case PolicyC3RankOnly:
		ranker = core.NewCubicRanker(rcfg)
	case PolicyLOR:
		ranker = core.NewLOR(e.reg, seed)
	case PolicyRR:
		ranker = core.NewRoundRobin(e.reg)
		rateControl = true
	case PolicyOracle:
		ranker = core.NewOracle(e.oracle, seed)
	case PolicyRandom:
		ranker = core.NewRandom(seed)
	case PolicyLRT:
		ranker = core.NewLeastResponseTime(e.reg, 0, seed)
	case PolicyWRand:
		ranker = core.NewWeightedRandom(e.reg, 0, seed)
	case PolicyTwoChoice:
		ranker = core.NewTwoChoice(e.reg, seed)
	default:
		panic(fmt.Sprintf("queuesim: unknown policy %q", cfg.Policy))
	}
	cc := core.NewClient(ranker, core.ClientConfig{RateControl: rateControl, Rate: cfg.RateConfig})
	cl := &client{
		id:     id,
		core:   cc,
		scheds: make([]*core.GroupScheduler[*request], len(e.groups)),
		waking: make([]bool, len(e.groups)),
	}
	for g := range e.groups {
		cl.scheds[g] = core.NewGroupScheduler[*request](cc, e.groups[g])
	}
	return cl
}

// oracle exposes instantaneous server state for the ORA policy.
func (e *engine) oracle(s core.ServerID) (float64, float64) {
	sv := e.servers[s]
	return float64(sv.qlen()), sv.mean / 1e9
}

// scheduleFluctuation flips every server's service rate between µ and D·µ
// each interval, while work remains.
func (e *engine) scheduleFluctuation() {
	var tick func()
	tick = func() {
		for _, sv := range e.servers {
			if e.fluct.Float64() < 0.5 {
				sv.mean = e.baseMean
			} else {
				sv.mean = e.baseMean / e.cfg.D
			}
		}
		if e.done < e.cfg.Requests {
			e.s.AfterDur(e.cfg.Fluctuation, tick)
		}
	}
	e.s.After(0, tick)
}

// arrivalRate returns the Poisson arrival rate in requests per second:
// Utilization × (Servers × Slots × average service rate), where the average
// rate per slot is (µ + D·µ)/2. Read-repair broadcasts multiply every
// request into 1 + p·(RF−1) server-side copies; the arrival rate is
// discounted by that factor so the configured utilization is the utilization
// the servers actually see (otherwise "70%" would silently run at 84%).
func (e *engine) arrivalRate() float64 {
	mu := 1e9 / e.baseMean // requests/sec per slot at base rate
	avg := mu * (1 + e.cfg.D) / 2
	repairFactor := 1 + e.cfg.ReadRepair*float64(e.cfg.Replication-1)
	return e.cfg.Utilization * float64(e.cfg.Servers*e.cfg.Slots) * avg / repairFactor
}

// scheduleArrival drives the open-loop Poisson arrival process.
func (e *engine) scheduleArrival() {
	meanGap := 1e9 / e.arrivalRate() // ns
	var arrive func()
	arrive = func() {
		e.arrived++
		e.inject()
		if e.arrived < e.cfg.Requests {
			e.s.After(sim.Exp(e.arrRand, meanGap), arrive)
		}
	}
	e.s.After(sim.Exp(e.arrRand, meanGap), arrive)
}

// pickClient routes an arrival to a client, honouring demand skew.
func (e *engine) pickClient() *client {
	cfg := e.cfg
	if cfg.SkewFraction > 0 {
		hot := int(float64(cfg.Clients) * cfg.SkewFraction)
		if hot < 1 {
			hot = 1
		}
		if e.arrRand.Float64() < cfg.SkewDemand {
			return e.clients[e.arrRand.IntN(hot)]
		}
		if hot < cfg.Clients {
			return e.clients[hot+e.arrRand.IntN(cfg.Clients-hot)]
		}
		return e.clients[e.arrRand.IntN(cfg.Clients)]
	}
	return e.clients[e.arrRand.IntN(cfg.Clients)]
}

// inject creates one request at a client and submits it to the replica-group
// scheduler (Algorithm 1: dispatch now or backpressure).
func (e *engine) inject() {
	cl := e.pickClient()
	g := e.arrRand.IntN(len(e.groups))
	req := &request{
		client:  cl,
		group:   g,
		tArrive: e.s.Now(),
		repair:  e.arrRand.Float64() < e.cfg.ReadRepair,
	}
	sched := cl.scheds[g]
	before := sched.Backlog()
	sched.Submit(req, e.s.Now(), e.dispatch)
	if sched.Backlog() > 0 {
		if before == 0 || sched.Backlog() > before {
			e.res.Backpressured++
		}
		e.armWake(cl, g)
	}
}

// armWake schedules a Drain retry for a backlogged group scheduler.
func (e *engine) armWake(cl *client, g int) {
	if cl.waking[g] {
		return
	}
	at, ok := cl.scheds[g].NextRetry(e.s.Now())
	if !ok {
		return
	}
	cl.waking[g] = true
	if at <= e.s.Now() {
		at = e.s.Now() + 1
	}
	e.s.At(at, func() {
		cl.waking[g] = false
		cl.scheds[g].Drain(e.s.Now(), e.dispatch)
		if cl.scheds[g].Backlog() > 0 {
			e.armWake(cl, g)
		}
	})
}

// dispatch sends a request to its selected primary replica, plus the rest of
// the group when read repair fires. The primary send was already recorded by
// Client.Pick inside the scheduler; repair copies are recorded directly.
func (e *engine) dispatch(primary core.ServerID, req *request) {
	now := e.s.Now()
	e.send(&flight{req: req, server: primary, tSent: now, primary: true})
	if req.repair {
		for _, s := range e.groups[req.group] {
			if s == primary {
				continue
			}
			req.client.core.OnSend(s, now)
			e.send(&flight{req: req, server: s, tSent: now})
		}
	}
}

// send models the client→server network hop.
func (e *engine) send(fl *flight) {
	e.s.AfterDur(e.cfg.NetOneWay, func() { e.serverArrive(fl) })
}

// serverArrive enqueues or starts service for an incoming request.
func (e *engine) serverArrive(fl *flight) {
	sv := e.servers[fl.server]
	if sv.busy < sv.slots {
		e.startService(sv, fl)
		return
	}
	sv.queue = append(sv.queue, fl)
}

// startService begins serving fl on a free slot of sv.
func (e *engine) startService(sv *server, fl *flight) {
	sv.busy++
	d := sim.Exp(sv.rng, sv.mean)
	fl.svc = d
	e.s.After(d, func() { e.completeService(sv, fl) })
}

// completeService frees the slot, samples the queue feedback exactly as the
// paper specifies ("recorded after the request has been serviced and the
// response is about to be dispatched"), responds, and pulls the next job.
func (e *engine) completeService(sv *server, fl *flight) {
	sv.busy--
	sv.svcEst.Add(float64(fl.svc))
	fl.svc = int64(sv.svcEst.Value())
	fl.qlen = sv.qlen()
	e.s.AfterDur(e.cfg.NetOneWay, func() { e.clientReceive(fl) })
	if sv.head < len(sv.queue) {
		next := sv.queue[sv.head]
		sv.queue[sv.head] = nil
		sv.head++
		if sv.head == len(sv.queue) {
			sv.queue = sv.queue[:0]
			sv.head = 0
		} else if sv.head > 256 && sv.head*2 > len(sv.queue) {
			n := copy(sv.queue, sv.queue[sv.head:])
			sv.queue = sv.queue[:n]
			sv.head = 0
		}
		e.startService(sv, next)
	}
}

// clientReceive feeds the response into the client's policy state and
// finalizes measurement for primary responses.
func (e *engine) clientReceive(fl *flight) {
	now := e.s.Now()
	req := fl.req
	fb := core.Feedback{
		QueueSize:   float64(fl.qlen),
		ServiceTime: time.Duration(fl.svc),
	}
	req.client.core.OnResponse(fl.server, fb, time.Duration(now-fl.tSent), now)
	if !fl.primary {
		return
	}
	e.done++
	e.tLastDone = now
	e.res.PerServer[int(fl.server)]++
	e.res.Sample.Add(float64(now-req.tArrive) / 1e6) // ms
	// A response may have raised srate; give the backlog a chance.
	sched := req.client.scheds[req.group]
	if sched.Backlog() > 0 {
		sched.Drain(now, e.dispatch)
		if sched.Backlog() > 0 {
			e.armWake(req.client, req.group)
		}
	}
}

// Policies lists every selectable policy name.
func Policies() []string {
	return []string{
		PolicyOracle, PolicyC3, PolicyLOR, PolicyRR,
		PolicyC3RankOnly, PolicyRandom, PolicyLRT, PolicyWRand, PolicyTwoChoice,
	}
}
