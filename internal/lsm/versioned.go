package lsm

import (
	"encoding/binary"
	"errors"
)

// Versioned values. The kvstore coordinator stamps every write with a 64-bit
// HLC-style version and the engine stores it as an 8-byte little-endian
// prefix of the value bytes, so the WAL, SST, and manifest formats carry
// versions without any change: a versioned record is an ordinary record
// whose value happens to start with its version. PutVersioned applies a
// last-write-wins guard — the check and the write share one critical
// section, the same atomicity PutIfAbsent gives membership streaming — so a
// read-repair write-back or a replayed hint can never clobber a newer value.
//
// Because the guard holds s.mu, a key's stored version is non-decreasing
// over time, which means newest-run-wins (the engine's native shadowing
// rule) and highest-version-wins coincide: flush and compaction need no
// version awareness.

// VersionLen is the size of the version prefix inside stored value bytes.
const VersionLen = 8

// ErrUnreadable reports that the existing value's version could not be read
// (I/O error on a file-backed run), so a guarded write cannot decide.
var ErrUnreadable = errors.New("lsm: existing value unreadable")

// AppendVersioned appends the wire/storage encoding of (ver, val) to dst:
// 8 bytes of little-endian version followed by the payload.
func AppendVersioned(dst []byte, ver uint64, val []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, ver)
	return append(dst, val...)
}

// SplitVersioned splits a raw stored value into its version and payload.
// Values shorter than the prefix (written by the unversioned API) read as
// version 0 with the raw bytes as payload.
func SplitVersioned(raw []byte) (ver uint64, val []byte) {
	if len(raw) < VersionLen {
		return 0, raw
	}
	return binary.LittleEndian.Uint64(raw), raw[VersionLen:]
}

// PutVersioned stores val under key at version ver if and only if the key's
// current version is lower (absent and tombstoned keys always lose).
// applied=false with a nil error means a value at ver or newer already
// exists — success for idempotent writers like hint replay and read repair.
// Durability semantics match Put: a nil return means the record's commit
// group is on disk.
func (s *Store) PutVersioned(key string, ver uint64, val []byte) (applied bool, err error) {
	raw := make([]byte, 0, VersionLen+len(val))
	raw = AppendVersioned(raw, ver, val)
	return s.putRawNewer(key, ver, raw)
}

// PutRawIfNewer stores a raw version-prefixed value (as read back via
// GetAppend or Get) under the same last-write-wins guard as PutVersioned.
// Membership streaming and rebuild apply received values with it, so a
// streamed pre-move value can never shadow a newer concurrent write. Raw
// values without a prefix carry version 0: they apply only when the key is
// absent, which is exactly the old PutIfAbsent contract.
func (s *Store) PutRawIfNewer(key string, raw []byte) (applied bool, err error) {
	ver, _ := SplitVersioned(raw)
	cp := make([]byte, len(raw))
	copy(cp, raw)
	return s.putRawNewer(key, ver, cp)
}

// PutAllVersioned stores vals under keys at one shared version, applying the
// same last-write-wins guard as PutVersioned per key. Winning records join a
// single WAL commit group (one fsync for the whole batch, like PutAll); keys
// whose stored version is already >= ver are skipped silently — idempotent
// success, the contract batch hint replay and quorum batch writes rely on.
func (s *Store) PutAllVersioned(keys []string, vals [][]byte, ver uint64) error {
	cw, err := s.putAllVersionedStart(keys, vals, ver)
	if err != nil {
		return err
	}
	return waitCommit(cw)
}

// putAllVersionedStart is PutAllVersioned up to (not including) the commit
// wait — the sharded store's overlap point, like putAllStart.
func (s *Store) putAllVersionedStart(keys []string, vals [][]byte, ver uint64) (*walCommit, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	total := 0
	for _, v := range vals {
		total += VersionLen + len(v)
	}
	arena := make([]byte, 0, total)
	cps := make([][]byte, 0, len(keys))
	wk := make([]string, 0, len(keys))
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	for i, k := range keys {
		cur, present, err := s.versionLocked(k)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		if present && cur >= ver {
			continue
		}
		at := len(arena)
		arena = AppendVersioned(arena, ver, vals[i])
		cps = append(cps, arena[at:len(arena):len(arena)])
		wk = append(wk, k)
	}
	if len(wk) == 0 {
		s.mu.Unlock()
		return nil, nil
	}
	var cw *walCommit
	if s.wal != nil {
		var err error
		if cw, err = s.wal.addBatch(wk, cps, nil); err != nil {
			s.mu.Unlock()
			return nil, err
		}
	}
	for i := range wk {
		s.c.puts.Add(1)
		s.putLocked(wk[i], cps[i])
	}
	s.mu.Unlock()
	return cw, nil
}

// PutMulti applies a heterogeneous write batch in one WAL commit group:
// record i lands under the last-write-wins guard at version vers[i] when
// non-zero (stored version-prefixed, exactly PutVersioned) and
// unconditionally raw when zero (exactly Put). Guard-skipped records are
// silent idempotent successes. This is the per-shard writer's batch-apply
// primitive: pipelined single-key writes drained from a shard's queue share
// one group commit here instead of paying one each.
func (s *Store) PutMulti(keys []string, vers []uint64, vals [][]byte) error {
	cw, err := s.applyMultiStart(keys, vers, vals, nil)
	if err != nil {
		return err
	}
	return waitCommit(cw)
}

// ApplyMulti is PutMulti extended with deletes: record i with dels[i] set is
// a version-guarded tombstone (vals[i] ignored) instead of a put, sharing the
// batch's single WAL commit group. A guarded delete whose key already stores
// a version >= vers[i] is skipped silently — the same idempotent contract as
// guarded puts, so a replayed delete hint can never clobber a newer value.
func (s *Store) ApplyMulti(keys []string, vers []uint64, vals [][]byte, dels []bool) error {
	cw, err := s.applyMultiStart(keys, vers, vals, dels)
	if err != nil {
		return err
	}
	return waitCommit(cw)
}

// applyMultiStart is ApplyMulti up to (not including) the commit wait.
func (s *Store) applyMultiStart(keys []string, vers []uint64, vals [][]byte, dels []bool) (*walCommit, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	total := 0
	for _, v := range vals {
		total += VersionLen + len(v)
	}
	arena := make([]byte, 0, total)
	cps := make([][]byte, 0, len(keys))
	wk := make([]string, 0, len(keys))
	var wdel []bool
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	for i, k := range keys {
		at := len(arena)
		del := dels != nil && dels[i]
		if ver := vers[i]; ver != 0 {
			cur, present, err := s.versionLocked(k)
			if err != nil {
				s.mu.Unlock()
				return nil, err
			}
			if present && cur >= ver {
				continue
			}
			if !del {
				arena = AppendVersioned(arena, ver, vals[i])
			}
		} else if !del {
			arena = append(arena, vals[i]...)
		}
		if del {
			cps = append(cps, nil)
		} else {
			cps = append(cps, arena[at:len(arena):len(arena)])
		}
		wk = append(wk, k)
		if del && wdel == nil {
			wdel = make([]bool, len(wk)-1, len(keys))
		}
		if wdel != nil {
			wdel = append(wdel, del)
		}
	}
	if len(wk) == 0 {
		s.mu.Unlock()
		return nil, nil
	}
	var cw *walCommit
	if s.wal != nil {
		var err error
		if cw, err = s.wal.addBatch(wk, cps, wdel); err != nil {
			s.mu.Unlock()
			return nil, err
		}
	}
	for i := range wk {
		if wdel != nil && wdel[i] {
			s.c.deletes.Add(1)
		} else {
			s.c.puts.Add(1)
		}
		s.putLocked(wk[i], cps[i])
	}
	s.mu.Unlock()
	return cw, nil
}

// DeleteVersioned removes key if and only if its current version is lower
// than ver — the replica-side apply of a coordinated DELETE. applied=false
// with a nil error means a newer value exists (idempotent success for hint
// replay). The tombstone itself stores no version (versionLocked reports
// tombstoned keys absent), so any later versioned write may land; the window
// this opens for a delayed pre-delete write is documented in DESIGN.md and
// closed by anti-entropy, not by this guard.
func (s *Store) DeleteVersioned(key string, ver uint64) (applied bool, err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, ErrClosed
	}
	cur, present, err := s.versionLocked(key)
	if err != nil {
		s.mu.Unlock()
		return false, err
	}
	if ver != 0 && present && cur >= ver {
		s.mu.Unlock()
		return false, nil
	}
	var cw *walCommit
	if s.wal != nil {
		if cw, err = s.wal.add(walDel, key, nil); err != nil {
			s.mu.Unlock()
			return false, err
		}
	}
	s.c.deletes.Add(1)
	s.putLocked(key, nil)
	s.mu.Unlock()
	return true, waitCommit(cw)
}

// putRawNewer is the shared guarded write: cp must be a private copy of the
// full version-prefixed value.
func (s *Store) putRawNewer(key string, ver uint64, cp []byte) (bool, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, ErrClosed
	}
	cur, present, err := s.versionLocked(key)
	if err != nil {
		s.mu.Unlock()
		return false, err
	}
	if present && cur >= ver {
		s.mu.Unlock()
		return false, nil
	}
	var cw *walCommit
	if s.wal != nil {
		if cw, err = s.wal.add(walPut, key, cp); err != nil {
			s.mu.Unlock()
			return false, err
		}
	}
	s.c.puts.Add(1)
	s.putLocked(key, cp)
	s.mu.Unlock()
	return true, waitCommit(cw)
}

// versionLocked reads the version of key's newest live record. present=false
// means absent or tombstoned (any versioned write may apply). Unversioned
// short values read as version 0.
func (s *Store) versionLocked(key string) (ver uint64, present bool, err error) {
	if v, ok := s.mem[key]; ok {
		if v == nil {
			return 0, false, nil
		}
		ver, _ := SplitVersioned(v)
		return ver, true, nil
	}
	for _, r := range s.runs {
		if !r.bloom.MayContain(key) {
			continue
		}
		if i := r.find(key); i >= 0 {
			if r.tombstone(i) {
				return 0, false, nil
			}
			return r.version(i)
		}
	}
	return 0, false, nil
}

// version reads the 8-byte version prefix of entry i, touching at most
// VersionLen bytes of a file-backed run.
func (r *run) version(i int) (uint64, bool, error) {
	if r.vals != nil {
		ver, _ := SplitVersioned(r.vals[i])
		return ver, true, nil
	}
	n := int(r.vlens[i] &^ tombstoneBit)
	if n < VersionLen {
		return 0, true, nil
	}
	if r.cache != nil {
		return binary.LittleEndian.Uint64(r.cache[r.offs[i]:]), true, nil
	}
	var b [VersionLen]byte
	if _, err := r.f.ReadAt(b[:], r.offs[i]); err != nil {
		return 0, true, ErrUnreadable
	}
	return binary.LittleEndian.Uint64(b[:]), true, nil
}

// GetVersioned appends the newest payload of key to dst (version prefix
// stripped in place — no extra allocation) and returns the stored version.
func (s *Store) GetVersioned(dst []byte, key string) (_ []byte, ver uint64, ok bool) {
	at := len(dst)
	out, ok := s.GetAppend(dst, key)
	if !ok {
		return dst, 0, false
	}
	if len(out)-at < VersionLen {
		return out, 0, true // unversioned legacy value
	}
	ver = binary.LittleEndian.Uint64(out[at:])
	copy(out[at:], out[at+VersionLen:])
	return out[: len(out)-VersionLen : cap(out)], ver, true
}

// Version reports the current version of key (0, false when absent).
func (s *Store) Version(key string) (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, false
	}
	ver, present, err := s.versionLocked(key)
	if err != nil || !present {
		return 0, false
	}
	return ver, true
}

// Sidecar log helpers. The kvstore hint log reuses the WAL record framing
// ([plen u32][crc32c u32][payload]) for its own durable per-peer queues, so
// torn-tail and corruption handling behave identically to the WAL proper.

// LogPut is the op byte sidecar logs should use for key/value records.
const LogPut = walPut

// LogDelete is the op byte sidecar logs should use for tombstone records.
// Unlike the store WAL's own delete records, a sidecar tombstone carries a
// value section exactly like LogPut — the kvstore hint log stores the
// coordinator's version stamp there, so a recovered delete hint replays
// under the same last-write-wins guard as a fresh one.
const LogDelete = walDelHint

// AppendLogRecord appends one CRC-framed record in the WAL record format.
func AppendLogRecord(b []byte, op byte, key string, val []byte) []byte {
	return appendWALRecord(b, op, key, val)
}

// ReplayLog reads records from path in order, calling apply for each valid
// one, and returns the length of the valid prefix. Parsing stops without
// error at the first torn or corrupt record.
func ReplayLog(path string, apply func(op byte, key string, val []byte)) (int64, error) {
	return replayWAL(path, apply)
}

// TruncateLog cuts path down to validLen, discarding a torn tail.
func TruncateLog(path string, validLen int64) error {
	return truncateWAL(path, validLen)
}
