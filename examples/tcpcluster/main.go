// TCP cluster: the same C3 client code that drives the simulators, embedded
// in a real replicated key-value store running over loopback TCP — five
// nodes, RF=3, LSM storage, length-prefixed binary protocol with piggybacked
// feedback.
//
// The demo loads data, measures a healthy baseline, degrades one node
// (+15 ms per read, the live analogue of the paper's tc experiment), and
// shows C3 steering reads away within a few responses, then re-admitting the
// node after recovery via read-repair probes.
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"c3/internal/kvstore"
	"c3/internal/sim"
	"c3/internal/stats"
	"c3/internal/workload"
)

func main() {
	cluster, err := kvstore.StartCluster(5, kvstore.Config{
		Strategy:      kvstore.StratC3,
		ReadDelayMean: 300 * time.Microsecond,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client, err := kvstore.Dial(cluster.Addrs())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	fmt.Println("5-node TCP cluster up at:", strings.Join(cluster.Addrs(), " "))
	const keys = 500
	for i := uint64(0); i < keys; i++ {
		if err := client.Put(workload.Key(i), []byte(strings.Repeat("x", 512))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d keys (RF=3, write fan-out, CL=ONE)\n\n", keys)

	chooser := workload.NewScrambled(keys, 0.99)
	rng := sim.RNG(9, 9)
	run := func(label string, n int) {
		before := make([]uint64, len(cluster.Nodes))
		for i, nd := range cluster.Nodes {
			before[i] = nd.ReadsServed()
		}
		lat := stats.NewSample(n)
		for i := 0; i < n; i++ {
			start := time.Now()
			if _, _, err := client.Get(workload.Key(chooser.Next(rng))); err != nil {
				log.Fatal(err)
			}
			lat.Add(float64(time.Since(start).Microseconds()) / 1000)
		}
		fmt.Printf("%-18s %s\n", label, lat.Summarize())
		fmt.Printf("%-18s reads served per node:", "")
		for i, nd := range cluster.Nodes {
			fmt.Printf(" n%d=%-4d", i, nd.ReadsServed()-before[i])
		}
		fmt.Println()
	}

	run("healthy", 800)
	fmt.Println("\n--- injecting +15ms storage delay on node 2 ---")
	cluster.Nodes[2].SetSlowdown(15 * time.Millisecond)
	run("node 2 degraded", 800)
	fmt.Println("\n--- node 2 recovered ---")
	cluster.Nodes[2].SetSlowdown(0)
	run("after recovery", 800)
	fmt.Println("\nThe identical internal/core client drives both this live cluster and the")
	fmt.Println("paper-reproduction simulators; only the substrate differs.")
}
