package load_test

import (
	"testing"

	"c3/internal/analysis/load"
)

// TestLoadRingPackage type-checks one small real package (and its std
// closure) through the source loader and checks the analyzer-facing
// contract: module packages come back with syntax, types and a populated
// Info, and a package with tests arrives as its test variant.
func TestLoadRingPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the std closure from source")
	}
	pkgs, err := load.Load("../../..", "./internal/ring")
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, p := range pkgs {
		if !p.Module {
			t.Errorf("%s: loader returned a non-module package", p.ImportPath)
		}
		if p.Types == nil || p.Types.Path() != "c3/internal/ring" {
			continue
		}
		found = true
		if len(p.Files) == 0 {
			t.Errorf("%s: no syntax", p.ImportPath)
		}
		if p.Info == nil || len(p.Info.Uses) == 0 {
			t.Errorf("%s: types.Info not populated", p.ImportPath)
		}
		if p.ForTest != "c3/internal/ring" {
			t.Errorf("%s: ForTest = %q, want the test variant to shadow the plain package",
				p.ImportPath, p.ForTest)
		}
	}
	if !found {
		t.Fatalf("no package for c3/internal/ring in %d results", len(pkgs))
	}
}
