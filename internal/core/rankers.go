package core

import (
	"math"
	"math/rand/v2"
	"slices"
	"time"

	"c3/internal/ewma"
	"c3/internal/sim"
)

// LOR is the least-outstanding-requests strategy (§2.2): each client prefers
// the server to which it currently has the fewest requests in flight. It is
// what Nginx/ELB-style load balancers do and is the primary baseline in the
// paper's simulations.
type LOR struct {
	rng         *rand.Rand
	reg         *Registry
	outstanding []float64 // dense, indexed by reg.Index
	scratch     []scored
}

// NewLOR returns a LOR ranker seeded for tie-breaking. A nil registry
// creates a private one.
func NewLOR(reg *Registry, seed uint64) *LOR {
	if reg == nil {
		reg = NewRegistry()
	}
	return &LOR{rng: sim.RNG(seed, 0x10f), reg: reg}
}

// Name implements Ranker.
func (l *LOR) Name() string { return "LOR" }

// Registry implements RegistryHolder.
func (l *LOR) Registry() *Registry { return l.reg }

func (l *LOR) idx(s ServerID) int {
	i := l.reg.Index(s)
	l.outstanding = grown(l.outstanding, i, nil)
	return i
}

// OnSend implements Ranker.
func (l *LOR) OnSend(s ServerID, now int64) {
	i := l.idx(s) // hoisted: idx may grow the slice it indexes
	l.outstanding[i]++
}

// OnResponse implements Ranker.
func (l *LOR) OnResponse(s ServerID, fb Feedback, rtt time.Duration, now int64) {
	if i := l.idx(s); l.outstanding[i] > 0 {
		l.outstanding[i]--
	}
}

// OnAbandon implements Ranker: identical to OnResponse — LOR's only state is
// the outstanding count.
func (l *LOR) OnAbandon(s ServerID, now int64) {
	if i := l.idx(s); l.outstanding[i] > 0 {
		l.outstanding[i]--
	}
}

// OnSendN implements BatchRanker.
func (l *LOR) OnSendN(s ServerID, n int, now int64) {
	i := l.idx(s)
	l.outstanding[i] += float64(n)
}

// OnResponseN implements BatchRanker (the outstanding count is LOR's only
// state, so response and abandon coincide).
func (l *LOR) OnResponseN(s ServerID, n int, fb Feedback, rtt time.Duration, now int64) {
	l.OnAbandonN(s, n, now)
}

// OnAbandonN implements BatchRanker.
func (l *LOR) OnAbandonN(s ServerID, n int, now int64) {
	i := l.idx(s)
	l.outstanding[i] -= float64(n)
	if l.outstanding[i] < 0 {
		l.outstanding[i] = 0
	}
}

// Outstanding reports this client's in-flight count toward s. It is a pure
// read: unknown servers report 0 without being interned.
func (l *LOR) Outstanding(s ServerID) float64 {
	if i, ok := l.reg.Lookup(s); ok && i < len(l.outstanding) {
		return l.outstanding[i]
	}
	return 0
}

// Rank implements Ranker: ascending outstanding count, random ties.
func (l *LOR) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	if cap(l.scratch) < len(dst) {
		l.scratch = make([]scored, 0, len(dst))
	}
	sc := l.scratch[:0]
	for _, s := range dst {
		i := l.idx(s)
		sc = append(sc, scored{s, l.outstanding[i]})
	}
	rankScored(l.rng, dst, sc)
	return dst
}

// Best implements BestPicker: the fewest-outstanding replica, uniform ties.
func (l *LOR) Best(group []ServerID, now int64) (ServerID, bool) {
	if len(group) == 0 {
		return 0, false
	}
	bi := bestScored(l.rng, len(group), func(i int) float64 {
		j := l.idx(group[i])
		return l.outstanding[j]
	})
	return group[bi], true
}

// RoundRobin rotates through each replica group's members in turn. Combined
// with rate control in a Client, it is the paper's "RR" baseline (§6), used
// to isolate the contribution of rate limiting from that of ranking.
type RoundRobin struct {
	reg  *Registry
	next []int // dense, indexed by reg.GroupIndex
}

// NewRoundRobin returns a RoundRobin ranker. A nil registry creates a
// private one.
func NewRoundRobin(reg *Registry) *RoundRobin {
	if reg == nil {
		reg = NewRegistry()
	}
	return &RoundRobin{reg: reg}
}

// Name implements Ranker.
func (r *RoundRobin) Name() string { return "RR" }

// Registry implements RegistryHolder.
func (r *RoundRobin) Registry() *Registry { return r.reg }

// OnSend implements Ranker.
func (r *RoundRobin) OnSend(ServerID, int64) {}

// OnResponse implements Ranker.
func (r *RoundRobin) OnResponse(ServerID, Feedback, time.Duration, int64) {}

// OnAbandon implements Ranker (no in-flight state).
func (r *RoundRobin) OnAbandon(ServerID, int64) {}

// Rank implements Ranker: the group rotated by a per-group counter. The group
// is interned once by the registry; steady-state calls do no hashing of
// string keys and no allocation.
func (r *RoundRobin) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	if len(dst) == 0 {
		return dst
	}
	g := r.reg.GroupIndex(group)
	r.next = grown(r.next, g, nil)
	off := r.next[g] % len(dst)
	r.next[g] = off + 1
	rotate(dst, off)
	return dst
}

// rotate rotates xs left by off positions in place (three-reversal trick).
func rotate(xs []ServerID, off int) {
	if off <= 0 || off >= len(xs) {
		return
	}
	slices.Reverse(xs[:off])
	slices.Reverse(xs[off:])
	slices.Reverse(xs)
}

// Random is the uniform random strategy (evaluated and dismissed in §6).
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a Random ranker.
func NewRandom(seed uint64) *Random { return &Random{rng: sim.RNG(seed, 0xa11d)} }

// Name implements Ranker.
func (r *Random) Name() string { return "RND" }

// OnSend implements Ranker.
func (r *Random) OnSend(ServerID, int64) {}

// OnResponse implements Ranker.
func (r *Random) OnResponse(ServerID, Feedback, time.Duration, int64) {}

// OnAbandon implements Ranker (no in-flight state).
func (r *Random) OnAbandon(ServerID, int64) {}

// Rank implements Ranker: a uniform shuffle.
func (r *Random) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	for i := len(dst) - 1; i > 0; i-- {
		j := r.rng.IntN(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// Best implements BestPicker: one uniform draw.
func (r *Random) Best(group []ServerID, now int64) (ServerID, bool) {
	if len(group) == 0 {
		return 0, false
	}
	return group[r.rng.IntN(len(group))], true
}

// TwoChoice implements the power-of-two-choices strategy (Mitzenmacher,
// discussed in §8): sample two random replicas and prefer the one with fewer
// outstanding requests.
type TwoChoice struct {
	rng         *rand.Rand
	reg         *Registry
	outstanding []float64 // dense, indexed by reg.Index
}

// NewTwoChoice returns a TwoChoice ranker. A nil registry creates a private
// one.
func NewTwoChoice(reg *Registry, seed uint64) *TwoChoice {
	if reg == nil {
		reg = NewRegistry()
	}
	return &TwoChoice{rng: sim.RNG(seed, 0x2c), reg: reg}
}

// Name implements Ranker.
func (t *TwoChoice) Name() string { return "2C" }

// Registry implements RegistryHolder.
func (t *TwoChoice) Registry() *Registry { return t.reg }

func (t *TwoChoice) idx(s ServerID) int {
	i := t.reg.Index(s)
	t.outstanding = grown(t.outstanding, i, nil)
	return i
}

// OnSend implements Ranker.
func (t *TwoChoice) OnSend(s ServerID, now int64) {
	i := t.idx(s) // hoisted: idx may grow the slice it indexes
	t.outstanding[i]++
}

// OnResponse implements Ranker.
func (t *TwoChoice) OnResponse(s ServerID, fb Feedback, rtt time.Duration, now int64) {
	if i := t.idx(s); t.outstanding[i] > 0 {
		t.outstanding[i]--
	}
}

// OnAbandon implements Ranker: identical to OnResponse — the outstanding
// count is TwoChoice's only state.
func (t *TwoChoice) OnAbandon(s ServerID, now int64) {
	if i := t.idx(s); t.outstanding[i] > 0 {
		t.outstanding[i]--
	}
}

// OnSendN implements BatchRanker.
func (t *TwoChoice) OnSendN(s ServerID, n int, now int64) {
	i := t.idx(s)
	t.outstanding[i] += float64(n)
}

// OnResponseN implements BatchRanker (outstanding is the only state).
func (t *TwoChoice) OnResponseN(s ServerID, n int, fb Feedback, rtt time.Duration, now int64) {
	t.OnAbandonN(s, n, now)
}

// OnAbandonN implements BatchRanker.
func (t *TwoChoice) OnAbandonN(s ServerID, n int, now int64) {
	i := t.idx(s)
	t.outstanding[i] -= float64(n)
	if t.outstanding[i] < 0 {
		t.outstanding[i] = 0
	}
}

// Outstanding reports this client's in-flight count toward s. It is a pure
// read: unknown servers report 0 without being interned.
func (t *TwoChoice) Outstanding(s ServerID) float64 {
	if i, ok := t.reg.Lookup(s); ok && i < len(t.outstanding) {
		return t.outstanding[i]
	}
	return 0
}

// Rank implements Ranker: shuffle, then ensure the better of the first two
// (by outstanding count) leads.
func (t *TwoChoice) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	for i := len(dst) - 1; i > 0; i-- {
		j := t.rng.IntN(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
	if len(dst) >= 2 {
		a, b := t.idx(dst[0]), t.idx(dst[1])
		if t.outstanding[b] < t.outstanding[a] {
			dst[0], dst[1] = dst[1], dst[0]
		}
	}
	return dst
}

// Best implements BestPicker: sample two distinct replicas, keep the one
// with fewer outstanding requests.
func (t *TwoChoice) Best(group []ServerID, now int64) (ServerID, bool) {
	n := len(group)
	if n == 0 {
		return 0, false
	}
	if n == 1 {
		return group[0], true
	}
	i := t.rng.IntN(n)
	j := t.rng.IntN(n - 1)
	if j >= i {
		j++
	}
	a, b := t.idx(group[i]), t.idx(group[j])
	if t.outstanding[b] < t.outstanding[a] {
		return group[j], true
	}
	return group[i], true
}

// LeastResponseTime prefers the server with the lowest smoothed end-to-end
// response time (one of the §6 "did not fare well" strategies).
type LeastResponseTime struct {
	rng     *rand.Rand
	alpha   float64
	reg     *Registry
	rt      []ewma.EWMA // dense, indexed by reg.Index
	scratch []scored
}

// NewLeastResponseTime returns a ranker smoothing RTTs with factor alpha
// (defaulted like RankerConfig.Alpha when out of range). A nil registry
// creates a private one.
func NewLeastResponseTime(reg *Registry, alpha float64, seed uint64) *LeastResponseTime {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.9
	}
	if reg == nil {
		reg = NewRegistry()
	}
	return &LeastResponseTime{
		rng:   sim.RNG(seed, 0x1e57),
		alpha: alpha,
		reg:   reg,
	}
}

// Name implements Ranker.
func (l *LeastResponseTime) Name() string { return "LRT" }

// Registry implements RegistryHolder.
func (l *LeastResponseTime) Registry() *Registry { return l.reg }

func (l *LeastResponseTime) idx(s ServerID) int {
	i := l.reg.Index(s)
	l.rt = grown(l.rt, i, func() ewma.EWMA { return ewma.New(l.alpha) })
	return i
}

// OnSend implements Ranker.
func (l *LeastResponseTime) OnSend(ServerID, int64) {}

// OnResponse implements Ranker.
func (l *LeastResponseTime) OnResponse(s ServerID, fb Feedback, rtt time.Duration, now int64) {
	i := l.idx(s) // hoisted: idx may grow the slice it indexes
	l.rt[i].Add(seconds(rtt))
}

// OnAbandon implements Ranker (no in-flight state; an abandoned request
// observed no RTT to smooth).
func (l *LeastResponseTime) OnAbandon(ServerID, int64) {}

// rtScore reports the smoothed RTT of the server at dense index i, or −Inf
// when unseen (so exploration ranks first).
func (l *LeastResponseTime) rtScore(i int) float64 {
	if e := &l.rt[i]; e.Initialized() {
		return e.Value()
	}
	return math.Inf(-1)
}

// Rank implements Ranker: ascending smoothed RTT; unseen servers first.
func (l *LeastResponseTime) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	if cap(l.scratch) < len(dst) {
		l.scratch = make([]scored, 0, len(dst))
	}
	sc := l.scratch[:0]
	for _, s := range dst {
		i := l.idx(s)
		sc = append(sc, scored{s, l.rtScore(i)})
	}
	rankScored(l.rng, dst, sc)
	return dst
}

// Best implements BestPicker: the lowest smoothed-RTT replica, uniform ties.
func (l *LeastResponseTime) Best(group []ServerID, now int64) (ServerID, bool) {
	if len(group) == 0 {
		return 0, false
	}
	bi := bestScored(l.rng, len(group), func(i int) float64 {
		return l.rtScore(l.idx(group[i]))
	})
	return group[bi], true
}

// WeightedRandom samples replicas with probability proportional to the
// inverse of their smoothed response time (another dismissed §6 strategy).
type WeightedRandom struct {
	rng     *rand.Rand
	alpha   float64
	reg     *Registry
	rt      []ewma.EWMA // dense, indexed by reg.Index
	weights []float64   // reusable sampling scratch
}

// NewWeightedRandom returns a WeightedRandom ranker. A nil registry creates a
// private one.
func NewWeightedRandom(reg *Registry, alpha float64, seed uint64) *WeightedRandom {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.9
	}
	if reg == nil {
		reg = NewRegistry()
	}
	return &WeightedRandom{rng: sim.RNG(seed, 0x33d), alpha: alpha, reg: reg}
}

// Name implements Ranker.
func (w *WeightedRandom) Name() string { return "WRND" }

// Registry implements RegistryHolder.
func (w *WeightedRandom) Registry() *Registry { return w.reg }

func (w *WeightedRandom) idx(s ServerID) int {
	i := w.reg.Index(s)
	w.rt = grown(w.rt, i, func() ewma.EWMA { return ewma.New(w.alpha) })
	return i
}

// OnSend implements Ranker.
func (w *WeightedRandom) OnSend(ServerID, int64) {}

// OnResponse implements Ranker.
func (w *WeightedRandom) OnResponse(s ServerID, fb Feedback, rtt time.Duration, now int64) {
	i := w.idx(s) // hoisted: idx may grow the slice it indexes
	w.rt[i].Add(seconds(rtt))
}

// OnAbandon implements Ranker (no in-flight state).
func (w *WeightedRandom) OnAbandon(ServerID, int64) {}

// fillWeights computes 1/R̄ sampling weights for dst into the reusable
// scratch (unseen servers get the best observed weight to force exploration).
func (w *WeightedRandom) fillWeights(dst []ServerID) []float64 {
	if cap(w.weights) < len(dst) {
		w.weights = make([]float64, len(dst))
	}
	weights := w.weights[:len(dst)]
	best := 0.0
	for i, s := range dst {
		weights[i] = 0
		j := w.idx(s)
		if e := &w.rt[j]; e.Initialized() && e.Value() > 0 {
			weights[i] = 1 / e.Value()
			if weights[i] > best {
				best = weights[i]
			}
		}
	}
	for i := range weights {
		if weights[i] == 0 {
			if best > 0 {
				weights[i] = best
			} else {
				weights[i] = 1
			}
		}
	}
	return weights
}

// Rank implements Ranker: weighted sampling without replacement, weight
// 1/R̄_s (unseen servers get the best observed weight to force exploration).
func (w *WeightedRandom) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	weights := w.fillWeights(dst)
	// Repeated weighted draws without replacement.
	for i := 0; i < len(dst)-1; i++ {
		total := 0.0
		for j := i; j < len(dst); j++ {
			total += weights[j]
		}
		x := w.rng.Float64() * total
		pick := i
		for j := i; j < len(dst); j++ {
			x -= weights[j]
			if x <= 0 {
				pick = j
				break
			}
		}
		dst[i], dst[pick] = dst[pick], dst[i]
		weights[i], weights[pick] = weights[pick], weights[i]
	}
	return dst
}

// Best implements BestPicker: a single weighted draw.
func (w *WeightedRandom) Best(group []ServerID, now int64) (ServerID, bool) {
	if len(group) == 0 {
		return 0, false
	}
	weights := w.fillWeights(group)
	total := 0.0
	for _, wt := range weights {
		total += wt
	}
	x := w.rng.Float64() * total
	for i, wt := range weights {
		x -= wt
		if x <= 0 {
			return group[i], true
		}
	}
	return group[len(group)-1], true
}

// OracleFn exposes a server's instantaneous queue length and mean service
// time (seconds) to the Oracle ranker. Only simulations can implement it.
type OracleFn func(s ServerID) (queue float64, serviceTime float64)

// Oracle ranks replicas by perfect knowledge of the instantaneous q/µ ratio
// (the paper's ORA baseline, §6). It needs no feedback.
type Oracle struct {
	rng     *rand.Rand
	fn      OracleFn
	scratch []scored
}

// NewOracle returns an Oracle ranker reading server state through fn.
func NewOracle(fn OracleFn, seed uint64) *Oracle {
	if fn == nil {
		panic("core: Oracle requires a state function")
	}
	return &Oracle{rng: sim.RNG(seed, 0x04ac1e), fn: fn}
}

// Name implements Ranker.
func (o *Oracle) Name() string { return "ORA" }

// OnSend implements Ranker.
func (o *Oracle) OnSend(ServerID, int64) {}

// OnResponse implements Ranker.
func (o *Oracle) OnResponse(ServerID, Feedback, time.Duration, int64) {}

// OnAbandon implements Ranker (the oracle reads server state directly).
func (o *Oracle) OnAbandon(ServerID, int64) {}

// Rank implements Ranker: ascending (q+1)·serviceTime, random ties.
func (o *Oracle) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	if cap(o.scratch) < len(dst) {
		o.scratch = make([]scored, 0, len(dst))
	}
	sc := o.scratch[:0]
	for _, s := range dst {
		q, t := o.fn(s)
		sc = append(sc, scored{s, (q + 1) * t})
	}
	rankScored(o.rng, dst, sc)
	return dst
}

// Best implements BestPicker: the minimum (q+1)·serviceTime replica, uniform
// ties.
func (o *Oracle) Best(group []ServerID, now int64) (ServerID, bool) {
	if len(group) == 0 {
		return 0, false
	}
	bi := bestScored(o.rng, len(group), func(i int) float64 {
		q, t := o.fn(group[i])
		return (q + 1) * t
	})
	return group[bi], true
}
