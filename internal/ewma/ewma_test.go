package ewma

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEWMAFirstSampleInitializes(t *testing.T) {
	e := New(0.5)
	e.Add(42)
	if got := e.Value(); got != 42 {
		t.Fatalf("Value after first sample = %v, want 42", got)
	}
	if !e.Initialized() {
		t.Fatal("Initialized() = false after a sample")
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := New(0.3)
	for i := 0; i < 200; i++ {
		e.Add(7)
	}
	if got := e.Value(); math.Abs(got-7) > 1e-9 {
		t.Fatalf("Value = %v, want 7", got)
	}
}

func TestEWMARecurrence(t *testing.T) {
	e := New(0.25)
	e.Add(4)
	e.Add(8)
	// v = 0.25*8 + 0.75*4 = 5
	if got := e.Value(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Value = %v, want 5", got)
	}
	e.Add(0)
	// v = 0.25*0 + 0.75*5 = 3.75
	if got := e.Value(); math.Abs(got-3.75) > 1e-12 {
		t.Fatalf("Value = %v, want 3.75", got)
	}
}

func TestEWMAAddNMatchesRepeatedAdd(t *testing.T) {
	for _, n := range []int{1, 2, 7, 32, 100} {
		closed := New(0.9)
		looped := New(0.9)
		closed.Add(3)
		looped.Add(3)
		closed.AddN(11, n)
		for i := 0; i < n; i++ {
			looped.Add(11)
		}
		if got, want := closed.Value(), looped.Value(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("AddN(11, %d) = %v, repeated Add = %v", n, got, want)
		}
		if closed.Count() != looped.Count() {
			t.Fatalf("AddN(_, %d) count = %d, repeated Add count = %d",
				n, closed.Count(), looped.Count())
		}
	}
}

func TestEWMAAddNInitializesLikeAdd(t *testing.T) {
	e := New(0.5)
	e.AddN(42, 5)
	if got := e.Value(); got != 42 {
		t.Fatalf("Value after initializing AddN = %v, want 42", got)
	}
	if e.Count() != 5 {
		t.Fatalf("Count = %d, want 5", e.Count())
	}
	e.AddN(10, 0) // no-op
	if e.Value() != 42 || e.Count() != 5 {
		t.Fatalf("AddN(_, 0) mutated state: %+v", e)
	}
}

func TestEWMAAlphaOneTracksLastSample(t *testing.T) {
	e := New(1)
	for _, x := range []float64{3, 9, -2, 0.5} {
		e.Add(x)
		if e.Value() != x {
			t.Fatalf("alpha=1: Value = %v, want %v", e.Value(), x)
		}
	}
}

func TestEWMAReset(t *testing.T) {
	e := New(0.5)
	e.Add(10)
	e.Reset()
	if e.Initialized() || e.Value() != 0 || e.Count() != 0 {
		t.Fatalf("Reset did not clear state: %+v", e)
	}
	e.Add(3)
	if e.Value() != 3 {
		t.Fatalf("first sample after Reset = %v, want 3", e.Value())
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -0.5, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", a)
				}
			}()
			New(a)
		}()
	}
}

// Property: EWMA output is always within [min, max] of the samples seen.
func TestEWMABoundedByInputsProperty(t *testing.T) {
	f := func(samples []float64) bool {
		clean := samples[:0]
		for _, s := range samples {
			if !math.IsNaN(s) && !math.IsInf(s, 0) {
				clean = append(clean, s)
			}
		}
		if len(clean) == 0 {
			return true
		}
		e := New(0.37)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range clean {
			e.Add(s)
			lo = math.Min(lo, s)
			hi = math.Max(hi, s)
			v := e.Value()
			if v < lo-1e-9*math.Abs(lo)-1e-9 || v > hi+1e-9*math.Abs(hi)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecayingHalfLife(t *testing.T) {
	d := NewDecaying(1000)
	d.Add(10, 0)
	d.Add(0, 1000) // exactly one half-life later: v = 0.5*10 + 0.5*0 = 5
	if got := d.Value(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("Value = %v, want 5", got)
	}
}

func TestDecayingLongGapForgets(t *testing.T) {
	d := NewDecaying(1000)
	d.Add(100, 0)
	d.Add(1, 100_000) // 100 half-lives later, old value weight ~2^-100
	if got := d.Value(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("Value = %v, want ~1", got)
	}
}

func TestDecayingOutOfOrderSample(t *testing.T) {
	d := NewDecaying(1000)
	d.Add(10, 5000)
	d.Add(20, 4000) // earlier timestamp: treated as dt=0, weight of old = 1
	if got := d.Value(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Value = %v, want 10 (old value fully kept at dt=0)", got)
	}
}

func TestWindowRateBasic(t *testing.T) {
	w := NewWindowRate(100)
	w.Add(0)
	w.Add(10)
	w.Add(99)
	if got := w.Rate(50); got != 0 {
		t.Fatalf("Rate mid-first-window = %v, want 0 (no completed window)", got)
	}
	if got := w.Rate(100); got != 3 {
		t.Fatalf("Rate after first window = %v, want 3", got)
	}
	w.Add(150)
	if got := w.Rate(210); got != 1 {
		t.Fatalf("Rate after second window = %v, want 1", got)
	}
}

func TestWindowRateEmptyGapReportsZero(t *testing.T) {
	w := NewWindowRate(100)
	w.Add(0)
	// Jump 5 windows ahead: the last completed window is empty.
	if got := w.Rate(550); got != 0 {
		t.Fatalf("Rate after gap = %v, want 0", got)
	}
}

func TestWindowRateAddN(t *testing.T) {
	w := NewWindowRate(100)
	w.AddN(0, 5)
	w.AddN(20, 2.5)
	if got := w.Rate(120); got != 7.5 {
		t.Fatalf("Rate = %v, want 7.5", got)
	}
}

// Property: WindowRate never reports more events than were added in total.
func TestWindowRateNeverExceedsTotalProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		w := NewWindowRate(1000)
		var now int64
		total := 0.0
		for _, o := range offsets {
			now += int64(o)
			w.Add(now)
			total++
			if w.Rate(now) > total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConstructorsPanicOnNonPositive(t *testing.T) {
	for name, fn := range map[string]func(){
		"NewDecaying(0)":    func() { NewDecaying(0) },
		"NewDecaying(-1)":   func() { NewDecaying(-1) },
		"NewWindowRate(0)":  func() { NewWindowRate(0) },
		"NewWindowRate(-5)": func() { NewWindowRate(-5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
