package ring

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"

	"c3/internal/core"
)

// Versioned is an epoch-numbered immutable topology: one token ring plus the
// monotonically increasing epoch that names it. Membership changes never
// mutate a Versioned — AddNode/RemoveNode derive the successor epoch with
// minimal token movement (a join bisects the widest arc, a leave drops only
// the leaver's tokens), and Diff enumerates exactly the key ranges whose
// replica set changed between two epochs, which is what a joining or
// decommissioning node must stream.
type Versioned struct {
	epoch  uint64
	ring   *Ring
	ids    []core.ServerID // members in token order (ids[i] owns tokens[i])
	tokens []int64         // ascending; one token per member
}

// Membership errors returned by AddNode/RemoveNode.
var (
	ErrMember    = errors.New("ring: node is already a member")
	ErrNotMember = errors.New("ring: node is not a member")
	ErrBelowRF   = errors.New("ring: removal would leave fewer nodes than the replication factor")
)

// NewVersioned builds epoch 0 of an n-node ring with replication factor rf
// and equal token spacing — the same layout as New, wrapped with a version.
func NewVersioned(n, rf int) *Versioned {
	r := New(n, rf)
	v := &Versioned{
		epoch:  0,
		ring:   r,
		ids:    append([]core.ServerID(nil), r.owners...),
		tokens: append([]int64(nil), r.tokens...),
	}
	return v
}

// FromNodes builds a Versioned directly from (id, token) pairs — the
// constructor for topologies received off the wire. Entries need not be
// sorted. It errors on duplicate ids, duplicate tokens, an empty node list,
// or an rf outside [1, nodes].
func FromNodes(epoch uint64, ids []core.ServerID, tokens []int64, rf int) (*Versioned, error) {
	if len(ids) == 0 || len(ids) != len(tokens) {
		return nil, fmt.Errorf("ring: %d ids vs %d tokens", len(ids), len(tokens))
	}
	if rf < 1 || rf > len(ids) {
		return nil, fmt.Errorf("ring: replication factor %d outside [1, %d]", rf, len(ids))
	}
	order := make([]int, len(ids))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return tokens[order[a]] < tokens[order[b]] })
	v := &Versioned{
		epoch:  epoch,
		ids:    make([]core.ServerID, len(ids)),
		tokens: make([]int64, len(ids)),
	}
	seenID := make(map[core.ServerID]bool, len(ids))
	for i, o := range order {
		if i > 0 && tokens[o] == v.tokens[i-1] {
			return nil, fmt.Errorf("ring: duplicate token %d", tokens[o])
		}
		if seenID[ids[o]] {
			return nil, fmt.Errorf("ring: duplicate node id %d", ids[o])
		}
		seenID[ids[o]] = true
		v.ids[i] = ids[o]
		v.tokens[i] = tokens[o]
	}
	v.ring = &Ring{tokens: v.tokens, owners: v.ids, rf: rf}
	return v, nil
}

// Epoch reports the topology's version number.
func (v *Versioned) Epoch() uint64 { return v.epoch }

// Ring exposes the underlying token ring for replica lookups.
func (v *Versioned) Ring() *Ring { return v.ring }

// RF reports the replication factor.
func (v *Versioned) RF() int { return v.ring.rf }

// Members lists the member ids in token order. Callers must not modify it.
func (v *Versioned) Members() []core.ServerID { return v.ids }

// Tokens lists the ring tokens in ascending order, parallel to Members.
// Callers must not modify it.
func (v *Versioned) Tokens() []int64 { return v.tokens }

// Contains reports whether id is a member.
func (v *Versioned) Contains(id core.ServerID) bool {
	return slices.Contains(v.ids, id)
}

// TokenOf reports the token owned by id.
func (v *Versioned) TokenOf(id core.ServerID) (int64, bool) {
	for i, m := range v.ids {
		if m == id {
			return v.tokens[i], true
		}
	}
	return 0, false
}

// MaxID reports the largest member id (the seed for assigning a fresh one).
func (v *Versioned) MaxID() core.ServerID {
	max := v.ids[0]
	for _, id := range v.ids[1:] {
		if id > max {
			max = id
		}
	}
	return max
}

// JoinToken reports the token a joining node would take: the midpoint of the
// widest arc between adjacent tokens (ties broken by ring order), which moves
// the minimal ~1/(2n) share of the primary token space. Deterministic, so
// every node that evaluates a join computes the same successor ring.
func (v *Versioned) JoinToken() int64 {
	widest, at := uint64(0), 0
	for i := range v.tokens {
		var gap uint64
		if i == 0 {
			// Wrap arc: from the last token over the max/min seam to the
			// first.
			gap = uint64(v.tokens[0]) - uint64(v.tokens[len(v.tokens)-1])
		} else {
			gap = uint64(v.tokens[i]) - uint64(v.tokens[i-1])
		}
		if gap > widest {
			widest, at = gap, i
		}
	}
	var lo int64
	if at == 0 {
		lo = v.tokens[len(v.tokens)-1]
	} else {
		lo = v.tokens[at-1]
	}
	return lo + int64(widest/2) // wrapping int64 addition walks the ring
}

// AddNode derives the successor epoch with id joined at JoinToken. Token
// movement is minimal: every existing token keeps its position; only keys in
// the bisected arc (and the replica-set shifts it induces on the preceding
// RF-1 arcs) change owners.
func (v *Versioned) AddNode(id core.ServerID) (*Versioned, error) {
	if v.Contains(id) {
		return nil, ErrMember
	}
	t := v.JoinToken()
	// The widest-arc midpoint can only collide with an existing token in a
	// pathological 2^0-wide ring; nudge until free.
	for slices.Contains(v.tokens, t) {
		t++
	}
	ids := append(append([]core.ServerID(nil), v.ids...), id)
	tokens := append(append([]int64(nil), v.tokens...), t)
	return FromNodes(v.epoch+1, ids, tokens, v.ring.rf)
}

// RemoveNode derives the successor epoch with id removed; its arc falls to
// the ring successors. It errors when id is not a member or when the
// remainder could not satisfy the replication factor.
func (v *Versioned) RemoveNode(id core.ServerID) (*Versioned, error) {
	if !v.Contains(id) {
		return nil, ErrNotMember
	}
	if len(v.ids)-1 < v.ring.rf {
		return nil, ErrBelowRF
	}
	ids := make([]core.ServerID, 0, len(v.ids)-1)
	tokens := make([]int64, 0, len(v.ids)-1)
	for i, m := range v.ids {
		if m == id {
			continue
		}
		ids = append(ids, m)
		tokens = append(tokens, v.tokens[i])
	}
	return FromNodes(v.epoch+1, ids, tokens, v.ring.rf)
}

// Range is a half-open arc of the token space: the tokens t with
// Start < t ≤ End, walking clockwise (so a Range with Start ≥ End wraps
// through the max/min seam). Ranges partition keys the way the ring does:
// every ring position i owns exactly the arc (tokens[i-1], tokens[i]].
type Range struct {
	Start, End int64
}

// Contains reports whether token t lies in the arc.
func (r Range) Contains(t int64) bool {
	if r.Start < r.End {
		return t > r.Start && t <= r.End
	}
	return t > r.Start || t <= r.End
}

// Width reports the arc's share of the token space in 1/2^64 units.
func (r Range) Width() uint64 { return uint64(r.End) - uint64(r.Start) }

// Change is one arc whose replica set differs between two epochs, with the
// owner sets on both sides — the unit of work a membership transition
// streams.
type Change struct {
	Range
	Old []core.ServerID // owners before (in ring preference order)
	New []core.ServerID // owners after
}

// Diff enumerates the arcs whose replica set changed from v to next, merged
// into maximal runs. A single join or leave yields O(RF) changes covering
// roughly RF/n of the token space; an unchanged topology yields nil.
func (v *Versioned) Diff(next *Versioned) []Change {
	// Boundary tokens of either ring cut the space into segments with
	// constant ownership on both sides.
	cuts := make([]int64, 0, len(v.tokens)+len(next.tokens))
	cuts = append(cuts, v.tokens...)
	cuts = append(cuts, next.tokens...)
	slices.Sort(cuts)
	cuts = slices.Compact(cuts)

	var out []Change
	for i, end := range cuts {
		start := cuts[(i+len(cuts)-1)%len(cuts)] // predecessor, wrapping
		oldOwners := v.ring.ReplicasForToken(end, nil)
		newOwners := next.ring.ReplicasForToken(end, nil)
		if slices.Equal(oldOwners, newOwners) {
			continue
		}
		// Merge into the previous change when the arcs are adjacent and the
		// transition is identical.
		if n := len(out); n > 0 && out[n-1].End == start &&
			slices.Equal(out[n-1].Old, oldOwners) && slices.Equal(out[n-1].New, newOwners) {
			out[n-1].End = end
			continue
		}
		out = append(out, Change{Range: Range{Start: start, End: end}, Old: oldOwners, New: newOwners})
	}
	// The first and last changes may be two halves of one arc wrapping the
	// seam; stitch them.
	if n := len(out); n > 1 && out[0].Start == out[n-1].End &&
		slices.Equal(out[0].Old, out[n-1].Old) && slices.Equal(out[0].New, out[n-1].New) {
		out[0].Start = out[n-1].Start
		out = out[:n-1]
	}
	return out
}

// MovedFraction reports the share of the token space (0..1) whose replica
// set differs between v and next — the movement a transition must stream.
func (v *Versioned) MovedFraction(next *Versioned) float64 {
	total := uint64(0)
	for _, c := range v.Diff(next) {
		total += c.Width()
	}
	return float64(total) / math.Pow(2, 64)
}
