package bench

import (
	"time"

	"c3/internal/cassim"
	"c3/internal/ratelimit"
	"c3/internal/stats"
	"c3/internal/workload"
)

// clusterRun executes one cassim configuration across seeds and returns the
// per-seed results.
func clusterRun(o Options, mut func(*cassim.Config)) []*cassim.Result {
	out := make([]*cassim.Result, 0, o.seeds())
	for seed := 0; seed < o.seeds(); seed++ {
		cfg := cassim.DefaultConfig()
		cfg.Ops = o.clusterOps()
		cfg.Seed = uint64(seed)*7919 + 7
		if mut != nil {
			mut(&cfg)
		}
		out = append(out, cassim.Run(cfg))
	}
	return out
}

// avg aggregates a metric over runs.
func avg(rs []*cassim.Result, f func(*cassim.Result) float64) float64 {
	if len(rs) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range rs {
		s += f(r)
	}
	return s / float64(len(rs))
}

// latencyRow renders the Fig. 6-style percentile row.
func latencyRow(r *Report, label string, rs []*cassim.Result) {
	r.printf("  %-22s mean=%6.2f p50=%6.2f p95=%6.2f p99=%7.2f p99.9=%7.2f (ms, %d runs)",
		label,
		avg(rs, func(x *cassim.Result) float64 { return x.Reads.Mean }),
		avg(rs, func(x *cassim.Result) float64 { return x.Reads.P50 }),
		avg(rs, func(x *cassim.Result) float64 { return x.Reads.P95 }),
		avg(rs, func(x *cassim.Result) float64 { return x.Reads.P99 }),
		avg(rs, func(x *cassim.Result) float64 { return x.Reads.P999 }),
		len(rs))
}

// Fig02 regenerates the Dynamic Snitching load-oscillation evidence (Fig. 2):
// the per-100 ms request-arrival series of the most oscillating node under DS
// versus C3.
func Fig02(o Options) *Report {
	r := newReport("fig2", "Dynamic Snitching load oscillations")
	for _, strat := range []string{cassim.StratDS, cassim.StratC3} {
		rs := clusterRun(o, func(c *cassim.Config) { c.Strategy = strat })
		osc := avg(rs, func(x *cassim.Result) float64 {
			_, w := x.MostOscillatingArrivals()
			return w.OscillationIndex()
		})
		spread := avg(rs, func(x *cassim.Result) float64 {
			_, w := x.MostOscillatingArrivals()
			d := w.Distribution()
			return d.Percentile(99) - d.Percentile(1)
		})
		r.printf("  %-3s  oscillation index (p99/median of reqs per 100ms) = %5.2f, p1–p99 spread = %5.0f req/100ms",
			strat, osc, spread)
		r.Metric("oscillation_"+strat, osc)
	}
	_, w := clusterRun(Options{Scale: Quick, Seeds: 1},
		func(c *cassim.Config) { c.Strategy = cassim.StratDS })[0].MostOscillatingArrivals()
	series := w.Series()
	r.printf("  sample DS arrival series (reqs/100ms): %v", head(series, 30))
	r.Metric("oscillation_ratio_DS_over_C3", r.Metrics["oscillation_DS"]/r.Metrics["oscillation_C3"])
	return r
}

func head(xs []int, n int) []int {
	if len(xs) > n {
		return xs[:n]
	}
	return xs
}

// Fig06 regenerates the §5 latency profile: mean/median/95/99/99.9 for C3 vs
// DS across the three workload mixes, plus the paper's headline shape metric
// (p99.9 − median).
func Fig06(o Options) *Report {
	r := newReport("fig6", "read latency profile, C3 vs DS")
	for _, mix := range []workload.Mix{workload.ReadHeavy, workload.ReadOnly, workload.UpdateHeavy} {
		var diff [2]float64
		for i, strat := range []string{cassim.StratC3, cassim.StratDS} {
			rs := clusterRun(o, func(c *cassim.Config) {
				c.Strategy = strat
				c.Mix = mix
			})
			latencyRow(r, mix.Name+" / "+strat, rs)
			diff[i] = avg(rs, func(x *cassim.Result) float64 { return x.Reads.P999MinusP50 })
		}
		r.printf("  %-22s p99.9−p50: C3=%.2f ms, DS=%.2f ms → %.2fx (paper: >3x read-heavy, 2.6x others)",
			mix.Name, diff[0], diff[1], diff[1]/diff[0])
		r.Metric("tailgap_ratio_"+mix.Name, diff[1]/diff[0])
	}
	return r
}

// Fig07 regenerates the throughput comparison (Fig. 7).
func Fig07(o Options) *Report {
	r := newReport("fig7", "read throughput, C3 vs DS")
	for _, mix := range []workload.Mix{workload.ReadHeavy, workload.ReadOnly, workload.UpdateHeavy} {
		var thr [2]float64
		for i, strat := range []string{cassim.StratC3, cassim.StratDS} {
			rs := clusterRun(o, func(c *cassim.Config) {
				c.Strategy = strat
				c.Mix = mix
			})
			vals := make([]float64, len(rs))
			for j, x := range rs {
				vals[j] = x.Throughput
			}
			m, ci := stats.MeanCI95(vals)
			thr[i] = m
			r.printf("  %-22s %8.0f ± %5.0f ops/s", mix.Name+" / "+strat, m, ci)
		}
		gain := (thr[0]/thr[1] - 1) * 100
		r.printf("  %-22s C3 over DS: %+.0f%% (paper: +26%% to +43%%)", mix.Name, gain)
		r.Metric("throughput_gain_pct_"+mix.Name, gain)
	}
	return r
}

// Fig08 regenerates the load-conditioning comparison (Fig. 8): the
// distribution of reads served per 100 ms by the most heavily utilized node.
func Fig08(o Options) *Report {
	r := newReport("fig8", "load distribution on the most utilized node")
	for _, strat := range []string{cassim.StratC3, cassim.StratDS} {
		rs := clusterRun(o, func(c *cassim.Config) { c.Strategy = strat })
		p50 := avg(rs, func(x *cassim.Result) float64 {
			_, w := x.MostLoadedNode()
			return w.Distribution().Percentile(50)
		})
		p99 := avg(rs, func(x *cassim.Result) float64 {
			_, w := x.MostLoadedNode()
			return w.Distribution().Percentile(99)
		})
		r.printf("  %-3s  reads/100ms at hottest node: p50=%6.1f p99=%6.1f p99−p50=%6.1f",
			strat, p50, p99, p99-p50)
		r.Metric("hotnode_p99_minus_p50_"+strat, p99-p50)
	}
	r.printf("  (paper: C3's hottest node has a lower p99−median range than DS)")
	r.Metric("range_ratio_DS_over_C3",
		r.Metrics["hotnode_p99_minus_p50_DS"]/r.Metrics["hotnode_p99_minus_p50_C3"])
	return r
}

// Fig09 regenerates the load-versus-time comparison (Fig. 9) as summary
// statistics of one node's arrival series.
func Fig09(o Options) *Report {
	r := newReport("fig9", "load versus time (requests received per 100ms)")
	for _, strat := range []string{cassim.StratC3, cassim.StratDS} {
		rs := clusterRun(o, func(c *cassim.Config) { c.Strategy = strat })
		x := rs[0]
		_, w := x.MostOscillatingArrivals()
		d := w.Distribution()
		r.printf("  %-3s  min=%4.0f p25=%6.1f p50=%6.1f p75=%6.1f max=%6.0f osc=%.2f",
			strat, d.Min(), d.Percentile(25), d.Percentile(50), d.Percentile(75),
			d.Max(), w.OscillationIndex())
		r.Metric("osc_"+strat, w.OscillationIndex())
	}
	r.printf("  (paper: C3's per-node load profile is smooth; DS shows synchronized bursts)")
	return r
}

// Fig10 regenerates the higher-utilization comparison (Fig. 10): 120 → 210
// workload generators.
func Fig10(o Options) *Report {
	r := newReport("fig10", "performance at higher system utilization")
	for _, gens := range []int{120, 210} {
		for _, strat := range []string{cassim.StratC3, cassim.StratDS} {
			rs := clusterRun(o, func(c *cassim.Config) {
				c.Strategy = strat
				c.Generators = gens
			})
			latencyRow(r, itoa(gens)+" gens / "+strat, rs)
			r.Metric("p99_"+strat+"_"+itoa(gens),
				avg(rs, func(x *cassim.Result) float64 { return x.Reads.P99 }))
		}
	}
	// The paper reports DS's 95th/99th percentiles degrading by up to
	// 150% for the 75% load increase while C3 degrades proportionally.
	c3deg := r.Metrics["p99_C3_210"] / r.Metrics["p99_C3_120"]
	dsdeg := r.Metrics["p99_DS_210"] / r.Metrics["p99_DS_120"]
	r.printf("  p99 degradation 120→210: C3 ×%.2f, DS ×%.2f (paper: C3 proportional ≈×1.8; DS up to ×2.5)",
		c3deg, dsdeg)
	r.Metric("degradation_C3", c3deg)
	r.Metric("degradation_DS", dsdeg)
	return r
}

// Fig11 regenerates the dynamic-workload experiment (Fig. 11): an
// update-heavy generator wave joins a read-heavy system; the moving median of
// read latency shows C3 degrading gracefully while DS spikes.
func Fig11(o Options) *Report {
	r := newReport("fig11", "adaptation to dynamic workload change")
	dur := 8 * time.Second
	join := 4 * time.Second
	if o.Scale == Quick {
		dur, join = 4*time.Second, 2*time.Second
	}
	for _, strat := range []string{cassim.StratC3, cassim.StratDS} {
		cfg := cassim.DefaultConfig()
		cfg.Strategy = strat
		cfg.Seed = 11
		cfg.Ops = 0
		cfg.Duration = dur
		cfg.RecordTimeline = true
		cfg.Phases = []cassim.Phase{
			{Start: 0, Generators: 80, Mix: workload.ReadHeavy},
			{Start: join, Generators: 40, Mix: workload.UpdateHeavy},
		}
		res := cassim.Run(cfg)
		// Moving median over the timeline, split at the join.
		var xs []float64
		var ts []time.Duration
		for _, p := range res.Timeline {
			xs = append(xs, p.Ms)
			ts = append(ts, p.T)
		}
		med := stats.MovingMedian(xs, 50)
		var preMax, postMax float64
		for i, t := range ts {
			if t < join {
				if med[i] > preMax {
					preMax = med[i]
				}
			} else if med[i] > postMax {
				postMax = med[i]
			}
		}
		r.printf("  %-3s  moving-median read latency: max before join %6.2f ms, after %6.2f ms (spike ×%.2f)",
			strat, preMax, postMax, postMax/preMax)
		r.Metric("spike_"+strat, postMax/preMax)
	}
	r.printf("  (paper: C3 degrades gracefully; DS shows synchronized latency spikes)")
	return r
}

// Fig12 regenerates the SSD experiment (Fig. 12): 210 generators on the SSD
// latency profile.
func Fig12(o Options) *Report {
	r := newReport("fig12", "SSD-backed cluster")
	var p999 [2]float64
	var thr [2]float64
	for i, strat := range []string{cassim.StratC3, cassim.StratDS} {
		rs := clusterRun(o, func(c *cassim.Config) {
			c.Strategy = strat
			c.Disk = cassim.SSD
			c.Generators = 210
		})
		latencyRow(r, "SSD / "+strat, rs)
		p999[i] = avg(rs, func(x *cassim.Result) float64 { return x.Reads.P999 })
		thr[i] = avg(rs, func(x *cassim.Result) float64 { return x.Throughput })
	}
	r.printf("  p99.9 DS/C3 = %.2fx (paper: >3x); throughput C3 over DS %+.0f%% (paper: +50%%)",
		p999[1]/p999[0], (thr[0]/thr[1]-1)*100)
	r.Metric("ssd_p999_ratio", p999[1]/p999[0])
	r.Metric("ssd_throughput_gain_pct", (thr[0]/thr[1]-1)*100)
	return r
}

// FigSkew regenerates the skewed-record-size experiment (§5 text): Zipfian
// field lengths capped at 2 KB.
func FigSkew(o Options) *Report {
	r := newReport("skew", "skewed record sizes")
	var p99 [2]float64
	for i, strat := range []string{cassim.StratC3, cassim.StratDS} {
		rs := clusterRun(o, func(c *cassim.Config) {
			c.Strategy = strat
			c.Sizer = workload.NewZipfianFields(10, 2048)
		})
		latencyRow(r, "zipf sizes / "+strat, rs)
		p99[i] = avg(rs, func(x *cassim.Result) float64 { return x.Reads.P99 })
	}
	r.printf("  p99 DS/C3 = %.2fx (paper: ~14 ms vs ~30 ms ⇒ >2x)", p99[1]/p99[0])
	r.Metric("skew_p99_ratio", p99[1]/p99[0])
	return r
}

// FigSpec regenerates the speculative-retry comparison (§5 text): DS with
// retries at the observed p99 versus plain DS.
func FigSpec(o Options) *Report {
	r := newReport("spec", "speculative retries atop DS")
	var p99 [2]float64
	for i, strat := range []string{cassim.StratDS, cassim.StratDSSpec} {
		rs := clusterRun(o, func(c *cassim.Config) { c.Strategy = strat })
		latencyRow(r, strat, rs)
		p99[i] = avg(rs, func(x *cassim.Result) float64 { return x.Reads.P99 })
		if strat == cassim.StratDSSpec {
			r.printf("  speculative retries issued: %.0f per run",
				avg(rs, func(x *cassim.Result) float64 { return float64(x.SpeculativeRetries) }))
		}
	}
	r.printf("  p99 DS-SPEC/DS = %.2fx (paper: retries degraded p99 up to 5x)", p99[1]/p99[0])
	r.printf("  KNOWN DEVIATION: the paper's blowup needs disks whose per-op cost grows under")
	r.printf("  contention; this model's seek cost is load-independent, so the extra duplicate")
	r.printf("  load is absorbed instead of cascading. See EXPERIMENTS.md.")
	r.Metric("spec_p99_ratio", p99[1]/p99[0])
	return r
}

// Fig13 regenerates the rate-adaptation trace (Fig. 13): a 7-node cluster in
// which one node's service times are inflated three times, run with the
// paper's literal Algorithm 2 decrease rule, tracing every coordinator's
// srate toward the degraded node.
func Fig13(o Options) *Report {
	r := newReport("fig13", "sending-rate adaptation and backpressure")
	cfg := cassim.DefaultConfig()
	cfg.Strategy = cassim.StratC3
	cfg.Nodes = 7
	cfg.Generators = 60
	cfg.Seed = 13
	cfg.Ops = 0
	cfg.Duration = 10 * time.Second
	cfg.TraceRates = true
	cfg.TraceTarget = 3
	cfg.Rate = ratelimit.Config{LiteralDecrease: true}
	cfg.Slowdowns = []cassim.Slowdown{
		{Node: 3, From: 3 * time.Second, To: 5 * time.Second, Factor: 8},
		{Node: 3, From: 6 * time.Second, To: 6500 * time.Millisecond, Factor: 8},
		{Node: 3, From: 8 * time.Second, To: 8500 * time.Millisecond, Factor: 8},
	}
	res := cassim.Run(cfg)
	inWindow := func(t time.Duration) bool {
		for _, s := range cfg.Slowdowns {
			if t >= s.From+500*time.Millisecond && t < s.To {
				return true
			}
		}
		return false
	}
	var inSum, inN, outSum, outN float64
	for _, p := range res.RateTrace {
		if inWindow(p.T) {
			inSum += p.SRate
			inN++
		} else if p.T > time.Second {
			outSum += p.SRate
			outN++
		}
	}
	r.printf("  mean srate toward degraded node: healthy %6.2f req/δ, degraded %6.2f req/δ", outSum/outN, inSum/inN)
	r.printf("  backpressure engagements: %d (paper: 4 across both coordinators)", len(res.Backpressure))
	r.printf("  trace points: %d across %d coordinators", len(res.RateTrace), cfg.Nodes-1)
	r.Metric("srate_healthy", outSum/outN)
	r.Metric("srate_degraded", inSum/inN)
	r.Metric("srate_drop_ratio", (outSum/outN)/(inSum/inN))
	r.Metric("backpressure_events", float64(len(res.Backpressure)))
	return r
}
