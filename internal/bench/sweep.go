package bench

import (
	"fmt"
	"strings"
	"time"

	"c3/internal/queuesim"
)

// simP99 runs one queuesim configuration across seeds and reports the mean
// 99th-percentile latency (ms) — the paper's §6 metric.
func simP99(o Options, mut func(*queuesim.Config)) float64 {
	sum := 0.0
	for seed := 0; seed < o.seeds(); seed++ {
		cfg := queuesim.DefaultConfig()
		cfg.Requests = o.simRequests()
		cfg.Seed = uint64(seed)*104729 + 3
		if mut != nil {
			mut(&cfg)
		}
		sum += queuesim.Run(cfg).Latency.P99
	}
	return sum / float64(o.seeds())
}

// sweepTable renders one Fig. 14/15-style table: policies × intervals.
func sweepTable(r *Report, o Options, label string, policies []string,
	mut func(*queuesim.Config)) map[string][]float64 {
	intervals := o.intervals()
	hdr := fmt.Sprintf("  %-28s %-5s", label, "")
	for _, iv := range intervals {
		hdr += fmt.Sprintf("%8dms", iv)
	}
	r.printf("%s", hdr)
	out := map[string][]float64{}
	for _, pol := range policies {
		row := fmt.Sprintf("  %-28s %-5s", "", pol)
		var vals []float64
		for _, iv := range intervals {
			iv := iv
			v := simP99(o, func(c *queuesim.Config) {
				c.Policy = pol
				c.Fluctuation = time.Duration(iv) * time.Millisecond
				if mut != nil {
					mut(c)
				}
			})
			vals = append(vals, v)
			row += fmt.Sprintf("%10.1f", v)
		}
		out[pol] = vals
		r.printf("%s", row)
	}
	return out
}

// Fig14 regenerates the §6 fluctuation-interval sweep: 99th-percentile
// latency for ORA/C3/LOR/RR at high (70%) and low (45%) utilization with 150
// and 300 clients.
func Fig14(o Options) *Report {
	r := newReport("fig14", "impact of time-varying service times (99th pct, ms)")
	policies := []string{queuesim.PolicyOracle, queuesim.PolicyC3,
		queuesim.PolicyLOR, queuesim.PolicyRR}
	clientCounts := []int{150, 300}
	if o.Scale == Quick {
		clientCounts = []int{150}
	}
	for _, util := range []float64{0.70, 0.45} {
		for _, clients := range clientCounts {
			util, clients := util, clients
			label := fmt.Sprintf("util=%.0f%% clients=%d", util*100, clients)
			table := sweepTable(r, o, label, policies, func(c *queuesim.Config) {
				c.Utilization = util
				c.Clients = clients
			})
			last := len(o.intervals()) - 1
			key := fmt.Sprintf("u%.0f_c%d", util*100, clients)
			r.Metric("lor_over_c3_500ms_"+key,
				table[queuesim.PolicyLOR][last]/table[queuesim.PolicyC3][last])
			r.Metric("rr_over_c3_500ms_"+key,
				table[queuesim.PolicyRR][last]/table[queuesim.PolicyC3][last])
			r.Metric("c3_over_ora_500ms_"+key,
				table[queuesim.PolicyC3][last]/table[queuesim.PolicyOracle][last])
			// The paper's low-utilization observation: C3 plateaus
			// (late ≈ mid) while LOR keeps degrading.
			if util == 0.45 {
				mid := len(o.intervals()) / 2
				r.Metric("c3_late_over_mid_"+key,
					table[queuesim.PolicyC3][last]/table[queuesim.PolicyC3][mid])
				r.Metric("lor_late_over_mid_"+key,
					table[queuesim.PolicyLOR][last]/table[queuesim.PolicyLOR][mid])
			}
		}
	}
	r.printf("  (paper: at 10ms all load-aware schemes converge; as T grows LOR degrades, RR is worst,")
	r.printf("   C3 stays closest to ORA and plateaus at low utilization)")
	return r
}

// Fig15 regenerates the demand-skew sweep: 20% / 50% of clients issue 80% of
// requests.
func Fig15(o Options) *Report {
	r := newReport("fig15", "performance under client demand skew (99th pct, ms)")
	policies := []string{queuesim.PolicyOracle, queuesim.PolicyC3,
		queuesim.PolicyLOR, queuesim.PolicyRR}
	clientCounts := []int{150, 300}
	if o.Scale == Quick {
		clientCounts = []int{150}
	}
	for _, skew := range []float64{0.2, 0.5} {
		for _, clients := range clientCounts {
			skew, clients := skew, clients
			label := fmt.Sprintf("skew=%.0f%%→80%% clients=%d", skew*100, clients)
			table := sweepTable(r, o, label, policies, func(c *queuesim.Config) {
				c.SkewFraction = skew
				c.Clients = clients
			})
			last := len(o.intervals()) - 1
			key := fmt.Sprintf("s%.0f_c%d", skew*100, clients)
			r.Metric("lor_over_c3_500ms_"+key,
				table[queuesim.PolicyLOR][last]/table[queuesim.PolicyC3][last])
		}
	}
	r.printf("  (paper: regardless of the demand skew, C3 outperforms LOR and RR)")
	return r
}

// AblationExponent sweeps the scoring exponent b — why cubic (§3.1).
func AblationExponent(o Options) *Report {
	r := newReport("ablate-b", "scoring exponent b (99th pct, ms, T=500ms)")
	for _, b := range []float64{1, 2, 3, 4} {
		b := b
		v := simP99(o, func(c *queuesim.Config) {
			c.Policy = queuesim.PolicyC3
			c.Exponent = b
		})
		r.printf("  b=%.0f  p99=%8.2f ms", b, v)
		r.Metric(fmt.Sprintf("p99_b%.0f", b), v)
	}
	r.printf("  (paper argues b=3 balances preferring fast servers vs robustness to service-time swings)")
	return r
}

// AblationConcurrencyComp toggles the os·w term in q̂ (§3.1).
func AblationConcurrencyComp(o Options) *Report {
	r := newReport("ablate-comp", "concurrency compensation (99th pct, ms, T=500ms)")
	with := simP99(o, func(c *queuesim.Config) { c.Policy = queuesim.PolicyC3 })
	without := simP99(o, func(c *queuesim.Config) {
		c.Policy = queuesim.PolicyC3
		c.NoConcurrencyComp = true
	})
	r.printf("  with os·w term    p99=%8.2f ms", with)
	r.printf("  without (w=0)     p99=%8.2f ms", without)
	r.printf("  penalty for removing it: ×%.2f", without/with)
	r.Metric("p99_with", with)
	r.Metric("p99_without", without)
	r.Metric("penalty", without/with)
	return r
}

// AblationRateControl isolates ranking vs rate control (§3.2 / §6 RR).
func AblationRateControl(o Options) *Report {
	r := newReport("ablate-rate", "ranking vs rate control (99th pct, ms, T=500ms)")
	rows := []struct {
		label  string
		policy string
	}{
		{"full C3 (rank + rate)", queuesim.PolicyC3},
		{"ranking only (C3-R)", queuesim.PolicyC3RankOnly},
		{"rate only (RR+rate)", queuesim.PolicyRR},
		{"neither (LOR)", queuesim.PolicyLOR},
	}
	for _, row := range rows {
		row := row
		v := simP99(o, func(c *queuesim.Config) { c.Policy = row.policy })
		r.printf("  %-24s p99=%8.2f ms", row.label, v)
		r.Metric("p99_"+row.policy, v)
	}
	r.printf("  (paper: \"rate-limiting alone does not improve the latency tail\" — ranking carries §6)")
	return r
}

// AblationExtraSelectors evaluates the strategies §6 dismisses.
func AblationExtraSelectors(o Options) *Report {
	r := newReport("ablate-extra", "dismissed selectors (99th pct, ms, T=500ms)")
	for _, pol := range []string{queuesim.PolicyC3, queuesim.PolicyLOR,
		queuesim.PolicyRandom, queuesim.PolicyLRT, queuesim.PolicyWRand,
		queuesim.PolicyTwoChoice} {
		pol := pol
		v := simP99(o, func(c *queuesim.Config) { c.Policy = pol })
		r.printf("  %-5s p99=%8.2f ms", pol, v)
		r.Metric("p99_"+strings.ReplaceAll(pol, "-", "_"), v)
	}
	r.printf("  (paper: uniform random, least-response-time and weighted random \"did not fare well\")")
	return r
}
