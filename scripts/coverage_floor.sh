#!/usr/bin/env bash
# Coverage floors for the packages the membership, durability, and
# consistency work leans on. The floors are a few points below the measured
# coverage at the time they were checked in (ring 91.9%, wire 94.3%,
# kvstore 86.2%, lsm 78.4% — re-measured with the tunable-consistency,
# hinted-handoff, and versioned-value suites), so the ring-invariant,
# wire-fuzz, membership-chaos, crash-recovery, and consistency-chaos suites
# cannot silently rot without CI noticing. Raise a floor when coverage
# durably improves; never lower one to make a red build green without
# understanding what stopped being tested.
set -euo pipefail

declare -A FLOORS=(
  [internal/ring]=87
  [internal/wire]=89
  [internal/kvstore]=80
  [internal/lsm]=74
)

fail=0
for pkg in "${!FLOORS[@]}"; do
  floor=${FLOORS[$pkg]}
  profile=$(mktemp)
  go test -coverprofile="$profile" "./$pkg" >/dev/null
  total=$(go tool cover -func="$profile" | awk '/^total:/ {gsub(/%/, "", $3); print $3}')
  rm -f "$profile"
  ok=$(awk -v t="$total" -v f="$floor" 'BEGIN {print (t >= f) ? 1 : 0}')
  if [[ "$ok" == 1 ]]; then
    echo "coverage OK   $pkg: ${total}% (floor ${floor}%)"
  else
    echo "coverage FAIL $pkg: ${total}% below floor ${floor}%"
    fail=1
  fi
done
exit $fail
