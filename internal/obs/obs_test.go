package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

type snap struct {
	Reads int    `json:"reads"`
	Name  string `json:"name"`
}

func get(t *testing.T, srv *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestHandlerEndpoints(t *testing.T) {
	calls := 0
	h := Handler(func() any { calls++; return snap{Reads: 7, Name: "n0"} })
	srv := httptest.NewServer(h)
	defer srv.Close()

	code, body := get(t, srv, "/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	var node snap
	if err := json.Unmarshal(vars["node"], &node); err != nil {
		t.Fatalf("node key: %v", err)
	}
	if node.Reads != 7 || node.Name != "n0" {
		t.Fatalf("node = %+v", node)
	}

	code, body = get(t, srv, "/stats")
	if code != 200 {
		t.Fatalf("/stats = %d", code)
	}
	var direct snap
	if err := json.Unmarshal(body, &direct); err != nil || direct.Reads != 7 {
		t.Fatalf("/stats = %s (err %v)", body, err)
	}

	if code, body = get(t, srv, "/healthz"); code != 200 || string(body) != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	if code, _ = get(t, srv, "/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}

	if calls == 0 {
		t.Fatal("snapshot closure never called")
	}
}

func TestHandlerNilSnapshot(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	if code, body := get(t, srv, "/stats"); code != 200 || string(body) != "null\n" {
		t.Fatalf("/stats = %d %q", code, body)
	}
	if code, _ := get(t, srv, "/debug/vars"); code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
}

// TestHandlerPerInstance pins the no-global-state contract: two handlers with
// different snapshots serve different node payloads.
func TestHandlerPerInstance(t *testing.T) {
	a := httptest.NewServer(Handler(func() any { return snap{Name: "a"} }))
	defer a.Close()
	b := httptest.NewServer(Handler(func() any { return snap{Name: "b"} }))
	defer b.Close()
	_, ab := get(t, a, "/stats")
	_, bb := get(t, b, "/stats")
	var sa, sb snap
	json.Unmarshal(ab, &sa)
	json.Unmarshal(bb, &sb)
	if sa.Name != "a" || sb.Name != "b" {
		t.Fatalf("per-instance snapshots leaked: %q %q", sa.Name, sb.Name)
	}
}
