#!/usr/bin/env bash
# Bench regression guard for the live-store hot path. Runs the kv bench and
# compares it against the committed trajectory record (BENCH_kv.json) at
# the same medium scale the record is generated at (quick scale is warmup-
# dominated and reads ~40% low, so it would compare apples to oranges): the
# build fails if mixed or write-only throughput drops more than
# BENCH_GUARD_DROP percent (default 20 — the committed record is a best
# run, so the floor must absorb run-to-run scatter) below them, or if
# allocs/op rises more than BENCH_GUARD_ALLOC_MARGIN percent (default 10 —
# GC noise headroom; the committed value is the budget) above them. The
# committed record is regenerated deliberately with
#   go run ./cmd/c3bench -fig kv -scale medium
# never adjusted to make a red build green: a slower run on comparable
# hardware means the hot path regressed.
#
# Throughput on a shared runner is noisy (single runs scatter ±20%), so
# the guard takes the best of BENCH_GUARD_RUNS trials (default 3): a real
# regression drags every trial down, while scheduler noise rarely hits
# all of them. allocs/op is deterministic, so the first trial's value is
# as good as any.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=${BENCH_GUARD_BASELINE:-BENCH_kv.json}
SCALE=${BENCH_GUARD_SCALE:-medium}
DROP=${BENCH_GUARD_DROP:-20}
ALLOC_MARGIN=${BENCH_GUARD_ALLOC_MARGIN:-10}
RUNS=${BENCH_GUARD_RUNS:-3}

if [[ ! -f "$BASELINE" ]]; then
  echo "bench guard: no baseline at $BASELINE" >&2
  exit 1
fi

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/c3bench" ./cmd/c3bench
for ((i = 1; i <= RUNS; i++)); do
  echo "bench guard: trial $i/$RUNS"
  "$tmpdir/c3bench" -fig kv -scale "$SCALE" -kvjson "$tmpdir/trial$i.json" \
    -tailjson '' -batchjson '' -elasticjson '' -durablejson '' -consistencyjson ''
done

python3 - "$BASELINE" "$DROP" "$ALLOC_MARGIN" "$tmpdir"/trial*.json <<'EOF'
import json, os, sys

base = json.load(open(sys.argv[1]))
drop = float(sys.argv[2]) / 100.0
alloc_margin = float(sys.argv[3]) / 100.0
trials = [json.load(open(p)) for p in sys.argv[4:]]

# Config gate: throughput comparisons are meaningless across different
# measurement configs. Semantic knobs are hard mismatches (refuse, exit 2);
# hardware/toolchain drift is warn-only (the drop margin absorbs it).
# BENCH_GUARD_ALLOW_MISMATCH=1 downgrades hard mismatches to warnings for
# deliberate cross-config looks.
HARD = ("scale", "shards", "sync_policy", "goos", "goarch")
WARN = ("go_version", "gomaxprocs", "num_cpu")
allow = os.environ.get("BENCH_GUARD_ALLOW_MISMATCH") == "1"
bcfg = base.get("config")
if bcfg is None:
    print("bench guard: WARN baseline has no config block (pre-stamping record); skipping config gate")
else:
    mismatched = False
    for t in trials:
        tcfg = t.get("config", {})
        for key in HARD:
            if bcfg.get(key) != tcfg.get(key):
                print(f"bench guard: CONFIG MISMATCH {key}: baseline {bcfg.get(key)!r} vs run {tcfg.get(key)!r}")
                mismatched = True
        for key in WARN:
            if bcfg.get(key) != tcfg.get(key):
                print(f"bench guard: WARN config drift {key}: baseline {bcfg.get(key)!r} vs run {tcfg.get(key)!r}")
    if mismatched and not allow:
        print("bench guard: refusing to compare mismatched configs "
              "(set BENCH_GUARD_ALLOW_MISMATCH=1 to override)")
        sys.exit(2)
# Best trial per throughput metric; first trial for the deterministic allocs.
new = dict(trials[0])
for key in ("throughput_ops_per_sec", "write_throughput_ops_per_sec"):
    vals = [t[key] for t in trials if t.get(key)]
    if vals:
        new[key] = max(vals)
fail = False

def check_floor(name, key):
    global fail
    b, n = base.get(key), new.get(key)
    if not b:
        print(f"bench guard: SKIP {name}: baseline has no {key}")
        return
    floor = b * (1.0 - drop)
    status = "OK  " if n >= floor else "FAIL"
    if n < floor:
        fail = True
    print(f"bench guard: {status} {name}: {n:.0f} ops/s vs committed {b:.0f} (floor {floor:.0f})")

def check_ceiling(name, key):
    global fail
    b, n = base.get(key), new.get(key)
    if not b:
        print(f"bench guard: SKIP {name}: baseline has no {key}")
        return
    ceil = b * (1.0 + alloc_margin)
    status = "OK  " if n <= ceil else "FAIL"
    if n > ceil:
        fail = True
    print(f"bench guard: {status} {name}: {n:.2f}/op vs committed {b:.2f} (ceiling {ceil:.2f})")

check_floor("mixed throughput", "throughput_ops_per_sec")
check_floor("write throughput", "write_throughput_ops_per_sec")
check_ceiling("allocs", "allocs_per_op")
sys.exit(1 if fail else 0)
EOF
