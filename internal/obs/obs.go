// Package obs is the per-node ops surface: an HTTP handler serving expvar
// JSON, net/http/pprof profiles, and a coherent node stats snapshot. It is
// deliberately dependency-free toward the store — the node hands it a
// snapshot closure, so obs never reaches into kvstore state and every value
// it serves went through the node's own copy-under-lock discipline.
//
// Endpoints:
//
//	/debug/vars     process-global expvar variables plus the node snapshot
//	                under the "node" key — one curl shows q̂/srtt per peer,
//	                hedge/hint counters, and shard queue depths mid-run
//	/debug/pprof/   the standard pprof index (profile, heap, trace, ...)
//	/stats          the node snapshot alone, as JSON
//	/healthz        200 ok
//
// The handler is per-instance, not process-global: tests and multi-node
// demos run many nodes in one process, so nothing here registers on
// http.DefaultServeMux or in the global expvar table.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the ops surface for one node. snapshot is called per request
// and must be safe for concurrent use; its result is rendered with
// encoding/json.
func Handler(snapshot func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
		})
		if snapshot != nil {
			if b, err := json.Marshal(snapshot()); err == nil {
				if !first {
					fmt.Fprintf(w, ",\n")
				}
				fmt.Fprintf(w, "%q: %s", "node", b)
			}
		}
		fmt.Fprintf(w, "\n}\n")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if snapshot == nil {
			w.Write([]byte("null\n"))
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve runs an HTTP server for h on ln until the listener closes. It blocks;
// run it on its own goroutine.
func Serve(ln net.Listener, h http.Handler) error {
	srv := &http.Server{Handler: h}
	return srv.Serve(ln)
}
