// Package poolsafe enforces sync.Pool discipline on the hot-path object
// pools (connection write buffers, RPC call records, hedge timers): once an
// object is returned to its pool — directly via Pool.Put or through a
// releaser wrapper like putBuf/putCall/putTimer — no path may touch it again
// before the variable is rebound. A use-after-Put is a data race with
// whichever goroutine gets the object next, and like all pool races it
// corrupts silently because the memory stays valid.
//
// Releasers are computed by a same-package fixpoint: a function releases
// parameter i (or its receiver) when the body passes it to Pool.Put or to
// another releaser. The check is then flow-sensitive per body: from each
// release statement, every CFG path is scanned until the released variable
// is reassigned; any intervening read is flagged. Aliases (a second variable
// or a field holding the same pointer) are out of scope — the repository
// convention is that the releasing variable is the owner.
package poolsafe

import (
	"go/ast"
	"go/types"

	"c3/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolsafe",
	Doc: "no use of a pooled object after it is returned to its pool " +
		"(Pool.Put or a releaser wrapper such as putBuf/putCall)",
	Run: run,
}

// releaser describes which argument a function releases: an index into its
// parameters, or -1 for the method receiver.
type releaser struct {
	obj types.Object
	arg int
}

func run(pass *analysis.Pass) error {
	bodies := analysis.Bodies(pass.Files)
	releasers := releaserSet(pass, bodies)
	terminates := analysis.Terminator(pass.TypesInfo)

	for _, b := range bodies {
		var g *analysis.CFG
		analysis.InspectShallow(b.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			v := releasedVar(pass.TypesInfo, releasers, call)
			if v == nil {
				return true
			}
			if g == nil {
				g = analysis.BuildCFG(b.Body, terminates)
			}
			stmt := owningStmt(g, b.Body, call)
			if stmt == nil {
				return true
			}
			if _, isDefer := stmt.(*ast.DeferStmt); isDefer {
				// A deferred release runs after every use in the body.
				return true
			}
			checkAfterRelease(pass, g, stmt, call, v)
			return true
		})
	}
	return nil
}

// checkAfterRelease walks the CFG from the release statement and reports
// reads of v before any rebinding.
func checkAfterRelease(pass *analysis.Pass, g *analysis.CFG, release ast.Stmt, relCall *ast.CallExpr, v *types.Var) {
	g.WalkFrom(release, func(n *analysis.Node) bool {
		rebound := false
		for _, part := range n.Parts {
			// Uses anywhere in the statement — including inside literals a
			// later `go func(){...}` spawns — touch freed memory.
			ast.Inspect(part, func(x ast.Node) bool {
				id, ok := x.(*ast.Ident)
				if !ok {
					return true
				}
				if pass.TypesInfo.Uses[id] == v && !isRebindTarget(part, id) {
					pass.Reportf(id.Pos(), "use of %s after it was released to its pool", v.Name())
				}
				if pass.TypesInfo.Defs[id] == v {
					rebound = true
				}
				return true
			})
			if a, ok := part.(*ast.AssignStmt); ok {
				for _, lhs := range a.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
						rebound = true
					}
				}
			}
		}
		return rebound // a fresh binding ends the hazard on this path
	})
}

// isRebindTarget reports whether id is the assignment target itself (the
// LHS of `v = fresh()` reads nothing).
func isRebindTarget(stmt ast.Node, id *ast.Ident) bool {
	a, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range a.Lhs {
		if ast.Unparen(lhs) == id {
			return true
		}
	}
	return false
}

// releasedVar resolves a call to the plain local variable it releases, nil
// when the call is not a release or the argument is not an identifier.
func releasedVar(info *types.Info, releasers map[types.Object]int, call *ast.CallExpr) *types.Var {
	// Direct Pool.Put(x).
	if _, name, isMethod := analysis.CalleeName(info, call); isMethod && name == "Put" {
		if recv := analysis.ReceiverType(info, call); recv != nil && analysis.IsNamedType(recv, "sync", "Pool") {
			if len(call.Args) == 1 {
				return identVar(info, call.Args[0])
			}
		}
	}
	obj := calleeObj(info, call)
	arg, ok := releasers[obj]
	if !ok {
		return nil
	}
	if arg == -1 {
		// Receiver release: ca.abort() frees ca.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return identVar(info, sel.X)
		}
		return nil
	}
	if arg < len(call.Args) {
		return identVar(info, call.Args[arg])
	}
	return nil
}

// releaserSet runs the fixpoint described in the package comment. A
// function qualifies only when it releases the same parameter on EVERY
// non-panicking exit path: a conditional release (ctlWait aborting the call
// on timeout but not on success) reports the outcome through its error
// return, and callers that use the object only on the success arm are
// correct — flagging them would force suppressions on sound code.
func releaserSet(pass *analysis.Pass, bodies []analysis.FuncBody) map[types.Object]int {
	set := make(map[types.Object]int)
	terminates := analysis.Terminator(pass.TypesInfo)
	for changed := true; changed; {
		changed = false
		for _, b := range bodies {
			if b.Lit != nil || b.Decl == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[b.Decl.Name]
			if obj == nil {
				continue
			}
			if _, done := set[obj]; done {
				continue
			}
			params := paramVars(pass.TypesInfo, b.Decl)
			var released *types.Var
			arg := 0
			ast.Inspect(b.Decl.Body, func(n ast.Node) bool {
				if released != nil {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				v := releasedVar(pass.TypesInfo, set, call)
				if v == nil {
					return true
				}
				for i, p := range params {
					if p != nil && p == v {
						released, arg = v, i-1 // params[0] is the receiver slot
						return false
					}
				}
				return true
			})
			if released == nil {
				continue
			}
			g := analysis.BuildCFG(b.Decl.Body, terminates)
			v := released
			always := g.AllPathsPass(func(n *analysis.Node) bool {
				return analysis.NodeContainsCall(pass.TypesInfo, n, true, func(call *ast.CallExpr) bool {
					return releasedVar(pass.TypesInfo, set, call) == v
				})
			})
			if always {
				set[obj] = arg
				changed = true
			}
		}
	}
	return set
}

// paramVars returns [receiver, param0, param1, ...] with nil holes for
// missing or unnamed entries.
func paramVars(info *types.Info, fd *ast.FuncDecl) []*types.Var {
	out := []*types.Var{nil}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		out[0], _ = info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			v, _ := info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}

func identVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// owningStmt finds the innermost CFG-anchored statement whose executed parts
// contain the call.
func owningStmt(g *analysis.CFG, body *ast.BlockStmt, call *ast.CallExpr) ast.Stmt {
	var best ast.Stmt
	analysis.InspectShallow(body, func(n ast.Node) bool {
		stmt, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		node := g.NodeFor(stmt)
		if node == nil {
			return true
		}
		for _, part := range node.Parts {
			if part.Pos() <= call.Pos() && call.End() <= part.End() {
				best = stmt
				break
			}
		}
		return true
	})
	return best
}
