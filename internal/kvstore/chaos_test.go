package kvstore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"c3/internal/sim"
)

// Membership chaos: a fixed-seed random interleaving of join, decommission,
// and crash events under concurrent MultiGet/Put load. The invariants:
//
//   - zero acked-write loss: every key the client saw acknowledged is
//     readable once the dust settles (and, modulo CL=ONE convergence lag,
//     throughout the run);
//   - zero stuck readers: every MultiGet returns within a small multiple of
//     the configured ReadBudget, churn or not;
//   - zero accounting residual: after quiescing, every live node's selector
//     outstanding toward every peer is exactly zero (the settleOutstanding
//     invariant of the tail-tolerance layer, now across epochs).
//
// The external client only dials nodes 0..2, and those nodes are exempt from
// crash/decommission — mirroring the tail benchmark's victim choice. A
// CL=ONE store cannot promise durability of a write whose acking replica AND
// coordinator die together, so the chaos keeps coordinators alive and
// crashes at most one storage node; everything else (including crashing a
// node that just gained ranges, or decommissioning under load) is fair game.

const (
	chaosBaseNodes    = 5
	chaosCoordinators = 3 // client-facing nodes, never killed
	chaosEvents       = 5
	chaosReadBudget   = 1 * time.Second
)

// chaosLedger tracks acked keys across writer goroutines.
type chaosLedger struct {
	mu   sync.Mutex
	keys []string
}

func (l *chaosLedger) add(k string) {
	l.mu.Lock()
	l.keys = append(l.keys, k)
	l.mu.Unlock()
}

// settled returns the acked keys old enough that CL=ONE replica fan-out has
// certainly completed (all but the most recent few).
func (l *chaosLedger) settled() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.keys) - 64
	if n <= 0 {
		return nil
	}
	return append([]string(nil), l.keys[:n]...)
}

func (l *chaosLedger) all() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.keys...)
}

func TestMembershipChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second churn chaos; the dedicated race step runs it in full")
	}
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runMembershipChaos(t, seed)
		})
	}
}

func runMembershipChaos(t *testing.T, seed uint64) {
	cfg := Config{Seed: seed, ReadBudget: chaosReadBudget}
	c, err := StartCluster(chaosBaseNodes, cfg)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(c.Close)
	cl, err := Dial(c.Addrs()[:chaosCoordinators])
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(cl.Close)

	var (
		ledger  chaosLedger
		stop    atomic.Bool
		wg      sync.WaitGroup
		failMu  sync.Mutex
		failure string
	)
	fail := func(format string, args ...any) {
		failMu.Lock()
		if failure == "" {
			failure = fmt.Sprintf(format, args...)
		}
		failMu.Unlock()
		stop.Store(true)
	}

	// Writers: unique keys, alternating point Puts and MultiPuts; only
	// acknowledged keys enter the ledger.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := func(k string) []byte { return []byte("val-" + k) }
			for i := 0; !stop.Load(); i++ {
				if i%8 == 7 { // a small MultiPut batch
					keys := make([]string, 4)
					vals := make([][]byte, 4)
					for j := range keys {
						keys[j] = fmt.Sprintf("chaos%d-w%d-%06d-%d", seed, w, i, j)
						vals[j] = val(keys[j])
					}
					oks, err := cl.MultiPut(keys, vals)
					if err != nil {
						continue // transport failure: nothing acked
					}
					for j, ok := range oks {
						if ok {
							ledger.add(keys[j])
						}
					}
					continue
				}
				k := fmt.Sprintf("chaos%d-w%d-%06d", seed, w, i)
				if err := cl.Put(k, val(k)); err == nil {
					ledger.add(k)
				}
			}
		}(w)
	}

	// Readers: sample settled acked keys; a missing key is retried before it
	// counts as loss (CL=ONE convergence lag is not loss), a transport error
	// or blown budget fails immediately.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := sim.RNG(seed, 0xbeef+uint64(r))
			for !stop.Load() {
				settled := ledger.settled()
				if len(settled) == 0 {
					time.Sleep(time.Millisecond)
					continue
				}
				keys := make([]string, 0, 32)
				for i := 0; i < 32; i++ {
					keys = append(keys, settled[int(rng.Uint64()%uint64(len(settled)))])
				}
				start := time.Now()
				_, found, err := cl.MultiGet(keys)
				elapsed := time.Since(start)
				if err != nil {
					fail("reader %d: MultiGet error: %v", r, err)
					return
				}
				if elapsed > 3*chaosReadBudget+2*time.Second {
					fail("reader %d: MultiGet stuck for %v (budget %v)", r, elapsed, chaosReadBudget)
					return
				}
				for i, ok := range found {
					if ok {
						continue
					}
					// Retry the key alone: genuine loss is permanent.
					lost := true
					for attempt := 0; attempt < 10; attempt++ {
						if _, ok2, err2 := cl.Get(keys[i]); err2 == nil && ok2 {
							lost = false
							break
						}
						time.Sleep(20 * time.Millisecond)
					}
					if lost {
						fail("reader %d: acked key %q lost during churn", r, keys[i])
						return
					}
				}
			}
		}(r)
	}

	// Orchestrator: a seeded interleaving of membership events. Membership
	// operations are serialized (the protocol's contract); the load is not.
	rng := sim.RNG(seed, 0xc0ffee)
	members := chaosBaseNodes
	// Nodes eligible for crash/decommission: every non-coordinator.
	pool := []*Node{c.Nodes[3], c.Nodes[4]}
	var decommissioned []*Node
	crashed := false
	var crashedN *Node
	for ev := 0; ev < chaosEvents && !stop.Load(); ev++ {
		time.Sleep(time.Duration(30+rng.Uint64()%50) * time.Millisecond)
		switch pick := rng.Uint64() % 3; {
		case pick == 0 || (pick == 1 && members <= chaosBaseNodes-1) || len(pool) == 0:
			n, err := c.Join(Config{Seed: seed ^ uint64(ev)<<16, ReadBudget: chaosReadBudget})
			if err != nil {
				fail("join: %v", err)
				break
			}
			members++
			pool = append(pool, n)
		case pick == 1:
			// Decommission a non-coordinator (needs members-1 ≥ RF=3).
			if members <= 4 {
				break
			}
			idx := int(rng.Uint64() % uint64(len(pool)))
			victim := pool[idx]
			pool = append(pool[:idx], pool[idx+1:]...)
			if err := victim.Decommission(); err != nil {
				fail("decommission node %d: %v", victim.ID(), err)
				break
			}
			members--
			decommissioned = append(decommissioned, victim)
			time.Sleep(100 * time.Millisecond) // let straggling reads drain
			victim.Close()
		default:
			// Crash (at most once): an abrupt Close with no protocol.
			if crashed || len(pool) == 0 {
				break
			}
			idx := int(rng.Uint64() % uint64(len(pool)))
			victim := pool[idx]
			pool = append(pool[:idx], pool[idx+1:]...)
			victim.Close()
			crashed = true
			crashedN = victim
		}
	}

	time.Sleep(100 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	failMu.Lock()
	if failure != "" {
		failMu.Unlock()
		t.Fatal(failure)
	}
	failMu.Unlock()

	// Zero acked-write loss: after convergence, every acked key is readable.
	keys := ledger.all()
	if len(keys) == 0 {
		t.Fatal("chaos run acked no writes at all")
	}
	deadline := time.Now().Add(5 * time.Second)
	for start := 0; start < len(keys); start += 256 {
		end := min(start+256, len(keys))
		chunk := keys[start:end]
		for {
			_, found, err := cl.MultiGet(chunk)
			missing := ""
			if err == nil {
				for i, ok := range found {
					if !ok {
						missing = chunk[i]
						break
					}
				}
				if missing == "" {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("acked write lost after settling: key %q err %v", missing, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Zero residual: the selector accounting invariant across epochs, on
	// every node still alive.
	maxID := 0
	live := []*Node{}
	for _, n := range c.Nodes {
		if n == nil || n == crashedN {
			continue
		}
		dec := false
		for _, d := range decommissioned {
			if d == n {
				dec = true
			}
		}
		if dec {
			continue
		}
		live = append(live, n)
		if n.ID() > maxID {
			maxID = n.ID()
		}
	}
	settleOutstanding(t, live, maxID+1, 5*time.Second)
}
