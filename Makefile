# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keeping them here means one invocation works identically on a
# laptop and in the workflow.

GO ?= go

.PHONY: build test race lint vet cover bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The repo-wide race sweep: -short skips the multi-second chaos and
# simulation suites, which CI runs in full in their dedicated race steps.
race:
	$(GO) test -race -short ./...

# c3vet over the whole tree (plus staticcheck/govulncheck when installed).
lint:
	./scripts/lint.sh

# go vet with the c3vet analyzers only — the fast inner-loop check.
vet:
	mkdir -p bin
	$(GO) build -o bin/c3vet ./cmd/c3vet
	$(GO) vet -vettool=$(CURDIR)/bin/c3vet ./...

cover:
	./scripts/coverage_floor.sh

bench:
	$(GO) test ./internal/kvstore -run xxx -bench 'BenchmarkCluster' -benchtime 1000x

clean:
	rm -rf bin
