// Package kvstore is a real, networked replicated key-value store built on
// the substrates in this repository: loopback/LAN TCP with the wire protocol,
// the LSM storage engine, the Murmur3 token ring, and — the point of the
// exercise — the identical internal/core replica-selection code that drives
// the simulators. Every node is both a storage replica and a coordinator
// (exactly Cassandra's architecture in §4): client requests land on any
// node, the coordinator ranks the key's replica group with C3 (or a baseline
// strategy), applies per-server cubic rate limiting with backpressure, and
// forwards the read to the chosen replica. Responses piggyback queue-size
// and service-time feedback.
package kvstore

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"c3/internal/core"
	"c3/internal/lsm"
	"c3/internal/ratelimit"
	"c3/internal/sim"
	"c3/internal/wire"
)

// Strategy names for coordinators.
const (
	StratC3  = "C3"
	StratLOR = "LOR"
	StratRR  = "RR"
	StratRND = "RND"
)

// Config configures a node.
type Config struct {
	// RF is the replication factor (default 3).
	RF int
	// Strategy selects the coordinator's replica-selection policy
	// (default C3).
	Strategy string
	// Rate configures C3's rate controller.
	Rate ratelimit.Config
	// ReadDelayMean adds an exponentially distributed artificial storage
	// delay per replica read — the stand-in for disk seeks when the
	// store runs entirely in memory. Zero disables it.
	ReadDelayMean time.Duration
	// ReadRepair is the probability a read is broadcast to every replica
	// (Cassandra's anti-entropy read repair, 10% by default). Beyond
	// consistency, it is what keeps coordinators' views of currently
	// unselected replicas fresh — without it, a replica that turned slow
	// and was abandoned would never be observed recovering. Negative
	// disables it.
	ReadRepair float64
	// BackpressureTimeout bounds how long a coordinator holds a request
	// waiting for a rate token before failing open (default 2s).
	BackpressureTimeout time.Duration
	// ReadBudget bounds how long a coordinated read may spend across its
	// primary replica, hedges, and failure-path retries once dispatched
	// (default 2s). A read that exhausts its budget reports not-found; the
	// in-flight replica requests are reaped in the background with their
	// accounting intact.
	ReadBudget time.Duration
	// Hedge configures speculative (hedged) reads — the tail-tolerance
	// layer. Enabled by default; see HedgeConfig.
	Hedge HedgeConfig
	// Store tunes the LSM engine. When a node is durable (DataDir or
	// Store.Dir set) and Store.SyncInterval is zero, the node defaults to
	// periodic WAL sync every 20ms; set it negative to force strict
	// fsync-per-commit-group acks.
	Store lsm.Options
	// DataDir, when non-empty, makes every node's storage durable: node id
	// stores under <DataDir>/node-<id> (WAL + SSTs + manifest), and a node
	// restarted with the same id and DataDir recovers every acknowledged
	// write. Empty keeps storage in memory. Setting Store.Dir directly also
	// works for a single hand-built node; DataDir is the per-node derivation
	// used when one Config boots a whole cluster.
	DataDir string
	// HintCap bounds the hinted-handoff queue per down peer (records, not
	// bytes): writes toward an unreachable replica are banked up to this many
	// hints and replayed with backoff once the peer returns. Zero means the
	// default (512); negative disables handoff entirely. When a peer is down
	// AND its hint queue is full, quorum-level writes covering it fail with
	// StatusQuorumUnavailable instead of growing the debt without bound.
	HintCap int
	// Shards partitions the node's storage and request handling into
	// consistent-hash sub-shards, each with its own memtable, WAL,
	// writer goroutine, queue accounting, and ranker scratch state —
	// unrelated keys never share a lock or an fsync group. Zero means
	// runtime.GOMAXPROCS(0); 1 reproduces the unsharded single-store
	// layout. A durable directory remembers its shard count: reopening
	// it ignores a different setting rather than scattering the data.
	Shards int
	// Seed drives the node's randomness.
	Seed uint64
}

// HedgeConfig tunes speculative reads. After an adaptive delay — the
// coordinator's smoothed replica-read RTT plus 3.5 deviations (RFC 6298
// estimators, ≈ a p93 latency estimate; see hedgeDelay) — a read still
// waiting on its primary replica is duplicated to the next-best-ranked
// replica and the first response wins. Both replicas' responses still feed the ranker, so a hedge
// doubles as a freshness probe of a replica the coordinator had stopped
// selecting. This is the layer Cassandra pairs with replica selection as
// "speculative retry" (and the paper's §8 reissues atop C3).
type HedgeConfig struct {
	// Disabled turns speculative reads off. Reads then ride on their
	// primary replica alone until it responds, fails (failing over to the
	// next-ranked replica), or the read budget expires.
	Disabled bool
	// MinDelay floors the adaptive hedge delay (default 250µs), bounding
	// duplicate load when the RTT estimate collapses on a fast LAN.
	MinDelay time.Duration
	// MaxDelay caps the adaptive hedge delay (default 50ms) and is also
	// the delay used before the first RTT observation.
	MaxDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.RF <= 0 {
		c.RF = 3
	}
	if c.Strategy == "" {
		c.Strategy = StratC3
	}
	if c.BackpressureTimeout <= 0 {
		c.BackpressureTimeout = 2 * time.Second
	}
	if c.ReadBudget <= 0 {
		c.ReadBudget = 2 * time.Second
	}
	if c.Hedge.MinDelay <= 0 {
		c.Hedge.MinDelay = 250 * time.Microsecond
	}
	if c.Hedge.MaxDelay <= 0 {
		c.Hedge.MaxDelay = 50 * time.Millisecond
	}
	if c.ReadRepair == 0 {
		c.ReadRepair = 0.1
	} else if c.ReadRepair < 0 {
		c.ReadRepair = 0
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	return c
}

// Node is one store process: TCP listener, storage engine, coordinator.
type Node struct {
	id  core.ServerID
	cfg Config

	// topo is the node's current versioned topology (ring, addresses,
	// dual-route window). The hot path snapshots it with one atomic load;
	// adoption installs immutable successors under memberMu.
	topo     atomic.Pointer[topology]
	memberMu sync.Mutex // serializes topology adoption and membership ops
	reg      *core.Registry

	store *lsm.Sharded
	ln    net.Listener

	// Per-shard coordinator and replica state, all indexed by the storage
	// shard of a key: sels holds one selection client per shard (padded
	// slots over one shared registry — the ranker's dense scratch becomes a
	// [shard][denseIndex] slice-of-slices), st the padded replica-side
	// accounting and write queues.
	sels  *core.ShardedClients
	st    []shardSt
	readq chan *readTask // unbuffered rendezvous with the read workers

	peersMu sync.RWMutex
	peers   []*peerSlot // outbound RPC links, indexed by peer node id; grown on adoption

	scan streamScan // per-arc live-key snapshot serving membership pulls

	connsMu sync.Mutex
	conns   map[net.Conn]struct{} // inbound connections, closed on shutdown

	slowNs atomic.Int64 // injected extra delay per read (demos/tests)

	// Smoothed replica-read RTT driving the adaptive hedge delay (see
	// hedgeDelay; RFC 6298 estimators). CAS-free like svcNs: concurrent
	// updates only blur the estimate.
	srttNs   atomic.Uint64
	rttvarNs atomic.Uint64

	served      atomic.Uint64 // reads served by this node's storage
	coord       atomic.Uint64 // reads coordinated by this node
	waited      atomic.Uint64 // reads that hit backpressure at this coordinator
	hedgeWins   atomic.Uint64 // reads answered by their hedge, not their primary
	writeFails  atomic.Uint64 // coordinated writes no replica acknowledged
	repairs     atomic.Uint64 // version-guarded read-repair write-backs issued
	quorumFails atomic.Uint64 // coordinated ops that missed their consistency level

	hlc        atomic.Uint64 // HLC version-stamp state (see stampVersion)
	hints      *hintStore    // per-peer handoff queues; nil when disabled
	dropWrites atomic.Bool   // fault injection: reject replica-local writes

	rngMu sync.Mutex
	rng   *rand.Rand

	closed  chan struct{}
	wg      sync.WaitGroup
	closing sync.Once
}

// shardSt is one shard's replica-side hot state: the queue-size and
// service-time feedback the shard's reads sample, and the shard writer's
// task queue. Padded to a cache-line pair so two shards' counters — updated
// concurrently on a multi-core node — never false-share.
type shardSt struct {
	pendingReads atomic.Int64  // queue-size feedback, this shard's keys only
	svcNs        atomic.Uint64 // smoothed per-read service time
	wq           chan *writeTask
	_            [104]byte
}

var errWriteDropped = errors.New("kvstore: write dropped by fault injection")

// shardOf routes a key to its shard — identical on every node (the hash has
// no per-node salt), so a coordinator's shard-s selector observes exactly
// the replicas' shard-s queues.
func (n *Node) shardOf(key string) int { return n.store.ShardFor(key) }

// selFor is the selection client owning key's shard.
func (n *Node) selFor(key string) *core.Client { return n.sels.Shard(n.store.ShardFor(key)) }

// feedbackAt samples shard sh's C3 feedback fields — what this shard's read
// responses piggyback.
func (n *Node) feedbackAt(sh int) wire.Feedback {
	return wire.Feedback{
		QueueSize: float64(n.st[sh].pendingReads.Load()),
		ServiceNs: int64(n.st[sh].svcNs.Load()),
	}
}

// newRanker builds the strategy for a coordinator in a cluster of the given
// size (C3's concurrency weight w = number of coordinating clients = nodes).
// The registry carries the cluster's dense server index; the returned
// ranker (and the Client built on it) key all per-server state by it.
func newRanker(strategy string, reg *core.Registry, nodes int, seed uint64) (core.Ranker, bool) {
	switch strategy {
	case StratC3:
		return core.NewCubicRanker(core.RankerConfig{
			ConcurrencyWeight: float64(nodes),
			Seed:              seed,
			Registry:          reg,
		}), true
	case StratLOR:
		return core.NewLOR(reg, seed), false
	case StratRR:
		return core.NewRoundRobin(reg), true
	case StratRND:
		return core.NewRandom(seed), false
	default:
		panic("kvstore: unknown strategy " + strategy)
	}
}

// StartNode launches node id of a cluster whose node addresses are addrs
// (addrs[id] must be this node's address to listen on; use "127.0.0.1:0"
// and read back Addr for tests).
func StartNode(id int, addrs []string, cfg Config) (*Node, error) {
	if id < 0 || id >= len(addrs) {
		return nil, fmt.Errorf("kvstore: node id %d outside cluster of %d", id, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, err
	}
	return StartNodeWithListener(id, addrs, ln, cfg)
}

// StartNodeWithListener launches node id on an already-bound listener —
// the race-free path for harnesses that reserve every port up front
// (StartCluster) instead of closing and re-binding. The node takes
// ownership of ln.
func StartNodeWithListener(id int, addrs []string, ln net.Listener, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if id < 0 || id >= len(addrs) {
		ln.Close()
		return nil, fmt.Errorf("kvstore: node id %d outside cluster of %d", id, len(addrs))
	}
	addrs = append([]string(nil), addrs...)
	addrs[id] = ln.Addr().String()
	t, err := bootTopology(addrs, cfg.RF)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return newNode(core.ServerID(id), t, ln, cfg)
}

// newNode assembles and starts a node from an adopted topology — the shared
// tail of StartNodeWithListener (epoch-0 boot) and JoinCluster (a live join
// at the epoch the cluster assigned). With durability configured it opens
// (and, after a crash, recovers) the node's storage directory before
// accepting any traffic.
func newNode(id core.ServerID, t *topology, ln net.Listener, cfg Config) (*Node, error) {
	st := cfg.Store
	if cfg.DataDir != "" {
		st.Dir = filepath.Join(cfg.DataDir, fmt.Sprintf("node-%d", id))
	}
	if st.Dir != "" && st.FlushBytes == 0 {
		// Server-grade memtable: the lsm package default (4 MiB) is sized
		// for tests; a serving node amortizes flush pauses over 32 MiB.
		st.FlushBytes = 32 << 20
	}
	if st.Dir != "" && st.SyncInterval == 0 {
		// Default to periodic WAL sync (Cassandra's commitlog trade): acks
		// wait for write(2), not fsync, so the serving hot path keeps its
		// throughput; a background fsync every 20ms bounds the power-loss
		// window. Acked writes still survive kill -9 — the page cache
		// outlives the process. Set Store.SyncInterval negative for strict
		// fsync-per-commit-group.
		st.SyncInterval = 20 * time.Millisecond
	}
	if st.SyncInterval < 0 {
		st.SyncInterval = 0
	}
	store, err := lsm.OpenSharded(st, cfg.Shards)
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("kvstore: open store for node %d: %w", id, err)
	}
	// A durable directory's persisted shard count wins over the config (see
	// lsm.OpenSharded); everything downstream sizes off the store.
	shards := store.ShardCount()
	// Pre-register the whole cluster view so steady-state selection never
	// takes the registry's intern slow path; later adoptions intern joiners
	// on the same registry, extending every ranker's dense state in place.
	members := t.v.Members()
	reg := core.NewRegistry(members...)
	n := &Node{
		id:    id,
		cfg:   cfg,
		reg:   reg,
		store: store,
		ln:    ln,
		// One selection client per shard over the shared registry: C3's
		// concurrency weight counts coordinating clients, which sharding
		// multiplies. Each shard's ranker gets its own seed so tie-breaks
		// decorrelate across shards.
		sels: core.NewShardedClients(shards, func(sh int) *core.Client {
			ranker, rc := newRanker(cfg.Strategy, reg, len(members)*shards,
				cfg.Seed^uint64(id)<<8^uint64(sh)*0x9e3779b97f4a7c15)
			return core.NewClient(ranker, core.ClientConfig{RateControl: rc, Rate: cfg.Rate})
		}),
		st:     make([]shardSt, shards),
		readq:  make(chan *readTask),
		peers:  make([]*peerSlot, len(t.addrs)),
		conns:  make(map[net.Conn]struct{}),
		rng:    sim.RNG(cfg.Seed, 0xfeed+uint64(id)),
		closed: make(chan struct{}),
	}
	n.topo.Store(t)
	for sh := range n.st {
		n.st[sh].svcNs.Store(uint64(time.Millisecond)) // prior before first read
		n.st[sh].wq = make(chan *writeTask, writeQueueDepth)
	}
	if n.hints, err = openHints(n, st.Dir, cfg.HintCap); err != nil {
		store.Close()
		ln.Close()
		return nil, fmt.Errorf("kvstore: open hint log for node %d: %w", id, err)
	}
	for sh := range n.st {
		n.wg.Add(1)
		go n.writeWorker(sh)
	}
	for i := 0; i < readWorkerCount(shards); i++ {
		n.wg.Add(1)
		go n.readWorker()
	}
	n.wg.Add(1)
	go n.acceptLoop()
	if n.hints != nil {
		n.hints.kickAll() // resume delivery of hints recovered from disk
	}
	return n, nil
}

// Addr reports the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// ID reports the node's cluster id.
func (n *Node) ID() int { return int(n.id) }

// Store exposes the underlying sharded LSM engine (diagnostics).
func (n *Node) Store() *lsm.Sharded { return n.store }

// Shards reports the node's effective shard count (a durable directory's
// persisted count wins over the config).
func (n *Node) Shards() int { return n.store.ShardCount() }

// ReadsServed reports reads served by this node's storage.
func (n *Node) ReadsServed() uint64 { return n.served.Load() }

// ReadsCoordinated reports reads coordinated by this node.
func (n *Node) ReadsCoordinated() uint64 { return n.coord.Load() }

// BackpressureWaits reports coordinator reads that waited for a rate token.
func (n *Node) BackpressureWaits() uint64 { return n.waited.Load() }

// SetSlowdown injects extra artificial latency per local read — the live
// analogue of the paper's tc-based degradation in Fig. 13.
func (n *Node) SetSlowdown(d time.Duration) { n.slowNs.Store(int64(d)) }

// HedgesIssued reports speculative read duplicates this coordinator fired —
// the numerator of the duplicate-load overhead a deployment watches. The
// count lives in the selector (PickHedge records it); failovers after an
// error go through PickNext and are not counted.
func (n *Node) HedgesIssued() uint64 { return n.sels.HedgesSent() }

// HedgeWins reports coordinated reads that were answered by their hedge
// rather than their primary replica.
func (n *Node) HedgeWins() uint64 { return n.hedgeWins.Load() }

// WriteFailures reports coordinated writes that no replica acknowledged.
func (n *Node) WriteFailures() uint64 { return n.writeFails.Load() }

// OutstandingToward reports the selector's in-flight accounting toward a
// peer, summed over shards. Quiescent clusters must report zero for every
// pair — the accounting invariant the failure-scenario tests and the tail
// benchmark assert, which per-shard accounting preserves shard by shard.
func (n *Node) OutstandingToward(peer int) float64 {
	return n.sels.Outstanding(core.ServerID(peer))
}

// SendRateToward exposes the coordinator's current srate toward a peer,
// summed over shards.
func (n *Node) SendRateToward(peer int) float64 {
	return n.sels.SendRate(core.ServerID(peer))
}

// Close shuts the node down cleanly: sever the network, wait for in-flight
// handlers to drain, then close the store (which flushes the memtable and
// fsyncs the WAL tail, so a clean restart replays nothing surprising and no
// descriptors leak).
func (n *Node) Close() {
	n.teardownNetwork()
	n.wg.Wait()
	if n.hints != nil {
		n.hints.close()
	}
	n.store.Close()
}

// Crash tears the node down the way SIGKILL would — no flush, no final
// fsync, commit groups in flight fail — leaving the data directory in
// whatever state earlier group commits made durable. A node restarted over
// the same directory must recover every acknowledged write; the durability
// chaos tests drive this. Production shutdown is Close.
func (n *Node) Crash() {
	n.teardownNetwork()
	// Fail the store first: handlers blocked waiting on a WAL commit group
	// must unblock (with errors) before wg.Wait can return.
	n.store.Crash()
	n.wg.Wait()
	if n.hints != nil {
		n.hints.close()
	}
}

// teardownNetwork severs the listener and every connection, once.
func (n *Node) teardownNetwork() {
	n.closing.Do(func() {
		close(n.closed)
		n.ln.Close()
		n.peersMu.RLock()
		peers := append([]*peerSlot(nil), n.peers...)
		n.peersMu.RUnlock()
		for _, s := range peers {
			if s == nil {
				continue
			}
			s.mu.Lock()
			if s.conn != nil {
				s.conn.close()
			}
			s.mu.Unlock()
		}
		// Inbound connections (from clients and from peers that have
		// not shut down yet) must be severed too, or their serve
		// loops would keep this node's WaitGroup pinned.
		n.connsMu.Lock()
		for c := range n.conns {
			c.Close()
		}
		n.connsMu.Unlock()
	})
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

// serveConn handles one inbound connection (client or peer). Responses are
// pre-encoded into pooled frames and coalesced by the connection's writer
// goroutine; replica-local requests are served inline on the read loop when
// no artificial delay is configured (goroutine-per-frame costs more than the
// storage read itself), while coordinator requests always dispatch so reads
// stay concurrent across replicas.
func (n *Node) serveConn(conn net.Conn) {
	defer n.wg.Done()
	n.connsMu.Lock()
	n.conns[conn] = struct{}{}
	n.connsMu.Unlock()
	defer func() {
		n.connsMu.Lock()
		delete(n.conns, conn)
		n.connsMu.Unlock()
	}()
	cw := newConnWriter(conn)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		cw.loop()
	}()
	defer cw.close()
	defer conn.Close() // runs before cw.close, unblocking a stuck writer
	r := wire.NewReader(conn)
	var bkeys []string // batch decode scratch, reused across frames
	var bvals [][]byte
	for {
		typ, payload, err := r.Next()
		if err != nil {
			return
		}
		// Parsed Keys and Values alias the frame buffer (valid until the
		// next r.Next): inline handlers may use them directly, dispatched
		// handlers get copies.
		switch typ {
		case wire.MsgRead:
			m, err := wire.ParseReadReq(payload)
			if err != nil {
				return
			}
			t := getReadTask()
			t.cw = cw
			if m.CL == wire.LevelOne {
				// The key rides in a pooled buffer; the fast path never
				// clones it (escalation paths clone on first spawn).
				kb := getBuf()
				*kb = append((*kb)[:0], m.Key...)
				t.kb = kb
				m.Key = pooledString(*kb)
			} else {
				m.Key = strings.Clone(m.Key)
			}
			t.m = m
			n.wg.Add(1)
			n.dispatchRead(t)
		case wire.MsgReadInternal:
			m, err := wire.ParseReadReq(payload)
			if err != nil {
				return
			}
			if n.inlineLocalReads() {
				n.respondLocalRead(cw, m)
				continue
			}
			m.Key = strings.Clone(m.Key)
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.respondLocalRead(cw, m)
			}()
		case wire.MsgWrite:
			m, err := wire.ParseWriteReq(payload)
			if err != nil {
				return
			}
			// Handled inline: launchCoordWrite only dispatches legs (shard
			// queues, async RPCs) and returns; the ack is enqueued by the
			// leg that decides the level. The key is retained by the gather
			// and possibly the memtable, so it must be cloned.
			m.Key = strings.Clone(m.Key)
			vb := getBuf()
			*vb = append((*vb)[:0], m.Value...)
			m.Value = *vb
			n.launchCoordWrite(cw, m, vb)
		case wire.MsgWriteInternal:
			m, err := wire.ParseWriteReq(payload)
			if err != nil {
				return
			}
			// Queued to the key's shard writer, which folds pipelined
			// writes into one WAL commit group. A flush or compaction
			// stalls only that shard's queue, never this link's reads.
			t := getWriteTask()
			t.kind = taskInternal
			t.key = strings.Clone(m.Key) // the memtable retains it
			t.ver = m.Version
			t.del = m.Del
			vb := getBuf()
			*vb = append((*vb)[:0], m.Value...)
			t.val, t.vb = *vb, vb
			t.cw, t.id = cw, m.ID
			n.enqueueWriteTask(n.shardOf(t.key), t)
		case wire.MsgBatchRead:
			m, err := wire.ParseBatchReadReq(payload, bkeys[:0])
			if err != nil {
				return
			}
			bkeys = m.Keys
			// Coordination always dispatches (it blocks on replica RPCs),
			// so the keys must outlive the frame buffer.
			keys := cloneKeys(m.Keys)
			id, cl := m.ID, m.CL
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.respondCoordBatchRead(cw, id, cl, keys)
			}()
		case wire.MsgBatchReadInternal:
			m, err := wire.ParseBatchReadReq(payload, bkeys[:0])
			if err != nil {
				return
			}
			bkeys = m.Keys
			if n.inlineLocalReads() {
				// Served before the next frame is read: keys may alias the
				// frame buffer, and values stream straight from the store
				// into the response frame.
				n.respondLocalBatchRead(cw, m.ID, m.Keys)
				continue
			}
			keys := cloneKeys(m.Keys)
			id := m.ID
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.respondLocalBatchRead(cw, id, keys)
			}()
		case wire.MsgBatchWrite:
			m, err := wire.ParseBatchWriteReq(payload, bkeys[:0], bvals[:0])
			if err != nil {
				return
			}
			bkeys, bvals = m.Keys, m.Values
			keys := cloneKeys(m.Keys)
			vals, arena := cloneValues(m.Values)
			id, cl := m.ID, m.CL
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.respondCoordBatchWrite(cw, id, cl, keys, vals, arena)
			}()
		case wire.MsgBatchWriteInternal:
			m, err := wire.ParseBatchWriteReq(payload, bkeys[:0], bvals[:0])
			if err != nil {
				return
			}
			bkeys, bvals = m.Keys, m.Values
			keys := cloneKeys(m.Keys)
			vals, arena := cloneValues(m.Values)
			id, ver := m.ID, m.Version
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.respondLocalBatchWrite(cw, id, ver, keys, vals, arena)
			}()
		case wire.MsgRingUpdate:
			u, err := wire.ParseRingUpdate(payload)
			if err != nil {
				return
			}
			for i := range u.Nodes { // addrs alias the frame buffer
				u.Nodes[i].Addr = strings.Clone(u.Nodes[i].Addr)
			}
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.respondRingUpdate(cw, u)
			}()
		case wire.MsgJoinReq:
			m, err := wire.ParseJoinReq(payload)
			if err != nil {
				return
			}
			id, addr := m.ID, strings.Clone(m.Addr)
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.respondJoin(cw, id, addr)
			}()
		case wire.MsgStreamReq:
			m, err := wire.ParseStreamReq(payload)
			if err != nil {
				return
			}
			m.Cursor = strings.Clone(m.Cursor)
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.respondStream(cw, m)
			}()
		case wire.MsgStreamPush:
			// A decommissioning peer re-homing one page of its arcs: same
			// layout as an internal batch write, applied only-if-absent.
			m, err := wire.ParseBatchWriteReq(payload, bkeys[:0], bvals[:0])
			if err != nil {
				return
			}
			bkeys, bvals = m.Keys, m.Values
			keys := cloneKeys(m.Keys)
			vals, arena := cloneValues(m.Values)
			id := m.ID
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.respondStreamPush(cw, id, keys, vals, arena)
			}()
		default:
			return // protocol error: drop the connection
		}
	}
}

// allOK is a shared read-only all-true slice: a replica-local batch write
// that lands acks every key, so the encoder borrows a prefix instead of
// allocating per response. allFail is its mirror for a batch whose WAL
// commit failed (the whole group shares one fsync, so the batch succeeds or
// fails as a unit).
var allOK = func() []bool {
	b := make([]bool, wire.MaxBatchKeys)
	for i := range b {
		b[i] = true
	}
	return b
}()

var allFail = make([]bool, wire.MaxBatchKeys)

// cloneKeys copies frame-aliasing keys into durable strings (dispatched
// handlers outlive the frame buffer; the memtable retains write keys).
func cloneKeys(keys []string) []string {
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = strings.Clone(k)
	}
	return out
}

// cloneValues copies frame-aliasing values into one pooled arena — a single
// exact-size copy instead of one allocation per key. The returned slices
// alias the arena; the caller recycles it via putBuf once every consumer
// (lsm.Put copies; frame encoders copy) is done with the values.
func cloneValues(vals [][]byte) ([][]byte, *[]byte) {
	total := 0
	for _, v := range vals {
		total += len(v)
	}
	ab := getBuf()
	arena := (*ab)[:0]
	if cap(arena) < total {
		arena = make([]byte, 0, total)
	}
	out := make([][]byte, len(vals))
	for i, v := range vals {
		off := len(arena)
		arena = append(arena, v...)
		out[i] = arena[off:len(arena):len(arena)]
	}
	*ab = arena
	return out, ab
}

// inlineLocalReads reports whether replica-local reads are served on the
// connection's read loop. Any configured storage delay or injected slowdown
// restores per-frame dispatch so a slow read does not serialize the link.
func (n *Node) inlineLocalReads() bool {
	return n.cfg.ReadDelayMean == 0 && n.slowNs.Load() == 0
}

// respondLocalRead serves a replica-local read and enqueues the response,
// streaming the value straight from the LSM store into the frame buffer —
// no intermediate value copy.
func (n *Node) respondLocalRead(cw *connWriter, m wire.ReadReq) {
	sh := n.shardOf(m.Key)
	start := n.beginRead(sh)
	fb := getBuf()
	b, mark := wire.BeginReadResp((*fb)[:0], m.ID)
	b, found := n.store.Shard(sh).GetAppend(b, m.Key)
	b, err := wire.FinishReadResp(b, mark, found, wire.StatusOK, n.finishRead(sh, start))
	if err != nil {
		putBuf(fb)
		return
	}
	*fb = b
	cw.enqueue(fb)
}

// respondLocalBatchRead serves a replica-local sub-batch as one unit: every
// key is read against the LSM store in request order, values streaming
// straight into the response frame, and the queue-size feedback is sampled
// once after the whole sub-batch — carrying weight len(keys) on the
// coordinator side, so C3's q̂ sees the batch's true cost.
func (n *Node) respondLocalBatchRead(cw *connWriter, id uint64, keys []string) {
	fb := getBuf()
	b, err := n.serveBatchRead((*fb)[:0], id, keys)
	if err != nil {
		// The response cannot be framed (values overflow MaxFrame): sever so
		// the coordinator's call fails fast instead of waiting forever.
		putBuf(fb)
		cw.sever(err)
		return
	}
	*fb = b
	cw.enqueue(fb)
}

// serveBatchRead encodes the complete batch read-response frame for keys
// into dst — the shared storage-to-frame path of remote sub-batches
// (respondLocalBatchRead) and the coordinator's own local sub-batches.
func (n *Node) serveBatchRead(dst []byte, id uint64, keys []string) ([]byte, error) {
	sh := n.shardOf(keys[0])
	start := n.beginBatchRead(sh, len(keys))
	b, mark := wire.BeginBatchReadResp(dst, id)
	var err error
	for _, k := range keys {
		b = wire.BeginBatchReadItem(b, &mark)
		var found bool
		b, found = n.store.GetAppend(b, k)
		if b, err = wire.FinishBatchReadItem(b, &mark, found); err != nil {
			n.finishBatchRead(sh, start, len(keys))
			return dst, err
		}
	}
	return wire.FinishBatchReadResp(b, mark, n.finishBatchRead(sh, start, len(keys)))
}

// beginBatchRead is beginRead for a coalesced sub-batch: the queue
// accounting moves by the batch size — count keys, not frames, or the
// feedback would tell coordinators a loaded replica was idle — while the
// artificial storage delay is paid once, the modelled seek a coalesced batch
// amortizes. A sub-batch may span shards; its accounting is charged to the
// first key's shard (sub-batches partition by replica group, not shard).
func (n *Node) beginBatchRead(sh, count int) time.Time {
	n.st[sh].pendingReads.Add(int64(count))
	start := time.Now()
	if d := n.readDelay(); d > 0 {
		time.Sleep(d)
	}
	return start
}

// finishBatchRead completes the server half of a sub-batch: queue accounting
// released, the smoothed per-key service time updated (the batch's elapsed
// time spread over its keys), and a post-batch feedback sample.
func (n *Node) finishBatchRead(sh int, start time.Time, count int) wire.Feedback {
	svc := time.Since(start)
	n.st[sh].pendingReads.Add(-int64(count))
	n.served.Add(uint64(count))
	per := float64(svc) / float64(count)
	old := n.st[sh].svcNs.Load()
	n.st[sh].svcNs.Store(uint64(0.2*per + 0.8*float64(old)))
	return n.feedbackAt(sh)
}

// respondStreamPush applies one re-homing page from a decommissioning peer:
// every pair carries the raw version-prefixed value it had on the pusher and
// lands only when it is newer than what this replica holds (lsm.PutRawIfNewer
// — the check and write are one critical section), so a streamed pre-move
// value can never clobber a newer dual-routed write that arrived first. Every
// key acks OK either way: "skipped because newer data exists" is success.
func (n *Node) respondStreamPush(cw *connWriter, id uint64, keys []string, vals [][]byte, arena *[]byte) {
	oks := allOK
	for i := range keys {
		if _, err := n.store.PutRawIfNewer(keys[i], vals[i]); err != nil {
			oks = allFail // storage wedged: the pusher must not count this page
			break
		}
	}
	putBuf(arena)
	fb := getBuf()
	b, err := wire.AppendBatchWriteResp((*fb)[:0], wire.BatchWriteResp{
		ID: id, OK: oks[:len(keys)], FB: n.feedback()})
	if err != nil {
		putBuf(fb)
		cw.sever(err)
		return
	}
	*fb = b
	cw.enqueue(fb)
}

// respondLocalBatchWrite applies a write sub-batch and enqueues the per-key
// acks. arena is the pooled buffer backing vals, recycled here (the store
// copies). The batch lands through one WAL commit group — one fsync for the
// whole sub-batch — so it acks or fails as a unit. A non-zero ver is the
// coordinator's stamp shared by the whole sub-batch and applies each key
// under the last-write-wins guard; ver zero is the legacy unversioned path.
func (n *Node) respondLocalBatchWrite(cw *connWriter, id uint64, ver uint64, keys []string, vals [][]byte, arena *[]byte) {
	oks := allOK
	if n.dropWrites.Load() {
		oks = allFail
	} else if ver != 0 {
		if err := n.store.PutAllVersioned(keys, vals, ver); err != nil {
			oks = allFail
		}
	} else if err := n.store.PutAll(keys, vals); err != nil {
		oks = allFail
	}
	putBuf(arena)
	fb := getBuf()
	b, err := wire.AppendBatchWriteResp((*fb)[:0], wire.BatchWriteResp{
		ID: id, OK: oks[:len(keys)], FB: n.feedback()})
	if err != nil {
		putBuf(fb)
		cw.sever(err)
		return
	}
	*fb = b
	cw.enqueue(fb)
}

// respondCoordRead coordinates a client read — routed by the request's
// consistency level — and enqueues the response. An inline local read streams
// its raw stored value straight onto the open frame (vbuf nil); a raced or
// quorum read's winning value arrives split in a pooled buffer and is
// re-prefixed with its version here — one bounded copy, the price of letting
// concurrent racers resolve without sharing the frame buffer.
func (n *Node) respondCoordRead(cw *connWriter, m wire.ReadReq) {
	fb := getBuf()
	b, mark := wire.BeginReadResp((*fb)[:0], m.ID)
	var resp wire.ReadResp
	var vbuf *[]byte
	if m.CL == wire.LevelOne {
		resp, vbuf = n.coordinateRead(m, b)
	} else {
		resp, vbuf = n.coordinateQuorumRead(m)
	}
	if vbuf != nil {
		if resp.Found {
			b = lsm.AppendVersioned(b, resp.Version, resp.Value)
		}
		putBuf(vbuf)
	} else if resp.Value != nil {
		b = resp.Value // the frame extended by the raw value (possibly regrown)
	}
	b, err := wire.FinishReadResp(b, mark, resp.Found, resp.Status, resp.FB)
	if err != nil {
		putBuf(fb)
		return
	}
	*fb = b
	cw.enqueue(fb)
}

// feedback samples the node's current C3 feedback fields aggregated over
// shards: queue sizes sum; service time averages. Replica read responses
// carry the per-shard sample (feedbackAt) instead — a coordinator's shard-s
// selector paces against the replicas' shard-s queues.
func (n *Node) feedback() wire.Feedback {
	var q int64
	var svc uint64
	for sh := range n.st {
		q += n.st[sh].pendingReads.Load()
		svc += n.st[sh].svcNs.Load()
	}
	return wire.Feedback{
		QueueSize: float64(q),
		ServiceNs: int64(svc / uint64(len(n.st))),
	}
}

// localRead serves a replica-local read with queue accounting, artificial
// disk delay, and feedback sampling — the server half of C3 (§3.1). The
// value is appended to dst (the coordinator's open response frame when it
// serves one of its own keys).
func (n *Node) localRead(m wire.ReadReq, dst []byte) wire.ReadResp {
	sh := n.shardOf(m.Key)
	start := n.beginRead(sh)
	val, ok := n.store.Shard(sh).GetAppend(dst, m.Key)
	return wire.ReadResp{ID: m.ID, Found: ok, Value: val, FB: n.finishRead(sh, start)}
}

// beginRead is the server half's prologue: queue accounting on the key's
// shard plus the artificial storage delay. Every beginRead pairs with
// exactly one finishRead, which undoes the queue accounting.
func (n *Node) beginRead(sh int) time.Time {
	return n.beginReadAt(sh, time.Now())
}

// beginReadAt is beginRead with the caller supplying the start timestamp, so
// a path that already holds a fresh clock sample (the inline local fast path)
// does not pay a second one.
func (n *Node) beginReadAt(sh int, start time.Time) time.Time {
	n.st[sh].pendingReads.Add(1)
	if d := n.readDelay(); d > 0 {
		time.Sleep(d)
	}
	return start
}

// finishRead completes the server half of a read: queue accounting, the
// smoothed service-time update, and a post-read per-shard feedback sample.
func (n *Node) finishRead(sh int, start time.Time) wire.Feedback {
	return n.finishReadAt(sh, start, time.Now())
}

// finishReadAt is finishRead with the caller supplying the completion
// timestamp; the same sample then serves the RTT and the ranker clock.
func (n *Node) finishReadAt(sh int, start, end time.Time) wire.Feedback {
	svc := end.Sub(start)
	n.st[sh].pendingReads.Add(-1)
	n.served.Add(1)
	// Smoothed service time: new = 0.2·sample + 0.8·old, CAS-free since
	// small races only blur the estimate.
	old := n.st[sh].svcNs.Load()
	n.st[sh].svcNs.Store(uint64(0.2*float64(svc) + 0.8*float64(old)))
	return n.feedbackAt(sh)
}

// readDelay draws the configured artificial storage delay plus any injected
// slowdown.
func (n *Node) readDelay() time.Duration {
	var d int64
	if n.cfg.ReadDelayMean > 0 {
		n.rngMu.Lock()
		d = sim.Exp(n.rng, float64(n.cfg.ReadDelayMean))
		n.rngMu.Unlock()
	}
	return time.Duration(d + n.slowNs.Load())
}

// Failure penalty fed to the ranker when a selected replica's RPC fails: an
// effectively infinite queue and a one-second response time steer selection
// away until fresh feedback (a hedge, failover, or repair probe that
// succeeds) shows the replica recovered.
const (
	failPenaltyQueue = 1e6
	failPenaltyRTT   = time.Second
)

// isClosed reports whether the node has begun shutting down.
func (n *Node) isClosed() bool {
	select {
	case <-n.closed:
		return true
	default:
		return false
	}
}

// timerPool recycles the hedge and budget timers of coordinated reads; two
// timer allocations per read would otherwise dominate the request's
// allocation budget.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if t, ok := timerPool.Get().(*time.Timer); ok {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

// putTimer stops and drains t so a recycled timer can never deliver a stale
// tick into its next read's race.
func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// observeReadRTT folds one successful replica-read round trip into the
// smoothed estimate driving the adaptive hedge delay (RFC 6298
// coefficients; CAS-free like svcNs — concurrent updates only blur it).
func (n *Node) observeReadRTT(rtt time.Duration) {
	d := float64(rtt)
	s := float64(n.srttNs.Load())
	if s == 0 {
		n.srttNs.Store(uint64(d))
		n.rttvarNs.Store(uint64(d / 2))
		return
	}
	diff := d - s
	if diff < 0 {
		diff = -diff
	}
	v := float64(n.rttvarNs.Load())
	n.rttvarNs.Store(uint64(v + 0.25*(diff-v)))
	n.srttNs.Store(uint64(s + 0.125*(d-s)))
}

// hedgeDevFactor scales the deviation term of the hedge delay (in halves:
// the delay is srtt + hedgeDevFactorHalves/2 · rttvar). RFC 6298 uses 4 for
// retransmission, where a spurious fire costs a full resend on a congested
// path; hedges are cheaper — a duplicate read to an idle-enough replica —
// so 3.5 buys a meaningfully earlier rescue (≈p93 of recent reads instead
// of ≈p99) while keeping duplicate load in single-digit percent (measured:
// ~6% at 4, ~10% at 3 under the tail benchmark's slow-replica scenario).
const hedgeDevFactorHalves = 7

// hedgeDelay is how long a read waits on its primary replica before
// duplicating to the next-ranked one: srtt + 3.5·rttvar clamped to the
// configured window — the same percentile regime as Cassandra's
// speculative-retry default, but derived from this coordinator's own
// observations and self-tuning at LAN speed.
func (n *Node) hedgeDelay() time.Duration {
	s := n.srttNs.Load()
	if s == 0 {
		return n.cfg.Hedge.MaxDelay // no observations yet: hedge late
	}
	d := time.Duration(s + hedgeDevFactorHalves*n.rttvarNs.Load()/2)
	if d < n.cfg.Hedge.MinDelay {
		d = n.cfg.Hedge.MinDelay
	}
	if d > n.cfg.Hedge.MaxDelay {
		d = n.cfg.Hedge.MaxDelay
	}
	return d
}

// accountReadFailure records a failed replica read with the selector: our
// own shutdown abandons (there is no feedback to observe), as does a failure
// toward a server the topology has since retired — a decommissioned node's
// dying links must not poison the EWMAs its dense index may still share with
// diagnostics — while a real failure of a live member feeds the punishing
// penalty.
func (n *Node) accountReadFailure(sel *core.Client, s core.ServerID, now time.Time) {
	if n.isClosed() || !n.topo.Load().serves(s) {
		sel.OnAbandon(s, now.UnixNano())
	} else {
		sel.OnResponse(s, core.Feedback{QueueSize: failPenaltyQueue,
			ServiceTime: failPenaltyRTT}, failPenaltyRTT, now.UnixNano())
	}
}

// accountReadSuccess feeds a replica read's piggybacked feedback and
// observed round trip to the shard's selector.
func (n *Node) accountReadSuccess(sel *core.Client, s core.ServerID, fb wire.Feedback, rtt time.Duration, now time.Time) {
	sel.OnResponse(s, core.Feedback{
		QueueSize:   fb.QueueSize,
		ServiceTime: time.Duration(fb.ServiceNs),
	}, rtt, now.UnixNano())
}

// raceOutcome is one replica's resolution within a coordinated read's race.
type raceOutcome struct {
	from core.ServerID
	resp wire.ReadResp
	err  error
	rtt  time.Duration
	buf  *[]byte // pooled buffer backing resp.Value; the consumer recycles it
}

// raceRead fires one replica read — local or remote — as an independent
// racer reporting into ch. The racer performs its own selector accounting
// as it resolves (a success feeds real feedback, a failure feeds the
// punishing penalty, our own shutdown abandons), so every send recorded for
// a racer is balanced by exactly one OnResponse/OnAbandon no matter whether
// the coordinator is still listening when the racer finishes. ch must be
// buffered for the whole race so a late loser never blocks.
func (n *Node) raceRead(sel *core.Client, s core.ServerID, m wire.ReadReq, ch chan<- raceOutcome) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		rb := getBuf()
		sent := time.Now()
		var out wire.ReadResp
		var err error
		if s == n.id {
			out = n.localRead(m, (*rb)[:0])
			if out.Found {
				// Normalize to the remote-response shape — version split off
				// the raw stored bytes — so race consumers see one format.
				out.Version, out.Value = lsm.SplitVersioned(out.Value)
			}
		} else {
			out, err = n.rpcRead(s, m, (*rb)[:0])
		}
		now := time.Now()
		if err != nil {
			putBuf(rb)
			n.accountReadFailure(sel, s, now)
			ch <- raceOutcome{from: s, err: err}
			return
		}
		if out.Value != nil {
			*rb = out.Value[:0] // the value append may have regrown the buffer
		}
		rtt := now.Sub(sent)
		n.accountReadSuccess(sel, s, out.FB, rtt, now)
		ch <- raceOutcome{from: s, resp: out, rtt: rtt, buf: rb}
	}()
}

// adoptCall hands a still-pending primary read to a background goroutine
// once its race was decided without it: the adopter completes the call's
// accounting — the late response still trains the ranker, a failure is
// penalized, our own shutdown abandons — and recycles its buffers. The
// winner already trained the hedge-delay estimate, so the adopted loser
// does not (its slowness is exactly what the hedge routed around).
func (n *Node) adoptCall(sel *core.Client, s core.ServerID, ca *call, rb *[]byte, sent time.Time) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		<-ca.done
		out, err := readResult(ca)
		now := time.Now()
		if err != nil {
			n.accountReadFailure(sel, s, now)
		} else {
			if out.Value != nil {
				*rb = out.Value[:0]
			}
			n.accountReadSuccess(sel, s, out.FB, now.Sub(sent), now)
		}
		putBuf(rb)
	}()
}

// reap drains the remaining racers of a finished read in the background,
// recycling their value buffers. Their selector accounting happens inside
// raceRead, so nothing is lost by not inspecting the outcomes.
func (n *Node) reap(ch <-chan raceOutcome, pending int) {
	if pending <= 0 {
		return
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for i := 0; i < pending; i++ {
			putBuf((<-ch).buf)
		}
	}()
}

// maybeReadRepair occasionally probes every replica beyond the selected
// target (Cassandra's anti-entropy read repair). Beyond consistency, it
// refreshes the coordinator's feedback for replicas it has stopped
// selecting. Probe accounting pairs every OnSend with OnResponse on success
// and OnAbandon on failure — a failed probe must release its outstanding
// count, or q̂ toward an already-struggling replica inflates forever and the
// coordinator never notices it recovering (the leak this layer's regression
// test pins down).
func (n *Node) maybeReadRepair(m wire.ReadReq, group []core.ServerID, target core.ServerID) {
	if n.cfg.ReadRepair <= 0 {
		return
	}
	n.rngMu.Lock()
	repair := n.rng.Float64() < n.cfg.ReadRepair
	n.rngMu.Unlock()
	if !repair {
		return
	}
	// The probe goroutine outlives the request frame: the key may view a
	// pooled buffer and the group a stack scratch array, so both are cloned
	// here — repair is rare enough that the copies never show on the profile.
	m.Key = strings.Clone(m.Key)
	group = append([]core.ServerID(nil), group...)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.repairProbe(m, group, target)
	}()
}

// repairProbe is the body of a background read-repair pass: probe the key's
// versions on every replica except the read's target, then write the newest
// version back to the probed replicas holding older (or no) data. The probes
// carry versions, not just values, and the write-back goes through the
// replica-side last-write-wins guard — so a repair racing a dual-routed write
// can never roll a replica backward (the guard skips it, which is success).
// The target itself is not probed or repaired: the foreground read is
// consulting it concurrently, and the next probe round covers it.
func (n *Node) repairProbe(m wire.ReadReq, group []core.ServerID, target core.ServerID) {
	sel := n.selFor(m.Key)
	type probe struct {
		s     core.ServerID
		found bool
		ver   uint64
		val   []byte  // payload; aliases buf's backing array
		buf   *[]byte // pooled
	}
	probes := make([]probe, 0, len(group))
	for _, s := range group {
		if s == target {
			continue
		}
		rb := getBuf()
		if s == n.id {
			// Local probe: straight off the store, no selector traffic.
			val, ver, ok := n.store.GetVersioned((*rb)[:0], m.Key)
			*rb = val[:0]
			probes = append(probes, probe{s: s, found: ok, ver: ver, val: val, buf: rb})
			continue
		}
		sel.OnSend(s, time.Now().UnixNano())
		sent := time.Now()
		out, err := n.rpcRead(s, m, (*rb)[:0])
		if err != nil {
			// A probe is a best-effort observation: release its accounting
			// without synthesizing feedback. Punishing the replica is the
			// selected path's job.
			sel.OnAbandon(s, time.Now().UnixNano())
			putBuf(rb)
			continue
		}
		n.accountReadSuccess(sel, s, out.FB, time.Since(sent), time.Now())
		if out.Value != nil {
			*rb = out.Value[:0]
		}
		probes = append(probes, probe{s: s, found: out.Found, ver: out.Version, val: out.Value, buf: rb})
	}
	win := -1
	for i, p := range probes {
		if p.found && (win < 0 || p.ver > probes[win].ver) {
			win = i
		}
	}
	if win >= 0 {
		w := probes[win]
		for _, p := range probes {
			if p.s == w.s || (p.found && p.ver >= w.ver) {
				continue
			}
			n.repairReplica(p.s, m.Key, w.ver, w.val)
		}
	}
	for _, p := range probes {
		putBuf(p.buf)
	}
}

// readRace is the mutable state of one coordinated read's escalation
// ladder. It lives on the coordinator's stack; the outcome channel and the
// racer goroutines are created lazily, only when an escalation actually
// happens, so the common escalation-free read pays for none of them.
type readRace struct {
	n       *Node
	sel     *core.Client
	m       wire.ReadReq
	group   []core.ServerID
	tried   []core.ServerID // backed by triedBuf
	ch      chan raceOutcome
	pending int
	hedged  core.ServerID

	triedBuf [8]core.ServerID
}

// spawn launches a racer toward s. The first spawn materializes the race:
// the outcome channel is created and the key — which on the fast path views
// a pooled frame buffer — is cloned, because racer goroutines can outlive
// the request frame that owns that buffer.
func (r *readRace) spawn(s core.ServerID) {
	if r.ch == nil {
		r.ch = make(chan raceOutcome, len(r.group))
		r.m.Key = strings.Clone(r.m.Key)
	}
	r.tried = append(r.tried, s)
	r.n.raceRead(r.sel, s, r.m, r.ch)
	r.pending++
}

// escalate picks the next-ranked untried replica through the selector — so
// failure-path and hedge traffic still follows, and trains, the ranker
// instead of walking a fixed group order — and races it. isHedge marks a
// speculative duplicate (timer-fired, counted as duplicate load) as opposed
// to a failover after an error (which replaces a dead request and is not a
// duplicate). It reports false when every replica has been tried.
func (r *readRace) escalate(isHedge bool) bool {
	now := time.Now().UnixNano()
	var s core.ServerID
	var ok bool
	if isHedge {
		s, ok = r.sel.PickHedge(r.group, r.tried, now)
	} else {
		s, ok = r.sel.PickNext(r.group, r.tried, now)
	}
	if !ok {
		return false
	}
	if isHedge {
		r.hedged = s
	}
	r.spawn(s)
	return true
}

// coordinateRead is Algorithm 1 over real TCP, wrapped in the tail-tolerance
// layer: rank the key's replica group, wait for a rate token under
// backpressure, dispatch to the best replica, then escalate as needed — a
// speculative hedge to the next-ranked replica once the adaptive delay
// expires, immediate failovers to untried replicas on RPC failures, and a
// per-request budget backstopping the whole read. The first response wins;
// every dispatched request's result still feeds the ranker (late losers are
// adopted or reaped in the background with their accounting intact).
//
// The winning value is either appended to dst (inline local reads; vbuf is
// nil) or carried in the returned pooled buffer vbuf, which the caller
// recycles after encoding.
func (n *Node) coordinateRead(m wire.ReadReq, dst []byte) (resp wire.ReadResp, vbuf *[]byte) {
	n.coord.Add(1)
	sel := n.selFor(m.Key)
	var gbuf [8]core.ServerID
	group := n.topo.Load().readRing().ReplicasFor(keyBytes(m.Key), gbuf[:0])
	nowT := time.Now()
	target, ok, retryAt := sel.Pick(group, nowT.UnixNano())
	if !ok {
		// Backpressure: wait for a rate token, bounded by the configured
		// timeout. The common admitted case above pays one clock read.
		n.waited.Add(1)
		deadline := nowT.Add(n.cfg.BackpressureTimeout)
		for {
			now := time.Now()
			if now.After(deadline) {
				// Fail open: take the ranker's current best without
				// consuming a token so the request cannot starve. Unlike
				// sending to group[0], timeout traffic still spreads by
				// replica quality instead of piling onto one server.
				target, _ = sel.PickBest(group, now.UnixNano())
				break
			}
			time.Sleep(time.Duration(retryAt-now.UnixNano()) + 100*time.Microsecond)
			if target, ok, retryAt = sel.Pick(group, time.Now().UnixNano()); ok {
				break
			}
		}
	}
	n.maybeReadRepair(m, group, target)

	// Inline local fast path: an in-memory read with no configured delay
	// has nothing a hedge could rescue, and the race scaffolding would cost
	// more than the read itself. The value goes straight into the caller's
	// frame — zero copy, as before the tail-tolerance layer — and the whole
	// read pays two clock samples: the admission timestamp doubles as the
	// service start, the completion timestamp covers service time, RTT, and
	// the ranker's feedback clock.
	if target == n.id && n.inlineLocalReads() {
		sh := n.shardOf(m.Key)
		start := n.beginReadAt(sh, nowT)
		val, found := n.store.Shard(sh).GetAppend(dst, m.Key)
		end := time.Now()
		fb := n.finishReadAt(sh, start, end)
		n.accountReadSuccess(sel, target, fb, end.Sub(start), end)
		return wire.ReadResp{ID: m.ID, Found: found, Value: val, FB: fb}, nil
	}

	race := readRace{n: n, sel: sel, m: m, group: group, hedged: -1}
	race.tried = race.triedBuf[:0]

	// Dispatch the primary. A remote target whose connection is already up
	// goes out asynchronously on the pooled call record, so the common
	// escalation-free read needs no extra goroutine and no channel. A
	// remote target that would need a dial, and a local target behind a
	// storage delay, run as ordinary racers instead: both can stall (up to
	// peerDialTimeout, or in the storage sleep), and the stall must happen
	// where the hedge timer can race it.
	var (
		ca     *call // pending primary RPC, nil once resolved
		caDone <-chan struct{}
		caBuf  *[]byte
		sent   time.Time
	)
	if target == n.id {
		race.spawn(target)
	} else if p, ok := n.peerReady(target); ok {
		race.tried = append(race.tried, target)
		sent = time.Now()
		caBuf = getBuf()
		if c, err := p.readAsync(m.Key, (*caBuf)[:0]); err == nil {
			ca, caDone = c, c.done
		} else {
			// The link died under us: penalize and fail over now.
			putBuf(caBuf)
			caBuf = nil
			n.accountReadFailure(sel, target, time.Now())
			if !race.escalate(false) {
				return wire.ReadResp{ID: m.ID}, nil
			}
		}
	} else {
		race.spawn(target)
	}

	budget := getTimer(n.cfg.ReadBudget)
	defer putTimer(budget)
	var hedgeC <-chan time.Time
	if !n.cfg.Hedge.Disabled && len(group) > 1 {
		ht := getTimer(n.hedgeDelay())
		defer putTimer(ht)
		hedgeC = ht.C
	}
	for {
		select {
		case <-caDone:
			caDone = nil
			out, err := readResult(ca)
			ca = nil
			now := time.Now()
			if err == nil {
				rtt := now.Sub(sent)
				n.accountReadSuccess(sel, target, out.FB, rtt, now)
				if out.Value != nil {
					*caBuf = out.Value[:0]
				}
				// Only winners train the hedge delay: a slow loser's RTT
				// is exactly what hedging routes around, and folding it
				// in would push the delay up until hedges stop firing.
				n.observeReadRTT(rtt)
				n.reap(race.ch, race.pending)
				out.ID = m.ID
				return out, caBuf
			}
			putBuf(caBuf)
			caBuf = nil
			n.accountReadFailure(sel, target, now)
			if !race.escalate(false) && race.pending == 0 {
				return wire.ReadResp{ID: m.ID}, nil // every replica failed
			}
		case out := <-race.ch:
			race.pending--
			if out.err == nil {
				if out.from == race.hedged {
					n.hedgeWins.Add(1)
				}
				n.observeReadRTT(out.rtt)
				n.reap(race.ch, race.pending)
				if ca != nil {
					n.adoptCall(sel, target, ca, caBuf, sent)
				}
				out.resp.ID = m.ID
				return out.resp, out.buf
			}
			if !race.escalate(false) && race.pending == 0 && ca == nil {
				return wire.ReadResp{ID: m.ID}, nil // every replica failed
			}
		case <-hedgeC:
			hedgeC = nil
			race.escalate(true)
		case <-budget.C:
			// Budget exhausted: answer not-found now. Whatever is still
			// in flight accounts for itself and is cleaned up in the
			// background.
			n.reap(race.ch, race.pending)
			if ca != nil {
				n.adoptCall(sel, target, ca, caBuf, sent)
			}
			return wire.ReadResp{ID: m.ID}, nil
		}
	}
}

var errClosed = errors.New("kvstore: node closed")

// peerDialTimeout bounds one connection attempt to a peer;
// peerRedialBackoff is the fail-fast window after a failed dial — requests
// toward a peer that just refused a connection error out immediately instead
// of queueing another blocking dial, so a flapping peer cannot accumulate
// dial attempts.
const (
	peerDialTimeout   = time.Second
	peerRedialBackoff = 50 * time.Millisecond
)

// peerSlot is the per-peer outbound connection state. Each peer has its own
// lock, so a dial to a dead peer — which blocks for up to peerDialTimeout —
// head-of-line-blocks only RPCs to that peer, never traffic to healthy ones.
type peerSlot struct {
	mu       sync.Mutex
	conn     *rpcConn
	lastFail time.Time // last failed dial; starts the fail-fast window
	lastErr  error     // the failure served during the window
}

// peerSlotFor returns (creating if needed) the connection slot for a peer.
// Slots are pointers, so a held reference stays valid across growth.
func (n *Node) peerSlotFor(id core.ServerID) *peerSlot {
	n.peersMu.RLock()
	if int(id) < len(n.peers) {
		if s := n.peers[int(id)]; s != nil {
			n.peersMu.RUnlock()
			return s
		}
	}
	n.peersMu.RUnlock()
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	for int(id) >= len(n.peers) {
		n.peers = append(n.peers, nil)
	}
	if n.peers[int(id)] == nil {
		n.peers[int(id)] = &peerSlot{}
	}
	return n.peers[int(id)]
}

// peerReady returns the established healthy connection to a peer without
// ever blocking: it reports false when the link would need a dial — which
// can stall for up to peerDialTimeout — or when another goroutine holds the
// slot (dialing right now). Callers that get false dispatch through a racer
// goroutine instead, so the hedge timer keeps covering dial latency.
func (n *Node) peerReady(id core.ServerID) (*rpcConn, bool) {
	slot := n.peerSlotFor(id)
	if !slot.mu.TryLock() {
		return nil, false
	}
	p := slot.conn
	slot.mu.Unlock()
	if p != nil && !p.dead() {
		return p, true
	}
	return nil, false
}

// peer returns (establishing if needed) the RPC connection to a peer node.
func (n *Node) peer(id core.ServerID) (*rpcConn, error) {
	slot := n.peerSlotFor(id)
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if p := slot.conn; p != nil && !p.dead() {
		return p, nil
	}
	select {
	case <-n.closed:
		return nil, errClosed
	default:
	}
	if slot.lastErr != nil && time.Since(slot.lastFail) < peerRedialBackoff {
		return nil, slot.lastErr
	}
	addr := n.topo.Load().addrOf(id)
	if addr == "" {
		return nil, errUnknownPeer
	}
	//lint:allow lockscope slot.mu is this one peer's private dial lock — serializing concurrent redials to a dead peer is the point; request paths only graze it for the conn check
	conn, err := net.DialTimeout("tcp", addr, peerDialTimeout)
	if err != nil {
		slot.lastFail = time.Now()
		slot.lastErr = err
		return nil, err
	}
	slot.lastErr = nil
	slot.conn = newRPCConn(conn)
	return slot.conn, nil
}

func (n *Node) rpcRead(id core.ServerID, m wire.ReadReq, dst []byte) (wire.ReadResp, error) {
	p, err := n.peer(id)
	if err != nil {
		return wire.ReadResp{}, err
	}
	return p.read(m.Key, dst)
}

func (n *Node) rpcWrite(id core.ServerID, m wire.WriteReq) (wire.WriteResp, error) {
	p, err := n.peer(id)
	if err != nil {
		return wire.WriteResp{}, err
	}
	return p.write(m.Key, m.Value, m.Version, m.Del)
}

// Cluster is a convenience harness that runs n nodes on loopback.
type Cluster struct {
	Nodes []*Node
}

// StartCluster boots n nodes with the shared config on 127.0.0.1 ports.
// Listeners are bound once and handed to the nodes, so no other process can
// grab a port between reservation and startup.
func StartCluster(nodes int, cfg Config) (*Cluster, error) {
	if nodes < 1 {
		return nil, errors.New("kvstore: need at least one node")
	}
	// Reserve every port first so all nodes know the full topology.
	lns := make([]net.Listener, nodes)
	addrs := make([]string, nodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, bound := range lns[:i] {
				bound.Close()
			}
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	c := &Cluster{}
	for i := range lns {
		n, err := StartNodeWithListener(i, addrs, lns[i], cfg)
		if err != nil {
			for _, ln := range lns[i+1:] {
				ln.Close()
			}
			c.Close()
			return nil, err
		}
		c.Nodes = append(c.Nodes, n)
	}
	return c, nil
}

// Addrs lists the node addresses.
func (c *Cluster) Addrs() []string {
	out := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.Addr()
	}
	return out
}

// Close shuts all nodes down.
func (c *Cluster) Close() {
	for _, n := range c.Nodes {
		if n != nil {
			n.Close()
		}
	}
}
