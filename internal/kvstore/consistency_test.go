package kvstore

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"c3/internal/sim"
)

// Tunable-consistency tests: level parsing, quorum read/write semantics,
// version-guarded read repair, bounded hinted handoff, and a seeded
// consistency-chaos run pinning the R+W>N contract under kill/restart churn.

func TestLevelParseAndRequired(t *testing.T) {
	cases := []struct {
		in   string
		want Level
	}{
		{"one", One}, {"ONE", One}, {"1", One},
		{"quorum", Quorum}, {"Quorum", Quorum},
		{"all", All}, {"ALL", All},
	}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseLevel(%q) = %v, %v", c.in, got, err)
		}
		if back, err := ParseLevel(got.String()); err != nil || back != got {
			t.Fatalf("String/Parse roundtrip broke for %v", got)
		}
	}
	if _, err := ParseLevel("eventual"); err == nil {
		t.Fatal("unknown level accepted")
	}
	reqs := []struct {
		lvl     Level
		n, want int
	}{
		{One, 3, 1}, {Quorum, 3, 2}, {Quorum, 4, 3}, {Quorum, 5, 3},
		{All, 3, 3}, {Quorum, 1, 1}, {All, 1, 1},
	}
	for _, r := range reqs {
		if got := r.lvl.required(r.n); got != r.want {
			t.Fatalf("%v.required(%d) = %d, want %d", r.lvl, r.n, got, r.want)
		}
	}
}

func TestQuorumPutGetRoundtrip(t *testing.T) {
	_, cl := startTestCluster(t, 5, Config{Seed: 21})
	for _, lvl := range []Level{Quorum, All} {
		for i := 0; i < 30; i++ {
			k := fmt.Sprintf("lvl%d-%d", lvl, i)
			if err := cl.PutAt(k, []byte("v-"+k), lvl); err != nil {
				t.Fatalf("PutAt(%s, %v): %v", k, lvl, err)
			}
			// R+W>N: the quorum read overlaps the quorum write, no
			// settling sleep needed.
			v, ok, err := cl.GetAt(k, lvl)
			if err != nil || !ok || string(v) != "v-"+k {
				t.Fatalf("GetAt(%s, %v) = %q,%v,%v", k, v, lvl, ok, err)
			}
		}
	}
}

// TestQuorumReadYourWritesWithLaggingReplica: a replica that silently drops
// writes (the fault-injection hook) must not make an acked QUORUM write
// invisible to a QUORUM read — the read quorum always overlaps the write
// quorum on a replica that applied it.
func TestQuorumReadYourWritesWithLaggingReplica(t *testing.T) {
	c, cl := startTestCluster(t, 3, Config{Seed: 22}) // RF=3: one group
	c.Nodes[2].SetDropWrites(true)
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("lag-%d", i)
		if err := cl.PutAt(k, []byte("v-"+k), Quorum); err != nil {
			t.Fatalf("PutAt(%s): %v", k, err)
		}
		v, ok, err := cl.GetAt(k, Quorum)
		if err != nil || !ok || string(v) != "v-"+k {
			t.Fatalf("stale or missing quorum read of %s: %q,%v,%v", k, v, ok, err)
		}
	}
}

// TestQuorumReadRepairsStaleReplica: a quorum read that observes divergent
// replicas writes the newest version back before returning; the lagging
// replica converges without any further writes.
func TestQuorumReadRepairsStaleReplica(t *testing.T) {
	c, cl := startTestCluster(t, 3, Config{Seed: 23})
	lag := c.Nodes[2]
	lag.SetDropWrites(true)
	const nKeys = 30
	for i := 0; i < nKeys; i++ {
		k := fmt.Sprintf("repair-%d", i)
		if err := cl.PutAt(k, []byte("v-"+k), Quorum); err != nil {
			t.Fatalf("PutAt(%s): %v", k, err)
		}
	}
	lag.SetDropWrites(false)
	// Quorum reads collect R=2 of 3 votes; the lagging replica joins some
	// vote sets and is repaired when it does. Read until it converged.
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < nKeys; i++ {
		k := fmt.Sprintf("repair-%d", i)
		for !lag.Store().Has(k) {
			if time.Now().After(deadline) {
				t.Fatalf("replica never repaired for %s", k)
			}
			if _, _, err := cl.GetAt(k, Quorum); err != nil {
				t.Fatalf("GetAt(%s): %v", k, err)
			}
		}
	}
	repairs := uint64(0)
	for _, n := range c.Nodes {
		repairs += n.ReadRepairs()
	}
	if repairs == 0 {
		t.Fatal("replica converged without any recorded read repair")
	}
}

// TestRepairNeverClobbersNewerWrite: the write-back half of read repair runs
// under the replica's last-write-wins guard — a repair carrying an older
// version than what the replica holds is a no-op.
func TestRepairNeverClobbersNewerWrite(t *testing.T) {
	c, _ := startTestCluster(t, 3, Config{Seed: 24})
	n := c.Nodes[0]
	newVer := n.stampVersion()
	oldVer := newVer - (1 << versionNodeBits)
	if _, err := n.store.PutVersioned("guarded", newVer, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	// Local repair with a stale version.
	n.repairReplica(n.id, "guarded", oldVer, []byte("older"))
	// Remote repair with a stale version.
	n.repairReplica(c.Nodes[1].id, "guarded", oldVer, []byte("older"))
	time.Sleep(50 * time.Millisecond) // let the remote write land
	if v, _, ok := n.store.GetVersioned(nil, "guarded"); !ok || string(v) != "newer" {
		t.Fatalf("stale repair clobbered newer local value: %q", v)
	}
	if v, ver, ok := c.Nodes[1].store.GetVersioned(nil, "guarded"); ok && (ver != oldVer || string(v) != "older") {
		t.Fatalf("remote stale repair landed wrong: %q ver=%d", v, ver)
	}
}

// TestQuorumUnavailableTypedErrors: with a majority of the replica group
// down, QUORUM reads and writes fail with errors that match the taxonomy.
func TestQuorumUnavailableTypedErrors(t *testing.T) {
	c, err := StartCluster(3, Config{Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	cl, err := Dial(c.Addrs()[:1]) // only the surviving coordinator
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := cl.PutAt("pre", []byte("v"), Quorum); err != nil {
		t.Fatalf("healthy quorum write: %v", err)
	}
	c.Nodes[1].Crash()
	c.Nodes[2].Crash()

	err = cl.PutAt("k-unavail", []byte("v"), Quorum)
	if !errors.Is(err, ErrQuorumUnavailable) {
		t.Fatalf("quorum write with majority down: err = %v, want ErrQuorumUnavailable", err)
	}
	if !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("quorum write error must also be ErrWriteFailed, got %v", err)
	}
	if _, _, gerr := cl.GetAt("pre", Quorum); !errors.Is(gerr, ErrQuorumUnavailable) {
		t.Fatalf("quorum read with majority down: err = %v, want ErrQuorumUnavailable", gerr)
	}
	// ONE still serves from the survivor.
	if err := cl.PutAt("k-one", []byte("v"), One); err != nil {
		t.Fatalf("CL=ONE write with majority down: %v", err)
	}
	if _, _, err := cl.GetAt("pre", One); err != nil {
		t.Fatalf("CL=ONE read with majority down: %v", err)
	}
	// Batch flavor: every key of a quorum MultiPut fails the level.
	oks, err := cl.MultiPutAt([]string{"b1", "b2"}, [][]byte{[]byte("v"), []byte("v")}, Quorum)
	if !errors.Is(err, ErrQuorumUnavailable) {
		t.Fatalf("quorum MultiPut with majority down: err = %v", err)
	}
	for i, ok := range oks {
		if ok {
			t.Fatalf("key %d acked at quorum with majority down", i)
		}
	}
}

// TestHintedHandoffHealsDownReplica: writes toward a crashed replica are
// banked on the coordinators and replayed once the replica returns; the
// replica converges without a single read.
func TestHintedHandoffHealsDownReplica(t *testing.T) {
	c, err := StartCluster(3, Config{Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	addrs := c.Addrs()
	cl, err := Dial(addrs[:2])
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	c.Nodes[2].Crash()
	const nKeys = 20
	for i := 0; i < nKeys; i++ {
		k := fmt.Sprintf("hint-%d", i)
		if err := cl.Put(k, []byte("v-"+k)); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	// The failed fan-out legs bank hints on the two live coordinators.
	waitFor(t, 5*time.Second, "hints banked", func() bool {
		return c.Nodes[0].HintsStored()+c.Nodes[1].HintsStored() >= nKeys
	})

	n2 := restartNode(t, addrs, 2, Config{Seed: 26})
	c.Nodes[2] = n2
	// Replay drains with backoff once the peer is reachable again.
	waitFor(t, 15*time.Second, "hints replayed", func() bool {
		for i := 0; i < nKeys; i++ {
			if !n2.Store().Has(fmt.Sprintf("hint-%d", i)) {
				return false
			}
		}
		return c.Nodes[0].HintsPending()+c.Nodes[1].HintsPending() == 0
	})
	if rep := c.Nodes[0].HintsReplayed() + c.Nodes[1].HintsReplayed(); rep < nKeys {
		t.Fatalf("replayed %d hints, want ≥ %d", rep, nKeys)
	}
}

// TestHintsSurviveCoordinatorRestart: a durable coordinator's banked hints
// are recovered from its sidecar logs after a hard crash and still replayed
// to the returning replica.
func TestHintsSurviveCoordinatorRestart(t *testing.T) {
	cfg := Config{Seed: 27, DataDir: t.TempDir()}
	c, err := StartCluster(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	addrs := c.Addrs()
	cl, err := Dial(addrs[:1]) // all writes coordinate at node 0
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	c.Nodes[2].Crash()
	const nKeys = 10
	for i := 0; i < nKeys; i++ {
		k := fmt.Sprintf("surv-%d", i)
		if err := cl.Put(k, []byte("v-"+k)); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	waitFor(t, 5*time.Second, "hints banked on node 0", func() bool {
		return c.Nodes[0].HintsStored() >= nKeys
	})

	// Hard-crash the coordinator holding the debt, then bring it back over
	// the same data directory: the hint logs must restore the queue.
	c.Nodes[0].Crash()
	n0 := restartNode(t, addrs, 0, cfg)
	c.Nodes[0] = n0
	if n0.HintsPending() == 0 {
		t.Fatal("restarted coordinator recovered no hints from disk")
	}

	n2 := restartNode(t, addrs, 2, cfg)
	c.Nodes[2] = n2
	waitFor(t, 15*time.Second, "recovered hints replayed", func() bool {
		return n0.HintsPending() == 0
	})
	// The replica converges from hints plus its own recovered storage.
	for i := 0; i < nKeys; i++ {
		k := fmt.Sprintf("surv-%d", i)
		if !n2.Store().Has(k) {
			t.Fatalf("replica missing %q after hint replay", k)
		}
	}
}

// TestHintCapBoundsDebtAndFailsQuorum: once a down replica's hint queue is
// full, further CL=ONE writes drop their hint (bounded debt) and
// quorum-level writes covering that replica refuse deterministically with
// ErrQuorumUnavailable.
func TestHintCapBoundsDebtAndFailsQuorum(t *testing.T) {
	cfg := Config{Seed: 28, HintCap: 4}
	c, err := StartCluster(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	cl, err := Dial(c.Addrs()[:1])
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	c.Nodes[2].Crash()
	// Fill node 0's hint queue toward node 2 (CL=ONE writes keep acking).
	for i := 0; i < 12; i++ {
		if err := cl.Put(fmt.Sprintf("fill-%d", i), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	waitFor(t, 5*time.Second, "hint queue full", func() bool {
		return c.Nodes[0].HintsDropped() > 0
	})

	// A quorum write covering the dead, debt-saturated replica is refused
	// up front — even though two live replicas could have acked it. Retry
	// briefly: the refusal needs the peer slot to have noticed the death.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := cl.PutAt("refused", []byte("v"), Quorum)
		if errors.Is(err, ErrQuorumUnavailable) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("quorum write with full hint queue: err = %v, want ErrQuorumUnavailable", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Batch flavor.
	deadline = time.Now().Add(5 * time.Second)
	for {
		_, err := cl.MultiPutAt([]string{"rb1", "rb2"}, [][]byte{[]byte("v"), []byte("v")}, Quorum)
		if errors.Is(err, ErrQuorumUnavailable) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("quorum MultiPut with full hint queue: err = %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := c.Nodes[0].HintsPending(); got > cfg.HintCap {
		t.Fatalf("hint debt %d exceeds cap %d", got, cfg.HintCap)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBatchQuorumRepairsStaleReplica: the batch quorum path merges per key by
// highest version and repairs stale responders, same contract as the point
// path.
func TestBatchQuorumRepairsStaleReplica(t *testing.T) {
	c, cl := startTestCluster(t, 3, Config{Seed: 29})
	lag := c.Nodes[2]
	lag.SetDropWrites(true)
	keys := make([]string, 16)
	vals := make([][]byte, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("bq-%d", i)
		vals[i] = []byte("v-" + keys[i])
	}
	oks, err := cl.MultiPutAt(keys, vals, Quorum)
	if err != nil {
		t.Fatalf("MultiPutAt: %v", err)
	}
	for i, ok := range oks {
		if !ok {
			t.Fatalf("key %d not acked at quorum", i)
		}
	}
	lag.SetDropWrites(false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, found, err := cl.MultiGetAt(keys, Quorum)
		if err != nil {
			t.Fatalf("MultiGetAt: %v", err)
		}
		for i := range keys {
			if !found[i] || string(got[i]) != string(vals[i]) {
				t.Fatalf("quorum batch read of %s = %q,%v", keys[i], got[i], found[i])
			}
		}
		healed := true
		for _, k := range keys {
			if !lag.Store().Has(k) {
				healed = false
			}
		}
		if healed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lagging replica never converged via batch quorum reads")
		}
	}
}

// TestConsistencyChaosQuorum: the tentpole invariant under churn. Writers
// bump per-key sequence numbers at QUORUM; readers at QUORUM must never
// observe a sequence older than one already acknowledged before the read
// began (R+W>N ⇒ zero stale reads), while storage nodes hard-crash and
// restart over their data directories. Quorum failures during churn are
// fine; going back in time is not.
func TestConsistencyChaosQuorum(t *testing.T) {
	if testing.Short() {
		t.Skip("kill/restart churn chaos; the dedicated race step runs it in full")
	}
	for _, seed := range []uint64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runConsistencyChaos(t, seed)
		})
	}
}

func runConsistencyChaos(t *testing.T, seed uint64) {
	cfg := Config{Seed: seed, ReadBudget: time.Second, DataDir: t.TempDir()}
	c, err := StartCluster(5, cfg)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(c.Close)
	addrs := c.Addrs()
	// Coordinators 0..2 stay alive; storage nodes 3,4 crash-cycle.
	cl, err := Dial(addrs[:3])
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	const keysPerWriter = 4
	type slot struct{ acked atomic.Uint64 }
	ledger := make(map[string]*slot)
	var allKeys []string
	for w := 0; w < 2; w++ {
		for j := 0; j < keysPerWriter; j++ {
			k := fmt.Sprintf("cchaos%d-w%d-%d", seed, w, j)
			ledger[k] = &slot{}
			allKeys = append(allKeys, k)
		}
	}

	var (
		stop    atomic.Bool
		wg      sync.WaitGroup
		failMu  sync.Mutex
		failure string
	)
	fail := func(format string, args ...any) {
		failMu.Lock()
		if failure == "" {
			failure = fmt.Sprintf(format, args...)
		}
		failMu.Unlock()
		stop.Store(true)
	}

	// Writers: single writer per key, monotonically increasing sequence
	// values at QUORUM. Only an acked sequence enters the ledger; a failed
	// quorum write may still have landed partially, which readers must
	// tolerate as "newer than acked" — never older.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seq := uint64(0)
			for i := 0; !stop.Load(); i++ {
				k := fmt.Sprintf("cchaos%d-w%d-%d", seed, w, i%keysPerWriter)
				seq++
				err := cl.PutAt(k, []byte(strconv.FormatUint(seq, 10)), Quorum)
				if err != nil {
					if !errors.Is(err, ErrWriteFailed) {
						fail("writer %d: unexpected error class: %v", w, err)
						return
					}
					continue // level missed during churn: not acked, not in ledger
				}
				ledger[k].acked.Store(seq)
			}
		}(w)
	}

	// Readers: load the acked floor BEFORE the read; the quorum read must
	// return a sequence ≥ that floor.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := sim.RNG(seed, 0xfeed+uint64(r))
			for !stop.Load() {
				k := allKeys[int(rng.Uint64()%uint64(len(allKeys)))]
				floor := ledger[k].acked.Load()
				if floor == 0 {
					time.Sleep(time.Millisecond)
					continue
				}
				v, ok, err := cl.GetAt(k, Quorum)
				if err != nil {
					if !errors.Is(err, ErrQuorumUnavailable) && !errors.Is(err, ErrTimeout) {
						fail("reader %d: unexpected error class: %v", r, err)
						return
					}
					continue // level unreachable during churn: no answer, no staleness
				}
				if !ok {
					fail("reader %d: acked key %q missing at QUORUM (floor %d)", r, k, floor)
					return
				}
				got, perr := strconv.ParseUint(string(v), 10, 64)
				if perr != nil {
					fail("reader %d: undecodable value %q for %q", r, v, k)
					return
				}
				if got < floor {
					fail("reader %d: STALE READ of %q: got seq %d, acked floor %d", r, k, got, floor)
					return
				}
			}
		}(r)
	}

	// Churn: hard-crash and restart the storage nodes; at most one of the
	// two is ever down, so every replica group keeps a live majority.
	rng := sim.RNG(seed, 0xabba)
	for cycle := 0; cycle < 3 && !stop.Load(); cycle++ {
		time.Sleep(time.Duration(40+rng.Uint64()%60) * time.Millisecond)
		id := 3 + int(rng.Uint64()%2)
		c.Nodes[id].Crash()
		time.Sleep(time.Duration(30+rng.Uint64()%50) * time.Millisecond)
		c.Nodes[id] = restartNode(t, addrs, id, cfg)
	}

	time.Sleep(100 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	failMu.Lock()
	if failure != "" {
		failMu.Unlock()
		t.Fatal(failure)
	}
	failMu.Unlock()

	// Zero acked-write loss at QUORUM: every key's final acked sequence is
	// readable — no settling grace needed, the ack itself was the quorum.
	wrote := false
	for k, s := range ledger {
		floor := s.acked.Load()
		if floor == 0 {
			continue
		}
		wrote = true
		v, ok, err := cl.GetAt(k, Quorum)
		if err != nil || !ok {
			t.Fatalf("final read of %q: %v, %v", k, ok, err)
		}
		if got, _ := strconv.ParseUint(string(v), 10, 64); got < floor {
			t.Fatalf("acked write lost: %q at seq %d, acked %d", k, got, floor)
		}
	}
	if !wrote {
		t.Fatal("chaos run acked no quorum writes")
	}
}
