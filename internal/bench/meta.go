package bench

import "runtime"

// Meta records the configuration that produced a BENCH_*.json record, so
// cross-PR comparisons (scripts/bench_guard.sh) can refuse to compare runs
// that measured different things. Hardware-ish fields (gomaxprocs, num_cpu,
// go_version) are advisory — the guard warns on them; semantic fields
// (scale, shards, sync_policy) are hard mismatches.
type Meta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Scale      string `json:"scale"`
	Shards     int    `json:"shards"`
	SyncPolicy string `json:"sync_policy"`
}

// Sync policies a benchmark cluster can run under. These name what the
// emitting runner actually configured, not an lsm option verbatim.
const (
	// SyncInMemory: no DataDir, no WAL — nothing to sync.
	SyncInMemory = "in-memory"
	// SyncPeriodic: WAL-backed with the kvstore serving default (ack after
	// write(2), background fsync every 20ms).
	SyncPeriodic = "periodic-20ms"
)

func scaleName(s Scale) string {
	switch s {
	case Full:
		return "full"
	case Medium:
		return "medium"
	default:
		return "quick"
	}
}

// meta stamps the run environment plus the runner-specific semantic knobs.
// shards is the RESOLVED per-node shard count (after the 0 → GOMAXPROCS
// default), so records from different default environments compare honestly.
func (o Options) meta(shards int, syncPolicy string) Meta {
	return Meta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scale:      scaleName(o.Scale),
		Shards:     shards,
		SyncPolicy: syncPolicy,
	}
}
