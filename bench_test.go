// Top-level benchmark harness: one testing.B benchmark per table/figure of
// the paper. Each runs the corresponding experiment from internal/bench at
// Quick scale and reports its headline metrics via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates (a scaled version of) the paper's
// entire evaluation. The full-scale runs live behind `cmd/c3bench -scale
// full`; EXPERIMENTS.md records paper-vs-measured numbers.
package c3_test

import (
	"testing"

	"c3/internal/bench"
)

func runFigure(b *testing.B, id string) {
	rn, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var rep *bench.Report
	for i := 0; i < b.N; i++ {
		rep = rn.Run(bench.Options{Scale: bench.Quick, Seeds: 1})
	}
	for name, v := range rep.Metrics {
		b.ReportMetric(v, name)
	}
}

// Figure 1: LOR vs ideal allocation on the two-server burst example.
func BenchmarkFig01_LORvsIdeal(b *testing.B) { runFigure(b, "fig1") }

// Figure 2: Dynamic Snitching load oscillations.
func BenchmarkFig02_DSOscillation(b *testing.B) { runFigure(b, "fig2") }

// Figure 4: linear vs cubic scoring functions.
func BenchmarkFig04_ScoringFunctions(b *testing.B) { runFigure(b, "fig4") }

// Figure 5: cubic rate growth curve and its three regions.
func BenchmarkFig05_CubicCurve(b *testing.B) { runFigure(b, "fig5") }

// Figure 6: latency profile (mean/median/95/99/99.9), C3 vs DS, 3 workloads.
func BenchmarkFig06_LatencyProfile(b *testing.B) { runFigure(b, "fig6") }

// Figure 7: read throughput, C3 vs DS.
func BenchmarkFig07_Throughput(b *testing.B) { runFigure(b, "fig7") }

// Figure 8: load distribution on the most heavily utilized node.
func BenchmarkFig08_LoadConditioning(b *testing.B) { runFigure(b, "fig8") }

// Figure 9: per-node load versus time.
func BenchmarkFig09_LoadVsTime(b *testing.B) { runFigure(b, "fig9") }

// Figure 10: degradation when generators increase 120 → 210.
func BenchmarkFig10_HigherUtilization(b *testing.B) { runFigure(b, "fig10") }

// Figure 11: dynamic workload change (update-heavy wave joins mid-run).
func BenchmarkFig11_DynamicWorkload(b *testing.B) { runFigure(b, "fig11") }

// Figure 12: SSD-backed cluster.
func BenchmarkFig12_SSD(b *testing.B) { runFigure(b, "fig12") }

// §5 text: skewed (Zipfian) record sizes.
func BenchmarkExpSkewedRecords(b *testing.B) { runFigure(b, "skew") }

// §5 text: speculative retries atop DS degrade latency.
func BenchmarkExpSpeculativeRetry(b *testing.B) { runFigure(b, "spec") }

// Figure 13: sending-rate adaptation and backpressure trace.
func BenchmarkFig13_RateAdaptation(b *testing.B) { runFigure(b, "fig13") }

// Figure 14: fluctuation-interval sweep (§6 simulations).
func BenchmarkFig14_FluctuationSweep(b *testing.B) { runFigure(b, "fig14") }

// Figure 15: demand-skew sweep (§6 simulations).
func BenchmarkFig15_DemandSkew(b *testing.B) { runFigure(b, "fig15") }

// Ablation: scoring exponent b ∈ {1,2,3,4}.
func BenchmarkAblationExponent(b *testing.B) { runFigure(b, "ablate-b") }

// Ablation: concurrency compensation on/off.
func BenchmarkAblationConcurrencyComp(b *testing.B) { runFigure(b, "ablate-comp") }

// Ablation: ranking vs rate control.
func BenchmarkAblationRateControl(b *testing.B) { runFigure(b, "ablate-rate") }

// Ablation: the §6 dismissed selectors.
func BenchmarkAblationExtraSelectors(b *testing.B) { runFigure(b, "ablate-extra") }

// Ablation: the paper's literal rate-decrease rule vs the robust variant.
func BenchmarkAblationDecreaseRule(b *testing.B) { runFigure(b, "ablate-decrease") }

// Extension (§7): token-aware clients.
func BenchmarkExtTokenAware(b *testing.B) { runFigure(b, "ext-token") }

// Extension (§7): quorum reads / strong consistency.
func BenchmarkExtQuorumReads(b *testing.B) { runFigure(b, "ext-quorum") }

// Extension (§8): speculative retries atop C3.
func BenchmarkExtSpecRetryAtopC3(b *testing.B) { runFigure(b, "ext-spec") }

// Live TCP store: the network hot path's throughput/latency/alloc record
// (machine-readable trajectory in BENCH_kv.json via cmd/c3bench).
func BenchmarkKVStoreHotPath(b *testing.B) { runFigure(b, "kv") }
