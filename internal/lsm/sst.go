package lsm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"slices"
	"sort"
)

// SST file layout (little-endian):
//
//	data:   repeated [klen u32][key][vflag u32][value]
//	index:  [count u32] repeated [klen u32][key][off u64][vflag u32]
//	bloom:  [m u64][k u32][nwords u32][nwords × u64]
//	footer: [indexOff u64][bloomOff u64][dataCRC u32][metaCRC u32][magic u64]
//
// vflag carries the value length in its low 31 bits; bit 31 marks a
// tombstone (which stores no value bytes). off is the file offset of the
// value bytes. dataCRC covers the data section, metaCRC covers index+bloom.
// The file is written to a .tmp name, fsynced, atomically renamed into
// place, and the directory fsynced — a crash mid-write leaves only a .tmp
// orphan that Open deletes.

const (
	sstMagic     = uint64(0xc3d1_57ab_1e55_0001)
	sstFooterLen = 8 + 8 + 4 + 4 + 8
	tombstoneBit = uint32(1) << 31

	// sstCacheCap bounds the per-run retained data section: runs up to this
	// size serve reads from memory (the file is the recovery copy), larger
	// ones read through the file. Bounded by MaxRuns × sstCacheCap overall.
	sstCacheCap = 16 << 20
)

// writeSST persists the sorted keys (values via get; nil = tombstone) as SST
// file num in dir and returns the open file-backed run. The returned run
// retains keys and the freshly built bloom filter; values live on disk.
func writeSST(dir string, num uint64, keys []string, get func(string) []byte) (*run, error) {
	final := filepath.Join(dir, sstName(num))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	abort := func(err error) (*run, error) {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}

	bw := bufio.NewWriterSize(f, 1<<16)
	r := &run{
		keys:  keys,
		offs:  make([]int64, len(keys)),
		vlens: make([]uint32, len(keys)),
		bloom: NewBloom(len(keys)),
		num:   num,
	}
	var (
		off     int64
		dataCRC uint32
		scratch []byte
	)
	cache := make([]byte, 0, 1<<16)
	emit := func(b []byte) error {
		dataCRC = crc32.Update(dataCRC, crcTable, b)
		if cache != nil {
			if len(cache)+len(b) <= sstCacheCap {
				cache = append(cache, b...)
			} else {
				cache = nil // run too big to retain; reads go through the file
			}
		}
		n, err := bw.Write(b)
		off += int64(n)
		return err
	}
	for i, k := range keys {
		v := get(k)
		vflag := uint32(len(v))
		if v == nil {
			vflag = tombstoneBit
		}
		scratch = binary.LittleEndian.AppendUint32(scratch[:0], uint32(len(k)))
		scratch = append(scratch, k...)
		scratch = binary.LittleEndian.AppendUint32(scratch, vflag)
		if err := emit(scratch); err != nil {
			return abort(err)
		}
		r.offs[i] = off
		r.vlens[i] = vflag
		if err := emit(v); err != nil {
			return abort(err)
		}
		r.bytes += len(k) + len(v)
		r.bloom.Add(k)
	}

	indexOff := off
	meta := binary.LittleEndian.AppendUint32(nil, uint32(len(keys)))
	for i, k := range keys {
		meta = binary.LittleEndian.AppendUint32(meta, uint32(len(k)))
		meta = append(meta, k...)
		meta = binary.LittleEndian.AppendUint64(meta, uint64(r.offs[i]))
		meta = binary.LittleEndian.AppendUint32(meta, r.vlens[i])
	}
	bloomOff := indexOff + int64(len(meta))
	meta = r.bloom.appendTo(meta)
	metaCRC := crc32.Checksum(meta, crcTable)

	footer := binary.LittleEndian.AppendUint64(nil, uint64(indexOff))
	footer = binary.LittleEndian.AppendUint64(footer, uint64(bloomOff))
	footer = binary.LittleEndian.AppendUint32(footer, dataCRC)
	footer = binary.LittleEndian.AppendUint32(footer, metaCRC)
	footer = binary.LittleEndian.AppendUint64(footer, sstMagic)

	if _, err := bw.Write(meta); err != nil {
		return abort(err)
	}
	if _, err := bw.Write(footer); err != nil {
		return abort(err)
	}
	if err := bw.Flush(); err != nil {
		return abort(err)
	}
	if err := f.Sync(); err != nil {
		return abort(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		return nil, err
	}
	rf, err := os.Open(final)
	if err != nil {
		return nil, err
	}
	r.f = rf
	r.cache = cache
	return r, nil
}

// openSST opens SST file num in dir, loading its index and bloom filter into
// memory and verifying both checksums (the data CRC by a full scan — Open is
// the cold path where paying for integrity is cheap).
func openSST(dir string, num uint64) (*run, error) {
	path := filepath.Join(dir, sstName(num))
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	bad := func(format string, args ...any) (*run, error) {
		f.Close()
		return nil, fmt.Errorf("lsm: sst %s: %s", sstName(num), fmt.Sprintf(format, args...))
	}
	fi, err := f.Stat()
	if err != nil {
		return bad("stat: %v", err)
	}
	if fi.Size() < sstFooterLen {
		return bad("short file (%d bytes)", fi.Size())
	}
	footer := make([]byte, sstFooterLen)
	if _, err := f.ReadAt(footer, fi.Size()-sstFooterLen); err != nil {
		return bad("footer: %v", err)
	}
	if binary.LittleEndian.Uint64(footer[24:]) != sstMagic {
		return bad("bad magic")
	}
	indexOff := int64(binary.LittleEndian.Uint64(footer[0:]))
	bloomOff := int64(binary.LittleEndian.Uint64(footer[8:]))
	dataCRC := binary.LittleEndian.Uint32(footer[16:])
	metaCRC := binary.LittleEndian.Uint32(footer[20:])
	metaLen := fi.Size() - sstFooterLen - indexOff
	if indexOff < 0 || bloomOff < indexOff || metaLen < 0 {
		return bad("corrupt offsets")
	}

	data := make([]byte, indexOff)
	if _, err := f.ReadAt(data, 0); err != nil {
		return bad("data: %v", err)
	}
	if crc32.Checksum(data, crcTable) != dataCRC {
		return bad("data checksum mismatch")
	}
	var cache []byte
	if len(data) <= sstCacheCap {
		cache = data // already paid for by the CRC scan; keep serving from it
	}
	meta := make([]byte, metaLen)
	if _, err := f.ReadAt(meta, indexOff); err != nil {
		return bad("meta: %v", err)
	}
	if crc32.Checksum(meta, crcTable) != metaCRC {
		return bad("meta checksum mismatch")
	}

	index := meta[:bloomOff-indexOff]
	if len(index) < 4 {
		return bad("short index")
	}
	count := int(binary.LittleEndian.Uint32(index))
	index = index[4:]
	r := &run{
		keys:  make([]string, count),
		offs:  make([]int64, count),
		vlens: make([]uint32, count),
		num:   num,
		f:     f,
		cache: cache,
	}
	for i := 0; i < count; i++ {
		if len(index) < 4 {
			return bad("index truncated at entry %d", i)
		}
		klen := int(binary.LittleEndian.Uint32(index))
		if len(index) < 4+klen+12 {
			return bad("index truncated at entry %d", i)
		}
		r.keys[i] = string(index[4 : 4+klen])
		r.offs[i] = int64(binary.LittleEndian.Uint64(index[4+klen:]))
		r.vlens[i] = binary.LittleEndian.Uint32(index[4+klen+8:])
		r.bytes += klen + int(r.vlens[i]&^tombstoneBit)
		index = index[4+klen+12:]
	}
	if !sort.StringsAreSorted(r.keys) {
		return bad("index keys out of order")
	}
	bloom, err := bloomFromBytes(meta[bloomOff-indexOff:])
	if err != nil {
		return bad("bloom: %v", err)
	}
	r.bloom = bloom
	return r, nil
}

// appendValue appends the value of entry i to dst, reading from the SST file
// when the run is file-backed. ok=false reports an I/O failure (the caller
// treats the key as unreadable; the sticky error surfaces via Stats).
func (r *run) appendValue(dst []byte, i int) (_ []byte, ok bool) {
	if r.vals != nil {
		return append(dst, r.vals[i]...), true
	}
	n := int(r.vlens[i] &^ tombstoneBit)
	if n == 0 {
		return dst, true
	}
	if r.cache != nil {
		return append(dst, r.cache[r.offs[i]:r.offs[i]+int64(n)]...), true
	}
	at := len(dst)
	dst = slices.Grow(dst, n)[: at+n : at+n]
	if _, err := r.f.ReadAt(dst[at:], r.offs[i]); err != nil {
		return dst[:at], false
	}
	return dst, true
}

// tombstone reports whether entry i is a delete marker.
func (r *run) tombstone(i int) bool {
	if r.vals != nil {
		return r.vals[i] == nil
	}
	return r.vlens[i]&tombstoneBit != 0
}

// close releases the backing file of a file-backed run.
func (r *run) close() {
	if r.f != nil {
		r.f.Close()
	}
}

// appendTo serializes the filter.
func (b *Bloom) appendTo(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, b.m)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b.k))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.bits)))
	for _, w := range b.bits {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// bloomFromBytes deserializes a filter written by appendTo.
func bloomFromBytes(b []byte) (*Bloom, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("short bloom header")
	}
	m := binary.LittleEndian.Uint64(b)
	k := int(binary.LittleEndian.Uint32(b[8:]))
	n := int(binary.LittleEndian.Uint32(b[12:]))
	if k < 1 || k > 64 || n < 0 || len(b) < 16+8*n || m > uint64(n)*64 {
		return nil, fmt.Errorf("corrupt bloom header")
	}
	bits := make([]uint64, n)
	for i := range bits {
		bits[i] = binary.LittleEndian.Uint64(b[16+8*i:])
	}
	return &Bloom{bits: bits, m: m, k: k}, nil
}
