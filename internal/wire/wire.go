// Package wire is the binary protocol of the TCP key-value store: length-
// prefixed frames carrying read/write requests and responses. Every response
// piggybacks the C3 feedback fields — the server's pending-read count and its
// smoothed service time — exactly as §4 describes for the Cassandra
// implementation ("this information is piggybacked to the coordinator and
// serves as the feedback for the replica ranking").
//
// Frame layout (little endian):
//
//	uint32  payload length (excluding these 4 bytes)
//	uint8   message type
//	uint64  request id
//	...     type-specific payload
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Message types.
const (
	// MsgRead is a client→coordinator read.
	MsgRead uint8 = iota + 1
	// MsgReadInternal is a coordinator→replica read (served locally by
	// the replica rather than re-coordinated).
	MsgReadInternal
	MsgReadResp
	// MsgWrite is a client→coordinator write.
	MsgWrite
	// MsgWriteInternal is a coordinator→replica write.
	MsgWriteInternal
	MsgWriteResp
)

// MaxFrame bounds a frame payload; anything larger is a protocol error.
const MaxFrame = 16 << 20

// Limits within a frame.
const (
	MaxKeyLen   = 1 << 16
	MaxValueLen = 8 << 20
)

// ErrFrameTooLarge reports an oversized frame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")

// Feedback is the per-response server feedback (§3.1's q_s and 1/µ_s).
type Feedback struct {
	QueueSize float64
	ServiceNs int64
}

// ReadReq asks for a key. Internal requests are replica-local reads.
type ReadReq struct {
	ID  uint64
	Key string
}

// ReadResp answers a read.
type ReadResp struct {
	ID    uint64
	Found bool
	Value []byte
	FB    Feedback
}

// WriteReq stores a value.
type WriteReq struct {
	ID    uint64
	Key   string
	Value []byte
}

// WriteResp acknowledges a write.
type WriteResp struct {
	ID uint64
	FB Feedback
}

// Writer frames outgoing messages onto a buffered writer. Not safe for
// concurrent use; callers serialize.
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (w *Writer) flushFrame(typ uint8) error {
	if len(w.buf) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(w.buf)+1))
	hdr[4] = typ
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return err
	}
	return w.w.Flush()
}

func (w *Writer) reset() { w.buf = w.buf[:0] }

func (w *Writer) u64(v uint64)  { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *Writer) i64(v int64)   { w.u64(uint64(v)) }
func (w *Writer) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *Writer) u8(v uint8)    { w.buf = append(w.buf, v) }
func (w *Writer) str(s string) error {
	if len(s) > MaxKeyLen {
		return fmt.Errorf("wire: key length %d exceeds limit", len(s))
	}
	w.buf = binary.LittleEndian.AppendUint16(w.buf, uint16(len(s)))
	w.buf = append(w.buf, s...)
	return nil
}
func (w *Writer) bytes(b []byte) error {
	if len(b) > MaxValueLen {
		return fmt.Errorf("wire: value length %d exceeds limit", len(b))
	}
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(b)))
	w.buf = append(w.buf, b...)
	return nil
}

// WriteRead sends a read request frame of the given type (MsgRead or
// MsgReadInternal).
func (w *Writer) WriteRead(typ uint8, m ReadReq) error {
	w.reset()
	w.u64(m.ID)
	if err := w.str(m.Key); err != nil {
		return err
	}
	return w.flushFrame(typ)
}

// WriteReadResp sends a read response.
func (w *Writer) WriteReadResp(m ReadResp) error {
	w.reset()
	w.u64(m.ID)
	if m.Found {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.f64(m.FB.QueueSize)
	w.i64(m.FB.ServiceNs)
	if err := w.bytes(m.Value); err != nil {
		return err
	}
	return w.flushFrame(MsgReadResp)
}

// WriteWrite sends a write request frame of the given type (MsgWrite or
// MsgWriteInternal).
func (w *Writer) WriteWrite(typ uint8, m WriteReq) error {
	w.reset()
	w.u64(m.ID)
	if err := w.str(m.Key); err != nil {
		return err
	}
	if err := w.bytes(m.Value); err != nil {
		return err
	}
	return w.flushFrame(typ)
}

// WriteWriteResp sends a write acknowledgement.
func (w *Writer) WriteWriteResp(m WriteResp) error {
	w.reset()
	w.u64(m.ID)
	w.f64(m.FB.QueueSize)
	w.i64(m.FB.ServiceNs)
	return w.flushFrame(MsgWriteResp)
}

// Reader parses incoming frames. Not safe for concurrent use.
type Reader struct {
	r   *bufio.Reader
	buf []byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Next reads one frame, returning its type and payload. The payload slice is
// reused across calls.
func (r *Reader) Next() (uint8, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 1 || n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	typ := hdr[4]
	body := int(n) - 1
	if cap(r.buf) < body {
		r.buf = make([]byte, body)
	}
	r.buf = r.buf[:body]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return 0, nil, err
	}
	return typ, r.buf, nil
}

// decoder walks a payload with bounds checks.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) need(n int) bool {
	if d.err != nil || len(d.b) < n {
		d.err = errors.New("wire: truncated frame")
		return false
	}
	return true
}
func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}
func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *decoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}
func (d *decoder) str() string {
	if !d.need(2) {
		return ""
	}
	n := int(binary.LittleEndian.Uint16(d.b))
	d.b = d.b[2:]
	if !d.need(n) {
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}
func (d *decoder) bytes() []byte {
	if !d.need(4) {
		return nil
	}
	n := int(binary.LittleEndian.Uint32(d.b))
	d.b = d.b[4:]
	if n > MaxValueLen || !d.need(n) {
		d.err = errors.New("wire: bad value length")
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[:n])
	d.b = d.b[n:]
	return out
}

// ParseReadReq decodes a MsgRead/MsgReadInternal payload.
func ParseReadReq(b []byte) (ReadReq, error) {
	d := decoder{b: b}
	m := ReadReq{ID: d.u64(), Key: d.str()}
	return m, d.err
}

// ParseReadResp decodes a MsgReadResp payload.
func ParseReadResp(b []byte) (ReadResp, error) {
	d := decoder{b: b}
	m := ReadResp{ID: d.u64()}
	m.Found = d.u8() == 1
	m.FB.QueueSize = d.f64()
	m.FB.ServiceNs = d.i64()
	m.Value = d.bytes()
	return m, d.err
}

// ParseWriteReq decodes a MsgWrite/MsgWriteInternal payload.
func ParseWriteReq(b []byte) (WriteReq, error) {
	d := decoder{b: b}
	m := WriteReq{ID: d.u64(), Key: d.str()}
	m.Value = d.bytes()
	return m, d.err
}

// ParseWriteResp decodes a MsgWriteResp payload.
func ParseWriteResp(b []byte) (WriteResp, error) {
	d := decoder{b: b}
	m := WriteResp{ID: d.u64()}
	m.FB.QueueSize = d.f64()
	m.FB.ServiceNs = d.i64()
	return m, d.err
}
