package core

// Zero-allocation regression tests: the steady-state selection hot path —
// Rank, Best, Pick and OnResponse, for every ranker — must not allocate.
// A regression here silently reintroduces GC pressure on the exact path
// whose overhead C3 exists to remove, so these fail loudly.

import (
	"testing"
	"time"

	"c3/internal/ratelimit"
)

// warmRanker exercises every state path once so lazily-grown tables and
// scratch buffers reach steady state before the allocation count starts.
func warmRanker(r Ranker, group []ServerID) {
	dst := make([]ServerID, len(group))
	for i, s := range group {
		r.OnSend(s, int64(i))
		r.OnResponse(s, Feedback{QueueSize: float64(i + 1), ServiceTime: time.Millisecond},
			2*time.Millisecond, int64(i+1))
	}
	r.Rank(dst, group, 10)
	if bp, ok := r.(BestPicker); ok {
		bp.Best(group, 10)
	}
}

func assertZeroAllocs(t *testing.T, what string, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(200, f); avg != 0 {
		t.Errorf("%s: %.1f allocs/op in steady state, want 0", what, avg)
	}
}

func allocTestRankers() map[string]Ranker {
	oracleFn := func(s ServerID) (float64, float64) { return float64(s), 0.001 }
	return map[string]Ranker{
		"C3":   NewCubicRanker(RankerConfig{Seed: 1}),
		"LOR":  NewLOR(nil, 1),
		"RR":   NewRoundRobin(nil),
		"RND":  NewRandom(1),
		"2C":   NewTwoChoice(nil, 1),
		"LRT":  NewLeastResponseTime(nil, 0.9, 1),
		"WRND": NewWeightedRandom(nil, 0.9, 1),
		"DS":   NewDynamicSnitch(SnitchConfig{Seed: 1}),
		"ORA":  NewOracle(oracleFn, 1),
	}
}

func TestRankSteadyStateZeroAllocs(t *testing.T) {
	group := []ServerID{0, 1, 2}
	for name, r := range allocTestRankers() {
		warmRanker(r, group)
		dst := make([]ServerID, len(group))
		assertZeroAllocs(t, name+".Rank", func() {
			dst = r.Rank(dst, group, 20)
		})
	}
}

func TestBestSteadyStateZeroAllocs(t *testing.T) {
	group := []ServerID{0, 1, 2}
	for name, r := range allocTestRankers() {
		bp, ok := r.(BestPicker)
		if !ok {
			continue
		}
		warmRanker(r, group)
		assertZeroAllocs(t, name+".Best", func() {
			bp.Best(group, 20)
		})
	}
}

func TestOnResponseSteadyStateZeroAllocs(t *testing.T) {
	group := []ServerID{0, 1, 2}
	fb := Feedback{QueueSize: 2, ServiceTime: time.Millisecond}
	for name, r := range allocTestRankers() {
		warmRanker(r, group)
		assertZeroAllocs(t, name+".OnResponse", func() {
			r.OnSend(1, 30)
			r.OnResponse(1, fb, 2*time.Millisecond, 30)
		})
	}
}

func TestPickSteadyStateZeroAllocs(t *testing.T) {
	group := []ServerID{0, 1, 2}
	fb := Feedback{QueueSize: 1, ServiceTime: time.Millisecond}

	noRate := NewClient(NewCubicRanker(RankerConfig{Seed: 1}), ClientConfig{})
	for _, s := range group {
		noRate.OnResponse(s, fb, 2*time.Millisecond, 0)
	}
	noRate.Pick(group, 1)
	assertZeroAllocs(t, "Pick/noRate", func() {
		s, _, _ := noRate.Pick(group, 2)
		noRate.OnResponse(s, fb, 2*time.Millisecond, 2)
	})

	rated := NewClient(NewCubicRanker(RankerConfig{Seed: 1}), ClientConfig{
		RateControl: true,
		Rate:        ratelimit.Config{InitialRate: 1 << 30, MaxRate: 1 << 30},
	})
	for _, s := range group {
		rated.OnResponse(s, fb, 2*time.Millisecond, 0)
	}
	rated.Pick(group, 1)
	assertZeroAllocs(t, "Pick/rateControl", func() {
		s, ok, _ := rated.Pick(group, 3)
		if !ok {
			t.Fatal("pick failed under ample rate")
		}
		rated.OnResponse(s, fb, 2*time.Millisecond, 3)
	})

	// The all-over-rate path (rank + one-pass retry computation) must not
	// allocate either.
	starved := NewClient(NewRoundRobin(nil), ClientConfig{
		RateControl: true,
		Rate:        ratelimit.Config{InitialRate: 1, MinRate: 1},
	})
	for starvedPicks := 0; ; starvedPicks++ {
		if _, ok, _ := starved.Pick(group, 4); !ok {
			break
		}
		if starvedPicks > 10 {
			t.Fatal("limiter never exhausted")
		}
	}
	assertZeroAllocs(t, "Pick/overRate", func() {
		if _, ok, _ := starved.Pick(group, 4); ok {
			t.Fatal("expected over-rate pick to fail")
		}
	})
}

// TestPickBestMatchesRankHead pins the fast-path contract: with rate control
// off, Pick must return a replica that a full Rank could have put first —
// i.e. one of the minimum-score replicas. (The RNG streams differ, so we
// check score-minimality rather than literal equality.)
func TestPickBestMatchesRankHead(t *testing.T) {
	r := NewCubicRanker(RankerConfig{Seed: 1})
	c := NewClient(r, ClientConfig{})
	group := []ServerID{0, 1, 2}
	fb := func(s ServerID, q float64) {
		c.OnResponse(s, Feedback{QueueSize: q, ServiceTime: time.Millisecond}, 2*time.Millisecond, 0)
	}
	fb(0, 10)
	fb(1, 1)
	fb(2, 10)
	for i := 0; i < 20; i++ {
		s, ok, _ := c.Pick(group, int64(i))
		if !ok {
			t.Fatal("pick failed")
		}
		if s != 1 {
			t.Fatalf("pick = %d, want the unique minimum-score replica 1", s)
		}
		fb(1, 1) // keep outstanding balanced so 1 stays the minimum
	}
}
