package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// The write-ahead log is a sequence of self-delimiting records:
//
//	[payload len u32][crc32c(payload) u32][payload]
//	payload = [op u8][klen u32][key bytes]            op = walDel
//	        | [op u8][klen u32][key][vlen u32][value] op = walPut | walDelHint
//
// Everything is little-endian. A record is valid only when its CRC matches,
// so recovery can detect a torn tail (a crash mid-write) and truncate it.
// Records after a torn record were never acked — Put does not return until
// the group fsync covering its record succeeds — so truncation never drops
// an acknowledged write.
//
// walDelHint never appears in a store WAL: it exists for sidecar logs (the
// kvstore hint queues) whose tombstone records must carry a value section —
// the coordinator's version stamp rides in the payload, and a recovered
// delete hint without its version would replay unguarded.

const (
	walPut     byte = 1
	walDel     byte = 2
	walDelHint byte = 3
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed reports an operation against a store that was closed (or torn
// down by a simulated crash) before the operation could become durable.
var ErrClosed = errors.New("lsm: store closed")

func walName(n uint64) string { return fmt.Sprintf("%06d.wal", n) }
func sstName(n uint64) string { return fmt.Sprintf("%06d.sst", n) }

// syncDir fsyncs a directory so a just-created or just-renamed entry in it
// survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// walCommit is one commit group. Every record appended while the group was
// open becomes durable with the group's single write+fsync; all waiters are
// released together when done closes.
type walCommit struct {
	done chan struct{}
	err  error
}

// wal is the write-ahead log with group commit: appenders encode records
// into a shared buffer under mu and get back the open commit group; a single
// committer goroutine repeatedly steals the buffer, writes and fsyncs it as
// one unit, and releases the group. Concurrent writers therefore share one
// fsync instead of paying ~130µs each.
//
// Sync policy, from strictest to loosest:
//   - strict (syncEvery == 0, nosync false): every commit group fsyncs
//     before its waiters release. Acked writes survive power loss.
//   - periodic (syncEvery > 0): waiters release after write(2); a background
//     loop fsyncs at most every syncEvery. Acked writes survive process
//     death (the page cache outlives SIGKILL); power loss can take back at
//     most the last syncEvery window. This is Cassandra's default
//     commitlog_sync: periodic trade.
//   - nosync: never fsync except on clean close. Tests only.
type wal struct {
	dir       string
	nosync    bool
	syncEvery time.Duration

	mu      sync.Mutex
	f       *os.File
	num     uint64
	buf     []byte // encoded records not yet handed to the committer
	spare   []byte // recycled second buffer (ping-pong with buf)
	pending *walCommit
	werr    error // sticky I/O error: the log is wedged, fail all appends
	closed  bool

	kick  chan struct{} // cap 1: committer work signal
	quit  chan struct{}
	exit  chan struct{} // closed when the committer goroutine returns
	texit chan struct{} // closed when the periodic sync goroutine returns

	// ioMu serializes file writes/fsyncs against rotation closing the file.
	ioMu  sync.Mutex
	dirty bool // bytes written since the last fsync (guarded by ioMu)

	syncs atomic.Uint64 // fsync count (group commits)
	appds atomic.Uint64 // records appended
}

// openWAL opens (creating if needed) WAL file num for appending and starts
// the committer (plus the background sync loop when periodic).
func openWAL(dir string, num uint64, nosync bool, syncEvery time.Duration) (*wal, error) {
	f, err := os.OpenFile(filepath.Join(dir, walName(num)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w := &wal{
		dir:       dir,
		nosync:    nosync,
		syncEvery: syncEvery,
		f:         f,
		num:       num,
		kick:      make(chan struct{}, 1),
		quit:      make(chan struct{}),
		exit:      make(chan struct{}),
		texit:     make(chan struct{}),
	}
	go w.committer()
	if w.periodic() {
		go w.syncLoop()
	} else {
		close(w.texit)
	}
	return w, nil
}

func (w *wal) periodic() bool { return !w.nosync && w.syncEvery > 0 }

// appendWALRecord encodes one record onto b.
func appendWALRecord(b []byte, op byte, key string, val []byte) []byte {
	plen := 1 + 4 + len(key)
	if op != walDel {
		plen += 4 + len(val)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(plen))
	crcAt := len(b)
	b = append(b, 0, 0, 0, 0) // CRC placeholder
	b = append(b, op)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(key)))
	b = append(b, key...)
	if op != walDel {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(val)))
		b = append(b, val...)
	}
	crc := crc32.Checksum(b[crcAt+4:], crcTable)
	binary.LittleEndian.PutUint32(b[crcAt:], crc)
	return b
}

// add encodes a record into the open commit group and returns the group.
// The caller waits on it with waitCommit after releasing the store lock.
func (w *wal) add(op byte, key string, val []byte) (*walCommit, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, ErrClosed
	}
	if w.werr != nil {
		err := w.werr
		w.mu.Unlock()
		return nil, err
	}
	w.buf = appendWALRecord(w.buf, op, key, val)
	w.appds.Add(1)
	cw := w.openGroupLocked()
	w.mu.Unlock()
	w.kickCommitter()
	return cw, nil
}

// addBatch is add for a batch of records: all join one commit group, so a
// MultiPut pays one fsync regardless of size. dels marks records to log as
// tombstones (nil means all puts).
func (w *wal) addBatch(keys []string, vals [][]byte, dels []bool) (*walCommit, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, ErrClosed
	}
	if w.werr != nil {
		err := w.werr
		w.mu.Unlock()
		return nil, err
	}
	for i := range keys {
		op := walPut
		if dels != nil && dels[i] {
			op = walDel
		}
		w.buf = appendWALRecord(w.buf, op, keys[i], vals[i])
	}
	w.appds.Add(uint64(len(keys)))
	cw := w.openGroupLocked()
	w.mu.Unlock()
	w.kickCommitter()
	return cw, nil
}

func (w *wal) openGroupLocked() *walCommit {
	if w.pending == nil {
		w.pending = &walCommit{done: make(chan struct{})}
	}
	return w.pending
}

func (w *wal) kickCommitter() {
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// waitCommit blocks until the record's commit group is durable.
func waitCommit(cw *walCommit) error {
	if cw == nil {
		return nil
	}
	<-cw.done
	return cw.err
}

func (w *wal) committer() {
	defer close(w.exit)
	for {
		select {
		case <-w.kick:
			w.commitOnce()
		case <-w.quit:
			w.commitOnce() // final drain
			return
		}
	}
}

// commitOnce steals the current buffer and group, writes and fsyncs the
// bytes, and releases every waiter in the group.
func (w *wal) commitOnce() {
	w.mu.Lock()
	buf, cw, f := w.buf, w.pending, w.f
	if len(buf) == 0 && cw == nil {
		w.mu.Unlock()
		return
	}
	w.buf, w.spare = w.spare[:0:cap(w.spare)], nil
	w.pending = nil
	err := w.werr
	w.mu.Unlock()

	if err == nil {
		w.ioMu.Lock()
		if len(buf) > 0 {
			_, err = f.Write(buf)
			w.dirty = w.dirty || err == nil
		}
		if err == nil && !w.nosync && !w.periodic() {
			//lint:allow lockscope ioMu is the WAL's dedicated I/O lock; fsync under it is the group-commit design — the hot-path mu was released above
			err = f.Sync()
			w.dirty = err != nil
			w.syncs.Add(1)
		}
		w.ioMu.Unlock()
	}

	w.mu.Lock()
	if cap(buf) > cap(w.spare) {
		w.spare = buf[:0]
	}
	if err != nil && w.werr == nil {
		w.werr = err
	}
	w.mu.Unlock()
	if cw != nil {
		cw.err = err
		close(cw.done)
	}
}

// syncLoop is the periodic-mode background fsync: at most one fsync per
// syncEvery, and only when bytes landed since the previous one.
func (w *wal) syncLoop() {
	defer close(w.texit)
	t := time.NewTicker(w.syncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := w.fsyncNow(); err != nil {
				w.mu.Lock()
				if w.werr == nil {
					w.werr = err
				}
				w.mu.Unlock()
			}
		case <-w.quit:
			return
		}
	}
}

// fsyncNow flushes the file if anything was written since the last fsync.
func (w *wal) fsyncNow() error {
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	if !w.dirty {
		return nil
	}
	//lint:allow lockscope ioMu exists to serialize exactly this fsync against group commits; appenders never block on it
	err := w.f.Sync()
	if err == nil {
		w.dirty = false
		w.syncs.Add(1)
	}
	return err
}

// sync blocks until every record appended so far is durable on disk — a real
// fsync barrier regardless of sync policy (flush uses it before cutting the
// WAL over, so the SST+manifest can safely supersede the old log). It always
// opens (or joins) a group and waits: the committer processes groups in
// order, so waiting on the newest group implies all earlier ones completed.
func (w *wal) sync() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.werr != nil {
		err := w.werr
		w.mu.Unlock()
		return err
	}
	cw := w.openGroupLocked()
	w.mu.Unlock()
	w.kickCommitter()
	if err := waitCommit(cw); err != nil {
		return err
	}
	if w.periodic() {
		return w.fsyncNow()
	}
	return nil
}

// rotate switches appends to a fresh WAL file. The caller must have drained
// the log with sync() and hold the store lock so no append races the switch.
func (w *wal) rotate(num uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, walName(num)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.mu.Lock()
	w.ioMu.Lock()
	old := w.f
	w.f, w.num = f, num
	w.dirty = false // the old file was drained with sync() before rotating
	w.ioMu.Unlock()
	w.mu.Unlock()
	return old.Close()
}

// close drains outstanding records, fsyncs, and closes the file.
func (w *wal) close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.quit) // committer drains buf+pending, then exits
	<-w.exit
	<-w.texit
	err := w.werr
	if serr := w.f.Sync(); err == nil {
		err = serr // final fsync even in nosync mode: clean exits keep the tail
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// crash abandons the log without syncing: in-flight commit groups fail with
// ErrClosed so no writer blocks forever, buffered records are dropped, and
// the file is closed. This is the in-process stand-in for SIGKILL.
func (w *wal) crash() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	if w.werr == nil {
		w.werr = ErrClosed
	}
	cw := w.pending
	w.pending = nil
	w.buf = w.buf[:0]
	w.mu.Unlock()
	if cw != nil {
		cw.err = ErrClosed
		close(cw.done)
	}
	close(w.quit)
	<-w.exit
	<-w.texit
	w.ioMu.Lock()
	w.f.Close()
	w.ioMu.Unlock()
}

// replayWAL reads records from path in order, calling apply for each valid
// one, and returns the length of the valid prefix. Parsing stops — without
// error — at the first torn or corrupt record: bytes past it were never
// acknowledged (ack happens only after fsync), so dropping them is safe.
func replayWAL(path string, apply func(op byte, key string, val []byte)) (validLen int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	off := 0
	for {
		if len(data)-off < 8 {
			return int64(off), nil
		}
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if plen < 5 || len(data)-off-8 < plen {
			return int64(off), nil
		}
		payload := data[off+8 : off+8+plen]
		if crc32.Checksum(payload, crcTable) != crc {
			return int64(off), nil
		}
		op := payload[0]
		klen := int(binary.LittleEndian.Uint32(payload[1:]))
		if 5+klen > len(payload) {
			return int64(off), nil
		}
		key := string(payload[5 : 5+klen])
		switch op {
		case walPut, walDelHint:
			if 5+klen+4 > len(payload) {
				return int64(off), nil
			}
			vlen := int(binary.LittleEndian.Uint32(payload[5+klen:]))
			if 9+klen+vlen != len(payload) {
				return int64(off), nil
			}
			val := make([]byte, vlen)
			copy(val, payload[9+klen:])
			apply(op, key, val)
		case walDel:
			if 5+klen != len(payload) {
				return int64(off), nil
			}
			apply(walDel, key, nil)
		default:
			return int64(off), nil
		}
		off += 8 + plen
	}
}

// truncateWAL cuts path down to validLen, discarding a torn tail so future
// appends cannot interleave with garbage.
func truncateWAL(path string, validLen int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if fi.Size() == validLen {
		return nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	err = f.Truncate(validLen)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
