package ring

import (
	"math"
	"testing"

	"c3/internal/core"
	"c3/internal/sim"
	"c3/internal/workload"
)

// sampleTokens draws a deterministic spread of tokens covering the space.
func sampleTokens(n int) []int64 {
	out := make([]int64, n)
	step := uint64(math.MaxUint64) / uint64(n)
	for i := range out {
		out[i] = math.MinInt64 + int64(uint64(i)*step) + int64(i*7919)
	}
	return out
}

// checkOwners asserts the core ring invariant at every sampled token: exactly
// RF distinct owners, all of them members, deterministic across repeated
// lookups.
func checkOwners(t *testing.T, v *Versioned, samples []int64) {
	t.Helper()
	members := map[core.ServerID]bool{}
	for _, id := range v.Members() {
		members[id] = true
	}
	for _, tok := range samples {
		a := v.Ring().ReplicasForToken(tok, nil)
		b := v.Ring().ReplicasForToken(tok, nil)
		if len(a) != v.RF() {
			t.Fatalf("epoch %d: token %d has %d owners, want RF=%d", v.Epoch(), tok, len(a), v.RF())
		}
		seen := map[core.ServerID]bool{}
		for i, s := range a {
			if !members[s] {
				t.Fatalf("epoch %d: token %d owned by non-member %d", v.Epoch(), tok, s)
			}
			if seen[s] {
				t.Fatalf("epoch %d: token %d owners %v contain a duplicate", v.Epoch(), tok, a)
			}
			seen[s] = true
			if b[i] != s {
				t.Fatalf("epoch %d: ReplicasForToken not deterministic at %d", v.Epoch(), tok)
			}
		}
	}
}

// TestVersionedRandomChurnInvariants drives random join/leave sequences over
// random initial sizes and RFs, asserting after every epoch: RF distinct
// member owners per token, deterministic lookups, and that a rebuilt ring
// from the same (id, token) pairs answers identically (determinism across
// epochs and across the wire).
func TestVersionedRandomChurnInvariants(t *testing.T) {
	samples := sampleTokens(256)
	for trial := 0; trial < 20; trial++ {
		rng := sim.RNG(42, uint64(trial))
		rf := 1 + int(rng.Uint64()%3)
		n := rf + int(rng.Uint64()%8)
		v := NewVersioned(n, rf)
		nextID := v.MaxID() + 1
		checkOwners(t, v, samples)
		for step := 0; step < 12; step++ {
			var err error
			var nv *Versioned
			if rng.Float64() < 0.5 || len(v.Members()) <= v.RF() {
				nv, err = v.AddNode(nextID)
				nextID++
			} else {
				victim := v.Members()[int(rng.Uint64()%uint64(len(v.Members())))]
				nv, err = v.RemoveNode(victim)
			}
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if nv.Epoch() != v.Epoch()+1 {
				t.Fatalf("epoch did not advance: %d -> %d", v.Epoch(), nv.Epoch())
			}
			checkOwners(t, nv, samples)

			// Determinism across epochs: rebuilding the topology from its
			// (id, token) snapshot — what a wire announcement carries — must
			// reproduce every replica set bit for bit.
			rebuilt, err := FromNodes(nv.Epoch(), nv.Members(), nv.tokens, nv.RF())
			if err != nil {
				t.Fatalf("rebuild: %v", err)
			}
			for _, tok := range samples {
				a := nv.Ring().ReplicasForToken(tok, nil)
				b := rebuilt.Ring().ReplicasForToken(tok, nil)
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("rebuilt ring diverges at token %d: %v vs %v", tok, a, b)
					}
				}
			}
			v = nv
		}
	}
}

// TestVersionedJoinMovementMinimal asserts a single join moves only the
// bisected arc: the fraction of token space whose PRIMARY owner changes must
// be ≈ 1/(2n) (half the widest arc) and never more than 2/n even after the
// ring has drifted from equal spacing.
func TestVersionedJoinMovementMinimal(t *testing.T) {
	samples := sampleTokens(8192)
	for _, n := range []int{3, 5, 8, 16, 31} {
		v := NewVersioned(n, 1)
		id := v.MaxID() + 1
		for join := 0; join < 4; join++ {
			cur := len(v.Members())
			nv, err := v.AddNode(id)
			if err != nil {
				t.Fatal(err)
			}
			id++
			moved := 0
			for _, tok := range samples {
				if v.Ring().ReplicasForToken(tok, nil)[0] != nv.Ring().ReplicasForToken(tok, nil)[0] {
					moved++
				}
			}
			frac := float64(moved) / float64(len(samples))
			if frac <= 0 {
				t.Fatalf("n=%d join %d: no keys moved", cur, join)
			}
			if frac > 2/float64(cur) {
				t.Fatalf("n=%d join %d: moved %.3f of primary space, want ≤ %.3f",
					cur, join, frac, 2/float64(cur))
			}
			v = nv
		}
	}
}

// TestVersionedLeaveMovementMinimal asserts a removal re-homes only the
// leaver's arc: the moved primary fraction is the leaver's ownership share,
// bounded by the widest arc (≤ 2/n for rings grown by arc bisection).
func TestVersionedLeaveMovementMinimal(t *testing.T) {
	samples := sampleTokens(8192)
	v := NewVersioned(10, 1)
	rng := sim.RNG(7, 7)
	for leave := 0; leave < 4; leave++ {
		n := len(v.Members())
		victim := v.Members()[int(rng.Uint64()%uint64(n))]
		nv, err := v.RemoveNode(victim)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, tok := range samples {
			if v.Ring().ReplicasForToken(tok, nil)[0] != nv.Ring().ReplicasForToken(tok, nil)[0] {
				moved++
			}
		}
		frac := float64(moved) / float64(len(samples))
		if frac <= 0 || frac > 2/float64(n) {
			t.Fatalf("n=%d leave %d: moved %.3f of primary space, want (0, %.3f]",
				n, leave, frac, 2/float64(n))
		}
		v = nv
	}
}

// TestVersionedDiffMatchesOwnership cross-checks Diff against brute force:
// a sampled token's replica set changed iff it falls inside a reported
// change, and the reported Old/New owner lists match the rings exactly.
func TestVersionedDiffMatchesOwnership(t *testing.T) {
	samples := sampleTokens(4096)
	rng := sim.RNG(3, 9)
	v := NewVersioned(6, 3)
	nextID := v.MaxID() + 1
	for step := 0; step < 10; step++ {
		var nv *Versioned
		var err error
		if rng.Float64() < 0.5 || len(v.Members()) <= v.RF() {
			nv, err = v.AddNode(nextID)
			nextID++
		} else {
			nv, err = v.RemoveNode(v.Members()[int(rng.Uint64()%uint64(len(v.Members())))])
		}
		if err != nil {
			t.Fatal(err)
		}
		changes := v.Diff(nv)
		for _, tok := range samples {
			oldOwners := v.Ring().ReplicasForToken(tok, nil)
			newOwners := nv.Ring().ReplicasForToken(tok, nil)
			changed := false
			for i := range oldOwners {
				if oldOwners[i] != newOwners[i] {
					changed = true
					break
				}
			}
			var in *Change
			for i := range changes {
				if changes[i].Contains(tok) {
					if in != nil {
						t.Fatalf("token %d in two diff ranges", tok)
					}
					in = &changes[i]
				}
			}
			if changed != (in != nil) {
				t.Fatalf("step %d token %d: changed=%v but diff coverage=%v", step, tok, changed, in != nil)
			}
			if in != nil {
				for i := range oldOwners {
					if in.Old[i] != oldOwners[i] || in.New[i] != newOwners[i] {
						t.Fatalf("token %d: diff owners %v->%v, ring says %v->%v",
							tok, in.Old, in.New, oldOwners, newOwners)
					}
				}
			}
		}
		v = nv
	}
}

// TestVersionedDiffIdentity asserts an unchanged topology diffs empty.
func TestVersionedDiffIdentity(t *testing.T) {
	v := NewVersioned(5, 3)
	if d := v.Diff(v); len(d) != 0 {
		t.Fatalf("self-diff not empty: %v", d)
	}
}

// TestVersionedMembershipErrors pins the error cases.
func TestVersionedMembershipErrors(t *testing.T) {
	v := NewVersioned(3, 3)
	if _, err := v.AddNode(0); err != ErrMember {
		t.Fatalf("AddNode(existing) = %v, want ErrMember", err)
	}
	if _, err := v.RemoveNode(99); err != ErrNotMember {
		t.Fatalf("RemoveNode(stranger) = %v, want ErrNotMember", err)
	}
	if _, err := v.RemoveNode(0); err != ErrBelowRF {
		t.Fatalf("RemoveNode below RF = %v, want ErrBelowRF", err)
	}
	v2, err := v.AddNode(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2.RemoveNode(3); err != nil {
		t.Fatalf("RemoveNode at RF+1: %v", err)
	}
}

// TestVersionedKeyRouting sanity-checks the workload-key path end to end:
// keys route to members, and after a join only keys in the diff move.
func TestVersionedKeyRouting(t *testing.T) {
	v := NewVersioned(5, 3)
	nv, err := v.AddNode(5)
	if err != nil {
		t.Fatal(err)
	}
	changes := v.Diff(nv)
	rng := sim.RNG(11, 4)
	for i := 0; i < 2000; i++ {
		key := []byte(workload.Key(rng.Uint64()))
		tok := Token(key)
		oldOwners := v.Ring().ReplicasForToken(tok, nil)
		newOwners := nv.Ring().ReplicasForToken(tok, nil)
		moved := false
		for i := range oldOwners {
			if oldOwners[i] != newOwners[i] {
				moved = true
				break
			}
		}
		inDiff := false
		for _, c := range changes {
			if c.Contains(tok) {
				inDiff = true
				break
			}
		}
		if moved != inDiff {
			t.Fatalf("key %q: moved=%v inDiff=%v", key, moved, inDiff)
		}
	}
}
