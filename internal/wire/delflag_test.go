package wire

import (
	"bytes"
	"testing"
)

// TestWriteReqDelFlagRoundtrip pins the flags byte: Del survives
// encode→decode in both states, and the byte is mandatory (old frames
// without it no longer parse — the format changed with the flag).
func TestWriteReqDelFlagRoundtrip(t *testing.T) {
	for _, del := range []bool{false, true} {
		in := WriteReq{ID: 7, CL: 1, Version: 42, Key: "k", Value: []byte("v"), Del: del}
		if del {
			in.Value = nil
		}
		frame, err := AppendWriteReq(nil, MsgWrite, in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := ParseWriteReq(frame[5:])
		if err != nil {
			t.Fatalf("del=%v: %v", del, err)
		}
		if out.Del != del || out.ID != 7 || out.CL != 1 || out.Version != 42 || out.Key != "k" {
			t.Fatalf("del=%v: round-trip = %+v", del, out)
		}
		if !del && !bytes.Equal(out.Value, []byte("v")) {
			t.Fatalf("value = %q", out.Value)
		}
	}
}

// TestWriteReqUnknownFlagsRejected pins forward-compatibility: a frame with
// flag bits this version does not know must fail parse, not silently drop
// semantics (a Del bit misread as a put would resurrect the key).
func TestWriteReqUnknownFlagsRejected(t *testing.T) {
	frame, err := AppendWriteReq(nil, MsgWrite, WriteReq{ID: 1, Key: "k", Value: []byte("v")})
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[5:]
	// flags byte sits after id (8) + cl (1) + version (8).
	payload[17] |= 0x80
	if _, err := ParseWriteReq(payload); err == nil {
		t.Fatal("unknown flag bit accepted")
	}
}

// TestReadRespEmptyValueFound pins miss-vs-empty at the wire layer: a found
// response with a zero-length value is distinct from a not-found response.
func TestReadRespEmptyValueFound(t *testing.T) {
	frame, err := AppendReadResp(nil, ReadResp{ID: 3, Found: true, Version: 5, Value: nil})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseReadResp(frame[5:])
	if err != nil {
		t.Fatal(err)
	}
	if !out.Found || len(out.Value) != 0 {
		t.Fatalf("found-empty = %+v", out)
	}
	miss, err := AppendReadResp(nil, ReadResp{ID: 4, Found: false})
	if err != nil {
		t.Fatal(err)
	}
	mout, err := ParseReadResp(miss[5:])
	if err != nil {
		t.Fatal(err)
	}
	if mout.Found {
		t.Fatal("miss decoded as found")
	}
}
