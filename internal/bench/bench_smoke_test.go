package bench

import "testing"

// TestAllRunnersQuick executes every experiment at Quick scale: each must
// produce lines and headline metrics without panicking.
func TestAllRunnersQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every simulation experiment; skipped under -short")
	}
	o := Options{Scale: Quick, Seeds: 1}
	for _, rn := range All() {
		rn := rn
		t.Run(rn.ID, func(t *testing.T) {
			t.Parallel()
			rep := rn.Run(o)
			if rep == nil || len(rep.Lines) == 0 {
				t.Fatalf("%s produced no output", rn.ID)
			}
			if rep.Failed {
				t.Fatalf("%s failed: %v", rn.ID, rep.Lines)
			}
			if len(rep.Metrics) == 0 {
				t.Fatalf("%s recorded no headline metrics", rn.ID)
			}
			if rep.String() == "" {
				t.Fatal("empty render")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig14"); !ok {
		t.Fatal("fig14 not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus id found")
	}
}

func TestParseScale(t *testing.T) {
	for s, want := range map[string]Scale{"quick": Quick, "medium": Medium, "full": Full, "": Medium} {
		got, err := ParseScale(s)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Fatal("bogus scale accepted")
	}
}
