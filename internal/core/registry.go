package core

import (
	"slices"
	"sync"
	"sync/atomic"
)

// maxDirect bounds the registry's direct-lookup table: server IDs in
// [0, maxDirect) resolve through a flat slice; anything outside (negative or
// huge IDs) falls back to a map. 2^20 entries = 4 MB worst case, far above
// any realistic cluster size.
const maxDirect = 1 << 20

// regTable is one immutable snapshot of the intern tables. Interning installs
// a fresh snapshot (copy-on-write), so readers never take a lock: the hot
// path is an atomic load plus a bounds-checked slice index.
type regTable struct {
	direct []int32            // direct[id] = index+1 for small non-negative ids; 0 = unknown
	sparse map[ServerID]int32 // index for ids outside [0, len(direct))
	ids    []ServerID         // index -> id

	groups    [][]ServerID // group index -> member ids
	groupHash map[uint64][]int32
}

func (t *regTable) lookup(s ServerID) (int, bool) {
	if t == nil {
		return 0, false
	}
	if uint32(s) < uint32(len(t.direct)) {
		if v := t.direct[s]; v != 0 {
			return int(v - 1), true
		}
		return 0, false
	}
	v, ok := t.sparse[s]
	return int(v), ok
}

// Registry interns ServerIDs (and replica groups) to dense small-int indices.
// Every ranker and the Client's limiter table key their per-server state by
// these indices, so steady-state selection never touches a hash map: state
// lives in flat slices and lookup is one array read.
//
// Interning is idempotent and concurrency-safe; an ID keeps its index for the
// registry's lifetime. Substrates construct one Registry per cluster view,
// pre-register every server at build time, and share it across the rankers
// and clients of that view — after warmup the registry is effectively
// read-only and lookups are lock-free.
type Registry struct {
	mu sync.Mutex
	t  atomic.Pointer[regTable]
}

// NewRegistry returns a registry with ids pre-interned in argument order
// (so ids[i] gets dense index i).
func NewRegistry(ids ...ServerID) *Registry {
	r := &Registry{}
	r.InternAll(ids...)
	return r
}

// InternAll interns ids in order under a single copy-on-write step — O(N)
// where per-id Index calls would clone the table N times. Substrates use it
// to pre-register a whole cluster view at build time.
func (r *Registry) InternAll(ids ...ServerID) {
	if len(ids) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	nt := cloneTable(r.t.Load())
	changed := false
	for _, s := range ids {
		if _, ok := nt.lookup(s); ok {
			continue
		}
		nt.insert(s)
		changed = true
	}
	if changed {
		r.t.Store(nt)
	}
}

// Index interns s, returning its dense index. Known IDs resolve lock-free.
func (r *Registry) Index(s ServerID) int {
	if i, ok := r.t.Load().lookup(s); ok {
		return i
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lockedIntern(s)
}

// Lookup reports the dense index of s without interning it.
func (r *Registry) Lookup(s ServerID) (int, bool) {
	return r.t.Load().lookup(s)
}

// ID reports the ServerID interned at index idx. It panics when idx has not
// been assigned.
func (r *Registry) ID(idx int) ServerID {
	return r.t.Load().ids[idx]
}

// Len reports how many ServerIDs have been interned.
func (r *Registry) Len() int {
	t := r.t.Load()
	if t == nil {
		return 0
	}
	return len(t.ids)
}

// lockedIntern interns s (idempotently) with r.mu held, installing a
// copy-on-write snapshot, and returns its index.
func (r *Registry) lockedIntern(s ServerID) int {
	old := r.t.Load()
	if i, ok := old.lookup(s); ok { // re-check: raced with another intern
		return i
	}
	nt := cloneTable(old)
	idx := nt.insert(s)
	r.t.Store(nt)
	return int(idx)
}

// insert appends s (assumed absent) to the table and returns its new index.
func (t *regTable) insert(s ServerID) int32 {
	t.ids = append(t.ids, s)
	idx := int32(len(t.ids) - 1)
	if s >= 0 && int64(s) < maxDirect {
		if int(s) >= len(t.direct) {
			// Clamp at maxDirect so len(direct) never covers ids that
			// intern into the sparse map — lookup's bounds check is the
			// direct/sparse boundary.
			grownDirect := make([]int32, min(maxDirect, max(int(s)+1, 2*len(t.direct))))
			copy(grownDirect, t.direct)
			t.direct = grownDirect
		}
		t.direct[s] = idx + 1
	} else {
		if t.sparse == nil {
			t.sparse = make(map[ServerID]int32, 1)
		}
		t.sparse[s] = idx
	}
	return idx
}

func cloneTable(old *regTable) *regTable {
	nt := &regTable{}
	if old == nil {
		return nt
	}
	nt.ids = append([]ServerID(nil), old.ids...)
	nt.direct = append([]int32(nil), old.direct...)
	nt.groups = append([][]ServerID(nil), old.groups...)
	if len(old.sparse) > 0 {
		nt.sparse = make(map[ServerID]int32, len(old.sparse))
		for k, v := range old.sparse {
			nt.sparse[k] = v
		}
	}
	if len(old.groupHash) > 0 {
		nt.groupHash = make(map[uint64][]int32, len(old.groupHash))
		for k, v := range old.groupHash {
			nt.groupHash[k] = v
		}
	}
	return nt
}

// groupKey hashes a replica group's members in order (FNV-1a over the id
// words). Order matters: the same members in a different order are a
// different group, matching how substrates address replica groups.
func groupKey(group []ServerID) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, s := range group {
		h ^= uint64(uint32(s))
		h *= prime64
	}
	return h
}

func (t *regTable) lookupGroup(h uint64, group []ServerID) (int, bool) {
	if t == nil {
		return 0, false
	}
	for _, gi := range t.groupHash[h] {
		if slices.Equal(t.groups[gi], group) {
			return int(gi), true
		}
	}
	return 0, false
}

// GroupIndex interns the replica group, returning its dense group index.
// Hash collisions are resolved by exact member comparison, so distinct groups
// always get distinct indices. Known groups resolve lock-free with zero
// allocations.
func (r *Registry) GroupIndex(group []ServerID) int {
	h := groupKey(group)
	if gi, ok := r.t.Load().lookupGroup(h, group); ok {
		return gi
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.t.Load()
	if gi, ok := old.lookupGroup(h, group); ok {
		return gi
	}
	nt := cloneTable(old)
	nt.groups = append(nt.groups, append([]ServerID(nil), group...))
	gi := int32(len(nt.groups) - 1)
	if nt.groupHash == nil {
		nt.groupHash = make(map[uint64][]int32, 1)
	}
	nt.groupHash[h] = append(append([]int32(nil), nt.groupHash[h]...), gi)
	// Intern the members too, so rankers sharing the registry see them.
	for _, s := range group {
		if _, ok := nt.lookup(s); !ok {
			nt.insert(s)
		}
	}
	r.t.Store(nt)
	return int(gi)
}

// Groups reports how many replica groups have been interned.
func (r *Registry) Groups() int {
	t := r.t.Load()
	if t == nil {
		return 0
	}
	return len(t.groups)
}
