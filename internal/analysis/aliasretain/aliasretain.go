// Package aliasretain enforces the internal/wire zero-copy ownership
// contract (internal/wire/wire.go, "Ownership"): payloads returned by
// Reader.Next and the string/[]byte fields of Parse* results alias the
// connection's frame buffer and are valid only until the next Next call.
// Storing such a value into a heap structure, sending it on a channel, or
// capturing it in a goroutine publishes a pointer into a buffer that is
// about to be overwritten — silent data corruption under load, invisible to
// the race detector because the reuse is same-goroutine.
//
// The analyzer runs a linear, field-sensitive taint scan over each function
// body. Taint enters via wire Parse*/Next results and rides the documented
// reference leaves (string and []byte fields). It is laundered by the copy
// idioms the contract names — append(dst, v...), string(b), []byte(s),
// strings.Clone — and, conservatively, by passing through any other call
// (callees are assumed to honor the contract themselves). Branch merging is
// textual: a kill inside one branch clears the taint for the code below,
// which can miss a leak on the other branch but never invents one.
package aliasretain

import (
	"go/ast"
	"go/types"
	"strings"

	"c3/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "aliasretain",
	Doc: "zero-copy values decoded from internal/wire must not be stored to " +
		"heap structures, sent on channels, or captured by goroutines " +
		"without an explicit copy",
	Run: run,
}

// taint maps a local variable to its set of tainted reference-leaf paths
// ("" for a whole []byte, "Value" for a struct field, "FB.Raw" nested).
type taint map[*types.Var]map[string]bool

func run(pass *analysis.Pass) error {
	for _, b := range analysis.Bodies(pass.Files) {
		s := &scan{pass: pass, tt: make(taint)}
		s.block(b.Body)
	}
	return nil
}

type scan struct {
	pass *analysis.Pass
	tt   taint
}

func (s *scan) info() *types.Info { return s.pass.TypesInfo }

// block walks statements in source order, updating taint and reporting
// sinks. Function literals are separate bodies except for the capture check
// at go statements.
func (s *scan) block(n ast.Node) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // its own body; see run
		case *ast.AssignStmt:
			s.assign(x)
			return false
		case *ast.SendStmt:
			if leaves := s.taintOf(x.Value); len(leaves) > 0 {
				s.pass.Reportf(x.Value.Pos(),
					"sending frame-aliasing wire data on a channel; copy it first (append/strings.Clone)")
			}
			return false
		case *ast.GoStmt:
			s.goStmt(x)
			return false
		case *ast.RangeStmt:
			// `for _, v := range tainted.Values` taints v.
			if leaves := s.taintOf(x.X); len(leaves) > 0 && x.Value != nil {
				if v := s.lhsVar(x.Value); v != nil {
					s.tt[v] = map[string]bool{"": true}
				}
			}
			return true
		}
		return true
	})
}

// assign is the heart of the scan: sources, kills, propagation, heap-store
// sinks.
func (s *scan) assign(a *ast.AssignStmt) {
	// Multi-value source: m, err := wire.ParseX(b) / typ, payload, err := r.Next().
	if len(a.Rhs) == 1 {
		if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok {
			if idx, leaves := s.source(call); idx >= 0 && idx < len(a.Lhs) {
				for i, lhs := range a.Lhs {
					v := s.lhsVar(lhs)
					if v == nil {
						continue
					}
					if i == idx {
						s.tt[v] = leaves
					} else {
						delete(s.tt, v)
					}
				}
				return
			}
		}
	}
	for i, lhs := range a.Lhs {
		var rhsTaint map[string]bool
		if len(a.Rhs) == len(a.Lhs) {
			rhsTaint = s.taintOf(a.Rhs[i])
		} else {
			rhsTaint = nil // multi-value call, not a source: clean
		}
		if root, path, heap := s.lhsRoot(lhs); root != nil && !heap {
			// Local store: retaint or kill the assigned path.
			s.setPath(root, path, rhsTaint)
			continue
		}
		if len(rhsTaint) > 0 {
			s.pass.Reportf(lhs.Pos(),
				"storing frame-aliasing wire data to a heap structure; copy it first (append/strings.Clone)")
		}
	}
}

// goStmt flags tainted arguments and tainted free variables captured by a
// spawned literal: the goroutine outlives the frame.
func (s *scan) goStmt(g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if len(s.taintOf(arg)) > 0 {
			s.pass.Reportf(arg.Pos(),
				"passing frame-aliasing wire data to a goroutine; copy it first (append/strings.Clone)")
		}
	}
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	reported := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := s.info().Uses[id].(*types.Var)
		if !ok || reported[v] || len(s.tt[v]) == 0 {
			return true
		}
		reported[v] = true
		s.pass.Reportf(id.Pos(),
			"goroutine captures %s, which aliases the wire frame; copy it before spawning", v.Name())
		return true
	})
}

// source recognizes the wire decode entry points, returning which result
// index is tainted and its reference leaves; (-1, nil) otherwise.
func (s *scan) source(call *ast.CallExpr) (int, map[string]bool) {
	pkg, name, isMethod := analysis.CalleeName(s.info(), call)
	if !wirePkg(pkg) {
		return -1, nil
	}
	sig, _ := s.info().TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return -1, nil
	}
	switch {
	case !isMethod && strings.HasPrefix(name, "Parse"):
		if sig.Results().Len() == 0 {
			return -1, nil
		}
		leaves := refLeaves(sig.Results().At(0).Type(), "")
		if len(leaves) == 0 {
			return -1, nil
		}
		return 0, leaves
	case isMethod && name == "Next":
		// (typ uint8, payload []byte, err error): the payload is the frame.
		if sig.Results().Len() == 3 && isByteSlice(sig.Results().At(1).Type()) {
			return 1, map[string]bool{"": true}
		}
	}
	return -1, nil
}

func wirePkg(path string) bool {
	return path == "wire" || strings.HasSuffix(path, "/wire")
}

// taintOf computes the tainted leaf set of an expression; empty means clean.
func (s *scan) taintOf(e ast.Expr) map[string]bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := s.info().Uses[e].(*types.Var); ok {
			return s.tt[v]
		}
	case *ast.SelectorExpr:
		base := s.taintOf(e.X)
		if len(base) == 0 {
			return nil
		}
		return subPaths(base, e.Sel.Name)
	case *ast.StarExpr:
		return s.taintOf(e.X)
	case *ast.UnaryExpr:
		return s.taintOf(e.X)
	case *ast.SliceExpr:
		return s.taintOf(e.X) // reslicing keeps the alias
	case *ast.IndexExpr:
		return s.taintOf(e.X) // chunk.Values[i] aliases like chunk.Values
	case *ast.CompositeLit:
		out := make(map[string]bool)
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				for leaf := range s.taintOf(kv.Value) {
					out[join(keyName(kv.Key), leaf)] = true
				}
				continue
			}
			for range s.taintOf(elt) {
				out[""] = true
			}
		}
		if len(out) == 0 {
			return nil
		}
		return out
	case *ast.CallExpr:
		return s.callTaint(e)
	}
	return nil
}

// callTaint: conversions of aliasing kinds preserve taint; the copy idioms
// and every other call launder it.
func (s *scan) callTaint(call *ast.CallExpr) map[string]bool {
	if len(call.Args) == 1 {
		if tv, ok := s.info().Types[call.Fun]; ok && tv.IsType() {
			// A conversion. string(b) and []byte(s) copy; a struct or
			// same-kind slice conversion preserves the aliases.
			src := s.info().TypeOf(call.Args[0])
			dst := tv.Type
			if (isString(dst) && isByteSlice(src)) || (isByteSlice(dst) && isString(src)) {
				return nil
			}
			return s.taintOf(call.Args[0])
		}
	}
	return nil // append, strings.Clone, and unknown callees: treated as copies
}

// lhsVar resolves an assignment target to its local variable, nil when the
// target is not a plain identifier.
func (s *scan) lhsVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := s.info().Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := s.info().Uses[id].(*types.Var)
	return v
}

// lhsRoot decomposes an assignment target into (root variable, field path,
// heap?). heap is true when the store escapes the frame's lifetime: the root
// is reached through a pointer, interface, map or package-level variable.
func (s *scan) lhsRoot(e ast.Expr) (*types.Var, string, bool) {
	path := ""
	heap := false
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v := s.lhsVar(x)
			if v == nil {
				return nil, "", true
			}
			if v.Parent() != nil && v.Parent().Parent() == types.Universe {
				heap = true // package-level variable
			}
			if isPointerLike(v.Type()) && path != "" {
				heap = true // field store through a pointer-typed root
			}
			return v, path, heap
		case *ast.SelectorExpr:
			if isPointerLike(s.info().TypeOf(x.X)) {
				heap = true
			}
			path = join(x.Sel.Name, path)
			e = x.X
		case *ast.IndexExpr:
			t := s.info().TypeOf(x.X)
			if _, isMap := t.Underlying().(*types.Map); isMap {
				heap = true
			}
			e = x.X // a slice element store stays with the root's locality
		case *ast.StarExpr:
			heap = true
			e = x.X
		default:
			return nil, "", true
		}
	}
}

// setPath overwrites the taint below path on v: nil newLeaves kills it, a
// non-empty set re-taints it.
func (s *scan) setPath(v *types.Var, path string, newLeaves map[string]bool) {
	leaves := s.tt[v]
	if leaves == nil {
		if len(newLeaves) == 0 {
			return
		}
		leaves = make(map[string]bool)
		s.tt[v] = leaves
	}
	for leaf := range leaves {
		if path == "" || leaf == path || strings.HasPrefix(leaf, path+".") {
			delete(leaves, leaf)
		}
	}
	for leaf := range newLeaves {
		leaves[join(path, leaf)] = true
	}
	if len(leaves) == 0 {
		delete(s.tt, v)
	}
}

// subPaths projects a leaf set through a field selection.
func subPaths(leaves map[string]bool, field string) map[string]bool {
	out := make(map[string]bool)
	for leaf := range leaves {
		switch {
		case leaf == field:
			out[""] = true
		case strings.HasPrefix(leaf, field+"."):
			out[strings.TrimPrefix(leaf, field+".")] = true
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// refLeaves collects the reference-leaf field paths of t: string, []byte,
// []string and [][]byte reach into the frame; scalars do not.
func refLeaves(t types.Type, prefix string) map[string]bool {
	out := make(map[string]bool)
	var walk func(t types.Type, path string, depth int)
	walk = func(t types.Type, path string, depth int) {
		if depth > 4 {
			return
		}
		switch u := t.Underlying().(type) {
		case *types.Basic:
			if u.Kind() == types.String || u.Kind() == types.UntypedString {
				out[path] = true
			}
		case *types.Slice:
			if isByteSlice(t) || isString(u.Elem()) || isByteSlice(u.Elem()) {
				out[path] = true
			}
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				f := u.Field(i)
				walk(f.Type(), join(path, f.Name()), depth+1)
			}
		}
	}
	walk(t, prefix, 0)
	if len(out) == 0 {
		return nil
	}
	return out
}

func join(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	}
	return a + "." + b
}

func keyName(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.String || b.Kind() == types.UntypedString)
}

func isPointerLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Map, *types.Chan:
		return true
	}
	return false
}
