// Session store: the paper's update-heavy scenario (50% reads / 50% writes,
// typical of session storage) on the cluster model, plus the Figure 11
// dynamic-workload experiment — an update-heavy wave joining a read-heavy
// system mid-run, where C3 degrades gracefully while Dynamic Snitching
// spikes.
//
//	go run ./examples/sessionstore
package main

import (
	"fmt"
	"time"

	"c3/internal/cassim"
	"c3/internal/stats"
	"c3/internal/workload"
)

func main() {
	fmt.Println("== session-store mix (50% reads / 50% updates) ==")
	for _, strategy := range []string{cassim.StratC3, cassim.StratDS} {
		cfg := cassim.DefaultConfig()
		cfg.Strategy = strategy
		cfg.Mix = workload.UpdateHeavy
		cfg.Ops = 120_000
		cfg.Seed = 7
		res := cassim.Run(cfg)
		fmt.Printf("  %-3s reads %s | writes p50=%.2fms | thr=%.0f ops/s\n",
			strategy, res.Reads, res.Writes.P50, res.Throughput)
	}

	fmt.Println()
	fmt.Println("== dynamic workload change (Fig. 11): 40 update-heavy generators join at t=4s ==")
	for _, strategy := range []string{cassim.StratC3, cassim.StratDS} {
		cfg := cassim.DefaultConfig()
		cfg.Strategy = strategy
		cfg.Seed = 11
		cfg.Ops = 0
		cfg.Duration = 8 * time.Second
		cfg.RecordTimeline = true
		cfg.Phases = []cassim.Phase{
			{Start: 0, Generators: 80, Mix: workload.ReadHeavy},
			{Start: 4 * time.Second, Generators: 40, Mix: workload.UpdateHeavy},
		}
		res := cassim.Run(cfg)
		xs := make([]float64, len(res.Timeline))
		for i, p := range res.Timeline {
			xs[i] = p.Ms
		}
		med := stats.MovingMedian(xs, 50)
		// Render the moving median in 1-second buckets.
		fmt.Printf("  %-3s moving-median read latency by second:", strategy)
		bucket := make([]float64, 0, 64)
		sec := time.Duration(0)
		for i, p := range res.Timeline {
			for p.T >= sec+time.Second {
				if len(bucket) > 0 {
					fmt.Printf(" %5.1f", mean(bucket))
				}
				bucket = bucket[:0]
				sec += time.Second
			}
			bucket = append(bucket, med[i])
		}
		if len(bucket) > 0 {
			fmt.Printf(" %5.1f", mean(bucket))
		}
		fmt.Println(" ms")
	}
	fmt.Println("  (the update wave lands at second 4; C3's trend rises smoothly, DS spikes)")
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
