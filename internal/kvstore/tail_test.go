package kvstore

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"c3/internal/core"
)

// settleOutstanding polls until the selector accounting from n toward every
// peer in the cluster has returned to zero — the invariant that every
// OnSend/Pick/PickHedge is balanced by exactly one OnResponse/OnAbandon even
// across failures. Background racers and repair probes may still be resolving
// when the foreground traffic stops, hence the deadline.
func settleOutstanding(t *testing.T, nodes []*Node, peers int, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		total := 0.0
		for _, n := range nodes {
			if n == nil {
				continue
			}
			for p := 0; p < peers; p++ {
				total += n.OutstandingToward(p)
			}
		}
		if total == 0 {
			return
		}
		if time.Now().After(end) {
			for _, n := range nodes {
				if n == nil {
					continue
				}
				for p := 0; p < peers; p++ {
					if v := n.OutstandingToward(p); v != 0 {
						t.Errorf("node %d -> peer %d: outstanding = %v, want 0", n.ID(), p, v)
					}
				}
			}
			t.Fatalf("outstanding accounting leaked: total %v after %v", total, deadline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// keyWithGroupExcluding finds a key whose replica group does not contain
// node `out` (requires nodes > RF).
func keyWithGroupExcluding(t *testing.T, n *Node, out core.ServerID) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("excl-%d", i)
		group := n.readRing().ReplicasFor([]byte(key), nil)
		hit := false
		for _, s := range group {
			if s == out {
				hit = true
				break
			}
		}
		if !hit {
			return key
		}
	}
	t.Fatal("no key found excluding the node")
	return ""
}

// keyWithGroupIncluding finds a key whose replica group contains node `in`.
func keyWithGroupIncluding(t *testing.T, n *Node, in core.ServerID) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("incl-%d", i)
		for _, s := range n.readRing().ReplicasFor([]byte(key), nil) {
			if s == in {
				return key
			}
		}
	}
	t.Fatal("no key found including the node")
	return ""
}

// TestWriteFailsWhenAllReplicasDown: the regression for the ack-on-failure
// bug — a write whose entire replica group is unreachable must surface an
// error, never a silent ack built from a zero-value failure report.
func TestWriteFailsWhenAllReplicasDown(t *testing.T) {
	c, _ := startTestCluster(t, 5, Config{Seed: 21})
	coordinator := c.Nodes[0]
	key := keyWithGroupExcluding(t, coordinator, 0)
	// Kill every node but the coordinator: the key's whole replica group is
	// now down, while the coordinator itself stays up to report the failure.
	for i := 1; i < 5; i++ {
		c.Nodes[i].Close()
	}
	cl, err := Dial([]string{coordinator.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	err = cl.Put(key, []byte("v"))
	if err == nil {
		t.Fatal("all-replicas-down write was acknowledged")
	}
	if !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("Put error = %v, want ErrWriteFailed", err)
	}
	if coordinator.WriteFailures() == 0 {
		t.Fatal("coordinator did not count the failed write")
	}
}

// TestWriteAcksOnFirstGenuineSuccess: with part of the replica group down,
// a write must still be acknowledged — by a replica that actually applied
// it — and the value must be durably readable.
func TestWriteAcksOnFirstGenuineSuccess(t *testing.T) {
	c, _ := startTestCluster(t, 5, Config{Seed: 22})
	coordinator := c.Nodes[0]
	key := keyWithGroupIncluding(t, coordinator, 0)
	// Kill the other members of the key's group (and leave unrelated nodes
	// up so the cluster keeps running).
	group := coordinator.readRing().ReplicasFor([]byte(key), nil)
	for _, s := range group {
		if s != 0 {
			c.Nodes[int(s)].Close()
		}
	}
	cl, err := Dial([]string{coordinator.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := cl.Put(key, []byte("v")); err != nil {
		t.Fatalf("write with one live replica failed: %v", err)
	}
	val, ok, err := cl.Get(key)
	if err != nil || !ok || string(val) != "v" {
		t.Fatalf("Get = %q,%v,%v after partial-failure write", val, ok, err)
	}
}

// TestRepairProbeAccountingSurvivesCrash is the read-repair leak regression:
// kill a node mid-repair-traffic and the coordinator's outstanding count
// toward it must return to zero (failed probes OnAbandon instead of leaking),
// so q̂ recovers once the node comes back instead of staying inflated
// forever.
func TestRepairProbeAccountingSurvivesCrash(t *testing.T) {
	cfg := Config{Seed: 23, ReadRepair: 1} // every read probes all replicas
	c, _ := startTestCluster(t, 3, cfg)
	addrs := c.Addrs()
	coordinator := c.Nodes[0]
	cl, err := Dial([]string{coordinator.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	for i := 0; i < 10; i++ {
		if err := cl.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	warm := func(rounds int) {
		for i := 0; i < rounds; i++ {
			cl.Get(fmt.Sprintf("k%d", i%10))
		}
	}
	warm(100)

	// Kill node 2 mid-traffic: every subsequent read's repair probe toward
	// it fails.
	c.Nodes[2].Close()
	warm(150)
	settleOutstanding(t, c.Nodes[:2], 3, 3*time.Second)

	// The node comes back: with accounting clean, fresh probe feedback must
	// pull q̂ back down so selection can resume.
	n2, err := StartNode(2, addrs, cfg)
	if err != nil {
		t.Fatalf("restart node 2: %v", err)
	}
	t.Cleanup(n2.Close)
	c.Nodes[2] = nil // the cluster cleanup must not double-close the old node

	// Worst shard governs: every shard selector that sent traffic toward the
	// restarted node must pull its estimate back down.
	qhat := func() (q float64) {
		coordinator.sels.Each(func(c *core.Client) {
			c.Inspect(func(r core.Ranker) {
				if e := r.(*core.CubicRanker).QueueEstimate(core.ServerID(2)); e > q {
					q = e
				}
			})
		})
		return q
	}
	end := time.Now().Add(5 * time.Second)
	for {
		warm(50)
		if qhat() < 10 {
			break
		}
		if time.Now().After(end) {
			t.Fatalf("q̂ toward the restarted node stuck at %v", qhat())
		}
	}
	if served := n2.ReadsServed(); served == 0 {
		t.Fatal("restarted node never served a read")
	}
}

// TestCrashedNodeClusterAvailability: crash one node of five under live
// read/write traffic — every operation must still succeed (hedges and
// failovers route around the crash), and afterwards no node's selector may
// hold leaked outstanding accounting toward any peer.
func TestCrashedNodeClusterAvailability(t *testing.T) {
	c, cl := startTestCluster(t, 5, Config{Seed: 24})
	for i := 0; i < 30; i++ {
		if err := cl.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond) // let the write fan-out land everywhere
	const crashed = 4
	c.Nodes[crashed].Close()

	// The external client must not route through the dead coordinator.
	live := append([]string(nil), c.Addrs()[:crashed]...)
	cl2, err := Dial(live)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl2.Close)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i%30)
		val, ok, err := cl2.Get(key)
		if err != nil {
			t.Fatalf("Get(%s) after crash: %v", key, err)
		}
		if !ok || string(val) != "v" {
			t.Fatalf("Get(%s) = %q,%v: crash cost availability", key, val, ok)
		}
		if i%10 == 0 {
			if err := cl2.Put(key, []byte("v")); err != nil {
				t.Fatalf("Put(%s) after crash: %v", key, err)
			}
		}
	}
	settleOutstanding(t, c.Nodes[:crashed], 5, 3*time.Second)
}

// TestDeadPeerDialDoesNotStallHealthyReads: a hung connection attempt to one
// peer (simulated by holding that peer's dial slot, exactly what a dial into
// a blackholed network does for up to peerDialTimeout) must not block reads
// that route to healthy replicas — the regression for the global dial lock.
// Reads that do pick the wedged peer are rescued by their hedge.
func TestDeadPeerDialDoesNotStallHealthyReads(t *testing.T) {
	c, cl := startTestCluster(t, 3, Config{Seed: 25})
	for i := 0; i < 10; i++ {
		if err := cl.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ { // warm selectors and the RTT estimate
		cl.Get(fmt.Sprintf("k%d", i%10))
	}
	coordinator := c.Nodes[0]
	// Wedge the dial slot toward peer 2 and sever the cached connection, as
	// a dial hanging inside DialTimeout would.
	slot := coordinator.peerSlotFor(2)
	slot.mu.Lock()
	if slot.conn != nil {
		slot.conn.close()
	}
	pinned, err := Dial([]string{coordinator.Addr()})
	if err != nil {
		slot.mu.Unlock()
		t.Fatal(err)
	}
	t.Cleanup(pinned.Close)
	start := time.Now()
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i%10)
		if _, ok, err := pinned.Get(key); err != nil || !ok {
			slot.mu.Unlock()
			t.Fatalf("Get(%s) with a wedged peer dial = %v,%v", key, ok, err)
		}
	}
	elapsed := time.Since(start)
	slot.mu.Unlock()
	// 100 loopback reads take single-digit milliseconds; the old global
	// dial lock would serialize them all behind the 1s dial timeout.
	if elapsed > 800*time.Millisecond {
		t.Fatalf("100 reads took %v while one peer's dial was wedged", elapsed)
	}
}

// TestPeerDialFailFast: after a dial failure, requests toward that peer fail
// immediately for the backoff window instead of queueing another dial.
func TestPeerDialFailFast(t *testing.T) {
	c, _ := startTestCluster(t, 3, Config{Seed: 26})
	coordinator := c.Nodes[0]
	c.Nodes[2].Close()
	if _, err := coordinator.peer(2); err == nil {
		t.Fatal("dial to a closed node succeeded")
	}
	start := time.Now()
	if _, err := coordinator.peer(2); err == nil {
		t.Fatal("second dial to a closed node succeeded")
	} else if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("second dial attempt took %v, want fail-fast within the backoff window", d)
	}
}

// TestHedgedReadCutsTailUnderSlowReplica: the tail-tolerance headline. Under
// the uniform-random strategy (which keeps sending a third of the reads to
// the degraded replica — no C3 steering to confound the measurement), a
// 50 ms slowdown must not surface in read latency when hedging is on, and
// must surface when it is off.
func TestHedgedReadCutsTailUnderSlowReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("seconds of injected slowness; the dedicated race step runs it in full")
	}
	run := func(disabled bool) (maxLatency time.Duration, hedges, wins uint64) {
		cfg := Config{Seed: 27, Strategy: StratRND}
		cfg.Hedge.Disabled = disabled
		c, _ := startTestCluster(t, 3, cfg)
		defer c.Close()
		cl, err := Dial([]string{c.Nodes[0].Addr()})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		for i := 0; i < 10; i++ {
			if err := cl.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 150; i++ { // warm the RTT estimate with healthy reads
			cl.Get(fmt.Sprintf("k%d", i%10))
		}
		c.Nodes[2].SetSlowdown(50 * time.Millisecond)
		for i := 0; i < 90; i++ {
			t0 := time.Now()
			if _, ok, err := cl.Get(fmt.Sprintf("k%d", i%10)); err != nil || !ok {
				t.Fatalf("Get = %v,%v", ok, err)
			}
			if d := time.Since(t0); d > maxLatency {
				maxLatency = d
			}
		}
		return maxLatency, c.Nodes[0].HedgesIssued(), c.Nodes[0].HedgeWins()
	}

	hedgedMax, hedges, wins := run(false)
	if hedgedMax >= 25*time.Millisecond {
		t.Errorf("hedged max read latency %v, want well under the 50ms slowdown", hedgedMax)
	}
	if hedges == 0 || wins == 0 {
		t.Errorf("hedges=%d wins=%d, want both > 0 under a slow replica", hedges, wins)
	}
	unhedgedMax, hedges, _ := run(true)
	if hedges != 0 {
		t.Errorf("disabled hedging still issued %d hedges", hedges)
	}
	if unhedgedMax < 40*time.Millisecond {
		t.Errorf("unhedged max read latency %v: the slowdown never surfaced, control is broken", unhedgedMax)
	}
}

// TestFlappingNodeConvergesBack: a replica that oscillates between degraded
// and healthy must be re-selected once it stabilizes — the hedge and repair
// probes keep observing it, and clean accounting means nothing pins the old
// penalty in place.
func TestFlappingNodeConvergesBack(t *testing.T) {
	cfg := Config{Seed: 28, ReadRepair: 0.2}
	c, cl := startTestCluster(t, 3, cfg)
	for i := 0; i < 10; i++ {
		if err := cl.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	pinned, err := Dial([]string{c.Nodes[0].Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pinned.Close)
	warm := func(rounds int) {
		for i := 0; i < rounds; i++ {
			pinned.Get(fmt.Sprintf("k%d", i%10))
		}
	}
	warm(200)
	// Flap: three degrade/recover cycles.
	for cycle := 0; cycle < 3; cycle++ {
		c.Nodes[2].SetSlowdown(30 * time.Millisecond)
		warm(60)
		c.Nodes[2].SetSlowdown(0)
		warm(60)
	}
	// Stabilized: node 2 must pull a meaningful share of served reads again.
	before := c.Nodes[2].ReadsServed()
	end := time.Now().Add(5 * time.Second)
	for {
		warm(100)
		if c.Nodes[2].ReadsServed()-before >= 20 {
			break
		}
		if time.Now().After(end) {
			t.Fatalf("flapped node served only %d reads after recovering",
				c.Nodes[2].ReadsServed()-before)
		}
	}
	settleOutstanding(t, c.Nodes, 3, 3*time.Second)
}
