// Command c3sim runs single configurations of the §6 queueing-model
// simulator (the Go counterpart of the paper's absim): choose a policy,
// fluctuation interval, utilization, client count and seed, and get the
// latency distribution.
//
// Usage:
//
//	c3sim -policy C3 -interval 500ms -util 0.7 -clients 150
//	c3sim -policy LOR -requests 600000 -seeds 5
//	c3sim -compare            # all policies side by side
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"c3/internal/queuesim"
	"c3/internal/stats"
)

func main() {
	policy := flag.String("policy", "C3", "ORA | C3 | C3-R | LOR | RR | RND | LRT | WRND | 2C")
	interval := flag.Duration("interval", 500*time.Millisecond, "service-rate fluctuation interval")
	util := flag.Float64("util", 0.7, "offered load as a fraction of average capacity")
	clients := flag.Int("clients", 150, "number of client nodes")
	requests := flag.Int("requests", 120_000, "requests per run")
	seeds := flag.Int("seeds", 3, "repetitions")
	skew := flag.Float64("skew", 0, "fraction of clients issuing 80% of demand (0 = uniform)")
	compare := flag.Bool("compare", false, "run every policy with the same settings")
	flag.Parse()

	policies := []string{*policy}
	if *compare {
		policies = queuesim.Policies()
	}
	fmt.Printf("servers=50 slots=4 svc=exp(4ms) D=3 interval=%v util=%.0f%% clients=%d requests=%d seeds=%d skew=%.0f%%\n",
		*interval, *util*100, *clients, *requests, *seeds, *skew*100)
	for _, pol := range policies {
		var p50s, p99s, p999s, thrs []float64
		for s := 0; s < *seeds; s++ {
			cfg := queuesim.DefaultConfig()
			cfg.Policy = pol
			cfg.Fluctuation = *interval
			cfg.Utilization = *util
			cfg.Clients = *clients
			cfg.Requests = *requests
			cfg.SkewFraction = *skew
			cfg.Seed = uint64(s)*6151 + 1
			res := queuesim.Run(cfg)
			p50s = append(p50s, res.Latency.P50)
			p99s = append(p99s, res.Latency.P99)
			p999s = append(p999s, res.Latency.P999)
			thrs = append(thrs, res.Throughput)
		}
		p50, _ := stats.MeanCI95(p50s)
		p99, ci := stats.MeanCI95(p99s)
		p999, _ := stats.MeanCI95(p999s)
		thr, _ := stats.MeanCI95(thrs)
		fmt.Printf("  %-5s p50=%7.2fms p99=%8.2f±%.2fms p99.9=%8.2fms thr=%8.0f/s\n",
			pol, p50, p99, ci, p999, thr)
	}
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "unexpected arguments:", flag.Args())
		os.Exit(2)
	}
}
