package core

import (
	"math"
	"math/rand/v2"
	"slices"
	"time"

	"c3/internal/sim"
)

// SnitchConfig holds the tunables of the Dynamic Snitching model. The
// defaults replicate the behaviour the paper describes in §2.3 for Cassandra:
// scores recomputed on a fixed 100 ms interval from decayed read-latency
// histories, gossiped one-second iowait averages dominating the score by
// about two orders of magnitude, and a full history reset every 10 minutes.
type SnitchConfig struct {
	// UpdateInterval is how often peer scores are recomputed (default
	// 100 ms). Between recomputes the ranking is frozen — the staleness
	// and synchronization weakness §2.3 identifies.
	UpdateInterval int64
	// ResetInterval flushes all latency histories (default 10 min).
	ResetInterval int64
	// HistorySize bounds the per-peer latency sample ring (default 128).
	HistorySize int
	// SeverityWeight multiplies the gossiped iowait fraction relative to
	// the normalized (≤1) latency score. The paper reports iowait has "up
	// to two orders of magnitude more influence"; default 100.
	SeverityWeight float64
	// Seed drives tie-breaking randomness.
	Seed uint64
	// Registry interns server IDs to the dense indices this ranker keys
	// its per-peer state by; nil creates a private one.
	Registry *Registry
}

func (c SnitchConfig) withDefaults() SnitchConfig {
	if c.UpdateInterval <= 0 {
		c.UpdateInterval = 100 * 1e6
	}
	if c.ResetInterval <= 0 {
		c.ResetInterval = 10 * 60 * 1e9
	}
	if c.HistorySize <= 0 {
		c.HistorySize = 128
	}
	if c.SeverityWeight <= 0 {
		c.SeverityWeight = 100
	}
	return c
}

type snitchPeer struct {
	samples  []float64 // ring buffer of response times, seconds (lazy)
	idx, n   int
	severity float64 // gossiped iowait fraction [0,1]
	score    float64 // cached score from last recompute
}

// DynamicSnitch models Cassandra's Dynamic Snitching as a Ranker, serving as
// the §5 baseline ("DS"). Its interval-frozen rankings are what produce the
// synchronized load oscillations of Fig. 2.
type DynamicSnitch struct {
	cfg SnitchConfig
	rng *rand.Rand
	reg *Registry

	peers       []snitchPeer // dense, indexed by reg.Index
	lastCompute int64
	lastReset   int64
	began       bool
	scratch     []scored
	medBuf      []float64 // median sort scratch, reused across peers
	meds        []float64 // recompute scratch; NaN = no samples
}

// NewDynamicSnitch returns a Dynamic Snitching ranker.
func NewDynamicSnitch(cfg SnitchConfig) *DynamicSnitch {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	return &DynamicSnitch{
		cfg: cfg,
		rng: sim.RNG(cfg.Seed, 0xd5),
		reg: reg,
	}
}

// Name implements Ranker.
func (d *DynamicSnitch) Name() string { return "DS" }

// Registry implements RegistryHolder.
func (d *DynamicSnitch) Registry() *Registry { return d.reg }

func (d *DynamicSnitch) peer(s ServerID) *snitchPeer {
	i := d.reg.Index(s)
	d.peers = grown(d.peers, i, nil)
	p := &d.peers[i]
	if p.samples == nil {
		p.samples = make([]float64, d.cfg.HistorySize)
	}
	return p
}

// OnSend implements Ranker.
func (d *DynamicSnitch) OnSend(ServerID, int64) {}

// OnResponse implements Ranker: appends the observed response time to the
// peer's latency history.
func (d *DynamicSnitch) OnResponse(s ServerID, fb Feedback, rtt time.Duration, now int64) {
	p := d.peer(s)
	p.samples[p.idx] = seconds(rtt)
	p.idx = (p.idx + 1) % len(p.samples)
	if p.n < len(p.samples) {
		p.n++
	}
}

// OnAbandon implements Ranker (the snitch keeps latency histories, not
// in-flight counts; an abandoned request contributes no sample).
func (d *DynamicSnitch) OnAbandon(ServerID, int64) {}

// SetSeverity records the gossiped iowait fraction (0..1) for peer s. In the
// cluster substrates this is fed by the gossip subsystem's one-second
// averages.
func (d *DynamicSnitch) SetSeverity(s ServerID, iowait float64) {
	if iowait < 0 {
		iowait = 0
	}
	d.peer(s).severity = iowait
}

// peerRO is the read-only counterpart of peer: nil for unseen servers,
// without interning them.
func (d *DynamicSnitch) peerRO(s ServerID) *snitchPeer {
	if i, ok := d.reg.Lookup(s); ok && i < len(d.peers) {
		return &d.peers[i]
	}
	return nil
}

// Severity reports the last gossiped iowait fraction for s (0 when unseen).
// It is a pure read and does not intern s.
func (d *DynamicSnitch) Severity(s ServerID) float64 {
	if p := d.peerRO(s); p != nil {
		return p.severity
	}
	return 0
}

// medianLatency computes the median of the peer's history ring using the
// shared scratch buffer.
func (d *DynamicSnitch) medianLatency(p *snitchPeer) (float64, bool) {
	if p.n == 0 {
		return 0, false
	}
	if cap(d.medBuf) < p.n {
		d.medBuf = make([]float64, 0, cap(p.samples))
	}
	buf := append(d.medBuf[:0], p.samples[:p.n]...)
	slices.Sort(buf)
	m := len(buf)
	if m%2 == 1 {
		return buf[m/2], true
	}
	return (buf[m/2-1] + buf[m/2]) / 2, true
}

// recompute refreshes all cached peer scores:
//
//	score = medianLatency/maxMedianLatency + SeverityWeight·iowait
//
// The latency term is normalized to ≤1, so a gossiped iowait of just a few
// percent dominates the ranking — reproducing the §2.3 observation.
func (d *DynamicSnitch) recompute(now int64) {
	if cap(d.meds) < len(d.peers) {
		d.meds = make([]float64, len(d.peers))
	}
	meds := d.meds[:len(d.peers)]
	maxMed := 0.0
	for i := range d.peers {
		meds[i] = math.NaN()
		if med, ok := d.medianLatency(&d.peers[i]); ok {
			meds[i] = med
			if med > maxMed {
				maxMed = med
			}
		}
	}
	for i := range d.peers {
		p := &d.peers[i]
		latScore := 0.0
		if !math.IsNaN(meds[i]) && maxMed > 0 {
			latScore = meds[i] / maxMed
		}
		p.score = latScore + d.cfg.SeverityWeight*p.severity
	}
	d.lastCompute = now
}

// maybeTick applies interval recomputation and the periodic history reset.
func (d *DynamicSnitch) maybeTick(now int64) {
	if !d.began {
		d.began = true
		d.lastCompute = now
		d.lastReset = now
		return
	}
	if now-d.lastReset >= d.cfg.ResetInterval {
		for i := range d.peers {
			d.peers[i].n, d.peers[i].idx = 0, 0
		}
		d.lastReset = now
	}
	if now-d.lastCompute >= d.cfg.UpdateInterval {
		d.recompute(now)
	}
}

// Score reports the cached score of s as of the last recompute tick (0 when
// unseen). It is a pure read and does not intern s.
func (d *DynamicSnitch) Score(s ServerID) float64 {
	if p := d.peerRO(s); p != nil {
		return p.score
	}
	return 0
}

// insertionSortScoredByID stably sorts sc ascending by (score, server id) —
// Dynamic Snitching's fully deterministic comparator.
func insertionSortScoredByID(sc []scored) {
	for i := 1; i < len(sc); i++ {
		x := sc[i]
		j := i - 1
		for j >= 0 && (sc[j].score > x.score || (sc[j].score == x.score && sc[j].s > x.s)) {
			sc[j+1] = sc[j]
			j--
		}
		sc[j+1] = x
	}
}

// Rank implements Ranker: ascending cached score. Crucially the scores are
// only refreshed every UpdateInterval, so all requests within an interval see
// the same ordering.
func (d *DynamicSnitch) Rank(dst, group []ServerID, now int64) []ServerID {
	d.maybeTick(now)
	dst = prepare(dst, group)
	if cap(d.scratch) < len(dst) {
		d.scratch = make([]scored, 0, len(dst))
	}
	sc := d.scratch[:0]
	for _, s := range dst {
		sc = append(sc, scored{s, d.peer(s).score})
	}
	// Deterministic order within an interval is the point: Cassandra
	// sorts by score, so every coordinator repeatedly picks the same
	// "best" peer until the next recompute. Ties broken by ID.
	insertionSortScoredByID(sc)
	for i := range sc {
		dst[i] = sc[i].s
	}
	return dst
}

// Best implements BestPicker: the minimum (score, id) peer — the same fully
// deterministic comparator as Rank, without sorting.
func (d *DynamicSnitch) Best(group []ServerID, now int64) (ServerID, bool) {
	if len(group) == 0 {
		return 0, false
	}
	d.maybeTick(now)
	best := group[0]
	bestScore := d.peer(group[0]).score
	for _, s := range group[1:] {
		sc := d.peer(s).score
		if sc < bestScore || (sc == bestScore && s < best) {
			best, bestScore = s, sc
		}
	}
	return best, true
}
