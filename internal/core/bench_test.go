package core

// Microbenchmarks for the selection hot path: Rank across all rankers, the
// Best top-1 fast path, Client.Pick with and without rate control, and the
// OnResponse feedback path. CI runs a short -bench=BenchmarkRank smoke so
// regressions here fail loudly; DESIGN.md records the before/after numbers
// versus the seed's map-based implementation.

import (
	"testing"
	"time"

	"c3/internal/ratelimit"
)

func benchGroup(n int) []ServerID {
	g := make([]ServerID, n)
	for i := range g {
		g[i] = ServerID(i)
	}
	return g
}

func benchRank(b *testing.B, r Ranker, n int) {
	group := benchGroup(n)
	warmRanker(r, group)
	dst := make([]ServerID, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = r.Rank(dst, group, int64(i))
	}
	_ = dst
}

// BenchmarkRankC3 is the headline number: one C3 ranking of a replica group
// at the paper's replication factor of 3.
func BenchmarkRankC3(b *testing.B) {
	benchRank(b, NewCubicRanker(RankerConfig{Seed: 1}), 3)
}

// BenchmarkRankC3Wide ranks a 10-replica group (multi-DC / token-aware
// scenarios where groups exceed the paper's RF).
func BenchmarkRankC3Wide(b *testing.B) {
	benchRank(b, NewCubicRanker(RankerConfig{Seed: 1}), 10)
}

// BenchmarkRankC3Pow exercises the math.Pow fallback used by the exponent
// ablation sweeps (b ≠ 3).
func BenchmarkRankC3Pow(b *testing.B) {
	benchRank(b, NewCubicRanker(RankerConfig{Seed: 1, Exponent: 2.5}), 3)
}

func BenchmarkRankLOR(b *testing.B) {
	benchRank(b, NewLOR(nil, 1), 3)
}

func BenchmarkRankRR(b *testing.B) {
	benchRank(b, NewRoundRobin(nil), 3)
}

func BenchmarkRankTwoChoice(b *testing.B) {
	benchRank(b, NewTwoChoice(nil, 1), 3)
}

func BenchmarkRankLRT(b *testing.B) {
	benchRank(b, NewLeastResponseTime(nil, 0.9, 1), 3)
}

func BenchmarkRankWRND(b *testing.B) {
	benchRank(b, NewWeightedRandom(nil, 0.9, 1), 3)
}

func BenchmarkRankSnitch(b *testing.B) {
	r := NewDynamicSnitch(SnitchConfig{Seed: 1})
	group := benchGroup(3)
	warmRanker(r, group)
	dst := make([]ServerID, len(group))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fixed timestamp: measures the interval-frozen ranking itself,
		// not the 100 ms recompute.
		dst = r.Rank(dst, group, 2)
	}
}

// BenchmarkBestC3 is the top-1 fast path Client.Pick rides.
func BenchmarkBestC3(b *testing.B) {
	r := NewCubicRanker(RankerConfig{Seed: 1})
	group := benchGroup(3)
	warmRanker(r, group)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Best(group, int64(i))
	}
}

func benchPick(b *testing.B, cfg ClientConfig) {
	c := NewClient(NewCubicRanker(RankerConfig{Seed: 1}), cfg)
	group := benchGroup(3)
	fb := Feedback{QueueSize: 1, ServiceTime: time.Millisecond}
	for _, s := range group {
		c.OnResponse(s, fb, 2*time.Millisecond, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, ok, _ := c.Pick(group, int64(i))
		if !ok {
			b.Fatal("pick failed")
		}
		c.OnResponse(s, fb, 2*time.Millisecond, int64(i))
	}
}

// BenchmarkPickNoRate is one full select/feedback cycle with ranking only.
func BenchmarkPickNoRate(b *testing.B) {
	benchPick(b, ClientConfig{})
}

// BenchmarkPickRateControl is the complete C3 client hot path: rank, token
// acquire, send accounting and feedback with cubic rate adaptation.
func BenchmarkPickRateControl(b *testing.B) {
	benchPick(b, ClientConfig{
		RateControl: true,
		Rate:        ratelimit.Config{InitialRate: 1 << 30, MaxRate: 1 << 30},
	})
}

// BenchmarkOnResponseC3 isolates the feedback EWMA fold.
func BenchmarkOnResponseC3(b *testing.B) {
	r := NewCubicRanker(RankerConfig{Seed: 1})
	group := benchGroup(3)
	warmRanker(r, group)
	fb := Feedback{QueueSize: 2, ServiceTime: time.Millisecond}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.OnResponse(group[i%3], fb, 2*time.Millisecond, int64(i))
	}
}

// BenchmarkOnResponseClient adds the client lock and the cubic rate
// controller step on top of the ranker feedback fold.
func BenchmarkOnResponseClient(b *testing.B) {
	c := NewClient(NewCubicRanker(RankerConfig{Seed: 1}), ClientConfig{
		RateControl: true,
		Rate:        ratelimit.Config{InitialRate: 1 << 30, MaxRate: 1 << 30},
	})
	group := benchGroup(3)
	fb := Feedback{QueueSize: 2, ServiceTime: time.Millisecond}
	for _, s := range group {
		c.OnResponse(s, fb, 2*time.Millisecond, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.OnResponse(group[i%3], fb, 2*time.Millisecond, int64(i))
	}
}
