// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis core: an Analyzer runs over one
// type-checked package and reports position-anchored diagnostics. It exists
// because this repository's hot-path invariants — accounting pairing,
// zero-copy aliasing, pool hygiene, typed errors, lock scope — live in
// comments and tests until a checker enforces them, and the container
// building this repo carries no external modules. The API mirrors
// go/analysis closely enough that the analyzers would port to a *analysis.
// Pass with mechanical edits.
//
// # Suppressions
//
// A finding is suppressed by an inline directive on the flagged line or the
// line directly above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory: a suppression without one is itself reported.
// Suppressions are deliberate, reviewed exceptions — the WAL's ioMu fsync,
// a cold control-plane path — not an escape hatch, and the reason string is
// what makes each one auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run applies the analyzer to one package, reporting findings through
	// pass.Report.
	Run func(pass *Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The runner applies suppression
	// directives; analyzers just report.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a resolved diagnostic: position mapped through the FileSet
// and attributed to its analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// allowDirective is the suppression marker; see the package comment.
const allowDirective = "//lint:allow"

// suppression is one parsed //lint:allow directive.
type suppression struct {
	analyzer string
	reason   string
	line     int // the source line the directive suppresses findings on
	used     bool
}

// suppressionSet indexes a package's directives by file and line.
type suppressionSet struct {
	byFileLine map[string]map[int][]*suppression
	malformed  []Finding
}

// collectSuppressions parses every //lint:allow directive in files. A
// directive trailing a statement suppresses that line; a directive on a line
// of its own suppresses the next line. A directive without both an analyzer
// name and a non-empty reason is malformed and reported instead of honored.
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressionSet {
	set := &suppressionSet{byFileLine: make(map[string]map[int][]*suppression)}
	for _, f := range files {
		// Map comment line -> whether any code shares that line, to decide
		// own-line (suppresses line+1) vs trailing (suppresses own line).
		codeLines := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if _, isComment := n.(*ast.Comment); isComment {
				return false
			}
			if _, isGroup := n.(*ast.CommentGroup); isGroup {
				return false
			}
			if n.Pos().IsValid() {
				codeLines[fset.Position(n.Pos()).Line] = true
			}
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowDirective) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, allowDirective)
				fields := strings.Fields(rest)
				if len(fields) < 2 || !strings.HasPrefix(rest, " ") {
					set.malformed = append(set.malformed, Finding{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed suppression: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				s := &suppression{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					line:     pos.Line,
				}
				if !codeLines[pos.Line] {
					s.line = pos.Line + 1 // own-line directive covers the next line
				}
				m := set.byFileLine[pos.Filename]
				if m == nil {
					m = make(map[int][]*suppression)
					set.byFileLine[pos.Filename] = m
				}
				m[s.line] = append(m[s.line], s)
			}
		}
	}
	return set
}

// allows reports whether a finding by analyzer at pos is suppressed,
// marking the matching directive used.
func (s *suppressionSet) allows(analyzer string, pos token.Position) bool {
	for _, sup := range s.byFileLine[pos.Filename][pos.Line] {
		if sup.analyzer == analyzer {
			sup.used = true
			return true
		}
	}
	return false
}

// unused reports directives that suppressed nothing — stale suppressions
// rot just like stale invariants, so they fail the build too.
func (s *suppressionSet) unused() []Finding {
	var out []Finding
	for file, lines := range s.byFileLine {
		for line, sups := range lines {
			for _, sup := range sups {
				if !sup.used {
					out = append(out, Finding{
						Analyzer: "lint",
						Pos:      token.Position{Filename: file, Line: line},
						Message: fmt.Sprintf("unused suppression for %q (%s)",
							sup.analyzer, sup.reason),
					})
				}
			}
		}
	}
	return out
}

// RunPackage applies analyzers to one type-checked package and returns the
// surviving findings: suppressed diagnostics are dropped, malformed and
// unused suppressions are added, and the result is sorted by position.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, analyzers []*Analyzer) ([]Finding, error) {

	sups := collectSuppressions(fset, files)
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				pos := fset.Position(d.Pos)
				if sups.allows(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	findings = append(findings, sups.malformed...)
	findings = append(findings, sups.unused()...)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}

// NewInfo allocates a types.Info populated with every map the analyzers
// consult. Loaders share it so no analyzer finds a nil map.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
