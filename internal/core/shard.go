package core

// This file is the shard-per-core fan-out of coordinator selection state.
//
// A sharded node partitions request handling by key hash; each shard gets its
// own Client (and therefore its own ranker with its own dense scratch slices
// keyed by the shared Registry's indices — a [shard][denseIndex]
// slice-of-slices layout). Shards never contend on one selector mutex, and
// padding keeps two shards' hot state off shared cache lines. The C3
// estimators stay correct per shard: each shard's client observes exactly the
// feedback of the requests it dispatched, the same property every simulated
// client in the paper has.

// cacheLine is the padding unit for per-shard slots: 128 bytes — two 64-byte
// lines — so adjacent-line prefetchers never couple two shards' state either.
const cacheLine = 128

// clientSlot pads each shard's Client pointer to a cache-line pair.
type clientSlot struct {
	c *Client
	_ [cacheLine - 8]byte
}

// ShardedClients is a per-shard array of Clients sharing one Registry. Hot
// paths index it by shard; diagnostics aggregate across shards.
type ShardedClients struct {
	slots []clientSlot
}

// NewShardedClients builds n clients via mk (called once per shard; mk must
// give every shard its own Client — typically over one shared Registry with a
// shard-salted seed).
func NewShardedClients(n int, mk func(shard int) *Client) *ShardedClients {
	if n < 1 {
		n = 1
	}
	sc := &ShardedClients{slots: make([]clientSlot, n)}
	for i := range sc.slots {
		sc.slots[i].c = mk(i)
	}
	return sc
}

// Len reports the shard count.
func (sc *ShardedClients) Len() int { return len(sc.slots) }

// Shard returns shard i's client.
func (sc *ShardedClients) Shard(i int) *Client { return sc.slots[i].c }

// Each visits every shard's client.
func (sc *ShardedClients) Each(f func(*Client)) {
	for i := range sc.slots {
		f(sc.slots[i].c)
	}
}

// Outstanding sums the shards' in-flight accounting toward s. The
// zero-residual invariant is per shard, so the sum obeys it too.
func (sc *ShardedClients) Outstanding(s ServerID) float64 {
	total := 0.0
	for i := range sc.slots {
		total += sc.slots[i].c.Outstanding(s)
	}
	return total
}

// SendRate sums the shards' current send rates toward s — the node's total
// dispatch rate at that server.
func (sc *ShardedClients) SendRate(s ServerID) float64 {
	total := 0.0
	for i := range sc.slots {
		total += sc.slots[i].c.SendRate(s)
	}
	return total
}

// HedgesSent sums speculative duplicates across shards.
func (sc *ShardedClients) HedgesSent() uint64 {
	var total uint64
	for i := range sc.slots {
		total += sc.slots[i].c.HedgesSent()
	}
	return total
}
