package core

import (
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"c3/internal/ewma"
	"c3/internal/sim"
)

// RankerConfig holds the tunables of the C3 scoring function (§3.1).
type RankerConfig struct {
	// Alpha is the EWMA smoothing factor for the q̄, µ̄ and R̄ signals.
	// The paper does not publish a value; 0.9 (strongly favouring fresh
	// feedback) matches the published C3 Cassandra patch and is the
	// default.
	Alpha float64
	// ConcurrencyWeight is w in q̂ = 1 + os·w + q̄ — the multiplier that
	// extrapolates this client's outstanding requests into an estimate of
	// system-wide in-flight demand. The paper sets w = number of clients.
	// Zero takes the default (1); a negative value disables concurrency
	// compensation entirely (w = 0), used by the ablation experiments.
	ConcurrencyWeight float64
	// Exponent is b in (q̂)^b/µ̄. The paper chooses b = 3 ("cubic
	// replica selection"); the ablation bench sweeps it.
	Exponent float64
	// Seed drives tie-breaking randomness.
	Seed uint64
}

func (c RankerConfig) withDefaults() RankerConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.9
	}
	if c.ConcurrencyWeight == 0 {
		c.ConcurrencyWeight = 1
	} else if c.ConcurrencyWeight < 0 {
		c.ConcurrencyWeight = 0
	}
	if c.Exponent <= 0 {
		c.Exponent = 3
	}
	return c
}

// CubicScore evaluates the C3 scoring function
//
//	Ψ = R̄ − T̄ + (q̂)^b · T̄
//
// where R̄ is the smoothed client-observed response time (seconds), T̄ the
// smoothed service time 1/µ̄ (seconds), q̂ the concurrency-compensated
// queue-size estimate and b the queue exponent. Exposed as a pure function so
// experiments (Fig. 4) can plot it directly.
func CubicScore(rbar, tbar, qhat, b float64) float64 {
	return rbar - tbar + math.Pow(qhat, b)*tbar
}

// c3State is the per-server client-side state of the C3 ranker.
type c3State struct {
	outstanding float64
	qbar        ewma.EWMA // queue-size feedback
	tbar        ewma.EWMA // service-time feedback, seconds
	rbar        ewma.EWMA // client-observed response time, seconds
}

// CubicRanker implements C3's replica ranking.
type CubicRanker struct {
	cfg RankerConfig
	rng *rand.Rand
	st  map[ServerID]*c3State

	scratch []scored
}

type scored struct {
	s     ServerID
	score float64
}

// NewCubicRanker returns a C3 ranker with cfg (zero fields take defaults).
func NewCubicRanker(cfg RankerConfig) *CubicRanker {
	cfg = cfg.withDefaults()
	return &CubicRanker{
		cfg: cfg,
		rng: sim.RNG(cfg.Seed, 0xc3),
		st:  make(map[ServerID]*c3State),
	}
}

// Name implements Ranker.
func (c *CubicRanker) Name() string { return "C3" }

func (c *CubicRanker) state(s ServerID) *c3State {
	st, ok := c.st[s]
	if !ok {
		st = &c3State{
			qbar: ewma.New(c.cfg.Alpha),
			tbar: ewma.New(c.cfg.Alpha),
			rbar: ewma.New(c.cfg.Alpha),
		}
		c.st[s] = st
	}
	return st
}

// OnSend implements Ranker.
func (c *CubicRanker) OnSend(s ServerID, now int64) {
	c.state(s).outstanding++
}

// OnResponse implements Ranker.
func (c *CubicRanker) OnResponse(s ServerID, fb Feedback, rtt time.Duration, now int64) {
	st := c.state(s)
	if st.outstanding > 0 {
		st.outstanding--
	}
	st.qbar.Add(fb.QueueSize)
	st.tbar.Add(seconds(fb.ServiceTime))
	st.rbar.Add(seconds(rtt))
}

// QueueEstimate reports q̂ = 1 + os·w + q̄ for server s.
func (c *CubicRanker) QueueEstimate(s ServerID) float64 {
	st := c.state(s)
	return 1 + st.outstanding*c.cfg.ConcurrencyWeight + st.qbar.Value()
}

// Outstanding reports the number of requests in flight to s from this client.
func (c *CubicRanker) Outstanding(s ServerID) float64 { return c.state(s).outstanding }

// Score reports Ψ_s. Servers that have never produced feedback score −Inf so
// that they are explored first.
func (c *CubicRanker) Score(s ServerID, now int64) float64 {
	st := c.state(s)
	if !st.tbar.Initialized() {
		return math.Inf(-1)
	}
	return CubicScore(st.rbar.Value(), st.tbar.Value(), c.QueueEstimate(s), c.cfg.Exponent)
}

// Rank implements Ranker: ascending Ψ with random tie-breaking (a pre-shuffle
// followed by a stable sort, so equal-score replicas are load-spread rather
// than biased toward low server IDs).
func (c *CubicRanker) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	if cap(c.scratch) < len(dst) {
		c.scratch = make([]scored, len(dst))
	}
	sc := c.scratch[:0]
	for _, s := range dst {
		sc = append(sc, scored{s, c.Score(s, now)})
	}
	shuffleScored(c.rng, sc)
	sort.SliceStable(sc, func(i, j int) bool { return sc[i].score < sc[j].score })
	for i := range sc {
		dst[i] = sc[i].s
	}
	return dst
}

func shuffleScored(r *rand.Rand, sc []scored) {
	for i := len(sc) - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		sc[i], sc[j] = sc[j], sc[i]
	}
}
