// Package accountpair enforces the coordinator accounting invariant from the
// C3 feedback loop (c3.go, "Accounting"): every ranker OnSend/OnSendN must be
// balanced by exactly one OnResponse[N]/OnAbandon[N] on every path out of the
// sending function. PR 3 shipped a real leak of this shape — a failed
// read-repair probe returned without releasing its outstanding count, so q̂
// toward a struggling replica inflated forever and the coordinator never saw
// it recover.
//
// The check is flow-sensitive and intraprocedural with one interprocedural
// courtesy: a call to a same-package function that (transitively) performs
// settling — accountReadSuccess, raceRead spawning a settling goroutine —
// counts as a settle on that path. Settles inside function literals spawned
// or deferred on the path count too (`n.wg.Add(1); go func(){ ...
// OnAbandon ... }()` settles eventually by construction). What it cannot see
// is settlement in a different event handler — event-driven simulators
// suppress with a reason.
package accountpair

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"c3/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "accountpair",
	Doc: "ranker OnSend[N] must be balanced by OnResponse[N]/OnAbandon[N] " +
		"on every exit path of the sending function",
	Run: run,
}

func sendName(name string) bool   { return name == "OnSend" || name == "OnSendN" }
func settleName(name string) bool {
	switch name {
	case "OnResponse", "OnAbandon", "OnResponseN", "OnAbandonN":
		return true
	}
	return false
}

// accountingName reports method names that are themselves part of the
// accounting interface: bodies with these names are implementations (score
// trackers, forwarding wrappers), not coordinators, and are not checked.
func accountingName(name string) bool { return sendName(name) || settleName(name) }

func run(pass *analysis.Pass) error {
	bodies := analysis.Bodies(pass.Files)
	settlers := settlerSet(pass, bodies)

	isSettleCall := func(call *ast.CallExpr) bool {
		_, name, isMethod := analysis.CalleeName(pass.TypesInfo, call)
		if isMethod && settleName(name) {
			return true
		}
		return settlers[calleeObj(pass.TypesInfo, call)]
	}

	terminates := analysis.Terminator(pass.TypesInfo)
	for _, b := range bodies {
		if b.Lit == nil && accountingName(b.Name) {
			continue
		}
		// The accounting layer itself — any method on a type that also
		// implements the settle side (core.Client, trackers) — records
		// sends whose settlement is its caller's contract, and tests of
		// that layer drive unbalanced sequences on purpose. The invariant
		// binds production coordinators.
		if implementsSettling(pass.TypesInfo, b.Decl) || inTestFile(pass.Fset, b.Body.Pos()) {
			continue
		}
		// Collect the send calls owned by this body (literals are their own
		// bodies, so a send inside a nested goroutine is checked there).
		type send struct {
			stmt ast.Stmt
			call *ast.CallExpr
		}
		var sends []send
		var g *analysis.CFG
		analysis.InspectShallow(b.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			_, name, isMethod := analysis.CalleeName(pass.TypesInfo, call)
			if !isMethod || !sendName(name) {
				return true
			}
			if g == nil {
				g = analysis.BuildCFG(b.Body, terminates)
			}
			if stmt := owningStmt(g, b.Body, call); stmt != nil {
				sends = append(sends, send{stmt: stmt, call: call})
			}
			return true
		})
		for _, s := range sends {
			leaks := g.ReachesExitAvoiding(s.stmt, func(n *analysis.Node) bool {
				return analysis.NodeContainsCall(pass.TypesInfo, n, true, isSettleCall)
			})
			if leaks {
				_, name, _ := analysis.CalleeName(pass.TypesInfo, s.call)
				pass.Reportf(s.call.Pos(),
					"%s is not balanced by OnResponse[N]/OnAbandon[N] on every exit path", name)
			}
		}
	}
	return nil
}

// implementsSettling reports whether the body's receiver type declares one
// of the settle methods — the mark of an accounting implementation.
func implementsSettling(info *types.Info, fd *ast.FuncDecl) bool {
	if fd == nil || fd.Recv == nil || len(fd.Recv.List) != 1 {
		return false
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if settleName(named.Method(i).Name()) {
			return true
		}
	}
	return false
}

func inTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// settlerSet computes the same-package functions that settle accounting on
// some path, directly or transitively (calls inside nested literals count:
// a spawned or deferred settle still runs).
func settlerSet(pass *analysis.Pass, bodies []analysis.FuncBody) map[types.Object]bool {
	set := make(map[types.Object]bool)
	type declBody struct {
		obj  types.Object
		body *ast.BlockStmt
	}
	var decls []declBody
	for _, b := range bodies {
		if b.Lit != nil || b.Decl == nil {
			continue
		}
		obj := pass.TypesInfo.Defs[b.Decl.Name]
		if obj == nil {
			continue
		}
		decls = append(decls, declBody{obj: obj, body: b.Decl.Body})
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if set[d.obj] {
				continue
			}
			found := false
			ast.Inspect(d.body, func(n ast.Node) bool {
				if found {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				_, name, isMethod := analysis.CalleeName(pass.TypesInfo, call)
				if (isMethod && settleName(name)) || set[calleeObj(pass.TypesInfo, call)] {
					found = true
					return false
				}
				return true
			})
			if found {
				set[d.obj] = true
				changed = true
			}
		}
	}
	return set
}

// calleeObj resolves a call to the types.Object of its callee, nil for
// indirect calls and builtins.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// owningStmt finds the innermost statement containing pos that is a node of
// g — the CFG anchor for a call expression.
func owningStmt(g *analysis.CFG, body *ast.BlockStmt, call *ast.CallExpr) ast.Stmt {
	var best ast.Stmt
	analysis.InspectShallow(body, func(n ast.Node) bool {
		stmt, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		if stmt.Pos() <= call.Pos() && call.End() <= stmt.End() && g.NodeFor(stmt) != nil {
			// Innermost wins: keep descending, later (deeper) matches
			// overwrite.
			node := g.NodeFor(stmt)
			for _, part := range node.Parts {
				if part.Pos() <= call.Pos() && call.End() <= part.End() {
					best = stmt
					break
				}
			}
		}
		return true
	})
	return best
}
