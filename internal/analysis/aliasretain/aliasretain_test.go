package aliasretain_test

import (
	"testing"

	"c3/internal/analysis/aliasretain"
	"c3/internal/analysis/analysistest"
)

func TestAliasRetain(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), aliasretain.Analyzer, "aliasretain")
}
