package lsm

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"testing"
	"time"

	"c3/internal/sim"
)

// kill -9 chaos: the test re-execs its own binary as a child process that
// opens the store and hammers it with a deterministic per-writer op stream,
// printing an ack line only after each op's group fsync returns. The parent
// SIGKILLs the child at a random moment — tiny FlushBytes/MaxRuns keep the
// child almost permanently mid-flush or mid-compaction — drains the stdout
// pipe (the pipe outlives the process, so every drained ack is by
// construction a durable op), reopens the directory, and checks that every
// acked op survived and no deleted key resurrected. Because each writer's
// stream is deterministic, the parent can regenerate it and knows exactly
// which op, if any, was in flight but unacked at the kill — the only op
// whose outcome is legitimately ambiguous.

const (
	crashChildEnvDir    = "LSM_CRASH_CHILD_DIR"
	crashChildEnvSeed   = "LSM_CRASH_CHILD_SEED"
	crashChildEnvSync   = "LSM_CRASH_CHILD_SYNC"   // "periodic" opts into periodic WAL sync
	crashChildEnvShards = "LSM_CRASH_CHILD_SHARDS" // >1 opens a sharded store
	crashWriters        = 3
	crashKeysPerW       = 40
)

func TestMain(m *testing.M) {
	if dir := os.Getenv(crashChildEnvDir); dir != "" {
		seed, err := strconv.ParseUint(os.Getenv(crashChildEnvSeed), 10, 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad seed:", err)
			os.Exit(2)
		}
		crashChild(dir, seed)
		os.Exit(0) // unreachable: the child runs until killed
	}
	os.Exit(m.Run())
}

// crashOp is one step of a writer's deterministic stream.
type crashOp struct {
	del bool
	key string
	val string
}

// crashGen yields writer w's op stream for a given seed. Identical in the
// parent and the child.
type crashGen struct {
	rng     *simRand
	w       int
	dels    int
	version [crashKeysPerW]int
	deleted [crashKeysPerW]bool
}

// simRand narrows *rand.Rand to what the generator needs, keeping the
// stream's shape obvious.
type simRand struct{ intN func(int) int }

func newCrashGen(seed uint64, w int) *crashGen {
	r := sim.RNG(seed, uint64(1000+w))
	return &crashGen{rng: &simRand{intN: r.IntN}, w: w}
}

func (g *crashGen) next() crashOp {
	id := g.rng.intN(crashKeysPerW)
	for g.deleted[id] { // deleted keys are never touched again within a run
		id = (id + 1) % crashKeysPerW
	}
	key := fmt.Sprintf("w%d-k%02d", g.w, id)
	// Deletions stop at half the keyspace so an arbitrarily long stream
	// (periodic sync acks are fast) never runs out of live keys.
	if g.rng.intN(25) == 0 && g.dels < crashKeysPerW/2 {
		g.dels++
		g.deleted[id] = true
		return crashOp{del: true, key: key}
	}
	g.version[id]++
	return crashOp{key: key, val: fmt.Sprintf("%s#%d", key, g.version[id])}
}

// crashChild runs until SIGKILLed: writers apply their streams and ack each
// op on stdout only after it is durable. In periodic mode "durable" means
// written to the OS — still kill-proof, since the page cache outlives the
// process — which is exactly the claim that mode makes.
func crashChild(dir string, seed uint64) {
	opts := Options{Dir: dir, FlushBytes: 4 << 10, MaxRuns: 3}
	if os.Getenv(crashChildEnvSync) == "periodic" {
		opts.SyncInterval = 5 * time.Millisecond
	}
	shards, _ := strconv.Atoi(os.Getenv(crashChildEnvShards))
	var s interface {
		Put(key string, val []byte) error
		Delete(key string) error
	}
	var err error
	if shards > 0 {
		s, err = OpenSharded(opts, shards)
	} else {
		s, err = Open(opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "child open:", err)
		os.Exit(2)
	}
	var outMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < crashWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := newCrashGen(seed, w)
			for {
				op := g.next()
				var err error
				if op.del {
					err = s.Delete(op.key)
				} else {
					err = s.Put(op.key, []byte(op.val))
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "child op:", err)
					os.Exit(2)
				}
				outMu.Lock()
				// Unbuffered single write: either the full ack line reaches
				// the pipe or none of it does.
				fmt.Fprintf(os.Stdout, "a %d\n", w)
				outMu.Unlock()
			}
		}(w)
	}
	wg.Wait()
}

func TestKillNineChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos is not -short friendly")
	}
	for seed := uint64(1); seed <= 3; seed++ {
		seed := seed
		// Seed 3 runs the child with periodic WAL sync: acks only wait for
		// write(2), but SIGKILL cannot take back the page cache, so the
		// zero-acked-loss invariant must hold there too.
		sync := ""
		if seed == 3 {
			sync = "periodic"
		}
		t.Run(fmt.Sprintf("seed=%d,sync=%s", seed, sync), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			// expected is the last verified/acked value per key ("" = deleted).
			expected := map[string]string{}
			kills := sim.RNG(seed, 999)
			for round := 0; round < 3; round++ {
				roundSeed := seed*1000 + uint64(round)
				acks := runCrashChild(t, dir, roundSeed, 60+kills.IntN(240), sync, 0)

				// Regenerate each writer's stream: ops [0, acks[w]) are
				// acked and must be durable; op acks[w] may or may not have
				// landed (in flight at the kill).
				maybe := map[string]crashOp{}
				for w := 0; w < crashWriters; w++ {
					g := newCrashGen(roundSeed, w)
					for i := 0; i < acks[w]; i++ {
						op := g.next()
						if op.del {
							expected[op.key] = ""
						} else {
							expected[op.key] = op.val
						}
					}
					in := g.next()
					maybe[in.key] = in
				}

				s := mustOpen(t, Options{Dir: dir})
				for key, want := range expected {
					got, ok := s.Get(key)
					if matchState(want, string(got), ok) {
						continue
					}
					if in, ambiguous := maybe[key]; ambiguous {
						alt := ""
						if !in.del {
							alt = in.val
						}
						if matchState(alt, string(got), ok) {
							// The in-flight op landed (fsynced, ack lost to
							// the kill). Fold reality into the model.
							expected[key] = alt
							continue
						}
					}
					t.Fatalf("round %d: key %s = %q,%v; want %q (acked) or the in-flight op",
						round, key, got, ok, want)
				}
				if err := s.Close(); err != nil {
					t.Fatalf("round %d: Close: %v", round, err)
				}
			}
		})
	}
}

// TestKillNineChaosSharded is TestKillNineChaos over the shard-per-core
// layout: the child runs a sharded store (N independent WALs, committers,
// and flush schedules), the parent kills it mid-write and checks that
// parallel per-shard WAL replay recovers every acked op at shard counts 1,
// 4, and 8. Shard count 1 exercises the marker-less legacy layout through
// the sharded open path; the others exercise true multi-WAL recovery, with
// round 2 reopening round 1's directory so the persisted SHARDS marker —
// not the knob — picks the layout.
func TestKillNineChaosSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos is not -short friendly")
	}
	for _, shards := range []int{1, 4, 8} {
		shards := shards
		// Periodic sync on the widest layout: eight WAL buffers in flight
		// when the SIGKILL lands, none allowed to lose an acked write.
		sync := ""
		if shards == 8 {
			sync = "periodic"
		}
		t.Run(fmt.Sprintf("shards=%d,sync=%s", shards, sync), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			expected := map[string]string{}
			kills := sim.RNG(uint64(shards), 777)
			for round := 0; round < 2; round++ {
				roundSeed := uint64(shards)*10000 + uint64(round)
				acks := runCrashChild(t, dir, roundSeed, 60+kills.IntN(240), sync, shards)

				maybe := map[string]crashOp{}
				for w := 0; w < crashWriters; w++ {
					g := newCrashGen(roundSeed, w)
					for i := 0; i < acks[w]; i++ {
						op := g.next()
						if op.del {
							expected[op.key] = ""
						} else {
							expected[op.key] = op.val
						}
					}
					in := g.next()
					maybe[in.key] = in
				}

				s, err := OpenSharded(Options{Dir: dir}, shards)
				if err != nil {
					t.Fatalf("round %d: OpenSharded: %v", round, err)
				}
				if got := s.ShardCount(); got != shards {
					t.Fatalf("round %d: recovered %d shards, want %d", round, got, shards)
				}
				for key, want := range expected {
					got, ok := s.Get(key)
					if matchState(want, string(got), ok) {
						continue
					}
					if in, ambiguous := maybe[key]; ambiguous {
						alt := ""
						if !in.del {
							alt = in.val
						}
						if matchState(alt, string(got), ok) {
							expected[key] = alt
							continue
						}
					}
					t.Fatalf("round %d: key %s = %q,%v; want %q (acked) or the in-flight op",
						round, key, got, ok, want)
				}
				if err := s.Close(); err != nil {
					t.Fatalf("round %d: Close: %v", round, err)
				}
			}
		})
	}
}

// matchState reports whether an observed Get result equals a model state
// (empty string = must be absent).
func matchState(want, got string, ok bool) bool {
	if want == "" {
		return !ok
	}
	return ok && got == want
}

// runCrashChild re-execs the test binary as a crash child over dir, lets it
// run for roughly lifeMs, SIGKILLs it, and returns per-writer ack counts
// drained from the pipe.
func runCrashChild(t *testing.T, dir string, seed uint64, lifeMs int, sync string, shards int) []int {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		crashChildEnvDir+"="+dir,
		crashChildEnvSeed+"="+strconv.FormatUint(seed, 10),
		crashChildEnvSync+"="+sync,
		crashChildEnvShards+"="+strconv.Itoa(shards))
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("StdoutPipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	timer := time.AfterFunc(time.Duration(lifeMs)*time.Millisecond, func() {
		cmd.Process.Kill() // SIGKILL: no handlers, no flushes, no goodbyes
	})
	defer timer.Stop()

	acks := make([]int, crashWriters)
	sc := bufio.NewScanner(out)
	for sc.Scan() { // drains until the pipe closes at process death
		var w int
		if _, err := fmt.Sscanf(sc.Text(), "a %d", &w); err == nil && w >= 0 && w < crashWriters {
			acks[w]++
		}
	}
	cmd.Wait() // expected to be the kill signal; the acks are what matter
	total := 0
	for _, a := range acks {
		total += a
	}
	if total == 0 {
		t.Fatalf("child acked nothing before the kill (seed %d)", seed)
	}
	return acks
}
