package kvstore

import (
	"fmt"

	"c3/internal/lsm"
	"c3/internal/resp"
	"c3/internal/wire"
)

// RESP gateway adapter: maps the resp.Backend surface onto the node's
// coordinated read/write paths, so any Redis client can drive the store
// through a node acting as coordinator.
//
// Command → path mapping:
//
//	GET   → coordinateRead (ONE) / coordinateQuorumRead (QUORUM, ALL)
//	SET   → coordinateWriteSync: the full replicated write fan-out,
//	        version-stamped, hint-banked on transport failure
//	DEL   → the same write fan-out with the tombstone flag set
//	MGET  → coordinateBatchRead: the scatter-gather batch path
//	MSET  → coordinateBatchWrite under one shared version stamp
//
// Ownership: resp hands the adapter arguments aliasing its parse arena, so
// every key is cloned to a durable string and every value is copied into a
// pooled buffer before entering the coordination paths; returned values are
// fresh allocations owned by the caller. Found/miss travels as an explicit
// bool end to end — a present-but-empty value reaches RESP as a zero-length
// bulk string, a miss as a nil reply, never conflated.

// respBackend adapts one node to resp.Backend at a fixed consistency level.
type respBackend struct {
	n   *Node
	lvl Level
}

// RESPBackend returns a resp.Backend that coordinates every command through
// the node at the given consistency level.
func (n *Node) RESPBackend(lvl Level) resp.Backend {
	return &respBackend{n: n, lvl: lvl}
}

var errKeyTooLong = fmt.Errorf("key exceeds %d bytes", wire.MaxKeyLen)
var errValueTooLong = fmt.Errorf("value exceeds %d bytes", wire.MaxValueLen)
var errBatchTooLarge = fmt.Errorf("batch exceeds %d keys", wire.MaxBatchKeys)

func checkKV(key, val []byte) error {
	if len(key) > wire.MaxKeyLen {
		return errKeyTooLong
	}
	if len(val) > wire.MaxValueLen {
		return errValueTooLong
	}
	return nil
}

// Get coordinates a point read. found distinguishes a miss from an empty
// value: a stored empty value returns ([]byte{}, true, nil).
func (b *respBackend) Get(key []byte) ([]byte, bool, error) {
	if err := checkKV(key, nil); err != nil {
		return nil, false, err
	}
	n := b.n
	m := wire.ReadReq{CL: uint8(b.lvl), Key: string(key)}
	var rr wire.ReadResp
	var vbuf *[]byte
	if b.lvl == One {
		rr, vbuf = n.coordinateRead(m, nil)
	} else {
		rr, vbuf = n.coordinateQuorumRead(m)
	}
	if err := readStatusErr(rr.Status); err != nil {
		if vbuf != nil {
			putBuf(vbuf)
		}
		return nil, false, err
	}
	if !rr.Found {
		if vbuf != nil {
			putBuf(vbuf)
		}
		return nil, false, nil
	}
	var val []byte
	if vbuf == nil {
		// Inline local read: rr.Value is the raw stored bytes (version
		// prefix + payload) in a caller-owned buffer.
		_, payload := lsm.SplitVersioned(rr.Value)
		val = append([]byte{}, payload...)
	} else {
		val = append([]byte{}, rr.Value...)
		putBuf(vbuf)
	}
	return val, true, nil
}

// Set coordinates a replicated write at the backend's level.
func (b *respBackend) Set(key, val []byte) error {
	return b.write(key, val, false)
}

// Del coordinates a replicated delete. deleted reports whether the key was
// readable at the backend's level just before the tombstone landed — the
// best a leaderless store can answer for Redis's "number of keys removed"
// (the check and the delete are not atomic; concurrent writers can race).
func (b *respBackend) Del(key []byte) (bool, error) {
	if err := checkKV(key, nil); err != nil {
		return false, err
	}
	existed := b.exists(string(key))
	if err := b.write(key, nil, true); err != nil {
		return false, err
	}
	return existed, nil
}

// exists runs a coordinated read for its found bit alone.
func (b *respBackend) exists(key string) bool {
	m := wire.ReadReq{CL: uint8(b.lvl), Key: key}
	var rr wire.ReadResp
	var vbuf *[]byte
	if b.lvl == One {
		rr, vbuf = b.n.coordinateRead(m, nil)
	} else {
		rr, vbuf = b.n.coordinateQuorumRead(m)
	}
	if vbuf != nil {
		putBuf(vbuf)
	}
	return rr.Status == wire.StatusOK && rr.Found
}

func (b *respBackend) write(key, val []byte, del bool) error {
	if err := checkKV(key, val); err != nil {
		return err
	}
	n := b.n
	vb := getBuf()
	*vb = append((*vb)[:0], val...)
	m := wire.WriteReq{CL: uint8(b.lvl), Key: string(key), Value: *vb, Del: del}
	out := n.coordinateWriteSync(m, vb)
	if !out.OK {
		if err := writeStatusErr(out.Status); err != nil {
			return err
		}
		return ErrWriteFailed
	}
	return nil
}

// MGet coordinates a batch read; vals[i]/found[i] report keys[i]. A missing
// key has found[i] false and vals[i] nil; a present empty value has found[i]
// true and vals[i] a zero-length non-nil slice.
func (b *respBackend) MGet(keys [][]byte) ([][]byte, []bool, error) {
	if len(keys) > wire.MaxBatchKeys {
		return nil, nil, errBatchTooLarge
	}
	sk := make([]string, len(keys))
	for i, k := range keys {
		if len(k) > wire.MaxKeyLen {
			return nil, nil, errKeyTooLong
		}
		sk[i] = string(k)
	}
	subs, where := b.n.coordinateBatchRead(uint8(b.lvl), sk)
	vals := make([][]byte, len(keys))
	found := make([]bool, len(keys))
	for i := range sk {
		ref := where[i]
		if sb := ref.sb; sb.found != nil && sb.found[ref.j] {
			found[i] = true
			vals[i] = append([]byte{}, (*sb.vbuf)[sb.offs[ref.j]:sb.offs[ref.j+1]]...)
		}
	}
	for _, sb := range subs {
		putBuf(sb.vbuf)
	}
	return vals, found, nil
}

// MSet coordinates a batch write under one shared version stamp. Per-key
// shortfalls surface as an error (RESP MSET has no partial-success reply).
func (b *respBackend) MSet(keys, vals [][]byte) error {
	if len(keys) > wire.MaxBatchKeys {
		return errBatchTooLarge
	}
	sk := make([]string, len(keys))
	for i, k := range keys {
		if err := checkKV(k, vals[i]); err != nil {
			return err
		}
		sk[i] = string(k)
	}
	cp, arena := cloneValues(vals)
	oks, status := b.n.coordinateBatchWrite(uint8(b.lvl), sk, cp, arena)
	if err := writeStatusErr(status); err != nil {
		return err
	}
	for _, ok := range oks {
		if !ok {
			return ErrWriteFailed
		}
	}
	return nil
}

// Info renders the node's stats snapshot as a RESP INFO-style text block.
func (b *respBackend) Info() string {
	return b.n.StatsSnapshot().InfoText()
}
