package ring

import "encoding/binary"

// Murmur3_x64_128 computes the 128-bit MurmurHash3 (x64 variant) of data with
// the given seed — the hash Cassandra's Murmur3Partitioner applies to
// partition keys. Implemented from the reference algorithm; stdlib only.
func Murmur3_x64_128(data []byte, seed uint64) (h1, h2 uint64) {
	const (
		c1 = 0x87c37b91114253d5
		c2 = 0x4cf5ad432745937f
	)
	h1, h2 = seed, seed
	n := len(data)
	nblocks := n / 16

	for i := 0; i < nblocks; i++ {
		k1 := binary.LittleEndian.Uint64(data[i*16:])
		k2 := binary.LittleEndian.Uint64(data[i*16+8:])

		k1 *= c1
		k1 = rotl64(k1, 31)
		k1 *= c2
		h1 ^= k1

		h1 = rotl64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2
		k2 = rotl64(k2, 33)
		k2 *= c1
		h2 ^= k2

		h2 = rotl64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	tail := data[nblocks*16:]
	var k1, k2 uint64
	switch len(tail) & 15 {
	case 15:
		k2 ^= uint64(tail[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(tail[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(tail[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(tail[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(tail[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(tail[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(tail[8])
		k2 *= c2
		k2 = rotl64(k2, 33)
		k2 *= c1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(tail[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(tail[0])
		k1 *= c1
		k1 = rotl64(k1, 31)
		k1 *= c2
		h1 ^= k1
	}

	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

func rotl64(x uint64, r uint) uint64 { return x<<r | x>>(64-r) }

func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// Token maps a key to its position on the ring: the first 64 bits of its
// Murmur3 hash interpreted as a signed integer, exactly as Cassandra does.
func Token(key []byte) int64 {
	h1, _ := Murmur3_x64_128(key, 0)
	return int64(h1)
}
