package core

import (
	"testing"
	"time"
)

func feedLatency(d *DynamicSnitch, s ServerID, rtt time.Duration, n int, now int64) {
	for i := 0; i < n; i++ {
		d.OnResponse(s, Feedback{}, rtt, now)
	}
}

func TestSnitchPrefersLowLatencyPeer(t *testing.T) {
	d := NewDynamicSnitch(SnitchConfig{Seed: 1})
	feedLatency(d, 1, 2*time.Millisecond, 10, 0)
	feedLatency(d, 2, 40*time.Millisecond, 10, 0)
	d.Rank(nil, []ServerID{1, 2}, 0)               // starts interval clock
	got := d.Rank(nil, []ServerID{1, 2}, 150*msec) // past 100ms → recompute
	if got[0] != 1 {
		t.Fatalf("rank = %v, want low-latency peer 1 first", got)
	}
	if d.Score(1) >= d.Score(2) {
		t.Fatalf("score(1)=%v should be < score(2)=%v", d.Score(1), d.Score(2))
	}
}

func TestSnitchRankingFrozenBetweenIntervals(t *testing.T) {
	d := NewDynamicSnitch(SnitchConfig{Seed: 2})
	feedLatency(d, 1, 2*time.Millisecond, 10, 0)
	feedLatency(d, 2, 40*time.Millisecond, 10, 0)
	d.Rank(nil, []ServerID{1, 2}, 0)
	first := d.Rank(nil, []ServerID{1, 2}, 150*msec)
	lead := first[0]
	// Peer 1's latency explodes, but within the same interval the ranking
	// must not react — the §2.3 staleness weakness.
	feedLatency(d, lead, 500*time.Millisecond, 50, 160*msec)
	got := d.Rank(nil, []ServerID{1, 2}, 200*msec) // still inside interval
	if got[0] != lead {
		t.Fatalf("ranking changed mid-interval: %v", got)
	}
	// After the next tick it reacts.
	got = d.Rank(nil, []ServerID{1, 2}, 260*msec)
	if got[0] == lead {
		t.Fatalf("ranking did not react after recompute: %v", got)
	}
}

func TestSnitchSeverityDominatesLatency(t *testing.T) {
	d := NewDynamicSnitch(SnitchConfig{Seed: 3})
	// Peer 1 is 10× faster by latency but reports 5% iowait.
	feedLatency(d, 1, 2*time.Millisecond, 10, 0)
	feedLatency(d, 2, 20*time.Millisecond, 10, 0)
	d.SetSeverity(1, 0.05)
	d.Rank(nil, []ServerID{1, 2}, 0)
	got := d.Rank(nil, []ServerID{1, 2}, 150*msec)
	if got[0] != 2 {
		t.Fatalf("rank = %v: 5%% iowait should outweigh a 10× latency edge", got)
	}
}

func TestSnitchSeverityClampedNonNegative(t *testing.T) {
	d := NewDynamicSnitch(SnitchConfig{Seed: 4})
	d.SetSeverity(1, -3)
	if d.Severity(1) != 0 {
		t.Fatalf("severity = %v, want clamp to 0", d.Severity(1))
	}
}

func TestSnitchHistoryReset(t *testing.T) {
	cfg := SnitchConfig{Seed: 5, ResetInterval: 1000 * msec}
	d := NewDynamicSnitch(cfg)
	feedLatency(d, 1, 50*time.Millisecond, 20, 0)
	feedLatency(d, 2, 1*time.Millisecond, 20, 0)
	d.Rank(nil, []ServerID{1, 2}, 0)
	d.Rank(nil, []ServerID{1, 2}, 150*msec)
	if d.Score(1) <= d.Score(2) {
		t.Fatal("expected peer 1 to score worse before reset")
	}
	// After the reset interval, histories flush; with no samples both
	// latency scores drop to 0.
	d.Rank(nil, []ServerID{1, 2}, 1200*msec)
	if d.Score(1) != 0 || d.Score(2) != 0 {
		t.Fatalf("scores after reset = %v, %v; want 0, 0", d.Score(1), d.Score(2))
	}
}

func TestSnitchRingBufferBounds(t *testing.T) {
	d := NewDynamicSnitch(SnitchConfig{Seed: 6, HistorySize: 4})
	// 3 slow samples then 4 fast ones: ring keeps only the last 4.
	feedLatency(d, 1, 100*time.Millisecond, 3, 0)
	feedLatency(d, 1, 1*time.Millisecond, 4, 0)
	feedLatency(d, 2, 10*time.Millisecond, 4, 0)
	d.Rank(nil, []ServerID{1, 2}, 0)
	got := d.Rank(nil, []ServerID{1, 2}, 150*msec)
	if got[0] != 1 {
		t.Fatalf("rank = %v; old slow samples should have been evicted", got)
	}
}

func TestSnitchDeterministicWithinInterval(t *testing.T) {
	// Two snitches with identical observations must produce the identical
	// frozen ranking — that synchronization is what herds coordinators.
	mk := func(seed uint64) []ServerID {
		d := NewDynamicSnitch(SnitchConfig{Seed: seed})
		feedLatency(d, 1, 10*time.Millisecond, 10, 0)
		feedLatency(d, 2, 5*time.Millisecond, 10, 0)
		feedLatency(d, 3, 20*time.Millisecond, 10, 0)
		d.Rank(nil, []ServerID{1, 2, 3}, 0)
		return d.Rank(nil, []ServerID{1, 2, 3}, 150*msec)
	}
	a, b := mk(1), mk(999) // different seeds: ranking must still agree
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("snitch rankings diverge: %v vs %v", a, b)
		}
	}
}

func TestSnitchDefaults(t *testing.T) {
	cfg := SnitchConfig{}.withDefaults()
	if cfg.UpdateInterval != 100*msec {
		t.Fatalf("UpdateInterval = %d, want 100ms", cfg.UpdateInterval)
	}
	if cfg.ResetInterval != 600*1000*msec {
		t.Fatalf("ResetInterval = %d, want 10min", cfg.ResetInterval)
	}
	if cfg.SeverityWeight != 100 {
		t.Fatalf("SeverityWeight = %v, want 100 (two orders of magnitude)", cfg.SeverityWeight)
	}
}
