// Package sim is a deterministic discrete-event simulation engine: a virtual
// clock, a binary-heap event queue with stable FIFO ordering for simultaneous
// events, cancellable timers, and seeded RNG streams.
//
// Both evaluation substrates (internal/queuesim for the paper's §6 model and
// internal/cassim for the §5 Cassandra-like cluster) run on this engine. The
// engine is single-threaded by design: determinism is what makes every
// experiment in EXPERIMENTS.md exactly reproducible from its seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand/v2"
	"time"
)

// Event is a scheduled callback. It is created by Sim.At/Sim.After and may be
// cancelled before it fires.
type Event struct {
	t      int64 // virtual time, ns
	seq    uint64
	fn     func()
	idx    int // heap index, -1 when not queued
	cancel bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancellation is O(1); the entry is
// dropped lazily when it surfaces at the top of the heap.
func (e *Event) Cancel() {
	if e != nil {
		e.cancel = true
		e.fn = nil // release captured state promptly
	}
}

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e != nil && e.cancel }

// Time reports the virtual time the event is (or was) scheduled for.
func (e *Event) Time() int64 { return e.t }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Sim is the simulation executive. The zero value is not usable; construct
// with New.
type Sim struct {
	now     int64
	seq     uint64
	events  eventHeap
	stopped bool
	fired   uint64
}

// New returns a simulator with the clock at zero.
func New() *Sim {
	return &Sim{}
}

// Now reports the current virtual time in nanoseconds.
func (s *Sim) Now() int64 { return s.now }

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it always indicates a model bug, and silently reordering events would
// destroy determinism.
func (s *Sim) At(t int64, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at t=%d before now=%d", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	e := &Event{t: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// After schedules fn d nanoseconds from now. Negative d is clamped to zero.
func (s *Sim) After(d int64, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// AfterDur schedules fn a time.Duration from now.
func (s *Sim) AfterDur(d time.Duration, fn func()) *Event {
	return s.After(int64(d), fn)
}

// Stop makes the current Run/RunUntil call return after the in-flight event
// completes. Pending events remain queued.
func (s *Sim) Stop() { s.stopped = true }

// Pending reports the number of events currently queued (including
// cancelled-but-not-yet-collected entries).
func (s *Sim) Pending() int { return len(s.events) }

// Fired reports the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// step pops and runs a single event. It reports false when the queue is empty
// or only cancelled entries remain.
func (s *Sim) step(limit int64) bool {
	for len(s.events) > 0 {
		top := s.events[0]
		if top.cancel {
			heap.Pop(&s.events)
			continue
		}
		if limit >= 0 && top.t > limit {
			return false
		}
		heap.Pop(&s.events)
		s.now = top.t
		fn := top.fn
		top.fn = nil
		s.fired++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (s *Sim) Run() {
	s.stopped = false
	for !s.stopped && s.step(-1) {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
// Events scheduled later remain queued.
func (s *Sim) RunUntil(t int64) {
	s.stopped = false
	for !s.stopped && s.step(t) {
	}
	if !s.stopped && t > s.now {
		s.now = t
	}
}

// RNG returns a deterministic PCG random source derived from seed and stream.
// Distinct streams are independent; the same (seed, stream) always yields the
// same sequence, which is how experiments pin per-client and per-server
// randomness independently of event interleaving.
func RNG(seed, stream uint64) *rand.Rand {
	// Mix the stream into both PCG words so streams differ in more than
	// the low bits (splitmix64 finalizer).
	mix := func(z uint64) uint64 {
		z += 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	return rand.New(rand.NewPCG(mix(seed^stream), mix(seed+0x632be59bd9b4e019+stream*0x100000001b3)))
}

// Exp draws an exponentially distributed duration (ns) with the given mean,
// clamped to at least 1ns so service never completes instantaneously.
func Exp(r *rand.Rand, mean float64) int64 {
	d := int64(r.ExpFloat64() * mean)
	if d < 1 {
		d = 1
	}
	return d
}

// Common duration constants in nanoseconds, for readability in models.
const (
	Microsecond = int64(time.Microsecond)
	Millisecond = int64(time.Millisecond)
	Second      = int64(time.Second)
)
