package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"c3/internal/kvstore"
	"c3/internal/sim"
	"c3/internal/stats"
	"c3/internal/workload"
)

// Consistency benchmark: what tunable consistency actually buys. One replica
// of the group silently drops every write it receives (SetDropWrites) — a
// permanently lagging replica with no heal path, since repair write-backs to
// it fail too — and the workload measures, per (strategy × W/R levels × mix)
// cell, how often a read observes a value older than one the writer was
// already acked for. Each key has a single writer bumping a monotonic
// sequence; a reader snapshots the key's acked floor before reading, so
// `read seq < floor` is a definitive stale read, not a race. With N=3 the
// grid shows the overlap arithmetic directly: W+R ≤ N (ONE/ONE, QUORUM/ONE)
// leaks stale reads at roughly the lagging replica's share of read traffic,
// while W+R > N (QUORUM/QUORUM) must measure exactly zero.

// ConsRow is one (strategy, write level, read level, mix) cell.
type ConsRow struct {
	Strategy      string  `json:"strategy"`
	WriteLevel    string  `json:"write_level"`
	ReadLevel     string  `json:"read_level"`
	ReadFraction  float64 `json:"read_fraction"`
	Ops           int     `json:"ops"`
	Reads         int     `json:"reads"`
	StaleReads    int     `json:"stale_reads"`
	StaleRatePct  float64 `json:"stale_rate_pct"`
	Errors        int     `json:"errors"`
	Seconds       float64 `json:"seconds"`
	ThroughputOps float64 `json:"throughput_ops_per_sec"`
	ReadP50Us     float64 `json:"read_p50_us"`
	ReadP99Us     float64 `json:"read_p99_us"`
	// ReadRepairs counts version-guarded repair write-backs the coordinators
	// issued; at QUORUM reads they fire toward the lagging replica on every
	// divergent vote (and fail there, keeping it stale by construction).
	ReadRepairs uint64 `json:"read_repairs"`
}

// ConsResult is the machine-readable record of the consistency benchmark
// (BENCH_consistency.json).
type ConsResult struct {
	Config         Meta      `json:"config"`
	Nodes          int       `json:"nodes"`
	RF             int       `json:"rf"`
	Workers        int       `json:"workers"`
	Keys           int       `json:"keys"`
	DroppedReplica int       `json:"dropped_replica"`
	Rows           []ConsRow `json:"rows"`
}

// consOps reports the per-cell operation budget for the scale.
func (o Options) consOps() int {
	switch o.Scale {
	case Full:
		return 40_000
	case Medium:
		return 12_000
	default:
		return 2_000
	}
}

const (
	consNodes   = 3
	consWorkers = 4
	consKeys    = 64
)

// consLevels is the W/R grid: the two cells with W+R ≤ N bracket the one
// cell whose overlap guarantees read-your-writes.
var consLevels = []struct{ w, r kvstore.Level }{
	{kvstore.One, kvstore.One},
	{kvstore.Quorum, kvstore.One},
	{kvstore.Quorum, kvstore.Quorum},
}

// consMixes is the read fractions swept per level pair.
var consMixes = []float64{0.5, 0.9}

// runConsRow boots a cluster with one write-dropping replica, drives the
// single-writer-per-key workload at the cell's levels, and measures staleness
// and read latency.
func runConsRow(o Options, strategy string, wl, rl kvstore.Level, readFraction float64, seed uint64) (ConsRow, error) {
	row := ConsRow{
		Strategy:     strategy,
		WriteLevel:   wl.String(),
		ReadLevel:    rl.String(),
		ReadFraction: readFraction,
	}
	cluster, err := kvstore.StartCluster(consNodes, kvstore.Config{
		Strategy:   strategy,
		Seed:       seed,
		ReadRepair: -1, // no background anti-entropy: staleness heals only via the level's own machinery
	})
	if err != nil {
		return row, err
	}
	defer cluster.Close()
	cl, err := kvstore.Dial(cluster.Addrs())
	if err != nil {
		return row, err
	}
	defer cl.Close()

	// Preload every key at ALL while the whole group is healthy: each replica
	// holds seq 0, so a stale read is always a definite old value rather than
	// a not-found, and no readable-wait loop is needed.
	keys := make([]string, consKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("cons-%05d", i)
		if err := cl.PutAt(keys[i], []byte("0"), kvstore.All); err != nil {
			return row, fmt.Errorf("preload %q: %w", keys[i], err)
		}
	}
	// From here on the last node drops every write: acked writes land only on
	// the other two replicas, so this node serves seq 0 forever.
	cluster.Nodes[consNodes-1].SetDropWrites(true)

	// floors[i] is the highest sequence acked back to key i's writer. A
	// reader snapshots it before dispatching the read; observing less is a
	// stale read by definition.
	floors := make([]atomic.Uint64, consKeys)
	seqs := make([]uint64, consKeys) // next sequence per key; only the owner worker touches seqs[i]

	ops := o.consOps()
	perWorker := ops / consWorkers
	zipf := workload.NewScrambled(consKeys, 0.99)
	lat := make([][]float64, consWorkers)
	staleCounts := make([]int, consWorkers)
	readCounts := make([]int, consWorkers)
	errCounts := make([]int, consWorkers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < consWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := sim.RNG(seed, uint64(w)+29)
			samples := make([]float64, 0, perWorker)
			var val []byte
			for i := 0; i < perWorker; i++ {
				k := int(zipf.Next(r)) % consKeys
				if r.Float64() < readFraction {
					floor := floors[k].Load()
					t0 := time.Now()
					v, ok, err := cl.GetAt(keys[k], rl)
					d := time.Since(t0)
					if err != nil {
						errCounts[w]++
						continue
					}
					readCounts[w]++
					samples = append(samples, float64(d.Nanoseconds())/1e3)
					if !ok {
						staleCounts[w]++ // every key was preloaded; missing means the lagging replica answered alone
						continue
					}
					seq, perr := strconv.ParseUint(string(v), 10, 64)
					if perr != nil {
						errCounts[w]++
						continue
					}
					if seq < floor {
						staleCounts[w]++
					}
				} else {
					// Single writer per key: worker w owns keys ≡ w (mod workers).
					mine := (k/consWorkers)*consWorkers + w
					if mine >= consKeys {
						mine -= consWorkers
					}
					seqs[mine]++
					val = strconv.AppendUint(val[:0], seqs[mine], 10)
					if err := cl.PutAt(keys[mine], val, wl); err != nil {
						errCounts[w]++
						continue
					}
					floors[mine].Store(seqs[mine])
				}
			}
			lat[w] = samples
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	reads := stats.NewSample(ops)
	for _, s := range lat {
		for _, x := range s {
			reads.Add(x)
		}
	}
	for w := 0; w < consWorkers; w++ {
		row.Reads += readCounts[w]
		row.StaleReads += staleCounts[w]
		row.Errors += errCounts[w]
	}
	for _, n := range cluster.Nodes {
		row.ReadRepairs += n.ReadRepairs()
	}
	row.Ops = perWorker * consWorkers
	row.Seconds = elapsed.Seconds()
	row.ThroughputOps = float64(row.Ops) / elapsed.Seconds()
	row.ReadP50Us = reads.Percentile(50)
	row.ReadP99Us = reads.Percentile(99)
	if row.Reads > 0 {
		row.StaleRatePct = 100 * float64(row.StaleReads) / float64(row.Reads)
	}
	return row, nil
}

// RunConsistency executes the strategy × level-pair × mix grid.
func RunConsistency(o Options) (ConsResult, error) {
	res := ConsResult{
		Config:         o.meta(runtime.GOMAXPROCS(0), SyncInMemory),
		Nodes:          consNodes,
		RF:             consNodes,
		Workers:        consWorkers,
		Keys:           consKeys,
		DroppedReplica: consNodes - 1,
	}
	seed := uint64(1)
	for _, strategy := range o.tailStrategies() {
		for _, lv := range consLevels {
			for _, mix := range consMixes {
				row, err := runConsRow(o, strategy, lv.w, lv.r, mix, seed)
				if err != nil {
					return res, fmt.Errorf("consistency %s W=%s/R=%s mix=%.2f: %w",
						strategy, lv.w, lv.r, mix, err)
				}
				res.Rows = append(res.Rows, row)
				seed += 101
			}
		}
	}
	return res, nil
}

// findConsRow locates a cell of the grid.
func findConsRow(res ConsResult, strategy string, wl, rl kvstore.Level, mix float64) (ConsRow, bool) {
	for _, row := range res.Rows {
		if row.Strategy == strategy && row.WriteLevel == wl.String() &&
			row.ReadLevel == rl.String() && row.ReadFraction == mix {
			return row, true
		}
	}
	return ConsRow{}, false
}

// writeConsistencyJSON writes the machine-readable record to path.
func writeConsistencyJSON(res ConsResult, path string) error {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}

// Consistency is the runner for the tunable-consistency benchmark: stale-read
// rate and read latency across W/R level pairs, read-write mixes, and
// selection strategies, against a permanently lagging replica. With
// Options.ConsistencyJSONPath set it also writes BENCH_consistency.json.
func Consistency(o Options) *Report {
	r := newReport("consistency", "stale reads and quorum latency across W/R levels (lagging replica)")
	res, err := RunConsistency(o)
	if err != nil {
		r.fail(err)
		return r
	}
	r.printf("%d nodes (RF=%d), %d workers, %d keys, %d ops/cell, node %d drops writes",
		res.Nodes, res.RF, res.Workers, res.Keys, o.consOps(), res.DroppedReplica)
	for _, row := range res.Rows {
		r.printf("  %-3s W=%-6s R=%-6s %2.0f%%r stale=%6.2f%% (%d/%d) p50=%6.0fµs p99=%7.0fµs thr=%6.0f/s repairs=%d errs=%d",
			row.Strategy, row.WriteLevel, row.ReadLevel, row.ReadFraction*100,
			row.StaleRatePct, row.StaleReads, row.Reads,
			row.ReadP50Us, row.ReadP99Us, row.ThroughputOps, row.ReadRepairs, row.Errors)
	}

	const mix = 0.9
	if one, ok := findConsRow(res, kvstore.StratC3, kvstore.One, kvstore.One, mix); ok {
		r.Metric("consistency_stale_pct_one", one.StaleRatePct)
	}
	if qq, ok := findConsRow(res, kvstore.StratC3, kvstore.Quorum, kvstore.Quorum, mix); ok {
		r.Metric("consistency_stale_pct_quorum", qq.StaleRatePct)
		r.Metric("consistency_quorum_p99_us_c3", qq.ReadP99Us)
	}
	if rr, ok := findConsRow(res, kvstore.StratRR, kvstore.Quorum, kvstore.Quorum, mix); ok {
		r.Metric("consistency_quorum_p99_us_rr", rr.ReadP99Us)
	}
	// W+R > N is a guarantee, not a tendency: any stale read at
	// QUORUM/QUORUM is a correctness failure.
	for _, row := range res.Rows {
		if row.WriteLevel == kvstore.Quorum.String() && row.ReadLevel == kvstore.Quorum.String() &&
			row.StaleReads > 0 {
			r.fail(fmt.Errorf("stale reads at W=QUORUM/R=QUORUM (%s, %.0f%% reads): %d",
				row.Strategy, row.ReadFraction*100, row.StaleReads))
		}
	}
	if o.ConsistencyJSONPath != "" {
		if err := writeConsistencyJSON(res, o.ConsistencyJSONPath); err != nil {
			r.printf("write %s: %v", o.ConsistencyJSONPath, err)
		} else {
			r.printf("wrote %s", o.ConsistencyJSONPath)
		}
	}
	return r
}
