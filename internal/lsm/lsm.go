// Package lsm is a compact log-structured merge storage engine: an in-memory
// memtable that flushes into immutable sorted runs guarded by Bloom filters,
// with size-triggered full compaction. It is the storage substrate behind the
// TCP key-value store (internal/kvstore) — the real-system counterpart of
// the service-time model in internal/cassim, exhibiting the same phenomena
// the paper discusses: read amplification growing with the number of runs,
// and compaction as a period of concentrated work.
package lsm

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Options configures a Store.
type Options struct {
	// FlushBytes triggers a memtable flush once its payload exceeds this
	// size. Default 4 MiB.
	FlushBytes int
	// MaxRuns triggers a full compaction when exceeded. Default 8.
	MaxRuns int
}

func (o Options) withDefaults() Options {
	if o.FlushBytes <= 0 {
		o.FlushBytes = 4 << 20
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 8
	}
	return o
}

// Stats is a snapshot of storage activity counters. RunsConsulted/Gets is
// the engine's read amplification; BloomSkips counts runs skipped by filters.
type Stats struct {
	Gets, Puts, Deletes  uint64
	Flushes, Compactions uint64
	RunsConsulted        uint64
	BloomSkips           uint64
}

// counters are the live atomic counters behind Stats (reads update them
// under the shared lock, so they must be atomic).
type counters struct {
	gets, puts, deletes  atomic.Uint64
	flushes, compactions atomic.Uint64
	runsConsulted        atomic.Uint64
	bloomSkips           atomic.Uint64
}

// run is an immutable sorted key/value file image. Tombstones are nil values.
type run struct {
	keys  []string
	vals  [][]byte
	bloom *Bloom
	bytes int
}

func (r *run) get(key string) ([]byte, bool) {
	i := sort.SearchStrings(r.keys, key)
	if i < len(r.keys) && r.keys[i] == key {
		return r.vals[i], true
	}
	return nil, false
}

// Store is the engine. It is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	opts Options
	mem  map[string][]byte // nil value = tombstone
	memB int
	runs []*run // newest first
	c    counters
}

// Open returns an empty store.
func Open(opts Options) *Store {
	return &Store{opts: opts.withDefaults(), mem: make(map[string][]byte)}
}

// Put stores a copy of val under key.
func (s *Store) Put(key string, val []byte) {
	cp := make([]byte, len(val))
	copy(cp, val)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.c.puts.Add(1)
	s.putLocked(key, cp)
}

// PutIfAbsent stores a copy of val under key only when the key has no live
// value, reporting whether it stored. The check and the write share one
// critical section — the atomic guard membership streaming relies on so a
// streamed pre-move value can never clobber a newer concurrent write.
func (s *Store) PutIfAbsent(key string, val []byte) bool {
	cp := make([]byte, len(val))
	copy(cp, val)
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.mem[key]; ok {
		if v != nil {
			return false
		}
	} else {
		for _, r := range s.runs {
			if !r.bloom.MayContain(key) {
				continue
			}
			if v, ok := r.get(key); ok {
				if v != nil {
					return false
				}
				break // newest version is a tombstone: absent
			}
		}
	}
	s.c.puts.Add(1)
	s.putLocked(key, cp)
	return true
}

// Delete removes key (writes a tombstone).
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.c.deletes.Add(1)
	s.putLocked(key, nil)
}

func (s *Store) putLocked(key string, val []byte) {
	if old, ok := s.mem[key]; ok {
		s.memB -= len(key) + len(old)
	}
	s.mem[key] = val
	s.memB += len(key) + len(val)
	if s.memB >= s.opts.FlushBytes {
		s.flushLocked()
	}
}

// Get reads the newest value of key into a fresh buffer, consulting the
// memtable and then each run from newest to oldest, skipping runs whose
// Bloom filter excludes the key.
func (s *Store) Get(key string) ([]byte, bool) {
	v, ok := s.GetAppend(nil, key)
	if !ok {
		return nil, false
	}
	if v == nil {
		v = []byte{} // present but empty: stay distinguishable from missing
	}
	return v, true
}

// GetAppend appends the newest value of key to dst, reporting whether the
// key exists (when it does not, dst is returned unchanged). This is Get
// without the intermediate allocation: the TCP store streams values straight
// into outgoing frame buffers with it.
func (s *Store) GetAppend(dst []byte, key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.c.gets.Add(1)
	if v, ok := s.mem[key]; ok {
		if v == nil {
			return dst, false
		}
		return append(dst, v...), true
	}
	for _, r := range s.runs {
		if !r.bloom.MayContain(key) {
			s.c.bloomSkips.Add(1)
			continue
		}
		s.c.runsConsulted.Add(1)
		if v, ok := r.get(key); ok {
			if v == nil {
				return dst, false
			}
			return append(dst, v...), true
		}
	}
	return dst, false
}

// Flush forces the memtable into a new run.
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
}

func (s *Store) flushLocked() {
	if len(s.mem) == 0 {
		return
	}
	keys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	r := &run{
		keys:  keys,
		vals:  make([][]byte, len(keys)),
		bloom: NewBloom(len(keys)),
	}
	for i, k := range keys {
		r.vals[i] = s.mem[k]
		r.bytes += len(k) + len(s.mem[k])
		r.bloom.Add(k)
	}
	s.runs = append([]*run{r}, s.runs...)
	s.mem = make(map[string][]byte)
	s.memB = 0
	s.c.flushes.Add(1)
	if len(s.runs) > s.opts.MaxRuns {
		s.compactLocked()
	}
}

// Compact merges every run into one, dropping shadowed versions and
// tombstones.
func (s *Store) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactLocked()
}

func (s *Store) compactLocked() {
	if len(s.runs) <= 1 {
		return
	}
	// Newest-wins merge: walk runs oldest → newest into a map, then sort.
	merged := make(map[string][]byte)
	for i := len(s.runs) - 1; i >= 0; i-- {
		r := s.runs[i]
		for j, k := range r.keys {
			merged[k] = r.vals[j]
		}
	}
	keys := make([]string, 0, len(merged))
	for k, v := range merged {
		if v == nil {
			continue // tombstones die at full compaction
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := &run{
		keys:  keys,
		vals:  make([][]byte, len(keys)),
		bloom: NewBloom(len(keys)),
	}
	for i, k := range keys {
		out.vals[i] = merged[k]
		out.bytes += len(k) + len(merged[k])
		out.bloom.Add(k)
	}
	s.runs = []*run{out}
	s.c.compactions.Add(1)
}

// Runs reports the current number of immutable runs.
func (s *Store) Runs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.runs)
}

// MemBytes reports the memtable payload size.
func (s *Store) MemBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.memB
}

// AppendLiveKeys appends every live key to dst in ascending byte order —
// the snapshot membership streaming paginates over (linear scan; cold path).
func (s *Store) AppendLiveKeys(dst []string) []string {
	s.mu.RLock()
	live := make(map[string]bool, len(s.mem))
	for i := len(s.runs) - 1; i >= 0; i-- {
		r := s.runs[i]
		for j, k := range r.keys {
			live[k] = r.vals[j] != nil
		}
	}
	for k, v := range s.mem {
		live[k] = v != nil
	}
	s.mu.RUnlock()
	for k, alive := range live {
		if alive {
			dst = append(dst, k)
		}
	}
	sort.Strings(dst)
	return dst
}

// Has reports whether key currently exists, without copying its value.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if v, ok := s.mem[key]; ok {
		return v != nil
	}
	for _, r := range s.runs {
		if !r.bloom.MayContain(key) {
			continue
		}
		if v, ok := r.get(key); ok {
			return v != nil
		}
	}
	return false
}

// Len reports the number of live keys (linear scan; diagnostics only).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	live := make(map[string]bool)
	for i := len(s.runs) - 1; i >= 0; i-- {
		r := s.runs[i]
		for j, k := range r.keys {
			live[k] = r.vals[j] != nil
		}
	}
	for k, v := range s.mem {
		live[k] = v != nil
	}
	n := 0
	for _, alive := range live {
		if alive {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Gets:          s.c.gets.Load(),
		Puts:          s.c.puts.Load(),
		Deletes:       s.c.deletes.Load(),
		Flushes:       s.c.flushes.Load(),
		Compactions:   s.c.compactions.Load(),
		RunsConsulted: s.c.runsConsulted.Load(),
		BloomSkips:    s.c.bloomSkips.Load(),
	}
}
