// Package ring implements a Cassandra-style consistent-hash token ring:
// Murmur3 partitioning, per-node tokens assigned as equal segments of the
// token space (the paper: "We assign tokens to each Cassandra node such that
// nodes own equal segments of the keyspace"), and replica sets found by
// walking the ring clockwise.
package ring

import (
	"fmt"
	"math"
	"sort"

	"c3/internal/core"
)

// Ring is an immutable token ring over a set of nodes.
type Ring struct {
	tokens []int64         // ascending ring positions
	owners []core.ServerID // owners[i] owns tokens[i]
	rf     int
}

// New builds a ring of n nodes with replication factor rf and one token per
// node at equal spacing (node i owns token min + i·(range/n)). It panics on
// a non-positive node count or an rf outside [1, n].
func New(n, rf int) *Ring {
	if n <= 0 {
		panic("ring: need at least one node")
	}
	if rf < 1 || rf > n {
		panic(fmt.Sprintf("ring: replication factor %d outside [1, %d]", rf, n))
	}
	r := &Ring{
		tokens: make([]int64, n),
		owners: make([]core.ServerID, n),
		rf:     rf,
	}
	step := uint64(math.MaxUint64) / uint64(n)
	for i := 0; i < n; i++ {
		r.tokens[i] = math.MinInt64 + int64(uint64(i)*step)
		r.owners[i] = core.ServerID(i)
	}
	return r
}

// NewWithTokens builds a ring from explicit (token, owner) pairs, for
// clusters with non-uniform ownership. It panics on duplicate tokens.
func NewWithTokens(tokens map[int64]core.ServerID, rf int) *Ring {
	if len(tokens) == 0 {
		panic("ring: no tokens")
	}
	owners := map[core.ServerID]bool{}
	r := &Ring{rf: rf}
	for t, o := range tokens {
		r.tokens = append(r.tokens, t)
		owners[o] = true
	}
	if rf < 1 || rf > len(owners) {
		panic(fmt.Sprintf("ring: replication factor %d outside [1, %d]", rf, len(owners)))
	}
	sort.Slice(r.tokens, func(i, j int) bool { return r.tokens[i] < r.tokens[j] })
	r.owners = make([]core.ServerID, len(r.tokens))
	for i, t := range r.tokens {
		r.owners[i] = tokens[t]
	}
	return r
}

// Nodes reports the number of ring positions.
func (r *Ring) Nodes() int { return len(r.tokens) }

// RF reports the replication factor.
func (r *Ring) RF() int { return r.rf }

// primaryIndex finds the ring position owning token t: the first position
// with tokens[i] ≥ t, wrapping past the last token.
func (r *Ring) primaryIndex(t int64) int {
	i := sort.Search(len(r.tokens), func(i int) bool { return r.tokens[i] >= t })
	if i == len(r.tokens) {
		return 0
	}
	return i
}

// ReplicasFor writes the RF distinct replicas of key into dst (walking the
// ring clockwise from the key's token, skipping duplicate owners) and
// returns it. dst may be nil.
func (r *Ring) ReplicasFor(key []byte, dst []core.ServerID) []core.ServerID {
	return r.ReplicasForToken(Token(key), dst)
}

// ReplicasForToken is ReplicasFor for a precomputed token.
func (r *Ring) ReplicasForToken(t int64, dst []core.ServerID) []core.ServerID {
	dst = dst[:0]
	i := r.primaryIndex(t)
	for len(dst) < r.rf {
		owner := r.owners[i%len(r.owners)]
		dup := false
		for _, d := range dst {
			if d == owner {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, owner)
		}
		i++
	}
	return dst
}

// PrimaryFor reports the first replica for a key.
func (r *Ring) PrimaryFor(key []byte) core.ServerID {
	return r.owners[r.primaryIndex(Token(key))]
}

// Groups enumerates the distinct replica groups of the ring in primary-token
// order. With one token per node there are exactly Nodes() groups.
func (r *Ring) Groups() [][]core.ServerID {
	seen := map[string]bool{}
	var out [][]core.ServerID
	for i := range r.tokens {
		g := r.ReplicasForToken(r.tokens[i], nil)
		k := fmt.Sprint(g)
		if !seen[k] {
			seen[k] = true
			out = append(out, g)
		}
	}
	return out
}

// GroupIndexFor reports which entry of Groups() serves the token, assuming
// the default one-token-per-node layout (groups are keyed by the primary
// ring position).
func (r *Ring) GroupIndexFor(t int64) int { return r.primaryIndex(t) }
