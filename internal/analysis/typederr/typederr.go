// Package typederr enforces the PR 7 error taxonomy: the sentinel errors
// ErrQuorumUnavailable, ErrTimeout, ErrWriteFailed and ErrClosed are part of
// the public failure contract and must be tested with errors.Is — never ==,
// != or a switch case, all of which break the moment a sentinel is wrapped
// with fmt.Errorf("...: %w", err) — and never by matching on error text,
// which breaks when a message is reworded.
package typederr

import (
	"go/ast"
	"go/token"
	"go/types"

	"c3/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "typederr",
	Doc: "sentinel errors (ErrQuorumUnavailable, ErrTimeout, ErrWriteFailed, " +
		"ErrClosed) must be compared with errors.Is, not == or string matching",
	Run: run,
}

func sentinelName(name string) bool {
	switch name {
	case "ErrQuorumUnavailable", "ErrTimeout", "ErrWriteFailed", "ErrClosed":
		return true
	}
	return false
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// sentinel reports whether e names one of the taxonomy sentinels.
	sentinel := func(e ast.Expr) (string, bool) {
		var id *ast.Ident
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			id = e.Sel
		default:
			return "", false
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || !sentinelName(obj.Name()) {
			return "", false
		}
		// Only error-typed package-level sentinels count; an unrelated local
		// that happens to share the name is left alone.
		if obj.Parent() == nil || obj.Parent().Parent() != types.Universe {
			return "", false
		}
		return obj.Name(), isErrorType(obj.Type())
	}

	// errorText reports whether e is a call to Error() on an error value —
	// the root of every string-matching pattern.
	errorText := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
			return false
		}
		s, ok := info.Selections[sel]
		return ok && isErrorType(s.Recv())
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if name, ok := sentinel(side); ok {
						pass.Reportf(n.Pos(),
							"comparing %s with %s breaks on wrapped errors; use errors.Is", name, n.Op)
						return true
					}
				}
				if errorText(n.X) || errorText(n.Y) {
					pass.Reportf(n.Pos(),
						"matching on err.Error() text is brittle; use errors.Is with a sentinel")
				}
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorType(info.TypeOf(n.Tag)) {
					return true
				}
				for _, clause := range n.Body.List {
					for _, e := range clause.(*ast.CaseClause).List {
						if name, ok := sentinel(e); ok {
							pass.Reportf(e.Pos(),
								"switch case compares %s by identity and breaks on wrapped errors; use errors.Is", name)
						}
					}
				}
			case *ast.CallExpr:
				pkg, name, _ := analysis.CalleeName(info, n)
				if pkg != "strings" {
					return true
				}
				switch name {
				case "Contains", "HasPrefix", "HasSuffix", "Index", "EqualFold":
					for _, arg := range n.Args {
						if errorText(arg) {
							pass.Reportf(n.Pos(),
								"matching on err.Error() text is brittle; use errors.Is with a sentinel")
							return true
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	it, ok := t.Underlying().(*types.Interface)
	return ok && it.NumMethods() == 1 && it.Method(0).Name() == "Error"
}
