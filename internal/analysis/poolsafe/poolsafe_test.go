package poolsafe_test

import (
	"testing"

	"c3/internal/analysis/analysistest"
	"c3/internal/analysis/poolsafe"
)

func TestPoolSafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), poolsafe.Analyzer, "poolsafe")
}
