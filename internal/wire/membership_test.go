package wire

import (
	"bytes"
	"strings"
	"testing"
)

func ringUpdateFixture() RingUpdate {
	return RingUpdate{
		ID: 7, Epoch: 3, RF: 2, Phase: PhaseJoin, Subject: 5,
		Nodes: []RingNode{
			{ID: 0, Token: -100, Addr: "127.0.0.1:7001"},
			{ID: 1, Token: 0, Addr: "127.0.0.1:7002"},
			{ID: 5, Token: 50, Addr: "127.0.0.1:7003"},
		},
	}
}

func TestRingUpdateRoundTrip(t *testing.T) {
	in := ringUpdateFixture()
	enc, err := AppendRingUpdate(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(enc))
	typ, payload, err := r.Next()
	if err != nil || typ != MsgRingUpdate {
		t.Fatalf("frame: typ=%d err=%v", typ, err)
	}
	out, err := ParseRingUpdate(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Epoch != in.Epoch || out.RF != in.RF ||
		out.Phase != in.Phase || out.Subject != in.Subject || len(out.Nodes) != len(in.Nodes) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	for i := range in.Nodes {
		if out.Nodes[i] != in.Nodes[i] {
			t.Fatalf("node %d: %+v vs %+v", i, out.Nodes[i], in.Nodes[i])
		}
	}
}

func TestRingUpdateRejects(t *testing.T) {
	base := ringUpdateFixture()
	for name, mut := range map[string]func(*RingUpdate){
		"no nodes":        func(m *RingUpdate) { m.Nodes = nil },
		"bad phase":       func(m *RingUpdate) { m.Phase = 9 },
		"duplicate id":    func(m *RingUpdate) { m.Nodes[1].ID = m.Nodes[0].ID },
		"duplicate token": func(m *RingUpdate) { m.Nodes[1].Token = m.Nodes[0].Token },
		"rf zero":         func(m *RingUpdate) { m.RF = 0 },
		"rf above nodes":  func(m *RingUpdate) { m.RF = 4 },
	} {
		m := base
		m.Nodes = append([]RingNode(nil), base.Nodes...)
		mut(&m)
		enc, err := AppendRingUpdate(nil, m)
		if err != nil {
			continue // rejected at encode: equally fine
		}
		if _, err := ParseRingUpdate(enc[5:]); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestRingUpdateTruncatedEpoch(t *testing.T) {
	enc, err := AppendRingUpdate(nil, ringUpdateFixture())
	if err != nil {
		t.Fatal(err)
	}
	// Cut the payload inside the epoch field (after the 5-byte header and
	// 8-byte ID).
	if _, err := ParseRingUpdate(enc[5 : 5+11]); err == nil {
		t.Fatal("truncated epoch decoded without error")
	}
}

func TestRingAckJoinReqRoundTrip(t *testing.T) {
	enc, err := AppendRingAck(nil, RingAck{ID: 9, Epoch: 4})
	if err != nil {
		t.Fatal(err)
	}
	ack, err := ParseRingAck(enc[5:])
	if err != nil || ack.ID != 9 || ack.Epoch != 4 {
		t.Fatalf("ack round trip: %+v err=%v", ack, err)
	}
	enc, err = AppendJoinReq(nil, JoinReq{ID: 11, Addr: "10.0.0.1:9999"})
	if err != nil {
		t.Fatal(err)
	}
	jr, err := ParseJoinReq(enc[5:])
	if err != nil || jr.ID != 11 || jr.Addr != "10.0.0.1:9999" {
		t.Fatalf("join round trip: %+v err=%v", jr, err)
	}
}

func TestStreamReqRoundTrip(t *testing.T) {
	in := StreamReq{ID: 3, Epoch: 8, Start: -500, End: 12345, Cursor: "chaos-000123"}
	enc, err := AppendStreamReq(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseStreamReq(enc[5:])
	if err != nil || out != in {
		t.Fatalf("round trip: %+v vs %+v err=%v", out, in, err)
	}
	// A wrapping arc (Start ≥ End) is legal on the wire; range semantics are
	// the ring's business.
	in = StreamReq{ID: 4, Epoch: 8, Start: 100, End: -100}
	enc, err = AppendStreamReq(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if out, err = ParseStreamReq(enc[5:]); err != nil || out != in {
		t.Fatalf("wrapping arc round trip: %+v err=%v", out, err)
	}
}

func TestStreamChunkRoundTrip(t *testing.T) {
	in := StreamChunk{
		ID: 21, Epoch: 5, Done: true,
		Keys:   []string{"a", "bb", "ccc"},
		Values: [][]byte{[]byte("v1"), nil, []byte("vvv3")},
	}
	enc, err := AppendStreamChunk(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseStreamChunk(enc[5:], nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Epoch != in.Epoch || !out.Done || out.Status != StreamOK ||
		len(out.Keys) != 3 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	for i := range in.Keys {
		if out.Keys[i] != in.Keys[i] || !bytes.Equal(out.Values[i], in.Values[i]) {
			t.Fatalf("item %d mismatch: %q/%q", i, out.Keys[i], out.Values[i])
		}
	}
}

func TestStreamChunkEmptyPage(t *testing.T) {
	// Zero items is legal (an empty final page), unlike batch frames.
	enc, err := AppendStreamChunk(nil, StreamChunk{ID: 1, Epoch: 2, Done: true})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseStreamChunk(enc[5:], nil, nil)
	if err != nil || len(out.Keys) != 0 || !out.Done {
		t.Fatalf("empty page: %+v err=%v", out, err)
	}
}

func TestStreamChunkWrongEpochRejection(t *testing.T) {
	enc, err := AppendStreamChunk(nil, StreamChunk{ID: 2, Status: StreamWrongEpoch, Epoch: 9, Done: true})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseStreamChunk(enc[5:], nil, nil)
	if err != nil || out.Status != StreamWrongEpoch || out.Epoch != 9 || len(out.Keys) != 0 {
		t.Fatalf("rejection round trip: %+v err=%v", out, err)
	}
	// A rejection claiming items is malformed on both sides.
	if _, err := AppendStreamChunk(nil, StreamChunk{Status: StreamWrongEpoch,
		Keys: []string{"x"}, Values: [][]byte{nil}}); err == nil {
		t.Fatal("encode accepted a rejection with items")
	}
}

func TestStreamChunkStreamingEncoder(t *testing.T) {
	// The Begin/Finish server path must produce bytes identical to the
	// convenience encoder.
	in := StreamChunk{
		ID: 77, Epoch: 6, Done: false,
		Keys:   []string{"k0", "k1"},
		Values: [][]byte{[]byte("alpha"), []byte("")},
	}
	want, err := AppendStreamChunk(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	got, mark := BeginStreamChunk(nil, in.ID, in.Epoch)
	for i, k := range in.Keys {
		if got, err = BeginStreamItem(got, &mark, k); err != nil {
			t.Fatal(err)
		}
		got = append(got, in.Values[i]...)
		if got, err = FinishStreamItem(got, &mark); err != nil {
			t.Fatal(err)
		}
	}
	if got, err = FinishStreamChunk(got, mark, in.Done); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("streaming encoder diverges:\n%x\n%x", got, want)
	}
}

func TestStreamChunkEncoderErrors(t *testing.T) {
	if _, err := AppendStreamChunk(nil, StreamChunk{Keys: []string{"a"}}); err == nil {
		t.Fatal("keys/values mismatch accepted")
	}
	b, mark := BeginStreamChunk(nil, 1, 1)
	if _, err := FinishStreamItem(b, &mark); err == nil {
		t.Fatal("FinishStreamItem without Begin accepted")
	}
	b, err := BeginStreamItem(b, &mark, "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BeginStreamItem(b, &mark, "k2"); err == nil {
		t.Fatal("nested BeginStreamItem accepted")
	}
	if _, err := FinishStreamChunk(b, mark, true); err == nil {
		t.Fatal("FinishStreamChunk with open item accepted")
	}
	if _, err := AppendJoinReq(nil, JoinReq{Addr: strings.Repeat("a", MaxKeyLen+1)}); err == nil {
		t.Fatal("oversized join addr accepted")
	}
}
