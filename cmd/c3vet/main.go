// Command c3vet is the repository's invariant checker: a multichecker over
// the five internal/analysis analyzers (accountpair, aliasretain, poolsafe,
// typederr, lockscope). It runs two ways:
//
//   - As a vet tool: `go vet -vettool=$(pwd)/c3vet ./...`. The go command
//     drives it per package with a vet.cfg manifest; imports are resolved
//     from the compiler's export data, so whole-tree runs are fast and
//     incremental. This is the CI entry point (scripts/lint.sh).
//
//   - Standalone: `c3vet ./...` type-checks the named packages (and, once,
//     their dependency closure) from source via internal/analysis/load.
//     Slower, but needs nothing from the build cache.
//
// Findings print as file:line:col: message [analyzer]; any finding exits
// nonzero, which fails `go vet`. Suppressions are inline:
// //lint:allow <analyzer> <reason> — see internal/analysis.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"c3/internal/analysis"
	"c3/internal/analysis/accountpair"
	"c3/internal/analysis/aliasretain"
	"c3/internal/analysis/load"
	"c3/internal/analysis/lockscope"
	"c3/internal/analysis/poolsafe"
	"c3/internal/analysis/typederr"
)

// analyzers is the registered suite; cmd/c3vet's meta-test pins this list.
var analyzers = []*analysis.Analyzer{
	accountpair.Analyzer,
	aliasretain.Analyzer,
	poolsafe.Analyzer,
	typederr.Analyzer,
	lockscope.Analyzer,
}

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		// The go command's handshake: it fingerprints the tool for its
		// build cache. The "devel" form requires a trailing buildID field;
		// hashing our own executable makes cache entries track rebuilds.
		fmt.Printf("c3vet version devel comments-go-here buildID=%02x\n", selfHash())
		return
	case len(args) == 1 && args[0] == "-flags":
		// The go command probes the tool's flag set as a JSON array. c3vet
		// takes no analyzer flags: configuration is in the source tree
		// (suppression directives), where it is reviewed.
		fmt.Println("[]")
		return
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(unitcheck(args[0]))
	case len(args) > 0 && args[0] == "help":
		usage(os.Stdout)
		return
	}
	os.Exit(standalone(args))
}

func usage(w io.Writer) {
	fmt.Fprintf(w, "usage: c3vet [package pattern ...]  (or via go vet -vettool)\n\nanalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(w, "\nsuppress a finding with `//lint:allow <analyzer> <reason>` on or above its line\n")
}

func selfHash() string {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	return string(h.Sum(nil))
}

// vetConfig is the go command's per-package vet manifest (cmd/go
// internal/work; stable since Go 1.12).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	ModulePath                string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package under `go vet`, returning the process exit
// code.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return fail(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fail(fmt.Errorf("parsing %s: %v", cfgPath, err))
	}
	// Dependencies outside the module (and synthesized test mains) are
	// visited only so downstream packages can import them; none of the
	// invariants apply there.
	ours := cfg.ModulePath != "" && !strings.HasSuffix(cfg.ImportPath, ".test")
	if cfg.VetxOnly || !ours {
		return writeVetx(cfg)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		af, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fail(err)
		}
		files = append(files, af)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := analysis.NewInfo()
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, cfg.Compiler, lookup),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg)
		}
		return fail(fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err))
	}
	findings, err := analysis.RunPackage(fset, files, pkg, info, analyzers)
	if err != nil {
		return fail(err)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return writeVetx(cfg)
}

// writeVetx records the (empty) fact file the go command expects from a
// successful run.
func writeVetx(cfg vetConfig) int {
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("c3vet facts v1\n"), 0o666); err != nil {
			return fail(err)
		}
	}
	return 0
}

// standalone analyzes the named package patterns from source.
func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		return fail(err)
	}
	total := 0
	for _, p := range pkgs {
		findings, err := analysis.RunPackage(p.Fset, p.Files, p.Types, p.Info, analyzers)
		if err != nil {
			return fail(err)
		}
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		total += len(findings)
	}
	if total > 0 {
		return 2
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "c3vet:", err)
	return 1
}
