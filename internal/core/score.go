package core

import (
	"math"
	"math/rand/v2"
	"time"

	"c3/internal/ewma"
	"c3/internal/sim"
)

// RankerConfig holds the tunables of the C3 scoring function (§3.1).
type RankerConfig struct {
	// Alpha is the EWMA smoothing factor for the q̄, µ̄ and R̄ signals.
	// The paper does not publish a value; 0.9 (strongly favouring fresh
	// feedback) matches the published C3 Cassandra patch and is the
	// default.
	Alpha float64
	// ConcurrencyWeight is w in q̂ = 1 + os·w + q̄ — the multiplier that
	// extrapolates this client's outstanding requests into an estimate of
	// system-wide in-flight demand. The paper sets w = number of clients.
	// Zero takes the default (1); a negative value disables concurrency
	// compensation entirely (w = 0), used by the ablation experiments.
	ConcurrencyWeight float64
	// Exponent is b in (q̂)^b/µ̄. The paper chooses b = 3 ("cubic
	// replica selection"); the ablation bench sweeps it. The hot path
	// special-cases b = 3 as q̂·q̂·q̂, falling back to math.Pow for the
	// sweeps.
	Exponent float64
	// Seed drives tie-breaking randomness.
	Seed uint64
	// Registry interns server IDs to the dense indices this ranker keys
	// its per-server state by. Substrates share one registry per cluster
	// view; nil creates a private one.
	Registry *Registry
}

func (c RankerConfig) withDefaults() RankerConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.9
	}
	if c.ConcurrencyWeight == 0 {
		c.ConcurrencyWeight = 1
	} else if c.ConcurrencyWeight < 0 {
		c.ConcurrencyWeight = 0
	}
	if c.Exponent <= 0 {
		c.Exponent = 3
	}
	return c
}

// CubicScore evaluates the C3 scoring function
//
//	Ψ = R̄ − T̄ + (q̂)^b · T̄
//
// where R̄ is the smoothed client-observed response time (seconds), T̄ the
// smoothed service time 1/µ̄ (seconds), q̂ the concurrency-compensated
// queue-size estimate and b the queue exponent. Exposed as a pure function so
// experiments (Fig. 4) can plot it directly.
func CubicScore(rbar, tbar, qhat, b float64) float64 {
	return rbar - tbar + math.Pow(qhat, b)*tbar
}

// c3State is the per-server client-side state of the C3 ranker, stored by
// value in a flat slice indexed by the registry's dense index.
type c3State struct {
	outstanding float64
	qbar        ewma.EWMA // queue-size feedback
	tbar        ewma.EWMA // service-time feedback, seconds
	rbar        ewma.EWMA // client-observed response time, seconds
}

// CubicRanker implements C3's replica ranking.
type CubicRanker struct {
	cfg  RankerConfig
	cube bool // Exponent == 3: use q̂·q̂·q̂ instead of math.Pow
	rng  *rand.Rand
	reg  *Registry
	st   []c3State // dense, indexed by reg.Index

	scratch []scored
}

// NewCubicRanker returns a C3 ranker with cfg (zero fields take defaults).
func NewCubicRanker(cfg RankerConfig) *CubicRanker {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	return &CubicRanker{
		cfg:  cfg,
		cube: cfg.Exponent == 3,
		rng:  sim.RNG(cfg.Seed, 0xc3),
		reg:  reg,
	}
}

// Name implements Ranker.
func (c *CubicRanker) Name() string { return "C3" }

// Registry implements RegistryHolder.
func (c *CubicRanker) Registry() *Registry { return c.reg }

// idx interns s and grows the dense state table to cover it.
func (c *CubicRanker) idx(s ServerID) int {
	i := c.reg.Index(s)
	c.st = grown(c.st, i, func() c3State {
		return c3State{
			qbar: ewma.New(c.cfg.Alpha),
			tbar: ewma.New(c.cfg.Alpha),
			rbar: ewma.New(c.cfg.Alpha),
		}
	})
	return i
}

func (c *CubicRanker) state(s ServerID) *c3State {
	i := c.idx(s) // hoisted: idx may grow the slice it indexes
	return &c.st[i]
}

// stateRO is the read-only counterpart of state: it reports nil for servers
// this ranker has never seen, without interning them.
func (c *CubicRanker) stateRO(s ServerID) *c3State {
	if i, ok := c.reg.Lookup(s); ok && i < len(c.st) {
		return &c.st[i]
	}
	return nil
}

// OnSend implements Ranker.
func (c *CubicRanker) OnSend(s ServerID, now int64) {
	c.state(s).outstanding++
}

// OnResponse implements Ranker.
func (c *CubicRanker) OnResponse(s ServerID, fb Feedback, rtt time.Duration, now int64) {
	st := c.state(s)
	if st.outstanding > 0 {
		st.outstanding--
	}
	st.qbar.Add(fb.QueueSize)
	st.tbar.Add(seconds(fb.ServiceTime))
	st.rbar.Add(seconds(rtt))
}

// OnAbandon implements Ranker: the outstanding count is released, but the
// q̄/T̄/R̄ EWMAs are untouched — an abandoned request observed nothing.
func (c *CubicRanker) OnAbandon(s ServerID, now int64) {
	if st := c.stateRO(s); st != nil && st.outstanding > 0 {
		st.outstanding--
	}
}

// OnSendN implements BatchRanker: an n-key sub-batch is n outstanding reads.
func (c *CubicRanker) OnSendN(s ServerID, n int, now int64) {
	c.state(s).outstanding += float64(n)
}

// OnResponseN implements BatchRanker: outstanding drops by the sub-batch
// size, and the single piggybacked feedback sample folds into q̄/T̄/R̄ with
// weight n — the server sampled its state once after serving all n keys, so
// the sample speaks for each of them.
func (c *CubicRanker) OnResponseN(s ServerID, n int, fb Feedback, rtt time.Duration, now int64) {
	st := c.state(s)
	st.outstanding -= float64(n)
	if st.outstanding < 0 {
		st.outstanding = 0
	}
	st.qbar.AddN(fb.QueueSize, n)
	st.tbar.AddN(seconds(fb.ServiceTime), n)
	st.rbar.AddN(seconds(rtt), n)
}

// OnAbandonN implements BatchRanker.
func (c *CubicRanker) OnAbandonN(s ServerID, n int, now int64) {
	if st := c.stateRO(s); st != nil {
		st.outstanding -= float64(n)
		if st.outstanding < 0 {
			st.outstanding = 0
		}
	}
}

// QueueEstimate reports q̂ = 1 + os·w + q̄ for server s (1 for unseen
// servers). It is a pure read and does not intern s.
func (c *CubicRanker) QueueEstimate(s ServerID) float64 {
	st := c.stateRO(s)
	if st == nil {
		return 1
	}
	return 1 + st.outstanding*c.cfg.ConcurrencyWeight + st.qbar.Value()
}

// Outstanding reports the number of requests in flight to s from this client.
// It is a pure read and does not intern s.
func (c *CubicRanker) Outstanding(s ServerID) float64 {
	if st := c.stateRO(s); st != nil {
		return st.outstanding
	}
	return 0
}

// PeerSignals is one replica's ranker-visible state, exported for
// observability: the C3 signals behind Ψ at the moment of the snapshot.
type PeerSignals struct {
	Outstanding float64 // requests in flight from this client
	QHat        float64 // q̂ = 1 + outstanding·w + q̄
	QBar        float64 // EWMA of server-reported queue size
	TBar        float64 // EWMA of server-reported service time, seconds
	RBar        float64 // EWMA of client-observed response time, seconds
	Score       float64 // Ψ (−Inf until the first feedback sample)
	Seen        bool    // false: this ranker never sent to s
}

// SignalsReporter is the optional interface a Ranker implements to expose
// per-server signals for stats snapshots. Callers must hold whatever lock
// guards the ranker (core.Client.Inspect does).
type SignalsReporter interface {
	Signals(s ServerID) PeerSignals
}

// Signals implements SignalsReporter. It is a pure read and does not intern s.
func (c *CubicRanker) Signals(s ServerID) PeerSignals {
	st := c.stateRO(s)
	if st == nil {
		return PeerSignals{QHat: 1, Score: math.Inf(-1)}
	}
	return PeerSignals{
		Outstanding: st.outstanding,
		QHat:        1 + st.outstanding*c.cfg.ConcurrencyWeight + st.qbar.Value(),
		QBar:        st.qbar.Value(),
		TBar:        st.tbar.Value(),
		RBar:        st.rbar.Value(),
		Score:       c.scoreState(st),
		Seen:        true,
	}
}

// scoreState evaluates Ψ for one state entry: the allocation-free inner-loop
// form of CubicScore, with the paper's b = 3 specialized to three multiplies.
func (c *CubicRanker) scoreState(st *c3State) float64 {
	if !st.tbar.Initialized() {
		return math.Inf(-1)
	}
	qhat := 1 + st.outstanding*c.cfg.ConcurrencyWeight + st.qbar.Value()
	tbar := st.tbar.Value()
	var qb float64
	if c.cube {
		qb = qhat * qhat * qhat
	} else {
		qb = math.Pow(qhat, c.cfg.Exponent)
	}
	return st.rbar.Value() - tbar + qb*tbar
}

// Score reports Ψ_s. Servers that have never produced feedback score −Inf so
// that they are explored first. It is a pure read and does not intern s.
func (c *CubicRanker) Score(s ServerID, now int64) float64 {
	st := c.stateRO(s)
	if st == nil {
		return math.Inf(-1)
	}
	return c.scoreState(st)
}

// Rank implements Ranker: ascending Ψ with random tie-breaking (a pre-shuffle
// followed by a stable sort, so equal-score replicas are load-spread rather
// than biased toward low server IDs).
func (c *CubicRanker) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	if cap(c.scratch) < len(dst) {
		c.scratch = make([]scored, 0, len(dst))
	}
	sc := c.scratch[:0]
	for _, s := range dst {
		sc = append(sc, scored{s, c.scoreState(c.state(s))})
	}
	rankScored(c.rng, dst, sc)
	return dst
}

// Best implements BestPicker: the minimum-Ψ replica with uniform tie-breaking,
// without sorting.
func (c *CubicRanker) Best(group []ServerID, now int64) (ServerID, bool) {
	if len(group) == 0 {
		return 0, false
	}
	bi := bestScored(c.rng, len(group), func(i int) float64 {
		return c.scoreState(c.state(group[i]))
	})
	return group[bi], true
}
