// Package ewma provides exponentially weighted moving averages and windowed
// rate meters, the smoothing primitives used by the C3 replica ranking
// (q̄_s, µ̄_s, R̄_s in the paper) and the rate controller (rrate measurement).
//
// All types are plain values driven by explicit sample calls; none of them
// read the wall clock, which keeps them usable under both the discrete-event
// simulator and real-time clients.
package ewma

import "math"

// EWMA is a classic exponentially weighted moving average:
//
//	v ← α·x + (1−α)·v
//
// The first sample initializes v directly. The zero value is not usable;
// construct with New.
type EWMA struct {
	alpha float64
	v     float64
	n     uint64
}

// New returns an EWMA with smoothing factor alpha in (0, 1]. Larger alpha
// weights recent samples more heavily. New panics if alpha is out of range,
// since a silent bad smoothing factor corrupts every downstream score.
func New(alpha float64) EWMA {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		panic("ewma: alpha must be in (0, 1]")
	}
	return EWMA{alpha: alpha}
}

// Add folds sample x into the average.
func (e *EWMA) Add(x float64) {
	if e.n == 0 {
		e.v = x
	} else {
		e.v = e.alpha*x + (1-e.alpha)*e.v
	}
	e.n++
}

// AddN folds sample x into the average n times, in closed form:
//
//	v ← x·(1−(1−α)ⁿ) + (1−α)ⁿ·v
//
// This is the weighted-feedback primitive of the batch path — one feedback
// sample describing an n-key sub-batch trains the estimator exactly as n
// identical point samples would, without the n loop iterations.
func (e *EWMA) AddN(x float64, n int) {
	if n <= 0 {
		return
	}
	if e.n == 0 {
		e.v = x
		e.n += uint64(n)
		return
	}
	w := math.Pow(1-e.alpha, float64(n)) // weight left on the old value
	e.v = x*(1-w) + w*e.v
	e.n += uint64(n)
}

// Value reports the current average, or 0 before any sample.
func (e *EWMA) Value() float64 { return e.v }

// Count reports how many samples have been folded in.
func (e *EWMA) Count() uint64 { return e.n }

// Initialized reports whether at least one sample has been added.
func (e *EWMA) Initialized() bool { return e.n > 0 }

// Reset discards all state, keeping the smoothing factor.
func (e *EWMA) Reset() { e.v, e.n = 0, 0 }

// Decaying is a time-decaying average: the weight of the existing value
// decays exponentially with the elapsed time between samples, with a
// configurable half-life. It approximates "the average over roughly the last
// half-life" regardless of sampling rate, which is how Cassandra-style
// latency histories behave and what Dynamic Snitching's inputs look like.
type Decaying struct {
	halfLife float64 // ns
	v        float64
	last     int64
	n        uint64
}

// NewDecaying returns a Decaying average whose history halves in weight every
// halfLifeNanos nanoseconds. It panics if halfLifeNanos is not positive.
func NewDecaying(halfLifeNanos int64) Decaying {
	if halfLifeNanos <= 0 {
		panic("ewma: half-life must be positive")
	}
	return Decaying{halfLife: float64(halfLifeNanos)}
}

// Add folds sample x observed at time now (ns) into the average.
// Out-of-order samples (now earlier than the previous sample) are treated as
// concurrent with the previous sample.
func (d *Decaying) Add(x float64, now int64) {
	if d.n == 0 {
		d.v, d.last = x, now
		d.n++
		return
	}
	dt := float64(now - d.last)
	if dt < 0 {
		dt = 0
	}
	w := math.Exp2(-dt / d.halfLife) // weight of old value
	d.v = w*d.v + (1-w)*x
	if now > d.last {
		d.last = now
	}
	d.n++
}

// Value reports the current average, or 0 before any sample.
func (d *Decaying) Value() float64 { return d.v }

// Initialized reports whether at least one sample has been added.
func (d *Decaying) Initialized() bool { return d.n > 0 }

// Reset discards all state, keeping the half-life.
func (d *Decaying) Reset() { d.v, d.last, d.n = 0, 0, 0 }

// WindowRate counts events in consecutive fixed-width windows and reports the
// count of the most recently *completed* window. This is exactly the paper's
// rrate: "the number of responses being received from a server in a δ ms
// interval".
type WindowRate struct {
	width int64 // ns
	start int64 // start of the current window
	cur   float64
	prev  float64
	begun bool
}

// NewWindowRate returns a meter with the given window width in nanoseconds.
// It panics if width is not positive.
func NewWindowRate(widthNanos int64) WindowRate {
	if widthNanos <= 0 {
		panic("ewma: window width must be positive")
	}
	return WindowRate{width: widthNanos}
}

// Add records one event at time now (ns).
func (w *WindowRate) Add(now int64) { w.AddN(now, 1) }

// AddN records n events at time now (ns).
func (w *WindowRate) AddN(now int64, n float64) {
	w.roll(now)
	w.cur += n
}

// Rate reports the event count of the last completed window as of now.
func (w *WindowRate) Rate(now int64) float64 {
	w.roll(now)
	return w.prev
}

// roll advances the window so that start ≤ now < start+width.
func (w *WindowRate) roll(now int64) {
	if !w.begun {
		w.start = now
		w.begun = true
		return
	}
	if now < w.start+w.width {
		return
	}
	elapsed := now - w.start
	steps := elapsed / w.width
	if steps == 1 {
		w.prev = w.cur
	} else {
		// One or more empty windows elapsed; the last completed window
		// had no events.
		w.prev = 0
	}
	w.cur = 0
	w.start += steps * w.width
}
