package core

import (
	"math"
	"sync"
	"testing"
)

func TestRegistryDenseAssignment(t *testing.T) {
	r := NewRegistry(7, 3, 9)
	if got := r.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	for i, s := range []ServerID{7, 3, 9} {
		if got := r.Index(s); got != i {
			t.Fatalf("Index(%d) = %d, want %d", s, got, i)
		}
		if got := r.ID(i); got != s {
			t.Fatalf("ID(%d) = %d, want %d", i, got, s)
		}
	}
	// Interning is idempotent.
	if got := r.Index(3); got != 1 {
		t.Fatalf("re-Index(3) = %d, want 1", got)
	}
	if got := r.Len(); got != 3 {
		t.Fatalf("Len after re-intern = %d, want 3", got)
	}
}

func TestRegistryLookupDoesNotIntern(t *testing.T) {
	r := NewRegistry(1)
	if _, ok := r.Lookup(99); ok {
		t.Fatal("Lookup(99) reported an unknown id")
	}
	if r.Len() != 1 {
		t.Fatalf("Lookup interned: Len = %d", r.Len())
	}
	if i, ok := r.Lookup(1); !ok || i != 0 {
		t.Fatalf("Lookup(1) = %d,%v want 0,true", i, ok)
	}
}

func TestRegistrySparseIDs(t *testing.T) {
	// Negative and enormous ids fall back to the sparse map but still get
	// dense indices.
	r := NewRegistry()
	ids := []ServerID{-5, 1 << 30, 0, 42, -1}
	for i, s := range ids {
		if got := r.Index(s); got != i {
			t.Fatalf("Index(%d) = %d, want %d", s, got, i)
		}
	}
	for i, s := range ids {
		if got, ok := r.Lookup(s); !ok || got != i {
			t.Fatalf("Lookup(%d) = %d,%v want %d,true", s, got, ok, i)
		}
	}
}

func TestRegistryDirectSparseBoundaryStable(t *testing.T) {
	// Regression: doubling growth must not push len(direct) past maxDirect,
	// or ids in [maxDirect, len(direct)) land in the sparse map on intern
	// but are reported unknown by the direct-table bounds check — giving
	// the same id a fresh dense index on every call.
	r := NewRegistry()
	r.Index(600000)
	r.Index(700000) // doubling would grow direct to 1.2M > maxDirect without the clamp
	above := ServerID(maxDirect + 75808)
	first := r.Index(above)
	for i := 0; i < 3; i++ {
		if got := r.Index(above); got != first {
			t.Fatalf("Index(%d) unstable: %d then %d", above, first, got)
		}
	}
	if got, ok := r.Lookup(above); !ok || got != first {
		t.Fatalf("Lookup(%d) = %d,%v want %d,true", above, got, ok, first)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
}

func TestRegistryConcurrentIntern(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Index(ServerID(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Len(); got != perG {
		t.Fatalf("Len = %d, want %d", got, perG)
	}
	// Every id maps to a unique index in [0, perG).
	seen := make([]bool, perG)
	for i := 0; i < perG; i++ {
		idx := r.Index(ServerID(i))
		if idx < 0 || idx >= perG || seen[idx] {
			t.Fatalf("bad index %d for id %d", idx, i)
		}
		seen[idx] = true
	}
}

func TestRegistryGroupIndex(t *testing.T) {
	r := NewRegistry()
	g1 := []ServerID{1, 2, 3}
	g2 := []ServerID{2, 3, 4}
	g3 := []ServerID{3, 2, 1} // same members as g1, different order
	i1 := r.GroupIndex(g1)
	i2 := r.GroupIndex(g2)
	i3 := r.GroupIndex(g3)
	if i1 == i2 || i1 == i3 || i2 == i3 {
		t.Fatalf("distinct groups share an index: %d %d %d", i1, i2, i3)
	}
	if got := r.GroupIndex([]ServerID{1, 2, 3}); got != i1 {
		t.Fatalf("re-intern of g1 = %d, want %d", got, i1)
	}
	if r.Groups() != 3 {
		t.Fatalf("Groups = %d, want 3", r.Groups())
	}
	// Group members were interned as servers too.
	for _, s := range []ServerID{1, 2, 3, 4} {
		if _, ok := r.Lookup(s); !ok {
			t.Fatalf("member %d not interned", s)
		}
	}
}

func TestReadAccessorsDoNotIntern(t *testing.T) {
	// Probing an unknown server through a read-only accessor must not grow
	// the shared registry (a metrics loop scraping stale IDs would bloat
	// every ranker and client of the cluster view).
	reg := NewRegistry(0, 1, 2)
	c3r := NewCubicRanker(RankerConfig{Seed: 1, Registry: reg})
	lor := NewLOR(reg, 1)
	tc := NewTwoChoice(reg, 1)
	ds := NewDynamicSnitch(SnitchConfig{Seed: 1, Registry: reg})
	const ghost = ServerID(999)
	if got := c3r.Outstanding(ghost); got != 0 {
		t.Errorf("C3 Outstanding(ghost) = %v", got)
	}
	if got := c3r.QueueEstimate(ghost); got != 1 {
		t.Errorf("C3 QueueEstimate(ghost) = %v, want 1", got)
	}
	if got := c3r.Score(ghost, 0); !math.IsInf(got, -1) {
		t.Errorf("C3 Score(ghost) = %v, want -Inf", got)
	}
	if got := lor.Outstanding(ghost); got != 0 {
		t.Errorf("LOR Outstanding(ghost) = %v", got)
	}
	if got := tc.Outstanding(ghost); got != 0 {
		t.Errorf("2C Outstanding(ghost) = %v", got)
	}
	if got := ds.Score(ghost); got != 0 {
		t.Errorf("DS Score(ghost) = %v", got)
	}
	if got := ds.Severity(ghost); got != 0 {
		t.Errorf("DS Severity(ghost) = %v", got)
	}
	if got := reg.Len(); got != 3 {
		t.Fatalf("read accessors interned: Len = %d, want 3", got)
	}
}

func TestRegistryGroupInternKeepsCopy(t *testing.T) {
	r := NewRegistry()
	g := []ServerID{5, 6}
	i := r.GroupIndex(g)
	g[0] = 99 // caller mutates its slice; the interned group must not change
	if got := r.GroupIndex([]ServerID{5, 6}); got != i {
		t.Fatalf("interned group changed with caller's slice: %d != %d", got, i)
	}
}
