// Package lsm is a compact log-structured merge storage engine: an in-memory
// memtable that flushes into immutable sorted runs guarded by Bloom filters,
// with size-triggered full compaction. It is the storage substrate behind the
// TCP key-value store (internal/kvstore) — the real-system counterpart of
// the service-time model in internal/cassim, exhibiting the same phenomena
// the paper discusses: read amplification growing with the number of runs,
// and compaction as a period of concentrated work.
//
// With Options.Dir set the store is durable and crash-recoverable: every
// mutation is appended to a group-committed write-ahead log before it is
// acknowledged, memtable flushes persist runs as SST files installed by
// atomic rename, and a manifest names the live SST set plus the WAL
// watermark so Open replays exactly the unflushed WAL suffix. With Dir empty
// the engine keeps its original pure in-memory behavior.
package lsm

import (
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Store.
type Options struct {
	// FlushBytes triggers a memtable flush once its payload exceeds this
	// size. Default 4 MiB.
	FlushBytes int
	// MaxRuns triggers a full compaction when exceeded. Default 8.
	MaxRuns int
	// Dir, when non-empty, makes the store durable: WAL, SSTs, and manifest
	// live there and Open recovers whatever state the directory holds.
	// Empty keeps the store purely in memory.
	Dir string
	// NoSync skips the per-group fsync (data still reaches the OS on every
	// commit, and Close fsyncs). For measuring the cost of durability and
	// for tests where a machine crash is out of scope.
	NoSync bool
	// SyncInterval selects the WAL sync policy. Zero (the default) is
	// strict group commit: every commit group fsyncs before acking, so
	// acked writes survive power loss. A positive interval is periodic
	// sync — Cassandra's default commitlog trade: acks wait only for
	// write(2), so they survive process death (kill -9), and a background
	// fsync runs at most every SyncInterval to bound the power-loss
	// window. Ignored when NoSync is set.
	SyncInterval time.Duration

	// hook, when set (package-internal, tests only), is called at named
	// points inside flush and compaction so crash tests can capture the
	// exact on-disk state between sub-steps.
	hook func(event string)
}

func (o Options) withDefaults() Options {
	if o.FlushBytes <= 0 {
		o.FlushBytes = 4 << 20
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 8
	}
	return o
}

// Stats is a snapshot of storage activity counters. RunsConsulted/Gets is
// the engine's read amplification; BloomSkips counts runs skipped by filters.
// WALRecords/GroupCommits is the group-commit batching factor (records made
// durable per fsync).
type Stats struct {
	Gets, Puts, Deletes  uint64
	Flushes, Compactions uint64
	RunsConsulted        uint64
	BloomSkips           uint64
	WALRecords           uint64
	GroupCommits         uint64
	IOErrors             uint64
}

// counters are the live atomic counters behind Stats (reads update them
// under the shared lock, so they must be atomic).
type counters struct {
	gets, puts, deletes  atomic.Uint64
	flushes, compactions atomic.Uint64
	runsConsulted        atomic.Uint64
	bloomSkips           atomic.Uint64
	ioErrors             atomic.Uint64
}

// run is an immutable sorted key/value image. In-memory runs hold values in
// vals (nil = tombstone); file-backed runs hold per-key offsets into an SST
// file and read values on demand.
type run struct {
	keys  []string
	vals  [][]byte // in-memory runs only
	offs  []int64  // file-backed runs: value offset in f
	vlens []uint32 // file-backed runs: value length | tombstoneBit
	bloom *Bloom
	bytes int
	num   uint64   // SST file number (file-backed only)
	f     *os.File // backing SST (nil for in-memory runs)
	cache []byte   // retained copy of the SST data section (small runs):
	// reads hit memory, the file exists for recovery. nil = read via f.
}

// find returns the index of key in the run, or -1.
func (r *run) find(key string) int {
	i := sort.SearchStrings(r.keys, key)
	if i < len(r.keys) && r.keys[i] == key {
		return i
	}
	return -1
}

// Store is the engine. It is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	opts    Options
	dir     string // empty = in-memory
	mem     map[string][]byte
	memB    int
	runs    []*run // newest first
	wal     *wal   // nil in in-memory mode
	man     manifest
	walNums []uint64 // WAL files on disk, ascending; last is the append target
	closed  bool
	c       counters
}

// Open returns a store. With opts.Dir empty it is a fresh in-memory store
// and never fails. With a directory it recovers: load the manifest, delete
// orphan files a crash may have left (temp files, SSTs and WALs the manifest
// does not reference), open the live SSTs, replay the WAL suffix at or above
// the manifest watermark into the memtable — truncating a torn tail, which
// by the fsync-before-ack rule never held an acknowledged write — and resume
// appending to the newest WAL.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	s := &Store{opts: opts, dir: opts.Dir, mem: make(map[string][]byte)}
	if s.dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, err
	}
	man, err := loadManifest(s.dir)
	if err != nil {
		return nil, err
	}
	if man == nil {
		man = &manifest{next: 1}
	}
	s.man = *man

	live := make(map[uint64]bool, len(s.man.ssts))
	for _, n := range s.man.ssts {
		live[n] = true
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var maxNum uint64
	seen := func(n uint64) {
		if n > maxNum {
			maxNum = n
		}
	}
	for _, ent := range ents {
		name := ent.Name()
		full := filepath.Join(s.dir, name)
		switch {
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(full) // torn mid-write; never referenced
		case strings.HasSuffix(name, ".sst"):
			n, perr := strconv.ParseUint(strings.TrimSuffix(name, ".sst"), 10, 64)
			if perr != nil {
				continue
			}
			seen(n)
			if !live[n] {
				os.Remove(full) // written but never installed in the manifest
			}
		case strings.HasSuffix(name, ".wal"):
			n, perr := strconv.ParseUint(strings.TrimSuffix(name, ".wal"), 10, 64)
			if perr != nil {
				continue
			}
			seen(n)
			if n < s.man.wal {
				os.Remove(full) // below the watermark: fully flushed into SSTs
			} else {
				s.walNums = append(s.walNums, n)
			}
		}
	}
	if s.man.next <= maxNum {
		s.man.next = maxNum + 1
	}
	sort.Slice(s.walNums, func(i, j int) bool { return s.walNums[i] < s.walNums[j] })

	for _, n := range s.man.ssts {
		r, err := openSST(s.dir, n)
		if err != nil {
			s.releaseRuns()
			return nil, err
		}
		s.runs = append(s.runs, r)
	}

	for i, n := range s.walNums {
		path := filepath.Join(s.dir, walName(n))
		valid, err := replayWAL(path, func(op byte, key string, val []byte) {
			if op == walDel {
				val = nil
			}
			if old, ok := s.mem[key]; ok {
				s.memB -= len(key) + len(old)
			}
			s.mem[key] = val
			s.memB += len(key) + len(val)
		})
		if err != nil {
			s.releaseRuns()
			return nil, err
		}
		if i == len(s.walNums)-1 {
			if err := truncateWAL(path, valid); err != nil {
				s.releaseRuns()
				return nil, err
			}
		}
	}

	if len(s.walNums) == 0 {
		num := s.allocNum()
		s.man.wal = num
		if err := s.man.store(s.dir); err != nil {
			s.releaseRuns()
			return nil, err
		}
		s.walNums = []uint64{num}
	}
	cur := s.walNums[len(s.walNums)-1]
	if s.wal, err = openWAL(s.dir, cur, opts.NoSync, opts.SyncInterval); err != nil {
		s.releaseRuns()
		return nil, err
	}
	if s.memB >= s.opts.FlushBytes {
		s.mu.Lock()
		s.flushLocked() // bound recovery-accumulated state immediately
		s.mu.Unlock()
	}
	return s, nil
}

func (s *Store) releaseRuns() {
	for _, r := range s.runs {
		r.close()
	}
}

// allocNum hands out the next file number (SSTs and WALs share one space).
func (s *Store) allocNum() uint64 {
	n := s.man.next
	s.man.next++
	return n
}

func (s *Store) hook(event string) {
	if s.opts.hook != nil {
		s.opts.hook(event)
	}
}

// Put stores a copy of val under key. In durable mode it returns once the
// write's WAL commit group is fsynced — the write survives any crash after
// Put returns nil.
func (s *Store) Put(key string, val []byte) error {
	cp := make([]byte, len(val))
	copy(cp, val)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	var cw *walCommit
	if s.wal != nil {
		var err error
		if cw, err = s.wal.add(walPut, key, cp); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.c.puts.Add(1)
	s.putLocked(key, cp)
	s.mu.Unlock()
	return waitCommit(cw)
}

// PutAll stores copies of vals under keys as one batch: every record joins a
// single WAL commit group, so a replica-side MultiPut pays one fsync
// regardless of batch size.
func (s *Store) PutAll(keys []string, vals [][]byte) error {
	cw, err := s.putAllStart(keys, vals)
	if err != nil {
		return err
	}
	return waitCommit(cw)
}

// putAllStart is PutAll up to (not including) the commit wait: the batch is
// in the memtable and its WAL commit group is enqueued. A sharded store
// starts every touched shard's sub-batch before waiting on any of them, so
// the shards' group commits overlap.
func (s *Store) putAllStart(keys []string, vals [][]byte) (*walCommit, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	total := 0
	for _, v := range vals {
		total += len(v)
	}
	arena := make([]byte, 0, total)
	cps := make([][]byte, len(keys))
	for i, v := range vals {
		at := len(arena)
		arena = append(arena, v...)
		cps[i] = arena[at:len(arena):len(arena)]
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	var cw *walCommit
	if s.wal != nil {
		var err error
		if cw, err = s.wal.addBatch(keys, cps, nil); err != nil {
			s.mu.Unlock()
			return nil, err
		}
	}
	for i := range keys {
		s.c.puts.Add(1)
		s.putLocked(keys[i], cps[i])
	}
	s.mu.Unlock()
	return cw, nil
}

// PutIfAbsent stores a copy of val under key only when the key has no live
// value, reporting whether it stored. The check and the write share one
// critical section — the atomic guard membership streaming relies on so a
// streamed pre-move value can never clobber a newer concurrent write.
func (s *Store) PutIfAbsent(key string, val []byte) (bool, error) {
	cp := make([]byte, len(val))
	copy(cp, val)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, ErrClosed
	}
	if v, ok := s.mem[key]; ok {
		if v != nil {
			s.mu.Unlock()
			return false, nil
		}
	} else {
		for _, r := range s.runs {
			if !r.bloom.MayContain(key) {
				continue
			}
			if i := r.find(key); i >= 0 {
				if !r.tombstone(i) {
					s.mu.Unlock()
					return false, nil
				}
				break // newest version is a tombstone: absent
			}
		}
	}
	var cw *walCommit
	if s.wal != nil {
		var err error
		if cw, err = s.wal.add(walPut, key, cp); err != nil {
			s.mu.Unlock()
			return false, err
		}
	}
	s.c.puts.Add(1)
	s.putLocked(key, cp)
	s.mu.Unlock()
	return true, waitCommit(cw)
}

// Delete removes key (writes a tombstone). Like Put, a nil return in durable
// mode means the tombstone is fsynced and survives crashes.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	var cw *walCommit
	if s.wal != nil {
		var err error
		if cw, err = s.wal.add(walDel, key, nil); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.c.deletes.Add(1)
	s.putLocked(key, nil)
	s.mu.Unlock()
	return waitCommit(cw)
}

func (s *Store) putLocked(key string, val []byte) {
	if old, ok := s.mem[key]; ok {
		s.memB -= len(key) + len(old)
	}
	s.mem[key] = val
	s.memB += len(key) + len(val)
	if s.memB >= s.opts.FlushBytes {
		s.flushLocked()
	}
}

// Get reads the newest value of key into a fresh buffer, consulting the
// memtable and then each run from newest to oldest, skipping runs whose
// Bloom filter excludes the key.
func (s *Store) Get(key string) ([]byte, bool) {
	v, ok := s.GetAppend(nil, key)
	if !ok {
		return nil, false
	}
	if v == nil {
		v = []byte{} // present but empty: stay distinguishable from missing
	}
	return v, true
}

// GetAppend appends the newest value of key to dst, reporting whether the
// key exists (when it does not, dst is returned unchanged). This is Get
// without the intermediate allocation: the TCP store streams values straight
// into outgoing frame buffers with it. File-backed runs read the value
// directly into dst's grown tail, so the hot path stays allocation-free once
// buffers warm up.
func (s *Store) GetAppend(dst []byte, key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return dst, false
	}
	s.c.gets.Add(1)
	if v, ok := s.mem[key]; ok {
		if v == nil {
			return dst, false
		}
		return append(dst, v...), true
	}
	for _, r := range s.runs {
		if !r.bloom.MayContain(key) {
			s.c.bloomSkips.Add(1)
			continue
		}
		s.c.runsConsulted.Add(1)
		if i := r.find(key); i >= 0 {
			if r.tombstone(i) {
				return dst, false
			}
			out, ok := r.appendValue(dst, i)
			if !ok {
				s.c.ioErrors.Add(1)
				return dst, false
			}
			return out, true
		}
	}
	return dst, false
}

// Flush forces the memtable into a new run.
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
}

// flushLocked persists the memtable as a new run. Durable ordering: drain
// the WAL (every memtable byte is on disk before the SST exists), write and
// atomically install the SST file, rotate to a fresh WAL, record both in the
// manifest, and only then delete the superseded WAL files. A crash between
// any two steps recovers: the data is in the old WALs until the manifest
// edit lands, and in the SST after.
func (s *Store) flushLocked() {
	if len(s.mem) == 0 || s.closed {
		return
	}
	keys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var r *run
	if s.dir == "" {
		r = &run{
			keys:  keys,
			vals:  make([][]byte, len(keys)),
			bloom: NewBloom(len(keys)),
		}
		for i, k := range keys {
			r.vals[i] = s.mem[k]
			r.bytes += len(k) + len(s.mem[k])
			r.bloom.Add(k)
		}
	} else {
		if err := s.wal.sync(); err != nil {
			return // wedged WAL: keep the memtable, writes are failing anyway
		}
		num := s.allocNum()
		var err error
		r, err = writeSST(s.dir, num, keys, func(k string) []byte { return s.mem[k] })
		if err != nil {
			s.c.ioErrors.Add(1)
			return // data stays in memtable + WAL; retried at next threshold
		}
		s.hook("flush.sst")
		newWAL := s.allocNum()
		if err := s.wal.rotate(newWAL); err != nil {
			s.c.ioErrors.Add(1)
			r.close()
			os.Remove(filepath.Join(s.dir, sstName(num)))
			return
		}
		oldWALs := s.walNums
		s.walNums = append(append([]uint64(nil), oldWALs...), newWAL)
		s.hook("flush.rotate")
		prevWal, prevSSTs := s.man.wal, s.man.ssts
		s.man.wal = newWAL
		s.man.ssts = append([]uint64{num}, s.man.ssts...)
		if err := s.man.store(s.dir); err != nil {
			s.c.ioErrors.Add(1)
			s.man.wal, s.man.ssts = prevWal, prevSSTs
			r.close()
			os.Remove(filepath.Join(s.dir, sstName(num)))
			return // appends continue on the new WAL; old ones stay until a later flush lands
		}
		s.hook("flush.manifest")
		for _, n := range oldWALs {
			os.Remove(filepath.Join(s.dir, walName(n)))
		}
		s.walNums = []uint64{newWAL}
		s.hook("flush.done")
	}

	s.runs = append([]*run{r}, s.runs...)
	s.mem = make(map[string][]byte)
	s.memB = 0
	s.c.flushes.Add(1)
	if len(s.runs) > s.opts.MaxRuns {
		s.compactLocked()
	}
}

// Compact merges every run into one, dropping shadowed versions and
// tombstones.
func (s *Store) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactLocked()
}

// compactLocked merges all runs newest-wins into one output run. In durable
// mode the output SST is installed via manifest edit before the input SSTs
// are deleted, so a crash at any point leaves either the inputs or the
// output live — never neither.
func (s *Store) compactLocked() {
	if len(s.runs) <= 1 || s.closed {
		return
	}
	// Newest-wins merge: walk runs oldest → newest into a map, then sort.
	merged := make(map[string][]byte)
	for i := len(s.runs) - 1; i >= 0; i-- {
		r := s.runs[i]
		for j, k := range r.keys {
			if r.tombstone(j) {
				merged[k] = nil
				continue
			}
			v, ok := r.appendValue([]byte{}, j)
			if !ok {
				s.c.ioErrors.Add(1)
				return // unreadable input: abort, inputs stay live
			}
			merged[k] = v
		}
	}
	keys := make([]string, 0, len(merged))
	for k, v := range merged {
		if v == nil {
			continue // tombstones die at full compaction
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var out *run
	if s.dir == "" {
		out = &run{
			keys:  keys,
			vals:  make([][]byte, len(keys)),
			bloom: NewBloom(len(keys)),
		}
		for i, k := range keys {
			out.vals[i] = merged[k]
			out.bytes += len(k) + len(merged[k])
			out.bloom.Add(k)
		}
	} else {
		num := s.allocNum()
		var err error
		out, err = writeSST(s.dir, num, keys, func(k string) []byte { return merged[k] })
		if err != nil {
			s.c.ioErrors.Add(1)
			return
		}
		s.hook("compact.sst")
		prev := s.man.ssts
		s.man.ssts = []uint64{num}
		if err := s.man.store(s.dir); err != nil {
			s.c.ioErrors.Add(1)
			s.man.ssts = prev
			out.close()
			os.Remove(filepath.Join(s.dir, sstName(num)))
			return
		}
		s.hook("compact.manifest")
		for _, r := range s.runs {
			r.close()
		}
		for _, n := range prev {
			os.Remove(filepath.Join(s.dir, sstName(n)))
		}
		s.hook("compact.done")
	}

	s.runs = []*run{out}
	s.c.compactions.Add(1)
}

// Close shuts the store down cleanly: flush the memtable (which drains the
// WAL first), fsync and close the log, and release every SST file handle.
// After Close all operations fail with ErrClosed. In-memory stores have
// nothing to release and Close is a no-op.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.dir == "" {
		return nil
	}
	s.flushLocked()
	s.closed = true
	err := s.wal.close()
	s.releaseRuns()
	return err
}

// Crash abandons the store the way SIGKILL would: nothing is flushed or
// synced, in-flight commit waiters fail with ErrClosed, buffered WAL records
// are dropped, and file handles close. On-disk state is whatever earlier
// fsyncs made durable — exactly what a fresh Open must recover from. The
// crash-injection tests drive this; production code should use Close.
func (s *Store) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.wal != nil {
		s.wal.crash()
	}
	s.releaseRuns()
}

// Runs reports the current number of immutable runs.
func (s *Store) Runs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.runs)
}

// MemBytes reports the memtable payload size.
func (s *Store) MemBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.memB
}

// AppendLiveKeys appends every live key to dst in ascending byte order —
// the snapshot membership streaming paginates over (linear scan; cold path).
func (s *Store) AppendLiveKeys(dst []string) []string {
	s.mu.RLock()
	live := make(map[string]bool, len(s.mem))
	for i := len(s.runs) - 1; i >= 0; i-- {
		r := s.runs[i]
		for j, k := range r.keys {
			live[k] = !r.tombstone(j)
		}
	}
	for k, v := range s.mem {
		live[k] = v != nil
	}
	s.mu.RUnlock()
	for k, alive := range live {
		if alive {
			dst = append(dst, k)
		}
	}
	sort.Strings(dst)
	return dst
}

// Has reports whether key currently exists, without copying its value.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false
	}
	if v, ok := s.mem[key]; ok {
		return v != nil
	}
	for _, r := range s.runs {
		if !r.bloom.MayContain(key) {
			continue
		}
		if i := r.find(key); i >= 0 {
			return !r.tombstone(i)
		}
	}
	return false
}

// Len reports the number of live keys (linear scan; diagnostics only).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	live := make(map[string]bool)
	for i := len(s.runs) - 1; i >= 0; i-- {
		r := s.runs[i]
		for j, k := range r.keys {
			live[k] = !r.tombstone(j)
		}
	}
	for k, v := range s.mem {
		live[k] = v != nil
	}
	n := 0
	for _, alive := range live {
		if alive {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Gets:          s.c.gets.Load(),
		Puts:          s.c.puts.Load(),
		Deletes:       s.c.deletes.Load(),
		Flushes:       s.c.flushes.Load(),
		Compactions:   s.c.compactions.Load(),
		RunsConsulted: s.c.runsConsulted.Load(),
		BloomSkips:    s.c.bloomSkips.Load(),
		IOErrors:      s.c.ioErrors.Load(),
	}
	s.mu.RLock()
	if s.wal != nil {
		st.WALRecords = s.wal.appds.Load()
		st.GroupCommits = s.wal.syncs.Load()
	}
	s.mu.RUnlock()
	return st
}
