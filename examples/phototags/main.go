// Photo-tagging service: the paper's read-heavy scenario (95% reads, the
// YCSB mix typical of photo tagging) on the 15-node Cassandra-like cluster
// model, comparing C3 against Cassandra's Dynamic Snitching.
//
// Prints the read-latency percentiles, the ECDF head/tail, and the
// throughput — the data behind Figures 6 and 7.
//
//	go run ./examples/phototags
package main

import (
	"fmt"

	"c3/internal/cassim"
	"c3/internal/workload"
)

func main() {
	fmt.Println("photo-tagging workload: 95% reads / 5% updates, Zipfian(0.99) keys,")
	fmt.Println("15-node cluster, RF=3, 120 closed-loop generators, spinning disks")
	fmt.Println()
	for _, strategy := range []string{cassim.StratC3, cassim.StratDS} {
		cfg := cassim.DefaultConfig()
		cfg.Strategy = strategy
		cfg.Mix = workload.ReadHeavy
		cfg.Ops = 120_000
		cfg.Seed = 7
		res := cassim.Run(cfg)
		fmt.Printf("%s:\n", strategy)
		fmt.Printf("  reads      %s\n", res.Reads)
		fmt.Printf("  tail gap   p99.9−p50 = %.2f ms\n", res.Reads.P999MinusP50)
		fmt.Printf("  throughput %.0f ops/s\n", res.Throughput)
		fmt.Printf("  read ECDF  ")
		for _, p := range res.ReadSample.ECDF(8) {
			fmt.Printf(" %.0f%%≤%.1fms", p.F*100, p.X)
		}
		fmt.Println()
		fmt.Println()
	}
	fmt.Println("C3 keeps the 99.9th percentile a small multiple of the median; Dynamic")
	fmt.Println("Snitching's interval-frozen rankings herd coordinators and stretch the tail.")
}
