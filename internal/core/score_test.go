package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

const msec = int64(1e6)

func fb(q float64, svc time.Duration) Feedback {
	return Feedback{QueueSize: q, ServiceTime: svc}
}

func TestCubicScoreReducesToRbarAtUnitQueue(t *testing.T) {
	// Paper: "The score reduces to Rs when the queue-size estimate term of
	// the server is 1". Ψ = R − T + 1^b·T = R.
	for _, b := range []float64{1, 2, 3, 4} {
		if got := CubicScore(0.010, 0.004, 1, b); math.Abs(got-0.010) > 1e-15 {
			t.Fatalf("b=%v: score = %v, want 0.010", b, got)
		}
	}
}

func TestCubicScorePenalizesQueuesSuperlinearly(t *testing.T) {
	// Fig. 4: with b=3, a server with service time 4 ms matches a 20 ms
	// server when its queue estimate is ∛(20/4) ≈ 1.71× larger.
	// Setting R̄ = T̄ isolates the queue term: Ψ = q̂^b·T̄ exactly.
	qSlow := 20.0
	qFastEqual := qSlow * math.Cbrt(20.0/4.0)
	slow := CubicScore(0.020, 0.020, qSlow, 3)
	fast := CubicScore(0.004, 0.004, qFastEqual, 3)
	if math.Abs(slow-fast)/slow > 1e-9 {
		t.Fatalf("scores not equal at the cubic crossover: slow=%v fast=%v", slow, fast)
	}
	// Under a linear score the fast server would need a 5× longer queue.
	slowLin := CubicScore(0.020, 0.020, qSlow, 1)
	fastLin := CubicScore(0.004, 0.004, qSlow*5, 1)
	if math.Abs(slowLin-fastLin) > 1e-12 {
		t.Fatalf("linear crossover broken: %v vs %v", slowLin, fastLin)
	}
}

// Property: the score is non-decreasing in the queue estimate and in the
// service time (for q̂ ≥ 1).
func TestCubicScoreMonotoneProperty(t *testing.T) {
	f := func(r8, t8, q8, dq8 uint8) bool {
		rbar := float64(r8) / 1000
		tbar := float64(t8)/10000 + 1e-6
		qhat := 1 + float64(q8)/4
		dq := float64(dq8) / 16
		s1 := CubicScore(rbar, tbar, qhat, 3)
		s2 := CubicScore(rbar, tbar, qhat+dq, 3)
		return s2 >= s1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCubicRankerPrefersUnseenServers(t *testing.T) {
	r := NewCubicRanker(RankerConfig{Seed: 1})
	group := []ServerID{1, 2, 3}
	// Feed data for 1 and 2 only; 3 must rank first (exploration).
	r.OnSend(1, 0)
	r.OnResponse(1, fb(0, 4*time.Millisecond), 5*time.Millisecond, msec)
	r.OnSend(2, 0)
	r.OnResponse(2, fb(0, 4*time.Millisecond), 5*time.Millisecond, msec)
	got := r.Rank(nil, group, 2*msec)
	if got[0] != 3 {
		t.Fatalf("rank = %v, want unseen server 3 first", got)
	}
}

func TestCubicRankerPrefersFasterServer(t *testing.T) {
	r := NewCubicRanker(RankerConfig{Seed: 2})
	group := []ServerID{10, 20}
	for i := 0; i < 20; i++ {
		now := int64(i) * msec
		r.OnSend(10, now)
		r.OnResponse(10, fb(1, 4*time.Millisecond), 5*time.Millisecond, now)
		r.OnSend(20, now)
		r.OnResponse(20, fb(1, 20*time.Millisecond), 22*time.Millisecond, now)
	}
	for trial := 0; trial < 50; trial++ {
		got := r.Rank(nil, group, 100*msec)
		if got[0] != 10 {
			t.Fatalf("trial %d: rank = %v, want fast server 10 first", trial, got)
		}
	}
}

func TestCubicRankerAvoidsLongQueues(t *testing.T) {
	// The fast server accumulates queue-size feedback; past the cubic
	// crossover the slow-but-idle server must win.
	r := NewCubicRanker(RankerConfig{Seed: 3, Alpha: 1}) // alpha=1: track last sample
	group := []ServerID{1, 2}
	// Server 1: 4 ms service but queue 40. Server 2: 20 ms service, queue 0.
	r.OnSend(1, 0)
	r.OnResponse(1, fb(40, 4*time.Millisecond), 5*time.Millisecond, 0)
	r.OnSend(2, 0)
	r.OnResponse(2, fb(0, 20*time.Millisecond), 21*time.Millisecond, 0)
	// Ψ1 ≈ 41³·0.004 ≈ 275; Ψ2 ≈ 1³·0.020 ≈ 0.02.
	got := r.Rank(nil, group, msec)
	if got[0] != 2 {
		t.Fatalf("rank = %v, want queue-penalized server 2 first", got)
	}
}

func TestConcurrencyCompensation(t *testing.T) {
	// Two clients, same feedback, different outstanding counts: the one
	// with more in-flight requests must project a worse score (robustness
	// to synchronization, §3.1).
	mk := func(outstanding int) float64 {
		r := NewCubicRanker(RankerConfig{Seed: 4, ConcurrencyWeight: 100})
		r.OnSend(1, 0)
		r.OnResponse(1, fb(2, 4*time.Millisecond), 5*time.Millisecond, 0)
		for i := 0; i < outstanding; i++ {
			r.OnSend(1, msec)
		}
		return r.Score(1, 2*msec)
	}
	light, heavy := mk(1), mk(5)
	if heavy <= light {
		t.Fatalf("heavy-demand score %v should exceed light-demand score %v", heavy, light)
	}
}

func TestQueueEstimateFormula(t *testing.T) {
	r := NewCubicRanker(RankerConfig{Seed: 5, ConcurrencyWeight: 7, Alpha: 1})
	r.OnSend(1, 0) // outstanding = 1
	r.OnResponse(1, fb(3, time.Millisecond), time.Millisecond, 0)
	r.OnSend(1, 0)
	r.OnSend(1, 0) // outstanding = 2
	// q̂ = 1 + 2·7 + 3 = 18
	if got := r.QueueEstimate(1); math.Abs(got-18) > 1e-12 {
		t.Fatalf("QueueEstimate = %v, want 18", got)
	}
	if got := r.Outstanding(1); got != 2 {
		t.Fatalf("Outstanding = %v, want 2", got)
	}
}

func TestOutstandingNeverNegative(t *testing.T) {
	r := NewCubicRanker(RankerConfig{Seed: 6})
	r.OnResponse(1, fb(0, time.Millisecond), time.Millisecond, 0) // response without send
	if got := r.Outstanding(1); got != 0 {
		t.Fatalf("Outstanding = %v, want 0", got)
	}
}

func TestRankIsPermutationProperty(t *testing.T) {
	r := NewCubicRanker(RankerConfig{Seed: 7})
	f := func(ids []int16, data uint8) bool {
		seen := map[ServerID]bool{}
		var group []ServerID
		for _, id := range ids {
			s := ServerID(id)
			if !seen[s] {
				seen[s] = true
				group = append(group, s)
			}
		}
		if len(group) > 0 && data%2 == 0 {
			s := group[0]
			r.OnSend(s, 0)
			r.OnResponse(s, fb(float64(data), time.Millisecond), time.Millisecond, 0)
		}
		out := r.Rank(nil, group, msec)
		if len(out) != len(group) {
			return false
		}
		got := map[ServerID]bool{}
		for _, s := range out {
			got[s] = true
		}
		for _, s := range group {
			if !got[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRankTieBreakingIsUniformish(t *testing.T) {
	// With no feedback at all, every server scores −Inf; ranking must
	// spread the first position around rather than always picking one.
	r := NewCubicRanker(RankerConfig{Seed: 8})
	group := []ServerID{1, 2, 3}
	counts := map[ServerID]int{}
	for i := 0; i < 3000; i++ {
		counts[r.Rank(nil, group, 0)[0]]++
	}
	for s, n := range counts {
		if n < 700 || n > 1300 {
			t.Fatalf("tie-break skew: server %d chosen %d/3000", s, n)
		}
	}
}

func TestRankIntoProvidedScratch(t *testing.T) {
	r := NewCubicRanker(RankerConfig{Seed: 9})
	group := []ServerID{4, 5, 6}
	dst := make([]ServerID, 0, 8)
	out := r.Rank(dst, group, 0)
	if len(out) != 3 {
		t.Fatalf("len(out) = %d", len(out))
	}
	// group must be untouched.
	if group[0] != 4 || group[1] != 5 || group[2] != 6 {
		t.Fatalf("group mutated: %v", group)
	}
}

func TestRankEmptyGroup(t *testing.T) {
	r := NewCubicRanker(RankerConfig{})
	if out := r.Rank(nil, nil, 0); len(out) != 0 {
		t.Fatalf("rank of empty group = %v", out)
	}
}

func BenchmarkCubicRank3(b *testing.B) {
	r := NewCubicRanker(RankerConfig{Seed: 1})
	group := []ServerID{1, 2, 3}
	for _, s := range group {
		r.OnSend(s, 0)
		r.OnResponse(s, fb(2, 4*time.Millisecond), 5*time.Millisecond, 0)
	}
	dst := make([]ServerID, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Rank(dst, group, int64(i))
	}
}
