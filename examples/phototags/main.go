// Photo-tagging service on the live TCP store: the paper's read-heavy
// scenario (95% reads, the YCSB mix typical of photo tagging), where every
// page load fetches a photo's full tag set — a natural multi-key read.
//
// The demo loads photos × tags into a five-node cluster (RF=3, C3 selection)
// and serves page loads two ways over the same workload stream:
//
//   - MultiGet: one batch RPC per page; the coordinator partitions the tag
//     keys by replica group, coalesces each group's keys into a single
//     C3-ranked sub-batch, scatters concurrently, gathers per-key results.
//   - Pipelined point Gets: the batch-less baseline — every tag key is its
//     own RPC, its own rate-limiter decision, its own chance to hit the tail.
//
// Page sizes follow a geometric distribution (most photos have a few tags, a
// few have many), drawn with internal/workload's batch-size chooser. Output
// is the page-load latency profile — the batch path cuts both the median and
// the tail, and the gap widens with one replica degraded.
//
//	go run ./examples/phototags
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"c3/internal/kvstore"
	"c3/internal/sim"
	"c3/internal/stats"
	"c3/internal/workload"
)

const (
	photos     = 400
	tagsPer    = 16
	tagBytes   = 64
	pageLoads  = 600
	updateFrac = 0.05
)

func tagKey(photo, tag int) string {
	return fmt.Sprintf("photo:%04d:tag:%02d", photo, tag)
}

func main() {
	cluster, err := kvstore.StartCluster(5, kvstore.Config{
		Strategy:      kvstore.StratC3,
		ReadDelayMean: 500 * time.Microsecond,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client, err := kvstore.Dial(cluster.Addrs())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	fmt.Println("photo-tagging on the live TCP store: 5 nodes, RF=3, C3 selection,")
	fmt.Printf("%d photos × %d tags, geometric page sizes, %.0f%% updates\n\n",
		photos, tagsPer, updateFrac*100)

	// Load every photo's tags with batch writes: one MultiPut per photo
	// instead of tagsPer point Puts.
	val := make([]byte, tagBytes)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	keys := make([]string, 0, tagsPer)
	vals := make([][]byte, 0, tagsPer)
	for p := 0; p < photos; p++ {
		keys, vals = keys[:0], vals[:0]
		for t := 0; t < tagsPer; t++ {
			keys = append(keys, tagKey(p, t))
			vals = append(vals, val)
		}
		if _, err := client.MultiPut(keys, vals); err != nil {
			log.Fatal(err)
		}
	}
	// CL=ONE acks before the fan-out lands everywhere; wait until readable.
	for p := 0; p < photos; p++ {
		keys = keys[:0]
		for t := 0; t < tagsPer; t++ {
			keys = append(keys, tagKey(p, t))
		}
		for attempt := 0; ; attempt++ {
			_, found, err := client.MultiGet(keys)
			all := err == nil
			if all {
				for _, ok := range found {
					all = all && ok
				}
			}
			if all {
				break
			}
			if attempt > 500 {
				log.Fatalf("photo %d never became readable: %v", p, err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	fmt.Printf("loaded %d tag records via MultiPut (%d batch RPCs instead of %d point writes)\n\n",
		photos*tagsPer, photos, photos*tagsPer)

	photoChooser := workload.NewScrambled(photos, 0.99)
	sizer := workload.GeometricBatch{Mean: 8, Max: tagsPer}

	// servePages drives one workload pass — `servers` concurrent page
	// loaders, like a front-end fanning user requests — and reports the
	// page-load latency profile.
	const servers = 6
	servePages := func(label string, batched bool, seed uint64) {
		perServer := pageLoads / servers
		samples := make([][]float64, servers)
		var wg sync.WaitGroup
		for s := 0; s < servers; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				r := sim.RNG(seed, uint64(s)+17)
				req := make([]string, 0, tagsPer)
				out := make([]float64, 0, perServer)
				for i := 0; i < perServer; i++ {
					p := int(photoChooser.Next(r))
					nt := sizer.Keys(r)
					req = req[:0]
					for t := 0; t < nt; t++ {
						req = append(req, tagKey(p, t))
					}
					if r.Float64() < updateFrac {
						if err := client.Put(req[r.IntN(len(req))], val); err != nil {
							log.Fatal(err)
						}
						continue
					}
					start := time.Now()
					if batched {
						_, found, err := client.MultiGet(req)
						if err != nil {
							log.Fatal(err)
						}
						for j, ok := range found {
							if !ok {
								log.Fatalf("missing tag %s", req[j])
							}
						}
					} else {
						// All tag keys in flight at once — the strongest
						// batch-less baseline; the page is done when its
						// slowest tag answers.
						var pwg sync.WaitGroup
						for _, k := range req {
							pwg.Add(1)
							go func(k string) {
								defer pwg.Done()
								if _, ok, err := client.Get(k); err != nil || !ok {
									log.Fatalf("missing tag %s (err=%v)", k, err)
								}
							}(k)
						}
						pwg.Wait()
					}
					out = append(out, float64(time.Since(start).Microseconds())/1000)
				}
				samples[s] = out
			}(s)
		}
		wg.Wait()
		lat := stats.NewSample(pageLoads)
		for _, s := range samples {
			for _, x := range s {
				lat.Add(x)
			}
		}
		fmt.Printf("  %-28s %s\n", label, lat.Summarize())
	}

	fmt.Println("healthy cluster, page load = fetch all of a photo's tags:")
	servePages("pipelined point Gets", false, 21)
	servePages("MultiGet (scatter-gather)", true, 21)

	fmt.Println("\n--- one replica degraded (+10ms per read) ---")
	cluster.Nodes[4].SetSlowdown(10 * time.Millisecond)
	servePages("pipelined point Gets", false, 22)
	servePages("MultiGet (scatter-gather)", true, 22)
	cluster.Nodes[4].SetSlowdown(0)

	fmt.Println("\nOne RPC per page instead of one per tag: fewer frames, fewer limiter")
	fmt.Println("decisions, and C3-ranked sub-batches with per-sub-batch hedging keep the")
	fmt.Println("slowest-tag tail — the latency a user actually sees — short.")
}
