package resp

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
)

func readAll(t *testing.T, input string) ([][][]byte, error) {
	t.Helper()
	r := NewReader(strings.NewReader(input))
	var cmds [][][]byte
	for {
		args, err := r.Next()
		if err == io.EOF {
			return cmds, nil
		}
		if err != nil {
			return cmds, err
		}
		cp := make([][]byte, len(args))
		for i, a := range args {
			cp[i] = append([]byte(nil), a...)
		}
		cmds = append(cmds, cp)
	}
}

func TestReaderMultibulk(t *testing.T) {
	cmds, err := readAll(t, "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$0\r\n\r\n*1\r\n$4\r\nPING\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 2 {
		t.Fatalf("commands = %d, want 2", len(cmds))
	}
	if string(cmds[0][0]) != "SET" || string(cmds[0][1]) != "k" || len(cmds[0][2]) != 0 {
		t.Fatalf("cmd 0 = %q", cmds[0])
	}
	if string(cmds[1][0]) != "PING" {
		t.Fatalf("cmd 1 = %q", cmds[1])
	}
}

func TestReaderBinaryBulk(t *testing.T) {
	// Bulk payloads are length-prefixed: CR, LF, and NUL inside are data.
	cmds, err := readAll(t, "*2\r\n$3\r\nGET\r\n$5\r\na\r\n\x00b\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if string(cmds[0][1]) != "a\r\n\x00b" {
		t.Fatalf("arg = %q", cmds[0][1])
	}
}

func TestReaderInline(t *testing.T) {
	r := NewReader(strings.NewReader("PING\r\n  GET   key1  \r\n"))
	args, err := r.Next()
	if err != nil || !r.Inline() {
		t.Fatalf("err=%v inline=%v", err, r.Inline())
	}
	if len(args) != 1 || string(args[0]) != "PING" {
		t.Fatalf("args = %q", args)
	}
	args, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 2 || string(args[0]) != "GET" || string(args[1]) != "key1" {
		t.Fatalf("args = %q", args)
	}
}

func TestReaderProtocolErrors(t *testing.T) {
	cases := []string{
		"*0\r\n",                // empty multibulk
		"*-1\r\n",               // null multibulk as a command
		"*01\r\n$4\r\nPING\r\n", // non-canonical count
		"*1\r\n$04\r\nPING\r\n", // non-canonical bulk length
		"*1\r\n$+4\r\nPING\r\n", // signed length
		"*1\r\n:4\r\nPING\r\n",  // wrong header type
		"*1\r\n$4\r\nPINGX\n",   // missing CR in trailer
		"*1\r\n$3\r\nPING\r\n",  // bulk longer than declared
		"\r\n",                  // empty command line
		"*1\n$4\r\nPING\r\n",    // LF-only line terminator
		"*99999999999\r\n",      // count overflows the 10-digit bound
	}
	for _, in := range cases {
		if _, err := readAll(t, in); !errors.Is(err, ErrProtocol) {
			t.Errorf("input %q: err = %v, want ErrProtocol", in, err)
		}
	}
}

func TestReaderTruncatedCommand(t *testing.T) {
	for _, in := range []string{"*2\r\n$3\r\nGET\r\n", "*1\r\n$4\r\nPI"} {
		if _, err := readAll(t, in); err != io.ErrUnexpectedEOF {
			t.Errorf("input %q: err = %v, want ErrUnexpectedEOF", in, err)
		}
	}
}

func TestDecodeReencodeBitExact(t *testing.T) {
	in := []byte("*3\r\n$4\r\nMGET\r\n$1\r\na\r\n$0\r\n\r\n")
	r := NewReader(bytes.NewReader(in))
	args, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got := AppendCommand(nil, args); !bytes.Equal(got, in) {
		t.Fatalf("re-encode = %q, want %q", got, in)
	}
}

// TestNilVsEmptyReplies pins the miss-vs-empty wire encoding: nil and empty
// values both encode as $0 via AppendBulk, and only AppendNil produces $-1.
func TestNilVsEmptyReplies(t *testing.T) {
	if got := string(AppendBulk(nil, nil)); got != "$0\r\n\r\n" {
		t.Errorf("AppendBulk(nil) = %q", got)
	}
	if got := string(AppendBulk(nil, []byte{})); got != "$0\r\n\r\n" {
		t.Errorf("AppendBulk(empty) = %q", got)
	}
	if got := string(AppendNil(nil)); got != "$-1\r\n" {
		t.Errorf("AppendNil = %q", got)
	}
	// And the client decoder keeps them distinct.
	r, err := ReadReply(bufio.NewReader(strings.NewReader("$0\r\n\r\n")))
	if err != nil || r.IsNil || r.Str != "" {
		t.Errorf("$0 decoded as %+v, err %v", r, err)
	}
	r, err = ReadReply(bufio.NewReader(strings.NewReader("$-1\r\n")))
	if err != nil || !r.IsNil {
		t.Errorf("$-1 decoded as %+v, err %v", r, err)
	}
}

// fakeBackend is an in-memory Backend for server dispatch tests.
type fakeBackend struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newFakeBackend() *fakeBackend { return &fakeBackend{m: make(map[string][]byte)} }

func (f *fakeBackend) Get(key []byte) ([]byte, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.m[string(key)]
	if !ok {
		return nil, false, nil
	}
	return append([]byte{}, v...), true, nil
}

func (f *fakeBackend) Set(key, val []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.m[string(key)] = append([]byte(nil), val...)
	return nil
}

func (f *fakeBackend) Del(key []byte) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.m[string(key)]
	delete(f.m, string(key))
	return ok, nil
}

func (f *fakeBackend) MGet(keys [][]byte) ([][]byte, []bool, error) {
	vals := make([][]byte, len(keys))
	found := make([]bool, len(keys))
	for i, k := range keys {
		vals[i], found[i], _ = f.Get(k)
	}
	return vals, found, nil
}

func (f *fakeBackend) MSet(keys, vals [][]byte) error {
	for i := range keys {
		f.Set(keys[i], vals[i])
	}
	return nil
}

func (f *fakeBackend) Info() string { return "role:test\r\n" }

func startTestServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer(newFakeBackend())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(s.Close)
	return s, ln.Addr().String()
}

func TestServerCommands(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := DialClient(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	check := func(want Reply, args ...string) {
		t.Helper()
		got, err := c.Do(args...)
		if err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if got.Kind != want.Kind || got.IsNil != want.IsNil || got.Str != want.Str || got.Int != want.Int {
			t.Fatalf("%v = %+v, want %+v", args, got, want)
		}
	}

	check(Reply{Kind: '+', Str: "PONG"}, "PING")
	check(Reply{Kind: '$', Str: "hello"}, "ECHO", "hello")
	// Miss vs empty: GET of a missing key is nil, of an empty value is "".
	check(Reply{Kind: '$', IsNil: true}, "GET", "nope")
	check(Reply{Kind: '+', Str: "OK"}, "SET", "empty", "")
	check(Reply{Kind: '$', Str: ""}, "GET", "empty")
	check(Reply{Kind: '+', Str: "OK"}, "SET", "k", "v")
	check(Reply{Kind: '$', Str: "v"}, "GET", "k")
	// SET options are accepted and ignored.
	check(Reply{Kind: '+', Str: "OK"}, "SET", "k", "v2", "EX", "100")
	check(Reply{Kind: '$', Str: "v2"}, "GET", "k")
	check(Reply{Kind: ':', Int: 1}, "DEL", "k", "nope")
	check(Reply{Kind: '$', IsNil: true}, "GET", "k")
	check(Reply{Kind: '+', Str: "OK"}, "MSET", "a", "1", "b", "")
	mr, err := c.Do("MGET", "a", "b", "missing")
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Elems) != 3 {
		t.Fatalf("MGET elems = %d", len(mr.Elems))
	}
	if mr.Elems[0].Str != "1" || mr.Elems[0].IsNil {
		t.Fatalf("MGET[0] = %+v", mr.Elems[0])
	}
	if mr.Elems[1].Str != "" || mr.Elems[1].IsNil {
		t.Fatalf("MGET[1] = %+v (empty value must not be nil)", mr.Elems[1])
	}
	if !mr.Elems[2].IsNil {
		t.Fatalf("MGET[2] = %+v (missing key must be nil)", mr.Elems[2])
	}
	// Benchmark-compat stubs.
	cr, err := c.Do("CONFIG", "GET", "maxmemory")
	if err != nil || len(cr.Elems) != 2 || cr.Elems[1].Str != "0" {
		t.Fatalf("CONFIG GET maxmemory = %+v, err %v", cr, err)
	}
	check(Reply{Kind: '+', Str: "OK"}, "SELECT", "0")
	ir, err := c.Do("INFO")
	if err != nil || ir.Kind != '$' || ir.Str == "" {
		t.Fatalf("INFO = %+v, err %v", ir, err)
	}
	er, err := c.Do("FLUSHALL")
	if err != nil || er.Kind != '-' || !strings.Contains(er.Str, "unknown command") {
		t.Fatalf("FLUSHALL = %+v, err %v", er, err)
	}
	check(Reply{Kind: '-', Str: "ERR wrong number of arguments for 'get' command"}, "GET")
}

func TestServerPipelining(t *testing.T) {
	_, addr := startTestServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var req []byte
	const nreq = 200
	for i := 0; i < nreq; i++ {
		req = AppendCommand(req, [][]byte{[]byte("SET"), []byte("k"), []byte("v")})
	}
	if _, err := conn.Write(req); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	for i := 0; i < nreq; i++ {
		r, err := ReadReply(br)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if r.Kind != '+' || r.Str != "OK" {
			t.Fatalf("reply %d = %+v", i, r)
		}
	}
}

func TestServerProtocolErrorCloses(t *testing.T) {
	_, addr := startTestServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("*bogus\r\n")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	r, err := ReadReply(br)
	if err != nil || r.Kind != '-' {
		t.Fatalf("reply = %+v, err %v, want -ERR", r, err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection still open after protocol error: %v", err)
	}
}

func TestServerQuit(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := DialClient(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r, err := c.Do("QUIT")
	if err != nil || r.Str != "OK" {
		t.Fatalf("QUIT = %+v, err %v", r, err)
	}
	if _, err := c.Do("PING"); err == nil {
		t.Fatal("connection survived QUIT")
	}
}

func TestServerInlineCommands(t *testing.T) {
	_, addr := startTestServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("SET ik iv\r\nGET ik\r\n")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	if r, err := ReadReply(br); err != nil || r.Str != "OK" {
		t.Fatalf("inline SET = %+v, err %v", r, err)
	}
	if r, err := ReadReply(br); err != nil || r.Str != "iv" {
		t.Fatalf("inline GET = %+v, err %v", r, err)
	}
}
