package kvstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"c3/internal/sim"
)

// Durability across the full stack: nodes with a data directory must bring
// every acknowledged write back after both clean restarts (Close → StartNode)
// and hard crashes (Crash → StartNode), and a node that lost its disk must be
// able to rebuild from its co-replicas.

// startDurableCluster boots a durable loopback cluster rooted at a temp dir.
func startDurableCluster(t *testing.T, nodes int, cfg Config) (*Cluster, *Client, Config) {
	t.Helper()
	cfg.DataDir = t.TempDir()
	c, err := StartCluster(nodes, cfg)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(c.Close)
	cl, err := Dial(c.Addrs())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(cl.Close)
	return c, cl, cfg
}

// restartNode relaunches node id over its old address and data directory,
// retrying briefly in case the freed port is still settling.
func restartNode(t *testing.T, addrs []string, id int, cfg Config) *Node {
	t.Helper()
	var lastErr error
	for attempt := 0; attempt < 100; attempt++ {
		n, err := StartNode(id, addrs, cfg)
		if err == nil {
			return n
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("restart node %d: %v", id, lastErr)
	return nil
}

func TestNodeRestartRecoversAckedWrites(t *testing.T) {
	for _, mode := range []string{"crash", "clean"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			t.Parallel()
			// 3 nodes at RF=3: every node replicates every key, so after
			// fan-out settles the victim's local store must hold them all.
			c, cl, cfg := startDurableCluster(t, 3, Config{Seed: 11})
			addrs := c.Addrs()
			const nKeys = 300
			for i := 0; i < nKeys; i++ {
				k := fmt.Sprintf("dur-%s-%04d", mode, i)
				if err := cl.Put(k, []byte("v-"+k)); err != nil {
					t.Fatalf("Put(%s): %v", k, err)
				}
			}
			time.Sleep(150 * time.Millisecond) // CL=ONE: let the fan-out land everywhere

			victim := c.Nodes[2]
			if mode == "crash" {
				victim.Crash()
			} else {
				victim.Close()
			}
			n := restartNode(t, addrs, 2, cfg)
			c.Nodes[2] = n

			// The restarted node's own storage recovered every write...
			for i := 0; i < nKeys; i++ {
				k := fmt.Sprintf("dur-%s-%04d", mode, i)
				if !n.Store().Has(k) {
					t.Fatalf("restarted node lost acked key %q (%s restart)", k, mode)
				}
			}
			// ...and the cluster serves them all.
			for i := 0; i < nKeys; i++ {
				k := fmt.Sprintf("dur-%s-%04d", mode, i)
				v, ok, err := cl.Get(k)
				if err != nil || !ok || string(v) != "v-"+k {
					t.Fatalf("Get(%s) after restart = %q,%v,%v", k, v, ok, err)
				}
			}
		})
	}
}

// A full-fleet shutdown and reboot over the same data directories — the
// `c3cluster -tcp -data <dir>` demo contract — recovers everything.
func TestClusterRestartFromDisk(t *testing.T) {
	dataDir := t.TempDir()
	cfg := Config{Seed: 13, DataDir: dataDir}
	c, err := StartCluster(3, cfg)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	cl, err := Dial(c.Addrs())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	const nKeys = 200
	for i := 0; i < nKeys; i++ {
		if err := cl.Put(fmt.Sprintf("boot-%04d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	cl.Close()
	c.Close() // clean shutdown: flush + WAL drain on every node

	c2, err := StartCluster(3, cfg) // fresh ports, same node dirs
	if err != nil {
		t.Fatalf("StartCluster (reboot): %v", err)
	}
	t.Cleanup(c2.Close)
	cl2, err := Dial(c2.Addrs())
	if err != nil {
		t.Fatalf("Dial (reboot): %v", err)
	}
	t.Cleanup(cl2.Close)
	for i := 0; i < nKeys; i++ {
		k := fmt.Sprintf("boot-%04d", i)
		v, ok, err := cl2.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) after reboot = %q,%v,%v", k, v, ok, err)
		}
	}
}

// A node that lost its disk restarts empty and streams its owed ranges back
// from co-replicas; keys outside its ranges must not appear.
func TestRebuildFromPeersAfterDiskLoss(t *testing.T) {
	c, cl, cfg := startDurableCluster(t, 5, Config{Seed: 17})
	addrs := c.Addrs()
	const nKeys = 400
	for i := 0; i < nKeys; i++ {
		k := fmt.Sprintf("rebuild-%04d", i)
		if err := cl.Put(k, []byte("v-"+k)); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	time.Sleep(150 * time.Millisecond)

	const victimID = 4
	c.Nodes[victimID].Crash()
	if err := os.RemoveAll(filepath.Join(cfg.DataDir, fmt.Sprintf("node-%d", victimID))); err != nil {
		t.Fatalf("wiping victim dir: %v", err)
	}
	n := restartNode(t, addrs, victimID, cfg)
	c.Nodes[victimID] = n
	if n.Store().Len() != 0 {
		t.Fatalf("wiped node restarted with %d keys", n.Store().Len())
	}
	if err := n.RebuildFromPeers(); err != nil {
		t.Fatalf("RebuildFromPeers: %v", err)
	}

	ring := n.readRing()
	owned, recovered := 0, 0
	for i := 0; i < nKeys; i++ {
		k := fmt.Sprintf("rebuild-%04d", i)
		owns := false
		for _, s := range ring.ReplicasFor([]byte(k), nil) {
			if s == n.id {
				owns = true
			}
		}
		if owns {
			owned++
			if n.Store().Has(k) {
				recovered++
			} else {
				t.Errorf("owned key %q not rebuilt", k)
			}
		} else if n.Store().Has(k) {
			t.Errorf("rebuild pulled un-owned key %q", k)
		}
	}
	if owned == 0 {
		t.Fatal("victim owned no keys; test is vacuous")
	}
	t.Logf("rebuilt %d/%d owned keys (of %d total)", recovered, owned, nKeys)
}

// Kill-restart chaos: concurrent writers, a storage node repeatedly
// hard-crashed and restarted over its surviving directory. With durable
// storage the invariant is strict — every acked write is readable once the
// dust settles, even when the crashed node was the only replica that acked.
func TestDurableChaosKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("kill/restart churn chaos; the dedicated race step runs it in full")
	}
	// Each seed runs a different shard-per-core width, so the crash/restart
	// cycles cover the unsharded layout and true multi-WAL parallel recovery
	// (4 and 8 WALs replaying concurrently on every restart).
	for _, tc := range []struct {
		seed   uint64
		shards int
	}{{1, 1}, {2, 4}, {3, 8}} {
		tc := tc
		t.Run(fmt.Sprintf("seed=%d,shards=%d", tc.seed, tc.shards), func(t *testing.T) {
			t.Parallel()
			runDurableChaos(t, tc.seed, tc.shards)
		})
	}
}

func runDurableChaos(t *testing.T, seed uint64, shards int) {
	cfg := Config{Seed: seed, ReadBudget: time.Second, DataDir: t.TempDir(), Shards: shards}
	c, err := StartCluster(5, cfg)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(c.Close)
	addrs := c.Addrs()
	// Only dial the first three nodes: they are never killed, so client
	// traffic keeps flowing while the storage nodes crash-cycle.
	cl, err := Dial(addrs[:3])
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(cl.Close)

	var (
		ledger chaosLedger
		stop   atomic.Bool
		wg     sync.WaitGroup
	)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				k := fmt.Sprintf("dchaos%d-w%d-%06d", seed, w, i)
				if i%6 == 5 {
					keys := []string{k + "-a", k + "-b", k + "-c"}
					vals := [][]byte{[]byte("v"), []byte("v"), []byte("v")}
					oks, err := cl.MultiPut(keys, vals)
					if err != nil {
						continue
					}
					for j, ok := range oks {
						if ok {
							ledger.add(keys[j])
						}
					}
					continue
				}
				if err := cl.Put(k, []byte("val-"+k)); err == nil {
					ledger.add(k)
				}
			}
		}(w)
	}

	// Orchestrator: crash/restart cycles on the non-coordinator storage
	// nodes (clients only dial 0..2; those stay up so acks keep flowing).
	rng := sim.RNG(seed, 0xdead)
	for cycle := 0; cycle < 3; cycle++ {
		time.Sleep(time.Duration(40+rng.Uint64()%80) * time.Millisecond)
		id := 3 + int(rng.Uint64()%2)
		c.Nodes[id].Crash()
		time.Sleep(time.Duration(20+rng.Uint64()%60) * time.Millisecond)
		c.Nodes[id] = restartNode(t, addrs, id, cfg)
		if got := c.Nodes[id].Shards(); got != shards {
			t.Fatalf("node %d recovered with %d shards, want %d", id, got, shards)
		}
	}

	time.Sleep(100 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	// Strict zero acked-write loss after settling.
	keys := ledger.all()
	if len(keys) == 0 {
		t.Fatal("chaos run acked no writes")
	}
	deadline := time.Now().Add(5 * time.Second)
	for start := 0; start < len(keys); start += 256 {
		end := min(start+256, len(keys))
		chunk := keys[start:end]
		for {
			_, found, err := cl.MultiGet(chunk)
			missing := ""
			if err == nil {
				for i, ok := range found {
					if !ok {
						missing = chunk[i]
						break
					}
				}
				if missing == "" {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("acked write lost across kill-restart: key %q err %v", missing, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}
