package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSampleMoments(t *testing.T) {
	s := NewSample(0)
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if !approx(s.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Unbiased variance of this classic dataset is 32/7.
	if !approx(s.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSampleEmpty(t *testing.T) {
	s := NewSample(0)
	if s.Mean() != 0 || s.Percentile(50) != 0 || s.Variance() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	if pts := s.ECDF(5); pts != nil {
		t.Fatalf("ECDF of empty sample = %v, want nil", pts)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 4; i++ {
		s.Add(float64(i)) // 1,2,3,4
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75}, {75, 3.25}, {-3, 1}, {150, 4},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); !approx(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileOfSingleton(t *testing.T) {
	s := NewSample(0)
	s.Add(3.5)
	for _, p := range []float64{0, 50, 99.9, 100} {
		if got := s.Percentile(p); got != 3.5 {
			t.Fatalf("Percentile(%v) = %v, want 3.5", p, got)
		}
	}
}

func TestPercentileInterleavedWithAdds(t *testing.T) {
	s := NewSample(0)
	s.Add(10)
	s.Add(20)
	if got := s.Median(); got != 15 {
		t.Fatalf("median = %v, want 15", got)
	}
	s.Add(0) // forces re-sort
	if got := s.Median(); got != 10 {
		t.Fatalf("median after add = %v, want 10", got)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		s := NewSample(0)
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			s.Add(x)
		}
		if s.Count() == 0 {
			return true
		}
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		a, b := s.Percentile(p1), s.Percentile(p2)
		return a <= b && a >= s.Min() && b <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECDFMonotone(t *testing.T) {
	s := NewSample(0)
	r := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 1000; i++ {
		s.Add(r.ExpFloat64())
	}
	pts := s.ECDF(64)
	if len(pts) != 64 {
		t.Fatalf("len(ECDF) = %d, want 64", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].F < pts[i-1].F {
			t.Fatalf("ECDF not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
	if last := pts[len(pts)-1]; last.F != 1 {
		t.Fatalf("final ECDF fraction = %v, want 1", last.F)
	}
}

func TestFractionBelow(t *testing.T) {
	s := NewSample(0)
	for _, x := range []float64{1, 2, 2, 3} {
		s.Add(x)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := s.FractionBelow(c.x); !approx(got, c.want, 1e-12) {
			t.Errorf("FractionBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	u := s.Summarize()
	if u.Count != 1000 {
		t.Fatalf("Count = %d", u.Count)
	}
	if !approx(u.P50, 500.5, 1e-9) || !approx(u.Mean, 500.5, 1e-9) {
		t.Fatalf("P50/Mean = %v/%v, want 500.5", u.P50, u.Mean)
	}
	if u.P999 < u.P99 || u.P99 < u.P95 || u.P95 < u.P50 {
		t.Fatal("percentiles not ordered")
	}
	if u.TailToMedian <= 1 {
		t.Fatalf("TailToMedian = %v, want > 1", u.TailToMedian)
	}
	if u.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestMeanCI95(t *testing.T) {
	mean, half := MeanCI95([]float64{10, 12, 8, 11, 9})
	if !approx(mean, 10, 1e-12) {
		t.Fatalf("mean = %v, want 10", mean)
	}
	if half <= 0 || half > 3 {
		t.Fatalf("half CI = %v, implausible", half)
	}
	if m, h := MeanCI95(nil); m != 0 || h != 0 {
		t.Fatal("empty runs should give zeros")
	}
	if m, h := MeanCI95([]float64{7}); m != 7 || h != 0 {
		t.Fatalf("single run: %v ± %v, want 7 ± 0", m, h)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{-1, 0, 0.5, 5, 9.99, 10, 100} {
		h.Add(x)
	}
	if h.Count() != 7 {
		t.Fatalf("Count = %d, want 7", h.Count())
	}
	if h.Bucket(0) != 3 { // -1 (clamped), 0, 0.5
		t.Fatalf("bucket 0 = %d, want 3", h.Bucket(0))
	}
	if h.Bucket(9) != 3 { // 9.99, 10 (clamped), 100 (clamped)
		t.Fatalf("bucket 9 = %d, want 3", h.Bucket(9))
	}
	if h.NumBuckets() != 10 || h.BucketLow(3) != 3 {
		t.Fatal("bucket geometry wrong")
	}
	if h.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for hi<=lo")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestWindowed(t *testing.T) {
	w := NewWindowed(100)
	for _, ts := range []int64{0, 50, 99, 100, 250, 999} {
		w.Record(ts)
	}
	got := w.Series()
	want := []int{3, 1, 1, 0, 0, 0, 0, 0, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("series length = %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if w.Total() != 6 {
		t.Fatalf("Total = %d, want 6", w.Total())
	}
	if w.Width() != 100 {
		t.Fatalf("Width = %d", w.Width())
	}
}

func TestWindowedNegativeTimeClamped(t *testing.T) {
	w := NewWindowed(10)
	w.Record(-5)
	if w.Series()[0] != 1 {
		t.Fatal("negative time should clamp to window 0")
	}
}

func TestOscillationIndexDetectsBursts(t *testing.T) {
	smooth := NewWindowed(1)
	bursty := NewWindowed(1)
	r := rand.New(rand.NewPCG(7, 7))
	for w := int64(0); w < 1000; w++ {
		for i := 0; i < 100; i++ { // constant 100/window
			smooth.Record(w)
		}
		// Bursty: usually 10, occasionally 500.
		n := 10
		if r.Float64() < 0.02 {
			n = 500
		}
		for i := 0; i < n; i++ {
			bursty.Record(w)
		}
	}
	si, bi := smooth.OscillationIndex(), bursty.OscillationIndex()
	if si >= 1.2 {
		t.Fatalf("smooth oscillation index = %v, want ~1", si)
	}
	if bi < 10 {
		t.Fatalf("bursty oscillation index = %v, want >= 10", bi)
	}
}

func TestMovingMedianConstant(t *testing.T) {
	xs := []float64{5, 5, 5, 5, 5}
	got := MovingMedian(xs, 3)
	for i, v := range got {
		if v != 5 {
			t.Fatalf("[%d] = %v, want 5", i, v)
		}
	}
}

func TestMovingMedianSuppressesSpike(t *testing.T) {
	xs := []float64{1, 1, 100, 1, 1}
	got := MovingMedian(xs, 3)
	for i, v := range got {
		if v != 1 {
			t.Fatalf("[%d] = %v, want 1 (spike should be filtered)", i, v)
		}
	}
}

func TestMovingMedianWindowOne(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	got := MovingMedian(xs, 1)
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("window=1 must be identity; [%d]=%v", i, got[i])
		}
	}
	if out := MovingMedian(nil, 5); len(out) != 0 {
		t.Fatal("empty input must give empty output")
	}
}

// Property: moving median output values are always drawn from the input set.
func TestMovingMedianValuesFromInputProperty(t *testing.T) {
	f := func(raw []float64, w uint8) bool {
		xs := raw[:0]
		for _, x := range raw {
			// Restrict to magnitudes where midpoint averaging cannot
			// overflow; latencies are always in this range.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e15 {
				xs = append(xs, x)
			}
		}
		window := int(w%9) + 1
		out := MovingMedian(xs, window)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, v := range out {
			i := sort.SearchFloat64s(sorted, v)
			exact := i < len(sorted) && sorted[i] == v
			if exact {
				continue
			}
			// Even windows average two members; accept midpoints.
			ok := false
			for j := 0; j+1 < len(sorted) && !ok; j++ {
				if approx((sorted[j]+sorted[j+1])/2, v, 1e-9) {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSampleAdd(b *testing.B) {
	s := NewSample(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(float64(i))
	}
}

func BenchmarkPercentile1M(b *testing.B) {
	s := NewSample(1 << 20)
	r := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 1<<20; i++ {
		s.Add(r.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(r.Float64()) // force re-sort
		_ = s.Percentile(99.9)
	}
}
