package kvstore

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"

	"c3/internal/wire"
)

// rpcConn is a pipelined request/response connection: many in-flight
// requests multiplex over one TCP stream, matched back by request id. Both
// coordinator→replica links and the external Client use it.
type rpcConn struct {
	conn net.Conn
	w    *wire.Writer
	wmu  sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan any // ReadResp or WriteResp
	isDead  bool

	nextID atomic.Uint64
}

var errConnDead = errors.New("kvstore: connection closed")

func newRPCConn(conn net.Conn) *rpcConn {
	p := &rpcConn{
		conn:    conn,
		w:       wire.NewWriter(conn),
		pending: make(map[uint64]chan any),
	}
	go p.readLoop()
	return p
}

func (p *rpcConn) dead() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.isDead
}

func (p *rpcConn) close() {
	p.conn.Close()
}

// readLoop demultiplexes responses to their waiters; on error it fails every
// outstanding call.
func (p *rpcConn) readLoop() {
	r := wire.NewReader(p.conn)
	for {
		typ, payload, err := r.Next()
		if err != nil {
			p.failAll()
			return
		}
		var id uint64
		var msg any
		switch typ {
		case wire.MsgReadResp:
			m, err := wire.ParseReadResp(payload)
			if err != nil {
				p.failAll()
				return
			}
			id, msg = m.ID, m
		case wire.MsgWriteResp:
			m, err := wire.ParseWriteResp(payload)
			if err != nil {
				p.failAll()
				return
			}
			id, msg = m.ID, m
		default:
			p.failAll()
			return
		}
		p.mu.Lock()
		ch, ok := p.pending[id]
		delete(p.pending, id)
		p.mu.Unlock()
		if ok {
			ch <- msg
		}
	}
}

func (p *rpcConn) failAll() {
	p.conn.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.isDead = true
	for id, ch := range p.pending {
		close(ch)
		delete(p.pending, id)
	}
}

// register allocates an id and a response channel.
func (p *rpcConn) register() (uint64, chan any, error) {
	id := p.nextID.Add(1)
	ch := make(chan any, 1)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.isDead {
		return 0, nil, errConnDead
	}
	p.pending[id] = ch
	return id, ch, nil
}

func (p *rpcConn) await(ch chan any) (any, error) {
	msg, ok := <-ch
	if !ok {
		return nil, errConnDead
	}
	return msg, nil
}

// read performs an internal (replica-local) read RPC.
func (p *rpcConn) read(key string) (wire.ReadResp, error) {
	return p.readTyped(wire.MsgReadInternal, key)
}

// clientRead performs a coordinated read RPC (external client use).
func (p *rpcConn) clientRead(key string) (wire.ReadResp, error) {
	return p.readTyped(wire.MsgRead, key)
}

func (p *rpcConn) readTyped(typ uint8, key string) (wire.ReadResp, error) {
	id, ch, err := p.register()
	if err != nil {
		return wire.ReadResp{}, err
	}
	p.wmu.Lock()
	err = p.w.WriteRead(typ, wire.ReadReq{ID: id, Key: key})
	p.wmu.Unlock()
	if err != nil {
		p.failAll()
		return wire.ReadResp{}, err
	}
	msg, err := p.await(ch)
	if err != nil {
		return wire.ReadResp{}, err
	}
	m, ok := msg.(wire.ReadResp)
	if !ok {
		return wire.ReadResp{}, errors.New("kvstore: mismatched response type")
	}
	return m, nil
}

// write performs an internal write RPC.
func (p *rpcConn) write(key string, val []byte) (wire.WriteResp, error) {
	return p.writeTyped(wire.MsgWriteInternal, key, val)
}

// clientWrite performs a coordinated write RPC.
func (p *rpcConn) clientWrite(key string, val []byte) (wire.WriteResp, error) {
	return p.writeTyped(wire.MsgWrite, key, val)
}

func (p *rpcConn) writeTyped(typ uint8, key string, val []byte) (wire.WriteResp, error) {
	id, ch, err := p.register()
	if err != nil {
		return wire.WriteResp{}, err
	}
	p.wmu.Lock()
	err = p.w.WriteWrite(typ, wire.WriteReq{ID: id, Key: key, Value: val})
	p.wmu.Unlock()
	if err != nil {
		p.failAll()
		return wire.WriteResp{}, err
	}
	msg, err := p.await(ch)
	if err != nil {
		return wire.WriteResp{}, err
	}
	m, ok := msg.(wire.WriteResp)
	if !ok {
		return wire.WriteResp{}, errors.New("kvstore: mismatched response type")
	}
	return m, nil
}
