// Fixture shapes are distilled from internal/lsm/wal.go (the group-commit
// mu/ioMu pair) and internal/kvstore's topology RWMutex: blocking work must
// happen outside the nanosecond-scale locks, with the WAL's dedicated I/O
// lock as the one suppressed design exception. time.Sleep stands in for the
// fsync/dial calls so the fixture stays off the os/net std closure.
package lockscope

import (
	"sync"
	"time"
)

type wal struct {
	mu   sync.Mutex
	ioMu sync.Mutex
}

type topo struct {
	mu sync.RWMutex
}

func (w *wal) sleepUnderLock() {
	w.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding w.mu`
	w.mu.Unlock()
}

func (w *wal) sleepAfterUnlock() {
	w.mu.Lock()
	w.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// deferredUnlock: the region runs to function exit, as at runtime.
func (w *wal) deferredUnlock() {
	w.mu.Lock()
	defer w.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding w.mu`
}

func (t *topo) readLockSleep() {
	t.mu.RLock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding t.mu`
	t.mu.RUnlock()
}

// twoLocks: releasing the inner lock does not end the outer region.
func (w *wal) twoLocks() {
	w.mu.Lock()
	w.ioMu.Lock()
	w.ioMu.Unlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding w.mu`
	w.mu.Unlock()
}

func (w *wal) unbufferedSend() {
	ch := make(chan int)
	w.mu.Lock()
	ch <- 1 // want `send on unbuffered channel ch while holding w.mu`
	w.mu.Unlock()
	<-ch
}

// bufferedSend cannot block on a waiting receiver.
func (w *wal) bufferedSend() {
	ch := make(chan int, 1)
	w.mu.Lock()
	ch <- 1
	w.mu.Unlock()
}

// spawnUnderLock: the goroutine does not hold the caller's lock.
func (w *wal) spawnUnderLock() {
	w.mu.Lock()
	go func() {
		time.Sleep(time.Millisecond)
	}()
	w.mu.Unlock()
}

// branchUnlock: each path's region ends at its own unlock.
func (w *wal) branchUnlock(fast bool) {
	w.mu.Lock()
	if fast {
		w.mu.Unlock()
		time.Sleep(time.Millisecond)
		return
	}
	w.mu.Unlock()
}

// groupCommit holds the dedicated I/O lock across the blocking call on
// purpose — the WAL design — and is suppressed with the reason.
func (w *wal) groupCommit() {
	w.ioMu.Lock()
	//lint:allow lockscope ioMu is the dedicated I/O lock; serializing the slow path under it is the group-commit design
	time.Sleep(time.Millisecond)
	w.ioMu.Unlock()
}
