package bench

import (
	"c3/internal/cassim"
	"c3/internal/queuesim"
)

// ExtTokenAware evaluates the §7 future-work item the paper names first:
// token-aware clients (Astyanax-style) that coordinate at a replica of the
// key, avoiding overloaded non-replica coordinators.
func ExtTokenAware(o Options) *Report {
	r := newReport("ext-token", "extension: token-aware clients (§7)")
	var p99 [2]float64
	for i, aware := range []bool{false, true} {
		aware := aware
		rs := clusterRun(o, func(c *cassim.Config) {
			c.Strategy = cassim.StratC3
			c.TokenAware = aware
		})
		label := "C3, random coordinator"
		if aware {
			label = "C3, token-aware"
		}
		latencyRow(r, label, rs)
		p99[i] = avg(rs, func(x *cassim.Result) float64 { return x.Reads.P99 })
		r.Metric(map[bool]string{false: "p99_random", true: "p99_tokenaware"}[aware], p99[i])
	}
	r.printf("  token-aware p99 change: ×%.2f (saves a hop on self-selection; concentrates", p99[0]/p99[1])
	r.printf("  coordination on the key's replicas — a modest net effect in this model)")
	r.Metric("p99_improvement", p99[0]/p99[1])
	return r
}

// ExtQuorum evaluates the §7 strongly-consistent-reads discussion: quorum
// reads (CL=2 of RF=3) complete at the slower of two replicas, so the gains
// from replica selection shrink — exactly the paper's caveat.
func ExtQuorum(o Options) *Report {
	r := newReport("ext-quorum", "extension: quorum reads (§7 strong consistency)")
	type cell struct{ p50, p999 float64 }
	res := map[string]cell{}
	for _, strat := range []string{cassim.StratC3, cassim.StratDS} {
		for _, cl := range []int{1, 2} {
			strat, cl := strat, cl
			rs := clusterRun(o, func(c *cassim.Config) {
				c.Strategy = strat
				c.ReadConsistency = cl
			})
			latencyRow(r, strat+" CL="+itoa(cl), rs)
			res[strat+itoa(cl)] = cell{
				p50:  avg(rs, func(x *cassim.Result) float64 { return x.Reads.P50 }),
				p999: avg(rs, func(x *cassim.Result) float64 { return x.Reads.P999 }),
			}
		}
	}
	gain1 := res["DS1"].p999 / res["C31"].p999
	gain2 := res["DS2"].p999 / res["C32"].p999
	r.printf("  p99.9 gain of C3 over DS: CL=1 ×%.2f, CL=2 ×%.2f", gain1, gain2)
	r.printf("  (the paper predicts smaller gains under quorum reads: a straggler cannot be avoided)")
	r.Metric("gain_cl1", gain1)
	r.Metric("gain_cl2", gain2)
	return r
}

// ExtC3Spec evaluates reissues atop C3 (§8: "request reissues could be
// introduced atop C3"), in contrast to the §5 finding that reissues atop DS
// backfire.
func ExtC3Spec(o Options) *Report {
	r := newReport("ext-spec", "extension: speculative retries atop C3 (§8)")
	var p999 [2]float64
	for i, strat := range []string{cassim.StratC3, cassim.StratC3Spec} {
		strat := strat
		rs := clusterRun(o, func(c *cassim.Config) { c.Strategy = strat })
		latencyRow(r, strat, rs)
		p999[i] = avg(rs, func(x *cassim.Result) float64 { return x.Reads.P999 })
		if strat == cassim.StratC3Spec {
			r.printf("  speculative retries issued: %.0f per run",
				avg(rs, func(x *cassim.Result) float64 { return float64(x.SpeculativeRetries) }))
		}
	}
	r.printf("  p99.9 C3-SPEC/C3 = %.2fx (atop C3's load conditioning, reissues are far less harmful than atop DS)",
		p999[1]/p999[0])
	r.Metric("spec_p999_ratio", p999[1]/p999[0])
	return r
}

// AblationDecreaseRule compares the paper's literal Algorithm 2 decrease
// condition (srate > rrate, which collapses sparse flows) against this
// implementation's robust variant (actual sends vs receipts) on the §6 model.
func AblationDecreaseRule(o Options) *Report {
	r := newReport("ablate-decrease", "ablation: literal vs robust rate-decrease rule")
	robust := simP99(o, func(c *queuesim.Config) { c.Policy = queuesim.PolicyC3 })
	literal := simP99(o, func(c *queuesim.Config) {
		c.Policy = queuesim.PolicyC3
		c.RateConfig.LiteralDecrease = true
	})
	r.printf("  robust rule (sent vs received)   p99=%8.2f ms", robust)
	r.printf("  literal rule (allowance vs rrate) p99=%8.2f ms", literal)
	r.printf("  literal/robust = ×%.2f — the literal rule misreads sparse per-pair flows as", literal/robust)
	r.printf("  saturation, pins rates at the floor and inflates the tail via backpressure")
	r.Metric("p99_robust", robust)
	r.Metric("p99_literal", literal)
	r.Metric("literal_penalty", literal/robust)
	return r
}
