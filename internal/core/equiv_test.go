package core

// Equivalence tests: the dense-state (registry-indexed, allocation-free)
// rankers must produce exactly the same orderings as the seed's map-based
// implementations under identical seeds and feedback sequences. The legacy
// implementations below are faithful copies of the pre-refactor code.

import (
	"math"
	"math/rand/v2"
	"sort"
	"strconv"
	"testing"
	"time"

	"c3/internal/ewma"
	"c3/internal/sim"
)

// --- legacy C3 ranker (map-based, math.Pow scoring, sort.SliceStable) ---

type legacyC3State struct {
	outstanding      float64
	qbar, tbar, rbar ewma.EWMA
}

type legacyCubic struct {
	cfg     RankerConfig
	rng     *rand.Rand
	st      map[ServerID]*legacyC3State
	scratch []scored
}

func newLegacyCubic(cfg RankerConfig) *legacyCubic {
	cfg = cfg.withDefaults()
	return &legacyCubic{cfg: cfg, rng: sim.RNG(cfg.Seed, 0xc3), st: make(map[ServerID]*legacyC3State)}
}

func (c *legacyCubic) Name() string { return "C3-legacy" }

func (c *legacyCubic) state(s ServerID) *legacyC3State {
	st, ok := c.st[s]
	if !ok {
		st = &legacyC3State{
			qbar: ewma.New(c.cfg.Alpha),
			tbar: ewma.New(c.cfg.Alpha),
			rbar: ewma.New(c.cfg.Alpha),
		}
		c.st[s] = st
	}
	return st
}

func (c *legacyCubic) OnSend(s ServerID, now int64) { c.state(s).outstanding++ }

func (c *legacyCubic) OnResponse(s ServerID, fb Feedback, rtt time.Duration, now int64) {
	st := c.state(s)
	if st.outstanding > 0 {
		st.outstanding--
	}
	st.qbar.Add(fb.QueueSize)
	st.tbar.Add(seconds(fb.ServiceTime))
	st.rbar.Add(seconds(rtt))
}

func (c *legacyCubic) OnAbandon(s ServerID, now int64) {
	if st := c.state(s); st.outstanding > 0 {
		st.outstanding--
	}
}

func (c *legacyCubic) score(s ServerID) float64 {
	st := c.state(s)
	if !st.tbar.Initialized() {
		return math.Inf(-1)
	}
	qhat := 1 + st.outstanding*c.cfg.ConcurrencyWeight + st.qbar.Value()
	return CubicScore(st.rbar.Value(), st.tbar.Value(), qhat, c.cfg.Exponent)
}

func (c *legacyCubic) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	if cap(c.scratch) < len(dst) {
		c.scratch = make([]scored, len(dst))
	}
	sc := c.scratch[:0]
	for _, s := range dst {
		sc = append(sc, scored{s, c.score(s)})
	}
	shuffleScored(c.rng, sc)
	sort.SliceStable(sc, func(i, j int) bool { return sc[i].score < sc[j].score })
	for i := range sc {
		dst[i] = sc[i].s
	}
	return dst
}

// --- legacy LOR ---

type legacyLOR struct {
	rng         *rand.Rand
	outstanding map[ServerID]float64
	scratch     []scored
}

func newLegacyLOR(seed uint64) *legacyLOR {
	return &legacyLOR{rng: sim.RNG(seed, 0x10f), outstanding: make(map[ServerID]float64)}
}

func (l *legacyLOR) Name() string                 { return "LOR-legacy" }
func (l *legacyLOR) OnSend(s ServerID, now int64) { l.outstanding[s]++ }

func (l *legacyLOR) OnResponse(s ServerID, fb Feedback, rtt time.Duration, now int64) {
	if l.outstanding[s] > 0 {
		l.outstanding[s]--
	}
}

func (l *legacyLOR) OnAbandon(s ServerID, now int64) {
	if l.outstanding[s] > 0 {
		l.outstanding[s]--
	}
}

func (l *legacyLOR) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	if cap(l.scratch) < len(dst) {
		l.scratch = make([]scored, len(dst))
	}
	sc := l.scratch[:0]
	for _, s := range dst {
		sc = append(sc, scored{s, l.outstanding[s]})
	}
	shuffleScored(l.rng, sc)
	sort.SliceStable(sc, func(i, j int) bool { return sc[i].score < sc[j].score })
	for i := range sc {
		dst[i] = sc[i].s
	}
	return dst
}

// --- legacy RoundRobin (string group keys, scratch-buffer rotate) ---

type legacyRR struct {
	next map[string]int
	key  []byte
}

func newLegacyRR() *legacyRR { return &legacyRR{next: make(map[string]int)} }

func (r *legacyRR) Name() string                                        { return "RR-legacy" }
func (r *legacyRR) OnSend(ServerID, int64)                              {}
func (r *legacyRR) OnResponse(ServerID, Feedback, time.Duration, int64) {}
func (r *legacyRR) OnAbandon(ServerID, int64)                           {}

func (r *legacyRR) groupKey(group []ServerID) string {
	r.key = r.key[:0]
	for _, s := range group {
		r.key = strconv.AppendInt(r.key, int64(s), 36)
		r.key = append(r.key, ',')
	}
	return string(r.key)
}

func (r *legacyRR) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	if len(dst) == 0 {
		return dst
	}
	k := r.groupKey(group)
	off := r.next[k] % len(dst)
	r.next[k] = off + 1
	buf := make([]ServerID, len(dst))
	for i := range dst {
		buf[i] = dst[(i+off)%len(dst)]
	}
	copy(dst, buf)
	return dst
}

// --- legacy TwoChoice ---

type legacyTwoChoice struct {
	rng         *rand.Rand
	outstanding map[ServerID]float64
}

func newLegacyTwoChoice(seed uint64) *legacyTwoChoice {
	return &legacyTwoChoice{rng: sim.RNG(seed, 0x2c), outstanding: make(map[ServerID]float64)}
}

func (t *legacyTwoChoice) Name() string                 { return "2C-legacy" }
func (t *legacyTwoChoice) OnSend(s ServerID, now int64) { t.outstanding[s]++ }

func (t *legacyTwoChoice) OnResponse(s ServerID, fb Feedback, rtt time.Duration, now int64) {
	if t.outstanding[s] > 0 {
		t.outstanding[s]--
	}
}

func (t *legacyTwoChoice) OnAbandon(s ServerID, now int64) {
	if t.outstanding[s] > 0 {
		t.outstanding[s]--
	}
}

func (t *legacyTwoChoice) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	for i := len(dst) - 1; i > 0; i-- {
		j := t.rng.IntN(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
	if len(dst) >= 2 && t.outstanding[dst[1]] < t.outstanding[dst[0]] {
		dst[0], dst[1] = dst[1], dst[0]
	}
	return dst
}

// --- legacy LeastResponseTime ---

type legacyLRT struct {
	rng     *rand.Rand
	alpha   float64
	rt      map[ServerID]*ewma.EWMA
	scratch []scored
}

func newLegacyLRT(alpha float64, seed uint64) *legacyLRT {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.9
	}
	return &legacyLRT{rng: sim.RNG(seed, 0x1e57), alpha: alpha, rt: make(map[ServerID]*ewma.EWMA)}
}

func (l *legacyLRT) Name() string              { return "LRT-legacy" }
func (l *legacyLRT) OnSend(ServerID, int64)    {}
func (l *legacyLRT) OnAbandon(ServerID, int64) {}

func (l *legacyLRT) OnResponse(s ServerID, fb Feedback, rtt time.Duration, now int64) {
	e, ok := l.rt[s]
	if !ok {
		v := ewma.New(l.alpha)
		e = &v
		l.rt[s] = e
	}
	e.Add(seconds(rtt))
}

func (l *legacyLRT) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	if cap(l.scratch) < len(dst) {
		l.scratch = make([]scored, len(dst))
	}
	sc := l.scratch[:0]
	for _, s := range dst {
		v := math.Inf(-1)
		if e, ok := l.rt[s]; ok && e.Initialized() {
			v = e.Value()
		}
		sc = append(sc, scored{s, v})
	}
	shuffleScored(l.rng, sc)
	sort.SliceStable(sc, func(i, j int) bool { return sc[i].score < sc[j].score })
	for i := range sc {
		dst[i] = sc[i].s
	}
	return dst
}

// --- legacy WeightedRandom ---

type legacyWRND struct {
	rng   *rand.Rand
	alpha float64
	rt    map[ServerID]*ewma.EWMA
}

func newLegacyWRND(alpha float64, seed uint64) *legacyWRND {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.9
	}
	return &legacyWRND{rng: sim.RNG(seed, 0x33d), alpha: alpha, rt: make(map[ServerID]*ewma.EWMA)}
}

func (w *legacyWRND) Name() string              { return "WRND-legacy" }
func (w *legacyWRND) OnSend(ServerID, int64)    {}
func (w *legacyWRND) OnAbandon(ServerID, int64) {}

func (w *legacyWRND) OnResponse(s ServerID, fb Feedback, rtt time.Duration, now int64) {
	e, ok := w.rt[s]
	if !ok {
		v := ewma.New(w.alpha)
		e = &v
		w.rt[s] = e
	}
	e.Add(seconds(rtt))
}

func (w *legacyWRND) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	weights := make([]float64, len(dst))
	best := 0.0
	for i, s := range dst {
		if e, ok := w.rt[s]; ok && e.Initialized() && e.Value() > 0 {
			weights[i] = 1 / e.Value()
			if weights[i] > best {
				best = weights[i]
			}
		}
	}
	for i := range weights {
		if weights[i] == 0 {
			if best > 0 {
				weights[i] = best
			} else {
				weights[i] = 1
			}
		}
	}
	for i := 0; i < len(dst)-1; i++ {
		total := 0.0
		for j := i; j < len(dst); j++ {
			total += weights[j]
		}
		x := w.rng.Float64() * total
		pick := i
		for j := i; j < len(dst); j++ {
			x -= weights[j]
			if x <= 0 {
				pick = j
				break
			}
		}
		dst[i], dst[pick] = dst[pick], dst[i]
		weights[i], weights[pick] = weights[pick], weights[i]
	}
	return dst
}

// --- legacy DynamicSnitch ---

type legacySnitchPeer struct {
	samples  []float64
	idx, n   int
	severity float64
	score    float64
}

type legacySnitch struct {
	cfg         SnitchConfig
	rng         *rand.Rand
	peers       map[ServerID]*legacySnitchPeer
	lastCompute int64
	lastReset   int64
	began       bool
	scratch     []scored
}

func newLegacySnitch(cfg SnitchConfig) *legacySnitch {
	cfg = cfg.withDefaults()
	return &legacySnitch{cfg: cfg, rng: sim.RNG(cfg.Seed, 0xd5), peers: make(map[ServerID]*legacySnitchPeer)}
}

func (d *legacySnitch) Name() string { return "DS-legacy" }

func (d *legacySnitch) peer(s ServerID) *legacySnitchPeer {
	p, ok := d.peers[s]
	if !ok {
		p = &legacySnitchPeer{samples: make([]float64, d.cfg.HistorySize)}
		d.peers[s] = p
	}
	return p
}

func (d *legacySnitch) OnSend(ServerID, int64)    {}
func (d *legacySnitch) OnAbandon(ServerID, int64) {}

func (d *legacySnitch) OnResponse(s ServerID, fb Feedback, rtt time.Duration, now int64) {
	p := d.peer(s)
	p.samples[p.idx] = seconds(rtt)
	p.idx = (p.idx + 1) % len(p.samples)
	if p.n < len(p.samples) {
		p.n++
	}
}

func (d *legacySnitch) SetSeverity(s ServerID, iowait float64) {
	if iowait < 0 {
		iowait = 0
	}
	d.peer(s).severity = iowait
}

func legacyMedian(p *legacySnitchPeer, buf []float64) (float64, bool) {
	if p.n == 0 {
		return 0, false
	}
	buf = append(buf[:0], p.samples[:p.n]...)
	sort.Float64s(buf)
	m := len(buf)
	if m%2 == 1 {
		return buf[m/2], true
	}
	return (buf[m/2-1] + buf[m/2]) / 2, true
}

func (d *legacySnitch) recompute(now int64) {
	var buf []float64
	maxMed := 0.0
	meds := make(map[ServerID]float64, len(d.peers))
	for id, p := range d.peers {
		if med, ok := legacyMedian(p, buf); ok {
			meds[id] = med
			if med > maxMed {
				maxMed = med
			}
		}
	}
	for id, p := range d.peers {
		latScore := 0.0
		if med, ok := meds[id]; ok && maxMed > 0 {
			latScore = med / maxMed
		}
		p.score = latScore + d.cfg.SeverityWeight*p.severity
	}
	d.lastCompute = now
}

func (d *legacySnitch) maybeTick(now int64) {
	if !d.began {
		d.began = true
		d.lastCompute = now
		d.lastReset = now
		return
	}
	if now-d.lastReset >= d.cfg.ResetInterval {
		for _, p := range d.peers {
			p.n, p.idx = 0, 0
		}
		d.lastReset = now
	}
	if now-d.lastCompute >= d.cfg.UpdateInterval {
		d.recompute(now)
	}
}

func (d *legacySnitch) Rank(dst, group []ServerID, now int64) []ServerID {
	d.maybeTick(now)
	dst = prepare(dst, group)
	if cap(d.scratch) < len(dst) {
		d.scratch = make([]scored, len(dst))
	}
	sc := d.scratch[:0]
	for _, s := range dst {
		sc = append(sc, scored{s, d.peer(s).score})
	}
	sort.SliceStable(sc, func(i, j int) bool {
		if sc[i].score != sc[j].score {
			return sc[i].score < sc[j].score
		}
		return sc[i].s < sc[j].s
	})
	for i := range sc {
		dst[i] = sc[i].s
	}
	return dst
}

// --- legacy Oracle ---

type legacyOracle struct {
	rng     *rand.Rand
	fn      OracleFn
	scratch []scored
}

func newLegacyOracle(fn OracleFn, seed uint64) *legacyOracle {
	return &legacyOracle{rng: sim.RNG(seed, 0x04ac1e), fn: fn}
}

func (o *legacyOracle) Name() string                                        { return "ORA-legacy" }
func (o *legacyOracle) OnSend(ServerID, int64)                              {}
func (o *legacyOracle) OnResponse(ServerID, Feedback, time.Duration, int64) {}
func (o *legacyOracle) OnAbandon(ServerID, int64)                           {}

func (o *legacyOracle) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	if cap(o.scratch) < len(dst) {
		o.scratch = make([]scored, len(dst))
	}
	sc := o.scratch[:0]
	for _, s := range dst {
		q, t := o.fn(s)
		sc = append(sc, scored{s, (q + 1) * t})
	}
	shuffleScored(o.rng, sc)
	sort.SliceStable(sc, func(i, j int) bool { return sc[i].score < sc[j].score })
	for i := range sc {
		dst[i] = sc[i].s
	}
	return dst
}

// --- the lockstep driver ---

// runEquivalence drives a dense ranker and its legacy twin through an
// identical randomized workload — rotating replica groups, random in-flight
// responses with random feedback — and requires Rank to produce identical
// orderings on every round. extra, when non-nil, applies side-channel inputs
// (e.g. snitch severities) to both rankers.
func runEquivalence(t *testing.T, dense, legacy Ranker, extra func(scen *rand.Rand, now int64)) {
	t.Helper()
	scen := sim.RNG(0x5eed, 0xe9)
	groups := [][]ServerID{
		{0, 1, 2}, {1, 2, 3}, {2, 3, 4}, {3, 4, 0}, {4, 0, 1},
		{0, 1, 2, 3, 4}, {5, 6}, {6, 5, 0},
	}
	var inflight []ServerID
	dstA := make([]ServerID, 8)
	dstB := make([]ServerID, 8)
	now := int64(0)
	for round := 0; round < 4000; round++ {
		now += int64(scen.IntN(3_000_000)) // 0–3 ms steps: crosses snitch ticks
		if extra != nil && round%37 == 0 {
			extra(scen, now)
		}
		g := groups[scen.IntN(len(groups))]
		a := dense.Rank(dstA, g, now)
		b := legacy.Rank(dstB, g, now)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round %d group %v: dense %v != legacy %v", round, g, a, b)
			}
		}
		s := a[0]
		dense.OnSend(s, now)
		legacy.OnSend(s, now)
		inflight = append(inflight, s)
		for len(inflight) > 0 && scen.Float64() < 0.7 {
			i := scen.IntN(len(inflight))
			rs := inflight[i]
			inflight[i] = inflight[len(inflight)-1]
			inflight = inflight[:len(inflight)-1]
			fb := Feedback{
				QueueSize:   scen.Float64() * 20,
				ServiceTime: time.Duration(1 + scen.IntN(5_000_000)),
			}
			rtt := time.Duration(1 + scen.IntN(8_000_000))
			if scen.Float64() < 0.15 {
				// A slice of in-flight requests never completes: both
				// sides must release accounting identically.
				dense.OnAbandon(rs, now)
				legacy.OnAbandon(rs, now)
			} else {
				dense.OnResponse(rs, fb, rtt, now)
				legacy.OnResponse(rs, fb, rtt, now)
			}
		}
	}
}

func TestEquivalenceCubic(t *testing.T) {
	for _, seed := range []uint64{1, 7, 99} {
		cfg := RankerConfig{ConcurrencyWeight: 8, Seed: seed}
		runEquivalence(t, NewCubicRanker(cfg), newLegacyCubic(cfg), nil)
	}
}

func TestEquivalenceCubicNonCubeExponent(t *testing.T) {
	// Exponent ≠ 3 exercises the math.Pow fallback path.
	cfg := RankerConfig{ConcurrencyWeight: 8, Exponent: 2, Seed: 5}
	runEquivalence(t, NewCubicRanker(cfg), newLegacyCubic(cfg), nil)
}

func TestEquivalenceLOR(t *testing.T) {
	for _, seed := range []uint64{1, 7, 99} {
		runEquivalence(t, NewLOR(nil, seed), newLegacyLOR(seed), nil)
	}
}

func TestEquivalenceRoundRobin(t *testing.T) {
	runEquivalence(t, NewRoundRobin(nil), newLegacyRR(), nil)
}

func TestEquivalenceTwoChoice(t *testing.T) {
	for _, seed := range []uint64{1, 7, 99} {
		runEquivalence(t, NewTwoChoice(nil, seed), newLegacyTwoChoice(seed), nil)
	}
}

func TestEquivalenceLeastResponseTime(t *testing.T) {
	for _, seed := range []uint64{1, 7, 99} {
		runEquivalence(t, NewLeastResponseTime(nil, 0.9, seed), newLegacyLRT(0.9, seed), nil)
	}
}

func TestEquivalenceWeightedRandom(t *testing.T) {
	for _, seed := range []uint64{1, 7, 99} {
		runEquivalence(t, NewWeightedRandom(nil, 0.9, seed), newLegacyWRND(0.9, seed), nil)
	}
}

func TestEquivalenceDynamicSnitch(t *testing.T) {
	for _, seed := range []uint64{1, 7, 99} {
		cfg := SnitchConfig{Seed: seed, HistorySize: 16}
		dense := NewDynamicSnitch(cfg)
		legacy := newLegacySnitch(cfg)
		runEquivalence(t, dense, legacy, func(scen *rand.Rand, now int64) {
			s := ServerID(scen.IntN(7))
			v := scen.Float64() * 0.2
			dense.SetSeverity(s, v)
			legacy.SetSeverity(s, v)
		})
	}
}

func TestEquivalenceOracle(t *testing.T) {
	// Mutable fake server state shared by both oracles.
	q := make([]float64, 8)
	st := make([]float64, 8)
	fn := func(s ServerID) (float64, float64) { return q[s], st[s] }
	dense := NewOracle(fn, 3)
	legacy := newLegacyOracle(fn, 3)
	runEquivalence(t, dense, legacy, func(scen *rand.Rand, now int64) {
		i := scen.IntN(len(q))
		q[i] = float64(scen.IntN(20))
		st[i] = 0.001 + scen.Float64()*0.01
	})
}
