// Fixture shapes are distilled from internal/kvstore PR 1-7 coordinators:
// the probe ladder (repairProbe), helper settling (accountReadSuccess), and
// goroutine settling (raceRead). leakyProbe is the PR 3 read-repair
// accounting leak, verbatim in miniature.
package accountpair

type ServerID int

type Feedback struct{}

type sel struct{}

func (s *sel) OnSend(id ServerID, now int64)                               {}
func (s *sel) OnSendN(id ServerID, n int, now int64)                       {}
func (s *sel) OnResponse(id ServerID, fb Feedback, rtt, now int64)         {}
func (s *sel) OnAbandon(id ServerID, now int64)                            {}
func (s *sel) OnResponseN(id ServerID, n int, fb Feedback, rtt, now int64) {}
func (s *sel) OnAbandonN(id ServerID, n int, now int64)                    {}

type node struct{ sel *sel }

func (n *node) rpc(id ServerID) (int, error) { return 0, nil }

// leakyProbe is the PR 3 read-repair leak: the error path returns without
// releasing the outstanding count.
func (n *node) leakyProbe(id ServerID) {
	n.sel.OnSend(id, 1) // want `OnSend is not balanced`
	if _, err := n.rpc(id); err != nil {
		return
	}
	n.sel.OnResponse(id, Feedback{}, 1, 2)
}

// balancedProbe settles on both paths: the repaired repairProbe shape.
func (n *node) balancedProbe(id ServerID) {
	n.sel.OnSend(id, 1)
	if _, err := n.rpc(id); err != nil {
		n.sel.OnAbandon(id, 2)
		return
	}
	n.sel.OnResponse(id, Feedback{}, 1, 2)
}

// settleOK is an accountReadSuccess-style package helper; calling it counts
// as settling.
func (n *node) settleOK(id ServerID) { n.sel.OnResponse(id, Feedback{}, 1, 2) }

func (n *node) viaHelper(id ServerID) {
	n.sel.OnSend(id, 1)
	if _, err := n.rpc(id); err != nil {
		n.sel.OnAbandon(id, 2)
		return
	}
	n.settleOK(id)
}

// viaGoroutine settles in a goroutine spawned on the path (the raceRead
// shape): the settle eventually runs, so the send is balanced.
func (n *node) viaGoroutine(id ServerID) {
	n.sel.OnSendN(id, 3, 1)
	go func() {
		n.sel.OnAbandonN(id, 3, 2)
	}()
}

// loopLeak: a send inside a loop must settle within its own iteration — the
// continue path escapes to the next iteration and then out of the function.
func (n *node) loopLeak(ids []ServerID) {
	for _, id := range ids {
		n.sel.OnSend(id, 1) // want `OnSend is not balanced`
		if _, err := n.rpc(id); err != nil {
			continue
		}
		n.sel.OnResponse(id, Feedback{}, 1, 2)
	}
}

// loopBalanced is repairProbe: every iteration settles before looping.
func (n *node) loopBalanced(ids []ServerID) {
	for _, id := range ids {
		n.sel.OnSend(id, 1)
		if _, err := n.rpc(id); err != nil {
			n.sel.OnAbandon(id, 2)
			continue
		}
		n.sel.OnResponse(id, Feedback{}, 1, 2)
	}
}

// deferSettle: a settle registered with defer covers every later exit.
func (n *node) deferSettle(id ServerID) {
	n.sel.OnSend(id, 1)
	defer n.sel.OnAbandon(id, 2)
	if _, err := n.rpc(id); err != nil {
		return
	}
}

// eventSend records a send whose settlement lives in another event handler —
// the discrete-event-simulator shape, suppressed with a reason.
func (n *node) eventSend(id ServerID) {
	//lint:allow accountpair settled in the response event handler
	n.sel.OnSend(id, 1)
}

// staleSuppression: a directive that suppresses nothing is itself reported.
func (n *node) staleSuppression(id ServerID) {
	n.sel.OnSend(id, 1)
	//lint:allow accountpair left behind after a refactor
	n.sel.OnResponse(id, Feedback{}, 1, 2) // want `unused suppression for "accountpair"`
}

// tracker implements the settle side itself: methods on such a type record
// sends their callers settle, and are exempt.
type tracker struct {
	sel *sel
}

func (t *tracker) OnResponse(id ServerID, fb Feedback, rtt, now int64) {
	t.sel.OnResponse(id, fb, rtt, now)
}

func (t *tracker) Pick(id ServerID) ServerID {
	t.sel.OnSend(id, 1)
	return id
}
