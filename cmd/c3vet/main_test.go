package main

import (
	"strings"
	"testing"
)

// TestRegistersAllAnalyzers pins the multichecker's suite: dropping an
// analyzer from the registration list would silently stop enforcing its
// invariant repo-wide, so the full set is asserted by name.
func TestRegistersAllAnalyzers(t *testing.T) {
	want := map[string]bool{
		"accountpair": false,
		"aliasretain": false,
		"poolsafe":    false,
		"typederr":    false,
		"lockscope":   false,
	}
	for _, a := range analyzers {
		seen, known := want[a.Name]
		if !known {
			t.Errorf("unexpected analyzer %q registered", a.Name)
			continue
		}
		if seen {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		want[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("analyzer %q not registered with cmd/c3vet", name)
		}
	}
}

// TestUsageListsAnalyzers keeps `c3vet help` in sync with the suite.
func TestUsageListsAnalyzers(t *testing.T) {
	var sb strings.Builder
	usage(&sb)
	out := sb.String()
	for _, a := range analyzers {
		if !strings.Contains(out, a.Name) {
			t.Errorf("usage output missing analyzer %q", a.Name)
		}
	}
	if !strings.Contains(out, "lint:allow") {
		t.Error("usage output missing the suppression syntax")
	}
}
