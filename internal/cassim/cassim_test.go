package cassim

import (
	"testing"
	"time"

	"c3/internal/ratelimit"
	"c3/internal/workload"
)

func small(strategy string, seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Strategy = strategy
	cfg.Ops = 30_000
	cfg.Seed = seed
	return cfg
}

// simTest marks a multi-second simulation test: skipped under -short (the
// repo-wide race sweep runs with -short; the full Test step still runs these).
func simTest(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("multi-second simulation; skipped under -short")
	}
}

func TestAllStrategiesComplete(t *testing.T) {
	for _, st := range []string{StratC3, StratDS, StratDSSpec, StratLOR, StratRR} {
		st := st
		t.Run(st, func(t *testing.T) {
			t.Parallel()
			cfg := small(st, 1)
			cfg.Ops = 10_000
			res := Run(cfg)
			total := res.Reads.Count + res.Writes.Count
			if total != cfg.Ops {
				t.Fatalf("completed %d ops, want %d", total, cfg.Ops)
			}
			if res.Reads.Min <= 0 {
				t.Fatalf("non-positive read latency %v", res.Reads.Min)
			}
			if res.Throughput <= 0 {
				t.Fatal("zero throughput")
			}
		})
	}
}

func TestOpMixRatios(t *testing.T) {
	simTest(t)
	cfg := small(StratC3, 2)
	cfg.Mix = workload.UpdateHeavy
	res := Run(cfg)
	frac := float64(res.Reads.Count) / float64(res.Reads.Count+res.Writes.Count)
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("read fraction = %v, want ≈0.5", frac)
	}
	cfg.Mix = workload.ReadOnly
	res = Run(cfg)
	if res.Writes.Count != 0 {
		t.Fatalf("read-only workload produced %d writes", res.Writes.Count)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	simTest(t)
	a := Run(small(StratC3, 42))
	b := Run(small(StratC3, 42))
	if a.Reads.Mean != b.Reads.Mean || a.Reads.P999 != b.Reads.P999 ||
		a.Throughput != b.Throughput {
		t.Fatalf("same seed diverged: %v vs %v", a.Reads, b.Reads)
	}
}

func TestC3BeatsDynamicSnitching(t *testing.T) {
	simTest(t)
	// The headline §5 result, averaged over seeds: C3 improves the tail
	// and throughput over DS.
	var c3p99, dsp99, c3thr, dsthr float64
	for seed := uint64(0); seed < 3; seed++ {
		cc := small(StratC3, seed)
		cc.Ops = 60_000
		dc := small(StratDS, seed)
		dc.Ops = 60_000
		rc, rd := Run(cc), Run(dc)
		c3p99 += rc.Reads.P99 / 3
		dsp99 += rd.Reads.P99 / 3
		c3thr += rc.Throughput / 3
		dsthr += rd.Throughput / 3
	}
	if c3p99 >= dsp99 {
		t.Fatalf("C3 p99 (%.1f) should beat DS (%.1f)", c3p99, dsp99)
	}
	if c3thr <= dsthr {
		t.Fatalf("C3 throughput (%.0f) should beat DS (%.0f)", c3thr, dsthr)
	}
}

func TestDSOscillatesMoreThanC3(t *testing.T) {
	simTest(t)
	// Fig. 2 / Fig. 9: the request-arrival series of DS shows herd
	// oscillation that C3 lacks.
	var dsOsc, c3Osc float64
	for seed := uint64(0); seed < 3; seed++ {
		dc := small(StratDS, seed)
		dc.Ops = 60_000
		cc := small(StratC3, seed)
		cc.Ops = 60_000
		_, dw := Run(dc).MostOscillatingArrivals()
		_, cw := Run(cc).MostOscillatingArrivals()
		dsOsc += dw.OscillationIndex() / 3
		c3Osc += cw.OscillationIndex() / 3
	}
	if dsOsc <= c3Osc {
		t.Fatalf("DS oscillation (%.2f) should exceed C3 (%.2f)", dsOsc, c3Osc)
	}
}

func TestSSDFasterThanSpinning(t *testing.T) {
	simTest(t)
	sp := small(StratC3, 3)
	ssd := small(StratC3, 3)
	ssd.Disk = SSD
	rsp, rssd := Run(sp), Run(ssd)
	if rssd.Reads.P99 >= rsp.Reads.P99 {
		t.Fatalf("SSD p99 (%.1f) should beat spinning (%.1f)", rssd.Reads.P99, rsp.Reads.P99)
	}
	if rssd.Throughput <= rsp.Throughput {
		t.Fatalf("SSD throughput (%.0f) should beat spinning (%.0f)",
			rssd.Throughput, rsp.Throughput)
	}
}

func TestReadOnlySlowerThanReadHeavy(t *testing.T) {
	simTest(t)
	// §5: "the read-heavy workload results in lower latencies than the
	// read-only workload (since the latter causes more random seeks)".
	// The margin is small at this scale, so average over seeds like the
	// oscillation test does rather than betting on one RNG stream.
	var rhMean, roMean float64
	for seed := uint64(0); seed < 3; seed++ {
		rh := small(StratC3, seed)
		rh.Mix = workload.ReadHeavy
		ro := small(StratC3, seed)
		ro.Mix = workload.ReadOnly
		rhMean += Run(rh).Reads.Mean / 3
		roMean += Run(ro).Reads.Mean / 3
	}
	if roMean <= rhMean {
		t.Fatalf("read-only mean (%.2f) should exceed read-heavy (%.2f)",
			roMean, rhMean)
	}
}

func TestMoreGeneratorsDegradeLatency(t *testing.T) {
	simTest(t)
	// Fig. 10: 120 → 210 generators.
	lo := small(StratC3, 5)
	hi := small(StratC3, 5)
	hi.Generators = 210
	rlo, rhi := Run(lo), Run(hi)
	if rhi.Reads.P99 <= rlo.Reads.P99 {
		t.Fatalf("210-generator p99 (%.1f) should exceed 120-generator (%.1f)",
			rhi.Reads.P99, rlo.Reads.P99)
	}
	// The cluster is already near capacity at 120 closed-loop generators;
	// more generators deepen queues but must not crater throughput.
	if rhi.Throughput < rlo.Throughput*0.85 {
		t.Fatalf("throughput cratered under load: %.0f vs %.0f",
			rhi.Throughput, rlo.Throughput)
	}
}

func TestPhasesAndTimeline(t *testing.T) {
	simTest(t)
	// Fig. 11 machinery: an update-heavy wave joins mid-run; the read
	// timeline must contain points before and after the join.
	cfg := DefaultConfig()
	cfg.Strategy = StratC3
	cfg.Seed = 6
	cfg.Ops = 0
	cfg.Duration = 4 * time.Second
	cfg.RecordTimeline = true
	cfg.Phases = []Phase{
		{Start: 0, Generators: 80, Mix: workload.ReadHeavy},
		{Start: 2 * time.Second, Generators: 40, Mix: workload.UpdateHeavy},
	}
	res := Run(cfg)
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline points recorded")
	}
	var before, after int
	for _, p := range res.Timeline {
		if p.T < 2*time.Second {
			before++
		} else {
			after++
		}
	}
	if before == 0 || after == 0 {
		t.Fatalf("timeline lopsided: %d before, %d after join", before, after)
	}
	if res.Writes.Count == 0 {
		t.Fatal("phase-2 update generators produced no writes")
	}
}

func TestDurationBoundedRunStops(t *testing.T) {
	simTest(t)
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.Ops = 0
	cfg.Duration = time.Second
	res := Run(cfg)
	if res.SimDuration > 1200*time.Millisecond {
		t.Fatalf("run overshot its duration: %v", res.SimDuration)
	}
	if res.Reads.Count == 0 {
		t.Fatal("no reads completed in a duration-bounded run")
	}
}

func TestSlowdownAndRateTrace(t *testing.T) {
	simTest(t)
	// Fig. 13 machinery: a 7-node cluster, one node slowed mid-run; the
	// coordinators' send rates toward it must dip during the window.
	cfg := DefaultConfig()
	cfg.Strategy = StratC3
	cfg.Nodes = 7
	cfg.Generators = 60
	cfg.Seed = 8
	cfg.Ops = 0
	cfg.Duration = 6 * time.Second
	cfg.TraceRates = true
	cfg.TraceTarget = 3
	// The paper's Fig. 13 rate collapse comes from Algorithm 2's literal
	// allowance-vs-rrate decrease rule; run the trace with it.
	cfg.Rate = ratelimit.Config{LiteralDecrease: true}
	cfg.Slowdowns = []Slowdown{{Node: 3, From: 2 * time.Second, To: 4 * time.Second, Factor: 8}}
	res := Run(cfg)
	if len(res.RateTrace) == 0 {
		t.Fatal("no rate trace recorded")
	}
	// Average srate toward the target before vs during the slowdown.
	var pre, mid, preN, midN float64
	for _, p := range res.RateTrace {
		switch {
		case p.T < 2*time.Second:
			pre += p.SRate
			preN++
		case p.T >= 2500*time.Millisecond && p.T < 4*time.Second:
			mid += p.SRate
			midN++
		}
	}
	if preN == 0 || midN == 0 {
		t.Fatal("trace windows empty")
	}
	if mid/midN >= pre/preN {
		t.Fatalf("srate toward slowed node did not drop: pre=%.2f mid=%.2f",
			pre/preN, mid/midN)
	}
}

func TestSpeculativeRetriesFire(t *testing.T) {
	simTest(t)
	cfg := small(StratDSSpec, 9)
	cfg.Ops = 40_000
	res := Run(cfg)
	if res.SpeculativeRetries == 0 {
		t.Fatal("DS-SPEC recorded no speculative retries")
	}
	total := res.Reads.Count + res.Writes.Count
	if total != cfg.Ops {
		t.Fatalf("spec-retry run lost ops: %d/%d", total, cfg.Ops)
	}
}

func TestSkewedRecordSizes(t *testing.T) {
	simTest(t)
	cfg := small(StratC3, 10)
	cfg.Sizer = workload.NewZipfianFields(10, 2048)
	res := Run(cfg)
	if res.Reads.Count == 0 {
		t.Fatal("skewed-record run produced no reads")
	}
}

func TestPerNodeAccounting(t *testing.T) {
	simTest(t)
	cfg := small(StratC3, 11)
	cfg.ReadRepair = 0
	res := Run(cfg)
	served := 0
	for _, w := range res.PerNodeReads {
		served += w.Total()
	}
	arrived := 0
	for _, w := range res.PerNodeArrivals {
		arrived += w.Total()
	}
	// Without read repair or retries, arrivals == served == reads done
	// (plus at most a handful still in flight at shutdown).
	if served < res.Reads.Count {
		t.Fatalf("served %d < completed reads %d", served, res.Reads.Count)
	}
	if arrived < served {
		t.Fatalf("arrivals %d < served %d", arrived, served)
	}
	if arrived-res.Reads.Count > res.Reads.Count/10 {
		t.Fatalf("arrivals %d wildly exceed reads %d without repair", arrived, res.Reads.Count)
	}
}

func TestReadRepairIncreasesReplicaLoad(t *testing.T) {
	simTest(t)
	base := small(StratC3, 12)
	base.ReadRepair = 0
	rep := small(StratC3, 12)
	rep.ReadRepair = 0.5
	rb, rr := Run(base), Run(rep)
	arrB, arrR := 0, 0
	for _, w := range rb.PerNodeArrivals {
		arrB += w.Total()
	}
	for _, w := range rr.PerNodeArrivals {
		arrR += w.Total()
	}
	// 50% repair over RF=3 ⇒ ≈2× read arrivals per completed read.
	ratioB := float64(arrB) / float64(rb.Reads.Count)
	ratioR := float64(arrR) / float64(rr.Reads.Count)
	if ratioR < ratioB*1.5 {
		t.Fatalf("repair did not amplify arrivals: %.2f vs %.2f", ratioR, ratioB)
	}
}

func TestUnknownStrategyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown strategy did not panic")
		}
	}()
	Run(Config{Strategy: "NOPE", Ops: 10})
}

func TestMostLoadedNodeIndexValid(t *testing.T) {
	simTest(t)
	res := Run(small(StratDS, 13))
	i, w := res.MostLoadedNode()
	if i < 0 || i >= len(res.PerNodeReads) || w == nil {
		t.Fatalf("bad most-loaded node %d", i)
	}
	j, a := res.MostOscillatingArrivals()
	if j < 0 || j >= len(res.PerNodeArrivals) || a == nil {
		t.Fatalf("bad most-oscillating node %d", j)
	}
}

func BenchmarkRunC3_10kOps(b *testing.B) {
	cfg := small(StratC3, 1)
	cfg.Ops = 10_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		Run(cfg)
	}
}

func TestTokenAwareCompletes(t *testing.T) {
	simTest(t)
	cfg := small(StratC3, 20)
	cfg.TokenAware = true
	res := Run(cfg)
	if res.Reads.Count+res.Writes.Count != cfg.Ops {
		t.Fatalf("token-aware run incomplete: %d/%d", res.Reads.Count+res.Writes.Count, cfg.Ops)
	}
	// Token-aware coordination skips a hop when the coordinator selects
	// itself but concentrates coordination on hot replicas; net effect is
	// modest. Assert it is not worse beyond noise.
	plain := Run(small(StratC3, 20))
	if res.Reads.P50 > plain.Reads.P50*1.1 {
		t.Fatalf("token-aware p50 (%.2f) clearly worse than random coordinator (%.2f)",
			res.Reads.P50, plain.Reads.P50)
	}
}

func TestQuorumReadsSlowerThanOne(t *testing.T) {
	simTest(t)
	one := small(StratC3, 21)
	two := small(StratC3, 21)
	two.ReadConsistency = 2
	r1, r2 := Run(one), Run(two)
	if r2.Reads.P50 <= r1.Reads.P50 {
		t.Fatalf("CL=2 median (%.2f) should exceed CL=1 (%.2f): max of two replicas",
			r2.Reads.P50, r1.Reads.P50)
	}
	if r2.Reads.Count+r2.Writes.Count != two.Ops {
		t.Fatal("quorum run incomplete")
	}
}

func TestReadConsistencyClampedToRF(t *testing.T) {
	simTest(t)
	cfg := small(StratC3, 22)
	cfg.ReadConsistency = 99 // must clamp to RF=3
	res := Run(cfg)
	if res.Reads.Count == 0 {
		t.Fatal("clamped consistency run produced no reads")
	}
}

func TestC3SpecFiresRetries(t *testing.T) {
	simTest(t)
	cfg := small(StratC3Spec, 23)
	cfg.Ops = 40_000
	res := Run(cfg)
	if res.SpeculativeRetries == 0 {
		t.Fatal("C3-SPEC recorded no speculative retries")
	}
	if res.Reads.Count+res.Writes.Count != cfg.Ops {
		t.Fatal("C3-SPEC run lost ops")
	}
}
