// Package wire is the binary protocol of the TCP key-value store: length-
// prefixed frames carrying read/write requests and responses. Every response
// piggybacks the C3 feedback fields — the server's pending-read count and its
// smoothed service time — exactly as §4 describes for the Cassandra
// implementation ("this information is piggybacked to the coordinator and
// serves as the feedback for the replica ranking").
//
// Frame layout (little endian):
//
//	uint32  payload length (excluding these 4 bytes)
//	uint8   message type
//	uint64  request id
//	...     type-specific payload
//
// Read responses carry the value bytes *before* the feedback fields so a
// server can stream the value straight out of its storage engine and only
// then sample its queue-size/service-time feedback — the feedback describes
// the state after the read completed, as in §3.1.
//
// # Hot-path contract
//
// The package is built for an allocation-free steady state:
//
//   - Encoding is exposed as pure append functions (AppendReadReq, …) that
//     extend a caller-owned buffer, so connection writers can pool frame
//     buffers and coalesce many frames per flush.
//   - Writer no longer flushes per frame: frames accumulate in its buffer
//     until an explicit Flush, amortizing write syscalls under load.
//   - Decoding is zero-copy: parsed Value slices alias the input payload and
//     parsed Key strings alias it via unsafe.String. Both are valid only
//     until the frame buffer is reused (for Reader payloads: until the next
//     call to Next). Callers that retain or escape them must copy
//     (strings.Clone / append) first.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"unsafe"
)

// Message types.
const (
	// MsgRead is a client→coordinator read.
	MsgRead uint8 = iota + 1
	// MsgReadInternal is a coordinator→replica read (served locally by
	// the replica rather than re-coordinated).
	MsgReadInternal
	MsgReadResp
	// MsgWrite is a client→coordinator write.
	MsgWrite
	// MsgWriteInternal is a coordinator→replica write.
	MsgWriteInternal
	MsgWriteResp
	// MsgBatchRead is a client→coordinator multi-key read: one frame carries
	// every key of a MultiGet, amortizing framing, rate-limiter decisions,
	// and flushes over the whole batch.
	MsgBatchRead
	// MsgBatchReadInternal is a coordinator→replica sub-batch: the subset of
	// a batch's keys owned by one replica, coalesced into a single frame and
	// served as one unit against the storage engine.
	MsgBatchReadInternal
	MsgBatchReadResp
	// MsgBatchWrite is a client→coordinator multi-key write.
	MsgBatchWrite
	// MsgBatchWriteInternal is a coordinator→replica write sub-batch.
	MsgBatchWriteInternal
	MsgBatchWriteResp
	// MsgRingUpdate announces a versioned topology (see membership.go). It is
	// both a push request (seed/joiner/leaver → member, answered by
	// MsgRingAck) and the response to MsgJoinReq.
	MsgRingUpdate
	// MsgRingAck acknowledges a pushed MsgRingUpdate with the receiver's
	// resulting epoch.
	MsgRingAck
	// MsgJoinReq asks a member to admit the sender into the cluster.
	MsgJoinReq
	// MsgStreamReq asks a replica for one page of the keys it owns inside a
	// token range — the pull half of membership key-range streaming.
	MsgStreamReq
	// MsgStreamChunk answers a MsgStreamReq with one page of key/value pairs
	// (or a wrong-epoch rejection).
	MsgStreamChunk
	// MsgStreamPush carries one page of a decommissioning node's key ranges
	// to a gainer. Same payload layout as MsgBatchWriteInternal (encode with
	// AppendBatchWriteReq, decode with ParseBatchWriteReq, acked by
	// MsgBatchWriteResp), but the values are raw version-prefixed storage
	// bytes and the receiver applies each pair under the last-write-wins
	// guard — a streamed pre-move value must never clobber a newer
	// dual-routed write.
	MsgStreamPush
)

// MaxFrame bounds a frame payload; anything larger is a protocol error.
const MaxFrame = 16 << 20

// Limits within a frame. MaxKeyLen must fit the uint16 length prefix — a
// 1<<16 key would silently wrap the prefix to 0 and corrupt the frame.
const (
	MaxKeyLen   = 1<<16 - 1
	MaxValueLen = 8 << 20
	// MaxBatchKeys bounds the key count of one batch frame. It must fit the
	// uint16 count prefix; the tighter bound keeps a single batch from
	// monopolizing a replica's serving loop and bounds decoder scratch.
	MaxBatchKeys = 4096
)

// VersionPrefix is the length of the version prefix carried inside the value
// bytes of read responses and streamed pages: the coordinator stamps every
// write with a 64-bit HLC-style version, the storage engine keeps it as an
// 8-byte little-endian prefix of the stored value, and read responses ship
// the raw prefixed bytes so a server can stream storage output into the
// frame unchanged. Decoders split the prefix into the Version field.
const VersionPrefix = 8

// maxWireValue bounds a value field on the wire: the client-facing payload
// cap plus the version prefix read responses carry.
const maxWireValue = MaxValueLen + VersionPrefix

// Per-operation consistency levels, carried as one byte on client-facing
// requests. The zero value is ONE, so old encoders remain valid frames.
const (
	// LevelOne acks a read or write after the first replica response — the
	// latency-optimal default, C3's native regime.
	LevelOne uint8 = iota
	// LevelQuorum acks after ⌊N/2⌋+1 replicas; R+W>N read-your-writes.
	LevelQuorum
	// LevelAll acks only when every replica responded.
	LevelAll
)

// Response status codes: one byte on read/write responses so clients can
// map failures to a typed error taxonomy. Zero is OK, so old encoders
// remain valid frames.
const (
	// StatusOK reports success at the requested level.
	StatusOK uint8 = iota
	// StatusWriteFailed reports that no replica applied a write.
	StatusWriteFailed
	// StatusQuorumUnavailable reports fewer live replicas than the level
	// requires (or a full hint log refusing to accept more debt).
	StatusQuorumUnavailable
	// StatusTimeout reports that the operation budget expired before the
	// level was satisfied.
	StatusTimeout
)

// MaxRetainedBuffer caps the frame buffer a Reader keeps across frames. A
// single MaxFrame-sized frame would otherwise pin megabytes for the
// connection's lifetime; after serving an oversized frame the Reader shrinks
// back to this cap.
const MaxRetainedBuffer = 64 << 10

// ErrFrameTooLarge reports an oversized frame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")

// Feedback is the per-response server feedback (§3.1's q_s and 1/µ_s).
type Feedback struct {
	QueueSize float64
	ServiceNs int64
}

// ReadReq asks for a key. Internal requests are replica-local reads. CL is
// the requested consistency level (client frames only; internal reads are
// always replica-local and ignore it).
type ReadReq struct {
	ID  uint64
	CL  uint8
	Key string
}

// ReadResp answers a read. Version is the stored value's coordinator stamp
// (0 when absent); Status classifies coordinator-level failures.
type ReadResp struct {
	ID      uint64
	Found   bool
	Status  uint8
	Version uint64
	Value   []byte
	FB      Feedback
}

// WriteReq stores a value — or, with Del set, removes one: a delete travels
// the write path end to end (same fan-out, same hints, same version stamp)
// and the replica applies it as a version-guarded tombstone. Client frames
// carry CL and leave Version zero; coordinator→replica frames carry the
// stamped Version (CL unused). On the wire Del rides in a mandatory flags
// byte between Version and Key.
type WriteReq struct {
	ID      uint64
	CL      uint8
	Version uint64
	Del     bool
	Key     string
	Value   []byte
}

// writeFlagDel is the Del bit inside WriteReq's flags byte.
const writeFlagDel = 1 << 0

// WriteResp acknowledges a write. OK distinguishes a genuine ack from a
// failure report: a replica sets it after applying the write locally, and a
// coordinator sets it only when the requested level was met — an
// under-quorum write comes back with OK false and a Status classifying why,
// and must surface as an error, never as an ack.
type WriteResp struct {
	ID     uint64
	OK     bool
	Status uint8
	FB     Feedback
}

// BatchReadReq asks for many keys in one frame (MsgBatchRead /
// MsgBatchReadInternal). CL as in ReadReq.
type BatchReadReq struct {
	ID   uint64
	CL   uint8
	Keys []string
}

// BatchItem is one key's result within a batch read response.
type BatchItem struct {
	Found   bool
	Version uint64
	Value   []byte
}

// BatchReadResp answers a batch read: per-key results in request order, plus
// one feedback sample describing the server after the whole sub-batch was
// served. The feedback's weight is the batch size — the client folds it into
// its estimators once per key, so a 32-key sub-batch trains q̂ as 32 reads.
type BatchReadResp struct {
	ID    uint64
	Items []BatchItem
	FB    Feedback
}

// BatchWriteReq stores many key/value pairs in one frame (MsgBatchWrite /
// MsgBatchWriteInternal). One Version stamps the whole batch — versions
// compare per key, so a shared stamp is sound. CL and Version as in
// WriteReq.
type BatchWriteReq struct {
	ID      uint64
	CL      uint8
	Version uint64
	Keys    []string
	Values  [][]byte
}

// BatchWriteResp acknowledges a batch write with per-key OK flags in request
// order (see WriteResp for the OK contract), one batch-level Status, and one
// feedback sample.
type BatchWriteResp struct {
	ID     uint64
	Status uint8
	OK     []bool
	FB     Feedback
}

// --- encoding -------------------------------------------------------------

// beginFrame appends the 5-byte frame header with a length placeholder,
// returning the extended buffer and the header's offset for endFrame.
func beginFrame(dst []byte, typ uint8) ([]byte, int) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, typ)
	return dst, start
}

// endFrame patches the length prefix of the frame begun at start.
func endFrame(dst []byte, start int) ([]byte, error) {
	n := len(dst) - start - 4 // payload length, including the type byte
	if n-1 > MaxFrame {
		return dst[:start], ErrFrameTooLarge
	}
	binary.LittleEndian.PutUint32(dst[start:start+4], uint32(n))
	return dst, nil
}

func appendU64(dst []byte, v uint64) []byte  { return binary.LittleEndian.AppendUint64(dst, v) }
func appendI64(dst []byte, v int64) []byte   { return appendU64(dst, uint64(v)) }
func appendF64(dst []byte, v float64) []byte { return appendU64(dst, math.Float64bits(v)) }

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendStr(dst []byte, s string) ([]byte, error) {
	if len(s) > MaxKeyLen {
		return dst, fmt.Errorf("wire: key length %d exceeds limit", len(s))
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...), nil
}

func appendBytes(dst []byte, b []byte) ([]byte, error) {
	if len(b) > maxWireValue {
		return dst, fmt.Errorf("wire: value length %d exceeds limit", len(b))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...), nil
}

func appendFeedback(dst []byte, fb Feedback) []byte {
	dst = appendF64(dst, fb.QueueSize)
	return appendI64(dst, fb.ServiceNs)
}

// AppendReadReq appends a complete framed read request of the given type
// (MsgRead or MsgReadInternal) to dst. On error dst is returned unchanged.
func AppendReadReq(dst []byte, typ uint8, m ReadReq) ([]byte, error) {
	dst, start := beginFrame(dst, typ)
	dst = append(appendU64(dst, m.ID), m.CL)
	dst, err := appendStr(dst, m.Key)
	if err != nil {
		return dst[:start], err
	}
	return endFrame(dst, start)
}

// AppendReadResp appends a complete framed read response to dst. A found
// response's value field carries the version prefix followed by the payload
// (see VersionPrefix); an absent one carries no value bytes.
func AppendReadResp(dst []byte, m ReadResp) ([]byte, error) {
	dst, start := beginFrame(dst, MsgReadResp)
	dst = append(appendBool(appendU64(dst, m.ID), m.Found), m.Status)
	if m.Found {
		if len(m.Value) > MaxValueLen {
			return dst[:start], fmt.Errorf("wire: value length %d exceeds limit", len(m.Value))
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(VersionPrefix+len(m.Value)))
		dst = appendU64(dst, m.Version)
		dst = append(dst, m.Value...)
	} else {
		dst = binary.LittleEndian.AppendUint32(dst, 0)
	}
	return endFrame(appendFeedback(dst, m.FB), start)
}

// ReadRespMark tracks an in-progress streamed read response between
// BeginReadResp and FinishReadResp.
type ReadRespMark struct{ start, foundAt, lenAt int }

// BeginReadResp starts a read-response frame whose value bytes the caller
// appends directly — the zero-copy server path: the storage engine writes
// the raw version-prefixed value straight into the outgoing frame buffer
// (lsm stores the 8-byte version prefix inline, so GetAppend output IS the
// wire value field). Append only, then call FinishReadResp with the same
// mark.
func BeginReadResp(dst []byte, id uint64) ([]byte, ReadRespMark) {
	dst, start := beginFrame(dst, MsgReadResp)
	dst = appendU64(dst, id)
	m := ReadRespMark{start: start, foundAt: len(dst)}
	dst = append(dst, 0, 0) // found, status placeholders
	m.lenAt = len(dst)
	dst = append(dst, 0, 0, 0, 0)
	return dst, m
}

// FinishReadResp completes a frame begun with BeginReadResp: it patches the
// found flag, status, and value length, then appends the feedback — sampled
// after the value was produced, so it reflects the post-read server state.
// On error dst is returned with the partial frame removed.
func FinishReadResp(dst []byte, m ReadRespMark, found bool, status uint8, fb Feedback) ([]byte, error) {
	vlen := len(dst) - m.lenAt - 4
	if vlen < 0 {
		return dst[:m.start], errors.New("wire: value bytes truncated the buffer")
	}
	if vlen > maxWireValue {
		return dst[:m.start], fmt.Errorf("wire: value length %d exceeds limit", vlen)
	}
	if found {
		dst[m.foundAt] = 1
	}
	dst[m.foundAt+1] = status
	binary.LittleEndian.PutUint32(dst[m.lenAt:m.lenAt+4], uint32(vlen))
	return endFrame(appendFeedback(dst, fb), m.start)
}

// AppendWriteReq appends a complete framed write request of the given type
// (MsgWrite or MsgWriteInternal) to dst.
func AppendWriteReq(dst []byte, typ uint8, m WriteReq) ([]byte, error) {
	dst, start := beginFrame(dst, typ)
	dst = appendU64(append(appendU64(dst, m.ID), m.CL), m.Version)
	var flags uint8
	if m.Del {
		flags |= writeFlagDel
	}
	dst = append(dst, flags)
	dst, err := appendStr(dst, m.Key)
	if err != nil {
		return dst[:start], err
	}
	if dst, err = appendBytes(dst, m.Value); err != nil {
		return dst[:start], err
	}
	return endFrame(dst, start)
}

// AppendWriteResp appends a complete framed write acknowledgement to dst.
func AppendWriteResp(dst []byte, m WriteResp) ([]byte, error) {
	dst, start := beginFrame(dst, MsgWriteResp)
	dst = append(appendBool(appendU64(dst, m.ID), m.OK), m.Status)
	return endFrame(appendFeedback(dst, m.FB), start)
}

// --- batch encoding -------------------------------------------------------
//
// Batch frames share the point-frame building blocks: u16-prefixed keys,
// u32-prefixed values, feedback last. The payload leads with a u16 key count;
// per-key records follow in request order. Read responses keep the
// value-before-feedback layout, so a replica streams every value straight out
// of the storage engine and samples its queue feedback only after the whole
// sub-batch was served.

// appendBatchCount validates and appends the u16 batch key count.
func appendBatchCount(dst []byte, n int) ([]byte, error) {
	if n < 1 || n > MaxBatchKeys {
		return dst, fmt.Errorf("wire: batch of %d keys outside [1, %d]", n, MaxBatchKeys)
	}
	return binary.LittleEndian.AppendUint16(dst, uint16(n)), nil
}

// AppendBatchReadReq appends a complete framed batch read request of the
// given type (MsgBatchRead or MsgBatchReadInternal) to dst.
func AppendBatchReadReq(dst []byte, typ uint8, m BatchReadReq) ([]byte, error) {
	dst, start := beginFrame(dst, typ)
	dst, err := appendBatchCount(append(appendU64(dst, m.ID), m.CL), len(m.Keys))
	if err != nil {
		return dst[:start], err
	}
	for _, k := range m.Keys {
		if dst, err = appendStr(dst, k); err != nil {
			return dst[:start], err
		}
	}
	return endFrame(dst, start)
}

// AppendBatchWriteReq appends a complete framed batch write request of the
// given type (MsgBatchWrite or MsgBatchWriteInternal) to dst. Keys and Values
// must be the same length.
func AppendBatchWriteReq(dst []byte, typ uint8, m BatchWriteReq) ([]byte, error) {
	if len(m.Keys) != len(m.Values) {
		return dst, fmt.Errorf("wire: batch write %d keys vs %d values", len(m.Keys), len(m.Values))
	}
	dst, start := beginFrame(dst, typ)
	dst = appendU64(append(appendU64(dst, m.ID), m.CL), m.Version)
	dst, err := appendBatchCount(dst, len(m.Keys))
	if err != nil {
		return dst[:start], err
	}
	for i, k := range m.Keys {
		if dst, err = appendStr(dst, k); err != nil {
			return dst[:start], err
		}
		if dst, err = appendBytes(dst, m.Values[i]); err != nil {
			return dst[:start], err
		}
	}
	return endFrame(dst, start)
}

// AppendBatchWriteResp appends a complete framed batch write acknowledgement
// to dst.
func AppendBatchWriteResp(dst []byte, m BatchWriteResp) ([]byte, error) {
	dst, start := beginFrame(dst, MsgBatchWriteResp)
	dst, err := appendBatchCount(append(appendU64(dst, m.ID), m.Status), len(m.OK))
	if err != nil {
		return dst[:start], err
	}
	for _, ok := range m.OK {
		dst = appendBool(dst, ok)
	}
	return endFrame(appendFeedback(dst, m.FB), start)
}

// BatchReadRespMark tracks an in-progress streamed batch read response
// between BeginBatchReadResp and FinishBatchReadResp.
type BatchReadRespMark struct {
	start   int
	countAt int
	count   int
	foundAt int // current item's found-flag offset; -1 outside an item
	lenAt   int // current item's value-length offset
}

// BeginBatchReadResp starts a batch read-response frame. For each key, in
// request order, call BeginBatchReadItem, append the value bytes directly
// (the zero-copy server path — e.g. lsm.Store.GetAppend), then
// FinishBatchReadItem; close the frame with FinishBatchReadResp.
func BeginBatchReadResp(dst []byte, id uint64) ([]byte, BatchReadRespMark) {
	dst, start := beginFrame(dst, MsgBatchReadResp)
	dst = appendU64(dst, id)
	m := BatchReadRespMark{start: start, countAt: len(dst), foundAt: -1}
	dst = append(dst, 0, 0) // count placeholder
	return dst, m
}

// BeginBatchReadItem opens the next per-key record: the caller appends the
// key's value bytes (if any) directly to the returned buffer.
func BeginBatchReadItem(dst []byte, m *BatchReadRespMark) []byte {
	m.foundAt = len(dst)
	dst = append(dst, 0)
	m.lenAt = len(dst)
	return append(dst, 0, 0, 0, 0)
}

// FinishBatchReadItem closes the record opened by the matching
// BeginBatchReadItem, patching its found flag and value length.
func FinishBatchReadItem(dst []byte, m *BatchReadRespMark, found bool) ([]byte, error) {
	if m.foundAt < 0 {
		return dst, errors.New("wire: FinishBatchReadItem without BeginBatchReadItem")
	}
	vlen := len(dst) - m.lenAt - 4
	if vlen < 0 {
		return dst[:m.start], errors.New("wire: value bytes truncated the buffer")
	}
	if vlen > maxWireValue {
		return dst[:m.start], fmt.Errorf("wire: value length %d exceeds limit", vlen)
	}
	if found {
		dst[m.foundAt] = 1
	}
	binary.LittleEndian.PutUint32(dst[m.lenAt:m.lenAt+4], uint32(vlen))
	m.foundAt = -1
	m.count++
	return dst, nil
}

// FinishBatchReadResp completes the frame: it patches the item count and
// appends the feedback — sampled after every item was produced, so it
// reflects the post-batch server state.
func FinishBatchReadResp(dst []byte, m BatchReadRespMark, fb Feedback) ([]byte, error) {
	if m.foundAt >= 0 {
		return dst[:m.start], errors.New("wire: batch item left open")
	}
	if m.count < 1 || m.count > MaxBatchKeys {
		return dst[:m.start], fmt.Errorf("wire: batch of %d items outside [1, %d]", m.count, MaxBatchKeys)
	}
	binary.LittleEndian.PutUint16(dst[m.countAt:m.countAt+2], uint16(m.count))
	return endFrame(appendFeedback(dst, fb), m.start)
}

// AppendBatchReadResp appends a complete framed batch read response to dst —
// the non-streaming construction (tests, fuzzing); servers use the
// Begin/Finish streaming API instead.
func AppendBatchReadResp(dst []byte, m BatchReadResp) ([]byte, error) {
	dst, mark := BeginBatchReadResp(dst, m.ID)
	var err error
	for _, it := range m.Items {
		dst = BeginBatchReadItem(dst, &mark)
		if it.Found {
			dst = appendU64(dst, it.Version) // found values carry the prefix
			dst = append(dst, it.Value...)
		}
		if dst, err = FinishBatchReadItem(dst, &mark, it.Found); err != nil {
			return dst, err
		}
	}
	return FinishBatchReadResp(dst, mark, m.FB)
}

// Writer frames outgoing messages into a buffer. Frames accumulate until an
// explicit Flush — a per-connection writer goroutine coalesces many frames
// per flush to amortize write syscalls. Not safe for concurrent use; callers
// serialize.
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Flush pushes every buffered frame to the underlying writer in one write.
func (w *Writer) Flush() error { return w.w.Flush() }

// Buffered reports how many framed bytes await a Flush.
func (w *Writer) Buffered() int { return w.w.Buffered() }

// WriteRaw buffers one already-encoded frame (built by the Append*
// functions). The frame bytes are copied; the caller may recycle them.
func (w *Writer) WriteRaw(frame []byte) error {
	_, err := w.w.Write(frame)
	return err
}

// buffer stashes an encoded frame, retaining the (possibly grown) scratch
// buffer for the next message — unless it grew past MaxRetainedBuffer, so
// one oversized message does not pin its memory for the Writer's lifetime.
func (w *Writer) buffer(b []byte, err error) error {
	if err != nil {
		return err
	}
	if cap(b) <= MaxRetainedBuffer {
		w.buf = b[:0]
	} else {
		w.buf = nil
	}
	_, err = w.w.Write(b)
	return err
}

// WriteRead buffers a read request frame of the given type (MsgRead or
// MsgReadInternal).
func (w *Writer) WriteRead(typ uint8, m ReadReq) error {
	return w.buffer(AppendReadReq(w.buf[:0], typ, m))
}

// WriteReadResp buffers a read response.
func (w *Writer) WriteReadResp(m ReadResp) error {
	return w.buffer(AppendReadResp(w.buf[:0], m))
}

// WriteWrite buffers a write request frame of the given type (MsgWrite or
// MsgWriteInternal).
func (w *Writer) WriteWrite(typ uint8, m WriteReq) error {
	return w.buffer(AppendWriteReq(w.buf[:0], typ, m))
}

// WriteWriteResp buffers a write acknowledgement.
func (w *Writer) WriteWriteResp(m WriteResp) error {
	return w.buffer(AppendWriteResp(w.buf[:0], m))
}

// Reader parses incoming frames. Not safe for concurrent use.
type Reader struct {
	r   *bufio.Reader
	buf []byte
	hdr [5]byte // header scratch; a field so it does not escape per call
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Reset redirects the Reader to a new source, retaining its buffers — this
// is what makes a steady-state decode loop allocation-free (see the
// AllocsPerRun round-trip test) and supports future connection reuse.
func (r *Reader) Reset(src io.Reader) { r.r.Reset(src) }

// Next reads one frame, returning its type and payload. The payload aliases
// the Reader's internal buffer and is valid only until the next call to
// Next; anything parsed out of it that must outlive the frame (Key strings,
// Value slices — see the package contract) has to be copied. Frames larger
// than MaxRetainedBuffer are served from a temporary buffer that is shrunk
// back afterwards, so one oversized frame does not pin its memory for the
// connection's lifetime.
func (r *Reader) Next() (uint8, []byte, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(r.hdr[:4])
	if n < 1 || n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	typ := r.hdr[4]
	body := int(n) - 1
	switch {
	case cap(r.buf) < body:
		r.buf = make([]byte, body)
	case body <= MaxRetainedBuffer && cap(r.buf) > MaxRetainedBuffer:
		// A past oversized frame grew the buffer; shrink back to the cap.
		r.buf = make([]byte, body, MaxRetainedBuffer)
	default:
		r.buf = r.buf[:body]
	}
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return 0, nil, err
	}
	return typ, r.buf, nil
}

// decoder walks a payload with bounds checks.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) need(n int) bool {
	if d.err != nil || len(d.b) < n {
		d.err = errors.New("wire: truncated frame")
		return false
	}
	return true
}
func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}
func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *decoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// str returns a string aliasing the payload (zero-copy). The string is valid
// only as long as the payload's backing buffer; retainers must
// strings.Clone.
func (d *decoder) str() string {
	if !d.need(2) {
		return ""
	}
	n := int(binary.LittleEndian.Uint16(d.b))
	d.b = d.b[2:]
	if n == 0 {
		return ""
	}
	if !d.need(n) {
		return ""
	}
	s := unsafe.String(&d.b[0], n)
	d.b = d.b[n:]
	return s
}

// bytes returns a slice aliasing the payload (zero-copy, capacity clamped so
// appends cannot scribble on the rest of the frame). Valid only as long as
// the payload's backing buffer; retainers must copy.
func (d *decoder) bytes() []byte {
	if !d.need(4) {
		return nil
	}
	n := int(binary.LittleEndian.Uint32(d.b))
	d.b = d.b[4:]
	if n > maxWireValue || !d.need(n) {
		d.err = errors.New("wire: bad value length")
		return nil
	}
	out := d.b[:n:n]
	d.b = d.b[n:]
	return out
}

// versionedBytes decodes a value field that carries the version prefix
// (read responses, batch items), splitting it off. Short fields (absent
// values, legacy encoders) read as version 0.
func (d *decoder) versionedBytes() (uint64, []byte) {
	raw := d.bytes()
	if len(raw) < VersionPrefix {
		return 0, raw
	}
	return binary.LittleEndian.Uint64(raw), raw[VersionPrefix:]
}

// ParseReadReq decodes a MsgRead/MsgReadInternal payload. The returned Key
// aliases b (see the package contract).
func ParseReadReq(b []byte) (ReadReq, error) {
	d := decoder{b: b}
	m := ReadReq{ID: d.u64(), CL: d.u8(), Key: d.str()}
	return m, d.err
}

// ParseReadResp decodes a MsgReadResp payload. The returned Value aliases b
// (see the package contract).
func ParseReadResp(b []byte) (ReadResp, error) {
	d := decoder{b: b}
	m := ReadResp{ID: d.u64()}
	m.Found = d.u8() == 1
	m.Status = d.u8()
	m.Version, m.Value = d.versionedBytes()
	m.FB.QueueSize = d.f64()
	m.FB.ServiceNs = d.i64()
	return m, d.err
}

// ParseWriteReq decodes a MsgWrite/MsgWriteInternal payload. The returned
// Key and Value alias b (see the package contract).
func ParseWriteReq(b []byte) (WriteReq, error) {
	d := decoder{b: b}
	m := WriteReq{ID: d.u64(), CL: d.u8(), Version: d.u64()}
	flags := d.u8()
	if flags&^writeFlagDel != 0 {
		d.err = errors.New("wire: unknown write flags")
	}
	m.Del = flags&writeFlagDel != 0
	m.Key = d.str()
	m.Value = d.bytes()
	return m, d.err
}

// ParseWriteResp decodes a MsgWriteResp payload.
func ParseWriteResp(b []byte) (WriteResp, error) {
	d := decoder{b: b}
	m := WriteResp{ID: d.u64()}
	m.OK = d.u8() == 1
	m.Status = d.u8()
	m.FB.QueueSize = d.f64()
	m.FB.ServiceNs = d.i64()
	return m, d.err
}

// batchCount decodes and validates the u16 batch key count.
func (d *decoder) batchCount() int {
	if !d.need(2) {
		return 0
	}
	n := int(binary.LittleEndian.Uint16(d.b))
	d.b = d.b[2:]
	if n < 1 || n > MaxBatchKeys {
		d.err = errors.New("wire: bad batch count")
		return 0
	}
	return n
}

// ParseBatchReadReq decodes a MsgBatchRead/MsgBatchReadInternal payload into
// keys (grown as needed and returned inside the result — pass a retained
// scratch slice for allocation-free steady state). The returned Keys alias b
// (see the package contract).
func ParseBatchReadReq(b []byte, keys []string) (BatchReadReq, error) {
	d := decoder{b: b}
	m := BatchReadReq{ID: d.u64(), CL: d.u8()}
	n := d.batchCount()
	keys = keys[:0]
	for i := 0; i < n && d.err == nil; i++ {
		keys = append(keys, d.str())
	}
	m.Keys = keys
	return m, d.err
}

// ParseBatchReadResp decodes a MsgBatchReadResp payload into items (grown as
// needed, like ParseBatchReadReq's keys). The returned Values alias b (see
// the package contract).
func ParseBatchReadResp(b []byte, items []BatchItem) (BatchReadResp, error) {
	d := decoder{b: b}
	m := BatchReadResp{ID: d.u64()}
	n := d.batchCount()
	items = items[:0]
	for i := 0; i < n && d.err == nil; i++ {
		it := BatchItem{Found: d.u8() == 1}
		it.Version, it.Value = d.versionedBytes()
		items = append(items, it)
	}
	m.Items = items
	m.FB.QueueSize = d.f64()
	m.FB.ServiceNs = d.i64()
	return m, d.err
}

// ParseBatchWriteReq decodes a MsgBatchWrite/MsgBatchWriteInternal payload
// into keys and values (grown as needed). The returned Keys and Values alias
// b (see the package contract).
func ParseBatchWriteReq(b []byte, keys []string, values [][]byte) (BatchWriteReq, error) {
	d := decoder{b: b}
	m := BatchWriteReq{ID: d.u64(), CL: d.u8(), Version: d.u64()}
	n := d.batchCount()
	keys, values = keys[:0], values[:0]
	for i := 0; i < n && d.err == nil; i++ {
		keys = append(keys, d.str())
		values = append(values, d.bytes())
	}
	m.Keys, m.Values = keys, values
	return m, d.err
}

// ParseBatchWriteResp decodes a MsgBatchWriteResp payload into oks (grown as
// needed).
func ParseBatchWriteResp(b []byte, oks []bool) (BatchWriteResp, error) {
	d := decoder{b: b}
	m := BatchWriteResp{ID: d.u64(), Status: d.u8()}
	n := d.batchCount()
	oks = oks[:0]
	for i := 0; i < n && d.err == nil; i++ {
		oks = append(oks, d.u8() == 1)
	}
	m.OK = oks
	m.FB.QueueSize = d.f64()
	m.FB.ServiceNs = d.i64()
	return m, d.err
}
