//go:build race

package kvstore

// raceEnabled skips strict zero-allocation assertions under the race
// detector, whose instrumentation allocates on cross-goroutine handoffs.
const raceEnabled = true
