package wire

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// batchFrame encodes with enc, then decodes the single resulting frame,
// returning its type and payload.
func batchFrame(t *testing.T, enc func([]byte) ([]byte, error)) (uint8, []byte) {
	t.Helper()
	b, err := enc(nil)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	r := NewReader(bytes.NewReader(b))
	typ, payload, err := r.Next()
	if err != nil {
		t.Fatalf("decode frame: %v", err)
	}
	return typ, payload
}

func TestBatchReadReqRoundtrip(t *testing.T) {
	for _, typ := range []uint8{MsgBatchRead, MsgBatchReadInternal} {
		in := BatchReadReq{ID: 77, Keys: []string{"a", "", "user0000019", strings.Repeat("k", MaxKeyLen)}}
		gotTyp, payload := batchFrame(t, func(dst []byte) ([]byte, error) {
			return AppendBatchReadReq(dst, typ, in)
		})
		if gotTyp != typ {
			t.Fatalf("type = %d, want %d", gotTyp, typ)
		}
		out, err := ParseBatchReadReq(payload, nil)
		if err != nil {
			t.Fatal(err)
		}
		if out.ID != in.ID || len(out.Keys) != len(in.Keys) {
			t.Fatalf("out = %+v", out)
		}
		for i := range in.Keys {
			if out.Keys[i] != in.Keys[i] {
				t.Fatalf("key %d = %q, want %q", i, out.Keys[i], in.Keys[i])
			}
		}
	}
}

func TestBatchReadRespStreamingRoundtrip(t *testing.T) {
	vals := [][]byte{[]byte("hello"), nil, bytes.Repeat([]byte{0xCC}, 2048), {}}
	found := []bool{true, false, true, true}
	vers := []uint64{3, 0, 99, 7}
	fb := Feedback{QueueSize: 4.25, ServiceNs: 987654}

	b, mark := BeginBatchReadResp(nil, 31)
	var err error
	for i := range vals {
		b = BeginBatchReadItem(b, &mark)
		if found[i] {
			b = appendU64(b, vers[i]) // found values carry the version prefix
			b = append(b, vals[i]...)
		}
		if b, err = FinishBatchReadItem(b, &mark, found[i]); err != nil {
			t.Fatal(err)
		}
	}
	if b, err = FinishBatchReadResp(b, mark, fb); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(b))
	typ, payload, err := r.Next()
	if err != nil || typ != MsgBatchReadResp {
		t.Fatalf("typ=%d err=%v", typ, err)
	}
	out, err := ParseBatchReadResp(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != 31 || out.FB != fb || len(out.Items) != len(vals) {
		t.Fatalf("out = %+v", out)
	}
	for i, it := range out.Items {
		if it.Found != found[i] || !bytes.Equal(it.Value, vals[i]) || it.Version != vers[i] {
			t.Fatalf("item %d = %+v", i, it)
		}
	}
}

func TestBatchReadRespAppendMatchesStreaming(t *testing.T) {
	in := BatchReadResp{
		ID: 5,
		Items: []BatchItem{
			{Found: true, Version: 11, Value: []byte("v0")},
			{Found: false},
		},
		FB: Feedback{QueueSize: 1, ServiceNs: 2},
	}
	viaAppend, err := AppendBatchReadResp(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	b, mark := BeginBatchReadResp(nil, in.ID)
	for _, it := range in.Items {
		b = BeginBatchReadItem(b, &mark)
		if it.Found {
			b = appendU64(b, it.Version)
			b = append(b, it.Value...)
		}
		if b, err = FinishBatchReadItem(b, &mark, it.Found); err != nil {
			t.Fatal(err)
		}
	}
	if b, err = FinishBatchReadResp(b, mark, in.FB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaAppend, b) {
		t.Fatalf("append and streaming encodings differ:\n%x\n%x", viaAppend, b)
	}
}

func TestBatchWriteRoundtrip(t *testing.T) {
	in := BatchWriteReq{
		ID:     91,
		Keys:   []string{"k0", "k1", "k2"},
		Values: [][]byte{[]byte("v0"), nil, bytes.Repeat([]byte{7}, 300)},
	}
	typ, payload := batchFrame(t, func(dst []byte) ([]byte, error) {
		return AppendBatchWriteReq(dst, MsgBatchWriteInternal, in)
	})
	if typ != MsgBatchWriteInternal {
		t.Fatalf("type = %d", typ)
	}
	out, err := ParseBatchWriteReq(payload, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || len(out.Keys) != 3 {
		t.Fatalf("out = %+v", out)
	}
	for i := range in.Keys {
		if out.Keys[i] != in.Keys[i] || !bytes.Equal(out.Values[i], in.Values[i]) {
			t.Fatalf("pair %d: %q/%x", i, out.Keys[i], out.Values[i])
		}
	}

	ack := BatchWriteResp{ID: 91, OK: []bool{true, false, true}, FB: Feedback{QueueSize: 2, ServiceNs: 3}}
	typ, payload = batchFrame(t, func(dst []byte) ([]byte, error) {
		return AppendBatchWriteResp(dst, ack)
	})
	if typ != MsgBatchWriteResp {
		t.Fatalf("type = %d", typ)
	}
	got, err := ParseBatchWriteResp(payload, nil)
	if err != nil || got.ID != ack.ID || got.FB != ack.FB || len(got.OK) != 3 {
		t.Fatalf("got = %+v err=%v", got, err)
	}
	for i := range ack.OK {
		if got.OK[i] != ack.OK[i] {
			t.Fatalf("ok %d = %v", i, got.OK[i])
		}
	}
}

func TestBatchCountBounds(t *testing.T) {
	if _, err := AppendBatchReadReq(nil, MsgBatchRead, BatchReadReq{ID: 1}); err == nil {
		t.Fatal("empty batch accepted")
	}
	big := make([]string, MaxBatchKeys+1)
	if _, err := AppendBatchReadReq(nil, MsgBatchRead, BatchReadReq{ID: 1, Keys: big}); err == nil {
		t.Fatal("oversized batch accepted")
	}
	if _, err := AppendBatchWriteReq(nil, MsgBatchWrite, BatchWriteReq{ID: 1, Keys: []string{"k"}}); err == nil {
		t.Fatal("mismatched keys/values accepted")
	}
	// A payload whose count field exceeds the limit must be rejected even if
	// the bytes happen to be long enough.
	b, err := AppendBatchReadReq(nil, MsgBatchRead, BatchReadReq{ID: 1, Keys: []string{"k"}})
	if err != nil {
		t.Fatal(err)
	}
	payload := append([]byte(nil), b[5:]...) // strip frame header
	payload[8], payload[9] = 0xFF, 0xFF      // count = 65535
	if _, err := ParseBatchReadReq(payload, nil); err == nil {
		t.Fatal("oversized decoded count accepted")
	}
	payload[8], payload[9] = 0, 0 // count = 0
	if _, err := ParseBatchReadReq(payload, nil); err == nil {
		t.Fatal("zero decoded count accepted")
	}
}

func TestBatchStreamingMisuse(t *testing.T) {
	b, mark := BeginBatchReadResp(nil, 1)
	if _, err := FinishBatchReadItem(b, &mark, true); err == nil {
		t.Fatal("item finished without being begun")
	}
	b, mark = BeginBatchReadResp(nil, 1)
	b = BeginBatchReadItem(b, &mark)
	if _, err := FinishBatchReadResp(b, mark, Feedback{}); err == nil {
		t.Fatal("frame finished with an item left open")
	}
	b, mark = BeginBatchReadResp(nil, 1)
	if _, err := FinishBatchReadResp(b, mark, Feedback{}); err == nil {
		t.Fatal("empty batch response accepted")
	}
}

func TestBatchTruncatedPayloadsRejected(t *testing.T) {
	in := BatchWriteReq{ID: 3, Keys: []string{"key-aaa", "key-bbb"},
		Values: [][]byte{[]byte("vvvv"), []byte("wwww")}}
	b, err := AppendBatchWriteReq(nil, MsgBatchWrite, in)
	if err != nil {
		t.Fatal(err)
	}
	payload := b[5:]
	for cut := 0; cut < len(payload); cut++ {
		if _, err := ParseBatchWriteReq(payload[:cut], nil, nil); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestBatchDecodeScratchReuse: steady-state decoding with retained scratch
// slices allocates nothing.
func TestBatchDecodeScratchReuse(t *testing.T) {
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("batch-key-%04d", i)
	}
	b, err := AppendBatchReadReq(nil, MsgBatchReadInternal, BatchReadReq{ID: 9, Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	payload := b[5:]
	scratch := make([]string, 0, len(keys))
	allocs := testing.AllocsPerRun(200, func() {
		out, err := ParseBatchReadReq(payload, scratch)
		if err != nil || len(out.Keys) != len(keys) {
			t.Fatalf("decode: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state batch decode allocates %.1f/op, want 0", allocs)
	}
}
