package core

import (
	"math"
	"testing"
	"time"

	"c3/internal/ratelimit"
)

// TestCubicBatchAccountingMatchesPointLoop: OnSendN/OnResponseN/OnAbandonN on
// the C3 ranker must be exactly equivalent to n repetitions of the point
// calls — outstanding counts and every EWMA, so the score function cannot
// tell batch traffic from the point traffic it stands for.
func TestCubicBatchAccountingMatchesPointLoop(t *testing.T) {
	const n = 32
	const s = ServerID(3)
	fb := Feedback{QueueSize: 4, ServiceTime: 2 * time.Millisecond}
	rtt := 5 * time.Millisecond

	batch := NewCubicRanker(RankerConfig{Seed: 1})
	point := NewCubicRanker(RankerConfig{Seed: 1})

	// Prime both with one point response so the EWMAs are initialized and the
	// closed-form fold exercises the non-initial branch.
	batch.OnResponse(s, fb, rtt, 0)
	point.OnResponse(s, fb, rtt, 0)

	batch.OnSendN(s, n, 1)
	for i := 0; i < n; i++ {
		point.OnSend(s, 1)
	}
	if got, want := batch.Outstanding(s), point.Outstanding(s); got != want || got != n {
		t.Fatalf("outstanding after OnSendN = %v, point loop = %v, want %d", got, want, n)
	}

	fb2 := Feedback{QueueSize: 9, ServiceTime: 3 * time.Millisecond}
	rtt2 := 8 * time.Millisecond
	batch.OnResponseN(s, n, fb2, rtt2, 2)
	for i := 0; i < n; i++ {
		point.OnResponse(s, fb2, rtt2, 2)
	}
	if got, want := batch.Outstanding(s), point.Outstanding(s); got != want || got != 0 {
		t.Fatalf("outstanding after OnResponseN = %v, point loop = %v, want 0", got, want)
	}
	bs, ps := batch.Score(s, 3), point.Score(s, 3)
	if math.Abs(bs-ps) > 1e-9*math.Max(math.Abs(bs), 1) {
		t.Fatalf("score after weighted feedback = %v, point loop = %v", bs, ps)
	}
	if q1, q2 := batch.QueueEstimate(s), point.QueueEstimate(s); math.Abs(q1-q2) > 1e-9 {
		t.Fatalf("q̂ after weighted feedback = %v, point loop = %v", q1, q2)
	}

	batch.OnSendN(s, n, 4)
	batch.OnAbandonN(s, n, 5)
	if got := batch.Outstanding(s); got != 0 {
		t.Fatalf("outstanding after OnAbandonN = %v, want 0", got)
	}
	// Abandoning more than outstanding clamps at zero, as the point call does.
	batch.OnAbandonN(s, n, 6)
	if got := batch.Outstanding(s); got != 0 {
		t.Fatalf("outstanding after over-abandon = %v, want 0", got)
	}
}

// TestLORTwoChoiceBatchAccounting: the outstanding-only rankers move by n.
func TestLORTwoChoiceBatchAccounting(t *testing.T) {
	l := NewLOR(nil, 1)
	l.OnSendN(5, 8, 0)
	if got := l.Outstanding(5); got != 8 {
		t.Fatalf("LOR outstanding = %v, want 8", got)
	}
	l.OnResponseN(5, 3, Feedback{}, time.Millisecond, 1)
	if got := l.Outstanding(5); got != 5 {
		t.Fatalf("LOR outstanding = %v, want 5", got)
	}
	l.OnAbandonN(5, 99, 2)
	if got := l.Outstanding(5); got != 0 {
		t.Fatalf("LOR outstanding after clamp = %v, want 0", got)
	}

	tc := NewTwoChoice(nil, 1)
	tc.OnSendN(2, 4, 0)
	tc.OnAbandonN(2, 4, 1)
	if got := tc.Outstanding(2); got != 0 {
		t.Fatalf("TwoChoice outstanding = %v, want 0", got)
	}
}

// TestClientPickBatchAccountsNConsumesOneToken: the limiter admits a batch as
// one RPC while the ranker sees n keys.
func TestClientPickBatchAccountsNConsumesOneToken(t *testing.T) {
	cfg := ClientConfig{RateControl: true, Rate: ratelimit.Config{InitialRate: 2}}
	ranker := NewCubicRanker(RankerConfig{Seed: 1})
	c := NewClient(ranker, cfg)
	group := []ServerID{1}
	s, ok, _ := c.PickBatch(group, 16, 0)
	if !ok || s != 1 {
		t.Fatalf("PickBatch = (%v, %v)", s, ok)
	}
	if got := c.Outstanding(1); got != 16 {
		t.Fatalf("outstanding after PickBatch(16) = %v, want 16", got)
	}
	// InitialRate 2 → one token left: a 64-key batch still fits (one RPC)…
	if _, ok, _ := c.PickBatch(group, 64, 0); !ok {
		t.Fatal("second PickBatch should consume the second token")
	}
	// …and the third RPC is over rate regardless of size.
	if _, ok, _ := c.PickBatch(group, 1, 0); ok {
		t.Fatal("third PickBatch should be over rate")
	}
	c.OnResponseN(1, 16, Feedback{QueueSize: 1, ServiceTime: time.Millisecond}, time.Millisecond, 1)
	c.OnAbandonN(1, 64, 2)
	if got := c.Outstanding(1); got != 0 {
		t.Fatalf("outstanding after balance = %v, want 0 (zero-residual invariant)", got)
	}
}

// TestClientBatchFallbackForPointRankers: rankers without BatchRanker get n
// repeated point calls, so accounting still balances.
func TestClientBatchFallbackForPointRankers(t *testing.T) {
	c := NewClient(NewLeastResponseTime(nil, 0.9, 1), ClientConfig{})
	c.OnSendN(4, 8, 0) // LRT keeps no outstanding state; must simply not panic
	c.OnResponseN(4, 8, Feedback{}, time.Millisecond, 1)
	c.OnAbandonN(4, 8, 2)
}

// TestClientPickHedgeNCountsKeys: a batch hedge duplicates every key it
// carries, so HedgesSent advances by n, and the hedge target excludes the
// already-tried replica.
func TestClientPickHedgeNCountsKeys(t *testing.T) {
	c := NewClient(NewLOR(nil, 1), ClientConfig{})
	group := []ServerID{1, 2}
	s, ok, _ := c.PickBatch(group, 4, 0)
	if !ok {
		t.Fatal("PickBatch failed")
	}
	h, ok := c.PickHedgeN(group, []ServerID{s}, 4, 1)
	if !ok || h == s {
		t.Fatalf("PickHedgeN = (%v, %v), want the untried replica", h, ok)
	}
	if got := c.HedgesSent(); got != 4 {
		t.Fatalf("HedgesSent = %d, want 4 (one per duplicated key)", got)
	}
	if got := c.Outstanding(s) + c.Outstanding(h); got != 8 {
		t.Fatalf("total outstanding = %v, want 8", got)
	}
	now := int64(2)
	c.OnResponseN(h, 4, Feedback{}, time.Millisecond, now)
	c.OnAbandonN(s, 4, now)
	if got := c.Outstanding(s) + c.Outstanding(h); got != 0 {
		t.Fatalf("residual = %v, want 0", got)
	}
}

// TestClientPickNextNExhaustsGroup: every group member tried → no pick.
func TestClientPickNextNExhaustsGroup(t *testing.T) {
	c := NewClient(NewLOR(nil, 1), ClientConfig{})
	group := []ServerID{1, 2}
	if _, ok := c.PickNextN(group, group, 3, 0); ok {
		t.Fatal("PickNextN with all replicas tried should fail")
	}
	if _, ok := c.PickNextN(group, nil, 0, 0); ok {
		t.Fatal("PickNextN with n=0 should fail")
	}
}
