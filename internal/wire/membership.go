package wire

// This file holds the membership and key-range-streaming frames: topology
// announcements (MsgRingUpdate/MsgRingAck), the join handshake (MsgJoinReq),
// and the pull protocol a joining node uses to stream its owed ranges from
// current owners (MsgStreamReq/MsgStreamChunk). They share the point/batch
// building blocks — u16-prefixed keys, u32-prefixed values — and the chunk
// response has a streaming encoder mirroring the batch one, so a replica
// serves stream pages straight out of its storage engine with no
// intermediate value copy.

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Ring-update phases: a stable topology, or one of the two dual-route
// transition windows (a join whose subject is still catching up, a leave
// whose subject is still streaming its arcs away).
const (
	PhaseStable uint8 = iota
	PhaseJoin
	PhaseLeave
)

// MaxRingNodes bounds the member count of one topology announcement.
const MaxRingNodes = 4096

// Stream-chunk status codes.
const (
	// StreamOK marks a served page.
	StreamOK uint8 = iota
	// StreamWrongEpoch rejects a request whose epoch does not match the
	// server's; the chunk carries the server's epoch and no items, and the
	// requester must retry against the newer topology.
	StreamWrongEpoch
)

// RingNode is one member of an announced topology.
type RingNode struct {
	ID    int32
	Token int64
	Addr  string
}

// RingUpdate is a complete versioned topology: the epoch, replication
// factor, transition phase, the subject of the transition (the joining or
// leaving node id; meaningful only when Phase is not PhaseStable), and every
// member with its token and listen address. The node list always includes
// the subject, so a receiver can derive both sides of a dual-route window
// from one frame.
type RingUpdate struct {
	ID      uint64
	Epoch   uint64
	RF      uint8
	Phase   uint8
	Subject int32
	Nodes   []RingNode
}

// RingAck acknowledges a pushed ring update with the receiver's epoch after
// processing — an epoch above the update's tells the sender it raced a newer
// announcement.
type RingAck struct {
	ID    uint64
	Epoch uint64
}

// JoinReq asks the receiving member to admit the sender (listening on Addr)
// into the cluster. The response is a MsgRingUpdate frame carrying the
// PhaseJoin transition topology, whose Subject is the id assigned to the
// joiner.
type JoinReq struct {
	ID   uint64
	Addr string
}

// StreamReq asks for one page of the keys the receiver holds inside the
// token arc (Start, End] (wrapping when Start ≥ End), restricted to keys
// strictly greater than Cursor in byte order — the pagination that keeps the
// server stateless. Epoch must match the receiver's current topology.
type StreamReq struct {
	ID         uint64
	Epoch      uint64
	Start, End int64
	Cursor     string
}

// StreamChunk answers a StreamReq: one page of key/value pairs in ascending
// key order, Done marking the final page. A StreamWrongEpoch status carries
// the server's epoch and no items.
type StreamChunk struct {
	ID     uint64
	Status uint8
	Epoch  uint64
	Done   bool
	Keys   []string
	Values [][]byte
}

// AppendRingUpdate appends a complete framed topology announcement to dst.
func AppendRingUpdate(dst []byte, m RingUpdate) ([]byte, error) {
	if len(m.Nodes) < 1 || len(m.Nodes) > MaxRingNodes {
		return dst, fmt.Errorf("wire: ring of %d nodes outside [1, %d]", len(m.Nodes), MaxRingNodes)
	}
	if m.Phase > PhaseLeave {
		return dst, fmt.Errorf("wire: unknown ring phase %d", m.Phase)
	}
	if m.RF < 1 || int(m.RF) > len(m.Nodes) {
		return dst, fmt.Errorf("wire: ring RF %d outside [1, %d]", m.RF, len(m.Nodes))
	}
	dst, start := beginFrame(dst, MsgRingUpdate)
	dst = appendU64(dst, m.ID)
	dst = appendU64(dst, m.Epoch)
	dst = append(dst, m.RF, m.Phase)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Subject))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Nodes)))
	var err error
	for _, n := range m.Nodes {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(n.ID))
		dst = appendI64(dst, n.Token)
		if dst, err = appendStr(dst, n.Addr); err != nil {
			return dst[:start], err
		}
	}
	return endFrame(dst, start)
}

// ParseRingUpdate decodes a MsgRingUpdate payload. Node addresses alias b
// (see the package contract); retainers must clone. Structural validation —
// a positive RF, a known phase, distinct ids and tokens — happens here so a
// decoded update is always a constructible topology.
func ParseRingUpdate(b []byte) (RingUpdate, error) {
	d := decoder{b: b}
	m := RingUpdate{ID: d.u64(), Epoch: d.u64(), RF: d.u8(), Phase: d.u8()}
	m.Subject = int32(d.u32())
	n := int(d.u16())
	if d.err != nil {
		return m, d.err
	}
	if n < 1 || n > MaxRingNodes {
		return m, errors.New("wire: bad ring node count")
	}
	if m.RF < 1 || int(m.RF) > n {
		return m, errors.New("wire: ring RF outside [1, nodes]")
	}
	if m.Phase > PhaseLeave {
		return m, errors.New("wire: unknown ring phase")
	}
	m.Nodes = make([]RingNode, 0, n)
	seenID := make(map[int32]bool, n)
	seenTok := make(map[int64]bool, n)
	for i := 0; i < n && d.err == nil; i++ {
		nd := RingNode{ID: int32(d.u32()), Token: d.i64()}
		nd.Addr = d.str()
		if d.err != nil {
			break
		}
		if seenID[nd.ID] || seenTok[nd.Token] {
			return m, errors.New("wire: duplicate ring node")
		}
		seenID[nd.ID] = true
		seenTok[nd.Token] = true
		m.Nodes = append(m.Nodes, nd)
	}
	return m, d.err
}

// AppendRingAck appends a complete framed ring-update acknowledgement.
func AppendRingAck(dst []byte, m RingAck) ([]byte, error) {
	dst, start := beginFrame(dst, MsgRingAck)
	return endFrame(appendU64(appendU64(dst, m.ID), m.Epoch), start)
}

// ParseRingAck decodes a MsgRingAck payload.
func ParseRingAck(b []byte) (RingAck, error) {
	d := decoder{b: b}
	m := RingAck{ID: d.u64(), Epoch: d.u64()}
	return m, d.err
}

// AppendJoinReq appends a complete framed join request.
func AppendJoinReq(dst []byte, m JoinReq) ([]byte, error) {
	dst, start := beginFrame(dst, MsgJoinReq)
	dst, err := appendStr(appendU64(dst, m.ID), m.Addr)
	if err != nil {
		return dst[:start], err
	}
	return endFrame(dst, start)
}

// ParseJoinReq decodes a MsgJoinReq payload. Addr aliases b.
func ParseJoinReq(b []byte) (JoinReq, error) {
	d := decoder{b: b}
	m := JoinReq{ID: d.u64(), Addr: d.str()}
	return m, d.err
}

// AppendStreamReq appends a complete framed stream page request.
func AppendStreamReq(dst []byte, m StreamReq) ([]byte, error) {
	dst, start := beginFrame(dst, MsgStreamReq)
	dst = appendU64(dst, m.ID)
	dst = appendU64(dst, m.Epoch)
	dst = appendI64(dst, m.Start)
	dst = appendI64(dst, m.End)
	dst, err := appendStr(dst, m.Cursor)
	if err != nil {
		return dst[:start], err
	}
	return endFrame(dst, start)
}

// ParseStreamReq decodes a MsgStreamReq payload. Cursor aliases b.
func ParseStreamReq(b []byte) (StreamReq, error) {
	d := decoder{b: b}
	m := StreamReq{ID: d.u64(), Epoch: d.u64(), Start: d.i64(), End: d.i64(), Cursor: d.str()}
	return m, d.err
}

// StreamChunkMark tracks an in-progress streamed chunk between
// BeginStreamChunk and FinishStreamChunk.
type StreamChunkMark struct {
	start   int
	doneAt  int
	countAt int
	count   int
	lenAt   int // current item's value-length offset; -1 outside an item
}

// BeginStreamChunk starts a StreamOK chunk frame. For each key, in ascending
// order, call BeginStreamItem, append the value bytes directly (the
// zero-copy server path — lsm.Store.GetAppend), then FinishStreamItem; close
// with FinishStreamChunk. Unlike batch responses a chunk may carry zero
// items (an empty final page).
func BeginStreamChunk(dst []byte, id, epoch uint64) ([]byte, StreamChunkMark) {
	dst, start := beginFrame(dst, MsgStreamChunk)
	dst = appendU64(dst, id)
	dst = append(dst, StreamOK)
	dst = appendU64(dst, epoch)
	m := StreamChunkMark{start: start, doneAt: len(dst), lenAt: -1}
	dst = append(dst, 0) // done placeholder
	m.countAt = len(dst)
	dst = append(dst, 0, 0) // count placeholder
	return dst, m
}

// BeginStreamItem opens the next key/value record: the caller appends the
// value bytes directly to the returned buffer.
func BeginStreamItem(dst []byte, m *StreamChunkMark, key string) ([]byte, error) {
	if m.lenAt >= 0 {
		return dst, errors.New("wire: stream item left open")
	}
	dst, err := appendStr(dst, key)
	if err != nil {
		return dst, err
	}
	m.lenAt = len(dst)
	return append(dst, 0, 0, 0, 0), nil
}

// FinishStreamItem closes the record opened by the matching BeginStreamItem,
// patching its value length.
func FinishStreamItem(dst []byte, m *StreamChunkMark) ([]byte, error) {
	if m.lenAt < 0 {
		return dst, errors.New("wire: FinishStreamItem without BeginStreamItem")
	}
	vlen := len(dst) - m.lenAt - 4
	if vlen < 0 {
		return dst[:m.start], errors.New("wire: value bytes truncated the buffer")
	}
	if vlen > MaxValueLen {
		return dst[:m.start], fmt.Errorf("wire: value length %d exceeds limit", vlen)
	}
	binary.LittleEndian.PutUint32(dst[m.lenAt:m.lenAt+4], uint32(vlen))
	m.lenAt = -1
	m.count++
	return dst, nil
}

// CancelItem abandons the record opened by the matching BeginStreamItem —
// for a key that vanished between snapshot and read. The caller must also
// truncate the buffer back to its pre-BeginStreamItem length.
func (m *StreamChunkMark) CancelItem() { m.lenAt = -1 }

// FinishStreamChunk completes the frame, patching the done flag and count.
func FinishStreamChunk(dst []byte, m StreamChunkMark, done bool) ([]byte, error) {
	if m.lenAt >= 0 {
		return dst[:m.start], errors.New("wire: stream item left open")
	}
	if m.count > MaxBatchKeys {
		return dst[:m.start], fmt.Errorf("wire: stream chunk of %d items exceeds %d", m.count, MaxBatchKeys)
	}
	if done {
		dst[m.doneAt] = 1
	}
	binary.LittleEndian.PutUint16(dst[m.countAt:m.countAt+2], uint16(m.count))
	return endFrame(dst, m.start)
}

// AppendStreamChunk appends a complete framed stream chunk to dst — the
// non-streaming construction (rejections, tests, fuzzing); servers use the
// Begin/Finish API.
func AppendStreamChunk(dst []byte, m StreamChunk) ([]byte, error) {
	if m.Status != StreamOK {
		if len(m.Keys) != 0 {
			return dst, errors.New("wire: stream rejection carries items")
		}
		dst, start := beginFrame(dst, MsgStreamChunk)
		dst = appendU64(dst, m.ID)
		dst = append(dst, m.Status)
		dst = appendU64(dst, m.Epoch)
		dst = appendBool(dst, m.Done)
		dst = binary.LittleEndian.AppendUint16(dst, 0)
		return endFrame(dst, start)
	}
	if len(m.Keys) != len(m.Values) {
		return dst, fmt.Errorf("wire: stream chunk %d keys vs %d values", len(m.Keys), len(m.Values))
	}
	dst, mark := BeginStreamChunk(dst, m.ID, m.Epoch)
	var err error
	for i, k := range m.Keys {
		if dst, err = BeginStreamItem(dst, &mark, k); err != nil {
			return dst, err
		}
		if len(m.Values[i]) > MaxValueLen {
			return dst[:mark.start], fmt.Errorf("wire: value length %d exceeds limit", len(m.Values[i]))
		}
		dst = append(dst, m.Values[i]...)
		if dst, err = FinishStreamItem(dst, &mark); err != nil {
			return dst, err
		}
	}
	return FinishStreamChunk(dst, mark, m.Done)
}

// ParseStreamChunk decodes a MsgStreamChunk payload into keys and values
// (grown as needed, like the batch parsers). Keys and Values alias b (see
// the package contract).
func ParseStreamChunk(b []byte, keys []string, values [][]byte) (StreamChunk, error) {
	d := decoder{b: b}
	m := StreamChunk{ID: d.u64(), Status: d.u8(), Epoch: d.u64()}
	m.Done = d.u8() == 1
	n := int(d.u16())
	if d.err != nil {
		return m, d.err
	}
	if n > MaxBatchKeys {
		return m, errors.New("wire: bad stream chunk count")
	}
	if m.Status > StreamWrongEpoch {
		return m, errors.New("wire: unknown stream status")
	}
	if m.Status != StreamOK && n != 0 {
		return m, errors.New("wire: stream rejection carries items")
	}
	keys, values = keys[:0], values[:0]
	for i := 0; i < n && d.err == nil; i++ {
		keys = append(keys, d.str())
		values = append(values, d.bytes())
	}
	m.Keys, m.Values = keys, values
	return m, d.err
}

// u16/u32 decoder helpers for the membership frames.
func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b)
	d.b = d.b[2:]
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}
