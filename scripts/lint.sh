#!/usr/bin/env bash
# Lint entry point, used by `make lint` and CI.
#
# Builds the repository's invariant checker (cmd/c3vet) and runs it over the
# whole tree through `go vet -vettool`, so the five hot-path analyzers
# (accountpair, aliasretain, poolsafe, typederr, lockscope) ride go vet's
# per-package export data and incremental cache. Then runs staticcheck and
# govulncheck when they are installed: CI installs pinned versions (see
# .github/workflows/ci.yml); local runs without them skip those steps with a
# note rather than failing, since the container may not carry the tools.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=${C3VET_BIN:-bin/c3vet}
mkdir -p "$(dirname "$bin")"
go build -o "$bin" ./cmd/c3vet
go vet -vettool="$(pwd)/$bin" ./...
echo "c3vet OK"

if command -v staticcheck >/dev/null 2>&1; then
  staticcheck ./...
  echo "staticcheck OK"
else
  echo "staticcheck not installed; skipped (CI runs the pinned version)"
fi

if command -v govulncheck >/dev/null 2>&1; then
  govulncheck ./...
  echo "govulncheck OK"
else
  echo "govulncheck not installed; skipped (CI runs the pinned version)"
fi
