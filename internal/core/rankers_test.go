package core

import (
	"testing"
	"time"
)

func TestLORPrefersFewestOutstanding(t *testing.T) {
	l := NewLOR(nil, 1)
	group := []ServerID{1, 2, 3}
	l.OnSend(1, 0)
	l.OnSend(1, 0)
	l.OnSend(2, 0)
	for i := 0; i < 20; i++ {
		if got := l.Rank(nil, group, 0)[0]; got != 3 {
			t.Fatalf("rank[0] = %v, want 3 (zero outstanding)", got)
		}
	}
	l.OnResponse(1, Feedback{}, time.Millisecond, 0)
	l.OnResponse(1, Feedback{}, time.Millisecond, 0)
	if l.Outstanding(1) != 0 {
		t.Fatalf("outstanding(1) = %v, want 0", l.Outstanding(1))
	}
	l.OnResponse(1, Feedback{}, time.Millisecond, 0) // spurious response
	if l.Outstanding(1) != 0 {
		t.Fatal("outstanding went negative")
	}
}

func TestLORTieBreakUniformish(t *testing.T) {
	l := NewLOR(nil, 2)
	group := []ServerID{1, 2}
	counts := map[ServerID]int{}
	for i := 0; i < 2000; i++ {
		counts[l.Rank(nil, group, 0)[0]]++
	}
	if counts[1] < 800 || counts[1] > 1200 {
		t.Fatalf("LOR tie-break skew: %v", counts)
	}
}

func TestRoundRobinCyclesThroughGroup(t *testing.T) {
	r := NewRoundRobin(nil)
	group := []ServerID{10, 20, 30}
	var firsts []ServerID
	for i := 0; i < 6; i++ {
		firsts = append(firsts, r.Rank(nil, group, 0)[0])
	}
	want := []ServerID{10, 20, 30, 10, 20, 30}
	for i := range want {
		if firsts[i] != want[i] {
			t.Fatalf("round robin order = %v, want %v", firsts, want)
		}
	}
}

func TestRoundRobinIndependentPerGroup(t *testing.T) {
	r := NewRoundRobin(nil)
	a := []ServerID{1, 2}
	b := []ServerID{3, 4}
	if r.Rank(nil, a, 0)[0] != 1 || r.Rank(nil, b, 0)[0] != 3 {
		t.Fatal("fresh groups should start at their first member")
	}
	if r.Rank(nil, a, 0)[0] != 2 {
		t.Fatal("group a should advance independently")
	}
	if r.Rank(nil, b, 0)[0] != 4 {
		t.Fatal("group b should advance independently")
	}
}

func TestRoundRobinRotationIsCompleteOrder(t *testing.T) {
	r := NewRoundRobin(nil)
	group := []ServerID{1, 2, 3}
	r.Rank(nil, group, 0)
	got := r.Rank(nil, group, 0)
	want := []ServerID{2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", got, want)
		}
	}
}

func TestRandomCoversAllServers(t *testing.T) {
	r := NewRandom(3)
	group := []ServerID{1, 2, 3, 4}
	counts := map[ServerID]int{}
	for i := 0; i < 4000; i++ {
		counts[r.Rank(nil, group, 0)[0]]++
	}
	for _, s := range group {
		if counts[s] < 800 || counts[s] > 1200 {
			t.Fatalf("random skew: %v", counts)
		}
	}
}

func TestTwoChoicePrefersLessLoadedOfPair(t *testing.T) {
	tc := NewTwoChoice(nil, 4)
	group := []ServerID{1, 2}
	for i := 0; i < 5; i++ {
		tc.OnSend(1, 0)
	}
	// With only two servers the pair is always {1,2}; 2 must always lead.
	for i := 0; i < 50; i++ {
		if got := tc.Rank(nil, group, 0)[0]; got != 2 {
			t.Fatalf("two-choice rank[0] = %v, want 2", got)
		}
	}
	tc.OnResponse(1, Feedback{}, time.Millisecond, 0)
	if got := tc.Outstanding(1); got != 4 {
		t.Fatalf("outstanding = %v, want 4", got)
	}
}

func TestLeastResponseTimePrefersFastServer(t *testing.T) {
	l := NewLeastResponseTime(nil, 0.9, 5)
	group := []ServerID{1, 2}
	for i := 0; i < 10; i++ {
		l.OnResponse(1, Feedback{}, 2*time.Millisecond, 0)
		l.OnResponse(2, Feedback{}, 30*time.Millisecond, 0)
	}
	for i := 0; i < 20; i++ {
		if got := l.Rank(nil, group, 0)[0]; got != 1 {
			t.Fatalf("LRT rank[0] = %v, want 1", got)
		}
	}
}

func TestLeastResponseTimeExploresUnseen(t *testing.T) {
	l := NewLeastResponseTime(nil, 0.9, 6)
	group := []ServerID{1, 2}
	l.OnResponse(1, Feedback{}, time.Millisecond, 0)
	if got := l.Rank(nil, group, 0)[0]; got != 2 {
		t.Fatalf("rank[0] = %v, want unseen server 2", got)
	}
}

func TestWeightedRandomSkewsTowardFastServer(t *testing.T) {
	w := NewWeightedRandom(nil, 0.9, 7)
	group := []ServerID{1, 2}
	for i := 0; i < 10; i++ {
		w.OnResponse(1, Feedback{}, 2*time.Millisecond, 0)  // weight 500
		w.OnResponse(2, Feedback{}, 20*time.Millisecond, 0) // weight 50
	}
	counts := map[ServerID]int{}
	for i := 0; i < 5000; i++ {
		counts[w.Rank(nil, group, 0)[0]]++
	}
	frac := float64(counts[1]) / 5000
	if frac < 0.84 || frac > 0.97 { // expect ~500/550 ≈ 0.91
		t.Fatalf("weighted fraction toward fast server = %v, want ≈0.91", frac)
	}
}

func TestWeightedRandomUnseenGetsExplored(t *testing.T) {
	w := NewWeightedRandom(nil, 0.9, 8)
	group := []ServerID{1, 2}
	w.OnResponse(1, Feedback{}, 10*time.Millisecond, 0)
	counts := map[ServerID]int{}
	for i := 0; i < 2000; i++ {
		counts[w.Rank(nil, group, 0)[0]]++
	}
	if counts[2] < 600 { // unseen gets best-seen weight → ~50%
		t.Fatalf("unseen server underexplored: %v", counts)
	}
}

func TestOracleRanksByInstantaneousQMu(t *testing.T) {
	state := map[ServerID]struct{ q, t float64 }{
		1: {q: 10, t: 0.004}, // (10+1)·4ms = 44ms
		2: {q: 1, t: 0.020},  // (1+1)·20ms = 40ms
		3: {q: 0, t: 0.050},  // 50ms
	}
	o := NewOracle(func(s ServerID) (float64, float64) {
		st := state[s]
		return st.q, st.t
	}, 9)
	got := o.Rank(nil, []ServerID{1, 2, 3}, 0)
	want := []ServerID{2, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("oracle rank = %v, want %v", got, want)
		}
	}
}

func TestOracleNilFnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewOracle(nil) did not panic")
		}
	}()
	NewOracle(nil, 0)
}

func TestAllRankersNameAndPermutation(t *testing.T) {
	group := []ServerID{5, 6, 7, 8}
	rankers := []Ranker{
		NewCubicRanker(RankerConfig{Seed: 1}),
		NewLOR(nil, 1),
		NewRoundRobin(nil),
		NewRandom(1),
		NewTwoChoice(nil, 1),
		NewLeastResponseTime(nil, 0.9, 1),
		NewWeightedRandom(nil, 0.9, 1),
		NewOracle(func(ServerID) (float64, float64) { return 0, 0.001 }, 1),
		NewDynamicSnitch(SnitchConfig{Seed: 1}),
	}
	seenNames := map[string]bool{}
	for _, r := range rankers {
		if r.Name() == "" {
			t.Fatalf("%T has empty name", r)
		}
		if seenNames[r.Name()] {
			t.Fatalf("duplicate ranker name %q", r.Name())
		}
		seenNames[r.Name()] = true
		r.OnSend(group[0], 0)
		r.OnResponse(group[0], fb(1, time.Millisecond), 2*time.Millisecond, 0)
		out := r.Rank(nil, group, msec)
		if len(out) != len(group) {
			t.Fatalf("%s: rank length %d", r.Name(), len(out))
		}
		seen := map[ServerID]bool{}
		for _, s := range out {
			if seen[s] {
				t.Fatalf("%s: duplicate server %d in ranking %v", r.Name(), s, out)
			}
			seen[s] = true
		}
	}
}
