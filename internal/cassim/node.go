package cassim

import (
	"math/rand/v2"
	"time"

	"c3/internal/core"
	"c3/internal/ring"
	"c3/internal/sim"
	"c3/internal/workload"
)

// node is one Cassandra-like server: a storage replica (read and write
// stages with bounded concurrency and FIFO queues, an LSM-flavoured service
// time model, GC pauses, compaction) and a coordinator (replica selection
// over the ring with the configured strategy, read repair, speculative
// retries).
type node struct {
	e   *engine
	id  int
	rng *rand.Rand

	// Storage stages.
	read  stage
	write stage

	// Disturbance state.
	pausedUntil int64   // GC stop-the-world
	ioFactor    float64 // disk-time multiplier (compaction)
	compacting  bool
	slowFactor  float64 // Fig. 13 injected inflation

	// Server-side smoothed service time: the 1/µ_s each response carries.
	svcEstNs float64

	// Coordinator state.
	sel    *core.Client
	scheds []*core.GroupScheduler[*readOp]
	waking []bool

	// Speculative retry latency history (ms), a sliding window.
	lat     []float64
	latIdx  int
	latFull bool
}

// stage is a bounded-concurrency FIFO service stage.
type stage struct {
	slots int
	busy  int
	queue []*job
	head  int
}

func (st *stage) pending() int { return len(st.queue) - st.head + st.busy }

func (st *stage) pop() *job {
	if st.head >= len(st.queue) {
		return nil
	}
	j := st.queue[st.head]
	st.queue[st.head] = nil
	st.head++
	if st.head == len(st.queue) {
		st.queue = st.queue[:0]
		st.head = 0
	} else if st.head > 256 && st.head*2 > len(st.queue) {
		n := copy(st.queue, st.queue[st.head:])
		st.queue = st.queue[:n]
		st.head = 0
	}
	return j
}

// job is one unit of storage work.
type job struct {
	isRead bool
	sizeB  int
	tSent  int64 // when the coordinator dispatched it
	from   *node // coordinator to reply to
	exec   *node // replica executing the job
	op     *readOp
	wr     *writeOp
}

func newNode(e *engine, id int) *node {
	cfg := e.cfg
	n := &node{
		e:          e,
		id:         id,
		rng:        sim.RNG(cfg.Seed, 1000+uint64(id)),
		read:       stage{slots: cfg.ReadSlots},
		write:      stage{slots: cfg.WriteSlots},
		ioFactor:   1,
		slowFactor: 1,
		svcEstNs:   float64(cfg.CPUMean),
		lat:        make([]float64, 512),
	}
	seed := cfg.Seed ^ (0xca55<<32 + uint64(id))
	rcfg := core.RankerConfig{
		ConcurrencyWeight: float64(cfg.Nodes), // coordinators are the C3 clients
		Seed:              seed,
		Registry:          e.reg,
	}
	var ranker core.Ranker
	rateControl := false
	switch cfg.Strategy {
	case StratC3, StratC3Spec:
		ranker = core.NewCubicRanker(rcfg)
		rateControl = true
	case StratDS, StratDSSpec:
		ranker = core.NewDynamicSnitch(core.SnitchConfig{
			Seed:        seed,
			HistorySize: cfg.SnitchHistory,
			Registry:    e.reg,
		})
	case StratLOR:
		ranker = core.NewLOR(e.reg, seed)
	case StratRR:
		ranker = core.NewRoundRobin(e.reg)
		rateControl = true
	default:
		panic("cassim: unknown strategy " + cfg.Strategy)
	}
	n.sel = core.NewClient(ranker, core.ClientConfig{RateControl: rateControl, Rate: cfg.Rate})
	n.scheds = make([]*core.GroupScheduler[*readOp], len(e.groups))
	n.waking = make([]bool, len(e.groups))
	for g := range e.groups {
		n.scheds[g] = core.NewGroupScheduler[*readOp](n.sel, e.groups[g])
	}
	return n
}

// iowait reports the node's current iowait fraction (gossiped to snitches),
// with per-tick jitter — the noisy signal §2.3 blames for DS's misranking.
func (n *node) iowait(now int64) float64 {
	w := n.e.cfg.BaseIOWait
	if n.compacting {
		w = n.e.cfg.CompactIOWait
	}
	return w + n.rng.Float64()*n.e.cfg.IOWaitJitter
}

// scheduleDisturbances arms the GC-pause, compaction and injected-slowdown
// processes for this node.
func (n *node) scheduleDisturbances() {
	cfg := n.e.cfg
	s := n.e.s

	var gc func()
	gc = func() {
		if !n.e.running() {
			return
		}
		span := float64(cfg.GCMaxPause - cfg.GCMinPause)
		pause := int64(cfg.GCMinPause) + int64(n.rng.Float64()*span)
		if t := s.Now() + pause; t > n.pausedUntil {
			n.pausedUntil = t
		}
		s.After(sim.Exp(n.rng, float64(cfg.GCMeanInterval)), gc)
	}
	s.After(sim.Exp(n.rng, float64(cfg.GCMeanInterval)), gc)

	var compact func()
	compact = func() {
		if !n.e.running() {
			return
		}
		n.compacting = true
		n.ioFactor = cfg.CompactIOFactor
		s.AfterDur(cfg.CompactDuration, func() {
			n.compacting = false
			n.ioFactor = 1
		})
		s.After(sim.Exp(n.rng, float64(cfg.CompactInterval)), compact)
	}
	s.After(sim.Exp(n.rng, float64(cfg.CompactInterval)), compact)

	for _, sl := range cfg.Slowdowns {
		if sl.Node != n.id {
			continue
		}
		sl := sl
		s.At(int64(sl.From), func() { n.slowFactor = sl.Factor })
		s.At(int64(sl.To), func() { n.slowFactor = 1 })
	}
}

// ---- storage path ----

// enqueue admits a job to the proper stage, starting service if a slot is
// free.
func (n *node) enqueue(j *job) {
	st := &n.read
	if j.isRead {
		n.e.res.PerNodeArrivals[n.id].Record(n.e.s.Now())
	} else {
		st = &n.write
	}
	if st.busy < st.slots {
		n.startJob(st, j)
		return
	}
	st.queue = append(st.queue, j)
}

// serviceTime draws the storage time for a job from the LSM cost model.
func (n *node) serviceTime(j *job) int64 {
	cfg := n.e.cfg
	var d float64
	if j.isRead {
		d = float64(sim.Exp(n.rng, float64(cfg.CPUMean)))
		if n.rng.Float64() < cfg.CacheMissProb {
			d += float64(sim.Exp(n.rng, float64(cfg.SeekMean))) * n.ioFactor
		}
		d += float64(j.sizeB) / 1024 * float64(cfg.SizeCostPerKB)
	} else {
		d = float64(sim.Exp(n.rng, float64(cfg.WriteMean)))
		d += float64(j.sizeB) / 1024 * float64(cfg.SizeCostPerKB) / 4
	}
	return int64(d * n.slowFactor)
}

// startJob begins service, deferring past a GC pause if one is active.
func (n *node) startJob(st *stage, j *job) {
	s := n.e.s
	st.busy++
	begin := s.Now()
	if n.pausedUntil > begin {
		begin = n.pausedUntil
	}
	d := n.serviceTime(j)
	s.At(begin+d, func() { n.completeJob(st, j, d) })
}

// completeJob finishes service (re-deferring if a GC pause landed mid-
// service), emits the response with piggybacked feedback, and pulls the next
// queued job.
func (n *node) completeJob(st *stage, j *job, d int64) {
	s := n.e.s
	if n.pausedUntil > s.Now() {
		// The stop-the-world pause freezes in-flight work too.
		at := n.pausedUntil
		s.At(at, func() { n.completeJob(st, j, d) })
		return
	}
	st.busy--
	if j.isRead {
		// Track served reads per 100 ms window (Figs. 2, 8, 9).
		n.e.res.PerNodeReads[n.id].Record(s.Now())
		// Server-side smoothed service time (the 1/µ_s feedback).
		n.svcEstNs = 0.2*float64(d) + 0.8*n.svcEstNs
	}
	fb := core.Feedback{
		QueueSize:   float64(n.read.pending()),
		ServiceTime: time.Duration(n.svcEstNs),
	}
	dst := j.from
	jj := j
	n.e.netDelay(n, dst, func() {
		if jj.isRead {
			dst.onReadReply(jj, fb)
		} else {
			dst.onWriteAck(jj)
		}
	})
	if next := st.pop(); next != nil {
		n.startJob(st, next)
	}
}

// ---- coordinator path ----

// readOp is a coordinator-side read operation.
type readOp struct {
	gen      *generator
	key      uint64
	sizeB    int
	tIssued  int64 // departure from the generator
	tStart   int64 // arrival at the coordinator
	group    int
	coord    *node
	done     bool
	needed   int // responses required (ReadConsistency)
	got      int
	repair   bool
	attempts int
	specEv   *sim.Event
	ranked   []core.ServerID // selection order at dispatch (for spec retry)
}

// writeOp is a coordinator-side update operation.
type writeOp struct {
	gen     *generator
	tIssued int64
	tStart  int64
	acked   bool
	coord   *node
}

// coordinateRead runs Algorithm 1 for one read arriving at this coordinator.
func (n *node) coordinateRead(op *readOp) {
	op.coord = n
	op.group = n.e.ring.GroupIndexFor(tokenOf(op.key))
	op.needed = n.e.cfg.ReadConsistency
	op.repair = n.rng.Float64() < n.e.cfg.ReadRepair
	sched := n.scheds[op.group]
	sched.Submit(op, n.e.s.Now(), n.dispatchRead)
	if sched.Backlog() > 0 {
		n.e.backpressured++
		if n.e.cfg.TraceRates {
			n.e.res.Backpressure = append(n.e.res.Backpressure, time.Duration(n.e.s.Now()))
		}
		n.armWake(op.group)
	}
}

// armWake schedules a backlog retry for one replica-group scheduler.
func (n *node) armWake(g int) {
	if n.waking[g] {
		return
	}
	at, ok := n.scheds[g].NextRetry(n.e.s.Now())
	if !ok {
		return
	}
	n.waking[g] = true
	if at <= n.e.s.Now() {
		at = n.e.s.Now() + 1
	}
	n.e.s.At(at, func() {
		n.waking[g] = false
		n.scheds[g].Drain(n.e.s.Now(), n.dispatchRead)
		if n.scheds[g].Backlog() > 0 {
			n.armWake(g)
		}
	})
}

// dispatchRead sends the read to its selected replica (plus the whole group
// on read repair) and arms the speculative-retry timer when configured.
func (n *node) dispatchRead(primary core.ServerID, op *readOp) {
	now := n.e.s.Now()
	op.attempts++
	op.ranked = append(op.ranked[:0], n.e.groups[op.group]...)
	// Move the primary to the front of the remembered order.
	for i, s := range op.ranked {
		if s == primary {
			op.ranked[0], op.ranked[i] = op.ranked[i], op.ranked[0]
			break
		}
	}
	n.sendRead(op, primary, now)
	sentTo := map[core.ServerID]bool{primary: true}
	// Quorum reads (§7 extension): consult the next best-ranked replicas
	// so the read completes at the ReadConsistency-th response.
	for i := 1; i < op.needed && i < len(op.ranked); i++ {
		s := op.ranked[i]
		n.sel.OnSend(s, now)
		n.sendRead(op, s, now)
		sentTo[s] = true
	}
	if op.repair {
		for _, s := range n.e.groups[op.group] {
			if !sentTo[s] {
				n.sel.OnSend(s, now)
				n.sendRead(op, s, now)
			}
		}
	}
	spec := n.e.cfg.Strategy == StratDSSpec || n.e.cfg.Strategy == StratC3Spec
	if spec && !op.repair && op.needed == 1 {
		n.armSpeculation(op)
	}
}

// sendRead models the coordinator→replica hop (free when local).
func (n *node) sendRead(op *readOp, replica core.ServerID, now int64) {
	target := n.e.nodes[int(replica)]
	j := &job{isRead: true, sizeB: op.sizeB, tSent: now, from: n, exec: target, op: op}
	n.e.netDelay(n, target, func() { target.enqueue(j) })
}

// armSpeculation schedules a duplicate read to the next-best replica if no
// response lands within the coordinator's observed p99 latency estimate.
func (n *node) armSpeculation(op *readOp) {
	wait := n.specWait()
	op.specEv = n.e.s.After(wait, func() {
		if op.done || op.attempts >= len(op.ranked) {
			return
		}
		next := op.ranked[op.attempts]
		op.attempts++
		n.e.res.SpeculativeRetries++
		n.sel.OnSend(next, n.e.s.Now())
		n.sendRead(op, next, n.e.s.Now())
	})
}

// specWait reports the current speculative-retry delay: the p99 of recent
// read latencies at this coordinator (floor 1 ms until warmed up).
func (n *node) specWait() int64 {
	count := n.latIdx
	if n.latFull {
		count = len(n.lat)
	}
	if count < 32 {
		return 10 * sim.Millisecond
	}
	buf := append([]float64(nil), n.lat[:count]...)
	// Quick selection via sort: 512 values, negligible cost.
	q := n.e.cfg.SpecRetryQuantile / 100
	idx := int(q * float64(count-1))
	// Partial selection: simple sort is fine at this size.
	sortFloats(buf)
	return int64(buf[idx] * 1e6)
}

func sortFloats(xs []float64) {
	// Insertion sort: the window is small and nearly sorted between calls.
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// onReadReply handles a replica's read response at the coordinator.
func (n *node) onReadReply(j *job, fb core.Feedback) {
	now := n.e.s.Now()
	op := j.op
	rtt := time.Duration(now - j.tSent)
	n.sel.OnResponse(core.ServerID(j.exec.id), fb, rtt, now)
	if op.done {
		return
	}
	op.got++
	if op.got < op.needed {
		return
	}
	op.done = true
	if op.specEv != nil {
		op.specEv.Cancel()
	}
	latMs := float64(now-op.tStart) / 1e6
	n.lat[n.latIdx] = latMs
	n.latIdx++
	if n.latIdx == len(n.lat) {
		n.latIdx = 0
		n.latFull = true
	}
	// Reply to the generator.
	n.e.netDelay(nil, nil, func() { op.gen.onReadDone(op, latMs) })
	// A response may free rate for backlogged work.
	sched := n.scheds[op.group]
	if sched.Backlog() > 0 {
		sched.Drain(now, n.dispatchRead)
		if sched.Backlog() > 0 {
			n.armWake(op.group)
		}
	}
}

// coordinateWrite fans an update out to every replica; CL=ONE acks on the
// first response.
func (n *node) coordinateWrite(wr *writeOp, key uint64, sizeB int) {
	wr.coord = n
	now := n.e.s.Now()
	group := n.e.groups[n.e.ring.GroupIndexFor(tokenOf(key))]
	for _, r := range group {
		target := n.e.nodes[int(r)]
		j := &job{isRead: false, sizeB: sizeB, tSent: now, from: n, exec: target, wr: wr}
		n.e.netDelay(n, target, func() { target.enqueue(j) })
	}
}

// onWriteAck completes an update at the first replica ack.
func (n *node) onWriteAck(j *job) {
	wr := j.wr
	if wr.acked {
		return
	}
	wr.acked = true
	latMs := float64(n.e.s.Now()-wr.tStart) / 1e6
	n.e.netDelay(nil, nil, func() { wr.gen.onWriteDone(latMs) })
}

// tokenOf maps an item to its ring token through its YCSB key string,
// exactly as a real client would partition it.
func tokenOf(item uint64) int64 {
	return ring.Token([]byte(workload.Key(item)))
}
