package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"c3/internal/kvstore"
	"c3/internal/sim"
	"c3/internal/workload"
)

// The elastic experiment: p99 trajectory of the live store through a node
// JOIN and a node DECOMMISSION under steady load — the regime where adaptive
// selection must re-converge after the replica sets themselves change
// (membership churn, the scenario class the paper's §5.4 fluctuations only
// approximate). Each strategy runs the same timeline:
//
//	steady window → live join (stream + cutover) → post-join window →
//	decommission of the joined node → post-decommission window
//
// and the record keeps the full 100 ms p99 trajectory plus phase aggregates.
// The headline number is reconvergence: post-join p99 over steady p99 — an
// adaptive selector should settle within a few hundred milliseconds of the
// cutover and end at or below its steady tail, since the join added capacity.

// ElasticPoint is one 100 ms window of the read-latency trajectory.
type ElasticPoint struct {
	TMs   float64 `json:"t_ms"`
	Reads int     `json:"reads"`
	P50Us float64 `json:"p50_us"`
	P99Us float64 `json:"p99_us"`
}

// ElasticRow is one strategy's run.
type ElasticRow struct {
	Strategy     string  `json:"strategy"`
	Ops          int     `json:"ops"`
	Errors       int     `json:"errors"`
	JoinStartMs  float64 `json:"join_start_ms"`
	JoinDoneMs   float64 `json:"join_done_ms"`
	DecomStartMs float64 `json:"decom_start_ms"`
	DecomDoneMs  float64 `json:"decom_done_ms"`
	// Phase aggregates (read p99 in µs): the steady pre-join window, the
	// join transition itself (join start → +settle), the post-join steady
	// state, and the post-decommission steady state.
	SteadyP99Us    float64 `json:"steady_p99_us"`
	JoinP99Us      float64 `json:"join_window_p99_us"`
	PostJoinP99Us  float64 `json:"post_join_p99_us"`
	PostDecomP99Us float64 `json:"post_decom_p99_us"`
	// Reconvergence is post-join p99 / steady p99 — the acceptance metric
	// (≤ 1.2 means the selector re-settled within 20% of steady state).
	Reconvergence float64 `json:"reconvergence"`
	// JoinerReads counts reads the joined node's storage served before it
	// was decommissioned — proof the cutover actually moved traffic.
	JoinerReads uint64 `json:"joiner_reads"`
	// OutstandingResidual is the cluster-wide selector accounting left after
	// the run quiesced — any non-zero value is a leak.
	OutstandingResidual float64        `json:"outstanding_residual"`
	Trajectory          []ElasticPoint `json:"trajectory"`
}

// ElasticResult is the machine-readable record of the elastic benchmark
// (BENCH_elastic.json).
type ElasticResult struct {
	Config          Meta         `json:"config"`
	Nodes           int          `json:"nodes"`
	Workers         int          `json:"workers"`
	Keys            int          `json:"keys"`
	ValueBytes      int          `json:"value_bytes"`
	ReadFraction    float64      `json:"read_fraction"`
	ReadDelayMeanUs float64      `json:"read_delay_mean_us"`
	Rows            []ElasticRow `json:"rows"`
}

const (
	elasticNodes        = 4
	elasticWorkers      = 6
	elasticKeys         = 512
	elasticValueBytes   = 128
	elasticReadFraction = 0.9
	elasticReadDelay    = 1 * time.Millisecond
	elasticWindow       = 100 * time.Millisecond
	// elasticSettle is how long after a membership cutover the join window
	// extends before the post-join phase starts counting — re-convergence
	// time granted to the selectors.
	elasticSettle = 300 * time.Millisecond
)

// elasticPhases reports the steady/post-join/post-decom phase durations.
func (o Options) elasticPhases() (steady, postJoin, postDecom time.Duration) {
	switch o.Scale {
	case Full:
		return 4 * time.Second, 4 * time.Second, 3 * time.Second
	case Medium:
		return 2 * time.Second, 2 * time.Second, 1500 * time.Millisecond
	default:
		return 500 * time.Millisecond, 500 * time.Millisecond, 400 * time.Millisecond
	}
}

// elasticStrategies reports the strategies compared at the scale.
func (o Options) elasticStrategies() []string {
	if o.Scale == Quick {
		return []string{kvstore.StratC3}
	}
	return []string{kvstore.StratC3, kvstore.StratRR}
}

// elasticSample is one timed read.
type elasticSample struct {
	atMs  float64
	latUs float64
}

// runElasticRow drives one strategy through the join/decommission timeline.
func runElasticRow(o Options, strategy string, seed uint64) (ElasticRow, error) {
	row := ElasticRow{Strategy: strategy}
	steadyDur, postJoinDur, postDecomDur := o.elasticPhases()
	cfg := kvstore.Config{
		Strategy:      strategy,
		Seed:          seed,
		ReadDelayMean: elasticReadDelay,
	}
	cluster, err := kvstore.StartCluster(elasticNodes, cfg)
	if err != nil {
		return row, err
	}
	defer cluster.Close()
	cl, err := kvstore.Dial(cluster.Addrs())
	if err != nil {
		return row, err
	}
	defer cl.Close()

	keys := make([]string, elasticKeys)
	val := make([]byte, elasticValueBytes)
	for i := range val {
		val[i] = byte(i)
	}
	for i := range keys {
		keys[i] = fmt.Sprintf("elastic-%05d", i)
		if err := cl.Put(keys[i], val); err != nil {
			return row, err
		}
	}
	for i := range keys { // CL=ONE: wait until readable from any coordinator
		for attempt := 0; ; attempt++ {
			if _, ok, err := cl.Get(keys[i]); err == nil && ok {
				break
			} else if attempt > 200 {
				return row, fmt.Errorf("bench: key %q never became readable: %v", keys[i], err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	var stop atomic.Bool
	zipf := workload.NewScrambled(elasticKeys, 0.99)
	samples := make([][]elasticSample, elasticWorkers)
	errCounts := make([]int, elasticWorkers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < elasticWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := sim.RNG(seed, uint64(w)+29)
			local := make([]elasticSample, 0, 16384)
			for !stop.Load() {
				k := keys[int(zipf.Next(r))%elasticKeys]
				if r.Float64() < elasticReadFraction {
					t0 := time.Now()
					_, ok, err := cl.Get(k)
					d := time.Since(t0)
					if err != nil || !ok {
						errCounts[w]++
						continue
					}
					local = append(local, elasticSample{
						atMs:  float64(t0.Sub(start).Microseconds()) / 1e3,
						latUs: float64(d.Nanoseconds()) / 1e3,
					})
				} else if err := cl.Put(k, val); err != nil {
					errCounts[w]++
				}
			}
			samples[w] = local
		}(w)
	}

	// The timeline: steady → join → post-join → decommission → post-decom.
	elapsedMs := func() float64 { return float64(time.Since(start).Microseconds()) / 1e3 }
	time.Sleep(steadyDur)
	row.JoinStartMs = elapsedMs()
	joined, err := cluster.Join(kvstore.Config{
		Strategy:      strategy,
		Seed:          seed ^ 0xe1a5,
		ReadDelayMean: elasticReadDelay,
	})
	if err != nil {
		stop.Store(true)
		wg.Wait()
		return row, fmt.Errorf("join: %w", err)
	}
	row.JoinDoneMs = elapsedMs()
	time.Sleep(postJoinDur)
	row.DecomStartMs = elapsedMs()
	if err := joined.Decommission(); err != nil {
		stop.Store(true)
		wg.Wait()
		return row, fmt.Errorf("decommission: %w", err)
	}
	row.DecomDoneMs = elapsedMs()
	time.Sleep(elasticSettle)
	row.JoinerReads = joined.ReadsServed()
	joined.Close()
	cluster.Nodes = cluster.Nodes[:elasticNodes]
	time.Sleep(postDecomDur)
	stop.Store(true)
	wg.Wait()
	endMs := elapsedMs()

	// Quiesce, then read the accounting residual across surviving nodes.
	residual := func() float64 {
		total := 0.0
		for _, n := range cluster.Nodes {
			for p := 0; p <= joined.ID(); p++ {
				total += n.OutstandingToward(p)
			}
		}
		return total
	}
	deadline := time.Now().Add(2 * time.Second)
	for residual() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	row.OutstandingResidual = residual()

	var all []elasticSample
	for w := range samples {
		all = append(all, samples[w]...)
		row.Errors += errCounts[w]
	}
	row.Ops = len(all)
	sort.Slice(all, func(i, j int) bool { return all[i].atMs < all[j].atMs })

	// Phase aggregates.
	phaseP99 := func(fromMs, toMs float64) float64 {
		lats := make([]float64, 0, 4096)
		for _, s := range all {
			if s.atMs >= fromMs && s.atMs < toMs {
				lats = append(lats, s.latUs)
			}
		}
		return percentileOf(lats, 99)
	}
	settleMs := float64(elasticSettle.Microseconds()) / 1e3
	row.SteadyP99Us = phaseP99(0, row.JoinStartMs)
	row.JoinP99Us = phaseP99(row.JoinStartMs, row.JoinDoneMs+settleMs)
	row.PostJoinP99Us = phaseP99(row.JoinDoneMs+settleMs, row.DecomStartMs)
	row.PostDecomP99Us = phaseP99(row.DecomDoneMs+settleMs, endMs)
	if row.SteadyP99Us > 0 {
		row.Reconvergence = row.PostJoinP99Us / row.SteadyP99Us
	}

	// Trajectory: 100 ms windows.
	windowMs := float64(elasticWindow.Microseconds()) / 1e3
	for lo := 0.0; lo < endMs; lo += windowMs {
		lats := make([]float64, 0, 1024)
		for _, s := range all {
			if s.atMs >= lo && s.atMs < lo+windowMs {
				lats = append(lats, s.latUs)
			}
		}
		if len(lats) == 0 {
			continue
		}
		row.Trajectory = append(row.Trajectory, ElasticPoint{
			TMs:   lo,
			Reads: len(lats),
			P50Us: percentileOf(lats, 50),
			P99Us: percentileOf(lats, 99),
		})
	}
	return row, nil
}

// percentileOf reports the pth percentile of lats (nearest rank; 0 when
// empty).
func percentileOf(lats []float64, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sort.Float64s(lats)
	idx := int(p / 100 * float64(len(lats)-1))
	return lats[idx]
}

// RunElastic executes the strategy sweep.
func RunElastic(o Options) (ElasticResult, error) {
	res := ElasticResult{
		Config:          o.meta(runtime.GOMAXPROCS(0), SyncInMemory),
		Nodes:           elasticNodes,
		Workers:         elasticWorkers,
		Keys:            elasticKeys,
		ValueBytes:      elasticValueBytes,
		ReadFraction:    elasticReadFraction,
		ReadDelayMeanUs: float64(elasticReadDelay) / 1e3,
	}
	seed := uint64(11)
	for _, strategy := range o.elasticStrategies() {
		row, err := runElasticRow(o, strategy, seed)
		if err != nil {
			return res, fmt.Errorf("elastic %s: %w", strategy, err)
		}
		res.Rows = append(res.Rows, row)
		seed += 977
	}
	return res, nil
}

// writeElasticJSON writes the machine-readable record to path.
func writeElasticJSON(res ElasticResult, path string) error {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}

// Elastic is the runner for the membership benchmark: the p99 trajectory of
// the live store through a join and a decommission under load. With
// Options.ElasticJSONPath set it also writes BENCH_elastic.json.
func Elastic(o Options) *Report {
	r := newReport("elastic", "membership churn: p99 through a live join and decommission")
	res, err := RunElastic(o)
	if err != nil {
		r.fail(err)
		return r
	}
	r.printf("%d→%d→%d nodes, %d workers, %.0f%% reads, storage delay %.1fms",
		res.Nodes, res.Nodes+1, res.Nodes, res.Workers, res.ReadFraction*100,
		res.ReadDelayMeanUs/1e3)
	for _, row := range res.Rows {
		r.printf("  %-3s steady p99=%7.0fµs | join window p99=%7.0fµs | post-join p99=%7.0fµs (×%.2f) | post-decom p99=%7.0fµs | joiner served %d | errs=%d resid=%.0f",
			row.Strategy, row.SteadyP99Us, row.JoinP99Us, row.PostJoinP99Us,
			row.Reconvergence, row.PostDecomP99Us, row.JoinerReads, row.Errors,
			row.OutstandingResidual)
		r.printf("      join %0.0f→%0.0fms, decommission %0.0f→%0.0fms, %d reads measured",
			row.JoinStartMs, row.JoinDoneMs, row.DecomStartMs, row.DecomDoneMs, row.Ops)
	}
	for _, row := range res.Rows {
		key := "elastic_" + row.Strategy
		r.Metric(key+"_steady_p99_us", row.SteadyP99Us)
		r.Metric(key+"_post_join_p99_us", row.PostJoinP99Us)
		r.Metric(key+"_reconvergence", row.Reconvergence)
		r.Metric(key+"_outstanding_residual", row.OutstandingResidual)
	}
	if o.ElasticJSONPath != "" {
		if err := writeElasticJSON(res, o.ElasticJSONPath); err != nil {
			r.printf("write %s: %v", o.ElasticJSONPath, err)
		} else {
			r.printf("wrote %s", o.ElasticJSONPath)
		}
	}
	return r
}
