// Package ratelimit implements C3's distributed rate control (§3.2 of the
// paper): a per-(client, server) token bucket whose sending rate (srate,
// permitted requests per δ-wide window) adapts with a CUBIC-inspired control
// law against the measured receive rate (rrate, responses per δ window).
//
//   - When the flow shows saturation — responses persistently lagging the
//     requests actually sent — and a hysteresis period has passed, the client
//     remembers the saturation rate R0 = srate and multiplicatively decreases
//     srate by β.
//   - When srate lags the receive rate, the client raises srate along the
//     cubic curve γ·(ΔT − ∛(β·R0/γ))³ + R0, where ΔT is the time since the
//     last decrease, with each step capped at smax. The curve yields the
//     paper's three operating regions: steep recovery at low rates, a saddle
//     around R0, and optimistic probing beyond it (Fig. 5).
//
// Measurement detail: the paper compares srate against the count of
// responses in the last δ window. With many clients and servers, per-pair
// traffic is sparse (fractions of a request per window), so raw single-window
// counts are Poisson noise and srate (an allowance, not a measurement) says
// nothing about saturation when the flow is idle. This implementation
// therefore (a) compares the smoothed *actual* send rate against the smoothed
// receive rate for decreases, and (b) smooths both meters with a per-window
// EWMA on a single shared window clock. Under a saturated flow — the regime
// the paper's condition targets — sent ≈ srate and the two conditions agree.
//
// The controller is driven entirely by explicit timestamps so that it behaves
// identically under simulated and wall-clock time.
package ratelimit

import "math"

// Config holds the tunables of the cubic rate controller. The defaults
// (DefaultConfig) are the values used in the paper's evaluation (§4).
type Config struct {
	// Interval is δ, the width of a rate window in nanoseconds. Rates are
	// expressed in requests per Interval. Default 20 ms.
	Interval int64
	// Beta is the multiplicative decrease factor. Default 0.2.
	Beta float64
	// Gamma scales the cubic growth curve and hence the saddle length.
	// The paper tunes γ for a ≈100 ms saddle region; DefaultConfig does
	// the same for a saturation rate around the initial rate.
	Gamma float64
	// SMax caps a single rate-increase step. Default 10.
	SMax float64
	// Hysteresis is the minimum time between rate adaptations in opposite
	// directions, giving measurements time to catch up. Default 2δ.
	Hysteresis int64
	// InitialRate is the starting srate in requests per Interval.
	InitialRate float64
	// MinRate floors srate so a throttled server keeps being probed.
	MinRate float64
	// MaxRate caps srate (and the cubic curve, which otherwise grows
	// without bound as ΔT³).
	MaxRate float64
	// DecreaseMargin is the relative shortfall of the receive rate below
	// the send rate required to call the flow saturated. Default 0.1.
	DecreaseMargin float64
	// SmoothAlpha is the per-window EWMA factor for the send/receive
	// meters. Default 0.2 (≈5-window horizon).
	SmoothAlpha float64
	// LiteralDecrease switches the saturation test to the paper's literal
	// Algorithm 2 condition — decrease whenever the *allowance* srate
	// exceeds the measured receive rate. On sparse flows this reads
	// idleness as overload and collapses srate toward the floor (which is
	// precisely the behaviour visible in the paper's Fig. 13 trace: rates
	// pinned near 1 during degradation, with optimistic probes above).
	// The default, robust rule compares actual sends against receipts.
	LiteralDecrease bool
}

// DefaultConfig returns the paper's §4 parameter choices: δ = 20 ms, β = 0.2,
// smax = 10, hysteresis = 2δ, and γ set for a saddle region of roughly 100 ms.
func DefaultConfig() Config {
	cfg := Config{
		Interval:       20 * 1e6, // 20ms in ns
		Beta:           0.2,
		SMax:           10,
		InitialRate:    10,
		MinRate:        0.5,
		MaxRate:        10000,
		DecreaseMargin: 0.1,
		SmoothAlpha:    0.2,
	}
	cfg.Hysteresis = 2 * cfg.Interval
	cfg.Gamma = GammaForSaddle(cfg.Beta, cfg.InitialRate, 100*1e6)
	return cfg
}

// GammaForSaddle computes γ so that the plateau of the cubic curve (the time
// from the last decrease until the curve returns to R0) lasts saddleNanos for
// a saturation rate r0: the curve's inflection sits at K = ∛(β·R0/γ) seconds,
// so γ = β·R0/K³.
func GammaForSaddle(beta, r0 float64, saddleNanos int64) float64 {
	k := float64(saddleNanos) / 1e9 // seconds
	if k <= 0 || r0 <= 0 || beta <= 0 {
		panic("ratelimit: saddle, beta and r0 must be positive")
	}
	return beta * r0 / (k * k * k)
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Interval <= 0 {
		c.Interval = d.Interval
	}
	if c.Beta <= 0 {
		c.Beta = d.Beta
	}
	if c.SMax <= 0 {
		c.SMax = d.SMax
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 2 * c.Interval
	}
	if c.InitialRate <= 0 {
		c.InitialRate = d.InitialRate
	}
	if c.MinRate <= 0 {
		c.MinRate = d.MinRate
	}
	if c.MaxRate <= 0 {
		c.MaxRate = d.MaxRate
	}
	if c.Gamma <= 0 {
		c.Gamma = GammaForSaddle(c.Beta, c.InitialRate, 100*1e6)
	}
	if c.DecreaseMargin <= 0 {
		c.DecreaseMargin = d.DecreaseMargin
	}
	if c.SmoothAlpha <= 0 || c.SmoothAlpha > 1 {
		c.SmoothAlpha = d.SmoothAlpha
	}
	return c
}

// Cubic is the per-server rate limiter: a token bucket refilled at srate
// tokens per δ, where srate follows the cubic adaptation law.
type Cubic struct {
	cfg Config

	srate float64 // current sending rate, requests per δ
	r0    float64 // saturation rate at last decrease
	tDec  int64   // time of last rate decrease
	tInc  int64   // time of last rate increase

	// Token bucket and the shared window clock.
	tokens   float64
	winStart int64
	begun    bool

	// Per-window meters: raw counts for the current window, EWMAs over
	// completed windows.
	sentWin, recvWin float64
	sentSm, recvSm   float64
	windows          uint64 // completed windows

	decreases, increases uint64
}

// New returns a controller with cfg (zero fields take defaults).
func New(cfg Config) *Cubic {
	cfg = cfg.withDefaults()
	return &Cubic{
		cfg:    cfg,
		srate:  cfg.InitialRate,
		r0:     cfg.InitialRate,
		tokens: math.Max(cfg.InitialRate, 1),
	}
}

// Rate reports the current sending rate in requests per δ.
func (c *Cubic) Rate() float64 { return c.srate }

// SaturationRate reports R0, the remembered saturation rate.
func (c *Cubic) SaturationRate() float64 { return c.r0 }

// ReceiveRate reports the smoothed responses-per-δ measurement.
func (c *Cubic) ReceiveRate(now int64) float64 {
	c.roll(now)
	return c.recvSm
}

// SendRateMeasured reports the smoothed admitted-sends-per-δ measurement.
func (c *Cubic) SendRateMeasured(now int64) float64 {
	c.roll(now)
	return c.sentSm
}

// Decreases and Increases report how many rate adaptations have occurred;
// experiments use them to trace controller activity (Fig. 13).
func (c *Cubic) Decreases() uint64 { return c.decreases }
func (c *Cubic) Increases() uint64 { return c.increases }

// Interval reports δ in nanoseconds.
func (c *Cubic) Interval() int64 { return c.cfg.Interval }

// roll advances the shared window clock to now: completed windows fold their
// counts into the smoothed meters and refill the token bucket.
func (c *Cubic) roll(now int64) {
	if !c.begun {
		c.winStart = now
		c.begun = true
		return
	}
	if now < c.winStart+c.cfg.Interval {
		return
	}
	steps := (now - c.winStart) / c.cfg.Interval
	a := c.cfg.SmoothAlpha
	fold := func(sent, recv float64) {
		if c.windows == 0 {
			c.sentSm, c.recvSm = sent, recv
		} else {
			c.sentSm = a*sent + (1-a)*c.sentSm
			c.recvSm = a*recv + (1-a)*c.recvSm
		}
		c.windows++
	}
	fold(c.sentWin, c.recvWin)
	if empty := steps - 1; empty > 0 {
		// A long idle gap decays both meters; cap the loop — beyond
		// ~40 empty windows the EWMAs are numerically zero anyway.
		n := empty
		if n > 40 {
			c.sentSm, c.recvSm = 0, 0
			c.windows += uint64(empty)
		} else {
			for i := int64(0); i < n; i++ {
				fold(0, 0)
			}
		}
	}
	c.sentWin, c.recvWin = 0, 0
	c.winStart += steps * c.cfg.Interval
	c.tokens += float64(steps) * c.srate
	if burst := math.Max(c.srate, 1); c.tokens > burst {
		c.tokens = burst
	}
}

// TryAcquire consumes one send token if available, reporting whether the
// request may be sent now ("s within srate_s" in Algorithm 1).
func (c *Cubic) TryAcquire(now int64) bool {
	c.roll(now)
	if c.tokens >= 1 {
		c.tokens--
		c.sentWin++
		return true
	}
	return false
}

// NextAvailable reports the earliest time at or after now when TryAcquire
// could succeed, assuming the rate does not change. Backpressure schedulers
// use it to decide when to retry a backlogged request.
func (c *Cubic) NextAvailable(now int64) int64 {
	c.roll(now)
	if c.tokens >= 1 {
		return now
	}
	need := 1 - c.tokens
	rate := math.Max(c.srate, c.cfg.MinRate)
	windows := int64(math.Ceil(need / rate))
	if windows < 1 {
		windows = 1
	}
	return c.winStart + windows*c.cfg.Interval
}

// OnResponse records a received response at time now and runs one step of the
// cubic adaptation (Algorithm 2, lines 2–11).
func (c *Cubic) OnResponse(now int64) {
	c.roll(now)
	c.recvWin++
	// Saturation evidence requires at least a few completed measurement
	// windows; adapting on a cold meter reads silence as overload.
	warm := c.windows >= 3
	saturated := c.sentSm > 0 && c.recvSm < c.sentSm*(1-c.cfg.DecreaseMargin)
	if c.cfg.LiteralDecrease {
		saturated = c.srate > c.recvSm
	}
	switch {
	case warm && saturated &&
		now-c.tInc > c.cfg.Hysteresis && now-c.tDec > c.cfg.Hysteresis:
		c.r0 = c.srate
		c.srate = math.Max(c.cfg.MinRate, c.srate*c.cfg.Beta)
		c.tDec = now
		c.decreases++
		// Shrink stored burst so the new rate takes effect promptly.
		if burst := math.Max(c.srate, 1); c.tokens > burst {
			c.tokens = burst
		}
	case c.srate < c.recvSm ||
		(warm && c.recvSm >= c.sentSm*(1-c.cfg.DecreaseMargin) && c.sentSm >= c.srate*0.5):
		// Either the server demonstrably delivers more than the current
		// allowance (the paper's literal condition), or the flow is
		// actively using its allowance and the server keeps pace — in
		// both cases probe upward along the cubic curve.
		dt := float64(now-c.tDec) / 1e9 // seconds since last decrease
		c.tInc = now
		k := math.Cbrt(c.cfg.Beta * c.r0 / c.cfg.Gamma)
		target := c.cfg.Gamma*math.Pow(dt-k, 3) + c.r0
		next := math.Min(c.srate+c.cfg.SMax, target)
		if next > c.srate {
			c.srate = math.Min(next, c.cfg.MaxRate)
			c.increases++
		}
	}
}

// CurveAt evaluates the raw cubic growth curve at ΔT nanoseconds after a
// decrease from saturation rate r0 (used to render Fig. 5).
func CurveAt(cfg Config, r0 float64, deltaT int64) float64 {
	cfg = cfg.withDefaults()
	dt := float64(deltaT) / 1e9
	k := math.Cbrt(cfg.Beta * r0 / cfg.Gamma)
	return cfg.Gamma*math.Pow(dt-k, 3) + r0
}
