package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecode throws adversarial bytes at every payload parser and at the
// frame reader. The invariant under fuzzing is purely defensive: no decoder
// may panic or read out of bounds, whatever the bytes; errors are fine.
func FuzzDecode(f *testing.F) {
	// Seed with one well-formed payload per message type (frame header
	// stripped) plus classic edge cases.
	seed := func(enc func([]byte) ([]byte, error)) []byte {
		b, err := enc(nil)
		if err != nil {
			f.Fatal(err)
		}
		return b[5:]
	}
	f.Add(seed(func(dst []byte) ([]byte, error) {
		return AppendReadReq(dst, MsgRead, ReadReq{ID: 1, Key: "user0001"})
	}))
	f.Add(seed(func(dst []byte) ([]byte, error) {
		return AppendReadResp(dst, ReadResp{ID: 2, Found: true, Value: []byte("value"),
			FB: Feedback{QueueSize: 1.5, ServiceNs: 1000}})
	}))
	f.Add(seed(func(dst []byte) ([]byte, error) {
		return AppendWriteReq(dst, MsgWrite, WriteReq{ID: 3, Key: "k", Value: []byte("v")})
	}))
	f.Add(seed(func(dst []byte) ([]byte, error) {
		return AppendWriteResp(dst, WriteResp{ID: 4, OK: true})
	}))
	f.Add(seed(func(dst []byte) ([]byte, error) {
		return AppendBatchReadReq(dst, MsgBatchRead, BatchReadReq{ID: 5, Keys: []string{"a", "bb", ""}})
	}))
	f.Add(seed(func(dst []byte) ([]byte, error) {
		return AppendBatchReadResp(dst, BatchReadResp{ID: 6, Items: []BatchItem{
			{Found: true, Value: []byte("x")}, {Found: false}}})
	}))
	f.Add(seed(func(dst []byte) ([]byte, error) {
		return AppendBatchWriteReq(dst, MsgBatchWrite, BatchWriteReq{ID: 7,
			Keys: []string{"k0", "k1"}, Values: [][]byte{[]byte("v0"), nil}})
	}))
	f.Add(seed(func(dst []byte) ([]byte, error) {
		return AppendBatchWriteResp(dst, BatchWriteResp{ID: 8, OK: []bool{true, false}})
	}))
	f.Add(seed(func(dst []byte) ([]byte, error) {
		return AppendRingUpdate(dst, RingUpdate{ID: 9, Epoch: 2, RF: 2, Phase: PhaseJoin,
			Subject: 2, Nodes: []RingNode{
				{ID: 0, Token: -10, Addr: "127.0.0.1:1"},
				{ID: 1, Token: 0, Addr: "127.0.0.1:2"},
				{ID: 2, Token: 10, Addr: "127.0.0.1:3"},
			}})
	}))
	f.Add(seed(func(dst []byte) ([]byte, error) {
		return AppendRingAck(dst, RingAck{ID: 10, Epoch: 3})
	}))
	f.Add(seed(func(dst []byte) ([]byte, error) {
		return AppendJoinReq(dst, JoinReq{ID: 11, Addr: "127.0.0.1:9"})
	}))
	f.Add(seed(func(dst []byte) ([]byte, error) {
		// A wrapping (Start ≥ End) arc: legal, must round-trip.
		return AppendStreamReq(dst, StreamReq{ID: 12, Epoch: 4, Start: 100, End: -100, Cursor: "k"})
	}))
	f.Add(seed(func(dst []byte) ([]byte, error) {
		return AppendStreamChunk(dst, StreamChunk{ID: 13, Epoch: 4, Done: true,
			Keys: []string{"a", "b"}, Values: [][]byte{[]byte("x"), nil}})
	}))
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	// Count field claiming more items than the payload carries.
	hdr := binary.LittleEndian.AppendUint64(nil, 9)
	f.Add(binary.LittleEndian.AppendUint16(hdr, 4000))

	f.Fuzz(func(t *testing.T, b []byte) {
		// Every parser must survive every input. Reuse scratch across calls
		// like the serving loops do, so the fuzzer also exercises slice reuse.
		ParseReadReq(b)
		ParseReadResp(b)
		ParseWriteReq(b)
		ParseWriteResp(b)
		keys := make([]string, 0, 4)
		items := make([]BatchItem, 0, 4)
		vals := make([][]byte, 0, 4)
		oks := make([]bool, 0, 4)
		if m, err := ParseBatchReadReq(b, keys); err == nil {
			// A successful decode must re-encode and decode back identically:
			// the round-trip direction of the fuzz contract.
			enc, err := AppendBatchReadReq(nil, MsgBatchRead, m)
			if err != nil {
				t.Fatalf("re-encode of decoded batch read req failed: %v", err)
			}
			back, err := ParseBatchReadReq(enc[5:], nil)
			if err != nil || back.ID != m.ID || len(back.Keys) != len(m.Keys) {
				t.Fatalf("re-decode mismatch: %+v vs %+v (err=%v)", back, m, err)
			}
			for i := range m.Keys {
				if back.Keys[i] != m.Keys[i] {
					t.Fatalf("key %d changed across round-trip", i)
				}
			}
		}
		if m, err := ParseBatchReadResp(b, items); err == nil {
			enc, err := AppendBatchReadResp(nil, m)
			if err == nil {
				back, err := ParseBatchReadResp(enc[5:], nil)
				if err != nil || len(back.Items) != len(m.Items) {
					t.Fatalf("batch read resp re-decode mismatch (err=%v)", err)
				}
			}
		}
		if m, err := ParseBatchWriteReq(b, keys[:0], vals); err == nil {
			enc, err := AppendBatchWriteReq(nil, MsgBatchWrite, m)
			if err == nil {
				back, err := ParseBatchWriteReq(enc[5:], nil, nil)
				if err != nil || len(back.Keys) != len(m.Keys) {
					t.Fatalf("batch write req re-decode mismatch (err=%v)", err)
				}
			}
		}
		if m, err := ParseBatchWriteResp(b, oks); err == nil {
			enc, err := AppendBatchWriteResp(nil, m)
			if err != nil {
				t.Fatalf("re-encode of decoded batch write resp failed: %v", err)
			}
			back, err := ParseBatchWriteResp(enc[5:], nil)
			if err != nil || len(back.OK) != len(m.OK) {
				t.Fatalf("batch write resp re-decode mismatch (err=%v)", err)
			}
		}
		if m, err := ParseRingUpdate(b); err == nil {
			enc, err := AppendRingUpdate(nil, m)
			if err != nil {
				t.Fatalf("re-encode of decoded ring update failed: %v", err)
			}
			back, err := ParseRingUpdate(enc[5:])
			if err != nil || back.ID != m.ID || back.Epoch != m.Epoch || back.RF != m.RF ||
				back.Phase != m.Phase || back.Subject != m.Subject || len(back.Nodes) != len(m.Nodes) {
				t.Fatalf("ring update re-decode mismatch: %+v vs %+v (err=%v)", back, m, err)
			}
			for i := range m.Nodes {
				if back.Nodes[i] != m.Nodes[i] {
					t.Fatalf("ring node %d changed across round-trip", i)
				}
			}
		}
		if m, err := ParseRingAck(b); err == nil {
			enc, err := AppendRingAck(nil, m)
			if err != nil {
				t.Fatalf("re-encode of decoded ring ack failed: %v", err)
			}
			if back, err := ParseRingAck(enc[5:]); err != nil || back != m {
				t.Fatalf("ring ack re-decode mismatch (err=%v)", err)
			}
		}
		if m, err := ParseJoinReq(b); err == nil {
			enc, err := AppendJoinReq(nil, m)
			if err == nil {
				if back, err := ParseJoinReq(enc[5:]); err != nil || back != m {
					t.Fatalf("join req re-decode mismatch (err=%v)", err)
				}
			}
		}
		if m, err := ParseStreamReq(b); err == nil {
			enc, err := AppendStreamReq(nil, m)
			if err == nil {
				if back, err := ParseStreamReq(enc[5:]); err != nil || back != m {
					t.Fatalf("stream req re-decode mismatch (err=%v)", err)
				}
			}
		}
		if m, err := ParseStreamChunk(b, nil, nil); err == nil {
			enc, err := AppendStreamChunk(nil, m)
			if err != nil {
				t.Fatalf("re-encode of decoded stream chunk failed: %v", err)
			}
			back, err := ParseStreamChunk(enc[5:], nil, nil)
			if err != nil || back.ID != m.ID || back.Status != m.Status ||
				back.Epoch != m.Epoch || back.Done != m.Done || len(back.Keys) != len(m.Keys) {
				t.Fatalf("stream chunk re-decode mismatch (err=%v)", err)
			}
			for i := range m.Keys {
				if back.Keys[i] != m.Keys[i] || !bytes.Equal(back.Values[i], m.Values[i]) {
					t.Fatalf("stream item %d changed across round-trip", i)
				}
			}
		}
		// The frame reader must also survive raw adversarial bytes.
		r := NewReader(bytes.NewReader(b))
		for {
			if _, _, err := r.Next(); err != nil {
				break
			}
		}
	})
}

// FuzzRoundTrip drives the encode direction with structured inputs: whatever
// batch the fuzzer assembles, encoding must either fail cleanly or produce a
// frame that decodes back bit-exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(1), []byte("alpha\x00beta\x00gamma"), []byte("v1\x00v2\x00v3"), true)
	f.Add(uint64(0), []byte(""), []byte(""), false)
	f.Add(uint64(1<<63), []byte("\x00\x00"), []byte("x"), true)

	f.Fuzz(func(t *testing.T, id uint64, keyBlob, valBlob []byte, read bool) {
		keys := splitBlob(keyBlob)
		if len(keys) == 0 || len(keys) > MaxBatchKeys {
			return
		}
		if read {
			in := BatchReadReq{ID: id, Keys: keys}
			enc, err := AppendBatchReadReq(nil, MsgBatchRead, in)
			if err != nil {
				return // cleanly rejected (e.g. oversized key)
			}
			r := NewReader(bytes.NewReader(enc))
			typ, payload, err := r.Next()
			if err != nil || typ != MsgBatchRead {
				t.Fatalf("frame: typ=%d err=%v", typ, err)
			}
			out, err := ParseBatchReadReq(payload, nil)
			if err != nil || out.ID != id || len(out.Keys) != len(keys) {
				t.Fatalf("decode: %+v err=%v", out, err)
			}
			for i := range keys {
				if out.Keys[i] != keys[i] {
					t.Fatalf("key %d: %q != %q", i, out.Keys[i], keys[i])
				}
			}
			return
		}
		vals := make([][]byte, len(keys))
		vparts := splitBlob(valBlob)
		for i := range vals {
			if i < len(vparts) {
				vals[i] = []byte(vparts[i])
			}
		}
		in := BatchWriteReq{ID: id, Keys: keys, Values: vals}
		enc, err := AppendBatchWriteReq(nil, MsgBatchWrite, in)
		if err != nil {
			return
		}
		r := NewReader(bytes.NewReader(enc))
		typ, payload, err := r.Next()
		if err != nil || typ != MsgBatchWrite {
			t.Fatalf("frame: typ=%d err=%v", typ, err)
		}
		out, err := ParseBatchWriteReq(payload, nil, nil)
		if err != nil || out.ID != id || len(out.Keys) != len(keys) {
			t.Fatalf("decode: %+v err=%v", out, err)
		}
		for i := range keys {
			if out.Keys[i] != keys[i] || !bytes.Equal(out.Values[i], vals[i]) {
				t.Fatalf("pair %d mismatch", i)
			}
		}
	})
}

// FuzzMembershipRoundTrip drives the encode direction of the membership
// frames with structured inputs: whatever topology or stream page the fuzzer
// assembles, encoding must either fail cleanly or produce a frame that
// decodes back field-for-field.
func FuzzMembershipRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint8(2), uint8(1), []byte("a\x00b\x00c"), true)
	f.Add(uint64(0), uint64(0), uint8(1), uint8(0), []byte(""), false)
	f.Add(uint64(9), uint64(1<<40), uint8(3), uint8(2), []byte("x"), true)

	f.Fuzz(func(t *testing.T, id, epoch uint64, rf, phase uint8, blob []byte, done bool) {
		addrs := splitBlob(blob)
		nodes := make([]RingNode, len(addrs))
		for i, a := range addrs {
			// Distinct ids and tokens by construction; the token spacing is
			// irrelevant to the wire layer.
			nodes[i] = RingNode{ID: int32(i), Token: int64(i) * 1e9, Addr: a}
		}
		ru := RingUpdate{ID: id, Epoch: epoch, RF: rf, Phase: phase, Subject: 0, Nodes: nodes}
		if enc, err := AppendRingUpdate(nil, ru); err == nil {
			back, err := ParseRingUpdate(enc[5:])
			if err != nil || back.Epoch != epoch || len(back.Nodes) != len(nodes) {
				t.Fatalf("ring update decode: %+v err=%v", back, err)
			}
			for i := range nodes {
				if back.Nodes[i] != nodes[i] {
					t.Fatalf("node %d mismatch", i)
				}
			}
		}
		sc := StreamChunk{ID: id, Epoch: epoch, Done: done,
			Keys: addrs, Values: make([][]byte, len(addrs))}
		for i := range sc.Values {
			sc.Values[i] = []byte(addrs[(i+1)%max(len(addrs), 1)])
		}
		if enc, err := AppendStreamChunk(nil, sc); err == nil {
			back, err := ParseStreamChunk(enc[5:], nil, nil)
			if err != nil || back.Done != done || len(back.Keys) != len(sc.Keys) {
				t.Fatalf("stream chunk decode: %+v err=%v", back, err)
			}
			for i := range sc.Keys {
				if back.Keys[i] != sc.Keys[i] || !bytes.Equal(back.Values[i], sc.Values[i]) {
					t.Fatalf("stream item %d mismatch", i)
				}
			}
		}
		sr := StreamReq{ID: id, Epoch: epoch, Start: int64(id) - 5, End: int64(epoch), Cursor: string(blob)}
		if enc, err := AppendStreamReq(nil, sr); err == nil {
			if back, err := ParseStreamReq(enc[5:]); err != nil || back != sr {
				t.Fatalf("stream req decode: %+v err=%v", back, err)
			}
		}
	})
}

// splitBlob derives a key list from fuzzer bytes: NUL-separated segments.
func splitBlob(b []byte) []string {
	var out []string
	for len(b) > 0 {
		i := bytes.IndexByte(b, 0)
		if i < 0 {
			out = append(out, string(b))
			break
		}
		out = append(out, string(b[:i]))
		b = b[i+1:]
	}
	return out
}
