// Package kvstore is a real, networked replicated key-value store built on
// the substrates in this repository: loopback/LAN TCP with the wire protocol,
// the LSM storage engine, the Murmur3 token ring, and — the point of the
// exercise — the identical internal/core replica-selection code that drives
// the simulators. Every node is both a storage replica and a coordinator
// (exactly Cassandra's architecture in §4): client requests land on any
// node, the coordinator ranks the key's replica group with C3 (or a baseline
// strategy), applies per-server cubic rate limiting with backpressure, and
// forwards the read to the chosen replica. Responses piggyback queue-size
// and service-time feedback.
package kvstore

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"c3/internal/core"
	"c3/internal/lsm"
	"c3/internal/ratelimit"
	"c3/internal/ring"
	"c3/internal/sim"
	"c3/internal/wire"
)

// Strategy names for coordinators.
const (
	StratC3  = "C3"
	StratLOR = "LOR"
	StratRR  = "RR"
	StratRND = "RND"
)

// Config configures a node.
type Config struct {
	// RF is the replication factor (default 3).
	RF int
	// Strategy selects the coordinator's replica-selection policy
	// (default C3).
	Strategy string
	// Rate configures C3's rate controller.
	Rate ratelimit.Config
	// ReadDelayMean adds an exponentially distributed artificial storage
	// delay per replica read — the stand-in for disk seeks when the
	// store runs entirely in memory. Zero disables it.
	ReadDelayMean time.Duration
	// ReadRepair is the probability a read is broadcast to every replica
	// (Cassandra's anti-entropy read repair, 10% by default). Beyond
	// consistency, it is what keeps coordinators' views of currently
	// unselected replicas fresh — without it, a replica that turned slow
	// and was abandoned would never be observed recovering. Negative
	// disables it.
	ReadRepair float64
	// BackpressureTimeout bounds how long a coordinator holds a request
	// waiting for a rate token before failing open (default 2s).
	BackpressureTimeout time.Duration
	// Store tunes the LSM engine.
	Store lsm.Options
	// Seed drives the node's randomness.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.RF <= 0 {
		c.RF = 3
	}
	if c.Strategy == "" {
		c.Strategy = StratC3
	}
	if c.BackpressureTimeout <= 0 {
		c.BackpressureTimeout = 2 * time.Second
	}
	if c.ReadRepair == 0 {
		c.ReadRepair = 0.1
	} else if c.ReadRepair < 0 {
		c.ReadRepair = 0
	}
	return c
}

// Node is one store process: TCP listener, storage engine, coordinator.
type Node struct {
	id    core.ServerID
	cfg   Config
	ring  *ring.Ring
	addrs []string // addrs[i] is node i's listen address

	store *lsm.Store
	ln    net.Listener

	sel *core.Client

	peersMu sync.Mutex
	peers   map[core.ServerID]*rpcConn

	connsMu sync.Mutex
	conns   map[net.Conn]struct{} // inbound connections, closed on shutdown

	pendingReads atomic.Int64  // queue-size feedback
	svcNs        atomic.Uint64 // smoothed service time feedback
	slowNs       atomic.Int64  // injected extra delay per read (demos/tests)

	served atomic.Uint64 // reads served by this node's storage
	coord  atomic.Uint64 // reads coordinated by this node
	waited atomic.Uint64 // reads that hit backpressure at this coordinator

	rngMu sync.Mutex
	rng   *rand.Rand

	closed  chan struct{}
	wg      sync.WaitGroup
	closing sync.Once
}

// newRanker builds the strategy for a coordinator in a cluster of the given
// size (C3's concurrency weight w = number of coordinating clients = nodes).
// The registry carries the cluster's dense server index; the returned
// ranker (and the Client built on it) key all per-server state by it.
func newRanker(strategy string, reg *core.Registry, nodes int, seed uint64) (core.Ranker, bool) {
	switch strategy {
	case StratC3:
		return core.NewCubicRanker(core.RankerConfig{
			ConcurrencyWeight: float64(nodes),
			Seed:              seed,
			Registry:          reg,
		}), true
	case StratLOR:
		return core.NewLOR(reg, seed), false
	case StratRR:
		return core.NewRoundRobin(reg), true
	case StratRND:
		return core.NewRandom(seed), false
	default:
		panic("kvstore: unknown strategy " + strategy)
	}
}

// StartNode launches node id of a cluster whose node addresses are addrs
// (addrs[id] must be this node's address to listen on; use "127.0.0.1:0"
// and read back Addr for tests).
func StartNode(id int, addrs []string, cfg Config) (*Node, error) {
	if id < 0 || id >= len(addrs) {
		return nil, fmt.Errorf("kvstore: node id %d outside cluster of %d", id, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, err
	}
	return StartNodeWithListener(id, addrs, ln, cfg)
}

// StartNodeWithListener launches node id on an already-bound listener —
// the race-free path for harnesses that reserve every port up front
// (StartCluster) instead of closing and re-binding. The node takes
// ownership of ln.
func StartNodeWithListener(id int, addrs []string, ln net.Listener, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if id < 0 || id >= len(addrs) {
		ln.Close()
		return nil, fmt.Errorf("kvstore: node id %d outside cluster of %d", id, len(addrs))
	}
	// Pre-register the whole cluster so steady-state selection never takes
	// the registry's intern slow path.
	ids := make([]core.ServerID, len(addrs))
	for i := range ids {
		ids[i] = core.ServerID(i)
	}
	reg := core.NewRegistry(ids...)
	ranker, rc := newRanker(cfg.Strategy, reg, len(addrs), cfg.Seed^uint64(id)<<8)
	n := &Node{
		id:     core.ServerID(id),
		cfg:    cfg,
		ring:   ring.New(len(addrs), cfg.RF),
		addrs:  append([]string(nil), addrs...),
		store:  lsm.Open(cfg.Store),
		ln:     ln,
		sel:    core.NewClient(ranker, core.ClientConfig{RateControl: rc, Rate: cfg.Rate}),
		peers:  make(map[core.ServerID]*rpcConn),
		conns:  make(map[net.Conn]struct{}),
		rng:    sim.RNG(cfg.Seed, 0xfeed+uint64(id)),
		closed: make(chan struct{}),
	}
	n.addrs[id] = ln.Addr().String()
	n.svcNs.Store(uint64(time.Millisecond)) // prior before first read
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr reports the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// ID reports the node's cluster id.
func (n *Node) ID() int { return int(n.id) }

// Store exposes the underlying LSM engine (diagnostics).
func (n *Node) Store() *lsm.Store { return n.store }

// ReadsServed reports reads served by this node's storage.
func (n *Node) ReadsServed() uint64 { return n.served.Load() }

// ReadsCoordinated reports reads coordinated by this node.
func (n *Node) ReadsCoordinated() uint64 { return n.coord.Load() }

// BackpressureWaits reports coordinator reads that waited for a rate token.
func (n *Node) BackpressureWaits() uint64 { return n.waited.Load() }

// SetSlowdown injects extra artificial latency per local read — the live
// analogue of the paper's tc-based degradation in Fig. 13.
func (n *Node) SetSlowdown(d time.Duration) { n.slowNs.Store(int64(d)) }

// SendRateToward exposes the coordinator's current srate toward a peer.
func (n *Node) SendRateToward(peer int) float64 {
	return n.sel.SendRate(core.ServerID(peer))
}

// Close shuts the node down and waits for its goroutines.
func (n *Node) Close() {
	n.closing.Do(func() {
		close(n.closed)
		n.ln.Close()
		n.peersMu.Lock()
		for _, p := range n.peers {
			p.close()
		}
		n.peersMu.Unlock()
		// Inbound connections (from clients and from peers that have
		// not shut down yet) must be severed too, or their serve
		// loops would keep this node's WaitGroup pinned.
		n.connsMu.Lock()
		for c := range n.conns {
			c.Close()
		}
		n.connsMu.Unlock()
	})
	n.wg.Wait()
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

// serveConn handles one inbound connection (client or peer). Responses are
// pre-encoded into pooled frames and coalesced by the connection's writer
// goroutine; replica-local requests are served inline on the read loop when
// no artificial delay is configured (goroutine-per-frame costs more than the
// storage read itself), while coordinator requests always dispatch so reads
// stay concurrent across replicas.
func (n *Node) serveConn(conn net.Conn) {
	defer n.wg.Done()
	n.connsMu.Lock()
	n.conns[conn] = struct{}{}
	n.connsMu.Unlock()
	defer func() {
		n.connsMu.Lock()
		delete(n.conns, conn)
		n.connsMu.Unlock()
	}()
	cw := newConnWriter(conn)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		cw.loop()
	}()
	defer cw.close()
	defer conn.Close() // runs before cw.close, unblocking a stuck writer
	r := wire.NewReader(conn)
	for {
		typ, payload, err := r.Next()
		if err != nil {
			return
		}
		// Parsed Keys and Values alias the frame buffer (valid until the
		// next r.Next): inline handlers may use them directly, dispatched
		// handlers get copies.
		switch typ {
		case wire.MsgRead:
			m, err := wire.ParseReadReq(payload)
			if err != nil {
				return
			}
			m.Key = strings.Clone(m.Key)
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.respondCoordRead(cw, m)
			}()
		case wire.MsgReadInternal:
			m, err := wire.ParseReadReq(payload)
			if err != nil {
				return
			}
			if n.inlineLocalReads() {
				n.respondLocalRead(cw, m)
				continue
			}
			m.Key = strings.Clone(m.Key)
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.respondLocalRead(cw, m)
			}()
		case wire.MsgWrite:
			m, err := wire.ParseWriteReq(payload)
			if err != nil {
				return
			}
			m.Key = strings.Clone(m.Key)
			vb := getBuf()
			*vb = append((*vb)[:0], m.Value...)
			m.Value = *vb
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.respondCoordWrite(cw, m, vb)
			}()
		case wire.MsgWriteInternal:
			m, err := wire.ParseWriteReq(payload)
			if err != nil {
				return
			}
			// Dispatched, unlike local reads: a Put can trigger a memtable
			// flush or compaction, which must not stall every pipelined
			// frame on this link.
			m.Key = strings.Clone(m.Key)
			vb := getBuf()
			*vb = append((*vb)[:0], m.Value...)
			m.Value = *vb
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.respondLocalWrite(cw, m, vb)
			}()
		default:
			return // protocol error: drop the connection
		}
	}
}

// inlineLocalReads reports whether replica-local reads are served on the
// connection's read loop. Any configured storage delay or injected slowdown
// restores per-frame dispatch so a slow read does not serialize the link.
func (n *Node) inlineLocalReads() bool {
	return n.cfg.ReadDelayMean == 0 && n.slowNs.Load() == 0
}

// respondLocalRead serves a replica-local read and enqueues the response,
// streaming the value straight from the LSM store into the frame buffer —
// no intermediate value copy.
func (n *Node) respondLocalRead(cw *connWriter, m wire.ReadReq) {
	start := n.beginRead()
	fb := getBuf()
	b, mark := wire.BeginReadResp((*fb)[:0], m.ID)
	b, found := n.store.GetAppend(b, m.Key)
	b, err := wire.FinishReadResp(b, mark, found, n.finishRead(start))
	if err != nil {
		putBuf(fb)
		return
	}
	*fb = b
	cw.enqueue(fb)
}

// respondCoordRead coordinates a client read and enqueues the response. The
// value — whether fetched from a replica or served from the local store —
// is appended directly onto the open response frame, so the coordinator
// adds no extra value copy.
func (n *Node) respondCoordRead(cw *connWriter, m wire.ReadReq) {
	fb := getBuf()
	b, mark := wire.BeginReadResp((*fb)[:0], m.ID)
	resp := n.coordinateRead(m, b)
	if resp.Value != nil {
		b = resp.Value // the frame extended by the value (possibly regrown)
	}
	b, err := wire.FinishReadResp(b, mark, resp.Found, resp.FB)
	if err != nil {
		putBuf(fb)
		return
	}
	*fb = b
	cw.enqueue(fb)
}

// respondLocalWrite applies a replica-local write and enqueues the ack. vb
// is the pooled buffer holding m.Value, recycled here.
func (n *Node) respondLocalWrite(cw *connWriter, m wire.WriteReq, vb *[]byte) {
	resp := n.localWrite(m)
	putBuf(vb)
	fb := getBuf()
	b, err := wire.AppendWriteResp((*fb)[:0], resp)
	if err != nil {
		putBuf(fb)
		return
	}
	*fb = b
	cw.enqueue(fb)
}

// respondCoordWrite coordinates a client write and enqueues the ack. vb is
// the pooled buffer holding m.Value; coordinateWrite recycles it once every
// replica write has finished with it.
func (n *Node) respondCoordWrite(cw *connWriter, m wire.WriteReq, vb *[]byte) {
	resp := n.coordinateWrite(m, vb)
	fb := getBuf()
	b, err := wire.AppendWriteResp((*fb)[:0], resp)
	if err != nil {
		putBuf(fb)
		return
	}
	*fb = b
	cw.enqueue(fb)
}

// feedback samples the node's current C3 feedback fields.
func (n *Node) feedback() wire.Feedback {
	return wire.Feedback{
		QueueSize: float64(n.pendingReads.Load()),
		ServiceNs: int64(n.svcNs.Load()),
	}
}

// localRead serves a replica-local read with queue accounting, artificial
// disk delay, and feedback sampling — the server half of C3 (§3.1). The
// value is appended to dst (the coordinator's open response frame when it
// serves one of its own keys).
func (n *Node) localRead(m wire.ReadReq, dst []byte) wire.ReadResp {
	start := n.beginRead()
	val, ok := n.store.GetAppend(dst, m.Key)
	return wire.ReadResp{ID: m.ID, Found: ok, Value: val, FB: n.finishRead(start)}
}

// beginRead is the server half's prologue: queue accounting plus the
// artificial storage delay. Every beginRead pairs with exactly one
// finishRead, which undoes the queue accounting.
func (n *Node) beginRead() time.Time {
	n.pendingReads.Add(1)
	start := time.Now()
	if d := n.readDelay(); d > 0 {
		time.Sleep(d)
	}
	return start
}

// finishRead completes the server half of a read: queue accounting, the
// smoothed service-time update, and a post-read feedback sample.
func (n *Node) finishRead(start time.Time) wire.Feedback {
	svc := time.Since(start)
	n.pendingReads.Add(-1)
	n.served.Add(1)
	// Smoothed service time: new = 0.2·sample + 0.8·old, CAS-free since
	// small races only blur the estimate.
	old := n.svcNs.Load()
	n.svcNs.Store(uint64(0.2*float64(svc) + 0.8*float64(old)))
	return n.feedback()
}

// readDelay draws the configured artificial storage delay plus any injected
// slowdown.
func (n *Node) readDelay() time.Duration {
	var d int64
	if n.cfg.ReadDelayMean > 0 {
		n.rngMu.Lock()
		d = sim.Exp(n.rng, float64(n.cfg.ReadDelayMean))
		n.rngMu.Unlock()
	}
	return time.Duration(d + n.slowNs.Load())
}

// localWrite applies a replica-local write. The key must not alias a frame
// buffer (the memtable retains it); the value may, Put copies it.
func (n *Node) localWrite(m wire.WriteReq) wire.WriteResp {
	n.store.Put(m.Key, m.Value)
	return wire.WriteResp{ID: m.ID, FB: n.feedback()}
}

// coordinateRead is Algorithm 1 over real TCP: rank the key's replica group,
// wait for a rate token under backpressure, forward, record feedback. The
// value of the response is appended to dst.
func (n *Node) coordinateRead(m wire.ReadReq, dst []byte) wire.ReadResp {
	n.coord.Add(1)
	group := n.ring.ReplicasFor([]byte(m.Key), nil)
	deadline := time.Now().Add(n.cfg.BackpressureTimeout)
	var target core.ServerID
	waited := false
	for {
		now := time.Now().UnixNano()
		s, ok, retryAt := n.sel.Pick(group, now)
		if ok {
			target = s
			break
		}
		waited = true
		if time.Now().After(deadline) {
			// Fail open: take the ranker's current best without
			// consuming a token so the request cannot starve. Unlike
			// sending to group[0], timeout traffic still spreads by
			// replica quality instead of piling onto one server.
			target, _ = n.sel.PickBest(group, now)
			break
		}
		time.Sleep(time.Duration(retryAt-now) + 100*time.Microsecond)
	}
	if waited {
		n.waited.Add(1)
	}
	// Read repair: occasionally consult every replica, which refreshes
	// the coordinator's feedback state for replicas it has stopped
	// selecting.
	if n.cfg.ReadRepair > 0 {
		n.rngMu.Lock()
		repair := n.rng.Float64() < n.cfg.ReadRepair
		n.rngMu.Unlock()
		if repair {
			for _, s := range group {
				if s == target || s == n.id {
					continue
				}
				s := s
				n.sel.OnSend(s, time.Now().UnixNano())
				n.wg.Add(1)
				go func() {
					defer n.wg.Done()
					rb := getBuf()
					sent := time.Now()
					if out, err := n.rpcRead(s, m, (*rb)[:0]); err == nil {
						n.sel.OnResponse(s, core.Feedback{
							QueueSize:   out.FB.QueueSize,
							ServiceTime: time.Duration(out.FB.ServiceNs),
						}, time.Since(sent), time.Now().UnixNano())
						if out.Value != nil {
							*rb = out.Value[:0]
						}
					}
					putBuf(rb)
				}()
			}
		}
	}
	sent := time.Now()
	var resp wire.ReadResp
	if target == n.id {
		resp = n.localRead(m, dst)
	} else {
		out, err := n.rpcRead(target, m, dst)
		if err != nil {
			// Peer unreachable: serve from the next replica and
			// record a punishing response time for the ranker.
			n.sel.OnResponse(target, core.Feedback{QueueSize: 1e6,
				ServiceTime: time.Second}, time.Second, time.Now().UnixNano())
			return n.readFallback(m, group, target, dst)
		}
		resp = out
	}
	n.sel.OnResponse(target, core.Feedback{
		QueueSize:   resp.FB.QueueSize,
		ServiceTime: time.Duration(resp.FB.ServiceNs),
	}, time.Since(sent), time.Now().UnixNano())
	resp.ID = m.ID
	return resp
}

// readFallback tries the remaining replicas in order after an RPC failure.
func (n *Node) readFallback(m wire.ReadReq, group []core.ServerID, failed core.ServerID, dst []byte) wire.ReadResp {
	for _, s := range group {
		if s == failed {
			continue
		}
		if s == n.id {
			return n.localRead(m, dst)
		}
		if out, err := n.rpcRead(s, m, dst); err == nil {
			out.ID = m.ID
			return out
		}
	}
	return wire.ReadResp{ID: m.ID, Found: false}
}

// coordinateWrite fans a write to all replicas and acknowledges on the first
// success (CL=ONE), completing the rest in the background. vb, when not nil,
// is the pooled buffer backing m.Value; it is recycled once every replica
// write — including the post-ack background ones — has finished with it.
func (n *Node) coordinateWrite(m wire.WriteReq, vb *[]byte) wire.WriteResp {
	group := n.ring.ReplicasFor([]byte(m.Key), nil)
	first := make(chan wire.WriteResp, len(group))
	// Refcount the value buffer across the fan-out: the last replica write
	// to finish recycles it.
	remaining := new(atomic.Int32)
	remaining.Store(int32(len(group)))
	for _, s := range group {
		s := s
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer func() {
				if remaining.Add(-1) == 0 {
					putBuf(vb)
				}
			}()
			if s == n.id {
				first <- n.localWrite(m)
				return
			}
			if out, err := n.rpcWrite(s, m); err == nil {
				first <- out
			} else {
				first <- wire.WriteResp{ID: m.ID}
			}
		}()
	}
	resp := <-first
	resp.ID = m.ID
	return resp
}

var errClosed = errors.New("kvstore: node closed")

// peer returns (establishing if needed) the RPC connection to a peer node.
func (n *Node) peer(id core.ServerID) (*rpcConn, error) {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	if p, ok := n.peers[id]; ok && !p.dead() {
		return p, nil
	}
	select {
	case <-n.closed:
		return nil, errClosed
	default:
	}
	conn, err := net.DialTimeout("tcp", n.addrs[int(id)], time.Second)
	if err != nil {
		return nil, err
	}
	p := newRPCConn(conn)
	n.peers[id] = p
	return p, nil
}

func (n *Node) rpcRead(id core.ServerID, m wire.ReadReq, dst []byte) (wire.ReadResp, error) {
	p, err := n.peer(id)
	if err != nil {
		return wire.ReadResp{}, err
	}
	return p.read(m.Key, dst)
}

func (n *Node) rpcWrite(id core.ServerID, m wire.WriteReq) (wire.WriteResp, error) {
	p, err := n.peer(id)
	if err != nil {
		return wire.WriteResp{}, err
	}
	return p.write(m.Key, m.Value)
}

// Cluster is a convenience harness that runs n nodes on loopback.
type Cluster struct {
	Nodes []*Node
}

// StartCluster boots n nodes with the shared config on 127.0.0.1 ports.
// Listeners are bound once and handed to the nodes, so no other process can
// grab a port between reservation and startup.
func StartCluster(nodes int, cfg Config) (*Cluster, error) {
	if nodes < 1 {
		return nil, errors.New("kvstore: need at least one node")
	}
	// Reserve every port first so all nodes know the full topology.
	lns := make([]net.Listener, nodes)
	addrs := make([]string, nodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, bound := range lns[:i] {
				bound.Close()
			}
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	c := &Cluster{}
	for i := range lns {
		n, err := StartNodeWithListener(i, addrs, lns[i], cfg)
		if err != nil {
			for _, ln := range lns[i+1:] {
				ln.Close()
			}
			c.Close()
			return nil, err
		}
		c.Nodes = append(c.Nodes, n)
	}
	return c, nil
}

// Addrs lists the node addresses.
func (c *Cluster) Addrs() []string {
	out := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.Addr()
	}
	return out
}

// Close shuts all nodes down.
func (c *Cluster) Close() {
	for _, n := range c.Nodes {
		if n != nil {
			n.Close()
		}
	}
}
