package wire

import (
	"os"
	"strconv"
	"testing"
)

// TestGenerateCorpus regenerates the committed fuzz seed corpus when
// C3_REGEN_CORPUS is set; otherwise it only verifies the files exist.
func TestGenerateCorpus(t *testing.T) {
	if os.Getenv("C3_REGEN_CORPUS") == "" {
		t.Skip("set C3_REGEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	writeEntry := func(path string, b []byte) {
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	must := func(b []byte, err error) []byte {
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	dir := "testdata/fuzz/FuzzDecode/"
	ru := must(AppendRingUpdate(nil, RingUpdate{
		ID: 1, Epoch: 0x1122334455667788, RF: 2, Phase: PhaseJoin, Subject: 2,
		Nodes: []RingNode{
			{ID: 0, Token: -10, Addr: "127.0.0.1:1"},
			{ID: 1, Token: 0, Addr: "127.0.0.1:2"},
			{ID: 2, Token: 10, Addr: "127.0.0.1:3"},
		}}))
	writeEntry(dir+"seed-ring-update", ru[5:])
	writeEntry(dir+"seed-ring-truncated-epoch", ru[5:5+12])
	zero := append([]byte(nil), ru[5:5+22]...)
	zero = append(zero, 0, 0)
	writeEntry(dir+"seed-ring-zero-nodes", zero)
	wrap := must(AppendStreamReq(nil, StreamReq{ID: 2, Epoch: 3, Start: 100, End: -100, Cursor: "k"}))
	writeEntry(dir+"seed-stream-wrapping-arc", wrap[5:])
	full := must(AppendStreamReq(nil, StreamReq{ID: 3, Epoch: 3, Start: 7, End: 7}))
	writeEntry(dir+"seed-stream-degenerate-arc", full[5:])
	nack := must(AppendStreamChunk(nil, StreamChunk{ID: 4, Status: StreamWrongEpoch, Epoch: 9, Done: true}))
	writeEntry(dir+"seed-stream-wrong-epoch", nack[5:])
	page := must(AppendStreamChunk(nil, StreamChunk{ID: 5, Epoch: 9, Done: false,
		Keys: []string{"k0", "k1"}, Values: [][]byte{[]byte("v0"), nil}}))
	writeEntry(dir+"seed-stream-page", page[5:])
}
