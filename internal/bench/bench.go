// Package bench is the experiment harness: one runner per table/figure of
// the paper, each regenerating the corresponding rows/series on this
// repository's substrates (internal/cassim for §5, internal/queuesim for §6,
// closed-form evaluation for the illustrative figures). cmd/c3bench and the
// top-level benchmarks (bench_test.go) both drive these runners; the
// paper-vs-measured record lives in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Scale selects experiment fidelity.
type Scale int

// Scales: Quick for unit/bench runs (seconds), Medium for the default
// cmd/c3bench run (minutes), Full for paper-scale runs.
const (
	Quick Scale = iota
	Medium
	Full
)

// ParseScale maps a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "quick":
		return Quick, nil
	case "medium", "":
		return Medium, nil
	case "full":
		return Full, nil
	}
	return Quick, fmt.Errorf("bench: unknown scale %q (quick|medium|full)", s)
}

// Options configures a harness run.
type Options struct {
	Scale Scale
	Seeds int // number of repetitions; 0 takes a scale-based default
	// KVJSONPath, when non-empty, makes the kv runner also write its
	// machine-readable result (BENCH_kv.json) to this path.
	KVJSONPath string
	// TailJSONPath, when non-empty, makes the tail runner also write its
	// machine-readable result (BENCH_tail.json) to this path.
	TailJSONPath string
	// BatchJSONPath, when non-empty, makes the batch runner also write its
	// machine-readable result (BENCH_batch.json) to this path.
	BatchJSONPath string
	// ElasticJSONPath, when non-empty, makes the elastic runner also write
	// its machine-readable result (BENCH_elastic.json) to this path.
	ElasticJSONPath string
	// DurableJSONPath, when non-empty, makes the durable runner also write
	// its machine-readable result (BENCH_durable.json) to this path.
	DurableJSONPath string
	// ConsistencyJSONPath, when non-empty, makes the consistency runner also
	// write its machine-readable result (BENCH_consistency.json) to this path.
	ConsistencyJSONPath string
	// Shards overrides the per-node shard count for the live-cluster
	// benchmarks. 0 takes the kvstore default (GOMAXPROCS); 1 reproduces
	// the pre-sharding single-writer layout, making the sharding win
	// ablatable from the command line.
	Shards int
}

func (o Options) seeds() int {
	if o.Seeds > 0 {
		return o.Seeds
	}
	switch o.Scale {
	case Full:
		return 5 // the paper repeats every measurement five times
	case Medium:
		return 3
	default:
		return 1
	}
}

// clusterOps reports the cassim operation budget for the scale.
func (o Options) clusterOps() int {
	switch o.Scale {
	case Full:
		return 2_000_000
	case Medium:
		return 150_000
	default:
		return 40_000
	}
}

// simRequests reports the queuesim request budget for the scale.
func (o Options) simRequests() int {
	switch o.Scale {
	case Full:
		return 600_000 // the paper's §6 run length
	case Medium:
		return 120_000
	default:
		return 30_000
	}
}

// intervals reports the fluctuation intervals swept (ms).
func (o Options) intervals() []int64 {
	if o.Scale == Quick {
		return []int64{10, 100, 500}
	}
	return []int64{10, 50, 100, 200, 300, 500} // the paper's x-axis
}

// Report is one experiment's regenerated output.
type Report struct {
	ID      string
	Title   string
	Lines   []string
	Metrics map[string]float64
	// Failed marks a runner that could not produce its result (harness
	// error, cluster boot failure). cmd/c3bench exits non-zero when any
	// report failed, so CI smoke runs catch broken experiments.
	Failed bool
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Metrics: map[string]float64{}}
}

func (r *Report) printf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// fail records a fatal runner error.
func (r *Report) fail(err error) {
	r.Failed = true
	r.printf("error: %v", err)
}

// Metric records a named headline number.
func (r *Report) Metric(name string, v float64) { r.Metrics[name] = v }

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("-- headline metrics --\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-40s %.3f\n", k, r.Metrics[k])
		}
	}
	return b.String()
}

// Runner is a named experiment.
type Runner struct {
	ID   string
	Name string
	Run  func(Options) *Report
}

// All enumerates every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"fig1", "LOR vs ideal allocation (motivating example)", Fig01},
		{"fig2", "Dynamic Snitching load oscillations", Fig02},
		{"fig4", "linear vs cubic scoring functions", Fig04},
		{"fig5", "cubic rate growth curve", Fig05},
		{"fig6", "latency profile C3 vs DS across workloads", Fig06},
		{"fig7", "read throughput C3 vs DS", Fig07},
		{"fig8", "load distribution on the most utilized node", Fig08},
		{"fig9", "load versus time", Fig09},
		{"fig10", "degradation at higher system utilization", Fig10},
		{"fig11", "adaptation to dynamic workload change", Fig11},
		{"fig12", "SSD-backed latency profile", Fig12},
		{"skew", "skewed record sizes (§5 text)", FigSkew},
		{"spec", "speculative retries atop DS (§5 text)", FigSpec},
		{"fig13", "rate adaptation and backpressure trace", Fig13},
		{"fig14", "fluctuation-interval sweep (§6)", Fig14},
		{"fig15", "demand-skew sweep (§6)", Fig15},
		{"ablate-b", "ablation: scoring exponent b", AblationExponent},
		{"ablate-comp", "ablation: concurrency compensation", AblationConcurrencyComp},
		{"ablate-rate", "ablation: rate control on/off", AblationRateControl},
		{"ablate-extra", "ablation: dismissed selectors (§6)", AblationExtraSelectors},
		{"ablate-decrease", "ablation: literal vs robust decrease rule", AblationDecreaseRule},
		{"ext-token", "extension: token-aware clients (§7)", ExtTokenAware},
		{"ext-quorum", "extension: quorum reads (§7)", ExtQuorum},
		{"ext-spec", "extension: reissues atop C3 (§8)", ExtC3Spec},
		{"kv", "live TCP store throughput/latency (network hot path)", KV},
		{"tail", "tail tolerance under injected failures (hedged vs unhedged)", Tail},
		{"batch", "batch scatter-gather: MultiGet vs pipelined point gets", Batch},
		{"elastic", "membership churn: p99 through a live join and decommission", Elastic},
		{"durable", "durability tax: WAL group commit, fsync, recovery time", Durable},
		{"consistency", "tunable consistency: stale reads and quorum latency", Consistency},
	}
}

// ByID finds a runner.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
