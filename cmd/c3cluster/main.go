// Command c3cluster runs the §5 Cassandra-like cluster model for a single
// configuration, or — with -tcp — boots a real TCP key-value cluster on
// loopback and drives a workload against it to demonstrate the identical C3
// client code in a live system.
//
// Usage:
//
//	c3cluster -strategy C3 -mix read-heavy -ops 200000
//	c3cluster -strategy DS -generators 210 -disk ssd
//	c3cluster -tcp -nodes 5 -ops 3000
//	c3cluster -tcp -consistency quorum        # quorum reads/writes end to end
//	c3cluster -tcp -join -nodes 4 -ops 3000   # live join + decommission demo
//	c3cluster -tcp -data /tmp/c3data          # durable nodes; rerun to recover
//	c3cluster -tcp -serve -resp 6379 -obs 7070  # RESP gateway + ops HTTP, serve until ^C
//	c3cluster stats 127.0.0.1:7070            # render a node's /stats snapshot
//	c3cluster probe 127.0.0.1:6379            # RESP correctness probe (CI smoke)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"c3/internal/cassim"
	"c3/internal/kvstore"
	"c3/internal/sim"
	"c3/internal/stats"
	"c3/internal/workload"
)

func main() {
	// Subcommands dispatch before flag.Parse so they own their flag sets.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "stats":
			cmdStats(os.Args[2:])
			return
		case "probe":
			cmdProbe(os.Args[2:])
			return
		}
	}

	strategy := flag.String("strategy", "C3", "C3 | DS | DS-SPEC | LOR | RR")
	mix := flag.String("mix", "read-heavy", "read-heavy | read-only | update-heavy")
	gens := flag.Int("generators", 120, "closed-loop workload generators")
	ops := flag.Int("ops", 200_000, "operations per run")
	disk := flag.String("disk", "spinning", "spinning | ssd")
	seeds := flag.Int("seeds", 3, "repetitions")
	nodes := flag.Int("nodes", 15, "cluster size")
	tcp := flag.Bool("tcp", false, "run the live TCP cluster demo instead of the simulation")
	join := flag.Bool("join", false, "with -tcp: grow the cluster by one node mid-run, then decommission it")
	data := flag.String("data", "", "with -tcp: durable storage root (node i stores under <data>/node-<i>; rerun with the same dir to demo recovery)")
	consistency := flag.String("consistency", "one", "with -tcp: consistency level for the demo workload (one | quorum | all)")
	shards := flag.Int("shards", 0, "with -tcp: per-node storage/request shards (0 = GOMAXPROCS; 1 reproduces the pre-sharding layout)")
	respBase := flag.Int("resp", 0, "with -tcp: base RESP gateway port (node i listens on port+i; 0 = off)")
	obsBase := flag.Int("obs", 0, "with -tcp: base ops HTTP port serving /stats, /debug/vars, /debug/pprof (node i on port+i; 0 = off)")
	serve := flag.Bool("serve", false, "with -tcp: skip the demo workload and serve -resp/-obs frontends until interrupted")
	flag.Parse()

	if *tcp {
		lvl, err := kvstore.ParseLevel(*consistency)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *serve {
			runServe(*nodes, *strategy, *data, lvl, *shards, *respBase, *obsBase)
			return
		}
		if *join {
			runTCPJoin(*nodes, *strategy, *ops, *data, lvl, *shards)
		} else {
			runTCP(*nodes, *strategy, *ops, *data, lvl, *shards)
		}
		return
	}

	var m workload.Mix
	switch strings.ToLower(*mix) {
	case "read-heavy":
		m = workload.ReadHeavy
	case "read-only":
		m = workload.ReadOnly
	case "update-heavy":
		m = workload.UpdateHeavy
	default:
		fmt.Fprintf(os.Stderr, "unknown mix %q\n", *mix)
		os.Exit(2)
	}
	d := cassim.Spinning
	if strings.EqualFold(*disk, "ssd") {
		d = cassim.SSD
	}
	var p50s, p99s, p999s, thrs []float64
	for s := 0; s < *seeds; s++ {
		cfg := cassim.DefaultConfig()
		cfg.Strategy = *strategy
		cfg.Mix = m
		cfg.Generators = *gens
		cfg.Ops = *ops
		cfg.Disk = d
		cfg.Nodes = *nodes
		cfg.Seed = uint64(s)*2741 + 5
		res := cassim.Run(cfg)
		p50s = append(p50s, res.Reads.P50)
		p99s = append(p99s, res.Reads.P99)
		p999s = append(p999s, res.Reads.P999)
		thrs = append(thrs, res.Throughput)
	}
	p50, _ := stats.MeanCI95(p50s)
	p99, _ := stats.MeanCI95(p99s)
	p999, ci := stats.MeanCI95(p999s)
	thr, tci := stats.MeanCI95(thrs)
	fmt.Printf("%s / %s / %d gens / %s (%d nodes, %d ops × %d seeds)\n",
		*strategy, m.Name, *gens, *disk, *nodes, *ops, *seeds)
	fmt.Printf("  read latency: p50=%.2fms p99=%.2fms p99.9=%.2f±%.2fms\n", p50, p99, p999, ci)
	fmt.Printf("  throughput  : %.0f±%.0f ops/s\n", thr, tci)
}

// runTCP is the live-system demo: boot a loopback cluster, load it, degrade
// one node mid-run, and show C3 shifting traffic away and back. With dataDir
// set the nodes are durable; a rerun over the same directory recovers the
// previous run's keys from WAL + SSTs instead of reloading.
func runTCP(nodes int, strategy string, ops int, dataDir string, lvl kvstore.Level, shards int) {
	fmt.Printf("booting %d-node TCP cluster on loopback (strategy %s, consistency %s)...\n",
		nodes, strategy, lvl)
	cl, err := kvstore.StartCluster(nodes, kvstore.Config{
		Strategy:      strategy,
		Seed:          1,
		ReadDelayMean: 300 * time.Microsecond,
		DataDir:       dataDir,
		Shards:        shards,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cl.Close()
	client, err := kvstore.Dial(cl.Addrs())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer client.Close()

	keys := workload.NewScrambled(1000, 0.99)
	r := sim.RNG(7, 7)
	if recovered := cl.Nodes[0].Store().Len(); dataDir != "" && recovered > 0 {
		fmt.Printf("recovered %d keys per node from %s (WAL replay + SSTs); skipping load\n",
			recovered, dataDir)
	} else {
		fmt.Println("loading 1000 keys...")
		for i := uint64(0); i < 1000; i++ {
			if err := client.PutAt(workload.Key(i), []byte(strings.Repeat("v", 256)), lvl); err != nil {
				fmt.Fprintln(os.Stderr, "put:", err)
				os.Exit(1)
			}
		}
		if dataDir != "" {
			fmt.Printf("durable: every ack is WAL-backed under %s; rerun with the same -data to recover\n", dataDir)
		}
	}

	lat := stats.NewSample(ops)
	served := func() []uint64 {
		out := make([]uint64, nodes)
		for i, n := range cl.Nodes {
			out[i] = n.ReadsServed()
		}
		return out
	}
	phase := func(name string, n int) {
		before := served()
		for i := 0; i < n; i++ {
			start := time.Now()
			if _, _, err := client.GetAt(workload.Key(keys.Next(r)), lvl); err != nil {
				fmt.Fprintln(os.Stderr, "get:", err)
				os.Exit(1)
			}
			lat.Add(float64(time.Since(start).Microseconds()) / 1000)
		}
		after := served()
		fmt.Printf("  %-22s reads per node:", name)
		for i := range after {
			fmt.Printf(" %5d", after[i]-before[i])
		}
		fmt.Println()
	}
	phase("healthy", ops/3)
	fmt.Println("degrading node 0 by +20ms per read...")
	cl.Nodes[0].SetSlowdown(20 * time.Millisecond)
	phase("node 0 degraded", ops/3)
	fmt.Println("node 0 recovered")
	cl.Nodes[0].SetSlowdown(0)
	phase("recovered", ops/3)
	fmt.Printf("overall read latency: %s\n", lat.Summarize())
}

// runTCPJoin is the elasticity demo: boot a loaded cluster, grow it by one
// node WHILE serving (the joiner streams its key ranges live and only then
// takes reads), then decommission the same node — all with zero downtime.
func runTCPJoin(nodes int, strategy string, ops int, dataDir string, lvl kvstore.Level, shards int) {
	fmt.Printf("booting %d-node TCP cluster on loopback (strategy %s, consistency %s)...\n",
		nodes, strategy, lvl)
	cl, err := kvstore.StartCluster(nodes, kvstore.Config{
		Strategy:      strategy,
		Seed:          1,
		ReadDelayMean: 300 * time.Microsecond,
		DataDir:       dataDir,
		Shards:        shards,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cl.Close()
	client, err := kvstore.Dial(cl.Addrs())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer client.Close()

	keys := workload.NewScrambled(1000, 0.99)
	r := sim.RNG(7, 7)
	fmt.Println("loading 1000 keys...")
	for i := uint64(0); i < 1000; i++ {
		if err := client.PutAt(workload.Key(i), []byte(strings.Repeat("v", 256)), lvl); err != nil {
			fmt.Fprintln(os.Stderr, "put:", err)
			os.Exit(1)
		}
	}
	phase := func(name string, n int) {
		before := make([]uint64, len(cl.Nodes))
		for i, node := range cl.Nodes {
			if node != nil {
				before[i] = node.ReadsServed()
			}
		}
		for i := 0; i < n; i++ {
			if _, _, err := client.GetAt(workload.Key(keys.Next(r)), lvl); err != nil {
				fmt.Fprintln(os.Stderr, "get:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("  %-28s reads per node:", name)
		for i, node := range cl.Nodes {
			if node == nil {
				fmt.Printf("     -")
				continue
			}
			fmt.Printf(" %5d", node.ReadsServed()-before[i])
		}
		fmt.Println()
	}
	phase(fmt.Sprintf("%d nodes steady", nodes), ops/3)

	fmt.Printf("joining node %d live (streams its key ranges, then serves)...\n", nodes)
	joined, err := cl.Join(kvstore.Config{
		Strategy:      strategy,
		Seed:          2,
		ReadDelayMean: 300 * time.Microsecond,
		DataDir:       dataDir,
		Shards:        shards,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "join:", err)
		os.Exit(1)
	}
	fmt.Printf("node %d joined at epoch %d\n", joined.ID(), joined.Epoch())
	phase(fmt.Sprintf("%d nodes (joined)", nodes+1), ops/3)

	fmt.Printf("decommissioning node %d (streams its arcs back out)...\n", joined.ID())
	if err := joined.Decommission(); err != nil {
		fmt.Fprintln(os.Stderr, "decommission:", err)
		os.Exit(1)
	}
	time.Sleep(100 * time.Millisecond) // let straggling reads drain
	joined.Close()
	cl.Nodes[len(cl.Nodes)-1] = nil
	phase(fmt.Sprintf("%d nodes (decommissioned)", nodes), ops/3)
	fmt.Println("no downtime: every request during the join and the decommission was served")
}
