package kvstore

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"c3/internal/ring"
	"c3/internal/wire"
)

// Client is an external (application-side) client of the store. It holds one
// pipelined connection per node and spreads requests across coordinators
// round-robin — the paper's non-token-aware access pattern, where any node
// may coordinate any key.
type Client struct {
	addrs []string

	mu    sync.Mutex
	conns []*rpcConn

	next atomic.Uint64

	// tokenRing, when set, routes each key to its primary replica as
	// coordinator (the Astyanax-style token-aware client of the paper's
	// §7, which avoids overloaded non-replica coordinators).
	tokenRing *ring.Ring
}

// Dial connects a client to the cluster at addrs (connections are
// established lazily).
func Dial(addrs []string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("kvstore: no addresses")
	}
	return &Client{
		addrs: append([]string(nil), addrs...),
		conns: make([]*rpcConn, len(addrs)),
	}, nil
}

func (c *Client) conn(i int) (*rpcConn, error) {
	c.mu.Lock()
	if p := c.conns[i]; p != nil && !p.dead() {
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()
	// Dial outside c.mu: the mutex guards every address slot, so a slow
	// dial to one dead replica must not stall the client's traffic to the
	// healthy ones.
	nc, err := net.DialTimeout("tcp", c.addrs[i], time.Second)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.conns[i]; p != nil && !p.dead() {
		// Lost a dial race; keep the established winner.
		nc.Close()
		return p, nil
	}
	p := newRPCConn(nc)
	c.conns[i] = p
	return p, nil
}

// DialTokenAware returns a Client that coordinates every operation at the
// key's primary replica instead of round-robining, given the cluster's
// replication factor.
func DialTokenAware(addrs []string, rf int) (*Client, error) {
	c, err := Dial(addrs)
	if err != nil {
		return nil, err
	}
	c.tokenRing = ring.New(len(addrs), rf)
	return c, nil
}

// pick chooses the coordinator for a key: its primary replica when token
// aware, round-robin otherwise.
func (c *Client) pick(key string) int {
	if c.tokenRing != nil {
		return int(c.tokenRing.PrimaryFor([]byte(key)))
	}
	return int(c.next.Add(1)-1) % len(c.addrs)
}

// Get reads key through a coordinator at consistency level One, reporting
// whether it exists.
func (c *Client) Get(key string) ([]byte, bool, error) {
	return c.GetAt(key, One)
}

// GetAt reads key through a coordinator at the given consistency level.
// Transport failures rotate to the next coordinator; a coordinator that
// answered but could not satisfy the level returns its verdict directly
// (errors.Is(err, ErrQuorumUnavailable) / ErrTimeout) — the level shortfall
// is a cluster property, not a bad coordinator, so retrying elsewhere would
// only repeat the fan-out.
func (c *Client) GetAt(key string, lvl Level) ([]byte, bool, error) {
	var lastErr error
	for attempt := 0; attempt < len(c.addrs); attempt++ {
		p, err := c.conn(c.pick(key))
		if err != nil {
			lastErr = err
			continue
		}
		// nil destination: the value lands in a fresh buffer owned by
		// the application.
		resp, err := p.clientRead(uint8(lvl), key, nil)
		if err != nil {
			lastErr = err
			continue
		}
		if err := readStatusErr(resp.Status); err != nil {
			return nil, false, err
		}
		val := resp.Value
		if resp.Found && val == nil {
			val = []byte{} // present but empty: distinguishable from missing
		}
		return val, resp.Found, nil
	}
	return nil, false, lastErr
}

// ErrWriteFailed reports a write no replica acknowledged: the coordinator
// reached its whole replica group and every write failed. The write must
// surface as an error — before the OK flag existed, an all-replicas-down
// write was silently acknowledged.
var ErrWriteFailed = errors.New("kvstore: write failed on every replica")

// Put writes key=val through a coordinator at consistency level One.
func (c *Client) Put(key string, val []byte) error {
	return c.PutAt(key, val, One)
}

// PutAt writes key=val through a coordinator at the given consistency level.
// As with GetAt, transport failures rotate coordinators while a definitive
// level shortfall (errors.Is: ErrQuorumUnavailable, ErrTimeout — both also
// ErrWriteFailed) returns immediately.
func (c *Client) PutAt(key string, val []byte, lvl Level) error {
	return c.writeAt(key, val, lvl, false)
}

// Delete removes key through a coordinator at consistency level One.
func (c *Client) Delete(key string) error {
	return c.DeleteAt(key, One)
}

// DeleteAt removes key through a coordinator at the given consistency level.
// A delete travels the write path end to end — version-stamped, replicated
// to the key's whole group, hint-banked on transport failure — so its
// level/retry semantics are exactly PutAt's.
func (c *Client) DeleteAt(key string, lvl Level) error {
	return c.writeAt(key, nil, lvl, true)
}

func (c *Client) writeAt(key string, val []byte, lvl Level, del bool) error {
	var lastErr error
	for attempt := 0; attempt < len(c.addrs); attempt++ {
		p, err := c.conn(c.pick(key))
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := p.clientWrite(uint8(lvl), key, val, del)
		if err != nil {
			lastErr = err
			continue
		}
		if !resp.OK {
			// A classified shortfall is definitive — retrying another
			// coordinator cannot conjure the missing replicas or un-expire
			// the budget. Only the bare write failure rotates.
			if err := writeStatusErr(resp.Status); errors.Is(err, ErrQuorumUnavailable) || errors.Is(err, ErrTimeout) {
				return err
			}
			lastErr = ErrWriteFailed
			continue
		}
		return nil
	}
	return lastErr
}

// MultiGet reads a set of keys through a single coordinator RPC per
// wire.MaxBatchKeys chunk — the scatter-gather batch path: the coordinator
// partitions the keys by replica group, coalesces each group's keys into one
// C3-ranked replica sub-batch, scatters concurrently, and gathers per-key
// results. vals[i]/found[i] report key i; a missing key has found[i] false
// and vals[i] nil. Values within a chunk share one backing array; treat them
// as read-only or copy before appending.
func (c *Client) MultiGet(keys []string) (vals [][]byte, found []bool, err error) {
	return c.MultiGetAt(keys, One)
}

// MultiGetAt is MultiGet at an explicit consistency level: each sub-batch
// gathers the level's R replica responses (merged per key by highest version,
// with stale responders repaired before the batch returns). A sub-batch that
// cannot reach R replicas within the coordinator's budget degrades to
// not-found for its keys, mirroring MultiGet's budget-exhaustion behavior.
func (c *Client) MultiGetAt(keys []string, lvl Level) (vals [][]byte, found []bool, err error) {
	if len(keys) == 0 {
		return nil, nil, nil
	}
	vals = make([][]byte, len(keys))
	found = make([]bool, len(keys))
	for start := 0; start < len(keys); start += wire.MaxBatchKeys {
		end := min(start+wire.MaxBatchKeys, len(keys))
		if err := c.multiGetChunk(lvl, keys[start:end], vals[start:end], found[start:end]); err != nil {
			return nil, nil, err
		}
	}
	return vals, found, nil
}

func (c *Client) multiGetChunk(lvl Level, keys []string, vals [][]byte, found []bool) error {
	var lastErr error
	for attempt := 0; attempt < len(c.addrs); attempt++ {
		p, err := c.conn(c.pick(keys[0]))
		if err != nil {
			lastErr = err
			continue
		}
		// nil destination: the packed values land in a fresh buffer owned by
		// the application.
		ca, err := p.batchRead(wire.MsgBatchRead, uint8(lvl), keys, nil)
		if err != nil {
			lastErr = err
			continue
		}
		if len(ca.bfound) != len(keys) {
			putCall(ca)
			lastErr = errMismatchedResp
			continue
		}
		buf := ca.bbuf
		for i := range keys {
			found[i] = ca.bfound[i]
			if !found[i] {
				vals[i] = nil
				continue
			}
			v := buf[ca.boffs[i]:ca.boffs[i+1]:ca.boffs[i+1]]
			if len(v) == 0 {
				v = []byte{} // present but empty: distinguishable from missing
			}
			vals[i] = v
		}
		putCall(ca)
		return nil
	}
	return lastErr
}

// MultiPut writes a set of key/value pairs through a single coordinator RPC
// per wire.MaxBatchKeys chunk. oks[i] reports whether at least one replica
// applied key i (the same CL=ONE ack contract as Put). The error is non-nil
// for transport failures and — mirroring Put's ErrWriteFailed — when no key
// was acknowledged at all; a partial failure returns oks with a nil error so
// the caller can retry just the failed keys. oks is returned even alongside
// a transport error: chunks that went out before the failure keep their
// acks (those writes were applied), and the failed chunk's keys stay false.
func (c *Client) MultiPut(keys []string, vals [][]byte) (oks []bool, err error) {
	return c.MultiPutAt(keys, vals, One)
}

// MultiPutAt is MultiPut at an explicit consistency level: key i acks only
// when the level's W replicas applied it. A coordinator that answered but
// refused or missed the level returns its verdict immediately (errors.Is:
// ErrQuorumUnavailable / ErrTimeout, both also ErrWriteFailed) alongside the
// per-key acks gathered so far — at QUORUM the acked keys are durable at W
// replicas even when the batch as a whole fails.
func (c *Client) MultiPutAt(keys []string, vals [][]byte, lvl Level) (oks []bool, err error) {
	if len(keys) != len(vals) {
		return nil, errors.New("kvstore: MultiPut keys/values length mismatch")
	}
	if len(keys) == 0 {
		return nil, nil
	}
	oks = make([]bool, len(keys))
	for start := 0; start < len(keys); start += wire.MaxBatchKeys {
		end := min(start+wire.MaxBatchKeys, len(keys))
		if err := c.multiPutChunk(lvl, keys[start:end], vals[start:end], oks[start:end]); err != nil {
			return oks, err
		}
	}
	for _, ok := range oks {
		if ok {
			return oks, nil
		}
	}
	return oks, ErrWriteFailed
}

func (c *Client) multiPutChunk(lvl Level, keys []string, vals [][]byte, oks []bool) error {
	var lastErr error
	for attempt := 0; attempt < len(c.addrs); attempt++ {
		p, err := c.conn(c.pick(keys[0]))
		if err != nil {
			lastErr = err
			continue
		}
		res, status, _, err := p.batchWrite(wire.MsgBatchWrite, uint8(lvl), 0, keys, vals, nil)
		if err != nil {
			lastErr = err
			continue
		}
		if len(res) != len(keys) {
			lastErr = errMismatchedResp
			continue
		}
		copy(oks, res)
		return writeStatusErr(status)
	}
	return lastErr
}

// Close drops all connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.conns {
		if p != nil {
			p.close()
		}
	}
}
