package lsm

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// shardsFile persists a sharded store's layout in its root directory. The
// on-disk shard count always wins over the requested one: a node restarted
// with a different GOMAXPROCS (or an explicit knob change) must still route
// every key to the shard whose WAL and SSTs hold it.
const shardsFile = "SHARDS"

// Sharded is a store partitioned into independent sub-stores by key hash —
// the shard-per-core layout. Each shard owns its memtable, WAL (with its own
// committer goroutine and fsync groups), flush schedule, and SST set, so
// writes to unrelated keys never share a lock or an fsync group. Manifest
// and SST installs are per shard and therefore trivially sequenced: a shard
// never touches a sibling's files. A count of 1 reproduces the unsharded
// layout byte for byte (files in the root directory, no SHARDS marker).
type Sharded struct {
	shards []*Store
	n      uint32
}

// OpenSharded opens (or recovers) a store partitioned into n shards. With
// opts.Dir empty the shards are in-memory. With a directory, shard i lives
// under <dir>/shard-<i> and the root carries a SHARDS marker; a directory
// that already has a layout — a marker, or a legacy unsharded manifest/WAL —
// overrides n, so recovery always reads the layout that wrote the data.
// Shards recover in parallel, one goroutine per WAL.
func OpenSharded(opts Options, n int) (*Sharded, error) {
	if n < 1 {
		n = 1
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, err
		}
		if persisted, ok, err := readShardCount(opts.Dir); err != nil {
			return nil, err
		} else if ok {
			n = persisted
		} else if legacyLayout(opts.Dir) {
			n = 1
		} else if n > 1 {
			if err := writeShardCount(opts.Dir, n); err != nil {
				return nil, err
			}
		}
	}
	t := &Sharded{shards: make([]*Store, n), n: uint32(n)}
	if n == 1 {
		s, err := Open(opts)
		if err != nil {
			return nil, err
		}
		t.shards[0] = s
		return t, nil
	}
	sub := opts
	// The memtable budget is per node, not per shard: split it so a sharded
	// node flushes at the same total memory footprint as an unsharded one.
	if b := opts.withDefaults().FlushBytes / n; b > 0 {
		sub.FlushBytes = b
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := range t.shards {
		so := sub
		if opts.Dir != "" {
			so.Dir = filepath.Join(opts.Dir, fmt.Sprintf("shard-%d", i))
		}
		wg.Add(1)
		go func(i int, so Options) {
			defer wg.Done()
			t.shards[i], errs[i] = Open(so)
		}(i, so)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, s := range t.shards {
				if s != nil {
					s.Close()
				}
			}
			return nil, err
		}
	}
	return t, nil
}

func readShardCount(dir string) (int, bool, error) {
	b, err := os.ReadFile(filepath.Join(dir, shardsFile))
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil || n < 1 {
		return 0, false, fmt.Errorf("lsm: corrupt %s marker %q", shardsFile, b)
	}
	return n, true, nil
}

func writeShardCount(dir string, n int) error {
	// Marker install follows the manifest's crash discipline: write a temp
	// file, fsync it, rename into place, fsync the directory. A crash before
	// the rename leaves a .tmp the shards' own orphan sweep ignores (it is in
	// the root, not a shard dir) and the next open retries the install.
	tmp := filepath.Join(dir, shardsFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err = f.WriteString(strconv.Itoa(n) + "\n"); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, shardsFile)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// legacyLayout reports whether dir holds a pre-sharding single-store layout
// (manifest or WAL files directly in the root).
func legacyLayout(dir string) bool {
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return true
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), ".wal") || strings.HasSuffix(ent.Name(), ".sst") {
			return true
		}
	}
	return false
}

// ShardCount reports the number of shards.
func (t *Sharded) ShardCount() int { return int(t.n) }

// ShardFor reports the shard index owning key — FNV-1a over the key, mod the
// shard count. Stable for the life of the directory (the count is persisted).
func (t *Sharded) ShardFor(key string) int {
	if t.n == 1 {
		return 0
	}
	return int(fnv1a(key) % t.n)
}

// fnv1a is the 32-bit FNV-1a hash, inlined so shard routing costs no
// interface or allocation.
func fnv1a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// Shard exposes sub-store i (tests, diagnostics).
func (t *Sharded) Shard(i int) *Store { return t.shards[i] }

func (t *Sharded) shard(key string) *Store { return t.shards[t.ShardFor(key)] }

// Get delegates to the key's shard.
func (t *Sharded) Get(key string) ([]byte, bool) { return t.shard(key).Get(key) }

// GetAppend delegates to the key's shard.
func (t *Sharded) GetAppend(dst []byte, key string) ([]byte, bool) {
	return t.shard(key).GetAppend(dst, key)
}

// GetVersioned delegates to the key's shard.
func (t *Sharded) GetVersioned(dst []byte, key string) ([]byte, uint64, bool) {
	return t.shard(key).GetVersioned(dst, key)
}

// Version delegates to the key's shard.
func (t *Sharded) Version(key string) (uint64, bool) { return t.shard(key).Version(key) }

// Has delegates to the key's shard.
func (t *Sharded) Has(key string) bool { return t.shard(key).Has(key) }

// Put delegates to the key's shard.
func (t *Sharded) Put(key string, val []byte) error { return t.shard(key).Put(key, val) }

// Delete delegates to the key's shard.
func (t *Sharded) Delete(key string) error { return t.shard(key).Delete(key) }

// PutVersioned delegates to the key's shard.
func (t *Sharded) PutVersioned(key string, ver uint64, val []byte) (bool, error) {
	return t.shard(key).PutVersioned(key, ver, val)
}

// PutRawIfNewer delegates to the key's shard.
func (t *Sharded) PutRawIfNewer(key string, raw []byte) (bool, error) {
	return t.shard(key).PutRawIfNewer(key, raw)
}

// PutMulti applies a heterogeneous write batch routed by shard: each record
// lands in its key's shard, records sharing a shard share one WAL commit
// group, and the per-shard groups commit concurrently — the batch waits for
// the slowest shard, not the sum. Record i applies under the last-write-wins
// guard when vers[i] is non-zero and unconditionally otherwise.
func (t *Sharded) PutMulti(keys []string, vers []uint64, vals [][]byte) error {
	if t.n == 1 {
		return t.shards[0].PutMulti(keys, vers, vals)
	}
	return t.partitioned(keys, vals, func(s *Store, keys []string, vals [][]byte, idx []int) (*walCommit, error) {
		sc := scratchVers(len(idx))
		defer putScratchVers(sc)
		for j, i := range idx {
			(*sc)[j] = vers[i]
		}
		return s.applyMultiStart(keys, *sc, vals, nil)
	})
}

// ApplyMulti is PutMulti extended with per-record deletes (dels[i] marks a
// version-guarded tombstone), routed by shard like PutMulti. dels may be nil.
func (t *Sharded) ApplyMulti(keys []string, vers []uint64, vals [][]byte, dels []bool) error {
	if t.n == 1 {
		return t.shards[0].ApplyMulti(keys, vers, vals, dels)
	}
	return t.partitioned(keys, vals, func(s *Store, keys []string, vals [][]byte, idx []int) (*walCommit, error) {
		sc := scratchVers(len(idx))
		defer putScratchVers(sc)
		var sd []bool
		if dels != nil {
			sd = make([]bool, len(idx))
		}
		for j, i := range idx {
			(*sc)[j] = vers[i]
			if sd != nil {
				sd[j] = dels[i]
			}
		}
		return s.applyMultiStart(keys, *sc, vals, sd)
	})
}

// DeleteVersioned delegates to the key's shard.
func (t *Sharded) DeleteVersioned(key string, ver uint64) (bool, error) {
	return t.shard(key).DeleteVersioned(key, ver)
}

// PutAll partitions the batch by shard; per-shard sub-batches commit
// concurrently (one WAL group each).
func (t *Sharded) PutAll(keys []string, vals [][]byte) error {
	if t.n == 1 {
		return t.shards[0].PutAll(keys, vals)
	}
	return t.partitioned(keys, vals, func(s *Store, keys []string, vals [][]byte, _ []int) (*walCommit, error) {
		return s.putAllStart(keys, vals)
	})
}

// PutAllVersioned partitions the batch by shard under the shared version;
// per-shard sub-batches commit concurrently.
func (t *Sharded) PutAllVersioned(keys []string, vals [][]byte, ver uint64) error {
	if t.n == 1 {
		return t.shards[0].PutAllVersioned(keys, vals, ver)
	}
	return t.partitioned(keys, vals, func(s *Store, keys []string, vals [][]byte, _ []int) (*walCommit, error) {
		return s.putAllVersionedStart(keys, vals, ver)
	})
}

// batchScratch is the reusable partition buffer behind sharded batch writes:
// one pass groups the batch's indices by shard, a second slices out each
// shard's keys/vals views. Pooled so the batch hot path allocates only when
// a batch outgrows every previous one.
type batchScratch struct {
	keys []string
	vals [][]byte
	idx  []int
	offs []int        // per-shard [start,end) offsets, len n+1
	cws  []*walCommit // started commit groups awaiting waitCommit
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

var versScratchPool = sync.Pool{New: func() any { return new([]uint64) }}

func scratchVers(n int) *[]uint64 {
	p := versScratchPool.Get().(*[]uint64)
	if cap(*p) < n {
		*p = make([]uint64, n)
	}
	*p = (*p)[:n]
	return p
}

func putScratchVers(p *[]uint64) { versScratchPool.Put(p) }

// partitioned groups keys/vals by shard (a counting sort over the pooled
// scratch) and starts each touched shard's sub-batch through start — which
// must enqueue the shard's WAL commit group without waiting on it — then
// waits for every group, so the shards' fsyncs overlap. Each shard's writer
// is touched exactly once per batch.
func (t *Sharded) partitioned(keys []string, vals [][]byte,
	start func(s *Store, keys []string, vals [][]byte, idx []int) (*walCommit, error)) error {
	if len(keys) == 0 {
		return nil
	}
	n := int(t.n)
	sc := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(sc)
	if cap(sc.offs) < n+1 {
		sc.offs = make([]int, n+1)
		sc.cws = make([]*walCommit, 0, n)
	}
	offs := sc.offs[:n+1]
	for i := range offs {
		offs[i] = 0
	}
	for _, k := range keys {
		offs[t.ShardFor(k)+1]++
	}
	for i := 1; i <= n; i++ {
		offs[i] += offs[i-1]
	}
	if cap(sc.idx) < len(keys) {
		sc.idx = make([]int, len(keys))
		sc.keys = make([]string, len(keys))
		sc.vals = make([][]byte, len(keys))
	}
	idx, skeys, svals := sc.idx[:len(keys)], sc.keys[:len(keys)], sc.vals[:len(keys)]
	for i, k := range keys {
		sh := t.ShardFor(k)
		at := offs[sh]
		offs[sh]++
		idx[at] = i
		skeys[at] = k
		svals[at] = vals[i]
	}
	// The fill pass advanced each cursor to its shard's end; offs[sh-1] is
	// now shard sh's start.
	cws := sc.cws[:0]
	var firstErr error
	for sh := 0; sh < n; sh++ {
		lo := 0
		if sh > 0 {
			lo = offs[sh-1]
		}
		hi := offs[sh]
		if lo == hi {
			continue
		}
		cw, err := start(t.shards[sh], skeys[lo:hi], svals[lo:hi], idx[lo:hi])
		if err != nil {
			firstErr = err
			break
		}
		if cw != nil {
			cws = append(cws, cw)
		}
	}
	// Wait for every started commit group even after an error: acked state
	// must be settled before the caller sees the verdict.
	for i, cw := range cws {
		if err := waitCommit(cw); err != nil && firstErr == nil {
			firstErr = err
		}
		cws[i] = nil
	}
	sc.cws = cws[:0]
	// Scratch views hold caller data; drop the references before pooling.
	for i := range skeys {
		skeys[i] = ""
		svals[i] = nil
	}
	return firstErr
}

// AppendLiveKeys appends every shard's live keys to dst.
func (t *Sharded) AppendLiveKeys(dst []string) []string {
	for _, s := range t.shards {
		dst = s.AppendLiveKeys(dst)
	}
	return dst
}

// Flush flushes every shard's memtable.
func (t *Sharded) Flush() {
	for _, s := range t.shards {
		s.Flush()
	}
}

// Compact compacts every shard.
func (t *Sharded) Compact() {
	for _, s := range t.shards {
		s.Compact()
	}
}

// Close closes every shard (flush + final fsync each).
func (t *Sharded) Close() error {
	var first error
	for _, s := range t.shards {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Crash tears every shard down without flushing — the SIGKILL analogue.
func (t *Sharded) Crash() {
	for _, s := range t.shards {
		s.Crash()
	}
}

// Len reports the total number of live keys across shards.
func (t *Sharded) Len() int {
	total := 0
	for _, s := range t.shards {
		total += s.Len()
	}
	return total
}

// Runs reports the total run count across shards.
func (t *Sharded) Runs() int {
	total := 0
	for _, s := range t.shards {
		total += s.Runs()
	}
	return total
}

// MemBytes reports the total memtable payload across shards.
func (t *Sharded) MemBytes() int {
	total := 0
	for _, s := range t.shards {
		total += s.MemBytes()
	}
	return total
}

// Stats aggregates every shard's counters.
func (t *Sharded) Stats() Stats {
	var out Stats
	for _, s := range t.shards {
		st := s.Stats()
		out.Gets += st.Gets
		out.Puts += st.Puts
		out.Deletes += st.Deletes
		out.Flushes += st.Flushes
		out.Compactions += st.Compactions
		out.RunsConsulted += st.RunsConsulted
		out.BloomSkips += st.BloomSkips
		out.WALRecords += st.WALRecords
		out.GroupCommits += st.GroupCommits
		out.IOErrors += st.IOErrors
	}
	return out
}
