package kvstore

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"c3/internal/core"
)

// putBatchAndSettle MultiPuts keys=vals and waits until every key reads back
// through round-robin coordinators (CL=ONE acks before the fan-out lands).
func putBatchAndSettle(t *testing.T, cl *Client, keys []string, vals [][]byte) {
	t.Helper()
	oks, err := cl.MultiPut(keys, vals)
	if err != nil {
		t.Fatalf("MultiPut: %v", err)
	}
	for i, ok := range oks {
		if !ok {
			t.Fatalf("MultiPut did not ack key %q", keys[i])
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, found, err := cl.MultiGet(keys)
		if err != nil {
			t.Fatalf("MultiGet: %v", err)
		}
		all := true
		for i := range keys {
			if !found[i] || string(got[i]) != string(vals[i]) {
				all = false
				break
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("batch never became readable everywhere")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// keysExcludingNode generates n distinct keys whose replica groups all avoid
// node `out` (requires nodes > RF).
func keysExcludingNode(t *testing.T, node *Node, out core.ServerID, prefix string, n int) []string {
	t.Helper()
	var keys []string
	for i := 0; len(keys) < n; i++ {
		if i > 100000 {
			t.Fatal("could not find enough keys excluding the node")
		}
		key := fmt.Sprintf("%s-%d", prefix, i)
		hit := false
		for _, s := range node.readRing().ReplicasFor([]byte(key), nil) {
			if s == out {
				hit = true
				break
			}
		}
		if !hit {
			keys = append(keys, key)
		}
	}
	return keys
}

func batchKeysVals(prefix string, n int) ([]string, [][]byte) {
	keys := make([]string, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%s-%04d", prefix, i)
		vals[i] = []byte(fmt.Sprintf("value-of-%s-%04d", prefix, i))
	}
	return keys, vals
}

func TestMultiGetMultiPutRoundTrip(t *testing.T) {
	_, cl := startTestCluster(t, 5, Config{Seed: 31})
	keys, vals := batchKeysVals("mg", 64)
	putBatchAndSettle(t, cl, keys, vals)

	got, found, err := cl.MultiGet(keys)
	if err != nil {
		t.Fatalf("MultiGet: %v", err)
	}
	for i := range keys {
		if !found[i] {
			t.Fatalf("key %q missing", keys[i])
		}
		if string(got[i]) != string(vals[i]) {
			t.Fatalf("key %q = %q, want %q", keys[i], got[i], vals[i])
		}
	}
}

// TestMultiGetPartialMisses: a batch mixing present and never-written keys
// reports per-key status — the present keys' values intact, the missing keys
// found=false with nil values, in the client's key order.
func TestMultiGetPartialMisses(t *testing.T) {
	_, cl := startTestCluster(t, 5, Config{Seed: 32})
	keys, vals := batchKeysVals("pm", 16)
	putBatchAndSettle(t, cl, keys, vals)

	mixed := make([]string, 0, 32)
	for i := range keys {
		mixed = append(mixed, keys[i], fmt.Sprintf("pm-missing-%04d", i))
	}
	got, found, err := cl.MultiGet(mixed)
	if err != nil {
		t.Fatalf("MultiGet: %v", err)
	}
	for i := range mixed {
		if i%2 == 0 {
			if !found[i] || string(got[i]) != string(vals[i/2]) {
				t.Fatalf("present key %q: found=%v val=%q", mixed[i], found[i], got[i])
			}
		} else {
			if found[i] {
				t.Fatalf("missing key %q reported found", mixed[i])
			}
			if got[i] != nil {
				t.Fatalf("missing key %q carries value %q", mixed[i], got[i])
			}
		}
	}
}

// TestMultiGetEmptyValueDistinguishable: a present-but-empty value is found
// with a non-nil empty slice, like Get.
func TestMultiGetEmptyValueDistinguishable(t *testing.T) {
	_, cl := startTestCluster(t, 3, Config{Seed: 33})
	keys := []string{"empty-a", "empty-b"}
	putBatchAndSettle(t, cl, keys, [][]byte{{}, []byte("x")})
	got, found, err := cl.MultiGet(keys)
	if err != nil || !found[0] || !found[1] {
		t.Fatalf("MultiGet: found=%v err=%v", found, err)
	}
	if got[0] == nil || len(got[0]) != 0 {
		t.Fatalf("empty value = %v, want non-nil empty", got[0])
	}
}

// TestMultiGetChunksLargeBatches: batches beyond wire.MaxBatchKeys are split
// transparently into multiple RPCs, results reassembled in order.
func TestMultiGetChunksLargeBatches(t *testing.T) {
	if testing.Short() {
		t.Skip("large batch")
	}
	_, cl := startTestCluster(t, 3, Config{Seed: 34})
	keys, vals := batchKeysVals("chunk", 5000) // > MaxBatchKeys (4096): two chunks
	putBatchAndSettle(t, cl, keys, vals)
	got, found, err := cl.MultiGet(keys)
	if err != nil {
		t.Fatalf("MultiGet: %v", err)
	}
	for i := range keys {
		if !found[i] || string(got[i]) != string(vals[i]) {
			t.Fatalf("key %d: found=%v", i, found[i])
		}
	}
}

// TestBatchZeroResidualUnderHedgeAndDelay: batch traffic through the full
// race ladder (storage delay forces the non-inline path, hedging enabled)
// must leave zero outstanding accounting when it quiesces — every PickBatch/
// PickHedgeN of n keys balanced by exactly one weighted release.
func TestBatchZeroResidualUnderHedgeAndDelay(t *testing.T) {
	cfg := Config{
		Seed:          35,
		ReadDelayMean: 200 * time.Microsecond,
		ReadRepair:    -1,
	}
	cfg.Hedge.MinDelay = 50 * time.Microsecond // hedge aggressively
	c, cl := startTestCluster(t, 5, cfg)
	keys, vals := batchKeysVals("resid", 48)
	putBatchAndSettle(t, cl, keys, vals)
	for round := 0; round < 30; round++ {
		if _, _, err := cl.MultiGet(keys); err != nil {
			t.Fatalf("MultiGet round %d: %v", round, err)
		}
	}
	hedges := uint64(0)
	for _, n := range c.Nodes {
		hedges += n.HedgesIssued()
	}
	settleOutstanding(t, c.Nodes, 5, 3*time.Second)
	t.Logf("hedges issued (keys duplicated): %d", hedges)
}

// TestBatchSurvivesReplicaCrashMidBatch: killing a replica while batches are
// in flight must not lose keys — sub-batches toward the dead replica fail
// over to the next-ranked one — and the accounting residual on the surviving
// nodes must settle to zero.
func TestBatchSurvivesReplicaCrashMidBatch(t *testing.T) {
	cfg := Config{Seed: 36, ReadRepair: -1}
	c, cl := startTestCluster(t, 5, cfg)
	keys, vals := batchKeysVals("crash", 64)
	putBatchAndSettle(t, cl, keys, vals)

	// Talk only to node 0 so the victim is never our coordinator.
	solo, err := Dial([]string{c.Nodes[0].Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(solo.Close)

	victim := c.Nodes[4]
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(5 * time.Millisecond)
		victim.Close()
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, found, err := solo.MultiGet(keys)
		if err != nil {
			t.Fatalf("MultiGet during crash: %v", err)
		}
		all := true
		for i := range keys {
			if !found[i] || string(got[i]) != string(vals[i]) {
				all = false
				break
			}
		}
		select {
		case <-done:
			if all {
				// One more full read after the crash settled proves no key
				// was lost with the replica.
				settleOutstanding(t, c.Nodes[:4], 5, 3*time.Second)
				return
			}
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("batch reads never recovered every key after the crash")
		}
	}
}

// TestMultiPutAllReplicasDown: a batch write whose keys' whole replica groups
// are unreachable must surface ErrWriteFailed with every ok false — the
// batch counterpart of the ack-on-failure regression.
func TestMultiPutAllReplicasDown(t *testing.T) {
	c, _ := startTestCluster(t, 5, Config{Seed: 37})
	coordinator := c.Nodes[0]
	keys := keysExcludingNode(t, coordinator, 0, "mpad", 4)
	for i := 1; i < 5; i++ {
		c.Nodes[i].Close()
	}
	cl, err := Dial([]string{coordinator.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	vals := make([][]byte, len(keys))
	for i := range vals {
		vals[i] = []byte("v")
	}
	oks, err := cl.MultiPut(keys, vals)
	if err == nil {
		t.Fatal("all-replicas-down batch write was acknowledged")
	}
	if !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("MultiPut error = %v, want ErrWriteFailed", err)
	}
	for i, ok := range oks {
		if ok {
			t.Fatalf("key %q acked with its whole group down", keys[i])
		}
	}
	if coordinator.WriteFailures() == 0 {
		t.Fatal("coordinator did not count the failed batch writes")
	}
}

// TestMultiGetAllReplicasDownReportsMissing: with every replica of the keys'
// groups down, a batch read must come back per-key not-found (after the
// failover ladder exhausts the groups), not error or hang, and the
// coordinator's accounting must settle.
func TestMultiGetAllReplicasDownReportsMissing(t *testing.T) {
	c, _ := startTestCluster(t, 5, Config{Seed: 38})
	coordinator := c.Nodes[0]
	keys := keysExcludingNode(t, coordinator, 0, "mgad", 3)
	for i := 1; i < 5; i++ {
		c.Nodes[i].Close()
	}
	cl, err := Dial([]string{coordinator.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	start := time.Now()
	_, found, err := cl.MultiGet(keys)
	if err != nil {
		t.Fatalf("MultiGet: %v", err)
	}
	for i := range keys {
		if found[i] {
			t.Fatalf("key %q reported found with its whole group down", keys[i])
		}
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("all-down batch read took %v", elapsed)
	}
	settleOutstanding(t, c.Nodes[:1], 5, 3*time.Second)
}

// TestReadBudgetBoundsStalledReads: the ReadBudget config field (threaded
// through both the point and batch escalation ladders) must bound a read
// whose every replica is stalled — the read reports not-found within the
// budget instead of riding the stall, and the abandoned in-flight requests
// release their accounting.
func TestReadBudgetBoundsStalledReads(t *testing.T) {
	const stall = 400 * time.Millisecond
	cfg := Config{Seed: 39, ReadBudget: 60 * time.Millisecond, ReadRepair: -1}
	cfg.Hedge.Disabled = true // the stall is everywhere; a hedge cannot rescue
	c, cl := startTestCluster(t, 3, cfg)
	keys, vals := batchKeysVals("budget", 8)
	putBatchAndSettle(t, cl, keys, vals)

	for _, n := range c.Nodes {
		n.SetSlowdown(stall)
	}
	start := time.Now()
	_, ok, err := cl.Get(keys[0])
	pointElapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if ok {
		t.Fatal("stalled point read returned a value inside a 60ms budget")
	}
	if pointElapsed >= stall {
		t.Fatalf("point read took %v, want < the %v stall (budget must cut it)", pointElapsed, stall)
	}

	start = time.Now()
	_, found, err := cl.MultiGet(keys)
	batchElapsed := time.Since(start)
	if err != nil {
		t.Fatalf("MultiGet: %v", err)
	}
	for i := range keys {
		if found[i] {
			t.Fatalf("stalled batch read returned key %q inside the budget", keys[i])
		}
	}
	if batchElapsed >= stall {
		t.Fatalf("batch read took %v, want < the %v stall", batchElapsed, stall)
	}

	for _, n := range c.Nodes {
		n.SetSlowdown(0)
	}
	settleOutstanding(t, c.Nodes, 3, 5*time.Second)
}

// TestBatchKeysSpanGroups sanity-checks the partition: a 64-key batch on a
// 5-node RF=3 ring touches more than one replica group and every key lands
// in exactly one sub-batch.
func TestBatchKeysSpanGroups(t *testing.T) {
	c, _ := startTestCluster(t, 5, Config{Seed: 40})
	n := c.Nodes[0]
	keys, _ := batchKeysVals("span", 64)
	subs, where := n.partitionBatch(n.topo.Load(), keys)
	if len(subs) < 2 {
		t.Fatalf("64 keys partitioned into %d sub-batches; want several groups", len(subs))
	}
	seen := 0
	for _, sb := range subs {
		if len(sb.keys) != len(sb.pos) {
			t.Fatalf("sub-batch keys/pos mismatch: %d vs %d", len(sb.keys), len(sb.pos))
		}
		if len(sb.group) != 3 {
			t.Fatalf("sub-batch group size = %d, want RF=3", len(sb.group))
		}
		seen += len(sb.keys)
	}
	if seen != len(keys) {
		t.Fatalf("partition covers %d keys, want %d", seen, len(keys))
	}
	for i, ref := range where {
		if ref.sb.keys[ref.j] != keys[i] {
			t.Fatalf("where[%d] points at %q, want %q", i, ref.sb.keys[ref.j], keys[i])
		}
		if ref.sb.pos[ref.j] != i {
			t.Fatalf("where[%d].pos = %d", i, ref.sb.pos[ref.j])
		}
	}
}

// TestMultiGetOversizedResponseFailsFast: a batch whose values cannot fit
// one response frame (sum > wire.MaxFrame while each value is within
// MaxValueLen) must fail fast — an error or per-key not-founds — never hang
// the client on a silently dropped response, and the cluster must still
// close cleanly (no wedged serve goroutines).
func TestMultiGetOversizedResponseFailsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("moves ~60MB over loopback")
	}
	_, cl := startTestCluster(t, 3, Config{Seed: 43, ReadRepair: -1})
	keys := []string{"huge-0", "huge-1", "huge-2"}
	val := make([]byte, 7<<20) // each fits a frame; three together overflow MaxFrame
	for _, k := range keys {
		if err := cl.Put(k, val); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	for _, k := range keys { // point reads must still work
		for attempt := 0; ; attempt++ {
			if v, ok, err := cl.Get(k); err == nil && ok && len(v) == len(val) {
				break
			} else if attempt > 100 {
				t.Fatalf("warm Get(%s): ok=%v err=%v", k, ok, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	type result struct {
		found []bool
		err   error
	}
	done := make(chan result, 1)
	go func() {
		_, found, err := cl.MultiGet(keys)
		done <- result{found, err}
	}()
	select {
	case res := <-done:
		if res.err == nil {
			for i, ok := range res.found {
				if ok {
					t.Fatalf("key %q reported found from an unencodable response", keys[i])
				}
			}
		}
		// Either outcome — transport error or all-not-found — is a fast,
		// honest failure. The cluster teardown in Cleanup asserts no wedge.
	case <-time.After(15 * time.Second):
		t.Fatal("oversized MultiGet hung")
	}
}

// TestBatchAccountingUsesWeights: a MultiGet through a coordinator with a
// selector that tracks outstanding counts must account the whole sub-batch
// (n keys) while in flight — observable indirectly: after quiescence the
// residual is zero even though dispatches moved the counters by n at a time.
// Read repair is left at its default here, so the batch repair probes
// (maybeBatchReadRepair) run too and their weighted accounting must settle.
func TestBatchAccountingUsesWeights(t *testing.T) {
	cfg := Config{Seed: 41, ReadDelayMean: 100 * time.Microsecond}
	c, cl := startTestCluster(t, 5, cfg)
	keys, vals := batchKeysVals("weights", 32)
	putBatchAndSettle(t, cl, keys, vals)
	for i := 0; i < 10; i++ {
		if _, _, err := cl.MultiGet(keys); err != nil {
			t.Fatal(err)
		}
	}
	settleOutstanding(t, c.Nodes, 5, 3*time.Second)
	// The ranker's q̄ must have digested batch feedback without going
	// negative or NaN: probe a score read under the lock.
	for _, n := range c.Nodes {
		n.sels.Each(func(c *core.Client) {
			c.Inspect(func(r core.Ranker) {
				if cr, ok := r.(*core.CubicRanker); ok {
					for p := 0; p < 5; p++ {
						q := cr.QueueEstimate(core.ServerID(p))
						if q < 1 || q != q {
							t.Fatalf("node %d q̂ toward %d = %v", n.ID(), p, q)
						}
					}
				}
			})
		})
	}
}
