// Package stats implements the measurement toolkit used by every experiment:
// percentile summaries, ECDFs, histograms, windowed load time series, moving
// medians, and confidence intervals. All of it is stdlib-only and
// allocation-conscious; latency samples for a full experiment run (millions
// of points) are held as flat float64 slices.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations and answers distribution queries.
// It keeps every observation (experiments need exact high percentiles),
// plus Welford running moments for O(1) mean/variance.
type Sample struct {
	xs     []float64
	sorted bool

	n            int
	mean, m2     float64
	minV, maxV   float64
	haveExtremes bool
}

// NewSample returns a Sample with capacity hint n.
func NewSample(n int) *Sample {
	return &Sample{xs: make([]float64, 0, n)}
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if !s.haveExtremes {
		s.minV, s.maxV = x, x
		s.haveExtremes = true
	} else {
		if x < s.minV {
			s.minV = x
		}
		if x > s.maxV {
			s.maxV = x
		}
	}
}

// Count reports the number of observations.
func (s *Sample) Count() int { return s.n }

// Mean reports the arithmetic mean, or 0 if empty.
func (s *Sample) Mean() float64 { return s.mean }

// Variance reports the unbiased sample variance, or 0 if fewer than 2 points.
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev reports the sample standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Min reports the smallest observation, or 0 if empty.
func (s *Sample) Min() float64 { return s.minV }

// Max reports the largest observation, or 0 if empty.
func (s *Sample) Max() float64 { return s.maxV }

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile reports the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. It returns 0 for an empty sample and
// clamps p to [0,100].
func (s *Sample) Percentile(p float64) float64 {
	if s.n == 0 {
		return 0
	}
	s.sort()
	return percentileSorted(s.xs, p)
}

// Quantile is Percentile with q in [0,1].
func (s *Sample) Quantile(q float64) float64 { return s.Percentile(q * 100) }

// percentileSorted computes the percentile of an ascending slice.
func percentileSorted(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p <= 0 {
		return xs[0]
	}
	if p >= 100 {
		return xs[len(xs)-1]
	}
	rank := p / 100 * float64(len(xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return xs[lo]
	}
	frac := rank - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// Median reports the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// ECDFPoint is one point of an empirical CDF: fraction F of observations ≤ X.
type ECDFPoint struct {
	X float64
	F float64
}

// ECDF reports the empirical CDF reduced to at most n evenly spaced points
// (in rank space). n ≤ 1 yields a single point at the maximum.
func (s *Sample) ECDF(n int) []ECDFPoint {
	if s.n == 0 {
		return nil
	}
	s.sort()
	if n > s.n {
		n = s.n
	}
	if n < 1 {
		n = 1
	}
	out := make([]ECDFPoint, 0, n)
	for i := 0; i < n; i++ {
		var idx int
		if n == 1 {
			idx = s.n - 1
		} else {
			idx = i * (s.n - 1) / (n - 1)
		}
		out = append(out, ECDFPoint{X: s.xs[idx], F: float64(idx+1) / float64(s.n)})
	}
	return out
}

// FractionBelow reports the fraction of observations ≤ x.
func (s *Sample) FractionBelow(x float64) float64 {
	if s.n == 0 {
		return 0
	}
	s.sort()
	i := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(s.n)
}

// Summary is a fixed set of distribution statistics, matching the metrics the
// paper reports (mean, median, 95th, 99th, 99.9th).
type Summary struct {
	Count                        int
	Mean, P50, P95, P99, P999    float64
	Min, Max, Stddev             float64
	TailToMedian, P999MinusP50   float64 // the paper's headline shape metrics
	P99MinusP50, MeanErrHalf95CI float64
}

// Summarize computes a Summary of the sample.
func (s *Sample) Summarize() Summary {
	sum := Summary{
		Count:  s.n,
		Mean:   s.Mean(),
		P50:    s.Percentile(50),
		P95:    s.Percentile(95),
		P99:    s.Percentile(99),
		P999:   s.Percentile(99.9),
		Min:    s.Min(),
		Max:    s.Max(),
		Stddev: s.Stddev(),
	}
	if sum.P50 > 0 {
		sum.TailToMedian = sum.P999 / sum.P50
	}
	sum.P999MinusP50 = sum.P999 - sum.P50
	sum.P99MinusP50 = sum.P99 - sum.P50
	if s.n > 0 {
		sum.MeanErrHalf95CI = 1.96 * s.Stddev() / math.Sqrt(float64(s.n))
	}
	return sum
}

// String renders the summary compactly (values interpreted as milliseconds).
func (u Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f p99.9=%.2f max=%.2f",
		u.Count, u.Mean, u.P50, u.P95, u.P99, u.P999, u.Max)
}

// MeanCI95 reports the 95% confidence half-interval of the mean across a set
// of per-run values (normal approximation), as used for the paper's bar-plot
// error bars. It returns mean and half-width.
func MeanCI95(runs []float64) (mean, half float64) {
	n := len(runs)
	if n == 0 {
		return 0, 0
	}
	var sum float64
	for _, v := range runs {
		sum += v
	}
	mean = sum / float64(n)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, v := range runs {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return mean, 1.96 * sd / math.Sqrt(float64(n))
}

// Histogram is a fixed-width linear histogram over [lo, hi); out-of-range
// observations land in clamped edge buckets.
type Histogram struct {
	lo, hi  float64
	width   float64
	buckets []int
	n       int
}

// NewHistogram returns a histogram with nb buckets over [lo, hi).
// It panics on degenerate bounds or a non-positive bucket count.
func NewHistogram(lo, hi float64, nb int) *Histogram {
	if !(hi > lo) || nb <= 0 {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(nb), buckets: make([]int, nb)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.n++
}

// Count reports total observations.
func (h *Histogram) Count() int { return h.n }

// Bucket reports the count of bucket i.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// NumBuckets reports the number of buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// BucketLow reports the inclusive lower bound of bucket i.
func (h *Histogram) BucketLow(i int) float64 { return h.lo + float64(i)*h.width }

// String renders an ASCII bar chart, one row per non-empty bucket.
func (h *Histogram) String() string {
	var b strings.Builder
	maxC := 0
	for _, c := range h.buckets {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		bar := 0
		if maxC > 0 {
			bar = c * 50 / maxC
		}
		fmt.Fprintf(&b, "%10.2f |%-50s| %d\n", h.BucketLow(i), strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Windowed counts events into consecutive fixed-width time windows. It backs
// the paper's "requests received per 100 ms" plots (Figs. 2, 8, 9).
type Windowed struct {
	width  int64 // ns
	counts []int
}

// NewWindowed returns a Windowed counter with the given window width (ns).
// It panics if width is not positive.
func NewWindowed(width int64) *Windowed {
	if width <= 0 {
		panic("stats: window width must be positive")
	}
	return &Windowed{width: width}
}

// Record counts one event at absolute time t (ns, t ≥ 0).
func (w *Windowed) Record(t int64) {
	if t < 0 {
		t = 0
	}
	i := int(t / w.width)
	for len(w.counts) <= i {
		w.counts = append(w.counts, 0)
	}
	w.counts[i]++
}

// Series reports the per-window counts (shared slice; callers must not
// modify it).
func (w *Windowed) Series() []int { return w.counts }

// Width reports the window width in nanoseconds.
func (w *Windowed) Width() int64 { return w.width }

// Total reports the total number of recorded events.
func (w *Windowed) Total() int {
	t := 0
	for _, c := range w.counts {
		t += c
	}
	return t
}

// Distribution converts the per-window counts to a Sample, for ECDFs over
// "reads served per window" (Fig. 8).
func (w *Windowed) Distribution() *Sample {
	s := NewSample(len(w.counts))
	for _, c := range w.counts {
		s.Add(float64(c))
	}
	return s
}

// OscillationIndex quantifies load oscillation as the ratio between the 99th
// percentile and the median of per-window counts. Synchronized herd behavior
// (Fig. 2) yields a large index; smooth load (Fig. 9 top) a small one.
func (w *Windowed) OscillationIndex() float64 {
	d := w.Distribution()
	med := d.Percentile(50)
	if med <= 0 {
		// Degenerate: mostly-empty windows punctuated by bursts is the
		// worst oscillation; report p99 against a floor of one request.
		med = 1
	}
	return d.Percentile(99) / med
}

// MovingMedian applies a centered moving-median filter of the given window
// size to xs (the paper uses a 50-sample moving median in Fig. 11, citing
// robustness over moving averages). Window is clamped at the edges.
func MovingMedian(xs []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(xs))
	buf := make([]float64, 0, window)
	half := window / 2
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := lo + window
		if hi > len(xs) {
			hi = len(xs)
		}
		buf = append(buf[:0], xs[lo:hi]...)
		sort.Float64s(buf)
		m := len(buf)
		if m%2 == 1 {
			out[i] = buf[m/2]
		} else {
			out[i] = (buf[m/2-1] + buf[m/2]) / 2
		}
	}
	return out
}
