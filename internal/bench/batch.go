package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"c3/internal/kvstore"
	"c3/internal/sim"
	"c3/internal/stats"
	"c3/internal/workload"
)

// Batch access modes compared per cell.
const (
	// batchModeMulti issues one MultiGet per K-key batch — the scatter-gather
	// path: per-replica coalescing, C3-ranked sub-batch fan-out, one client
	// RPC.
	batchModeMulti = "multiget"
	// batchModePoint issues the K keys as concurrent point Gets — the
	// pipelined baseline a batch-less client is stuck with: K RPCs, K
	// rate-limiter decisions, K chances to hit the tail.
	batchModePoint = "pointgets"
)

// BatchRow is one (strategy, hedging, batch-size, mode) cell.
type BatchRow struct {
	Strategy string  `json:"strategy"`
	Hedged   bool    `json:"hedged"`
	Batch    int     `json:"batch"`
	Mode     string  `json:"mode"`
	Batches  int     `json:"batches"`
	Keys     int     `json:"keys"`
	Errors   int     `json:"errors"`
	Seconds  float64 `json:"seconds"`
	// KeysPerSec is the end-to-end key throughput; BatchP*Us are the
	// latency percentiles of whole batches (the page-load metric: a
	// multi-key request is done when its slowest key is done).
	KeysPerSec float64 `json:"keys_per_sec"`
	BatchP50Us float64 `json:"batch_p50_us"`
	BatchP99Us float64 `json:"batch_p99_us"`
	// Hedges aggregates the coordinators' speculative duplicates (measured
	// in keys for the batch path).
	Hedges uint64 `json:"hedges"`
	// OutstandingResidual is the selector accounting left after quiescence —
	// non-zero means the batch ladder leaked.
	OutstandingResidual float64 `json:"outstanding_residual"`
}

// BatchResult is the machine-readable record of the batch benchmark
// (BENCH_batch.json): MultiGet vs pipelined point gets across batch sizes,
// strategies, and hedging.
type BatchResult struct {
	Config          Meta       `json:"config"`
	Nodes           int        `json:"nodes"`
	Workers         int        `json:"workers"`
	Keys            int        `json:"keys"`
	ValueBytes      int        `json:"value_bytes"`
	ReadDelayMeanUs float64    `json:"read_delay_mean_us"`
	Rows            []BatchRow `json:"rows"`
}

const (
	batchNodes      = 5
	batchWorkers    = 6
	batchKeyspace   = 512
	batchValueBytes = 128
	batchReadDelay  = 500 * time.Microsecond
)

// batchSizes is the satellite sweep: small, medium, and page-sized batches.
var batchSizes = []int{4, 16, 64}

// batchOps reports the per-cell batch budget for the scale.
func (o Options) batchOps() int {
	switch o.Scale {
	case Full:
		return 4_000
	case Medium:
		return 1_200
	default:
		return 250
	}
}

// batchStrategies reports the strategies compared at the scale (quick covers
// C3 only, like the tail benchmark).
func (o Options) batchStrategies() []string {
	if o.Scale == Quick {
		return []string{kvstore.StratC3}
	}
	return []string{kvstore.StratC3, kvstore.StratRR}
}

// runBatchRow boots a cluster and drives one cell of the grid.
func runBatchRow(o Options, strategy string, hedged bool, batch int, mode string, seed uint64) (BatchRow, error) {
	row := BatchRow{Strategy: strategy, Hedged: hedged, Batch: batch, Mode: mode}
	cfg := kvstore.Config{
		Strategy:      strategy,
		Seed:          seed,
		ReadDelayMean: batchReadDelay,
		ReadRepair:    -1, // isolate the batch path: no repair broadcasts
	}
	cfg.Hedge.Disabled = !hedged
	cluster, err := kvstore.StartCluster(batchNodes, cfg)
	if err != nil {
		return row, err
	}
	defer cluster.Close()
	cl, err := kvstore.Dial(cluster.Addrs())
	if err != nil {
		return row, err
	}
	defer cl.Close()

	keys := make([]string, batchKeyspace)
	vals := make([][]byte, batchKeyspace)
	val := make([]byte, batchValueBytes)
	for i := range val {
		val[i] = byte(i)
	}
	for i := range keys {
		keys[i] = fmt.Sprintf("batch-%05d", i)
		vals[i] = val
	}
	if _, err := cl.MultiPut(keys, vals); err != nil {
		return row, err
	}
	// CL=ONE: wait until every key reads back from round-robin coordinators.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, found, err := cl.MultiGet(keys)
		all := err == nil
		if all {
			for _, ok := range found {
				if !ok {
					all = false
					break
				}
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			return row, fmt.Errorf("bench: batch keyspace never became readable: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	batches := o.batchOps()
	perWorker := batches / batchWorkers
	sizer := workload.FixedBatch(batch)
	zipf := workload.NewScrambled(batchKeyspace, 0.99)
	lat := make([][]float64, batchWorkers)
	// Atomic: the pointgets mode increments a worker's slot from its K
	// concurrent per-key goroutines.
	errCounts := make([]atomic.Int64, batchWorkers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < batchWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := sim.RNG(seed, uint64(w)+29)
			samples := make([]float64, 0, perWorker)
			req := make([]string, 0, batch)
			for i := 0; i < perWorker; i++ {
				req = req[:0]
				for k := 0; k < sizer.Keys(r); k++ {
					req = append(req, keys[int(zipf.Next(r))%batchKeyspace])
				}
				t0 := time.Now()
				switch mode {
				case batchModeMulti:
					_, found, err := cl.MultiGet(req)
					if err != nil {
						errCounts[w].Add(1)
						continue
					}
					for _, ok := range found {
						if !ok {
							errCounts[w].Add(1)
						}
					}
				case batchModePoint:
					// Pipelined point gets: all K in flight at once, done
					// when the slowest answers — K RPCs against MultiGet's
					// one.
					var pwg sync.WaitGroup
					for _, k := range req {
						pwg.Add(1)
						go func(k string) {
							defer pwg.Done()
							if _, ok, err := cl.Get(k); err != nil || !ok {
								errCounts[w].Add(1)
							}
						}(k)
					}
					pwg.Wait()
				}
				samples = append(samples, float64(time.Since(t0).Nanoseconds())/1e3)
			}
			lat[w] = samples
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	residual := func() float64 {
		total := 0.0
		for _, n := range cluster.Nodes {
			for p := 0; p < batchNodes; p++ {
				total += n.OutstandingToward(p)
			}
		}
		return total
	}
	settle := time.Now().Add(2 * time.Second)
	for residual() != 0 && time.Now().Before(settle) {
		time.Sleep(10 * time.Millisecond)
	}

	sample := stats.NewSample(batches)
	measured := 0
	for _, s := range lat {
		measured += len(s)
		for _, x := range s {
			sample.Add(x)
		}
	}
	for i := range errCounts {
		row.Errors += int(errCounts[i].Load())
	}
	for _, n := range cluster.Nodes {
		row.Hedges += n.HedgesIssued()
	}
	row.Batches = measured
	row.Keys = measured * batch
	row.Seconds = elapsed.Seconds()
	row.KeysPerSec = float64(row.Keys) / elapsed.Seconds()
	row.BatchP50Us = sample.Percentile(50)
	row.BatchP99Us = sample.Percentile(99)
	row.OutstandingResidual = residual()
	return row, nil
}

// RunBatch executes the full strategy × hedging × batch-size × mode grid.
func RunBatch(o Options) (BatchResult, error) {
	res := BatchResult{
		Config:          o.meta(runtime.GOMAXPROCS(0), SyncInMemory),
		Nodes:           batchNodes,
		Workers:         batchWorkers,
		Keys:            batchKeyspace,
		ValueBytes:      batchValueBytes,
		ReadDelayMeanUs: float64(batchReadDelay) / 1e3,
	}
	seed := uint64(1)
	for _, strategy := range o.batchStrategies() {
		for _, hedged := range []bool{true, false} {
			for _, batch := range batchSizes {
				for _, mode := range []string{batchModeMulti, batchModePoint} {
					row, err := runBatchRow(o, strategy, hedged, batch, mode, seed)
					if err != nil {
						return res, fmt.Errorf("batch %s/hedged=%v/%d/%s: %w",
							strategy, hedged, batch, mode, err)
					}
					res.Rows = append(res.Rows, row)
					seed += 107
				}
			}
		}
	}
	return res, nil
}

// findBatchRow locates one cell.
func findBatchRow(res BatchResult, strategy string, hedged bool, batch int, mode string) (BatchRow, bool) {
	for _, row := range res.Rows {
		if row.Strategy == strategy && row.Hedged == hedged && row.Batch == batch && row.Mode == mode {
			return row, true
		}
	}
	return BatchRow{}, false
}

// writeBatchJSON writes the machine-readable record to path.
func writeBatchJSON(res BatchResult, path string) error {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}

// Batch is the runner for the scatter-gather benchmark: MultiGet vs
// pipelined point gets across batch sizes, strategies, and hedging. With
// Options.BatchJSONPath set it also writes BENCH_batch.json.
func Batch(o Options) *Report {
	r := newReport("batch", "batch scatter-gather: MultiGet vs pipelined point gets")
	res, err := RunBatch(o)
	if err != nil {
		r.fail(err)
		return r
	}
	r.printf("%d nodes, %d workers, %d keys × %dB values, storage delay %.1fms, batch sizes %v",
		res.Nodes, res.Workers, res.Keys, res.ValueBytes, res.ReadDelayMeanUs/1e3, batchSizes)
	for _, row := range res.Rows {
		mode := "unhedged"
		if row.Hedged {
			mode = "hedged"
		}
		r.printf("  %-3s %-8s K=%-3d %-9s keys/s=%7.0f p50=%7.0fµs p99=%8.0fµs errs=%d resid=%.0f",
			row.Strategy, mode, row.Batch, row.Mode,
			row.KeysPerSec, row.BatchP50Us, row.BatchP99Us, row.Errors, row.OutstandingResidual)
	}
	// Headline: the acceptance gate of the batch refactor is MultiGet(64)
	// beating 64 pipelined point gets on both key throughput and batch p99
	// in every C3 cell (hedged and unhedged); smaller sizes are printed for
	// the trend.
	worstThr, worstP99 := 1e18, 1e18
	resid := 0.0
	for _, hedged := range []bool{true, false} {
		for _, batch := range batchSizes {
			multi, ok1 := findBatchRow(res, kvstore.StratC3, hedged, batch, batchModeMulti)
			point, ok2 := findBatchRow(res, kvstore.StratC3, hedged, batch, batchModePoint)
			if !ok1 || !ok2 || point.KeysPerSec == 0 || multi.BatchP99Us == 0 {
				continue
			}
			thr := multi.KeysPerSec / point.KeysPerSec
			p99 := point.BatchP99Us / multi.BatchP99Us
			if batch == 64 {
				if thr < worstThr {
					worstThr = thr
				}
				if p99 < worstP99 {
					worstP99 = p99
				}
			}
			r.printf("  C3 K=%-3d %s: MultiGet ×%.2f keys/s, ×%.2f batch p99 vs point gets",
				batch, map[bool]string{true: "hedged", false: "unhedged"}[hedged], thr, p99)
		}
	}
	for _, row := range res.Rows {
		resid += row.OutstandingResidual
	}
	r.Metric("batch_C3_64_min_throughput_gain", worstThr)
	r.Metric("batch_C3_64_min_p99_gain", worstP99)
	r.Metric("batch_outstanding_residual_total", resid)
	if multi, ok := findBatchRow(res, kvstore.StratC3, true, 64, batchModeMulti); ok {
		if point, ok := findBatchRow(res, kvstore.StratC3, true, 64, batchModePoint); ok {
			r.Metric("batch_C3_hedged_64_multiget_keys_per_sec", multi.KeysPerSec)
			r.Metric("batch_C3_hedged_64_pointgets_keys_per_sec", point.KeysPerSec)
			r.Metric("batch_C3_hedged_64_multiget_p99_us", multi.BatchP99Us)
			r.Metric("batch_C3_hedged_64_pointgets_p99_us", point.BatchP99Us)
		}
	}
	if o.BatchJSONPath != "" {
		if err := writeBatchJSON(res, o.BatchJSONPath); err != nil {
			r.printf("write %s: %v", o.BatchJSONPath, err)
		} else {
			r.printf("wrote %s", o.BatchJSONPath)
		}
	}
	return r
}
