package kvstore

import (
	"fmt"
	"math"
	"strings"
	"time"

	"c3/internal/core"
)

// Stats snapshot: one coherent, race-safe gather of everything the node
// knows about itself — the C3 signals per peer, the coordinator counters,
// the hint-handoff ledger, per-shard queue state, and the LSM's counters.
//
// Coherence rules: per-peer ranker signals are read under each shard
// selector's lock (core.Client.Inspect), so a peer's outstanding/q̂/T̄/R̄
// within one shard are mutually consistent; counters are individually atomic
// but not mutually transactional (a snapshot taken mid-write may show the
// ok before the hint, or vice versa). Nothing here blocks the hot path
// beyond those short lock holds.

// PeerSignalStats is one peer's C3 signals aggregated over the node's shard
// selectors: outstanding sums (total in-flight toward the peer), the EWMAs
// average over the shards that have actually sent to the peer.
type PeerSignalStats struct {
	ID          int     `json:"id"`
	Addr        string  `json:"addr,omitempty"`
	Self        bool    `json:"self,omitempty"`
	Outstanding float64 `json:"outstanding"`
	QHat        float64 `json:"qhat"`
	QBar        float64 `json:"qbar"`
	TBarMs      float64 `json:"tbar_ms"`
	RBarMs      float64 `json:"rbar_ms"`
	Score       float64 `json:"score"`  // Ψ averaged over scoring shards; 0 until scored
	Scored      bool    `json:"scored"` // false: no shard has feedback for this peer yet
}

// ShardQueueStats is one storage shard's hot-path queue state.
type ShardQueueStats struct {
	PendingReads  int64  `json:"pending_reads"`
	SvcTimeUs     uint64 `json:"svc_time_us"` // smoothed replica-read service time
	WriteQueueLen int    `json:"write_queue_len"`
	WriteQueueCap int    `json:"write_queue_cap"`
}

// StoreStats is the LSM layer's state, summed over shards.
type StoreStats struct {
	Keys         int    `json:"keys"`
	Runs         int    `json:"runs"`
	MemBytes     int    `json:"mem_bytes"`
	Gets         uint64 `json:"gets"`
	Puts         uint64 `json:"puts"`
	Deletes      uint64 `json:"deletes"`
	Flushes      uint64 `json:"flushes"`
	Compactions  uint64 `json:"compactions"`
	WALRecords   uint64 `json:"wal_records"`
	GroupCommits uint64 `json:"group_commits"`
	BloomSkips   uint64 `json:"bloom_skips"`
	IOErrors     uint64 `json:"io_errors"`
}

// NodeStats is one coherent snapshot of a node's observable state.
type NodeStats struct {
	ID    int    `json:"id"`
	Epoch uint64 `json:"epoch"`

	SrttMs   float64 `json:"srtt_ms"`   // smoothed replica-read RTT (hedge clock)
	RttvarMs float64 `json:"rttvar_ms"` // its RFC 6298 variance term

	ReadsServed      uint64 `json:"reads_served"`
	ReadsCoordinated uint64 `json:"reads_coordinated"`
	ReadsWaited      uint64 `json:"reads_waited"` // backpressure hits
	HedgesSent       uint64 `json:"hedges_sent"`
	HedgeWins        uint64 `json:"hedge_wins"`
	WriteFails       uint64 `json:"write_fails"`
	QuorumFails      uint64 `json:"quorum_fails"`
	Repairs          uint64 `json:"repairs"`

	HintsPending  int    `json:"hints_pending"`
	HintsStored   uint64 `json:"hints_stored"`
	HintsReplayed uint64 `json:"hints_replayed"`
	HintsDropped  uint64 `json:"hints_dropped"`

	Peers  []PeerSignalStats `json:"peers"`
	Shards []ShardQueueStats `json:"shards"`
	Store  StoreStats        `json:"store"`
}

// StatsSnapshot gathers the node's observable state. Safe to call
// concurrently with live traffic from any goroutine.
func (n *Node) StatsSnapshot() NodeStats {
	topo := n.topo.Load()
	st := NodeStats{
		ID:    int(n.id),
		Epoch: topo.epoch(),

		SrttMs:   float64(n.srttNs.Load()) / 1e6,
		RttvarMs: float64(n.rttvarNs.Load()) / 1e6,

		ReadsServed:      n.served.Load(),
		ReadsCoordinated: n.coord.Load(),
		ReadsWaited:      n.waited.Load(),
		HedgesSent:       n.sels.HedgesSent(),
		HedgeWins:        n.hedgeWins.Load(),
		WriteFails:       n.writeFails.Load(),
		QuorumFails:      n.quorumFails.Load(),
		Repairs:          n.repairs.Load(),

		HintsPending:  n.HintsPending(),
		HintsStored:   n.HintsStored(),
		HintsReplayed: n.HintsReplayed(),
		HintsDropped:  n.HintsDropped(),
	}

	st.Peers = n.peerSignals(topo)

	st.Shards = make([]ShardQueueStats, len(n.st))
	for sh := range n.st {
		st.Shards[sh] = ShardQueueStats{
			PendingReads:  n.st[sh].pendingReads.Load(),
			SvcTimeUs:     n.st[sh].svcNs.Load() / uint64(time.Microsecond),
			WriteQueueLen: len(n.st[sh].wq),
			WriteQueueCap: cap(n.st[sh].wq),
		}
	}

	ls := n.store.Stats()
	st.Store = StoreStats{
		Keys:         n.store.Len(),
		Runs:         n.store.Runs(),
		MemBytes:     n.store.MemBytes(),
		Gets:         ls.Gets,
		Puts:         ls.Puts,
		Deletes:      ls.Deletes,
		Flushes:      ls.Flushes,
		Compactions:  ls.Compactions,
		WALRecords:   ls.WALRecords,
		GroupCommits: ls.GroupCommits,
		BloomSkips:   ls.BloomSkips,
		IOErrors:     ls.IOErrors,
	}
	return st
}

// peerSignals reads every registered server's C3 signals across the shard
// selectors, under each selector's lock. Sums outstanding (total in-flight),
// averages the EWMAs over the shards that have seen the peer, and averages Ψ
// over the shards whose score is live (finite).
func (n *Node) peerSignals(topo *topology) []PeerSignalStats {
	ids := make([]core.ServerID, 0, 8)
	for i := 0; i < n.reg.Len(); i++ {
		ids = append(ids, n.reg.ID(i))
	}
	out := make([]PeerSignalStats, len(ids))
	seen := make([]int, len(ids))   // shards with ranker state for ids[j]
	scored := make([]int, len(ids)) // shards with a live (finite) Ψ
	for sh := 0; sh < n.sels.Len(); sh++ {
		n.sels.Shard(sh).Inspect(func(r core.Ranker) {
			sr, ok := r.(core.SignalsReporter)
			if !ok {
				return
			}
			for j, s := range ids {
				sig := sr.Signals(s)
				if !sig.Seen {
					continue
				}
				seen[j]++
				out[j].Outstanding += sig.Outstanding
				out[j].QHat += sig.QHat
				out[j].QBar += sig.QBar
				out[j].TBarMs += sig.TBar * 1e3
				out[j].RBarMs += sig.RBar * 1e3
				if !math.IsInf(sig.Score, 0) && !math.IsNaN(sig.Score) {
					scored[j]++
					out[j].Score += sig.Score
				}
			}
		})
	}
	for j, s := range ids {
		out[j].ID = int(s)
		if int(s) < len(topo.addrs) {
			out[j].Addr = topo.addrs[s]
		}
		out[j].Self = s == n.id
		if seen[j] > 0 {
			k := float64(seen[j])
			out[j].QHat /= k
			out[j].QBar /= k
			out[j].TBarMs /= k
			out[j].RBarMs /= k
		} else {
			out[j].QHat = 1 // the ranker's prior for unseen servers
		}
		if scored[j] > 0 {
			out[j].Score /= float64(scored[j])
			out[j].Scored = true
		}
	}
	return out
}

// InfoText renders the snapshot as a Redis INFO-style text block (the RESP
// gateway's INFO reply).
func (s NodeStats) InfoText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Server\r\nnode_id:%d\r\nring_epoch:%d\r\n", s.ID, s.Epoch)
	fmt.Fprintf(&b, "# Latency\r\nsrtt_ms:%.3f\r\nrttvar_ms:%.3f\r\n", s.SrttMs, s.RttvarMs)
	fmt.Fprintf(&b, "# Coordinator\r\nreads_served:%d\r\nreads_coordinated:%d\r\nreads_waited:%d\r\n",
		s.ReadsServed, s.ReadsCoordinated, s.ReadsWaited)
	fmt.Fprintf(&b, "hedges_sent:%d\r\nhedge_wins:%d\r\nwrite_fails:%d\r\nquorum_fails:%d\r\nrepairs:%d\r\n",
		s.HedgesSent, s.HedgeWins, s.WriteFails, s.QuorumFails, s.Repairs)
	fmt.Fprintf(&b, "# Hints\r\nhints_pending:%d\r\nhints_stored:%d\r\nhints_replayed:%d\r\nhints_dropped:%d\r\n",
		s.HintsPending, s.HintsStored, s.HintsReplayed, s.HintsDropped)
	fmt.Fprintf(&b, "# Keyspace\r\nkeys:%d\r\nruns:%d\r\nmem_bytes:%d\r\nputs:%d\r\ngets:%d\r\ndeletes:%d\r\n",
		s.Store.Keys, s.Store.Runs, s.Store.MemBytes, s.Store.Puts, s.Store.Gets, s.Store.Deletes)
	for _, p := range s.Peers {
		fmt.Fprintf(&b, "# Peer %d\r\n", p.ID)
		if p.Addr != "" {
			fmt.Fprintf(&b, "addr:%s\r\n", p.Addr)
		}
		fmt.Fprintf(&b, "outstanding:%.1f\r\nqhat:%.3f\r\ntbar_ms:%.3f\r\nrbar_ms:%.3f\r\n",
			p.Outstanding, p.QHat, p.TBarMs, p.RBarMs)
		if p.Scored {
			fmt.Fprintf(&b, "score_ms:%.3f\r\n", p.Score*1e3)
		}
	}
	return b.String()
}
