package kvstore

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"c3/internal/wire"
)

// fakeReplica serves MsgReadInternal/MsgWriteInternal on conn. Read values
// are produced by val(key); a nil val echoes the key bytes. It exits on the
// first connection error.
func fakeReplica(conn net.Conn, val func(key string, dst []byte) []byte) {
	defer conn.Close()
	r := wire.NewReader(conn)
	var frame []byte
	var scratch []byte
	for {
		typ, payload, err := r.Next()
		if err != nil {
			return
		}
		var b []byte
		switch typ {
		case wire.MsgReadInternal, wire.MsgRead:
			m, err := wire.ParseReadReq(payload)
			if err != nil {
				return
			}
			if val != nil {
				scratch = val(m.Key, scratch[:0])
			} else {
				scratch = append(scratch[:0], m.Key...)
			}
			b, err = wire.AppendReadResp(frame[:0], wire.ReadResp{ID: m.ID, Found: true, Value: scratch})
			if err != nil {
				return
			}
		case wire.MsgWriteInternal, wire.MsgWrite:
			m, err := wire.ParseWriteReq(payload)
			if err != nil {
				return
			}
			b, err = wire.AppendWriteResp(frame[:0], wire.WriteResp{ID: m.ID, OK: true})
			if err != nil {
				return
			}
		default:
			return
		}
		frame = b[:0]
		if _, err := conn.Write(b); err != nil {
			return
		}
	}
}

// TestRPCConnRoundTripZeroAllocs is the client half of the PR's allocation
// budget: a steady-state pipelined RPC round trip — pooled call record,
// pooled request frame, sharded pending table, value appended into the
// caller's buffer — performs zero heap allocations.
func TestRPCConnRoundTripZeroAllocs(t *testing.T) {
	client, server := net.Pipe()
	fixed := []byte("fixed-value-0123456789")
	go fakeReplica(server, func(_ string, dst []byte) []byte { return append(dst, fixed...) })
	p := newRPCConn(client)
	defer p.close()

	dst := make([]byte, 0, 256)
	read := func() {
		resp, err := p.read("steady-key", dst[:0])
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Found || len(resp.Value) != len(fixed) {
			t.Fatalf("resp = %+v", resp)
		}
		dst = resp.Value[:0]
	}
	write := func() {
		if _, err := p.write("steady-key", fixed, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		read()
		write()
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates on channel handoffs")
	}
	if n := testing.AllocsPerRun(300, read); n > 0 {
		t.Errorf("read round trip allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(300, write); n > 0 {
		t.Errorf("write round trip allocates %.1f/op, want 0", n)
	}
}

// TestClusterReadAllocBudget pins the end-to-end point-read allocation
// budget over a live durable cluster: client, coordinator, and replica share
// the process, so AllocsPerRun (which reads whole-process malloc counters)
// charges the entire serving path to each Get. The shard-per-core runtime
// brought the path from ~5.9 to ~2 allocs/op; the floor is pinned at 3 to
// leave headroom for background flush/compaction noise, and any regression
// above it fails here before it shows up in BENCH_kv.json.
func TestClusterReadAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates on channel handoffs")
	}
	c, err := StartCluster(3, Config{Seed: 7, ReadRepair: -1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer c.Close()
	cl, err := Dial(c.Addrs())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	const nKeys = 64
	val := []byte("alloc-budget-value-0123456789abcdef")
	for i := 0; i < nKeys; i++ {
		if err := cl.Put(fmt.Sprintf("alloc-key-%03d", i), val); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("alloc-key-%03d", i)
		for attempt := 0; ; attempt++ {
			if _, ok, err := cl.Get(keys[i]); err == nil && ok {
				break
			} else if attempt > 100 {
				t.Fatalf("warm Get(%s): ok=%v err=%v", keys[i], ok, err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	i := 0
	get := func() {
		k := keys[i%nKeys]
		i++
		if _, ok, err := cl.Get(k); err != nil || !ok {
			t.Fatalf("Get(%s): ok=%v err=%v", k, ok, err)
		}
	}
	for j := 0; j < 128; j++ {
		get() // warm pools and buffer growth out of the measurement
	}
	if n := testing.AllocsPerRun(500, get); n > 3 {
		t.Errorf("cluster point read allocates %.2f/op, want <= 3", n)
	}
}

// TestRPCConnPoolReuseUnderFailure hammers connections with concurrent
// reads while killing the transport mid-flight, across enough rounds that
// call records recycle through the pool between failures. Every read must
// either fail with the connection error or return exactly the value for its
// own key — a response delivered to a recycled waiter would surface as a
// mismatched value or a stale wakeup panic.
func TestRPCConnPoolReuseUnderFailure(t *testing.T) {
	const rounds = 25
	const workers = 8
	for round := 0; round < rounds; round++ {
		client, server := net.Pipe()
		go fakeReplica(server, nil) // echo the key back as the value
		p := newRPCConn(client)

		var wg sync.WaitGroup
		var okOps, failedOps atomic.Uint64
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; ; i++ {
					key := fmt.Sprintf("r%d-g%d-i%d", round, g, i)
					resp, err := p.read(key, nil)
					if err != nil {
						failedOps.Add(1)
						return
					}
					if string(resp.Value) != key {
						t.Errorf("read %q returned %q: response crossed to the wrong waiter", key, resp.Value)
						return
					}
					okOps.Add(1)
				}
			}(g)
		}
		time.Sleep(time.Duration(round%5) * time.Millisecond)
		server.Close() // fail the transport mid-flight
		wg.Wait()
		if !p.dead() {
			t.Fatal("connection not marked dead after transport failure")
		}
		if _, err := p.read("post-mortem", nil); err == nil {
			t.Fatal("read on dead connection succeeded")
		}
		p.close()
		if failedOps.Load() == 0 {
			t.Fatalf("round %d: no operation observed the failure", round)
		}
	}
}

// TestRPCConnConcurrentPipelining: many goroutines multiplex one connection
// and each gets its own answer back.
func TestRPCConnConcurrentPipelining(t *testing.T) {
	client, server := net.Pipe()
	go fakeReplica(server, nil)
	p := newRPCConn(client)
	defer p.close()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("g%d-i%d", g, i)
				resp, err := p.read(key, nil)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if string(resp.Value) != key {
					t.Errorf("read %q got %q", key, resp.Value)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestStartNodeWithListener: a pre-bound listener is adopted as-is — no
// close-and-rebind race.
func TestStartNodeWithListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	n, err := StartNodeWithListener(0, []string{addr}, ln, Config{RF: 1, Seed: 3})
	if err != nil {
		t.Fatalf("StartNodeWithListener: %v", err)
	}
	t.Cleanup(n.Close)
	if n.Addr() != addr {
		t.Fatalf("node rebound: %s != %s", n.Addr(), addr)
	}
	cl, err := Dial([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := cl.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cl.Get("k"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q,%v,%v", v, ok, err)
	}

	// Out-of-range ids still close the handed-over listener.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StartNodeWithListener(5, []string{ln2.Addr().String()}, ln2, Config{}); err == nil {
		t.Fatal("out-of-range node id accepted")
	}
	if err := ln2.Close(); err == nil {
		t.Fatal("listener not closed on argument error")
	}
}
