package analysis

import (
	"go/ast"
	"go/types"
)

// Shared call- and type-matching helpers for the analyzers.

// CalleeName resolves a call expression to (package path, function or
// method name, isMethod). The package path is the defining package of the
// callee object, "" for builtins and indirect calls through function
// values.
func CalleeName(info *types.Info, call *ast.CallExpr) (pkgPath, name string, isMethod bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			return objPkgPath(obj), obj.Name(), obj.Type().(*types.Signature).Recv() != nil
		}
		return "", fun.Name, false // builtin (panic, append) or func value
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return objPkgPath(f), f.Name(), true
			}
			return "", fun.Sel.Name, true
		}
		// Qualified identifier pkg.Fn.
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return objPkgPath(obj), obj.Name(), obj.Type().(*types.Signature).Recv() != nil
		}
		return "", fun.Sel.Name, false
	}
	return "", "", false
}

func objPkgPath(obj types.Object) string {
	if obj.Pkg() != nil {
		return obj.Pkg().Path()
	}
	return ""
}

// ReceiverType returns the (pointer-stripped) receiver type of a method
// call, or nil when call is not a method call.
func ReceiverType(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok {
		return nil
	}
	t := s.Recv()
	for {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		return t
	}
}

// IsNamedType reports whether t (after stripping pointers) is the named
// type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// Terminator returns a predicate reporting statements that never return
// control to the enclosing function: panic, runtime.Goexit, os.Exit,
// log.Fatal*/log.Panic*, and testing's FailNow family (Fatal, Fatalf,
// FailNow, Skip, Skipf, SkipNow on any receiver — tests are analyzed too).
// A statement terminates when it is an expression statement consisting of
// such a call.
func Terminator(info *types.Info) func(ast.Stmt) bool {
	return func(s ast.Stmt) bool {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := ast.Unparen(es.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		pkg, name, isMethod := CalleeName(info, call)
		if !isMethod {
			switch {
			case pkg == "" && name == "panic":
				return true
			case pkg == "os" && name == "Exit":
				return true
			case pkg == "runtime" && name == "Goexit":
				return true
			case pkg == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln" ||
				name == "Panic" || name == "Panicf" || name == "Panicln"):
				return true
			}
			return false
		}
		switch name {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			// The testing.TB contract: these call runtime.Goexit. Matching
			// by name keeps the CFG honest inside _test.go files without a
			// dependency on the testing package's identity.
			return true
		}
		return false
	}
}

// FuncBody is one analyzable body: a declared function/method or a function
// literal. Literals are separate bodies — a goroutine's interior is its own
// control-flow world.
type FuncBody struct {
	// Name is the declared name, "" for literals.
	Name string
	// Decl is the enclosing declaration (also set for literals, for
	// context); nil for literals at file scope (impossible in Go).
	Decl *ast.FuncDecl
	// Lit is the literal, nil for declared functions.
	Lit *ast.FuncLit
	// Body is the statement block to analyze.
	Body *ast.BlockStmt
}

// Bodies enumerates every function body in the files: each FuncDecl with a
// body, and each FuncLit nested anywhere within it.
func Bodies(files []*ast.File) []FuncBody {
	var out []FuncBody
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, FuncBody{Name: fd.Name.Name, Decl: fd, Body: fd.Body})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					out = append(out, FuncBody{Decl: fd, Lit: lit, Body: lit.Body})
				}
				return true
			})
		}
	}
	return out
}

// InspectShallow walks n without descending into function literals: the
// caller is reasoning about one body's control flow, and a literal's
// interior belongs to a different body.
func InspectShallow(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok && x != n {
			return false
		}
		return f(x)
	})
}

// NodeContainsCall reports whether a CFG node's executed parts contain a
// call for which match returns true. Calls inside nested function literals
// are excluded unless includeLits is set (a deferred or spawned closure
// runs later — "will eventually run" credit is the caller's choice).
func NodeContainsCall(info *types.Info, n *Node, includeLits bool, match func(call *ast.CallExpr) bool) bool {
	found := false
	for _, part := range n.Parts {
		walk := func(x ast.Node) bool {
			if found {
				return false
			}
			if call, ok := x.(*ast.CallExpr); ok && match(call) {
				found = true
				return false
			}
			return true
		}
		if includeLits {
			ast.Inspect(part, walk)
		} else {
			InspectShallow(part, walk)
		}
	}
	return found
}
