package core

import (
	"sync"
	"testing"
	"time"

	"c3/internal/ratelimit"
)

func TestClientWithoutRateControlAlwaysPicks(t *testing.T) {
	c := NewClient(NewLOR(nil, 1), ClientConfig{})
	group := []ServerID{1, 2, 3}
	for i := 0; i < 100; i++ {
		s, ok, _ := c.Pick(group, int64(i))
		if !ok {
			t.Fatal("Pick failed without rate control")
		}
		if s < 1 || s > 3 {
			t.Fatalf("picked unknown server %d", s)
		}
	}
}

func TestClientPickEmptyGroup(t *testing.T) {
	c := NewClient(NewLOR(nil, 1), ClientConfig{})
	if _, ok, _ := c.Pick(nil, 0); ok {
		t.Fatal("Pick of empty group should fail")
	}
}

func TestClientNilRankerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClient(nil) did not panic")
		}
	}()
	NewClient(nil, ClientConfig{})
}

func TestClientRateControlBlocksAndRecovers(t *testing.T) {
	cfg := ClientConfig{RateControl: true, Rate: ratelimit.Config{InitialRate: 2}}
	c := NewClient(NewRoundRobin(nil), cfg)
	group := []ServerID{1, 2}
	now := int64(0)
	// Burst capacity: 2 tokens per server → 4 picks.
	picks := 0
	for {
		_, ok, _ := c.Pick(group, now)
		if !ok {
			break
		}
		picks++
		if picks > 10 {
			t.Fatal("rate limiter never saturated")
		}
	}
	if picks != 4 {
		t.Fatalf("picks before saturation = %d, want 4", picks)
	}
	_, ok, retryAt := c.Pick(group, now)
	if ok {
		t.Fatal("expected saturation")
	}
	if retryAt <= now {
		t.Fatalf("retryAt = %d, want future", retryAt)
	}
	if _, ok, _ := c.Pick(group, retryAt); !ok {
		t.Fatal("Pick at retryAt should succeed")
	}
}

func TestClientPickTracksOutstanding(t *testing.T) {
	lor := NewLOR(nil, 3)
	c := NewClient(lor, ClientConfig{})
	group := []ServerID{7}
	c.Pick(group, 0)
	if lor.Outstanding(7) != 1 {
		t.Fatalf("outstanding = %v, want 1 (Pick must record the send)", lor.Outstanding(7))
	}
	c.OnResponse(7, Feedback{}, time.Millisecond, 1)
	if lor.Outstanding(7) != 0 {
		t.Fatalf("outstanding = %v, want 0", lor.Outstanding(7))
	}
	c.OnSend(7, 2) // direct accounting (broadcast path)
	if lor.Outstanding(7) != 1 {
		t.Fatalf("outstanding = %v, want 1 after OnSend", lor.Outstanding(7))
	}
}

func TestClientSendRateVisibility(t *testing.T) {
	c := NewClient(NewRoundRobin(nil), ClientConfig{RateControl: true,
		Rate: ratelimit.Config{InitialRate: 7}})
	if got := c.SendRate(1); got != 7 {
		t.Fatalf("SendRate = %v, want 7", got)
	}
	noRC := NewClient(NewRoundRobin(nil), ClientConfig{})
	if got := noRC.SendRate(1); got <= 1e18 {
		t.Fatalf("SendRate without RC = %v, want +Inf", got)
	}
}

func TestClientConcurrentUse(t *testing.T) {
	c := NewClient(NewCubicRanker(RankerConfig{Seed: 1}),
		ClientConfig{RateControl: true, Rate: ratelimit.Config{InitialRate: 1000}})
	group := []ServerID{1, 2, 3}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				now := int64(g*1000 + i)
				if s, ok, _ := c.Pick(group, now); ok {
					c.OnResponse(s, Feedback{QueueSize: 1, ServiceTime: time.Millisecond},
						2*time.Millisecond, now+1)
				}
			}
		}(g)
	}
	wg.Wait() // run with -race
}

func dispatchAll[T any](g *GroupScheduler[T], now int64) []Dispatch[T] {
	var out []Dispatch[T]
	g.Drain(now, func(s ServerID, item T) { out = append(out, Dispatch[T]{s, item}) })
	return out
}

func TestSchedulerDispatchesImmediatelyUnderRate(t *testing.T) {
	c := NewClient(NewRoundRobin(nil), ClientConfig{RateControl: true,
		Rate: ratelimit.Config{InitialRate: 10}})
	g := NewGroupScheduler[int](c, []ServerID{1, 2})
	var got []Dispatch[int]
	n := g.Submit(42, 0, func(s ServerID, it int) { got = append(got, Dispatch[int]{s, it}) })
	if n != 1 || len(got) != 1 || got[0].Item != 42 {
		t.Fatalf("submit result n=%d got=%v", n, got)
	}
	if g.Backlog() != 0 {
		t.Fatalf("backlog = %d, want 0", g.Backlog())
	}
}

func TestSchedulerBackpressureFIFO(t *testing.T) {
	c := NewClient(NewRoundRobin(nil), ClientConfig{RateControl: true,
		Rate: ratelimit.Config{InitialRate: 1}})
	g := NewGroupScheduler[int](c, []ServerID{1, 2})
	var order []int
	emit := func(s ServerID, it int) { order = append(order, it) }
	// Burst of 6 at t=0: 2 dispatch (1 token per server), 4 backlog.
	for i := 1; i <= 6; i++ {
		g.Submit(i, 0, emit)
	}
	if len(order) != 2 || g.Backlog() != 4 {
		t.Fatalf("dispatched=%v backlog=%d, want 2 dispatched 4 queued", order, g.Backlog())
	}
	at, ok := g.NextRetry(0)
	if !ok || at <= 0 {
		t.Fatalf("NextRetry = %d,%v", at, ok)
	}
	// Each new window releases 2 more (one per server), FIFO.
	g.Drain(at, emit)
	g.Drain(at+c.limiter(1).Interval(), emit)
	if g.Backlog() != 0 {
		t.Fatalf("backlog = %d after drains", g.Backlog())
	}
	for i, it := range order {
		if it != i+1 {
			t.Fatalf("dispatch order = %v, want FIFO 1..6", order)
		}
	}
	if g.HighWater() != 4 {
		t.Fatalf("high water = %d, want 4", g.HighWater())
	}
	if g.Enqueued() != 6 {
		t.Fatalf("enqueued = %d, want 6", g.Enqueued())
	}
}

func TestSchedulerNextRetryEmptyBacklog(t *testing.T) {
	c := NewClient(NewRoundRobin(nil), ClientConfig{RateControl: true,
		Rate: ratelimit.Config{InitialRate: 5}})
	g := NewGroupScheduler[int](c, []ServerID{1})
	if _, ok := g.NextRetry(0); ok {
		t.Fatal("NextRetry with empty backlog should report false")
	}
}

func TestSchedulerNoRateControlNeverQueues(t *testing.T) {
	c := NewClient(NewLOR(nil, 1), ClientConfig{})
	g := NewGroupScheduler[int](c, []ServerID{1, 2, 3})
	n := 0
	for i := 0; i < 1000; i++ {
		n += g.Submit(i, int64(i), func(ServerID, int) {})
	}
	if n != 1000 || g.Backlog() != 0 {
		t.Fatalf("dispatched=%d backlog=%d, want all through", n, g.Backlog())
	}
	if _, ok := g.NextRetry(0); ok {
		t.Fatal("NextRetry should be false without rate control")
	}
}

func TestSchedulerEmptyGroupPanics(t *testing.T) {
	c := NewClient(NewLOR(nil, 1), ClientConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("empty group did not panic")
		}
	}()
	NewGroupScheduler[int](c, nil)
}

func TestSchedulerLargeBacklogCompaction(t *testing.T) {
	c := NewClient(NewRoundRobin(nil), ClientConfig{RateControl: true,
		Rate: ratelimit.Config{InitialRate: 1, MaxRate: 1}})
	g := NewGroupScheduler[int](c, []ServerID{1})
	emit := func(ServerID, int) {}
	for i := 0; i < 5000; i++ {
		g.Submit(i, 0, emit)
	}
	// Drain over many windows; compaction must keep FIFO intact.
	var got []int
	now := int64(0)
	iv := c.limiter(1).Interval()
	for g.Backlog() > 0 {
		now += iv
		g.Drain(now, func(_ ServerID, it int) { got = append(got, it) })
		if now > iv*20000 {
			t.Fatal("drain did not make progress")
		}
	}
	last := -1
	for _, it := range got {
		if it <= last {
			t.Fatalf("FIFO violated after compaction: %d after %d", it, last)
		}
		last = it
	}
}

func TestDispatchZeroValueReleased(t *testing.T) {
	// Submitting pointers must not leak them after dispatch (slots are
	// zeroed); this is a behavioural proxy: drain all, then internal
	// buffer should be reset.
	c := NewClient(NewLOR(nil, 9), ClientConfig{})
	g := NewGroupScheduler[*int](c, []ServerID{1})
	v := 5
	g.Submit(&v, 0, func(ServerID, *int) {})
	if len(g.backlog) != 0 || g.head != 0 {
		t.Fatalf("backlog not reset after full drain: len=%d head=%d", len(g.backlog), g.head)
	}
}

func TestClientOnAbandonReleasesOutstandingOnly(t *testing.T) {
	ranker := NewCubicRanker(RankerConfig{Seed: 1, ConcurrencyWeight: 4})
	c := NewClient(ranker, ClientConfig{})
	s := ServerID(3)
	c.OnSend(s, 0)
	c.OnSend(s, 1)
	if got := c.Outstanding(s); got != 2 {
		t.Fatalf("Outstanding = %v, want 2", got)
	}
	c.OnAbandon(s, 2)
	if got := c.Outstanding(s); got != 1 {
		t.Fatalf("Outstanding after abandon = %v, want 1", got)
	}
	// The EWMAs saw nothing: the server must still score as unexplored.
	if sc := ranker.Score(s, 3); sc > -1e300 {
		t.Fatalf("abandon fed the score EWMAs: Score = %v, want -Inf", sc)
	}
	c.OnAbandon(s, 4)
	c.OnAbandon(s, 5) // below zero must clamp, not wrap
	if got := c.Outstanding(s); got != 0 {
		t.Fatalf("Outstanding after over-abandon = %v, want 0", got)
	}
	// Abandoning a never-seen server must not intern or underflow it.
	c.OnAbandon(ServerID(99), 6)
	if got := c.Outstanding(ServerID(99)); got != 0 {
		t.Fatalf("Outstanding(unseen) = %v, want 0", got)
	}
}

func TestClientOutstandingWithoutTracker(t *testing.T) {
	c := NewClient(NewRoundRobin(nil), ClientConfig{})
	c.OnSend(1, 0)
	if got := c.Outstanding(1); got != 0 {
		t.Fatalf("Outstanding on a stateless ranker = %v, want 0", got)
	}
}

func TestClientPickHedgeSkipsTriedReplicas(t *testing.T) {
	lor := NewLOR(nil, 5)
	c := NewClient(lor, ClientConfig{})
	group := []ServerID{1, 2, 3}
	// Load server 1 and 2 so LOR ranks 3 first, then 2, then 1.
	c.OnSend(1, 0)
	c.OnSend(1, 0)
	c.OnSend(2, 0)
	s, ok := c.PickHedge(group, []ServerID{3}, 1)
	if !ok || s != 2 {
		t.Fatalf("PickHedge excluding {3} = %v,%v, want 2 (next-best)", s, ok)
	}
	if got := lor.Outstanding(2); got != 2 {
		t.Fatalf("PickHedge did not record the send: Outstanding(2) = %v", got)
	}
	if got := c.HedgesSent(); got != 1 {
		t.Fatalf("HedgesSent = %d, want 1", got)
	}
	if _, ok := c.PickHedge(group, []ServerID{1, 2, 3}, 2); ok {
		t.Fatal("PickHedge with the whole group tried should fail")
	}
	if _, ok := c.PickHedge(nil, nil, 3); ok {
		t.Fatal("PickHedge of empty group should fail")
	}
}

func TestClientPickNextDoesNotCountAsHedge(t *testing.T) {
	// PickNext is the failover path: same ranked next-untried choice as
	// PickHedge, same send accounting, but a failover replaces a dead
	// request rather than duplicating a live one — HedgesSent must not move.
	lor := NewLOR(nil, 6)
	c := NewClient(lor, ClientConfig{})
	group := []ServerID{1, 2}
	s, ok := c.PickNext(group, []ServerID{1}, 0)
	if !ok || s != 2 {
		t.Fatalf("PickNext excluding {1} = %v,%v, want 2", s, ok)
	}
	if got := lor.Outstanding(2); got != 1 {
		t.Fatalf("PickNext did not record the send: Outstanding(2) = %v", got)
	}
	if got := c.HedgesSent(); got != 0 {
		t.Fatalf("HedgesSent after PickNext = %d, want 0", got)
	}
	if _, ok := c.PickNext(group, group, 1); ok {
		t.Fatal("PickNext with the whole group tried should fail")
	}
}

func TestClientPickHedgeConsumesNoRateToken(t *testing.T) {
	cfg := ClientConfig{RateControl: true, Rate: ratelimit.Config{InitialRate: 1, MaxRate: 1}}
	c := NewClient(NewRoundRobin(nil), cfg)
	group := []ServerID{1, 2}
	now := int64(0)
	for {
		if _, ok, _ := c.Pick(group, now); !ok {
			break
		}
	}
	// All limiters exhausted: a hedge must still go out, and must not touch
	// the token state.
	if _, ok := c.PickHedge(group, []ServerID{1}, now); !ok {
		t.Fatal("PickHedge blocked by rate control")
	}
	if _, ok, _ := c.Pick(group, now); ok {
		t.Fatal("PickHedge minted a rate token")
	}
}

func TestClientOnHedgeCountsAndRecords(t *testing.T) {
	lor := NewLOR(nil, 2)
	c := NewClient(lor, ClientConfig{})
	c.OnHedge(4, 0)
	c.OnHedge(4, 1)
	if got := lor.Outstanding(4); got != 2 {
		t.Fatalf("OnHedge did not record sends: Outstanding = %v", got)
	}
	if got := c.HedgesSent(); got != 2 {
		t.Fatalf("HedgesSent = %d, want 2", got)
	}
}

func TestClientPickBestIgnoresRateTokens(t *testing.T) {
	// PickBest is the backpressure fail-open path: it must return a ranked
	// replica even when every limiter is exhausted, and must not consume or
	// restore tokens.
	cfg := ClientConfig{RateControl: true, Rate: ratelimit.Config{InitialRate: 2}}
	c := NewClient(NewRoundRobin(nil), cfg)
	group := []ServerID{1, 2}
	now := int64(0)
	for {
		if _, ok, _ := c.Pick(group, now); !ok {
			break
		}
	}
	seen := map[ServerID]bool{}
	for i := 0; i < 10; i++ {
		s, ok := c.PickBest(group, now)
		if !ok {
			t.Fatal("PickBest failed on a non-empty group")
		}
		if s != 1 && s != 2 {
			t.Fatalf("PickBest returned unknown server %d", s)
		}
		seen[s] = true
	}
	// Round-robin ranking: fail-open traffic spreads across the group
	// instead of piling onto one member.
	if len(seen) != 2 {
		t.Fatalf("PickBest used %d servers, want 2", len(seen))
	}
	// Tokens stayed exhausted throughout.
	if _, ok, _ := c.Pick(group, now); ok {
		t.Fatal("PickBest leaked a rate token")
	}
	if _, ok := c.PickBest(nil, now); ok {
		t.Fatal("PickBest of empty group should fail")
	}
}
