// Package wire is a fixture stand-in for c3/internal/wire: Parse* results
// and Reader.Next payloads alias the caller's frame buffer. The analyzer
// matches wire packages by import-path suffix, so this fixture exercises the
// same source rules as the real package.
package wire

type Feedback struct {
	QueueSize float64
	ServiceNs int64
}

type ReadResp struct {
	ID      uint64
	Found   bool
	Version uint64
	Value   []byte
	FB      Feedback
}

type WriteReq struct {
	ID    uint64
	Key   string
	Value []byte
}

type StreamChunk struct {
	Keys   []string
	Values [][]byte
}

func ParseReadResp(b []byte) (ReadResp, error) {
	return ReadResp{Value: b}, nil
}

func ParseWriteReq(b []byte) (WriteReq, error) {
	return WriteReq{Key: string(b), Value: b}, nil
}

func ParseStreamChunk(b []byte) (StreamChunk, error) {
	return StreamChunk{Values: [][]byte{b}}, nil
}

type Reader struct{ buf []byte }

func (r *Reader) Next() (uint8, []byte, error) { return 0, r.buf, nil }
