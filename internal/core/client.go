package core

import (
	"math"
	"sync"
	"time"

	"c3/internal/ratelimit"
)

// ClientConfig configures a Client.
type ClientConfig struct {
	// RateControl enables the per-server cubic rate limiters and
	// backpressure (§3.2). C3 and the RR baseline run with it on; LOR and
	// the oracle run with it off.
	RateControl bool
	// Rate configures the limiters (zero fields take the paper defaults).
	Rate ratelimit.Config
}

// Client combines a replica Ranker with optional per-server rate control —
// the complete client side of C3 (Algorithm 1). It is safe for concurrent
// use; under the single-threaded simulators the lock is uncontended.
type Client struct {
	mu      sync.Mutex
	ranker  Ranker
	best    BestPicker         // cached type assertion of ranker; nil if unsupported
	tracker OutstandingTracker // cached type assertion of ranker; nil if unsupported
	batch   BatchRanker        // cached type assertion of ranker; nil if unsupported
	cfg     ClientConfig
	reg     *Registry          // shared with the ranker when it holds one
	rc      []*ratelimit.Cubic // dense, indexed by reg.Index

	hedges uint64 // hedged (duplicated) dispatches recorded via OnHedge

	scratch []ServerID
}

// NewClient returns a Client driving the given ranker. When the ranker keys
// its state by a Registry (RegistryHolder), the client's limiter table shares
// the same registry so both sides agree on dense indices.
func NewClient(r Ranker, cfg ClientConfig) *Client {
	if r == nil {
		panic("core: nil ranker")
	}
	c := &Client{ranker: r, cfg: cfg}
	if bp, ok := r.(BestPicker); ok {
		c.best = bp
	}
	if ot, ok := r.(OutstandingTracker); ok {
		c.tracker = ot
	}
	if br, ok := r.(BatchRanker); ok {
		c.batch = br
	}
	if cfg.RateControl {
		if rh, ok := r.(RegistryHolder); ok {
			c.reg = rh.Registry()
		} else {
			c.reg = NewRegistry()
		}
	}
	return c
}

// Name reports the underlying strategy name.
func (c *Client) Name() string { return c.ranker.Name() }

// RateControlled reports whether rate control is enabled.
func (c *Client) RateControlled() bool { return c.cfg.RateControl }

// Ranker exposes the underlying ranker (for substrate glue such as gossip
// feeding a DynamicSnitch).
func (c *Client) Ranker() Ranker { return c.ranker }

// Inspect runs f on the underlying ranker while holding the client's lock —
// the race-safe way for diagnostics and tests to read ranker state (scores,
// queue estimates) concurrently with live traffic. f must not call back into
// the client.
func (c *Client) Inspect(f func(Ranker)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(c.ranker)
}

func (c *Client) limiter(s ServerID) *ratelimit.Cubic {
	i := c.reg.Index(s)
	c.rc = grown(c.rc, i, nil)
	l := c.rc[i]
	if l == nil {
		l = ratelimit.New(c.cfg.Rate)
		c.rc[i] = l
	}
	return l
}

// Pick ranks the replica group and reserves the best replica that is within
// its send rate: the token is consumed and the send is recorded with the
// ranker. When every replica is over rate, ok is false and retryAt is the
// earliest time a token will free up — the caller should backpressure until
// then (GroupScheduler does this bookkeeping).
//
// Without rate control, Pick always succeeds with the top-ranked replica.
func (c *Client) Pick(group []ServerID, now int64) (s ServerID, ok bool, retryAt int64) {
	if len(group) == 0 {
		return 0, false, now
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Top-1 fast path: the full ordering is only needed when the best
	// replica is over its send rate.
	if c.best != nil {
		if b, bok := c.best.Best(group, now); bok {
			if !c.cfg.RateControl || c.limiter(b).TryAcquire(now) {
				c.ranker.OnSend(b, now)
				return b, true, now
			}
		}
	}
	c.scratch = c.ranker.Rank(c.scratch, group, now)
	if !c.cfg.RateControl {
		s = c.scratch[0]
		c.ranker.OnSend(s, now)
		return s, true, now
	}
	// One pass: try each replica in preference order, accumulating the
	// earliest token availability so an all-over-rate outcome needs no
	// second walk.
	retryAt = int64(math.MaxInt64)
	for _, cand := range c.scratch {
		l := c.limiter(cand)
		if l.TryAcquire(now) {
			c.ranker.OnSend(cand, now)
			return cand, true, now
		}
		if at := l.NextAvailable(now); at < retryAt {
			retryAt = at
		}
	}
	if retryAt <= now {
		retryAt = now + 1
	}
	return 0, false, retryAt
}

// PickBest ranks the group and records a send to the best replica without
// consuming a rate token — the coordinator's fail-open path once its
// backpressure deadline expires. The choice still follows the ranker, so
// timeout traffic spreads by replica quality instead of piling onto a fixed
// group member. ok is false only for an empty group.
func (c *Client) PickBest(group []ServerID, now int64) (s ServerID, ok bool) {
	if len(group) == 0 {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.best != nil {
		if b, bok := c.best.Best(group, now); bok {
			c.ranker.OnSend(b, now)
			return b, true
		}
	}
	c.scratch = c.ranker.Rank(c.scratch, group, now)
	s = c.scratch[0]
	c.ranker.OnSend(s, now)
	return s, true
}

// OnSend records a request dispatched to s outside of Pick — e.g. the extra
// replicas of a read-repair broadcast or a write fan-out. It updates
// outstanding-request accounting but does not consume a rate token.
func (c *Client) OnSend(s ServerID, now int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ranker.OnSend(s, now)
}

// OnAbandon records that a request previously recorded with OnSend (or via
// Pick/PickBest/PickHedge) will never produce an observable response: it was
// cancelled, its deadline expired locally, or its connection died before the
// reply. Outstanding-request accounting toward s is released; the ranker's
// latency and queue estimators are untouched (there is no feedback to feed),
// and no rate-adaptation step runs (no response arrived). Every send recorded
// with this client must eventually be balanced by exactly one OnResponse or
// OnAbandon, or q̂ inflates permanently — the accounting invariant the
// failure-scenario tests assert through Outstanding.
func (c *Client) OnAbandon(s ServerID, now int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ranker.OnAbandon(s, now)
}

// OnHedge records a hedged (duplicated) dispatch to s: outstanding-request
// accounting is updated exactly like OnSend, and the client's hedge counter
// advances. Hedges consume no rate token — they are latency-bound duplicates
// of a request already admitted by the rate controller, not new offered load;
// rate adaptation still observes their responses through OnResponse.
func (c *Client) OnHedge(s ServerID, now int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ranker.OnSend(s, now)
	c.hedges++
}

// HedgesSent reports the number of hedged dispatches recorded via OnHedge
// (including those issued by PickHedge).
func (c *Client) HedgesSent() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hedges
}

// sendNLocked records n sends toward s, via the ranker's batch path when it
// has one. Callers hold c.mu.
func (c *Client) sendNLocked(s ServerID, n int, now int64) {
	if c.batch != nil {
		c.batch.OnSendN(s, n, now)
		return
	}
	for i := 0; i < n; i++ {
		c.ranker.OnSend(s, now)
	}
}

// PickBatch is Pick for an n-key sub-batch: the rate limiter admits the
// sub-batch as one request (the cubic limiter paces RPCs, and a coalesced
// batch is one RPC — that is the point of batching), while the ranker's
// outstanding accounting moves by n so the selection signal still sees every
// key the replica now holds. Every successful PickBatch must be balanced by
// one OnResponseN or OnAbandonN of the same n.
func (c *Client) PickBatch(group []ServerID, n int, now int64) (s ServerID, ok bool, retryAt int64) {
	if len(group) == 0 || n <= 0 {
		return 0, false, now
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.best != nil {
		if b, bok := c.best.Best(group, now); bok {
			if !c.cfg.RateControl || c.limiter(b).TryAcquire(now) {
				c.sendNLocked(b, n, now)
				return b, true, now
			}
		}
	}
	c.scratch = c.ranker.Rank(c.scratch, group, now)
	if !c.cfg.RateControl {
		s = c.scratch[0]
		c.sendNLocked(s, n, now)
		return s, true, now
	}
	retryAt = int64(math.MaxInt64)
	for _, cand := range c.scratch {
		l := c.limiter(cand)
		if l.TryAcquire(now) {
			c.sendNLocked(cand, n, now)
			return cand, true, now
		}
		if at := l.NextAvailable(now); at < retryAt {
			retryAt = at
		}
	}
	if retryAt <= now {
		retryAt = now + 1
	}
	return 0, false, retryAt
}

// PickBestN is PickBest for an n-key sub-batch — the batch path's fail-open
// choice once its backpressure deadline expires. ok is false only for an
// empty group or non-positive n.
func (c *Client) PickBestN(group []ServerID, n int, now int64) (s ServerID, ok bool) {
	if len(group) == 0 || n <= 0 {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.best != nil {
		if b, bok := c.best.Best(group, now); bok {
			c.sendNLocked(b, n, now)
			return b, true
		}
	}
	c.scratch = c.ranker.Rank(c.scratch, group, now)
	s = c.scratch[0]
	c.sendNLocked(s, n, now)
	return s, true
}

// OnSendN records n keys dispatched to s outside of PickBatch. Like OnSend it
// consumes no rate token.
func (c *Client) OnSendN(s ServerID, n int, now int64) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sendNLocked(s, n, now)
}

// OnResponseN records an n-key batch response from s: outstanding accounting
// drops by n and the single piggybacked feedback sample folds into the
// ranker's estimators with weight n (an n-key sub-batch's response carries as
// much evidence as n point responses). Rate adaptation steps once — the
// response is one RPC.
func (c *Client) OnResponseN(s ServerID, n int, fb Feedback, rtt time.Duration, now int64) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.batch != nil {
		c.batch.OnResponseN(s, n, fb, rtt, now)
	} else {
		for i := 0; i < n; i++ {
			c.ranker.OnResponse(s, fb, rtt, now)
		}
	}
	if c.cfg.RateControl {
		c.limiter(s).OnResponse(now)
	}
}

// OnAbandonN releases n keys of outstanding accounting toward s without
// feeding the estimators — the batch counterpart of OnAbandon, with the same
// zero-residual invariant: every n recorded by PickBatch/OnSendN/PickNextN/
// PickHedgeN must be balanced by exactly one OnResponseN or OnAbandonN.
func (c *Client) OnAbandonN(s ServerID, n int, now int64) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.batch != nil {
		c.batch.OnAbandonN(s, n, now)
		return
	}
	for i := 0; i < n; i++ {
		c.ranker.OnAbandon(s, now)
	}
}

// PickNextN is PickNext for an n-key sub-batch: the ranked next-untried
// choice for a batch failover, accounted as n sends.
func (c *Client) PickNextN(group, exclude []ServerID, n int, now int64) (s ServerID, ok bool) {
	if n <= 0 {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pickNextNLocked(group, exclude, n, now)
}

// PickHedgeN is PickHedge for an n-key sub-batch: a speculative duplicate of
// a sub-batch still in flight. The hedge counter advances by n — duplicate
// load is measured in keys, and a batch hedge re-reads every key it carries.
func (c *Client) PickHedgeN(group, exclude []ServerID, n int, now int64) (s ServerID, ok bool) {
	if n <= 0 {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok = c.pickNextNLocked(group, exclude, n, now)
	if ok {
		c.hedges += uint64(n)
	}
	return s, ok
}

func (c *Client) pickNextNLocked(group, exclude []ServerID, n int, now int64) (ServerID, bool) {
	if len(group) == 0 {
		return 0, false
	}
	c.scratch = c.ranker.Rank(c.scratch, group, now)
	for _, cand := range c.scratch {
		tried := false
		for _, x := range exclude {
			if cand == x {
				tried = true
				break
			}
		}
		if tried {
			continue
		}
		c.sendNLocked(cand, n, now)
		return cand, true
	}
	return 0, false
}

// PickNext chooses the best-ranked replica of group not in exclude and
// records the send (no rate token). It is the failure path's walk order:
// each failed replica joins exclude and PickNext yields the next-best, so
// fallback traffic still follows (and trains) the ranker instead of a fixed
// group order. ok is false when every group member has been tried already.
func (c *Client) PickNext(group, exclude []ServerID, now int64) (s ServerID, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pickNextLocked(group, exclude, now)
}

// PickHedge is PickNext for a speculative duplicate of a request that is
// still in flight: the same ranked next-untried choice, recorded and counted
// as a hedge (see OnHedge for the rate-token rationale). Use PickNext for
// failovers after an error — a failover replaces a dead request rather than
// duplicating a live one, and must not inflate HedgesSent.
func (c *Client) PickHedge(group, exclude []ServerID, now int64) (s ServerID, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok = c.pickNextLocked(group, exclude, now)
	if ok {
		c.hedges++
	}
	return s, ok
}

func (c *Client) pickNextLocked(group, exclude []ServerID, now int64) (ServerID, bool) {
	if len(group) == 0 {
		return 0, false
	}
	c.scratch = c.ranker.Rank(c.scratch, group, now)
	for _, cand := range c.scratch {
		tried := false
		for _, x := range exclude {
			if cand == x {
				tried = true
				break
			}
		}
		if tried {
			continue
		}
		c.ranker.OnSend(cand, now)
		return cand, true
	}
	return 0, false
}

// Outstanding reports the ranker's in-flight count toward s, or 0 when the
// strategy keeps no such state. After a request completes or is abandoned the
// count must return to its prior value; failure-scenario tests assert the
// quiescent total is zero.
func (c *Client) Outstanding(s ServerID) float64 {
	if c.tracker == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tracker.Outstanding(s)
}

// OnResponse records a response from s: it feeds the ranker's EWMAs and runs
// one step of the cubic rate adaptation for s.
func (c *Client) OnResponse(s ServerID, fb Feedback, rtt time.Duration, now int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ranker.OnResponse(s, fb, rtt, now)
	if c.cfg.RateControl {
		c.limiter(s).OnResponse(now)
	}
}

// SendRate reports the current srate toward s (requests per δ), or +Inf when
// rate control is disabled. Used by the Fig. 13 trace.
func (c *Client) SendRate(s ServerID) float64 {
	if !c.cfg.RateControl {
		return math.Inf(1)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.limiter(s).Rate()
}

// ReceiveRate reports the last measured rrate from s (responses per δ).
func (c *Client) ReceiveRate(s ServerID, now int64) float64 {
	if !c.cfg.RateControl {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.limiter(s).ReceiveRate(now)
}

// Dispatch is one backlog item released to a server.
type Dispatch[T any] struct {
	Server ServerID
	Item   T
}

// GroupScheduler is the per-replica-group scheduler of Algorithm 1: requests
// that cannot be sent because all replicas exceed their rate wait in a FIFO
// backlog until a limiter frees up. In the Cassandra implementation this is
// the per-replica-group actor; here it is a deterministic queue the substrate
// drives (a sim event or a goroutine timer wakes it at NextRetry).
type GroupScheduler[T any] struct {
	c     *Client
	group []ServerID

	backlog   []T
	head      int
	highWater int
	enqueued  uint64
}

// NewGroupScheduler returns a scheduler for one replica group.
func NewGroupScheduler[T any](c *Client, group []ServerID) *GroupScheduler[T] {
	if len(group) == 0 {
		panic("core: empty replica group")
	}
	g := make([]ServerID, len(group))
	copy(g, group)
	return &GroupScheduler[T]{c: c, group: g}
}

// Group reports the scheduler's replica group (callers must not modify it).
func (g *GroupScheduler[T]) Group() []ServerID { return g.group }

// Submit enqueues item and immediately dispatches as much of the backlog as
// rates permit, calling emit for each released (server, item) pair in FIFO
// order. It reports the number of items dispatched.
func (g *GroupScheduler[T]) Submit(item T, now int64, emit func(ServerID, T)) int {
	g.backlog = append(g.backlog, item)
	g.enqueued++
	if n := g.Backlog(); n > g.highWater {
		g.highWater = n
	}
	return g.Drain(now, emit)
}

// Drain dispatches backlogged items while some replica is within rate,
// preserving FIFO order, and reports how many were dispatched.
func (g *GroupScheduler[T]) Drain(now int64, emit func(ServerID, T)) int {
	n := 0
	for g.head < len(g.backlog) {
		s, ok, _ := g.c.Pick(g.group, now)
		if !ok {
			break
		}
		item := g.backlog[g.head]
		var zero T
		g.backlog[g.head] = zero // release references promptly
		g.head++
		n++
		emit(s, item)
	}
	if g.head == len(g.backlog) && g.head > 0 {
		g.backlog = g.backlog[:0]
		g.head = 0
	} else if g.head > 1024 && g.head*2 > len(g.backlog) {
		m := copy(g.backlog, g.backlog[g.head:])
		g.backlog = g.backlog[:m]
		g.head = 0
	}
	return n
}

// Backlog reports the number of items waiting.
func (g *GroupScheduler[T]) Backlog() int { return len(g.backlog) - g.head }

// HighWater reports the maximum backlog length observed.
func (g *GroupScheduler[T]) HighWater() int { return g.highWater }

// Enqueued reports the total number of items ever submitted.
func (g *GroupScheduler[T]) Enqueued() uint64 { return g.enqueued }

// NextRetry reports when to attempt the next Drain: the earliest time any
// replica's limiter will have a token. ok is false when the backlog is empty
// (nothing to retry) or rate control is off (Drain never blocks).
func (g *GroupScheduler[T]) NextRetry(now int64) (at int64, ok bool) {
	if g.Backlog() == 0 || !g.c.cfg.RateControl {
		return 0, false
	}
	_, picked, retryAt := g.c.peekRetry(g.group, now)
	if picked {
		// A token became available between Drain and NextRetry; retry
		// immediately.
		return now, true
	}
	return retryAt, true
}

// peekRetry reports whether any replica currently has a token (without
// consuming it) and, if not, the earliest availability time.
func (c *Client) peekRetry(group []ServerID, now int64) (ServerID, bool, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	retryAt := int64(math.MaxInt64)
	for _, s := range group {
		l := c.limiter(s)
		at := l.NextAvailable(now)
		if at <= now {
			return s, true, now
		}
		if at < retryAt {
			retryAt = at
		}
	}
	return 0, false, retryAt
}
