// Fixture shapes are distilled from internal/lsm/wal.go (the group-commit
// mu/ioMu pair) and internal/kvstore's topology RWMutex: blocking work must
// happen outside the nanosecond-scale locks, with the WAL's dedicated I/O
// lock as the one suppressed design exception. time.Sleep stands in for the
// fsync/dial calls so the fixture stays off the os/net std closure.
package lockscope

import (
	"sync"
	"time"
)

type wal struct {
	mu   sync.Mutex
	ioMu sync.Mutex
}

type topo struct {
	mu sync.RWMutex
}

func (w *wal) sleepUnderLock() {
	w.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding w.mu`
	w.mu.Unlock()
}

func (w *wal) sleepAfterUnlock() {
	w.mu.Lock()
	w.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// deferredUnlock: the region runs to function exit, as at runtime.
func (w *wal) deferredUnlock() {
	w.mu.Lock()
	defer w.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding w.mu`
}

func (t *topo) readLockSleep() {
	t.mu.RLock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding t.mu`
	t.mu.RUnlock()
}

// twoLocks: releasing the inner lock does not end the outer region.
func (w *wal) twoLocks() {
	w.mu.Lock()
	w.ioMu.Lock()
	w.ioMu.Unlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding w.mu`
	w.mu.Unlock()
}

func (w *wal) unbufferedSend() {
	ch := make(chan int)
	w.mu.Lock()
	ch <- 1 // want `send on unbuffered channel ch while holding w.mu`
	w.mu.Unlock()
	<-ch
}

// bufferedSend cannot block on a waiting receiver.
func (w *wal) bufferedSend() {
	ch := make(chan int, 1)
	w.mu.Lock()
	ch <- 1
	w.mu.Unlock()
}

// spawnUnderLock: the goroutine does not hold the caller's lock.
func (w *wal) spawnUnderLock() {
	w.mu.Lock()
	go func() {
		time.Sleep(time.Millisecond)
	}()
	w.mu.Unlock()
}

// branchUnlock: each path's region ends at its own unlock.
func (w *wal) branchUnlock(fast bool) {
	w.mu.Lock()
	if fast {
		w.mu.Unlock()
		time.Sleep(time.Millisecond)
		return
	}
	w.mu.Unlock()
}

// groupCommit holds the dedicated I/O lock across the blocking call on
// purpose — the WAL design — and is suppressed with the reason.
func (w *wal) groupCommit() {
	w.ioMu.Lock()
	//lint:allow lockscope ioMu is the dedicated I/O lock; serializing the slow path under it is the group-commit design
	time.Sleep(time.Millisecond)
	w.ioMu.Unlock()
}

// Shard-per-core fixtures, distilled from the sharded store's per-shard
// state: holding one shard's mutex while acquiring a sibling's is a
// lock-order cycle waiting for the opposite interleaving.

type shardState struct {
	mu sync.Mutex
}

type shardedNode struct {
	st []shardState
}

// crossShardLock acquires shard j's lock under shard i's: the forbidden
// cross-shard critical section.
func (n *shardedNode) crossShardLock(i, j int) {
	n.st[i].mu.Lock()
	n.st[j].mu.Lock() // want `acquiring n.st\[j\].mu while holding shard lock n.st\[i\].mu \(cross-shard lock order\)`
	n.st[j].mu.Unlock()
	n.st[i].mu.Unlock()
}

// sequentialShards releases shard i before touching shard j — the batch
// partitioning discipline, never two shards at once.
func (n *shardedNode) sequentialShards(i, j int) {
	n.st[i].mu.Lock()
	n.st[i].mu.Unlock()
	n.st[j].mu.Lock()
	n.st[j].mu.Unlock()
}

// sameShardRegions re-enters the same shard's lock in separate regions; the
// rendered index matches, so no cross-shard pairing exists.
func (n *shardedNode) sameShardRegions(i int) {
	n.st[i].mu.Lock()
	n.st[i].mu.Unlock()
	n.st[i].mu.Lock()
	n.st[i].mu.Unlock()
}

// spawnOtherShard hands the sibling shard to a goroutine: the spawned work
// does not hold the caller's shard lock.
func (n *shardedNode) spawnOtherShard(i, j int) {
	n.st[i].mu.Lock()
	go func() {
		n.st[j].mu.Lock()
		n.st[j].mu.Unlock()
	}()
	n.st[i].mu.Unlock()
}
