package lsm

import "hash/fnv"

// Bloom is a fixed-size Bloom filter with double hashing (Kirsch–Mitzenmacher
// construction over two FNV-derived hashes).
type Bloom struct {
	bits []uint64
	m    uint64 // number of bits
	k    int    // hash functions
}

// NewBloom sizes a filter for n expected keys at roughly a 1% false-positive
// rate (m ≈ 9.6 n bits, k = 7).
func NewBloom(n int) *Bloom {
	if n < 1 {
		n = 1
	}
	m := uint64(n) * 10
	if m < 64 {
		m = 64
	}
	return &Bloom{bits: make([]uint64, (m+63)/64), m: m, k: 7}
}

func bloomHashes(key string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 := h.Sum64()
	// Second hash: re-mix with a different offset basis by appending a
	// salt byte.
	h.Write([]byte{0x5c})
	h2 := h.Sum64()
	if h2%2 == 0 { // ensure h2 is odd so probes cover the space
		h2++
	}
	return h1, h2
}

// Add inserts key.
func (b *Bloom) Add(key string) {
	h1, h2 := bloomHashes(key)
	for i := 0; i < b.k; i++ {
		idx := (h1 + uint64(i)*h2) % b.m
		b.bits[idx/64] |= 1 << (idx % 64)
	}
}

// MayContain reports whether key might be present (no false negatives).
func (b *Bloom) MayContain(key string) bool {
	h1, h2 := bloomHashes(key)
	for i := 0; i < b.k; i++ {
		idx := (h1 + uint64(i)*h2) % b.m
		if b.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}
