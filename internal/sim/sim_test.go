package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var order []int64
	for _, at := range []int64{30, 10, 20, 5, 25} {
		at := at
		s.At(at, func() { order = append(order, at) })
	}
	s.Run()
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("fired %d events, want 5", len(order))
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %d, want 30", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestAfterAndClock(t *testing.T) {
	s := New()
	var sawNow int64 = -1
	s.After(50, func() {
		sawNow = s.Now()
		s.After(25, func() { sawNow = s.Now() })
	})
	s.Run()
	if sawNow != 75 {
		t.Fatalf("nested After fired at %d, want 75", sawNow)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("At(past) did not panic")
			}
		}()
		s.At(50, func() {})
	})
	s.Run()
}

func TestNilCallbackPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("At with nil fn did not panic")
		}
	}()
	s.At(1, nil)
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	s := New()
	fired := false
	s.At(10, func() {
		s.After(-100, func() { fired = true })
	})
	s.Run()
	if !fired {
		t.Fatal("After(-d) event never fired")
	}
	if s.Now() != 10 {
		t.Fatalf("Now = %d, want 10", s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(10, func() { fired = true })
	e.Cancel()
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and nil-cancel must be safe.
	e.Cancel()
	(*Event)(nil).Cancel()
}

func TestCancelFromEarlierEvent(t *testing.T) {
	s := New()
	fired := false
	late := s.At(100, func() { fired = true })
	s.At(50, func() { late.Cancel() })
	s.Run()
	if fired {
		t.Fatal("event cancelled at t=50 still fired at t=100")
	}
}

func TestRunUntilAdvancesClockAndKeepsFutureEvents(t *testing.T) {
	s := New()
	var fired []int64
	for _, at := range []int64{10, 20, 30, 40} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(25)
	if len(fired) != 2 || s.Now() != 25 {
		t.Fatalf("after RunUntil(25): fired=%v now=%d", fired, s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.Run()
	if len(fired) != 4 || s.Now() != 40 {
		t.Fatalf("after Run: fired=%v now=%d", fired, s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := int64(1); i <= 100; i++ {
		s.At(i, func() {
			count++
			if count == 10 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10 (Stop should halt the loop)", count)
	}
	s.Run() // resume
	if count != 100 {
		t.Fatalf("count after resume = %d, want 100", count)
	}
}

func TestFiredCounter(t *testing.T) {
	s := New()
	for i := int64(0); i < 7; i++ {
		s.At(i, func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", s.Fired())
	}
}

func TestEventTime(t *testing.T) {
	s := New()
	e := s.At(42, func() {})
	if e.Time() != 42 {
		t.Fatalf("Time = %d, want 42", e.Time())
	}
	s.Run()
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		s := New()
		r := RNG(123, 0)
		var trace []int64
		var tick func()
		tick = func() {
			trace = append(trace, s.Now())
			if len(trace) < 1000 {
				s.After(Exp(r, 1000), tick)
			}
		}
		s.After(0, tick)
		s.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	a, b := RNG(1, 0), RNG(1, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("streams 0 and 1 collide on %d/100 draws", same)
	}
}

func TestExpPositiveAndMeanish(t *testing.T) {
	r := RNG(9, 9)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		d := Exp(r, 4e6) // mean 4ms
		if d < 1 {
			t.Fatal("Exp returned < 1ns")
		}
		sum += float64(d)
	}
	mean := sum / n
	if mean < 3.8e6 || mean > 4.2e6 {
		t.Fatalf("empirical mean = %v, want ~4e6", mean)
	}
}

// Property: for any batch of event times, execution order equals sorted order.
func TestHeapOrderingProperty(t *testing.T) {
	f := func(times []uint32) bool {
		s := New()
		var fired []int64
		for _, ut := range times {
			at := int64(ut)
			s.At(at, func() { fired = append(fired, at) })
		}
		s.Run()
		want := make([]int64, 0, len(times))
		for _, ut := range times {
			want = append(want, int64(ut))
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	s := New()
	r := RNG(1, 1)
	b.ResetTimer()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.After(Exp(r, 100), tick)
		}
	}
	s.After(0, tick)
	s.Run()
}
