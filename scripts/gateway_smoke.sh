#!/usr/bin/env bash
# Gateway smoke: boot a 3-node cluster with the RESP gateway and ops HTTP
# frontends, drive correctness + a short workload through the minimal RESP
# client (`c3cluster probe`), pull live per-peer C3 signals off /debug/vars
# mid-run, and assert a clean StatsSnapshot with zero outstanding residual
# after quiescence. If redis-benchmark is on the PATH it also hammers the
# gateway with real Redis tooling — the external-drivability claim, measured
# externally.
set -euo pipefail
cd "$(dirname "$0")/.."

RESP_BASE=${GATEWAY_SMOKE_RESP:-16379}
OBS_BASE=${GATEWAY_SMOKE_OBS:-17379}

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"; [[ -n "${srvpid:-}" ]] && kill "$srvpid" 2>/dev/null || true' EXIT
go build -o "$tmpdir/c3cluster" ./cmd/c3cluster

# Quorum: the probe asserts read-your-writes, which CL=ONE does not promise
# (a GET can land on a replica the SET's fan-out has not reached yet).
"$tmpdir/c3cluster" -tcp -serve -nodes 3 -consistency quorum \
  -resp "$RESP_BASE" -obs "$OBS_BASE" >"$tmpdir/serve.log" 2>&1 &
srvpid=$!

# Wait for the gateway to accept.
for i in $(seq 1 50); do
  if "$tmpdir/c3cluster" probe -ops 0 "127.0.0.1:$RESP_BASE" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$srvpid" 2>/dev/null; then
    echo "gateway smoke: server died during startup" >&2
    cat "$tmpdir/serve.log" >&2
    exit 1
  fi
  sleep 0.2
done

echo "gateway smoke: probing node 0 (correctness + workload)"
"$tmpdir/c3cluster" probe -ops 500 "127.0.0.1:$RESP_BASE"
echo "gateway smoke: probing node 1"
"$tmpdir/c3cluster" probe -ops 100 "127.0.0.1:$((RESP_BASE + 1))"

echo "gateway smoke: checking /debug/vars exposes live signals"
curl -sf "127.0.0.1:$OBS_BASE/debug/vars" >/dev/null
python3 - "$OBS_BASE" <<'EOF'
import json, sys, urllib.request
with urllib.request.urlopen(f"http://127.0.0.1:{sys.argv[1]}/debug/vars") as r:
    node = json.load(r)["node"]
peers = node["peers"]
assert len(peers) == 3, f"peers = {len(peers)}"
for p in peers:
    assert p["qhat"] >= 1, p
assert node["reads_coordinated"] > 0, node
assert node["srtt_ms"] >= 0, node
assert len(node["shards"]) >= 1, node
assert all("write_queue_cap" in s for s in node["shards"]), node["shards"]
print(f"gateway smoke: node 0 coordinated {node['reads_coordinated']} reads, "
      f"{len(peers)} peers with q-hat/srtt, {len(node['shards'])} shard(s)")
EOF

echo "gateway smoke: rendering c3cluster stats"
"$tmpdir/c3cluster" stats "127.0.0.1:$OBS_BASE" | head -12

if command -v redis-benchmark >/dev/null 2>&1; then
  echo "gateway smoke: redis-benchmark against the gateway"
  redis-benchmark -p "$RESP_BASE" -t set,get,mset -n 10000 -c 8 -q
else
  echo "gateway smoke: redis-benchmark not installed; skipped (probe covered the protocol)"
fi

echo "gateway smoke: asserting zero outstanding residual after quiescence"
python3 - "$OBS_BASE" <<'EOF'
import json, sys, time, urllib.request
port = sys.argv[1]
deadline = time.time() + 5
while True:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}/stats") as r:
        node = json.load(r)
    total = sum(p["outstanding"] for p in node["peers"])
    if total == 0:
        print("gateway smoke: outstanding residual 0 — clean snapshot")
        break
    if time.time() > deadline:
        sys.exit(f"gateway smoke: outstanding residual {total} after quiescence")
    time.sleep(0.2)
EOF

echo "gateway smoke: OK"
