package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"c3/internal/lsm"
	"c3/internal/sim"
	"c3/internal/stats"
)

// DurableMode is one storage configuration of the durability benchmark.
type DurableMode struct {
	Mode            string  `json:"mode"` // inmem | nosync | periodic | fsync
	WriteOpsPerSec  float64 `json:"write_ops_per_sec"`
	WriteP50Us      float64 `json:"write_p50_us"`
	WriteP99Us      float64 `json:"write_p99_us"`
	ReadOpsPerSec   float64 `json:"read_ops_per_sec"`
	WALRecords      uint64  `json:"wal_records"`
	GroupCommits    uint64  `json:"group_commits"`
	RecordsPerFsync float64 `json:"records_per_fsync"`
}

// DurableRecovery is one point of the recovery-time-vs-WAL-size curve.
type DurableRecovery struct {
	WALRecords int     `json:"wal_records"`
	WALBytes   int64   `json:"wal_bytes"`
	RecoverMs  float64 `json:"recover_ms"`
}

// DurableResult is the machine-readable record of the durability benchmark,
// tracked across PRs in BENCH_durable.json.
type DurableResult struct {
	Config     Meta              `json:"config"`
	Ops        int               `json:"ops"`
	Writers    int               `json:"writers"`
	ValueBytes int               `json:"value_bytes"`
	Modes      []DurableMode     `json:"modes"`
	Recovery   []DurableRecovery `json:"recovery"`
}

// durableOps reports the storage-engine operation budget for the scale.
func (o Options) durableOps() int {
	switch o.Scale {
	case Full:
		return 400_000
	case Medium:
		return 120_000
	default:
		return 30_000
	}
}

// runDurableMode measures one storage configuration: concurrent write
// throughput/latency (the group-commit path when durable), then point-read
// throughput over the written set.
func runDurableMode(mode string, ops, writers, valueBytes int) (DurableMode, error) {
	opts := lsm.Options{}
	var dir string
	if mode != "inmem" {
		var err error
		dir, err = os.MkdirTemp("", "c3-durable-bench-")
		if err != nil {
			return DurableMode{}, err
		}
		defer os.RemoveAll(dir)
		opts.Dir = dir
		opts.NoSync = mode == "nosync"
		if mode == "periodic" {
			opts.SyncInterval = 20 * time.Millisecond // the kvstore serving default
		}
	}
	s, err := lsm.Open(opts)
	if err != nil {
		return DurableMode{}, err
	}
	defer s.Close()

	val := make([]byte, valueBytes)
	for i := range val {
		val[i] = byte(i)
	}
	perWriter := ops / writers
	lat := make([][]float64, writers)
	errs := make([]error, writers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			samples := make([]float64, 0, perWriter)
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("durable-w%d-%07d", w, i)
				t0 := time.Now()
				if err := s.Put(k, val); err != nil {
					errs[w] = err
					return
				}
				samples = append(samples, float64(time.Since(t0).Nanoseconds())/1e3)
			}
			lat[w] = samples
		}(w)
	}
	wg.Wait()
	writeSecs := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return DurableMode{}, err
		}
	}
	wlat := stats.NewSample(ops)
	for _, ws := range lat {
		for _, x := range ws {
			wlat.Add(x)
		}
	}

	// Point reads over the written set (Zipf-free uniform sample: the store
	// layer has no cache to warm, every read walks memtable + runs).
	r := sim.RNG(1, 99)
	reads := ops
	dst := make([]byte, 0, valueBytes)
	start = time.Now()
	for i := 0; i < reads; i++ {
		w := int(r.Uint64() % uint64(writers))
		k := fmt.Sprintf("durable-w%d-%07d", w, int(r.Uint64()%uint64(perWriter)))
		var ok bool
		dst, ok = s.GetAppend(dst[:0], k)
		if !ok {
			return DurableMode{}, fmt.Errorf("bench: durable %s: key %q unreadable", mode, k)
		}
	}
	readSecs := time.Since(start).Seconds()

	st := s.Stats()
	m := DurableMode{
		Mode:           mode,
		WriteOpsPerSec: float64(perWriter*writers) / writeSecs,
		WriteP50Us:     wlat.Percentile(50),
		WriteP99Us:     wlat.Percentile(99),
		ReadOpsPerSec:  float64(reads) / readSecs,
		WALRecords:     st.WALRecords,
		GroupCommits:   st.GroupCommits,
	}
	if st.GroupCommits > 0 {
		m.RecordsPerFsync = float64(st.WALRecords) / float64(st.GroupCommits)
	}
	return m, nil
}

// runDurableRecovery measures crash-recovery time as a function of the
// unflushed WAL suffix length: load n records into the WAL only (flush
// threshold above the data volume), hard-crash, and time the reopen.
func runDurableRecovery(n, valueBytes int) (DurableRecovery, error) {
	dir, err := os.MkdirTemp("", "c3-durable-recover-")
	if err != nil {
		return DurableRecovery{}, err
	}
	defer os.RemoveAll(dir)
	opts := lsm.Options{Dir: dir, NoSync: true,
		FlushBytes: n*(valueBytes+64) + 1<<20}
	s, err := lsm.Open(opts)
	if err != nil {
		return DurableRecovery{}, err
	}
	val := make([]byte, valueBytes)
	keys := make([]string, 64)
	vals := make([][]byte, 64)
	for i := range vals {
		vals[i] = val
	}
	for i := 0; i < n; i += len(keys) {
		for j := range keys {
			keys[j] = fmt.Sprintf("recover-%08d", i+j)
		}
		if err := s.PutAll(keys, vals); err != nil {
			s.Crash()
			return DurableRecovery{}, err
		}
	}
	s.Crash()
	var walBytes int64
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if fi, err := e.Info(); err == nil {
			walBytes += fi.Size()
		}
	}
	start := time.Now()
	s2, err := lsm.Open(opts)
	if err != nil {
		return DurableRecovery{}, err
	}
	ms := float64(time.Since(start).Nanoseconds()) / 1e6
	got := s2.Len()
	s2.Close()
	if got < n {
		return DurableRecovery{}, fmt.Errorf("bench: recovery lost keys: %d of %d", got, n)
	}
	return DurableRecovery{WALRecords: n, WALBytes: walBytes, RecoverMs: ms}, nil
}

// RunDurable measures the storage engine's durability tax: write/read
// throughput and commit latency for in-memory vs durable-unsynced vs
// durable-fsync stores, the group-commit amortization ratio, and recovery
// time against WAL length.
func RunDurable(o Options) (DurableResult, error) {
	const (
		writers    = 8
		valueBytes = 256
	)
	ops := o.durableOps()
	res := DurableResult{Config: o.meta(1, "per-mode"), Ops: ops, Writers: writers, ValueBytes: valueBytes}
	for _, mode := range []string{"inmem", "nosync", "periodic", "fsync"} {
		m, err := runDurableMode(mode, ops, writers, valueBytes)
		if err != nil {
			return res, err
		}
		res.Modes = append(res.Modes, m)
	}
	recs := []int{1_000, 10_000, 50_000}
	if o.Scale == Full {
		recs = append(recs, 200_000)
	}
	for _, n := range recs {
		p, err := runDurableRecovery(n, valueBytes)
		if err != nil {
			return res, err
		}
		res.Recovery = append(res.Recovery, p)
	}
	return res, nil
}

// writeDurableJSON writes the machine-readable record to path.
func writeDurableJSON(res DurableResult, path string) error {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}

// Durable is the runner for the storage durability benchmark. With
// Options.DurableJSONPath set it also writes BENCH_durable.json.
func Durable(o Options) *Report {
	r := newReport("durable", "durability tax: WAL group commit, fsync, recovery time")
	res, err := RunDurable(o)
	if err != nil {
		r.fail(err)
		return r
	}
	r.printf("%d ops × %d writers, %dB values", res.Ops, res.Writers, res.ValueBytes)
	for _, m := range res.Modes {
		r.printf("%-7s write %8.0f ops/s (p50 %5.1fµs p99 %6.1fµs)  read %8.0f ops/s  %d recs / %d commits (%.1f recs/fsync)",
			m.Mode, m.WriteOpsPerSec, m.WriteP50Us, m.WriteP99Us, m.ReadOpsPerSec,
			m.WALRecords, m.GroupCommits, m.RecordsPerFsync)
	}
	for _, p := range res.Recovery {
		r.printf("recovery: %6d WAL records (%5.1f MiB) replayed in %6.1f ms",
			p.WALRecords, float64(p.WALBytes)/(1<<20), p.RecoverMs)
	}
	for _, m := range res.Modes {
		r.Metric("durable_write_ops_per_sec_"+m.Mode, m.WriteOpsPerSec)
		r.Metric("durable_write_p99_us_"+m.Mode, m.WriteP99Us)
	}
	for _, m := range res.Modes {
		if m.Mode == "fsync" {
			r.Metric("durable_records_per_fsync", m.RecordsPerFsync)
		}
	}
	if n := len(res.Recovery); n > 0 {
		r.Metric("durable_recover_ms_max", res.Recovery[n-1].RecoverMs)
	}
	if o.DurableJSONPath != "" {
		if err := writeDurableJSON(res, o.DurableJSONPath); err != nil {
			r.printf("write %s: %v", o.DurableJSONPath, err)
		} else {
			r.printf("wrote %s", o.DurableJSONPath)
		}
	}
	return r
}
