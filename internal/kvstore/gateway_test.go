package kvstore

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"c3/internal/obs"
	"c3/internal/resp"
)

// startGateway boots an n-node cluster and fronts node 0 with a RESP server
// at the given level, returning a connected RESP client.
func startGateway(t *testing.T, n int, cfg Config, lvl Level) (*Cluster, *resp.Client) {
	t.Helper()
	c, err := StartCluster(n, cfg)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(c.Close)
	srv := resp.NewServer(c.Nodes[0].RESPBackend(lvl))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	rc, err := resp.DialClient(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })
	return c, rc
}

func do(t *testing.T, rc *resp.Client, args ...string) resp.Reply {
	t.Helper()
	r, err := rc.Do(args...)
	if err != nil {
		t.Fatal(err)
	}
	if e := r.Err(); e != nil {
		t.Fatal(e)
	}
	return r
}

func TestGatewayEndToEnd(t *testing.T) {
	// Quorum so the SET→GET assertions have read-your-writes; CL=ONE does
	// not promise the next read sees the write (the native-client loop
	// below polls for exactly that reason).
	c, rc := startGateway(t, 3, Config{Seed: 91}, Quorum)

	if r := do(t, rc, "PING"); r.Str != "PONG" {
		t.Fatalf("PING = %+v", r)
	}
	if r := do(t, rc, "SET", "k1", "v1"); r.Str != "OK" {
		t.Fatalf("SET = %+v", r)
	}
	if r := do(t, rc, "GET", "k1"); r.Str != "v1" || r.IsNil {
		t.Fatalf("GET = %+v", r)
	}
	// The write went through the real replication path: readable through the
	// native client via another coordinator.
	cl, err := Dial(c.Addrs()[1:])
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	deadline := time.Now().Add(time.Second)
	for {
		val, ok, err := cl.Get("k1")
		if err != nil {
			t.Fatal(err)
		}
		if ok && string(val) == "v1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("k1 not visible via native client: %q %v", val, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Miss vs empty, through the full coordinated read path.
	if r := do(t, rc, "GET", "never-set"); !r.IsNil {
		t.Fatalf("GET missing = %+v, want nil", r)
	}
	do(t, rc, "SET", "empty", "")
	if r := do(t, rc, "GET", "empty"); r.IsNil || r.Str != "" {
		t.Fatalf("GET empty = %+v, want zero-length bulk", r)
	}

	// DEL: present key counts, absent key does not, and the tombstone wins.
	if r := do(t, rc, "DEL", "k1", "never-set"); r.Int != 1 {
		t.Fatalf("DEL = %+v, want 1", r)
	}
	if r := do(t, rc, "GET", "k1"); !r.IsNil {
		t.Fatalf("GET after DEL = %+v, want nil", r)
	}

	// MSET/MGET through the batch paths, empty value kept distinct from miss.
	do(t, rc, "MSET", "b1", "x", "b2", "", "b3", "zz")
	r := do(t, rc, "MGET", "b1", "b2", "missing", "b3")
	if len(r.Elems) != 4 {
		t.Fatalf("MGET elems = %d", len(r.Elems))
	}
	if r.Elems[0].Str != "x" || r.Elems[0].IsNil {
		t.Fatalf("MGET[0] = %+v", r.Elems[0])
	}
	if r.Elems[1].IsNil || r.Elems[1].Str != "" {
		t.Fatalf("MGET[1] = %+v, want empty bulk", r.Elems[1])
	}
	if !r.Elems[2].IsNil {
		t.Fatalf("MGET[2] = %+v, want nil", r.Elems[2])
	}
	if r.Elems[3].Str != "zz" {
		t.Fatalf("MGET[3] = %+v", r.Elems[3])
	}

	// INFO carries the stats snapshot.
	if r := do(t, rc, "INFO"); !strings.Contains(r.Str, "node_id:0") {
		t.Fatalf("INFO missing node_id: %q", r.Str)
	}
}

func TestGatewayQuorum(t *testing.T) {
	c, rc := startGateway(t, 3, Config{Seed: 92}, Quorum)
	do(t, rc, "SET", "qk", "qv")
	if r := do(t, rc, "GET", "qk"); r.Str != "qv" {
		t.Fatalf("GET = %+v", r)
	}
	// A quorum read observes the write immediately (R+W > N).
	cl, err := Dial(c.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	val, ok, err := cl.GetAt("qk", Quorum)
	if err != nil || !ok || string(val) != "qv" {
		t.Fatalf("GetAt = %q %v %v", val, ok, err)
	}
	// Quorum DEL then quorum GET: the tombstone is immediately visible.
	if r := do(t, rc, "DEL", "qk"); r.Int != 1 {
		t.Fatalf("DEL = %+v", r)
	}
	if r := do(t, rc, "GET", "qk"); !r.IsNil {
		t.Fatalf("GET after quorum DEL = %+v", r)
	}
}

// TestDeleteReplicates pins the native-client delete path: a DeleteAt at
// QUORUM makes the key unreadable at QUORUM via any coordinator.
func TestDeleteReplicates(t *testing.T) {
	_, cl := startTestCluster(t, 3, Config{Seed: 93})
	if err := cl.PutAt("dk", []byte("dv"), Quorum); err != nil {
		t.Fatal(err)
	}
	if err := cl.DeleteAt("dk", Quorum); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cl.GetAt("dk", Quorum); err != nil || ok {
		t.Fatalf("GetAt after delete: found=%v err=%v", ok, err)
	}
	// Deleting an already-absent key is a guarded no-op, not an error.
	if err := cl.Delete("dk"); err != nil {
		t.Fatal(err)
	}
}

// TestGatewayOpsEndpoint drives traffic through the gateway and asserts the
// ops surface exposes live per-peer C3 signals and coordinator counters.
func TestGatewayOpsEndpoint(t *testing.T) {
	c, rc := startGateway(t, 3, Config{Seed: 94}, One)
	node := c.Nodes[0]
	ops := httptest.NewServer(obs.Handler(func() any { return node.StatsSnapshot() }))
	defer ops.Close()

	for i := 0; i < 64; i++ {
		do(t, rc, "SET", fmt.Sprintf("ok%d", i), "v")
		do(t, rc, "GET", fmt.Sprintf("ok%d", i))
	}

	resp, err := http.Get(ops.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var vars struct {
		Node NodeStats `json:"node"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars: %v\n%s", err, body)
	}
	st := vars.Node
	if st.ReadsCoordinated == 0 {
		t.Fatalf("reads_coordinated = 0 after traffic: %+v", st)
	}
	if len(st.Peers) != 3 {
		t.Fatalf("peers = %d, want 3", len(st.Peers))
	}
	for _, p := range st.Peers {
		if p.QHat < 1 {
			t.Fatalf("peer %d qhat = %v, want >= 1", p.ID, p.QHat)
		}
	}
	if len(st.Shards) == 0 {
		t.Fatal("no shard stats")
	}
	if st.Store.Puts == 0 {
		t.Fatalf("store puts = 0 after traffic")
	}

	// Quiescence: with no in-flight commands, outstanding must drain to 0 —
	// the residual-accounting check the CI smoke repeats.
	deadline := time.Now().Add(2 * time.Second)
	for {
		total := 0.0
		for _, p := range node.StatsSnapshot().Peers {
			total += p.Outstanding
		}
		if total == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("outstanding residual %v after quiescence", total)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStatsSnapshotRace hammers StatsSnapshot concurrently with a chaos
// workload (mixed-level puts/gets/deletes, slowdown and drop-writes toggles)
// so `go test -race` can catch torn reads in the snapshot path.
func TestStatsSnapshotRace(t *testing.T) {
	c, err := StartCluster(3, Config{Seed: 95})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	cl, err := Dial(c.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Chaos workload: writes, reads, deletes at mixed levels + fault toggles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		lvls := []Level{One, Quorum}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("rk%d", i%64)
			lvl := lvls[i%2]
			switch i % 5 {
			case 0, 1:
				cl.PutAt(key, []byte("v"), lvl)
			case 2, 3:
				cl.GetAt(key, lvl)
			case 4:
				cl.DeleteAt(key, lvl)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Nodes[1].SetSlowdown(time.Duration(i%3) * time.Millisecond)
			c.Nodes[2].SetDropWrites(i%4 == 0)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// The snapshot hammer: every node, concurrently, plus JSON encoding (the
	// obs handler's actual read pattern).
	for _, n := range c.Nodes {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := n.StatsSnapshot()
				if _, err := json.Marshal(st); err != nil {
					t.Errorf("snapshot not marshalable: %v", err)
					return
				}
			}
		}()
	}

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	c.Nodes[1].SetSlowdown(0)
	c.Nodes[2].SetDropWrites(false)
}
