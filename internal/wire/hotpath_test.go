package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestParseAliasesPayload pins the zero-copy ownership contract: parsed
// Value slices and Key strings alias the payload they were decoded from, so
// mutating the payload mutates them — anyone retaining them past the frame
// must copy.
func TestParseAliasesPayload(t *testing.T) {
	frame, err := AppendReadResp(nil, ReadResp{ID: 1, Found: true, Version: 9, Value: []byte("aliased")})
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[5:]
	out, err := ParseReadResp(payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.Version != 9 {
		t.Fatalf("version = %d", out.Version)
	}
	// Value starts after id (8) + found (1) + status (1) + length (4) +
	// version prefix (8).
	if len(out.Value) == 0 || &out.Value[0] != &payload[22] {
		t.Fatal("ParseReadResp value does not alias the payload")
	}
	payload[22] = 'X'
	if string(out.Value) != "Xliased" {
		t.Fatalf("value = %q after payload mutation, want it to alias", out.Value)
	}
	// The aliased slice's capacity is clamped: appending to it must not
	// scribble over the feedback fields that follow in the frame.
	if cap(out.Value) != len(out.Value) {
		t.Fatalf("aliased value cap %d > len %d", cap(out.Value), len(out.Value))
	}

	wframe, err := AppendWriteReq(nil, MsgWrite, WriteReq{ID: 2, Key: "thekey", Value: []byte("v")})
	if err != nil {
		t.Fatal(err)
	}
	wp := wframe[5:]
	req, err := ParseWriteReq(wp)
	if err != nil {
		t.Fatal(err)
	}
	if req.Key != "thekey" {
		t.Fatalf("key = %q", req.Key)
	}
	wp[20] = 'T' // first key byte (8 id + 1 cl + 8 version + 1 flags + 2 len)
	if req.Key != "Thekey" {
		t.Fatalf("key = %q after payload mutation, want it to alias", req.Key)
	}
	clone := strings.Clone(req.Key)
	wp[20] = 'Z'
	if clone != "Thekey" {
		t.Fatalf("strings.Clone did not detach: %q", clone)
	}
}

// TestReaderShrinksRetainedBuffer: one oversized frame must not pin its
// buffer for the connection's lifetime.
func TestReaderShrinksRetainedBuffer(t *testing.T) {
	big := make([]byte, 1<<20)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteReadResp(ReadResp{ID: 1, Found: true, Value: big}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRead(MsgRead, ReadReq{ID: 2, Key: "small"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	_, payload, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if cap(payload) < len(big) {
		t.Fatalf("big frame payload cap %d < %d", cap(payload), len(big))
	}
	_, payload, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if cap(payload) > MaxRetainedBuffer {
		t.Fatalf("retained buffer cap %d exceeds MaxRetainedBuffer %d", cap(payload), MaxRetainedBuffer)
	}
	m, err := ParseReadReq(payload)
	if err != nil || m.Key != "small" {
		t.Fatalf("after shrink: %+v err=%v", m, err)
	}
}

// TestStreamedReadResp exercises the streaming server encode: raw
// version-prefixed value bytes are appended straight into the frame between
// BeginReadResp and FinishReadResp, and the feedback is supplied after the
// value exists.
func TestStreamedReadResp(t *testing.T) {
	frame, mark := BeginReadResp(nil, 77)
	frame = appendU64(frame, 31) // version prefix, as the lsm stores it
	frame = append(frame, "streamed-value"...)
	frame, err := FinishReadResp(frame, mark, true, StatusOK, Feedback{QueueSize: 2, ServiceNs: 42})
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(frame))
	typ, payload, err := r.Next()
	if err != nil || typ != MsgReadResp {
		t.Fatalf("typ=%d err=%v", typ, err)
	}
	out, err := ParseReadResp(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Found || string(out.Value) != "streamed-value" || out.Version != 31 ||
		out.ID != 77 || out.FB.QueueSize != 2 || out.FB.ServiceNs != 42 {
		t.Fatalf("out = %+v", out)
	}

	// Not-found: nothing appended between begin and finish.
	frame, mark = BeginReadResp(frame[:0], 78)
	frame, err = FinishReadResp(frame, mark, false, StatusOK, Feedback{})
	if err != nil {
		t.Fatal(err)
	}
	out, err = ParseReadResp(frame[5:])
	if err != nil || out.Found || len(out.Value) != 0 || out.ID != 78 {
		t.Fatalf("not-found out = %+v err=%v", out, err)
	}

	// A caller that truncated the buffer must be rejected, not encoded.
	frame, mark = BeginReadResp(nil, 1)
	if _, err := FinishReadResp(frame[:mark.lenAt], mark, true, StatusOK, Feedback{}); err == nil {
		t.Fatal("truncated buffer accepted")
	}
	// Oversized values are rejected (the wire bound covers the version
	// prefix plus the payload limit).
	frame, mark = BeginReadResp(nil, 1)
	frame = append(frame, make([]byte, VersionPrefix+MaxValueLen+1)...)
	if _, err := FinishReadResp(frame, mark, true, StatusOK, Feedback{}); err == nil {
		t.Fatal("oversized value accepted")
	}
}

// TestAppendEncodersMatchWriter: the pure append encoders and the Writer
// methods must produce identical bytes.
func TestAppendEncodersMatchWriter(t *testing.T) {
	rr := ReadResp{ID: 5, Found: true, Value: []byte("v"), FB: Feedback{QueueSize: 1, ServiceNs: 2}}
	wr := WriteReq{ID: 6, Key: "k", Value: []byte("w")}
	wa := WriteResp{ID: 7, OK: true, FB: Feedback{QueueSize: 3, ServiceNs: 4}}
	rq := ReadReq{ID: 8, Key: "q"}

	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, step := range []func() error{
		func() error { return w.WriteReadResp(rr) },
		func() error { return w.WriteWrite(MsgWriteInternal, wr) },
		func() error { return w.WriteWriteResp(wa) },
		func() error { return w.WriteRead(MsgReadInternal, rq) },
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	var app []byte
	var err error
	if app, err = AppendReadResp(app, rr); err != nil {
		t.Fatal(err)
	}
	if app, err = AppendWriteReq(app, MsgWriteInternal, wr); err != nil {
		t.Fatal(err)
	}
	if app, err = AppendWriteResp(app, wa); err != nil {
		t.Fatal(err)
	}
	if app, err = AppendReadReq(app, MsgReadInternal, rq); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), app) {
		t.Fatalf("writer bytes != append bytes\n  %x\n  %x", buf.Bytes(), app)
	}
}

// TestWriteRawPassesFramesThrough: pre-encoded frames written with WriteRaw
// decode identically.
func TestWriteRawPassesFramesThrough(t *testing.T) {
	frame, err := AppendReadReq(nil, MsgRead, ReadReq{ID: 3, Key: "raw"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRaw(frame); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	typ, payload, err := r.Next()
	if err != nil || typ != MsgRead {
		t.Fatalf("typ=%d err=%v", typ, err)
	}
	m, err := ParseReadReq(payload)
	if err != nil || m.ID != 3 || m.Key != "raw" {
		t.Fatalf("m=%+v err=%v", m, err)
	}
}

// TestEncodeDecodeRoundtripZeroAllocs is the wire half of the PR's
// allocation budget: a full encode → frame → decode round trip of both
// response types and both request types is allocation-free in steady state
// for values under the retained-buffer cap.
func TestEncodeDecodeRoundtripZeroAllocs(t *testing.T) {
	val := bytes.Repeat([]byte{0xCD}, 4096)
	var frame []byte
	src := bytes.NewReader(nil)
	r := NewReader(src)
	rr := ReadResp{ID: 9, Found: true, Value: val, FB: Feedback{QueueSize: 1, ServiceNs: 2}}
	roundtrip := func() {
		var err error
		frame, err = AppendReadResp(frame[:0], rr)
		if err != nil {
			t.Fatal(err)
		}
		if frame, err = AppendWriteResp(frame, WriteResp{ID: 10}); err != nil {
			t.Fatal(err)
		}
		if frame, err = AppendReadReq(frame, MsgReadInternal, ReadReq{ID: 11, Key: "key"}); err != nil {
			t.Fatal(err)
		}
		if frame, err = AppendWriteReq(frame, MsgWriteInternal, WriteReq{ID: 12, Key: "key", Value: val}); err != nil {
			t.Fatal(err)
		}
		src.Reset(frame)
		r.Reset(src)
		for i := 0; i < 4; i++ {
			typ, payload, err := r.Next()
			if err != nil {
				t.Fatal(err)
			}
			switch typ {
			case MsgReadResp:
				m, err := ParseReadResp(payload)
				if err != nil || !m.Found || len(m.Value) != len(val) {
					t.Fatalf("readresp %+v err=%v", m.ID, err)
				}
			case MsgWriteResp:
				if _, err := ParseWriteResp(payload); err != nil {
					t.Fatal(err)
				}
			case MsgReadInternal:
				m, err := ParseReadReq(payload)
				if err != nil || m.Key != "key" {
					t.Fatal(err)
				}
			case MsgWriteInternal:
				m, err := ParseWriteReq(payload)
				if err != nil || m.Key != "key" || len(m.Value) != len(val) {
					t.Fatal(err)
				}
			}
		}
	}
	for i := 0; i < 16; i++ {
		roundtrip() // warm buffer growth out of the measurement
	}
	if n := testing.AllocsPerRun(200, roundtrip); n > 0 {
		t.Fatalf("encode/decode round trip allocates %.1f/op, want 0", n)
	}
}

// TestKeyLengthBoundary: the longest legal key survives a roundtrip, and a
// key that would wrap the uint16 length prefix (1<<16) is rejected rather
// than encoded as an empty key.
func TestKeyLengthBoundary(t *testing.T) {
	longest := strings.Repeat("k", MaxKeyLen)
	frame, err := AppendReadReq(nil, MsgRead, ReadReq{ID: 1, Key: longest})
	if err != nil {
		t.Fatalf("longest legal key rejected: %v", err)
	}
	m, err := ParseReadReq(frame[5:])
	if err != nil || len(m.Key) != MaxKeyLen {
		t.Fatalf("roundtrip: len=%d err=%v", len(m.Key), err)
	}
	if _, err := AppendReadReq(nil, MsgRead, ReadReq{Key: longest + "k"}); err == nil {
		t.Fatal("1<<16-byte key accepted; uint16 prefix would wrap to 0")
	}
	if _, err := AppendWriteReq(nil, MsgWrite, WriteReq{Key: longest + "k"}); err == nil {
		t.Fatal("1<<16-byte key accepted on the write path")
	}
}

// TestReaderResetReuses: Reset must retain buffers and parse from the new
// source.
func TestReaderResetReuses(t *testing.T) {
	frame, err := AppendReadReq(nil, MsgRead, ReadReq{ID: 1, Key: "a"})
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(frame))
	if _, _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	r.Reset(bytes.NewReader(frame))
	typ, payload, err := r.Next()
	if err != nil || typ != MsgRead {
		t.Fatalf("after Reset: typ=%d err=%v", typ, err)
	}
	if m, err := ParseReadReq(payload); err != nil || m.Key != "a" {
		t.Fatalf("after Reset: %+v err=%v", m, err)
	}
}
