package core

import (
	"math"
	"math/rand/v2"
	"sort"
	"strconv"
	"time"

	"c3/internal/ewma"
	"c3/internal/sim"
)

// LOR is the least-outstanding-requests strategy (§2.2): each client prefers
// the server to which it currently has the fewest requests in flight. It is
// what Nginx/ELB-style load balancers do and is the primary baseline in the
// paper's simulations.
type LOR struct {
	rng         *rand.Rand
	outstanding map[ServerID]float64
	scratch     []scored
}

// NewLOR returns a LOR ranker seeded for tie-breaking.
func NewLOR(seed uint64) *LOR {
	return &LOR{rng: sim.RNG(seed, 0x10f), outstanding: make(map[ServerID]float64)}
}

// Name implements Ranker.
func (l *LOR) Name() string { return "LOR" }

// OnSend implements Ranker.
func (l *LOR) OnSend(s ServerID, now int64) { l.outstanding[s]++ }

// OnResponse implements Ranker.
func (l *LOR) OnResponse(s ServerID, fb Feedback, rtt time.Duration, now int64) {
	if l.outstanding[s] > 0 {
		l.outstanding[s]--
	}
}

// Outstanding reports this client's in-flight count toward s.
func (l *LOR) Outstanding(s ServerID) float64 { return l.outstanding[s] }

// Rank implements Ranker: ascending outstanding count, random ties.
func (l *LOR) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	if cap(l.scratch) < len(dst) {
		l.scratch = make([]scored, len(dst))
	}
	sc := l.scratch[:0]
	for _, s := range dst {
		sc = append(sc, scored{s, l.outstanding[s]})
	}
	shuffleScored(l.rng, sc)
	sort.SliceStable(sc, func(i, j int) bool { return sc[i].score < sc[j].score })
	for i := range sc {
		dst[i] = sc[i].s
	}
	return dst
}

// RoundRobin rotates through each replica group's members in turn. Combined
// with rate control in a Client, it is the paper's "RR" baseline (§6), used
// to isolate the contribution of rate limiting from that of ranking.
type RoundRobin struct {
	next map[string]int
	key  []byte
}

// NewRoundRobin returns a RoundRobin ranker.
func NewRoundRobin() *RoundRobin {
	return &RoundRobin{next: make(map[string]int)}
}

// Name implements Ranker.
func (r *RoundRobin) Name() string { return "RR" }

// OnSend implements Ranker.
func (r *RoundRobin) OnSend(ServerID, int64) {}

// OnResponse implements Ranker.
func (r *RoundRobin) OnResponse(ServerID, Feedback, time.Duration, int64) {}

// groupKey builds a map key identifying the replica group.
func (r *RoundRobin) groupKey(group []ServerID) string {
	r.key = r.key[:0]
	for _, s := range group {
		r.key = strconv.AppendInt(r.key, int64(s), 36)
		r.key = append(r.key, ',')
	}
	return string(r.key)
}

// Rank implements Ranker: the group rotated by a per-group counter.
func (r *RoundRobin) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	if len(dst) == 0 {
		return dst
	}
	k := r.groupKey(group)
	off := r.next[k] % len(dst)
	r.next[k] = off + 1
	rotate(dst, off)
	return dst
}

func rotate(xs []ServerID, off int) {
	if off == 0 || len(xs) == 0 {
		return
	}
	buf := make([]ServerID, len(xs))
	for i := range xs {
		buf[i] = xs[(i+off)%len(xs)]
	}
	copy(xs, buf)
}

// Random is the uniform random strategy (evaluated and dismissed in §6).
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a Random ranker.
func NewRandom(seed uint64) *Random { return &Random{rng: sim.RNG(seed, 0xa11d)} }

// Name implements Ranker.
func (r *Random) Name() string { return "RND" }

// OnSend implements Ranker.
func (r *Random) OnSend(ServerID, int64) {}

// OnResponse implements Ranker.
func (r *Random) OnResponse(ServerID, Feedback, time.Duration, int64) {}

// Rank implements Ranker: a uniform shuffle.
func (r *Random) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	for i := len(dst) - 1; i > 0; i-- {
		j := r.rng.IntN(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// TwoChoice implements the power-of-two-choices strategy (Mitzenmacher,
// discussed in §8): sample two random replicas and prefer the one with fewer
// outstanding requests.
type TwoChoice struct {
	rng         *rand.Rand
	outstanding map[ServerID]float64
}

// NewTwoChoice returns a TwoChoice ranker.
func NewTwoChoice(seed uint64) *TwoChoice {
	return &TwoChoice{rng: sim.RNG(seed, 0x2c), outstanding: make(map[ServerID]float64)}
}

// Name implements Ranker.
func (t *TwoChoice) Name() string { return "2C" }

// OnSend implements Ranker.
func (t *TwoChoice) OnSend(s ServerID, now int64) { t.outstanding[s]++ }

// OnResponse implements Ranker.
func (t *TwoChoice) OnResponse(s ServerID, fb Feedback, rtt time.Duration, now int64) {
	if t.outstanding[s] > 0 {
		t.outstanding[s]--
	}
}

// Rank implements Ranker: shuffle, then ensure the better of the first two
// (by outstanding count) leads.
func (t *TwoChoice) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	for i := len(dst) - 1; i > 0; i-- {
		j := t.rng.IntN(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
	if len(dst) >= 2 && t.outstanding[dst[1]] < t.outstanding[dst[0]] {
		dst[0], dst[1] = dst[1], dst[0]
	}
	return dst
}

// LeastResponseTime prefers the server with the lowest smoothed end-to-end
// response time (one of the §6 "did not fare well" strategies).
type LeastResponseTime struct {
	rng     *rand.Rand
	alpha   float64
	rt      map[ServerID]*ewma.EWMA
	scratch []scored
}

// NewLeastResponseTime returns a ranker smoothing RTTs with factor alpha
// (defaulted like RankerConfig.Alpha when out of range).
func NewLeastResponseTime(alpha float64, seed uint64) *LeastResponseTime {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.9
	}
	return &LeastResponseTime{
		rng:   sim.RNG(seed, 0x1e57),
		alpha: alpha,
		rt:    make(map[ServerID]*ewma.EWMA),
	}
}

// Name implements Ranker.
func (l *LeastResponseTime) Name() string { return "LRT" }

// OnSend implements Ranker.
func (l *LeastResponseTime) OnSend(ServerID, int64) {}

// OnResponse implements Ranker.
func (l *LeastResponseTime) OnResponse(s ServerID, fb Feedback, rtt time.Duration, now int64) {
	e, ok := l.rt[s]
	if !ok {
		v := ewma.New(l.alpha)
		e = &v
		l.rt[s] = e
	}
	e.Add(seconds(rtt))
}

// Rank implements Ranker: ascending smoothed RTT; unseen servers first.
func (l *LeastResponseTime) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	if cap(l.scratch) < len(dst) {
		l.scratch = make([]scored, len(dst))
	}
	sc := l.scratch[:0]
	for _, s := range dst {
		v := math.Inf(-1)
		if e, ok := l.rt[s]; ok && e.Initialized() {
			v = e.Value()
		}
		sc = append(sc, scored{s, v})
	}
	shuffleScored(l.rng, sc)
	sort.SliceStable(sc, func(i, j int) bool { return sc[i].score < sc[j].score })
	for i := range sc {
		dst[i] = sc[i].s
	}
	return dst
}

// WeightedRandom samples replicas with probability proportional to the
// inverse of their smoothed response time (another dismissed §6 strategy).
type WeightedRandom struct {
	rng   *rand.Rand
	alpha float64
	rt    map[ServerID]*ewma.EWMA
}

// NewWeightedRandom returns a WeightedRandom ranker.
func NewWeightedRandom(alpha float64, seed uint64) *WeightedRandom {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.9
	}
	return &WeightedRandom{rng: sim.RNG(seed, 0x33d), alpha: alpha, rt: make(map[ServerID]*ewma.EWMA)}
}

// Name implements Ranker.
func (w *WeightedRandom) Name() string { return "WRND" }

// OnSend implements Ranker.
func (w *WeightedRandom) OnSend(ServerID, int64) {}

// OnResponse implements Ranker.
func (w *WeightedRandom) OnResponse(s ServerID, fb Feedback, rtt time.Duration, now int64) {
	e, ok := w.rt[s]
	if !ok {
		v := ewma.New(w.alpha)
		e = &v
		w.rt[s] = e
	}
	e.Add(seconds(rtt))
}

// Rank implements Ranker: weighted sampling without replacement, weight
// 1/R̄_s (unseen servers get the best observed weight to force exploration).
func (w *WeightedRandom) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	weights := make([]float64, len(dst))
	best := 0.0
	for i, s := range dst {
		if e, ok := w.rt[s]; ok && e.Initialized() && e.Value() > 0 {
			weights[i] = 1 / e.Value()
			if weights[i] > best {
				best = weights[i]
			}
		}
	}
	for i := range weights {
		if weights[i] == 0 {
			if best > 0 {
				weights[i] = best
			} else {
				weights[i] = 1
			}
		}
	}
	// Repeated weighted draws without replacement.
	for i := 0; i < len(dst)-1; i++ {
		total := 0.0
		for j := i; j < len(dst); j++ {
			total += weights[j]
		}
		x := w.rng.Float64() * total
		pick := i
		for j := i; j < len(dst); j++ {
			x -= weights[j]
			if x <= 0 {
				pick = j
				break
			}
		}
		dst[i], dst[pick] = dst[pick], dst[i]
		weights[i], weights[pick] = weights[pick], weights[i]
	}
	return dst
}

// OracleFn exposes a server's instantaneous queue length and mean service
// time (seconds) to the Oracle ranker. Only simulations can implement it.
type OracleFn func(s ServerID) (queue float64, serviceTime float64)

// Oracle ranks replicas by perfect knowledge of the instantaneous q/µ ratio
// (the paper's ORA baseline, §6). It needs no feedback.
type Oracle struct {
	rng     *rand.Rand
	fn      OracleFn
	scratch []scored
}

// NewOracle returns an Oracle ranker reading server state through fn.
func NewOracle(fn OracleFn, seed uint64) *Oracle {
	if fn == nil {
		panic("core: Oracle requires a state function")
	}
	return &Oracle{rng: sim.RNG(seed, 0x04ac1e), fn: fn}
}

// Name implements Ranker.
func (o *Oracle) Name() string { return "ORA" }

// OnSend implements Ranker.
func (o *Oracle) OnSend(ServerID, int64) {}

// OnResponse implements Ranker.
func (o *Oracle) OnResponse(ServerID, Feedback, time.Duration, int64) {}

// Rank implements Ranker: ascending (q+1)·serviceTime, random ties.
func (o *Oracle) Rank(dst, group []ServerID, now int64) []ServerID {
	dst = prepare(dst, group)
	if cap(o.scratch) < len(dst) {
		o.scratch = make([]scored, len(dst))
	}
	sc := o.scratch[:0]
	for _, s := range dst {
		q, t := o.fn(s)
		sc = append(sc, scored{s, (q + 1) * t})
	}
	shuffleScored(o.rng, sc)
	sort.SliceStable(sc, func(i, j int) bool { return sc[i].score < sc[j].score })
	for i := range sc {
		dst[i] = sc[i].s
	}
	return dst
}
