// Fixture shapes are distilled from internal/kvstore/rpc.go pooling: the
// call-record pool with its putCall wrapper, the receiver-style abort
// release, and the ctlWait conditional release that must NOT count as a
// releaser.
package poolsafe

import "sync"

type callRec struct {
	id  uint64
	buf []byte
}

var callPool = sync.Pool{New: func() any { return new(callRec) }}

// putCall is an unconditional releaser wrapper: every exit returns c.
func putCall(c *callRec) {
	c.buf = c.buf[:0]
	callPool.Put(c)
}

// abort is the receiver-style release (ca.abort() frees ca).
func (c *callRec) abort() {
	putCall(c)
}

// tryPut releases only on failure and reports the outcome; it is NOT a
// releaser, so callers may touch c on the success arm (the ctlWait shape).
func tryPut(c *callRec, ok bool) bool {
	if !ok {
		putCall(c)
		return false
	}
	return true
}

func useAfterPut() uint64 {
	c := callPool.Get().(*callRec)
	callPool.Put(c)
	return c.id // want `use of c after it was released to its pool`
}

func useAfterWrapper() int {
	c := callPool.Get().(*callRec)
	putCall(c)
	return len(c.buf) // want `use of c after it was released to its pool`
}

func useAfterAbort() {
	c := callPool.Get().(*callRec)
	c.abort()
	c.id = 0 // want `use of c after it was released to its pool`
}

func doublePut() {
	c := callPool.Get().(*callRec)
	putCall(c)
	putCall(c) // want `use of c after it was released to its pool`
}

// goUseAfterPut: the goroutine body races the pool's next owner.
func goUseAfterPut() {
	c := callPool.Get().(*callRec)
	putCall(c)
	go func() {
		_ = c.buf // want `use of c after it was released to its pool`
	}()
}

// rebindOK: a fresh Get rebinds the variable and ends the hazard.
func rebindOK() int {
	c := callPool.Get().(*callRec)
	putCall(c)
	c = callPool.Get().(*callRec)
	return len(c.buf)
}

// branchOK: each path releases exactly once, after its last use.
func branchOK(fail bool) int {
	c := callPool.Get().(*callRec)
	if fail {
		putCall(c)
		return 0
	}
	n := len(c.buf)
	putCall(c)
	return n
}

// deferredPut runs after every use in the body by construction.
func deferredPut() int {
	c := callPool.Get().(*callRec)
	defer putCall(c)
	return len(c.buf)
}

// condCaller uses c only when tryPut kept it alive — sound, not flagged.
func condCaller() int {
	c := callPool.Get().(*callRec)
	if !tryPut(c, true) {
		return 0
	}
	n := len(c.buf)
	putCall(c)
	return n
}

// pipelinedPut: the ring protocol still owns the slot after the put; the
// deliberate post-release read is suppressed with the reason.
func pipelinedPut() uint64 {
	c := callPool.Get().(*callRec)
	putCall(c)
	//lint:allow poolsafe the ring still owns the slot until the cursor advances past it
	return c.id
}
