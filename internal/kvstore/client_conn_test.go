package kvstore

import (
	"errors"
	"sync"
	"testing"
)

// TestClientConnDialRace: concurrent first uses of one address slot must
// converge on a single connection. The dial happens outside c.mu (so a slow
// dial to one dead replica cannot stall healthy traffic); losers of the
// resulting race detect the established winner under the lock and close
// their redundant conn instead of clobbering it.
func TestClientConnDialRace(t *testing.T) {
	c, err := StartCluster(1, Config{Seed: 81, RF: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	cl, err := Dial(c.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	const goroutines = 16
	conns := make([]*rpcConn, goroutines)
	dialErrs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conns[g], dialErrs[g] = cl.conn(0)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if dialErrs[g] != nil {
			t.Fatalf("conn %d: %v", g, dialErrs[g])
		}
		if conns[g] != conns[0] {
			t.Fatalf("conn %d got a different connection than conn 0: racing dials must converge", g)
		}
	}
	// The surviving winner carries traffic.
	if err := cl.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cl.Get("k"); err != nil || !ok {
		t.Fatalf("Get after racing dials = %v, %v", ok, err)
	}
}

// TestPutAtShortfallReturnsClassified: with several coordinators configured,
// a coordinator that answered with a definitive level shortfall returns the
// classified error (ErrQuorumUnavailable, also ErrWriteFailed) — rotating to
// another coordinator cannot conjure the missing replicas, and the caller
// must be able to errors.Is the shortfall even when dead coordinators were
// skipped along the way.
func TestPutAtShortfallReturnsClassified(t *testing.T) {
	c, err := StartCluster(3, Config{Seed: 82})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	cl, err := Dial(c.Addrs()) // all coordinators in rotation
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := cl.PutAt("pre", []byte("v"), Quorum); err != nil {
		t.Fatalf("healthy quorum write: %v", err)
	}
	c.Nodes[1].Crash()
	c.Nodes[2].Crash()

	err = cl.PutAt("k", []byte("v"), Quorum)
	if !errors.Is(err, ErrQuorumUnavailable) {
		t.Fatalf("quorum write via rotating coordinators: err = %v, want ErrQuorumUnavailable", err)
	}
	if !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("classified shortfall must still match ErrWriteFailed, got %v", err)
	}
}
