package lsm

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The MANIFEST names the durable state of the store: which SST files are
// live (newest first) and the lowest-numbered WAL file that still holds
// unflushed records (the watermark — recovery replays every WAL ≥ it and
// nothing older). It is plain text, rewritten whole on every edit and
// installed by write-temp → fsync → rename → fsync-dir, so readers only
// ever observe a complete old or complete new manifest:
//
//	c3-lsm-manifest v1
//	next <n>
//	wal <num>
//	sst <num>      (zero or more, newest first)
//
// Edit rules: a flush writes its SST and rotates the WAL *before* the
// manifest edit that references them, and deletes superseded WAL files only
// *after* the edit lands; compaction likewise installs its output SST via
// manifest edit before deleting its inputs. Every intermediate crash state
// is therefore recoverable, leaving at worst orphan files that Open removes.

const manifestName = "MANIFEST"

// manifest is the in-memory image of the MANIFEST file.
type manifest struct {
	next uint64   // next file number to allocate (SSTs and WALs share one space)
	wal  uint64   // WAL watermark: replay every WAL file numbered ≥ this
	ssts []uint64 // live SSTs, newest first
}

// loadManifest reads dir's MANIFEST; a missing file returns (nil, nil) —
// a fresh directory.
func loadManifest(dir string) (*manifest, error) {
	f, err := os.Open(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m := &manifest{}
	sc := bufio.NewScanner(f)
	if !sc.Scan() || sc.Text() != "c3-lsm-manifest v1" {
		return nil, fmt.Errorf("lsm: bad manifest header")
	}
	for sc.Scan() {
		field, rest, ok := strings.Cut(sc.Text(), " ")
		if !ok {
			return nil, fmt.Errorf("lsm: bad manifest line %q", sc.Text())
		}
		n, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("lsm: bad manifest line %q", sc.Text())
		}
		switch field {
		case "next":
			m.next = n
		case "wal":
			m.wal = n
		case "sst":
			m.ssts = append(m.ssts, n)
		default:
			return nil, fmt.Errorf("lsm: bad manifest field %q", field)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// store atomically installs m as dir's MANIFEST.
func (m *manifest) store(dir string) error {
	var b strings.Builder
	b.WriteString("c3-lsm-manifest v1\n")
	fmt.Fprintf(&b, "next %d\n", m.next)
	fmt.Fprintf(&b, "wal %d\n", m.wal)
	for _, n := range m.ssts {
		fmt.Fprintf(&b, "sst %d\n", n)
	}
	final := filepath.Join(dir, manifestName)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(b.String()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}
